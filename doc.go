// Package datatrace is a Go implementation of data-trace types and
// data-trace transductions for distributed stream processing, after
// "Data-Trace Types for Distributed Stream Processing Systems"
// (Mamouras, Stanford, Alur, Ives, Tannen; PLDI 2019).
//
// The package re-exports the library's public surface:
//
//   - Stream model: events, periodic synchronization markers, and the
//     practical data-trace types U(K,V) (unordered between markers)
//     and O(K,V) (ordered per key between markers).
//   - Operator templates: Stateless, KeyedOrdered and KeyedUnordered
//     (the paper's Table 1), plus the built-in SORT. Programs written
//     against the templates are consistent by construction (Theorem
//     4.2): their semantics is a function of the input data trace,
//     independent of arrival interleaving.
//   - Transduction DAGs: typed dataflow graphs with a data-trace type
//     on every edge, a static type checker, and a sequential
//     reference evaluator.
//   - A compiler that deploys a DAG — at any parallelism — onto a
//     Storm-style concurrent runtime while preserving its semantics
//     (Theorem 4.3, Corollary 4.4), inserting splitters, marker
//     propagation, merge alignment and sort fusion automatically.
//
// A minimal program (the paper's Figure 2):
//
//	dag := datatrace.NewDAG()
//	src := dag.Source("source", datatrace.U("Int", "Float"))
//	filt := dag.Op(&datatrace.Stateless[int, float64, int, float64]{
//		OpName: "filterEven",
//		In:     datatrace.U("Int", "Float"),
//		Out:    datatrace.U("Int", "Float"),
//		OnItem: func(emit datatrace.Emit[int, float64], k int, v float64) {
//			if k%2 == 0 {
//				emit(k, v)
//			}
//		},
//	}, 2, src)
//	sum := dag.Op(sumOp, 3, filt) // a KeyedUnordered aggregation
//	dag.Sink("printer", sum)
//	top, err := datatrace.Compile(dag, sources, nil)
//	res, err := top.Run()
//
// The formal model backing all of this — Mazurkiewicz-style data
// traces, dependence relations, trace equivalence, and data-trace
// transductions — lives in internal/trace and internal/transduction
// and is exercised by the library's property tests.
package datatrace
