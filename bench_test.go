package datatrace

// This file holds one testing.B benchmark per evaluation artifact of
// the paper — each Figure 4 panel in both variants, the Figure 6
// pipeline, and the section 2 experiment — plus micro-benchmarks for
// the building blocks (trace normal form, merge, sort, the
// OpKeyedUnordered runner, DB lookups, REPTree inference, k-means).
//
// Topology benchmarks report two custom metrics:
//
//	tuples/s   — wall-clock source-tuple throughput of the run
//	sim8_tps   — simulated throughput on an 8-worker cluster
//	             (busy-time makespan model, see DESIGN.md)
//
// The full parameter sweeps behind EXPERIMENTS.md come from
// cmd/dttbench; these benches regenerate each figure's headline
// number in a form `go test -bench` can track over time.

import (
	"math/rand"
	"testing"
	"time"

	"datatrace/internal/bench"
	"datatrace/internal/codec"
	"datatrace/internal/compile"
	"datatrace/internal/core"
	"datatrace/internal/db"
	"datatrace/internal/iot"
	"datatrace/internal/microbatch"
	"datatrace/internal/ml"
	"datatrace/internal/queries"
	"datatrace/internal/smarthome"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/trace"
	"datatrace/internal/workload"
)

// benchYahooCfg is the per-iteration Figure 4 workload.
func benchYahooCfg() workload.YahooConfig {
	cfg := workload.DefaultYahooConfig()
	cfg.EventsPerSecond = 1000
	cfg.Seconds = 12
	cfg.Users = 200
	return cfg
}

// benchQuery runs one query variant once per b.N iteration and
// reports throughput metrics.
func benchQuery(b *testing.B, name string, variant queries.Variant) {
	benchQuerySpec(b, queries.Spec{Query: name, Variant: variant, Par: 4, SourcePar: 2})
}

func benchQuerySpec(b *testing.B, spec queries.Spec) {
	benchQueryCfg(b, benchYahooCfg(), 2*time.Microsecond, spec)
}

func benchQueryCfg(b *testing.B, cfg workload.YahooConfig, opDelay time.Duration, spec queries.Spec) {
	b.Helper()
	items := int64(cfg.EventsPerSecond * cfg.Seconds)
	var simTPS, wallTPS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env, err := queries.NewEnv(cfg, opDelay)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := queries.Run(env, spec)
		if err != nil {
			b.Fatal(err)
		}
		wallTPS = float64(items) / res.Wall.Seconds()
		simTPS = res.Stats.Throughput(items, 8)
	}
	b.ReportMetric(wallTPS, "tuples/s")
	b.ReportMetric(simTPS, "sim8_tps")
}

// --- Figure 4: Queries I–VI, generated vs handcrafted ----------------------

func BenchmarkQueryIGenerated(b *testing.B)    { benchQuery(b, "I", queries.Generated) }
func BenchmarkQueryIHandcrafted(b *testing.B)  { benchQuery(b, "I", queries.Handcrafted) }
func BenchmarkQueryIIGenerated(b *testing.B)   { benchQuery(b, "II", queries.Generated) }
func BenchmarkQueryIIHandcrafted(b *testing.B) { benchQuery(b, "II", queries.Handcrafted) }
func BenchmarkQueryIIIGenerated(b *testing.B)  { benchQuery(b, "III", queries.Generated) }
func BenchmarkQueryIIIHandcrafted(b *testing.B) {
	benchQuery(b, "III", queries.Handcrafted)
}
func BenchmarkQueryIVGenerated(b *testing.B)   { benchQuery(b, "IV", queries.Generated) }
func BenchmarkQueryIVHandcrafted(b *testing.B) { benchQuery(b, "IV", queries.Handcrafted) }

// BenchmarkQueryIVGeneratedRecovery is the crash-free overhead probe
// for the marker-cut recovery subsystem: the same run as
// BenchmarkQueryIVGenerated with checkpointing enabled and no faults
// injected. Compare tuples/s between the two to get the overhead.
func BenchmarkQueryIVGeneratedRecovery(b *testing.B) {
	benchQuerySpec(b, queries.Spec{
		Query: "IV", Variant: queries.Generated, Par: 4, SourcePar: 2, Recovery: true,
	})
}

// BenchmarkQueryIVGeneratedObserved is the observability overhead
// probe: the same run as BenchmarkQueryIVGenerated with the
// executor-level observability subsystem enabled (latency histograms,
// queue gauges, span sampling at the default period). Compare tuples/s
// against BenchmarkQueryIVGenerated to get the enabled overhead; the
// acceptance bound is <5% (see EXPERIMENTS.md).
func BenchmarkQueryIVGeneratedObserved(b *testing.B) {
	benchQuerySpec(b, queries.Spec{
		Query: "IV", Variant: queries.Generated, Par: 4, SourcePar: 2, Obs: true,
	})
}

// BenchmarkQueryIVGeneratedBatch1 is the unbatched-transport baseline
// of the edge-batching subsystem: the same run as
// BenchmarkQueryIVGenerated with BatchSize 1 — one channel send per
// routed event, the pre-batching behavior. scripts/check.sh compares
// tuples/s between the two as the transport regression gate; the
// full batch-size sweep is in EXPERIMENTS.md.
func BenchmarkQueryIVGeneratedBatch1(b *testing.B) {
	benchQuerySpec(b, queries.Spec{
		Query: "IV", Variant: queries.Generated, Par: 4, SourcePar: 2,
		Transport: &storm.TransportOptions{BatchSize: 1},
	})
}

// BenchmarkQueryIVGeneratedNoOpt is the optimization-pass baseline at
// the Figure 4 workload: the same run as BenchmarkQueryIVGenerated
// with chain fusion and shuffle-side combiners disabled. At this
// workload the two are near parity — 12k events spread over 100
// campaigns are too thin for sender-side combining to compress, and
// the simulated DB latency floors both sides equally — which is
// exactly what the pair documents: the passes never hurt the
// evaluation workload.
func BenchmarkQueryIVGeneratedNoOpt(b *testing.B) {
	benchQuerySpec(b, queries.Spec{
		Query: "IV", Variant: queries.Generated, Par: 4, SourcePar: 2,
		NoFuseChains: true, NoCombiners: true,
	})
}

// benchDenseYahooCfg is the optimization passes' operating point: a
// 10× denser event rate, so each marker-delimited segment carries
// hundreds of views per sender instance against the 100-campaign key
// space and sender-side combining actually compresses (~8 items per
// flushed partial). The DB runs at in-memory speed — the passes
// optimize the runtime, and a simulated out-of-process latency floor
// (identical on both sides) would only dilute the measured ratio.
func benchDenseYahooCfg() workload.YahooConfig {
	cfg := benchYahooCfg()
	cfg.EventsPerSecond = 10000
	return cfg
}

// BenchmarkQueryIVGeneratedDense and its NoOpt twin are the fusion
// regression pair: generated Query IV at the dense operating point
// with the optimization passes on vs off. scripts/check.sh compares
// the two as the fusion benchmark gate and scripts/bench.sh records
// their ratio in BENCH_PR5.json (query_iv_fusion_speedup); the full
// pass-combination sweep is `dttbench -figure fusion` in
// EXPERIMENTS.md.
func BenchmarkQueryIVGeneratedDense(b *testing.B) {
	benchQueryCfg(b, benchDenseYahooCfg(), 0, queries.Spec{
		Query: "IV", Variant: queries.Generated, Par: 4, SourcePar: 2,
	})
}

func BenchmarkQueryIVGeneratedDenseNoOpt(b *testing.B) {
	benchQueryCfg(b, benchDenseYahooCfg(), 0, queries.Spec{
		Query: "IV", Variant: queries.Generated, Par: 4, SourcePar: 2,
		NoFuseChains: true, NoCombiners: true,
	})
}

func BenchmarkQueryVGenerated(b *testing.B)    { benchQuery(b, "V", queries.Generated) }
func BenchmarkQueryVHandcrafted(b *testing.B)  { benchQuery(b, "V", queries.Handcrafted) }
func BenchmarkQueryVIGenerated(b *testing.B)   { benchQuery(b, "VI", queries.Generated) }
func BenchmarkQueryVIHandcrafted(b *testing.B) { benchQuery(b, "VI", queries.Handcrafted) }

// --- Figure 6: Smart Homes power prediction --------------------------------

func BenchmarkSmartHomePrediction(b *testing.B) {
	cfg := workload.DefaultSmartHomeConfig()
	cfg.Seconds = 120
	env, err := smarthome.NewEnv(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	items := int64(len(env.Gen.Events()))
	var simTPS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := smarthome.Run(env, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		simTPS = res.Stats.Throughput(items, 8)
	}
	b.ReportMetric(simTPS, "sim8_tps")
}

// --- Section 2: motivation experiment ---------------------------------------

func BenchmarkSection2Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Section2(2)
		if err != nil {
			b.Fatal(err)
		}
		if res.NaiveEquivalent || !res.TypedEquivalent {
			b.Fatal("section 2 experiment produced unexpected equivalences")
		}
	}
}

// --- micro-benchmarks: the building blocks ----------------------------------

func BenchmarkTraceNormalForm(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := make([]trace.Item, 200)
	for i := range items {
		if r.Intn(5) == 0 {
			items[i] = trace.It("#", nil)
		} else {
			items[i] = trace.It("M", r.Intn(10))
		}
	}
	dep := trace.MarkerUnordered{Marker: "#"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.NormalForm(dep, items)
	}
}

func BenchmarkTraceEquivalent(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	u := make([]trace.Item, 100)
	for i := range u {
		u[i] = trace.It("M", r.Intn(10))
	}
	v := make([]trace.Item, len(u))
	copy(v, u)
	v[3], v[50] = v[50], v[3]
	dep := trace.MarkerUnordered{Marker: "#"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Equivalent(dep, u, v)
	}
}

func benchStream(n, keys int) []stream.Event {
	r := rand.New(rand.NewSource(3))
	out := make([]stream.Event, 0, n+n/100+1)
	for i := 0; i < n; i++ {
		out = append(out, stream.Item(r.Intn(keys), r.Intn(1000)))
		if i%100 == 99 {
			out = append(out, stream.Mark(stream.Marker{Seq: int64(i / 100), Timestamp: int64(i)}))
		}
	}
	return out
}

func BenchmarkMergeAlignment(b *testing.B) {
	in := benchStream(10000, 64)
	parts := stream.SplitRoundRobin(in, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.MergeEvents(parts...)
	}
	b.ReportMetric(float64(len(in)), "events/op")
}

func BenchmarkHashSplit(b *testing.B) {
	in := benchStream(10000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.SplitHash(in, 4, nil)
	}
}

func BenchmarkSortOperator(b *testing.B) {
	in := benchStream(10000, 64)
	srt := &core.Sort[int, int]{
		OpName: "SORT", In: stream.U("Int", "Int"), Out: stream.O("Int", "Int"),
		Less: func(x, y int) bool { return x < y },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunInstance(srt, in)
	}
}

func BenchmarkKeyedUnorderedRunner(b *testing.B) {
	in := benchStream(10000, 64)
	op := &core.KeyedUnordered[int, int, int, int64, int64, int64]{
		OpName: "sum", InT: stream.U("Int", "Int"), OutT: stream.U("Int", "Long"),
		In:           func(_, v int) int64 { return int64(v) },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		InitialState: func() int64 { return 0 },
		UpdateState:  func(old, agg int64) int64 { return old + agg },
		OnMarker: func(emit core.Emit[int, int64], st int64, k int, m stream.Marker) {
			emit(k, st)
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunInstance(op, in)
	}
	b.ReportMetric(float64(len(in)), "events/op")
}

func BenchmarkDBPointLookup(b *testing.B) {
	d := db.New()
	tab, err := d.CreateTable("t", []db.Column{
		{Name: "k", Type: db.Int}, {Name: "v", Type: db.Int},
	}, "k")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := tab.Insert(i, i*2); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.Get(i % 10000); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkREPTreePredict(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	var data ml.Dataset
	for i := 0; i < 5000; i++ {
		x := []float64{r.Float64() * 86400, r.Float64() * 2000, r.Float64() * 120000}
		data.Append(x, x[1]*0.9+r.NormFloat64()*20)
	}
	tree, err := ml.TrainREPTree(data, ml.DefaultREPTreeConfig())
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{40000, 1000, 60000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(q)
	}
}

func BenchmarkKMeans(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	pts := make([][]float64, 300)
	for i := range pts {
		pts[i] = []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.KMeans(pts, 3, 50, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIoTTypedPipeline(b *testing.B) {
	cfg := iot.DefaultSensorConfig()
	cfg.Seconds = 120
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iot.RunTyped(cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation: specialized sliding-window template (section 8) --------------
//
// The paper's future-work template vs the same computation written
// with plain OpKeyedUnordered (recompute the window at every marker).
// With W = 256 blocks the two-stacks template does O(1) amortized
// work per block while the naive version pays O(W) per key per
// marker.

func slidingBenchStream(blocks, perBlock, keys int) []stream.Event {
	r := rand.New(rand.NewSource(6))
	out := make([]stream.Event, 0, blocks*(perBlock+1))
	for b := 0; b < blocks; b++ {
		for i := 0; i < perBlock; i++ {
			out = append(out, stream.Item(r.Intn(keys), 1))
		}
		out = append(out, stream.Mark(stream.Marker{Seq: int64(b), Timestamp: int64(b)}))
	}
	return out
}

const ablationWindow = 256

func BenchmarkSlidingWindowTwoStacks(b *testing.B) {
	in := slidingBenchStream(2000, 20, 16)
	op := &core.SlidingAggregate[int, int, int]{
		OpName: "win", InT: stream.U("Int", "Int"), OutT: stream.U("Int", "Int"),
		WindowBlocks: ablationWindow,
		In:           func(_, v int) int { return v },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		EmitEmpty:    true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunInstance(op, in)
	}
	b.ReportMetric(float64(len(in)), "events/op")
}

func BenchmarkSlidingWindowNaiveRecompute(b *testing.B) {
	in := slidingBenchStream(2000, 20, 16)
	op := &core.KeyedUnordered[int, int, int, int, []int, int]{
		OpName: "naive", InT: stream.U("Int", "Int"), OutT: stream.U("Int", "Int"),
		In:           func(_, v int) int { return v },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() []int { return nil },
		UpdateState: func(old []int, agg int) []int {
			blocks := append(append([]int(nil), old...), agg)
			if len(blocks) > ablationWindow {
				blocks = blocks[len(blocks)-ablationWindow:]
			}
			return blocks
		},
		OnMarker: func(emit core.Emit[int, int], st []int, key int, m stream.Marker) {
			total := 0
			for _, v := range st {
				total += v
			}
			emit(key, total)
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunInstance(op, in)
	}
	b.ReportMetric(float64(len(in)), "events/op")
}

// --- ablation: SORT fusion (section 5's second fusion rule) -----------------

func benchIoTFusion(b *testing.B, fuse bool) {
	cfg := iot.DefaultSensorConfig()
	cfg.Seconds = 200
	cfg.Sensors = 8
	events := iot.Stream(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, err := compile.Compile(iot.PipelineDAG(cfg, 2), map[string]compile.SourceSpec{
			"hub": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(events) }},
		}, &compile.Options{FuseSort: fuse})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := top.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIoTPipelineFusedSort(b *testing.B)   { benchIoTFusion(b, true) }
func BenchmarkIoTPipelineUnfusedSort(b *testing.B) { benchIoTFusion(b, false) }

// --- backend comparison: storm vs micro-batch (section 8) -------------------
//
// The same type-checked DAG executed by the record-at-a-time storm
// backend and by the discretized-streams micro-batch backend; both
// are trace-equivalent, the benchmark shows their cost profiles.

func backendDAG(par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	f := d.Op(&core.Stateless[int, int, int, int]{
		OpName: "scale", In: stream.U("Int", "Int"), Out: stream.U("Int", "Int"),
		OnItem: func(emit core.Emit[int, int], k, v int) { emit(k, v*2) },
	}, par, src)
	s := d.Op(&core.KeyedUnordered[int, int, int, int64, int64, int64]{
		OpName: "sum", InT: stream.U("Int", "Int"), OutT: stream.U("Int", "Long"),
		In:           func(_, v int) int64 { return int64(v) },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		InitialState: func() int64 { return 0 },
		UpdateState:  func(old, agg int64) int64 { return old + agg },
		OnMarker: func(emit core.Emit[int, int64], st int64, k int, m stream.Marker) {
			emit(k, st)
		},
	}, par, f)
	d.Sink("out", s)
	return d
}

func BenchmarkBackendStorm(b *testing.B) {
	in := benchStream(20000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, err := compile.Compile(backendDAG(4), map[string]compile.SourceSpec{
			"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := top.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(in)), "events/op")
}

func BenchmarkBackendMicroBatch(b *testing.B) {
	in := benchStream(20000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microbatch.RunDAG(backendDAG(4), map[string][]stream.Event{"src": in}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(in)), "events/op")
}

// --- section 2 fixes compared: typed markers vs sequence numbers ------------

func BenchmarkSection2Typed(b *testing.B) {
	cfg := iot.DefaultSensorConfig()
	cfg.Seconds = 300
	cfg.Sensors = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iot.RunTyped(cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection2Seqnum(b *testing.B) {
	cfg := iot.DefaultSensorConfig()
	cfg.Seconds = 300
	cfg.Sensors = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iot.RunSeqnum(cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serialization boundary --------------------------------------------------

func BenchmarkCodecRoundTrip(b *testing.B) {
	codec.Register(workload.YahooEvent{})
	conn := codec.NewConn()
	e := stream.Item(int64(7), workload.YahooEvent{UserID: 1, AdID: 2, EventTime: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.RoundTrip(e); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSerialized(b *testing.B, serialize bool) {
	codec.Register(int64(0))
	codec.Register(int(0))
	in := benchStream(20000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, err := compile.Compile(backendDAG(2), map[string]compile.SourceSpec{
			"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if serialize {
			top.SetSerializer(func() storm.Serializer { return codec.NewConn() })
		}
		if _, err := top.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(in)), "events/op")
}

func BenchmarkTopologyPlainEdges(b *testing.B)      { benchSerialized(b, false) }
func BenchmarkTopologySerializedEdges(b *testing.B) { benchSerialized(b, true) }
