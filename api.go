package datatrace

import (
	"datatrace/internal/compile"
	"datatrace/internal/core"
	"datatrace/internal/metrics"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// --- stream model ----------------------------------------------------------

// Event is one element of a stream: a key-value item or a marker.
type Event = stream.Event

// Marker is a periodic synchronization marker (linearly ordered,
// carries an event-time watermark).
type Marker = stream.Marker

// Unit is the unit key type Ut.
type Unit = stream.Unit

// Type is a practical data-trace type: U(K,V) or O(K,V).
type Type = stream.Type

// Item constructs a key-value item event.
func Item(key, value any) Event { return stream.Item(key, value) }

// Mark constructs a marker event.
func Mark(m Marker) Event { return stream.Mark(m) }

// U constructs the unordered data-trace type U(key, val).
func U(key, val string) Type { return stream.U(key, val) }

// O constructs the ordered data-trace type O(key, val).
func O(key, val string) Type { return stream.O(key, val) }

// Equivalent reports whether two event sequences denote the same data
// trace of type t — the library's notion of semantic equality.
func Equivalent(t Type, a, b []Event) bool { return stream.Equivalent(t, a, b) }

// Render formats an event sequence for debugging.
func Render(events []Event) string { return stream.Render(events) }

// MergeEvents merges complete event streams with marker alignment
// (the MRG transduction, batch form).
func MergeEvents(inputs ...[]Event) []Event { return stream.MergeEvents(inputs...) }

// --- operator templates ----------------------------------------------------

// Emit is the output callback of the operator templates.
type Emit[L, W any] = core.Emit[L, W]

// Stateless is the OpStateless template: U(K,V) → U(L,W), output
// depends only on the current event.
type Stateless[K, V, L, W any] = core.Stateless[K, V, L, W]

// KeyedOrdered is the OpKeyedOrdered template: O(K,V) → O(K,W),
// order-dependent per-key state.
type KeyedOrdered[K comparable, V, W, S any] = core.KeyedOrdered[K, V, W, S]

// KeyedUnordered is the OpKeyedUnordered template: U(K,V) → U(L,W),
// per-key state updated at markers through a commutative monoid.
type KeyedUnordered[K comparable, V, L, W, S, A any] = core.KeyedUnordered[K, V, L, W, S, A]

// Sort is the SORT built-in: U(K,V) → O(K,V), imposing a per-key
// total order on the items between markers.
type Sort[K comparable, V any] = core.Sort[K, V]

// SlidingAggregate is the specialized sliding-window template
// (section 8's proposed extension): per key, the aggregate of the
// last WindowBlocks marker periods, maintained in O(1) amortized time
// per block.
type SlidingAggregate[K comparable, V, A any] = core.SlidingAggregate[K, V, A]

// Operator is a typed processing vertex (what templates produce and
// DAGs consume).
type Operator = core.Operator

// Instance is one running operator copy.
type Instance = core.Instance

// --- transduction DAGs -----------------------------------------------------

// DAG is a transduction DAG: a typed dataflow graph of sources,
// operators and sinks.
type DAG = core.DAG

// Node is a DAG vertex.
type Node = core.Node

// NewDAG creates an empty transduction DAG.
func NewDAG() *DAG { return core.NewDAG() }

// RunInstance runs a single operator instance over a complete input —
// the operator's sequential denotation.
func RunInstance(op Operator, input []Event) []Event { return core.RunInstance(op, input) }

// RunParallel deploys one operator at the given parallelism (HASH or
// RR splitter per its mode) and merges the results — the right-hand
// side of the Theorem 4.3 equations.
func RunParallel(op Operator, input []Event, parallelism int) []Event {
	return core.RunParallel(op, input, parallelism, nil)
}

// --- compilation and runtime -----------------------------------------------

// SourceSpec tells the compiler how to realize a DAG source as spout
// instances.
type SourceSpec = compile.SourceSpec

// CompileOptions tunes DAG compilation.
type CompileOptions = compile.Options

// Topology is a runnable dataflow on the Storm-style runtime.
type Topology = storm.Topology

// Result is a completed topology run: sink streams plus stats.
type Result = storm.Result

// Spout is an event source for the runtime.
type Spout = storm.Spout

// Bolt is a processing vertex for hand-written topologies; template
// instances satisfy it directly.
type Bolt = storm.Bolt

// BoltFunc adapts a function to a Bolt.
type BoltFunc = storm.BoltFunc

// SliceSpout replays a fixed event sequence.
func SliceSpout(events []Event) Spout { return storm.SliceSpout(events) }

// --- columnar batches (DESIGN.md §9) ---------------------------------------

// Columns is a typed struct-of-arrays batch of item rows, recycled
// through per-kind arenas. The compiler selects the columnar
// transport for an edge when both endpoints agree on a column kind;
// markers never enter batches, so recovery and rescaling are
// unaffected.
type Columns = stream.Columns

// Cols is the concrete columnar batch: parallel Keys/Vals columns.
type Cols[K, V any] = stream.Cols[K, V]

// ColKind is the canonical descriptor of one columnar layout — a
// (key type, value type) pair. Kinds are canonicalized, so kind
// equality is pointer equality.
type ColKind = stream.ColKind

// ColKindFor returns the canonical kind for the (K, V) type pair.
// Declare it in SourceSpec.Cols to let edges out of a source go
// columnar; spouts that additionally implement ColSpout fill typed
// batches directly.
func ColKindFor[K, V any]() *ColKind { return stream.ColKindFor[K, V]() }

// ColSpout is an optional Spout extension: a source that fills typed
// column batches directly, skipping per-event boxing. A source whose
// SourceSpec declares Cols but whose spout only implements Spout
// degrades to boxed emission, not to wrong results.
type ColSpout = storm.ColSpout

// Compile translates a type-checked DAG into a topology, inserting
// the groupings, marker propagation and merge/sort fusion of the
// paper's section 5. A nil options selects the defaults, which enable
// the optimization passes (sort fusion, stateless chain fusion,
// shuffle-side combiners).
func Compile(d *DAG, sources map[string]SourceSpec, opts *CompileOptions) (*Topology, error) {
	return compile.Compile(d, sources, opts)
}

// CompilePlan is the compiler's optimization report: which operators
// fused into which bolts and which connections carry sender-side
// combining buffers, with live per-stage delivery counters for fused
// bolts.
type CompilePlan = compile.Plan

// CompileWithPlan is Compile returning, in addition, the optimization
// plan.
func CompileWithPlan(d *DAG, sources map[string]SourceSpec, opts *CompileOptions) (*Topology, *CompilePlan, error) {
	return compile.CompileWithPlan(d, sources, opts)
}

// Combinable is the optional Operator extension that exposes a keyed
// operator's aggregation monoid for sender-side combining; the
// KeyedUnordered and SlidingAggregate templates implement it.
type Combinable = core.Combinable

// CombinerSpec is a sender-side combining buffer's configuration, for
// hand-written topologies (BoltDecl.CombineWith); Compile installs
// specs automatically when CompileOptions.Combiners is on.
type CombinerSpec = storm.CombinerSpec

// DefaultCombinerCap is the combining buffer's default distinct-key
// capacity.
const DefaultCombinerCap = storm.DefaultCombinerCap

// NewTopology creates an empty runtime topology for hand-written
// deployments.
func NewTopology(name string) *Topology { return storm.NewTopology(name) }

// TransportOptions configures the batched edge transport: emitters
// accumulate per-destination send buffers and flush them as message
// vectors when a buffer reaches BatchSize, when a marker or EOS must
// cross the edge, or after FlushInterval of idleness. The zero value
// selects the defaults (BatchSize 64, FlushInterval 1ms); BatchSize 1
// reproduces the unbatched one-send-per-event transport exactly.
// Attach with Topology.SetTransport or CompileOptions.Transport.
type TransportOptions = storm.TransportOptions

// --- fault injection and recovery ------------------------------------------

// FaultPlan deterministically injects failures into a topology run:
// executor crashes at the Nth event, serializer corruption on a
// chosen edge, artificial slowdowns. Attach with Topology.SetFaultPlan.
type FaultPlan = storm.FaultPlan

// NewFaultPlan creates an empty fault plan.
func NewFaultPlan() *FaultPlan { return storm.NewFaultPlan() }

// RecoveryPolicy enables marker-cut checkpointing and restart for
// aligned bolt executors (CompileOptions.Recovery, or
// Topology.SetRecovery for hand-written topologies).
type RecoveryPolicy = storm.RecoveryPolicy

// Recoverable is the optional Bolt extension that supplies the
// snapshots recovery restores from; core.Snapshotter template
// instances are adapted automatically by Compile.
type Recoverable = storm.Recoverable

// Degradation selects what an unrecoverable executor does.
type Degradation = storm.Degradation

const (
	// AbortTopology fails the run on an unrecoverable executor.
	AbortTopology = storm.AbortTopology
	// DropAndLog keeps the run alive: items are dropped and counted,
	// markers keep flowing.
	DropAndLog = storm.DropAndLog
)

// --- elastic rescaling -------------------------------------------------------

// RescalePlan schedules live parallelism changes at marker cuts:
// each step names a component, its new parallelism, and the completed
// cut to reconfigure at. Attach with Topology.SetRescalePlan or
// CompileOptions.Rescale; requires marker-cut recovery.
type RescalePlan = storm.RescalePlan

// NewRescalePlan creates an empty rescale plan.
func NewRescalePlan() *RescalePlan { return storm.NewRescalePlan() }

// RescaleStep is one scheduled parallelism change of a RescalePlan.
type RescaleStep = storm.RescaleStep

// Resharder is the optional Recoverable extension that redistributes
// a component's keyed snapshots across a new parallelism; compiled
// template instances implement it automatically, hand-written bolts
// opt in to become rescalable.
type Resharder = storm.Resharder

// AutoscalePolicy is the feedback controller that rescales one
// component from its queue-depth gauges and queue-latency histograms
// during the run. Attach with Topology.SetAutoscale or
// CompileOptions.Autoscale; requires recovery and observability.
type AutoscalePolicy = storm.AutoscalePolicy

// --- networked runtime -------------------------------------------------------

// Placed is one executor's process placement: component, instance,
// hosting worker and global executor index.
type Placed = storm.Placed

// WorkerConfig tells ServeWorker which worker a process is and where
// the coordinator listens; WorkerEnvConfig reads it from the
// DTT_NET_* spawn contract.
type WorkerConfig = storm.WorkerConfig

// WorkerEnvConfig reads the networked-worker spawn contract from the
// environment; ok is false when this process was not spawned as a
// worker, and spec is the opaque application payload.
func WorkerEnvConfig() (cfg WorkerConfig, spec string, ok bool) {
	return storm.WorkerEnvConfig()
}

// NetOptions configures a networked multi-process run: worker count,
// worker command, fault injection and restart policy.
type NetOptions = storm.NetOptions

// KillPlan schedules one SIGKILL against a worker process after a
// number of committed marker cuts (chaos testing).
type KillPlan = storm.KillPlan

// NetRescalePlan schedules one cluster-wide rescale of a networked
// run: at the named committed cut the attempt is aborted and every
// subsequent attempt spawns with the revised spec — a revised
// placement table spliced onto the committed prefix, not charged
// against MaxRestarts.
type NetRescalePlan = storm.NetRescalePlan

// NetResult is a networked run's outcome: spliced sink streams,
// worker-reported stats, and recovery counters.
type NetResult = storm.NetResult

// RunNetworked launches a cluster of worker processes over localhost
// TCP, runs the topology they rebuild from NetOptions.Spec, and
// recovers from worker-process failure by restarting the cluster and
// splicing sink output at the last committed marker cut.
func RunNetworked(opts NetOptions) (*NetResult, error) { return storm.RunNetworked(opts) }

// --- observability -----------------------------------------------------------

// ObsConfig configures the executor-level observability subsystem:
// per-executor execute/queue latency histograms, queue-depth
// (backpressure) gauges, marker-cut lag tracking and sampled event
// spans. Attach with Topology.SetObservability or
// CompileOptions.Observability; disabled by default (zero overhead).
type ObsConfig = metrics.ObsConfig

// DefaultObsConfig enables observability with the default sampling
// period and span-ring capacity.
func DefaultObsConfig() ObsConfig { return metrics.DefaultObsConfig() }

// Stats is a run's live metrics collector. During Run it is reachable
// via Topology.LiveStats (race-safe to poll); after Run it is
// Result.Stats.
type Stats = metrics.Stats

// StatsSnapshot is a consistent copy-on-read export of a Stats
// collector (Stats.Snapshot), safe to retain and render while the run
// continues.
type StatsSnapshot = metrics.StatsSnapshot

// InstanceSnapshot is one executor's counters, histograms, gauges and
// retained spans inside a StatsSnapshot.
type InstanceSnapshot = metrics.InstanceSnapshot

// ComponentSnapshot aggregates a component's instances: summed
// counters, merged histograms, max queue depth
// (StatsSnapshot.ByComponent).
type ComponentSnapshot = metrics.ComponentSnapshot

// Hist is an immutable log-bucketed latency histogram snapshot; merge
// is a commutative monoid and quantiles carry ≤2× relative error.
type Hist = metrics.Hist

// Span is one sampled event execution (component, instance, executed
// ordinal, wall-clock start/end).
type Span = metrics.Span
