// Command dttlint runs the repository's streaming-determinism
// analyzer (internal/lint) over module packages and prints every
// finding as `file:line:col [DTT00N] message`.
//
// Usage:
//
//	dttlint [-json] [-tests] [packages]
//
// Packages default to ./... relative to the working directory. Exit
// status is 0 when the analysis is clean, 1 when diagnostics were
// reported, and 2 when the analysis itself failed (unparseable or
// ill-typed code, bad pattern).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"datatrace/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "print the result as JSON instead of file:line:col lines")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	flag.Parse()

	patterns := flag.Args()
	res, err := lint.Run(patterns, lint.Options{IncludeTests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dttlint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "dttlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d.String())
		}
		fmt.Fprintf(os.Stderr, "dttlint: %d package(s), %d finding(s), %dms\n",
			len(res.Packages), len(res.Diagnostics), res.ElapsedMS)
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}
