// Command dttlint runs the repository's streaming-determinism
// analyzer (internal/lint) over module packages and prints every
// finding as `file:line:col [DTT00N] message`.
//
// Usage:
//
//	dttlint [-json] [-tests] [packages]
//	dttlint -waivers [-json] [packages]
//
// Packages default to ./... relative to the working directory. Exit
// status is 0 when the analysis is clean, 1 when diagnostics were
// reported, and 2 when the analysis itself failed (unparseable or
// ill-typed code, bad pattern).
//
// -waivers audits suppression debt instead of running the rules: it
// lists every //lint:ignore directive (file:line, codes, reason; test
// files always included) and exits 1 if any directive is malformed or
// lacks a reason.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"datatrace/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "print the result as JSON instead of file:line:col lines")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	waivers := flag.Bool("waivers", false, "list every //lint:ignore directive instead of running the rules")
	flag.Parse()

	patterns := flag.Args()
	if *waivers {
		os.Exit(runWaivers(patterns, *jsonOut))
	}
	res, err := lint.Run(patterns, lint.Options{IncludeTests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dttlint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "dttlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d.String())
		}
		fmt.Fprintf(os.Stderr, "dttlint: %d package(s), %d finding(s), %dms (load %d, summaries %d, rules %d)\n",
			len(res.Packages), len(res.Diagnostics), res.ElapsedMS,
			res.LoadMS, res.SummaryMS, res.RulesMS)
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

// runWaivers handles -waivers and returns the exit status.
func runWaivers(patterns []string, jsonOut bool) int {
	rep, err := lint.CollectWaivers(patterns, lint.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dttlint: %v\n", err)
		return 2
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "dttlint: %v\n", err)
			return 2
		}
	} else {
		for _, w := range rep.Waivers {
			fmt.Printf("%s:%d [%s] %s\n", w.File, w.Line, strings.Join(w.Codes, ","), w.Reason)
		}
		for _, p := range rep.Problems {
			fmt.Printf("%s:%d [MALFORMED] %s\n", p.File, p.Line, p.Message)
		}
		fmt.Fprintf(os.Stderr, "dttlint: %d waiver(s), %d problem(s)\n", len(rep.Waivers), len(rep.Problems))
	}
	if len(rep.Problems) > 0 {
		return 1
	}
	return 0
}
