// Command dttcheck type-checks the repository's named transduction
// DAGs and prints their structure:
//
//	dttcheck -dag iot            # Example 4.1 / Figure 1 pipeline
//	dttcheck -dag iot-naive      # the ill-typed section 2 pipeline (fails)
//	dttcheck -dag queryIV        # Figure 3 (any of queryI..queryVI)
//	dttcheck -dag smarthome      # Figure 5
//	dttcheck -dag iot -dot       # Graphviz output with typed edges
//	dttcheck -dag queryIV -topology   # the compiled storm topology
//	dttcheck -dag iot -lint      # also run the dttlint source analyzer
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"datatrace/internal/compile"
	"datatrace/internal/core"
	"datatrace/internal/iot"
	"datatrace/internal/lint"
	"datatrace/internal/queries"
	"datatrace/internal/smarthome"
	"datatrace/internal/storm"
	"datatrace/internal/workload"
)

func buildDAG(name string, par int) (*core.DAG, error) {
	switch {
	case name == "iot":
		return iot.PipelineDAG(iot.DefaultSensorConfig(), par), nil
	case name == "iot-naive":
		return iot.IllTypedDAG(iot.DefaultSensorConfig(), par), nil
	case name == "smarthome":
		cfg := workload.DefaultSmartHomeConfig()
		cfg.Seconds = 20
		env, err := smarthome.NewEnv(cfg, nil)
		if err != nil {
			return nil, err
		}
		return smarthome.PipelineDAG(env, par), nil
	case strings.HasPrefix(name, "query"):
		def, err := queries.ByName(strings.TrimPrefix(name, "query"))
		if err != nil {
			return nil, err
		}
		cfg := workload.DefaultYahooConfig()
		cfg.Seconds = 2
		cfg.EventsPerSecond = 10
		env, err := queries.NewEnv(cfg, 0)
		if err != nil {
			return nil, err
		}
		return def.DAG(env, par), nil
	default:
		return nil, fmt.Errorf("unknown DAG %q (have iot, iot-naive, smarthome, queryI..queryVI)", name)
	}
}

func main() {
	var (
		dagName  = flag.String("dag", "iot", "DAG to check: iot, iot-naive, smarthome, queryI..queryVI")
		par      = flag.Int("par", 2, "parallelism hint for processing vertices")
		dot      = flag.Bool("dot", false, "print Graphviz with typed edges")
		topology = flag.Bool("topology", false, "print the compiled storm topology")
		gotypes  = flag.Bool("gotypes", false, "print the operators' Go-level key/value types")
		runLint  = flag.Bool("lint", false, "after the DAG type-check, run the dttlint source analyzer over the module")
	)
	flag.Parse()

	d, err := buildDAG(*dagName, *par)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttcheck:", err)
		os.Exit(2)
	}
	if err := d.Check(); err != nil {
		fmt.Fprintf(os.Stderr, "dttcheck: %s does NOT type-check:\n%v\n", *dagName, err)
		os.Exit(1)
	}
	fmt.Printf("%s type-checks: every channel respects its data-trace type.\n\n", *dagName)
	for _, n := range d.Nodes() {
		kind := map[core.NodeKind]string{
			core.SourceNode: "source", core.OpNode: "op", core.SinkNode: "sink",
		}[n.Kind]
		fmt.Printf("  %-7s %-16s ×%d  : %s\n", kind, n.Name, n.Parallelism, n.Type)
	}
	if *gotypes {
		fmt.Println()
		fmt.Print(d.DescribeGoTypes())
	}
	if *dot {
		fmt.Println()
		fmt.Print(d.Dot())
	}
	if *topology {
		empty := func(int) storm.Spout { return storm.SliceSpout(nil) }
		srcs := map[string]compile.SourceSpec{}
		for _, s := range d.Sources() {
			srcs[s.Name] = compile.SourceSpec{Parallelism: 1, Factory: empty}
		}
		top, err := compile.Compile(d, srcs, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dttcheck:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(top.String())
	}
	if *runLint {
		// The DAG check proves the edges; dttlint proves the code
		// inside the vertices keeps the determinism obligations those
		// edge types assume.
		res, err := lint.Run(nil, lint.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dttcheck: lint:", err)
			os.Exit(2)
		}
		fmt.Println()
		if len(res.Diagnostics) == 0 {
			fmt.Printf("dttlint: %d packages clean (%dms).\n", len(res.Packages), res.ElapsedMS)
			return
		}
		for _, diag := range res.Diagnostics {
			fmt.Println(diag)
		}
		fmt.Fprintf(os.Stderr, "dttcheck: dttlint reported %d finding(s)\n", len(res.Diagnostics))
		os.Exit(1)
	}
}
