package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"datatrace/internal/bench"
	"datatrace/internal/queries"
	"datatrace/internal/storm"
)

// runNet measures the cost of the process boundary: Query IV compiled
// and run in-process versus on a localhost-TCP cluster of worker
// processes (re-execs of this binary), at batch sizes 1 and 64. The
// comparison isolates the frame transport — same topology, same
// workload, same machine — so the gap is serialization plus socket
// hops, and the batch-size axis shows how much of it the batched
// transport amortizes away.
func runNet(cfg bench.Config, workers int, csv bool) {
	type row struct {
		batch   int
		mode    string
		events  int64
		wall    time.Duration
		perSec  float64
		streams string
	}
	var rows []row
	for _, batch := range []int{1, 64} {
		spec := queries.Spec{
			Query:     "IV",
			Variant:   queries.Generated,
			Par:       2,
			SourcePar: cfg.SourcePar,
			Transport: &storm.TransportOptions{BatchSize: batch},
		}

		env, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dttbench:", err)
			os.Exit(1)
		}
		local, err := queries.Run(env, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dttbench: in-process run:", err)
			os.Exit(1)
		}
		localEvents, _ := local.Stats.Component("yahoo")
		rows = append(rows, row{batch, "in-process", localEvents, local.Wall,
			float64(localEvents) / local.Wall.Seconds(), "channels"})

		net, err := queries.RunNetworked(queries.NetSpec{
			Spec: spec, Workers: workers, Cfg: cfg.Yahoo, OpDelay: cfg.OpDelay,
		}, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dttbench: networked run:", err)
			os.Exit(1)
		}
		netEvents, _ := net.Stats.Component("yahoo")
		rows = append(rows, row{batch, fmt.Sprintf("tcp ×%d procs", workers), netEvents, net.Wall,
			float64(netEvents) / net.Wall.Seconds(), "frames"})
	}

	if csv {
		fmt.Println("batch,mode,events,wall_ms,events_per_sec")
		for _, r := range rows {
			fmt.Printf("%d,%s,%d,%.1f,%.0f\n", r.batch, r.mode, r.events,
				float64(r.wall.Microseconds())/1000, r.perSec)
		}
		return
	}
	fmt.Println("== networked transport: Query IV, localhost TCP vs in-process ==")
	fmt.Printf("%-6s %-14s %12s %12s %14s\n", "batch", "mode", "events", "wall", "events/s")
	for _, r := range rows {
		fmt.Printf("%-6d %-14s %12d %12s %14.0f\n", r.batch, r.mode, r.events,
			r.wall.Round(time.Millisecond), r.perSec)
	}
	fmt.Println(strings.Repeat("-", 62))
}
