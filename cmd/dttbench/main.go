// Command dttbench regenerates the paper's evaluation figures on the
// in-process runtime:
//
//	dttbench -figure 4          # Queries I–VI, generated vs handcrafted (Figure 4)
//	dttbench -figure 6          # Smart Homes scaling (Figure 6)
//	dttbench -figure recovery   # checkpoint-interval sweep of marker-cut recovery
//	dttbench -figure transport  # batch-size sweep of the batched edge transport
//	dttbench -figure fusion     # optimization-pass sweep (chain fusion × combiners)
//	dttbench -figure columnar   # boxed vs typed-column batches across batch sizes
//	dttbench -figure all        # everything, plus the section 2 experiment
//	dttbench -section2          # only the motivation experiment
//	dttbench -obs               # Query IV observability report on both runtimes
//	dttbench -net               # Query IV over localhost TCP vs in-process
//	dttbench -rescale           # bursty workload: static provisioning vs autoscaler
//	dttbench -figure 4 -csv     # machine-readable output
//
// Workload knobs: -eps (events/second), -seconds (event-time length),
// -workers (max simulated cluster size), -opdelay (simulated DB call
// latency), -sources (source partitions).
//
// Profiling: -cpuprofile and -memprofile write pprof files covering
// whatever figures the invocation runs, e.g.
//
//	dttbench -figure fusion -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"datatrace/internal/bench"
	"datatrace/internal/queries"
)

func main() {
	// Re-exec'd with the DTT_NET_* spawn contract, this binary is a
	// worker process of a networked run (the -net benchmark launches
	// them); RunWorkerIfSpawned serves and exits in that case.
	queries.RunWorkerIfSpawned()
	var (
		figure   = flag.String("figure", "all", "which figure to regenerate: 4, 6, backends, recovery, transport, fusion, columnar or all")
		section2 = flag.Bool("section2", false, "run only the section 2 semantics experiment")
		obs      = flag.Bool("obs", false, "run Query IV with observability on and print per-component p50/p99 exec latency, max queue depth and marker-cut lag for both runtimes")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables")
		workers  = flag.Int("workers", 8, "maximum simulated cluster size")
		eps      = flag.Int("eps", 2000, "Yahoo workload events per second")
		seconds  = flag.Int("seconds", 15, "Yahoo workload event-time length")
		shSecs   = flag.Int("sh-seconds", 300, "Smart Homes event-time length")
		opDelay  = flag.Duration("opdelay", 2*time.Microsecond, "simulated DB per-call latency")
		sources  = flag.Int("sources", 2, "source partitions")
		rescale  = flag.Bool("rescale", false, "benchmark a bursty keyed workload at static parallelism 1/2/4 against the queue-depth autoscaler with live rescaling")
		netBench = flag.Bool("net", false, "benchmark Query IV on a localhost-TCP multi-process cluster against the in-process runtime, at transport batch sizes 1 and 64")
		netProcs = flag.Int("net-workers", 2, "worker processes of the -net benchmark")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile covering the selected figures to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the selected figures to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dttbench: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dttbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dttbench: memprofile:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dttbench: memprofile:", err)
				os.Exit(1)
			}
		}()
	}

	cfg := bench.DefaultConfig()
	cfg.MaxWorkers = *workers
	cfg.Yahoo.EventsPerSecond = *eps
	cfg.Yahoo.Seconds = *seconds
	cfg.SmartHome.Seconds = *shSecs
	cfg.OpDelay = *opDelay
	cfg.SourcePar = *sources

	if *section2 {
		runSection2()
		return
	}
	if *obs {
		runObs(cfg, *csv)
		return
	}
	if *rescale {
		runRescale(cfg, *csv)
		return
	}
	if *netBench {
		runNet(cfg, *netProcs, *csv)
		return
	}

	switch *figure {
	case "4":
		emitFigure(bench.Figure4, cfg, *csv)
	case "6":
		emitFigure(bench.Figure6, cfg, *csv)
	case "backends":
		emitFigure(bench.BackendComparison, cfg, *csv)
	case "recovery":
		runRecovery(cfg, *csv)
	case "transport":
		runTransport(cfg, *csv)
	case "fusion":
		runFusion(cfg, *csv)
	case "columnar":
		runColumnar(cfg, *csv)
	case "all":
		emitFigure(bench.Figure4, cfg, *csv)
		emitFigure(bench.Figure6, cfg, *csv)
		emitFigure(bench.BackendComparison, cfg, *csv)
		runRecovery(cfg, *csv)
		runTransport(cfg, *csv)
		runFusion(cfg, *csv)
		runColumnar(cfg, *csv)
		runSection2()
	default:
		fmt.Fprintf(os.Stderr, "dttbench: unknown figure %q (want 4, 6, backends, recovery, transport, fusion, columnar or all)\n", *figure)
		os.Exit(2)
	}
}

func emitFigure(build func(bench.Config) (*bench.Figure, error), cfg bench.Config, csv bool) {
	fig, err := build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttbench:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(fig.CSV())
		return
	}
	fmt.Println(fig.Table())
}

func runRecovery(cfg bench.Config, csv bool) {
	res, err := bench.RecoverySweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttbench:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Println(res.Table())
}

func runTransport(cfg bench.Config, csv bool) {
	res, err := bench.TransportSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttbench:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Println(res.Table())
}

func runFusion(cfg bench.Config, csv bool) {
	res, err := bench.FusionSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttbench:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Println(res.Table())
}

func runColumnar(cfg bench.Config, csv bool) {
	res, err := bench.ColumnarSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttbench:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Println(res.Table())
}

func runRescale(cfg bench.Config, csv bool) {
	res, err := bench.RescaleSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttbench:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Println(res.Table())
}

func runObs(cfg bench.Config, csv bool) {
	rep, err := bench.Observability(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttbench:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(rep.CSV())
		return
	}
	fmt.Println(rep.Table())
}

func runSection2() {
	res, err := bench.Section2(2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dttbench:", err)
		os.Exit(1)
	}
	fmt.Println("== section 2: semantics of parallel deployment (Map ×2 → LI → MaxOfAvg) ==")
	fmt.Printf("naive shuffle deployment ≡ specification:  %v   (expected false)\n", res.NaiveEquivalent)
	fmt.Printf("typed deployment ≡ specification:          %v   (expected true)\n", res.TypedEquivalent)
	fmt.Printf("type checker rejects the sort-free DAG:    %v   (expected true)\n", res.TypeCheckRejectsNaive)
}
