// Command dttworker is the standalone worker process of the
// networked storm runtime. It is not meant to be invoked by hand: a
// coordinator (storm.RunNetworked with Command pointing here, or any
// binary that calls queries.RunWorkerIfSpawned) launches one dttworker
// per placement slot with the spawn contract in the environment:
//
//	DTT_NET_COORD    coordinator's control address (host:port)
//	DTT_NET_WORKER   this worker's id, 0-based
//	DTT_NET_WORKERS  total worker count
//	DTT_NET_ATTEMPT  the coordinator's restart epoch
//	DTT_NET_SPEC     JSON-encoded queries.NetSpec to rebuild the topology
//
// The worker rebuilds the topology from the spec, serves its share of
// the executors — local edges over channels, cross-worker edges over
// length-prefixed TCP frames — streams its sink output to the
// coordinator at marker granularity, and exits 0 after the
// coordinator's shutdown.
package main

import (
	"fmt"
	"os"

	"datatrace/internal/queries"
	"datatrace/internal/storm"
)

func main() {
	queries.RunWorkerIfSpawned()
	fmt.Fprintf(os.Stderr, `dttworker: not spawned as a networked worker.

This binary serves one worker of a networked run and is launched by a
coordinator with the spawn contract in the environment:

  %s    coordinator control address (host:port)
  %s   worker id (0-based)
  %s  total worker count
  %s  restart epoch
  %s     JSON queries.NetSpec

Start a run with storm.RunNetworked (e.g. "dttbench -net").
`, storm.EnvCoordAddr, storm.EnvWorkerID, storm.EnvWorkers, storm.EnvAttempt, storm.EnvSpec)
	os.Exit(2)
}
