package datatrace

// Integration tests of the public API surface: everything a downstream
// user touches, exercised through the re-exports only.

import (
	"math/rand"
	"strings"
	"testing"
)

// apiStream builds a small keyed stream with markers.
func apiStream(blocks, perBlock, keys int) []Event {
	r := rand.New(rand.NewSource(71))
	var out []Event
	for b := 0; b < blocks; b++ {
		for i := 0; i < perBlock; i++ {
			out = append(out, Item(r.Intn(keys), float64(r.Intn(100))))
		}
		out = append(out, Mark(Marker{Seq: int64(b), Timestamp: int64(b + 1)}))
	}
	return out
}

func apiFilter() *Stateless[int, float64, int, float64] {
	return &Stateless[int, float64, int, float64]{
		OpName: "filterEven",
		In:     U("Int", "Float"),
		Out:    U("Int", "Float"),
		OnItem: func(emit Emit[int, float64], k int, v float64) {
			if k%2 == 0 {
				emit(k, v)
			}
		},
	}
}

func apiSum() *KeyedUnordered[int, float64, int, float64, float64, float64] {
	return &KeyedUnordered[int, float64, int, float64, float64, float64]{
		OpName:       "sumPerKey",
		InT:          U("Int", "Float"),
		OutT:         U("Int", "Float"),
		In:           func(_ int, v float64) float64 { return v },
		ID:           func() float64 { return 0 },
		Combine:      func(x, y float64) float64 { return x + y },
		InitialState: func() float64 { return 0 },
		UpdateState:  func(_, agg float64) float64 { return agg },
		OnMarker: func(emit Emit[int, float64], st float64, k int, m Marker) {
			emit(k, st)
		},
	}
}

func TestPublicAPIFullPipeline(t *testing.T) {
	in := apiStream(4, 20, 6)
	dag := NewDAG()
	src := dag.Source("source", U("Int", "Float"))
	f := dag.Op(apiFilter(), 2, src)
	s := dag.Op(apiSum(), 3, f)
	dag.Sink("printer", s)

	ref, err := dag.Eval(map[string][]Event{"source": in})
	if err != nil {
		t.Fatal(err)
	}
	top, err := Compile(dag, map[string]SourceSpec{
		"source": {Parallelism: 1, Factory: func(int) Spout { return SliceSpout(in) }},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(U("Int", "Float"), ref["printer"], res.Sinks["printer"]) {
		t.Fatalf("deployment differs from reference:\n ref %s\n got %s",
			Render(ref["printer"]), Render(res.Sinks["printer"]))
	}
}

func TestPublicAPITypeCheckErrors(t *testing.T) {
	dag := NewDAG()
	src := dag.Source("src", O("Int", "Float")) // ordered source
	dag.Sink("out", dag.Op(apiFilter(), 1, src))
	// O flows into U: fine by subtyping — must pass.
	if err := dag.Check(); err != nil {
		t.Fatal(err)
	}

	bad := NewDAG()
	bsrc := bad.Source("src", U("String", "Float"))
	bad.Sink("out", bad.Op(apiSum(), 1, bsrc))
	err := bad.Check()
	if err == nil || !strings.Contains(err.Error(), "expects input U(Int,Float)") {
		t.Fatalf("got %v", err)
	}
}

func TestPublicAPISortAndRunParallel(t *testing.T) {
	srt := &Sort[int, float64]{
		OpName: "SORT",
		In:     U("Int", "Float"),
		Out:    O("Int", "Float"),
		Less:   func(a, b float64) bool { return a < b },
	}
	in := apiStream(3, 15, 4)
	ref := RunInstance(srt, in)
	for par := 2; par <= 4; par++ {
		got := RunParallel(srt, in, par)
		if !Equivalent(O("Int", "Float"), ref, got) {
			t.Fatalf("par %d changed the sort's trace", par)
		}
	}
}

func TestPublicAPIMergeEvents(t *testing.T) {
	a := []Event{Item(1, 1.0), Mark(Marker{Seq: 0, Timestamp: 1})}
	b := []Event{Item(2, 2.0), Mark(Marker{Seq: 0, Timestamp: 1})}
	merged := MergeEvents(a, b)
	want := []Event{Item(1, 1.0), Item(2, 2.0), Mark(Marker{Seq: 0, Timestamp: 1})}
	if !Equivalent(U("Int", "Float"), merged, want) {
		t.Fatalf("got %s", Render(merged))
	}
}

func TestPublicAPIHandwrittenTopology(t *testing.T) {
	in := apiStream(2, 10, 3)
	top := NewTopology("manual")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("scale", 2, func(int) Bolt {
		return BoltFunc(func(e Event, emit func(Event)) {
			if e.IsMarker {
				emit(e)
				return
			}
			emit(Item(e.Key, e.Value.(float64)*2))
		})
	}).ShuffleGrouping("src", true)
	top.AddSink("sink", "scale")
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	items := 0
	for _, e := range res.Sinks["sink"] {
		if !e.IsMarker {
			items++
		}
	}
	if items != 20 {
		t.Fatalf("hand-written topology delivered %d items, want 20", items)
	}
}

func TestPublicAPISlidingAggregate(t *testing.T) {
	win := &SlidingAggregate[int, float64, float64]{
		OpName:       "slidingSum",
		InT:          U("Int", "Float"),
		OutT:         U("Int", "Float"),
		WindowBlocks: 2,
		In:           func(_ int, v float64) float64 { return v },
		ID:           func() float64 { return 0 },
		Combine:      func(x, y float64) float64 { return x + y },
		EmitEmpty:    true,
	}
	in := []Event{
		Item(1, 10.0), Mark(Marker{Seq: 0, Timestamp: 1}),
		Item(1, 5.0), Mark(Marker{Seq: 1, Timestamp: 2}),
		Mark(Marker{Seq: 2, Timestamp: 3}),
	}
	out := RunInstance(win, in)
	var vals []float64
	for _, e := range out {
		if !e.IsMarker {
			vals = append(vals, e.Value.(float64))
		}
	}
	want := []float64{10, 15, 5}
	if len(vals) != len(want) {
		t.Fatalf("got %v want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("got %v want %v", vals, want)
		}
	}
}

func TestUnitRendering(t *testing.T) {
	if (Unit{}).String() != "Ut" {
		t.Fatal("unit must render as Ut")
	}
}

// TestPublicAPIObservability exercises the observability surface
// through the re-exports only: compile with CompileOptions.Observability,
// poll LiveStats mid-run semantics via the final collector, and render
// the snapshot.
func TestPublicAPIObservability(t *testing.T) {
	in := apiStream(6, 30, 6)
	dag := NewDAG()
	src := dag.Source("source", U("Int", "Float"))
	s := dag.Op(apiSum(), 2, dag.Op(apiFilter(), 2, src))
	dag.Sink("printer", s)

	cfg := DefaultObsConfig()
	top, err := Compile(dag, map[string]SourceSpec{
		"source": {Parallelism: 1, Factory: func(int) Spout { return SliceSpout(in) }},
	}, &CompileOptions{FuseSort: true, Observability: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	var live *Stats = top.LiveStats()
	if live != res.Stats {
		t.Fatal("LiveStats must expose the run's collector")
	}
	snap := live.Snapshot()
	var comps []ComponentSnapshot = snap.ByComponent()
	byName := map[string]ComponentSnapshot{}
	for _, c := range comps {
		byName[c.Component] = c
	}
	if byName["source"].Executed != int64(len(in)) {
		t.Fatalf("source executed %d, want %d", byName["source"].Executed, len(in))
	}
	var h Hist = byName["filterEven"].Exec
	if h.Empty() || h.Quantile(0.99) < h.Quantile(0.50) {
		t.Fatalf("bad exec histogram: %+v", h)
	}
	if byName["filterEven"].MaxQueueDepth < 1 {
		t.Fatal("backpressure gauge never observed a queued message")
	}
	if !strings.Contains(snap.ObsTable(), "filterEven") {
		t.Fatalf("ObsTable missing component:\n%s", snap.ObsTable())
	}
	var spans []Span
	for _, is := range snap.Instances {
		var isnap InstanceSnapshot = is
		spans = append(spans, isnap.Spans...)
	}
	for _, sp := range spans {
		if sp.Duration() < 0 || sp.Component == "" {
			t.Fatalf("malformed span %+v", sp)
		}
	}
}
