package compile

import (
	"math/rand"
	"strings"
	"testing"

	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

func mk(seq, ts int64) stream.Event { return stream.Mark(stream.Marker{Seq: seq, Timestamp: ts}) }

func randomStream(r *rand.Rand, nBlocks, maxPerBlock, keys int) []stream.Event {
	var out []stream.Event
	ts := int64(0)
	for b := 0; b < nBlocks; b++ {
		n := r.Intn(maxPerBlock + 1)
		for i := 0; i < n; i++ {
			out = append(out, stream.Item(r.Intn(keys), r.Intn(100)))
		}
		ts += 10
		out = append(out, stream.Mark(stream.Marker{Seq: int64(b), Timestamp: ts}))
	}
	return out
}

func evenFilter() core.Operator {
	return &core.Stateless[int, int, int, int]{
		OpName: "filterEven",
		In:     stream.U("Int", "Int"),
		Out:    stream.U("Int", "Int"),
		OnItem: func(emit core.Emit[int, int], key, value int) {
			if key%2 == 0 {
				emit(key, value)
			}
		},
	}
}

func sumPerKey() core.Operator {
	return &core.KeyedUnordered[int, int, int, int, int, int]{
		OpName:       "sumPerKey",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(key, value int) int { return value },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() int { return 0 },
		UpdateState:  func(old, agg int) int { return agg },
		OnMarker: func(emit core.Emit[int, int], newState int, key int, m stream.Marker) {
			emit(key, newState)
		},
	}
}

func runningSum() core.Operator {
	return &core.KeyedOrdered[int, int, int, int]{
		OpName:       "runningSum",
		In:           stream.O("Int", "Int"),
		Out:          stream.O("Int", "Int"),
		InitialState: func() int { return 0 },
		OnItem: func(emit func(int), state, key, value int) int {
			state += value
			emit(state)
			return state
		},
	}
}

func sortOp() core.Operator {
	return &core.Sort[int, int]{
		OpName: "SORT",
		In:     stream.U("Int", "Int"),
		Out:    stream.O("Int", "Int"),
		Less:   func(a, b int) bool { return a < b },
	}
}

// pipelineDAG: source → filter(par a) → sum(par b) → sink.
func pipelineDAG(parFilter, parSum int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	f := d.Op(evenFilter(), parFilter, src)
	s := d.Op(sumPerKey(), parSum, f)
	d.Sink("out", s)
	return d
}

// sortedDAG: source → SORT(par a) → runningSum(par b) → sink (the
// Example 4.1 / Figure 1 shape).
func sortedDAG(parSort, parSum int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	so := d.Op(sortOp(), parSort, src)
	rs := d.Op(runningSum(), parSum, so)
	d.Sink("out", rs)
	return d
}

func runCompiled(t *testing.T, d *core.DAG, in []stream.Event, opts *Options) map[string][]stream.Event {
	t.Helper()
	top, err := Compile(d, map[string]SourceSpec{
		"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Sinks
}

// TestCompiledMatchesReference is the central compiler correctness
// property (Corollary 4.4, on the real concurrent runtime): the
// compiled topology's sink traces equal the DAG's reference
// denotation, for random inputs and parallelism settings, with and
// without sort fusion.
func TestCompiledMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	builders := []struct {
		name  string
		build func(p1, p2 int) *core.DAG
	}{
		{"filter-sum", pipelineDAG},
		{"sort-runningSum", sortedDAG},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				in := randomStream(r, 2+r.Intn(3), 12, 6)
				ref, err := b.build(1, 1).Eval(map[string][]stream.Event{"src": in})
				if err != nil {
					t.Fatal(err)
				}
				for _, pars := range [][2]int{{1, 1}, {2, 3}, {4, 2}} {
					for _, fuse := range []bool{false, true} {
						d := b.build(pars[0], pars[1])
						got := runCompiled(t, d, in, &Options{FuseSort: fuse})
						if err := d.EquivalentOutputs(ref, got); err != nil {
							t.Fatalf("pars=%v fuse=%v: %v", pars, fuse, err)
						}
					}
				}
			}
		})
	}
}

func TestCompileRejectsMissingSource(t *testing.T) {
	d := pipelineDAG(1, 1)
	_, err := Compile(d, map[string]SourceSpec{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no SourceSpec") {
		t.Fatalf("got %v", err)
	}
}

func TestCompileRejectsIllTypedDAG(t *testing.T) {
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	d.Sink("out", d.Op(runningSum(), 1, src)) // U into O: ill-typed
	_, err := Compile(d, map[string]SourceSpec{
		"src": {Factory: func(int) storm.Spout { return storm.SliceSpout(nil) }},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "ill-typed") {
		t.Fatalf("got %v", err)
	}
}

func TestSortFusionRemovesComponent(t *testing.T) {
	d := sortedDAG(2, 2)
	in := randomStream(rand.New(rand.NewSource(1)), 2, 8, 4)
	srcs := map[string]SourceSpec{
		"src": {Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
	}
	fused, err := Compile(d, srcs, &Options{FuseSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fused.String(), "bolt SORT") {
		t.Fatalf("fused topology still has a SORT bolt:\n%s", fused.String())
	}
	plain, err := Compile(sortedDAG(2, 2), srcs, &Options{FuseSort: false})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain.String(), "bolt SORT") {
		t.Fatalf("unfused topology lost its SORT bolt:\n%s", plain.String())
	}
}

func TestSortNotFusedAcrossFanOut(t *testing.T) {
	// SORT with two consumers must not be fused.
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	so := d.Op(sortOp(), 1, src)
	a := d.Op(runningSum(), 1, so)
	b := d.Op(&core.KeyedOrdered[int, int, int, int]{
		OpName:       "runningSum2",
		In:           stream.O("Int", "Int"),
		Out:          stream.O("Int", "Int"),
		InitialState: func() int { return 0 },
		OnItem: func(emit func(int), state, key, value int) int {
			return state + value
		},
	}, 1, so)
	d.Sink("outA", a)
	d.Sink("outB", b)
	top, err := Compile(d, map[string]SourceSpec{
		"src": {Factory: func(int) storm.Spout { return storm.SliceSpout(nil) }},
	}, &Options{FuseSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(top.String(), "bolt SORT") {
		t.Fatalf("SORT with fan-out must not be fused:\n%s", top.String())
	}
}

func TestPartitionedSources(t *testing.T) {
	// Two spout instances each producing half the items with the same
	// marker sequence model the Yahoo0..YahooN partitioned source; the
	// merged result must equal the reference on the union stream.
	half1 := []stream.Event{stream.Item(2, 1), mk(0, 10), stream.Item(2, 3), mk(1, 20)}
	half2 := []stream.Event{stream.Item(4, 2), mk(0, 10), mk(1, 20)}
	union := stream.MergeEvents(half1, half2)

	d := pipelineDAG(2, 2)
	ref, err := pipelineDAG(1, 1).Eval(map[string][]stream.Event{"src": union})
	if err != nil {
		t.Fatal(err)
	}
	top, err := Compile(d, map[string]SourceSpec{
		"src": {Parallelism: 2, Factory: func(i int) storm.Spout {
			if i == 0 {
				return storm.SliceSpout(half1)
			}
			return storm.SliceSpout(half2)
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EquivalentOutputs(ref, res.Sinks); err != nil {
		t.Fatal(err)
	}
}

func TestGroupingSelection(t *testing.T) {
	d := pipelineDAG(2, 2)
	top, err := Compile(d, map[string]SourceSpec{
		"src": {Factory: func(int) storm.Spout { return storm.SliceSpout(nil) }},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := top.String()
	if !strings.Contains(s, "filterEven ×2 ← src(shuffle,aligned)") {
		t.Fatalf("stateless consumer must use shuffle:\n%s", s)
	}
	if !strings.Contains(s, "sumPerKey ×2 ← filterEven(fields,aligned)") {
		t.Fatalf("keyed consumer must use fields:\n%s", s)
	}
}
