package compile

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// This file tests the optimization pipeline added on top of the base
// compilation: stateless chain fusion and shuffle-side combiners, the
// Plan debugging output, and the option validation around them.

// statelessOp builds a named stateless int→int stage applying f.
func statelessOp(name string, f func(k, v int) (int, int, bool)) core.Operator {
	return &core.Stateless[int, int, int, int]{
		OpName: name,
		In:     stream.U("Int", "Int"),
		Out:    stream.U("Int", "Int"),
		OnItem: func(emit core.Emit[int, int], k, v int) {
			if nk, nv, ok := f(k, v); ok {
				emit(nk, nv)
			}
		},
	}
}

// chainedDAG: src → drop3 → scale → shift (stateless ×par) →
// sumPerKey → sink; the three stateless stages form a fusable chain.
func chainedDAG(par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	a := d.Op(statelessOp("drop3", func(k, v int) (int, int, bool) { return k, v, v%3 != 0 }), par, src)
	b := d.Op(statelessOp("scale", func(k, v int) (int, int, bool) { return k, v * 2, true }), par, a)
	c := d.Op(statelessOp("shift", func(k, v int) (int, int, bool) { return k + 1, v, true }), par, b)
	s := d.Op(sumPerKey(), par, c)
	d.Sink("out", s)
	return d
}

func optSources(in []stream.Event) map[string]SourceSpec {
	return map[string]SourceSpec{
		"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
	}
}

// TestChainFusionCollapsesStatelessChain checks the structural half of
// the pass: the three stateless stages compile to ONE bolt named after
// the chain tail, wired to the source with the head's shuffle
// grouping, and the Plan reports the fused stages in order.
func TestChainFusionCollapsesStatelessChain(t *testing.T) {
	in := randomStream(rand.New(rand.NewSource(3)), 3, 10, 5)
	top, plan, err := CompileWithPlan(chainedDAG(2), optSources(in), &Options{FuseChains: true})
	if err != nil {
		t.Fatal(err)
	}
	s := top.String()
	for _, gone := range []string{"bolt drop3", "bolt scale"} {
		if strings.Contains(s, gone) {
			t.Fatalf("chain member %q survived fusion:\n%s", gone, s)
		}
	}
	if !strings.Contains(s, "shift ×2 ← src(shuffle,aligned)") {
		t.Fatalf("fused bolt must keep the tail's name and the head's wiring:\n%s", s)
	}
	var fused *PlanBolt
	for i := range plan.Bolts {
		if plan.Bolts[i].Name == "shift" {
			fused = &plan.Bolts[i]
		}
	}
	if fused == nil {
		t.Fatalf("plan has no bolt 'shift':\n%s", plan)
	}
	want := []string{"drop3", "scale", "shift"}
	if len(fused.Stages) != len(want) {
		t.Fatalf("fused bolt stages = %v, want %v", fused.Stages, want)
	}
	for i, n := range want {
		if fused.Stages[i] != n {
			t.Fatalf("fused bolt stages = %v, want %v", fused.Stages, want)
		}
	}
	if !strings.Contains(plan.String(), "fuses [drop3 → scale → shift]") {
		t.Fatalf("plan rendering misses the fused chain:\n%s", plan)
	}

	// Off switch: every member compiles to its own bolt.
	plainTop, plainPlan, err := CompileWithPlan(chainedDAG(2), optSources(in), &Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bolt drop3", "bolt scale", "bolt shift"} {
		if !strings.Contains(plainTop.String(), name) {
			t.Fatalf("FuseChains off still lost %q:\n%s", name, plainTop.String())
		}
	}
	for _, b := range plainPlan.Bolts {
		if len(b.Stages) > 1 {
			t.Fatalf("FuseChains off produced a fused bolt %v", b)
		}
	}
}

// TestChainFusionStageCounts runs a fused topology and checks the
// Plan's live per-stage delivery counters: the first stage sees every
// delivered event, later stages see what their predecessors emitted
// (drop3 filters, so strictly fewer items reach scale).
func TestChainFusionStageCounts(t *testing.T) {
	in := randomStream(rand.New(rand.NewSource(8)), 4, 20, 5)
	top, plan, err := CompileWithPlan(chainedDAG(2), optSources(in), &Options{FuseChains: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := top.Run(); err != nil {
		t.Fatal(err)
	}
	counts := plan.StageCounts("shift")
	if len(counts) != 3 {
		t.Fatalf("StageCounts = %v, want 3 stages", counts)
	}
	var items, kept int64
	for _, e := range in {
		if !e.IsMarker {
			items++
			if e.Value.(int)%3 != 0 {
				kept++
			}
		}
	}
	if counts[0].Events < items {
		t.Fatalf("stage 0 (%s) saw %d events, want ≥ %d items", counts[0].Stage, counts[0].Events, items)
	}
	// drop3 filters items; scale and shift pass everything through.
	wantMid := counts[0].Events - (items - kept)
	if counts[1].Events != wantMid || counts[2].Events != wantMid {
		t.Fatalf("later stages saw %d/%d events, want %d (stage 0 minus the %d filtered items)",
			counts[1].Events, counts[2].Events, wantMid, items-kept)
	}
	if plan.StageCounts("nope") != nil {
		t.Fatal("StageCounts of an unknown bolt must be nil")
	}
}

// TestChainFusionBoundaries pins the pass's conservatism: mismatched
// parallelism, fan-out and fan-in all break a chain.
func TestChainFusionBoundaries(t *testing.T) {
	pass := func(k, v int) (int, int, bool) { return k, v, true }

	t.Run("parallelism-mismatch", func(t *testing.T) {
		d := core.NewDAG()
		src := d.Source("src", stream.U("Int", "Int"))
		a := d.Op(statelessOp("a", pass), 2, src)
		b := d.Op(statelessOp("b", pass), 3, a)
		d.Sink("out", b)
		top, _, err := CompileWithPlan(d, optSources(nil), &Options{FuseChains: true})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(top.String(), "bolt a") || !strings.Contains(top.String(), "bolt b") {
			t.Fatalf("parallelism mismatch must not fuse:\n%s", top.String())
		}
	})

	t.Run("fan-out", func(t *testing.T) {
		d := core.NewDAG()
		src := d.Source("src", stream.U("Int", "Int"))
		a := d.Op(statelessOp("a", pass), 2, src)
		b := d.Op(statelessOp("b", pass), 2, a)
		c := d.Op(statelessOp("c", pass), 2, a)
		d.Sink("outB", b)
		d.Sink("outC", c)
		top, _, err := CompileWithPlan(d, optSources(nil), &Options{FuseChains: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"bolt a", "bolt b", "bolt c"} {
			if !strings.Contains(top.String(), name) {
				t.Fatalf("fan-out must not fuse (missing %s):\n%s", name, top.String())
			}
		}
	})

	t.Run("fan-in", func(t *testing.T) {
		d := core.NewDAG()
		src := d.Source("src", stream.U("Int", "Int"))
		a := d.Op(statelessOp("a", pass), 2, src)
		b := d.Op(statelessOp("b", pass), 2, src)
		j := d.Op(statelessOp("j", pass), 2, a, b)
		d.Sink("out", j)
		top, _, err := CompileWithPlan(d, optSources(nil), &Options{FuseChains: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"bolt a", "bolt b", "bolt j"} {
			if !strings.Contains(top.String(), name) {
				t.Fatalf("fan-in must not fuse (missing %s):\n%s", name, top.String())
			}
		}
	})
}

// TestChainFusionWithSortPrefix checks the two fusion rules compose: a
// SORT feeding a stateless chain head ends up as the first stage of
// the fused bolt, with fields grouping (the sort needs key routing).
func TestChainFusionWithSortPrefix(t *testing.T) {
	build := func() *core.DAG {
		d := core.NewDAG()
		src := d.Source("src", stream.U("Int", "Int"))
		so := d.Op(sortOp(), 2, src)
		// A stateless stage accepts the sort's ordered output via
		// subtyping and forgets the order.
		a := d.Op(statelessOp("a", func(k, v int) (int, int, bool) { return k, v + 1, true }), 2, so)
		b := d.Op(statelessOp("b", func(k, v int) (int, int, bool) { return k, v * 2, true }), 2, a)
		d.Sink("out", b)
		return d
	}
	in := randomStream(rand.New(rand.NewSource(11)), 3, 10, 4)
	ref, err := build().Eval(map[string][]stream.Event{"src": in})
	if err != nil {
		t.Fatal(err)
	}
	top, plan, err := CompileWithPlan(build(), optSources(in), &Options{FuseSort: true, FuseChains: true})
	if err != nil {
		t.Fatal(err)
	}
	s := top.String()
	for _, gone := range []string{"bolt SORT", "bolt a "} {
		if strings.Contains(s, gone) {
			t.Fatalf("%q must be fused away:\n%s", gone, s)
		}
	}
	if !strings.Contains(s, "b ×2 ← src(fields,aligned)") {
		t.Fatalf("fused sort must force fields grouping on the composite bolt:\n%s", s)
	}
	var stages []string
	for _, pb := range plan.Bolts {
		if pb.Name == "b" {
			stages = pb.Stages
		}
	}
	if len(stages) != 3 || stages[0] != "SORT" {
		t.Fatalf("fused bolt stages = %v, want [SORT a b]", stages)
	}
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	dag := build()
	if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
		t.Fatal(err)
	}
}

// TestCombinerPassInstallsOnKeyedEdge checks the combiner pass end to
// end on the canonical shape (stateless producer → keyed aggregator):
// the plan records the combined edge, the run is trace-equivalent to
// the reference, and the stats show actual compression.
func TestCombinerPassInstallsOnKeyedEdge(t *testing.T) {
	// Many items over few keys per block so combining actually
	// compresses.
	var in []stream.Event
	for b := 0; b < 5; b++ {
		for i := 0; i < 200; i++ {
			in = append(in, stream.Item(i%4, i))
		}
		in = append(in, mk(int64(b), int64(b*10)))
	}
	ref, err := pipelineDAG(1, 1).Eval(map[string][]stream.Event{"src": in})
	if err != nil {
		t.Fatal(err)
	}
	d := pipelineDAG(2, 2)
	top, plan, err := CompileWithPlan(d, optSources(in), &Options{Combiners: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.CombinedEdges) != 1 {
		t.Fatalf("plan.CombinedEdges = %v, want exactly the filterEven→sumPerKey edge", plan.CombinedEdges)
	}
	e := plan.CombinedEdges[0]
	if e.From != "filterEven" || e.To != "sumPerKey" || e.Cap != storm.DefaultCombinerCap {
		t.Fatalf("combined edge = %+v, want filterEven→sumPerKey cap %d", e, storm.DefaultCombinerCap)
	}
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EquivalentOutputs(ref, res.Sinks); err != nil {
		t.Fatal(err)
	}
	cin, cout := res.Stats.Combined()
	if cin == 0 || cout == 0 || cout >= cin {
		t.Fatalf("combiner stats in=%d out=%d: expected compression (0 < out < in)", cin, cout)
	}

	// Off switch: no combined edges, same trace.
	plainTop, plainPlan, err := CompileWithPlan(pipelineDAG(2, 2), optSources(in), &Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plainPlan.CombinedEdges) != 0 {
		t.Fatalf("Combiners off still combined %v", plainPlan.CombinedEdges)
	}
	plainRes, err := plainTop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cin, _ := plainRes.Stats.Combined(); cin != 0 {
		t.Fatalf("Combiners off still fed %d events through combining buffers", cin)
	}
}

// TestCombinerPassSkipsPerItemEmitters pins the soundness gate: a
// KeyedUnordered with an OnItem callback emits per item, so combining
// its input would change the trace — the pass must leave it alone.
func TestCombinerPassSkipsPerItemEmitters(t *testing.T) {
	perItem := &core.KeyedUnordered[int, int, int, int, int, int]{
		OpName:       "echoSum",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(_, v int) int { return v },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() int { return 0 },
		UpdateState:  func(old, agg int) int { return old + agg },
		OnItem:       func(emit core.Emit[int, int], _, k, v int) { emit(k, v) },
	}
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	d.Sink("out", d.Op(perItem, 2, src))
	_, plan, err := CompileWithPlan(d, optSources(nil), &Options{Combiners: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.CombinedEdges) != 0 {
		t.Fatalf("per-item emitter must not be combined: %v", plan.CombinedEdges)
	}
}

// TestCompileValidation pins the descriptive compile-time errors for a
// nil DAG and malformed option values.
func TestCompileValidation(t *testing.T) {
	t.Run("nil-dag", func(t *testing.T) {
		_, err := Compile(nil, optSources(nil), nil)
		if err == nil || !strings.Contains(err.Error(), "nil DAG") {
			t.Fatalf("got %v, want nil-DAG error", err)
		}
	})
	t.Run("negative-combiner-cap", func(t *testing.T) {
		_, err := Compile(pipelineDAG(1, 1), optSources(nil), &Options{Combiners: true, CombinerCap: -1})
		if err == nil || !strings.Contains(err.Error(), "CombinerCap") {
			t.Fatalf("got %v, want CombinerCap error", err)
		}
	})
	t.Run("negative-batch-size", func(t *testing.T) {
		_, err := Compile(pipelineDAG(1, 1), optSources(nil), &Options{Transport: &storm.TransportOptions{BatchSize: -2}})
		if err == nil || !strings.Contains(err.Error(), "BatchSize") {
			t.Fatalf("got %v, want BatchSize error", err)
		}
	})
	t.Run("combiner-cap-selects-default", func(t *testing.T) {
		_, plan, err := CompileWithPlan(pipelineDAG(1, 1), optSources(nil), &Options{Combiners: true, CombinerCap: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.CombinedEdges) != 1 || plan.CombinedEdges[0].Cap != 7 {
			t.Fatalf("explicit cap not honored: %v", plan.CombinedEdges)
		}
	})
}

// TestChaosOptimizationPassesMatchReference extends the chaos harness
// across the optimization matrix: every random DAG must produce the
// reference trace under all four on/off combinations of chain fusion
// and combiners (sort fusion on throughout).
func TestChaosOptimizationPassesMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(271))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		build := randomDAG(int64(11000 + trial))
		in := randomStream(r, 2+r.Intn(4), 10, 5)

		refDag := build(1, r)
		ref, err := refDag.Eval(map[string][]stream.Event{"src": in})
		if err != nil {
			t.Fatal(err)
		}

		dag := build(3, r)
		for _, fuseChains := range []bool{false, true} {
			for _, combiners := range []bool{false, true} {
				top, err := Compile(dag, optSources(in), &Options{
					FuseSort: true, FuseChains: fuseChains, Combiners: combiners,
				})
				if err != nil {
					t.Fatalf("trial %d chains=%v comb=%v: %v", trial, fuseChains, combiners, err)
				}
				res, err := top.Run()
				if err != nil {
					t.Fatalf("trial %d chains=%v comb=%v: %v", trial, fuseChains, combiners, err)
				}
				if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
					t.Fatalf("trial %d chains=%v comb=%v:\n%s\n%v", trial, fuseChains, combiners, dag.Dot(), err)
				}
			}
		}
	}
}

// TestChaosRecoveryWithOptimizations is the ISSUE's chaos acceptance
// case: random DAGs compiled with ALL passes on (chain fusion —
// exercising fused-bolt snapshot/restore — and combiners), batched
// transport, marker-cut recovery, and a random executor crash
// mid-epoch (the crash index falls inside a block, so combining
// buffers hold partial aggregates somewhere in the topology when the
// victim dies). The run must recover and reproduce the reference
// trace with nothing dropped.
func TestChaosRecoveryWithOptimizations(t *testing.T) {
	r := rand.New(rand.NewSource(613))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		build := randomDAG(int64(13000 + trial))
		in := randomStream(r, 3+r.Intn(3), 10, 5)

		refDag := build(1, r)
		ref, err := refDag.Eval(map[string][]stream.Event{"src": in})
		if err != nil {
			t.Fatal(err)
		}

		for _, batch := range []int{1, 8, 64} {
			dag := build(2, r)
			allOn := &Options{FuseSort: true, FuseChains: true, Combiners: true, CombinerCap: 1 + r.Intn(8)}
			probe, err := Compile(dag, optSources(in), allOn)
			if err != nil {
				t.Fatalf("trial %d batch=%d: %v", trial, batch, err)
			}
			var targets []storm.ComponentInfo
			for _, c := range probe.Components() {
				if c.Kind != "spout" {
					targets = append(targets, c)
				}
			}
			victim := targets[r.Intn(len(targets))]
			instance := r.Intn(victim.Parallelism)
			atEvent := int64(1 + r.Intn(15))

			opts := *allOn
			opts.Recovery = &storm.RecoveryPolicy{Enabled: true, Logf: func(string, ...any) {}}
			opts.FaultPlan = storm.NewFaultPlan().CrashAt(victim.Name, instance, atEvent)
			opts.Transport = &storm.TransportOptions{BatchSize: batch, FlushInterval: 200 * time.Microsecond}
			top, err := Compile(dag, optSources(in), &opts)
			if err != nil {
				t.Fatalf("trial %d batch=%d: %v", trial, batch, err)
			}
			res, err := top.Run()
			if err != nil {
				t.Fatalf("trial %d batch=%d: crash of %s[%d] at event %d did not recover: %v",
					trial, batch, victim.Name, instance, atEvent, err)
			}
			if _, _, dropped := res.Stats.Recovery(); dropped != 0 {
				t.Fatalf("trial %d batch=%d: recovered run dropped %d events", trial, batch, dropped)
			}
			if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
				t.Fatalf("trial %d batch=%d: crash of %s[%d] at event %d:\n%s\n%v",
					trial, batch, victim.Name, instance, atEvent, dag.Dot(), err)
			}
		}
	}
}

// TestFusedBoltSnapshotRoundTrip pins the fused bolt's checkpoint
// format: snapshot → mutate → restore must reproduce the pre-mutation
// emissions, and a stage-count mismatch must be rejected.
func TestFusedBoltSnapshotRoundTrip(t *testing.T) {
	mkBolt := func() storm.Bolt {
		return newFusedBolt([]core.Instance{sumPerKey().New(), sumPerKey().New()}, nil)
	}
	bolt := mkBolt()
	var sink []stream.Event
	emit := func(e stream.Event) { sink = append(sink, e) }
	for i := 0; i < 10; i++ {
		bolt.Next(stream.Item(i%2, i), emit)
	}
	rec, ok := bolt.(storm.Recoverable)
	if !ok {
		t.Fatal("fused bolt of snapshot-capable stages must be Recoverable")
	}
	snap, err := rec.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: finish the block on a pristine copy restored from snap.
	finish := func(b storm.Bolt) []stream.Event {
		var out []stream.Event
		b.Next(stream.Item(0, 100), func(e stream.Event) { out = append(out, e) })
		b.Next(mk(1, 1), func(e stream.Event) { out = append(out, e) })
		return out
	}
	want := finish(bolt)

	restored := mkBolt()
	if err := restored.(storm.Recoverable).Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := finish(restored)
	if !stream.Equivalent(stream.U("Int", "Int"), got, want) {
		t.Fatalf("restored fused bolt diverged:\ngot  %v\nwant %v", got, want)
	}

	three := newFusedBolt([]core.Instance{sumPerKey().New(), sumPerKey().New(), sumPerKey().New()}, nil)
	if err := three.(storm.Recoverable).Restore(snap); err == nil ||
		!strings.Contains(err.Error(), "stages") {
		t.Fatalf("stage-count mismatch must be rejected, got %v", err)
	}
}
