package compile

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// This file is a chaos harness for Corollary 4.4: it generates random
// typed DAGs — random depth, random operator kinds, random
// parallelism, occasional diamonds — and checks that the compiled
// concurrent execution produces the reference denotation's trace on
// random inputs. Every shape the generator can produce is legal by
// construction, so any inequivalence is a compiler or runtime bug.

// randomOp builds a random operator with int keys and values.
// kindIn says whether the upstream channel is ordered.
func randomOp(r *rand.Rand, id int, inOrdered bool) (op core.Operator, outOrdered bool) {
	name := func(k string) string { return fmt.Sprintf("%s-%d", k, id) }
	if inOrdered {
		// Ordered input: keyed-ordered stage (running sum) or forget
		// order with a stateless stage.
		if r.Intn(2) == 0 {
			return &core.KeyedOrdered[int, int, int, int]{
				OpName:       name("runsum"),
				In:           stream.O("Int", "Int"),
				Out:          stream.O("Int", "Int"),
				InitialState: func() int { return 0 },
				OnItem: func(emit func(int), st, k, v int) int {
					st += v
					emit(st)
					return st
				},
			}, true
		}
		return &core.Stateless[int, int, int, int]{
			OpName: name("scale"),
			In:     stream.U("Int", "Int"),
			Out:    stream.U("Int", "Int"),
			OnItem: func(emit core.Emit[int, int], k, v int) { emit(k, v*3) },
		}, false
	}
	switch r.Intn(4) {
	case 0: // stateless filter
		return &core.Stateless[int, int, int, int]{
			OpName: name("filter"),
			In:     stream.U("Int", "Int"),
			Out:    stream.U("Int", "Int"),
			OnItem: func(emit core.Emit[int, int], k, v int) {
				if v%3 != 0 {
					emit(k, v)
				}
			},
		}, false
	case 1: // keyed-unordered block sum
		return &core.KeyedUnordered[int, int, int, int, int, int]{
			OpName:       name("blocksum"),
			InT:          stream.U("Int", "Int"),
			OutT:         stream.U("Int", "Int"),
			In:           func(_, v int) int { return v },
			ID:           func() int { return 0 },
			Combine:      func(x, y int) int { return x + y },
			InitialState: func() int { return 0 },
			UpdateState:  func(_, agg int) int { return agg },
			OnMarker: func(emit core.Emit[int, int], st, k int, m stream.Marker) {
				emit(k, st)
			},
		}, false
	case 2: // sliding window
		return &core.SlidingAggregate[int, int, int]{
			OpName:       name("window"),
			InT:          stream.U("Int", "Int"),
			OutT:         stream.U("Int", "Int"),
			WindowBlocks: 1 + r.Intn(3),
			In:           func(_, v int) int { return v },
			ID:           func() int { return 0 },
			Combine:      func(x, y int) int { return x + y },
			EmitEmpty:    r.Intn(2) == 0,
		}, false
	default: // sort
		return &core.Sort[int, int]{
			OpName: name("sort"),
			In:     stream.U("Int", "Int"),
			Out:    stream.O("Int", "Int"),
			Less:   func(a, b int) bool { return a < b },
		}, true
	}
}

// randomDAG builds a random legal DAG and returns a constructor so
// identical fresh DAGs can be built for reference and deployment.
func randomDAG(seed int64) func(maxPar int, r *rand.Rand) *core.DAG {
	return func(maxPar int, r *rand.Rand) *core.DAG {
		shape := rand.New(rand.NewSource(seed)) // shape decisions are seed-stable
		d := core.NewDAG()
		src := d.Source("src", stream.U("Int", "Int"))
		cur := src
		ordered := false
		depth := 2 + shape.Intn(4)
		for i := 0; i < depth; i++ {
			op, outOrdered := randomOp(shape, i, ordered)
			// Always draw so the shape RNG stream is identical for
			// every maxPar (Intn(1) is a no-op draw).
			par := 1 + shape.Intn(maxPar)
			cur = d.Op(op, par, cur)
			ordered = outOrdered
		}
		// Occasionally a diamond: fan the last unordered stage into two
		// branches merged by a final aggregator.
		if !ordered && shape.Intn(3) == 0 {
			left := d.Op(&core.Stateless[int, int, int, int]{
				OpName: "diamond-l",
				In:     stream.U("Int", "Int"),
				Out:    stream.U("Int", "Int"),
				OnItem: func(emit core.Emit[int, int], k, v int) { emit(k, v+1) },
			}, 1+shape.Intn(maxPar), cur)
			right := d.Op(&core.Stateless[int, int, int, int]{
				OpName: "diamond-r",
				In:     stream.U("Int", "Int"),
				Out:    stream.U("Int", "Int"),
				OnItem: func(emit core.Emit[int, int], k, v int) { emit(k, v+2) },
			}, 1+shape.Intn(maxPar), cur)
			cur = d.Op(&core.KeyedUnordered[int, int, int, int, int, int]{
				OpName:       "diamond-join",
				InT:          stream.U("Int", "Int"),
				OutT:         stream.U("Int", "Int"),
				In:           func(_, v int) int { return v },
				ID:           func() int { return 0 },
				Combine:      func(x, y int) int { return x + y },
				InitialState: func() int { return 0 },
				UpdateState:  func(old, agg int) int { return old + agg },
				OnMarker: func(emit core.Emit[int, int], st, k int, m stream.Marker) {
					emit(k, st)
				},
			}, 1+shape.Intn(maxPar), left, right)
		}
		d.Sink("out", cur)
		return d
	}
}

// TestChaosRecoveryMatchesReference is the fault-injecting variant of
// the chaos harness: every trial compiles a random DAG with marker-cut
// recovery enabled, crashes a random bolt instance at a random event
// index, and asserts that the recovered run still produces the
// reference denotation's trace — the end-to-end statement of the
// recovery subsystem's correctness claim.
func TestChaosRecoveryMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(977))
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		build := randomDAG(int64(5000 + trial))
		in := randomStream(r, 2+r.Intn(4), 10, 5)

		refDag := build(1, r)
		ref, err := refDag.Eval(map[string][]stream.Event{"src": in})
		if err != nil {
			t.Fatal(err)
		}

		for _, maxPar := range []int{1, 2, 3} {
			dag := build(maxPar, r)
			top, err := Compile(dag, map[string]SourceSpec{
				"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
			}, &Options{FuseSort: true})
			if err != nil {
				t.Fatalf("trial %d par=%d: %v", trial, maxPar, err)
			}

			// Pick a random crash target among the compiled bolts and
			// sinks (spouts have no marker cut to recover to).
			var targets []storm.ComponentInfo
			for _, c := range top.Components() {
				if c.Kind != "spout" {
					targets = append(targets, c)
				}
			}
			victim := targets[r.Intn(len(targets))]
			instance := r.Intn(victim.Parallelism)
			atEvent := int64(1 + r.Intn(20))

			plan := storm.NewFaultPlan().CrashAt(victim.Name, instance, atEvent)
			top, err = Compile(dag, map[string]SourceSpec{
				"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
			}, &Options{
				FuseSort:  true,
				Recovery:  &storm.RecoveryPolicy{Enabled: true, Logf: func(string, ...any) {}},
				FaultPlan: plan,
			})
			if err != nil {
				t.Fatalf("trial %d par=%d: %v", trial, maxPar, err)
			}
			res, err := top.Run()
			if err != nil {
				t.Fatalf("trial %d par=%d: crash of %s[%d] at event %d did not recover: %v",
					trial, maxPar, victim.Name, instance, atEvent, err)
			}
			if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
				t.Fatalf("trial %d par=%d: crash of %s[%d] at event %d:\n%s\n%v",
					trial, maxPar, victim.Name, instance, atEvent, dag.Dot(), err)
			}
		}
	}
}

// TestChaosBatchedTransportRecovery re-runs the crash-recovery chaos
// harness with the batched edge transport enabled: every trial
// crashes a random non-spout instance at a random event index AND
// corrupts an early send on the sink's input edge (the corruption
// fires at wire time, as the event is serialized into a batch), at
// several batch sizes with a short idle-flush interval so timer
// flushes interleave with recovery. Marker-cut recovery must still
// replay exactly once: the run succeeds, at least one restart was
// recorded (the corruption always fires — the feeder's markers cross
// that edge), nothing was dropped, and the trace equals the
// reference denotation.
func TestChaosBatchedTransportRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(733))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		build := randomDAG(int64(7000 + trial))
		in := randomStream(r, 2+r.Intn(4), 10, 5)

		refDag := build(1, r)
		ref, err := refDag.Eval(map[string][]stream.Event{"src": in})
		if err != nil {
			t.Fatal(err)
		}

		for _, batch := range []int{4, 64} {
			dag := build(2, r)
			probe, err := Compile(dag, map[string]SourceSpec{
				"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
			}, &Options{FuseSort: true})
			if err != nil {
				t.Fatalf("trial %d batch=%d: %v", trial, batch, err)
			}
			var targets []storm.ComponentInfo
			for _, c := range probe.Components() {
				if c.Kind != "spout" {
					targets = append(targets, c)
				}
			}
			victim := targets[r.Intn(len(targets))]
			instance := r.Intn(victim.Parallelism)
			atEvent := int64(1 + r.Intn(8))
			feeders := probe.Inputs("out")
			if len(feeders) == 0 {
				t.Fatalf("trial %d: sink has no input edge", trial)
			}
			plan := storm.NewFaultPlan().
				CrashAt(victim.Name, instance, atEvent).
				CorruptEdge(feeders[0], 0, "out", int64(1+r.Intn(2)))

			top, err := Compile(dag, map[string]SourceSpec{
				"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
			}, &Options{
				FuseSort:  true,
				Recovery:  &storm.RecoveryPolicy{Enabled: true, Logf: func(string, ...any) {}},
				FaultPlan: plan,
				Transport: &storm.TransportOptions{BatchSize: batch, FlushInterval: 200 * time.Microsecond},
			})
			if err != nil {
				t.Fatalf("trial %d batch=%d: %v", trial, batch, err)
			}
			res, err := top.Run()
			if err != nil {
				t.Fatalf("trial %d batch=%d: crash of %s[%d] at event %d + corrupt %s[0]→out did not recover: %v",
					trial, batch, victim.Name, instance, atEvent, feeders[0], err)
			}
			restarts, _, dropped := res.Stats.Recovery()
			if restarts < 1 {
				t.Fatalf("trial %d batch=%d: no restart recorded although the corruption fault must fire", trial, batch)
			}
			if dropped != 0 {
				t.Fatalf("trial %d batch=%d: recovered run dropped %d events", trial, batch, dropped)
			}
			if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
				t.Fatalf("trial %d batch=%d: crash of %s[%d] at event %d + corrupt %s[0]→out:\n%s\n%v",
					trial, batch, victim.Name, instance, atEvent, feeders[0], dag.Dot(), err)
			}
		}
	}
}

// TestChaosRecoveryTransparentWithoutFaults checks, over the same
// random DAG population, that enabling recovery with no fault plan
// never changes the trace — the checkpointing machinery is
// semantically invisible.
func TestChaosRecoveryTransparentWithoutFaults(t *testing.T) {
	r := rand.New(rand.NewSource(421))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		build := randomDAG(int64(9000 + trial))
		in := randomStream(r, 2+r.Intn(4), 10, 5)

		refDag := build(1, r)
		ref, err := refDag.Eval(map[string][]stream.Event{"src": in})
		if err != nil {
			t.Fatal(err)
		}

		dag := build(3, r)
		top, err := Compile(dag, map[string]SourceSpec{
			"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
		}, &Options{FuseSort: true, Recovery: &storm.RecoveryPolicy{Enabled: true}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := top.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
			t.Fatalf("trial %d: recovery-enabled run diverged:\n%v", trial, err)
		}
		restarts, replayed, dropped := res.Stats.Recovery()
		if restarts != 0 || replayed != 0 || dropped != 0 {
			t.Fatalf("trial %d: fault-free run recorded recovery activity %d/%d/%d",
				trial, restarts, replayed, dropped)
		}
	}
}

func TestChaosCompiledDAGsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		build := randomDAG(int64(1000 + trial))
		in := randomStream(r, 2+r.Intn(4), 10, 5)

		refDag := build(1, r)
		if err := refDag.Check(); err != nil {
			t.Fatalf("trial %d: generated an ill-typed DAG: %v", trial, err)
		}
		ref, err := refDag.Eval(map[string][]stream.Event{"src": in})
		if err != nil {
			t.Fatal(err)
		}

		dag := build(4, r)
		for _, fuse := range []bool{true, false} {
			top, err := Compile(dag, map[string]SourceSpec{
				"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
			}, &Options{FuseSort: fuse})
			if err != nil {
				t.Fatalf("trial %d fuse=%v: %v", trial, fuse, err)
			}
			res, err := top.Run()
			if err != nil {
				t.Fatalf("trial %d fuse=%v: %v", trial, fuse, err)
			}
			if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
				t.Fatalf("trial %d fuse=%v:\n%s\n%v", trial, fuse, dag.Dot(), err)
			}
		}
	}
}
