// Package compile translates type-checked transduction DAGs (package
// core) into executable storm topologies (package storm), the
// counterpart of the paper's section 5 compilation procedure onto
// Apache Storm.
//
// The compiler:
//
//   - maps every DAG source to a spout and every operator to a bolt
//     at its declared parallelism;
//   - selects the grouping each connection needs for the deployment
//     to be semantics-preserving (Theorem 4.3): shuffle for stateless
//     consumers, fields (key hash) for keyed consumers, global for
//     non-parallelizable ones;
//   - inserts the marker-propagation glue: markers are broadcast on
//     every connection and each consumer merges its input channels
//     with the MRG alignment discipline. The merge runs inside the
//     consumer's executor, which is the paper's "fuse MRG with the
//     operator that follows" optimization;
//   - optionally fuses a SORT vertex into its (sole) downstream
//     operator so sorting happens in the consumer's executor without
//     an extra network hop, the paper's second fusion rule;
//   - optionally collapses maximal linear chains of stateless
//     operators into one composite bolt (FuseChains), removing the
//     intermediate shuffle hops entirely;
//   - optionally installs sender-side combining buffers on
//     fields-grouped connections whose consumer admits
//     pre-aggregation (Combiners): partial aggregates are folded at
//     the producer per destination instance and the consumer is
//     rewritten to merge partials, sound exactly because the
//     consumer's aggregation monoid is commutative (Theorem 4.2).
//
// By Corollary 4.4, the resulting topology — at any parallelism and
// under any combination of passes — is equivalent to the DAG's
// reference denotation (core.DAG.Eval); the package tests check
// exactly that, over the truly concurrent runtime.
package compile

import (
	"fmt"

	"datatrace/internal/core"
	"datatrace/internal/metrics"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// SourceSpec tells the compiler how to realize a DAG source as a
// spout.
type SourceSpec struct {
	// Parallelism is the number of spout instances (≥1). Multiple
	// instances model partitioned sources (Yahoo0..YahooN in the
	// paper's Figure 3); each instance must emit the same marker
	// sequence for alignment downstream.
	Parallelism int
	// Factory builds the spout for one instance.
	Factory func(instance int) storm.Spout
	// Cols, when non-nil, declares the column kind the factory's spouts
	// emit batches of (the spouts should implement storm.ColSpout with
	// this kind). The compiler uses it to select the columnar transport
	// for edges out of this source; a spout that never actually emits
	// batches degrades to boxed delivery, not to wrong results.
	Cols *stream.ColKind
}

// Options tune the compilation.
type Options struct {
	// FuseSort fuses every SORT vertex that has exactly one operator
	// consumer into that consumer's bolt. Enabled by default in
	// Compile's nil-Options path.
	FuseSort bool
	// FuseChains collapses maximal linear chains of stateless (ParAny)
	// operators — equal parallelism, single producer/consumer edges —
	// into one composite bolt, eliminating the shuffle hops between
	// them. The fused bolt keeps the chain tail's name so downstream
	// wiring is unchanged, snapshots/restores all stages for
	// marker-cut recovery, and reports per-stage delivery counts
	// through the compilation Plan. Enabled by default in Compile's
	// nil-Options path.
	FuseChains bool
	// Combiners installs a sender-side combining buffer on every
	// fields-grouped connection whose consumer is a lone keyed
	// operator admitting pre-aggregation (core.Combinable with a usable
	// monoid): producers fold a bounded per-destination map of partial
	// aggregates and the consumer is rewritten (PreCombined) to merge
	// partials. Buffers drain into the batched transport on capacity,
	// markers, EOS and transactional send blocks, so they are provably
	// empty at every recovery restart point. Enabled by default in
	// Compile's nil-Options path.
	Combiners bool
	// CombinerCap bounds the distinct keys a combining buffer holds
	// before draining early. 0 selects storm.DefaultCombinerCap;
	// negative is a compile error.
	CombinerCap int
	// Hash overrides the fields-grouping key hash (nil = stream.DefaultHash).
	// A custom hash disables columnar edge selection: typed batch
	// routing uses the kind's per-row key hashes (stream.DefaultHash
	// specialized per type), which must agree with the boxed hash for a
	// key to land on one consumer instance.
	Hash func(any) int
	// NoColumnar disables the columnar (struct-of-arrays) edge
	// selection, keeping every edge on the boxed transport. The
	// differential tests use it to run the boxed oracle; it is off (i.e.
	// columnar selection is on) by default.
	NoColumnar bool
	// ChannelCap bounds executor inboxes (0 = runtime default).
	ChannelCap int
	// Recovery, when non-nil, enables marker-cut checkpointing and
	// executor restart in the compiled topology. Every bolt the
	// compiler emits for a core.Snapshotter instance (all built-in
	// templates, fused or not) participates; see storm.RecoveryPolicy
	// for the degradation knobs.
	Recovery *storm.RecoveryPolicy
	// FaultPlan injects deterministic failures into the compiled
	// topology (see storm.FaultPlan); used by chaos tests.
	FaultPlan *storm.FaultPlan
	// Rescale, when non-nil, installs a scripted schedule of live
	// parallelism changes at marker cuts (see storm.RescalePlan).
	// Requires Recovery.
	Rescale *storm.RescalePlan
	// Autoscale, when non-nil, installs a feedback controller that
	// rescales one bolt component from backpressure signals (see
	// storm.AutoscalePolicy). Requires Recovery and Observability.
	Autoscale *storm.AutoscalePolicy
	// Observability, when non-nil, configures the runtime's
	// observability subsystem (latency histograms, queue gauges,
	// marker-lag tracking, span sampling; see metrics.ObsConfig).
	Observability *metrics.ObsConfig
	// Transport, when non-nil, configures the batched edge transport
	// (see storm.TransportOptions); nil keeps the runtime defaults.
	// BatchSize 1 reproduces the unbatched one-send-per-event
	// transport exactly.
	Transport *storm.TransportOptions
	// Workers places the compiled executors onto this many workers
	// (round-robin in declaration order — the same rule the networked
	// runtime maps to processes). In the single-process runtime the
	// placement selects which sends pay the serialization boundary;
	// CompileWithPlan additionally surfaces the table as
	// Plan.Placement. 0 leaves placement off.
	Workers int
}

// validate rejects malformed option values with descriptive errors
// before any topology is built.
func (o *Options) validate() error {
	if o.CombinerCap < 0 {
		return fmt.Errorf("compile: Options.CombinerCap must be ≥ 0 (0 selects the default, %d), got %d",
			storm.DefaultCombinerCap, o.CombinerCap)
	}
	if o.Transport != nil {
		if err := o.Transport.Validate(); err != nil {
			return err
		}
	}
	if o.Workers < 0 {
		return fmt.Errorf("compile: Options.Workers must be ≥ 0 (0 disables placement), got %d", o.Workers)
	}
	return nil
}

// sorter is implemented by core.Sort instances' operator; used to
// recognize SORT vertices for fusion. Any keyed operator whose name
// reports itself as a sort could match; we detect by concrete type
// via an interface the core package satisfies.
type sorter interface{ IsSort() bool }

// Compile translates the DAG into a storm topology. sources must
// provide a SourceSpec for every DAG source. A nil opts selects the
// defaults: sort fusion, chain fusion and shuffle combiners all on.
func Compile(d *core.DAG, sources map[string]SourceSpec, opts *Options) (*storm.Topology, error) {
	top, _, err := CompileWithPlan(d, sources, opts)
	return top, err
}

// CompileWithPlan is Compile returning, in addition, the optimization
// Plan: which operators fused into which bolts and which connections
// carry combining buffers, plus live per-stage delivery counters for
// fused bolts.
func CompileWithPlan(d *core.DAG, sources map[string]SourceSpec, opts *Options) (*storm.Topology, *Plan, error) {
	if d == nil {
		return nil, nil, fmt.Errorf("compile: nil DAG — build one with core.NewDAG and add nodes before compiling")
	}
	if opts == nil {
		opts = &Options{FuseSort: true, FuseChains: true, Combiners: true}
	}
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if err := d.Check(); err != nil {
		return nil, nil, err
	}
	for _, src := range d.Sources() {
		if _, ok := sources[src.Name]; !ok {
			return nil, nil, fmt.Errorf("compile: no SourceSpec for source %q", src.Name)
		}
	}

	// consumers[node] = downstream nodes.
	consumers := map[int][]*core.Node{}
	for _, n := range d.Nodes() {
		for _, in := range n.Inputs {
			consumers[in.ID] = append(consumers[in.ID], n)
		}
	}

	// Decide sort fusion: fusedInto[sortNodeID] = consumer node. The
	// consumer must have the sort as its only input, so replacing its
	// inputs with the sort's drops no edges.
	fusedInto := map[int]*core.Node{}
	if opts.FuseSort {
		for _, n := range d.Nodes() {
			if n.Kind != core.OpNode || !isSortOp(n.Op) {
				continue
			}
			cs := consumers[n.ID]
			if len(cs) == 1 && cs[0].Kind == core.OpNode && cs[0].Op.Mode() != core.ParNone &&
				len(cs[0].Inputs) == 1 {
				fusedInto[n.ID] = cs[0]
			}
		}
	}

	// Decide chain fusion: chains[tailID] = member nodes head..tail;
	// absorbed marks every member except the tail. A link n→c joins a
	// chain when both are stateless operators at equal parallelism and
	// the edge is n's only outgoing and c's only incoming edge — then
	// shuffling between them routes every event to exactly one
	// consumer instance anyway, and running c in n's executor is
	// trace-equivalent while saving the hop.
	chains := map[int][]*core.Node{}
	absorbed := map[int]bool{}
	if opts.FuseChains {
		next := map[int]*core.Node{}
		hasPrev := map[int]bool{}
		for _, n := range d.Nodes() {
			if n.Kind != core.OpNode || n.Op.Mode() != core.ParAny {
				continue
			}
			cs := consumers[n.ID]
			if len(cs) != 1 {
				continue
			}
			c := cs[0]
			if c.Kind != core.OpNode || c.Op.Mode() != core.ParAny ||
				c.Parallelism != n.Parallelism || len(c.Inputs) != 1 {
				continue
			}
			next[n.ID] = c
			hasPrev[c.ID] = true
		}
		for _, n := range d.Nodes() {
			if next[n.ID] == nil || hasPrev[n.ID] {
				continue // not a chain head
			}
			members := []*core.Node{n}
			for m := next[n.ID]; m != nil; m = next[m.ID] {
				members = append(members, m)
			}
			tail := members[len(members)-1]
			chains[tail.ID] = members
			for _, m := range members[:len(members)-1] {
				absorbed[m.ID] = true
			}
		}
	}

	top := storm.NewTopology("compiled")
	top.ChannelCap = opts.ChannelCap
	if opts.Hash != nil {
		top.SetHash(opts.Hash)
	}
	plan := &Plan{Name: "compiled"}

	// Columnar edge selection requires the default key hash: typed
	// batches route by the kind's precomputed per-row hashes
	// (stream.DefaultHash specialized per type), and mixing them with a
	// custom boxed hash would split one key across consumer instances.
	columnar := !opts.NoColumnar && opts.Hash == nil
	// outKind[name] is the column kind the emitted component produces
	// batches of, nil when it emits boxed events only. Node order is
	// topological, so a producer's kind is recorded before any consumer
	// wires an edge from it.
	outKind := map[string]*stream.ColKind{}

	for _, n := range d.Nodes() {
		switch n.Kind {
		case core.SourceNode:
			spec := sources[n.Name]
			par := spec.Parallelism
			if par < 1 {
				par = 1
			}
			top.AddSpout(n.Name, par, spec.Factory)
			if columnar {
				outKind[n.Name] = spec.Cols
			}
		case core.OpNode:
			if _, fusedAway := fusedInto[n.ID]; fusedAway {
				continue
			}
			if absorbed[n.ID] {
				continue // emitted with its chain's tail
			}
			nodes := []*core.Node{n}
			if ch := chains[n.ID]; ch != nil {
				nodes = ch
			}
			// The bolt is named after n (the chain tail, or the lone
			// node) so downstream wiring is unchanged; its inputs and
			// grouping come from the chain head. If the head's input is
			// a fused sort, the bolt runs the sort instance in front and
			// takes the sort's inputs. Mid-chain members can never own a
			// fused sort: their single input is the previous (stateless)
			// member.
			head := nodes[0]
			var fusedSort core.Operator
			inputs := head.Inputs
			for _, in := range head.Inputs {
				if fusedInto[in.ID] == head {
					fusedSort = in.Op
					inputs = in.Inputs
					break
				}
			}
			stageOps := make([]core.Operator, 0, len(nodes)+1)
			var stageNames []string
			if fusedSort != nil {
				stageOps = append(stageOps, fusedSort)
				stageNames = append(stageNames, fusedSort.Name())
			}
			for _, m := range nodes {
				stageOps = append(stageOps, m.Op)
				stageNames = append(stageNames, m.Op.Name())
			}
			// Combiner pass: a lone keyed consumer whose operator admits
			// pre-aggregation is rewritten to fold partial aggregates,
			// and every one of its (fields-grouped) connections gets a
			// sender-side combining buffer over the same monoid. A fused
			// sort excludes combining — its consumer needs the items
			// themselves, in order.
			var comb *storm.CombinerSpec
			var colComb *storm.ColCombinerSpec
			if opts.Combiners && len(stageOps) == 1 && n.Op.Mode() == core.ParKeyed {
				capKeys := opts.CombinerCap
				if capKeys == 0 {
					capKeys = storm.DefaultCombinerCap
				}
				// Prefer the typed combiner when the columnar transport is
				// available: the fold runs over typed rows and the edge
				// carries (key, partial aggregate) batches. Either way the
				// consumer is rewritten to merge partials.
				if cc, ok := n.Op.(core.ColCombinable); ok && columnar {
					if inK, outK, mk, can := cc.ColCombiner(); can {
						colComb = &storm.ColCombinerSpec{InKind: inK, OutKind: outK, New: mk, Cap: capKeys}
						stageOps[0] = cc.PreCombined()
					}
				}
				if colComb == nil {
					if c, ok := n.Op.(core.Combinable); ok {
						if inFn, combineFn, can := c.CombinerMonoid(); can {
							comb = &storm.CombinerSpec{In: inFn, Combine: combineFn, Cap: capKeys}
							stageOps[0] = c.PreCombined()
						}
					}
				}
			}
			counts := plan.addBolt(n.Name, n.Parallelism, stageNames)
			ops := stageOps
			top.AddBolt(n.Name, n.Parallelism, func(int) storm.Bolt {
				if len(ops) == 1 {
					return adapt(ops[0].New())
				}
				insts := make([]core.Instance, len(ops))
				for i, op := range ops {
					insts[i] = op.New()
				}
				return newFusedBolt(insts, counts)
			})
			// The bolt's columnar endpoint kinds, computed from the stage
			// pipeline after any PreCombined rewrite (which shifts the
			// consumed kind from raw items to partial aggregates).
			inK, outK := opsColKinds(ops)
			if columnar {
				outKind[n.Name] = outK
			}
			decl := boltDecl(top, n.Name)
			grouping := groupingFor(head, fusedSort != nil)
			for _, in := range inputs {
				connect(decl, in.Name, grouping)
				switch {
				case colComb != nil:
					decl.ColCombineWith(*colComb)
					plan.CombinedEdges = append(plan.CombinedEdges, PlanEdge{From: in.Name, To: n.Name, Cap: colComb.Cap, Columnar: true})
				case comb != nil:
					decl.CombineWith(*comb)
					plan.CombinedEdges = append(plan.CombinedEdges, PlanEdge{From: in.Name, To: n.Name, Cap: comb.Cap})
				case columnar && inK != nil && outKind[in.Name] == inK:
					// Both endpoints expose the same canonical kind: the
					// edge moves typed batches end to end.
					decl.ColumnarWith(inK)
					plan.ColumnarEdges = append(plan.ColumnarEdges, PlanEdge{From: in.Name, To: n.Name, Columnar: true})
				}
			}
		case core.SinkNode:
			in := n.Inputs[0]
			// A sink consuming a fused-away node cannot occur: both
			// fusion passes require the absorbed node's sole consumer to
			// be an OpNode.
			top.AddSink(n.Name, in.Name)
		}
	}
	if opts.Recovery != nil {
		top.SetRecovery(*opts.Recovery)
	}
	if opts.FaultPlan != nil {
		top.SetFaultPlan(opts.FaultPlan)
	}
	if opts.Rescale != nil {
		top.SetRescalePlan(opts.Rescale)
	}
	if opts.Autoscale != nil {
		top.SetAutoscale(opts.Autoscale)
	}
	if opts.Transport != nil {
		top.SetTransport(*opts.Transport)
	}
	if opts.Observability != nil {
		top.SetObservability(*opts.Observability)
	}
	if opts.Workers > 0 {
		top.SetWorkers(opts.Workers)
		plan.Placement = top.Placement(opts.Workers)
	}
	return top, plan, nil
}

// isSortOp recognizes core.Sort operators structurally: they are the
// only built-in whose input is unordered and whose output is the
// ordered type with identical key and value names.
func isSortOp(op core.Operator) bool {
	if s, ok := op.(sorter); ok {
		return s.IsSort()
	}
	in, out := op.InType(), op.OutType()
	return in.Kind == stream.Unordered && out.Kind == stream.Ordered &&
		in.Key == out.Key && in.Val == out.Val && op.Mode() == core.ParKeyed
}

// opsColKinds computes the columnar endpoint kinds of a bolt's stage
// pipeline: the kind its first stage consumes and the kind its last
// stage produces. It returns (nil, nil) unless every stage exposes the
// batch interface and the kinds chain stage to stage — the same
// condition under which fusedBolt runs its batch pipeline — so the
// compiler never declares an edge columnar that the bolt would only
// ever drain row by row.
func opsColKinds(ops []core.Operator) (in, out *stream.ColKind) {
	var prev *stream.ColKind
	for i, op := range ops {
		co, ok := op.(core.ColOperator)
		if !ok || co.InColKind() == nil {
			return nil, nil
		}
		if i == 0 {
			in = co.InColKind()
		} else if prev != co.InColKind() {
			return nil, nil
		}
		prev = co.OutColKind()
		if prev == nil && i < len(ops)-1 {
			return nil, nil
		}
	}
	return in, prev
}

// groupingFor selects the semantics-preserving grouping for the
// connection into node n (Theorem 4.3). A fused sort forces key
// routing even if the downstream operator alone would allow shuffle.
func groupingFor(n *core.Node, hasFusedSort bool) storm.Grouping {
	if hasFusedSort {
		return storm.Fields
	}
	switch n.Op.Mode() {
	case core.ParAny:
		return storm.Shuffle
	case core.ParKeyed:
		return storm.Fields
	default:
		return storm.Global
	}
}

// boltDecl re-opens a bolt declaration for wiring. The storm builder
// returns the declaration at AddBolt time; this helper exists so the
// compiler can keep its loop flat.
func boltDecl(t *storm.Topology, name string) *storm.BoltDecl {
	return t.Decl(name)
}

func connect(d *storm.BoltDecl, from string, g storm.Grouping) {
	switch g {
	case storm.Shuffle:
		d.ShuffleGrouping(from, true)
	case storm.Fields:
		d.FieldsGrouping(from, true)
	case storm.Global:
		d.GlobalGrouping(from, true)
	default:
		d.BroadcastGrouping(from, true)
	}
}

// instanceBolt adapts a core.Instance to a storm.Bolt (identical
// method sets; the named type keeps the dependency direction
// explicit).
type instanceBolt struct{ inst core.Instance }

// Next implements storm.Bolt.
func (b instanceBolt) Next(e stream.Event, emit func(stream.Event)) { b.inst.Next(e, emit) }

// InColKind implements storm.ColProcessor: non-nil exactly when the
// wrapped instance consumes typed column batches.
func (b instanceBolt) InColKind() *stream.ColKind {
	if bi, ok := b.inst.(core.BatchInstance); ok {
		return bi.InColKind()
	}
	return nil
}

// OutColKind implements storm.ColProcessor.
func (b instanceBolt) OutColKind() *stream.ColKind {
	if bi, ok := b.inst.(core.BatchInstance); ok {
		return bi.OutColKind()
	}
	return nil
}

// ProcessCols implements storm.ColProcessor. The runtime calls it only
// when InColKind is non-nil, i.e. the instance is a BatchInstance.
func (b instanceBolt) ProcessCols(in, out stream.Columns) {
	b.inst.(core.BatchInstance).ProcessCols(in, out)
}

// snapshotBolt is an instanceBolt whose instance can checkpoint; it
// additionally implements storm.Recoverable, so the runtime's
// marker-cut recovery can snapshot and restore the bolt.
type snapshotBolt struct{ instanceBolt }

// Snapshot implements storm.Recoverable via core.SnapshotInstance.
func (b snapshotBolt) Snapshot() ([]byte, error) { return core.SnapshotInstance(b.inst) }

// Restore implements storm.Recoverable.
func (b snapshotBolt) Restore(data []byte) error { return core.RestoreInstance(b.inst, data) }

// reshardBolt is a snapshotBolt whose instance additionally supports
// keyed-state re-sharding; it implements storm.Resharder, so the
// runtime can rescale the component live at a marker cut.
type reshardBolt struct{ snapshotBolt }

// Reshard implements storm.Resharder via core.ReshardInstanceSnapshots.
func (b reshardBolt) Reshard(old [][]byte, newPar int, owner func(key any) int) ([][]byte, error) {
	return core.ReshardInstanceSnapshots(b.inst, old, newPar, owner)
}

// adapt wraps a core.Instance as a storm.Bolt, exposing
// storm.Recoverable exactly when the instance supports checkpointing
// and storm.Resharder when it also supports re-sharding — the method
// set advertises the capability to the runtime.
func adapt(inst core.Instance) storm.Bolt {
	switch {
	case core.CanReshard(inst):
		return reshardBolt{snapshotBolt{instanceBolt{inst}}}
	case core.CanSnapshot(inst):
		return snapshotBolt{instanceBolt{inst}}
	default:
		return instanceBolt{inst}
	}
}

// plainBolt hides a fused bolt's Recoverable methods when one of the
// fused instances cannot snapshot, so the runtime sees an accurate
// method set.
type plainBolt struct{ b storm.Bolt }

// Next implements storm.Bolt.
func (p plainBolt) Next(e stream.Event, emit func(stream.Event)) { p.b.Next(e, emit) }
