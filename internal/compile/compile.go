// Package compile translates type-checked transduction DAGs (package
// core) into executable storm topologies (package storm), the
// counterpart of the paper's section 5 compilation procedure onto
// Apache Storm.
//
// The compiler:
//
//   - maps every DAG source to a spout and every operator to a bolt
//     at its declared parallelism;
//   - selects the grouping each connection needs for the deployment
//     to be semantics-preserving (Theorem 4.3): shuffle for stateless
//     consumers, fields (key hash) for keyed consumers, global for
//     non-parallelizable ones;
//   - inserts the marker-propagation glue: markers are broadcast on
//     every connection and each consumer merges its input channels
//     with the MRG alignment discipline. The merge runs inside the
//     consumer's executor, which is the paper's "fuse MRG with the
//     operator that follows" optimization;
//   - optionally fuses a SORT vertex into its (sole) downstream
//     operator so sorting happens in the consumer's executor without
//     an extra network hop, the paper's second fusion rule.
//
// By Corollary 4.4, the resulting topology — at any parallelism — is
// equivalent to the DAG's reference denotation (core.DAG.Eval); the
// package tests check exactly that, over the truly concurrent
// runtime.
package compile

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"datatrace/internal/core"
	"datatrace/internal/metrics"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// SourceSpec tells the compiler how to realize a DAG source as a
// spout.
type SourceSpec struct {
	// Parallelism is the number of spout instances (≥1). Multiple
	// instances model partitioned sources (Yahoo0..YahooN in the
	// paper's Figure 3); each instance must emit the same marker
	// sequence for alignment downstream.
	Parallelism int
	// Factory builds the spout for one instance.
	Factory func(instance int) storm.Spout
}

// Options tune the compilation.
type Options struct {
	// FuseSort fuses every SORT vertex that has exactly one operator
	// consumer into that consumer's bolt. Enabled by default in
	// Compile's nil-Options path.
	FuseSort bool
	// Hash overrides the fields-grouping key hash (nil = stream.DefaultHash).
	Hash func(any) int
	// ChannelCap bounds executor inboxes (0 = runtime default).
	ChannelCap int
	// Recovery, when non-nil, enables marker-cut checkpointing and
	// executor restart in the compiled topology. Every bolt the
	// compiler emits for a core.Snapshotter instance (all built-in
	// templates, fused or not) participates; see storm.RecoveryPolicy
	// for the degradation knobs.
	Recovery *storm.RecoveryPolicy
	// FaultPlan injects deterministic failures into the compiled
	// topology (see storm.FaultPlan); used by chaos tests.
	FaultPlan *storm.FaultPlan
	// Observability, when non-nil, configures the runtime's
	// observability subsystem (latency histograms, queue gauges,
	// marker-lag tracking, span sampling; see metrics.ObsConfig).
	Observability *metrics.ObsConfig
	// Transport, when non-nil, configures the batched edge transport
	// (see storm.TransportOptions); nil keeps the runtime defaults.
	// BatchSize 1 reproduces the unbatched one-send-per-event
	// transport exactly.
	Transport *storm.TransportOptions
}

// sorter is implemented by core.Sort instances' operator; used to
// recognize SORT vertices for fusion. Any keyed operator whose name
// reports itself as a sort could match; we detect by concrete type
// via an interface the core package satisfies.
type sorter interface{ IsSort() bool }

// Compile translates the DAG into a storm topology. sources must
// provide a SourceSpec for every DAG source. A nil opts selects the
// defaults (sort fusion on).
func Compile(d *core.DAG, sources map[string]SourceSpec, opts *Options) (*storm.Topology, error) {
	if opts == nil {
		opts = &Options{FuseSort: true}
	}
	if err := d.Check(); err != nil {
		return nil, err
	}
	for _, src := range d.Sources() {
		if _, ok := sources[src.Name]; !ok {
			return nil, fmt.Errorf("compile: no SourceSpec for source %q", src.Name)
		}
	}

	// consumers[node] = downstream nodes.
	consumers := map[int][]*core.Node{}
	for _, n := range d.Nodes() {
		for _, in := range n.Inputs {
			consumers[in.ID] = append(consumers[in.ID], n)
		}
	}

	// Decide fusion: fusedInto[sortNodeID] = consumer node.
	fusedInto := map[int]*core.Node{}
	if opts.FuseSort {
		for _, n := range d.Nodes() {
			if n.Kind != core.OpNode || !isSortOp(n.Op) {
				continue
			}
			cs := consumers[n.ID]
			if len(cs) == 1 && cs[0].Kind == core.OpNode && cs[0].Op.Mode() != core.ParNone {
				fusedInto[n.ID] = cs[0]
			}
		}
	}

	top := storm.NewTopology("compiled")
	top.ChannelCap = opts.ChannelCap
	if opts.Hash != nil {
		top.SetHash(opts.Hash)
	}

	for _, n := range d.Nodes() {
		switch n.Kind {
		case core.SourceNode:
			spec := sources[n.Name]
			par := spec.Parallelism
			if par < 1 {
				par = 1
			}
			top.AddSpout(n.Name, par, spec.Factory)
		case core.OpNode:
			if _, fusedAway := fusedInto[n.ID]; fusedAway {
				continue
			}
			// If an input of n is a fused sort, n's bolt runs the sort
			// instance in front of its own and takes the sort's inputs.
			var fusedSort core.Operator
			inputs := n.Inputs
			for _, in := range n.Inputs {
				if fusedInto[in.ID] == n {
					fusedSort = in.Op
					inputs = in.Inputs
					break
				}
			}
			op := n.Op
			sortOp := fusedSort
			top.AddBolt(n.Name, n.Parallelism, func(int) storm.Bolt {
				inst := op.New()
				if sortOp != nil {
					return chain(sortOp.New(), inst)
				}
				return adapt(inst)
			})
			decl := boltDecl(top, n.Name)
			grouping := groupingFor(n, fusedSort != nil)
			for _, in := range inputs {
				connect(decl, in.Name, grouping)
			}
		case core.SinkNode:
			in := n.Inputs[0]
			// A sink consuming a fused-away sort cannot occur: fusion
			// requires the consumer to be an OpNode.
			top.AddSink(n.Name, in.Name)
		}
	}
	if opts.Recovery != nil {
		top.SetRecovery(*opts.Recovery)
	}
	if opts.FaultPlan != nil {
		top.SetFaultPlan(opts.FaultPlan)
	}
	if opts.Transport != nil {
		top.SetTransport(*opts.Transport)
	}
	if opts.Observability != nil {
		top.SetObservability(*opts.Observability)
	}
	return top, nil
}

// isSortOp recognizes core.Sort operators structurally: they are the
// only built-in whose input is unordered and whose output is the
// ordered type with identical key and value names.
func isSortOp(op core.Operator) bool {
	if s, ok := op.(sorter); ok {
		return s.IsSort()
	}
	in, out := op.InType(), op.OutType()
	return in.Kind == stream.Unordered && out.Kind == stream.Ordered &&
		in.Key == out.Key && in.Val == out.Val && op.Mode() == core.ParKeyed
}

// groupingFor selects the semantics-preserving grouping for the
// connection into node n (Theorem 4.3). A fused sort forces key
// routing even if the downstream operator alone would allow shuffle.
func groupingFor(n *core.Node, hasFusedSort bool) storm.Grouping {
	if hasFusedSort {
		return storm.Fields
	}
	switch n.Op.Mode() {
	case core.ParAny:
		return storm.Shuffle
	case core.ParKeyed:
		return storm.Fields
	default:
		return storm.Global
	}
}

// boltDecl re-opens a bolt declaration for wiring. The storm builder
// returns the declaration at AddBolt time; this helper exists so the
// compiler can keep its loop flat.
func boltDecl(t *storm.Topology, name string) *storm.BoltDecl {
	return t.Decl(name)
}

func connect(d *storm.BoltDecl, from string, g storm.Grouping) {
	switch g {
	case storm.Shuffle:
		d.ShuffleGrouping(from, true)
	case storm.Fields:
		d.FieldsGrouping(from, true)
	case storm.Global:
		d.GlobalGrouping(from, true)
	default:
		d.BroadcastGrouping(from, true)
	}
}

// instanceBolt adapts a core.Instance to a storm.Bolt (identical
// method sets; the named type keeps the dependency direction
// explicit).
type instanceBolt struct{ inst core.Instance }

// Next implements storm.Bolt.
func (b instanceBolt) Next(e stream.Event, emit func(stream.Event)) { b.inst.Next(e, emit) }

// snapshotBolt is an instanceBolt whose instance can checkpoint; it
// additionally implements storm.Recoverable, so the runtime's
// marker-cut recovery can snapshot and restore the bolt.
type snapshotBolt struct{ instanceBolt }

// Snapshot implements storm.Recoverable via core.SnapshotInstance.
func (b snapshotBolt) Snapshot() ([]byte, error) { return core.SnapshotInstance(b.inst) }

// Restore implements storm.Recoverable.
func (b snapshotBolt) Restore(data []byte) error { return core.RestoreInstance(b.inst, data) }

// adapt wraps a core.Instance as a storm.Bolt, exposing
// storm.Recoverable exactly when the instance supports checkpointing
// — the method set advertises the capability to the runtime.
func adapt(inst core.Instance) storm.Bolt {
	if core.CanSnapshot(inst) {
		return snapshotBolt{instanceBolt{inst}}
	}
	return instanceBolt{inst}
}

// chainBolt runs instance a and feeds its emissions into instance b —
// the fusion of two operators into one bolt. The intermediate closure
// is allocated once, not per event.
type chainBolt struct {
	a, b  core.Instance
	outer func(stream.Event)
	mid   func(stream.Event)
}

// Next implements storm.Bolt.
func (c *chainBolt) Next(e stream.Event, emit func(stream.Event)) {
	c.outer = emit
	c.a.Next(e, c.mid)
}

// Snapshot implements storm.Recoverable: the fused bolt's checkpoint
// is the pair of its instances' snapshots.
func (c *chainBolt) Snapshot() ([]byte, error) {
	sa, err := core.SnapshotInstance(c.a)
	if err != nil {
		return nil, err
	}
	sb, err := core.SnapshotInstance(c.b)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode([2][]byte{sa, sb}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore implements storm.Recoverable.
func (c *chainBolt) Restore(data []byte) error {
	var parts [2][]byte
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&parts); err != nil {
		return err
	}
	if err := core.RestoreInstance(c.a, parts[0]); err != nil {
		return err
	}
	return core.RestoreInstance(c.b, parts[1])
}

// plainBolt hides chainBolt's Recoverable methods when one of the
// fused instances cannot snapshot, so the runtime sees an accurate
// method set.
type plainBolt struct{ b storm.Bolt }

// Next implements storm.Bolt.
func (p plainBolt) Next(e stream.Event, emit func(stream.Event)) { p.b.Next(e, emit) }

func chain(a, b core.Instance) storm.Bolt {
	c := &chainBolt{a: a, b: b}
	c.mid = func(e stream.Event) { c.b.Next(e, c.outer) }
	if core.CanSnapshot(a) && core.CanSnapshot(b) {
		return c
	}
	return plainBolt{c}
}
