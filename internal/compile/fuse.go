package compile

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"

	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// fusedBolt runs a pipeline of operator instances inside one
// executor: each stage's emissions feed the next stage directly, as
// plain function composition — no edge, no batching, no queueing in
// between. It generalizes the original two-instance SORT fusion to
// arbitrary chain length; the compiler uses it both for a fused SORT
// prefix and for maximal stateless chains (FuseChains).
//
// The per-stage feed closures are allocated once per bolt, not per
// event, so the steady-state hot path is a chain of direct calls.
type fusedBolt struct {
	insts []core.Instance
	outer func(stream.Event)
	feeds []func(stream.Event)
	// counts[i], when set, counts events delivered into stage i across
	// the component's instances — the per-stage visibility a fused
	// chain would otherwise lose by sharing one executor's histograms.
	// Shared atomics owned by the compilation's Plan.
	counts []*atomic.Int64
}

func newFusedBolt(insts []core.Instance, counts []*atomic.Int64) storm.Bolt {
	f := &fusedBolt{insts: insts, counts: counts}
	f.feeds = make([]func(stream.Event), len(insts))
	last := len(insts) - 1
	f.feeds[last] = func(e stream.Event) { f.outer(e) }
	for i := 0; i < last; i++ {
		i := i
		f.feeds[i] = func(e stream.Event) {
			if f.counts != nil {
				f.counts[i+1].Add(1)
			}
			f.insts[i+1].Next(e, f.feeds[i+1])
		}
	}
	for _, in := range insts {
		if !core.CanSnapshot(in) {
			// Hide the Recoverable method set when any stage cannot
			// checkpoint, so the runtime sees an accurate capability.
			return plainBolt{f}
		}
	}
	return f
}

// Next implements storm.Bolt.
func (f *fusedBolt) Next(e stream.Event, emit func(stream.Event)) {
	f.outer = emit
	if f.counts != nil {
		f.counts[0].Add(1)
	}
	f.insts[0].Next(e, f.feeds[0])
}

// Snapshot implements storm.Recoverable: the fused bolt's checkpoint
// is the sequence of its stages' snapshots.
func (f *fusedBolt) Snapshot() ([]byte, error) {
	parts := make([][]byte, len(f.insts))
	for i, in := range f.insts {
		b, err := core.SnapshotInstance(in)
		if err != nil {
			return nil, err
		}
		parts[i] = b
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(parts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore implements storm.Recoverable.
func (f *fusedBolt) Restore(data []byte) error {
	var parts [][]byte
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&parts); err != nil {
		return err
	}
	if len(parts) != len(f.insts) {
		return fmt.Errorf("compile: fused-bolt snapshot has %d stages, bolt has %d", len(parts), len(f.insts))
	}
	for i, in := range f.insts {
		if err := core.RestoreInstance(in, parts[i]); err != nil {
			return err
		}
	}
	return nil
}

// Reshard implements storm.Resharder stage-wise: each old composite
// snapshot is split into its per-stage parts, every stage's instance
// set re-shards independently through the stage's core.Resharder, and
// the results recompose into newPar composite snapshots. A stage that
// cannot re-shard fails the whole call, so the runtime aborts the
// rescale with the topology untouched.
func (f *fusedBolt) Reshard(old [][]byte, newPar int, owner func(key any) int) ([][]byte, error) {
	stages := len(f.insts)
	// perStage[s][i] is stage s's snapshot on old instance i.
	perStage := make([][][]byte, stages)
	for s := range perStage {
		perStage[s] = make([][]byte, len(old))
	}
	for i, blob := range old {
		if len(blob) == 0 {
			continue // an instance that held no state contributes none to any stage
		}
		var parts [][]byte
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&parts); err != nil {
			return nil, err
		}
		if len(parts) != stages {
			return nil, fmt.Errorf("compile: fused-bolt snapshot has %d stages, bolt has %d", len(parts), stages)
		}
		for s := range parts {
			perStage[s][i] = parts[s]
		}
	}
	newStage := make([][][]byte, stages)
	for s, in := range f.insts {
		out, err := core.ReshardInstanceSnapshots(in, perStage[s], newPar, owner)
		if err != nil {
			return nil, fmt.Errorf("compile: re-sharding fused stage %d: %w", s, err)
		}
		if len(out) != newPar {
			return nil, fmt.Errorf("compile: fused stage %d re-sharded to %d snapshots, want %d", s, len(out), newPar)
		}
		newStage[s] = out
	}
	blobs := make([][]byte, newPar)
	for j := 0; j < newPar; j++ {
		parts := make([][]byte, stages)
		for s := range parts {
			parts[s] = newStage[s][j]
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(parts); err != nil {
			return nil, err
		}
		blobs[j] = buf.Bytes()
	}
	return blobs, nil
}
