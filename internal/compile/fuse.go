package compile

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"

	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// fusedBolt runs a pipeline of operator instances inside one
// executor: each stage's emissions feed the next stage directly, as
// plain function composition — no edge, no batching, no queueing in
// between. It generalizes the original two-instance SORT fusion to
// arbitrary chain length; the compiler uses it both for a fused SORT
// prefix and for maximal stateless chains (FuseChains).
//
// The per-stage feed closures are allocated once per bolt, not per
// event, so the steady-state hot path is a chain of direct calls.
type fusedBolt struct {
	insts []core.Instance
	outer func(stream.Event)
	feeds []func(stream.Event)
	// counts[i], when set, counts events delivered into stage i across
	// the component's instances — the per-stage visibility a fused
	// chain would otherwise lose by sharing one executor's histograms.
	// Shared atomics owned by the compilation's Plan.
	counts []*atomic.Int64
	// stagesB is the batch view of insts when every stage processes
	// typed columns and the kinds chain; nil disables ProcessCols.
	stagesB  []core.BatchInstance
	batchIn  *stream.ColKind
	batchOut *stream.ColKind
	// chain is the closure-chained view of stagesB: each stage's typed
	// output closure is bound to the next stage's per-row entry, so one
	// ProcessCols call on the head stage runs the whole chain as a
	// single loop over the input columns, with no intermediate batches.
	// nil when any stage declines chaining; chainTail is the last stage,
	// which holds the caller's output batch during the call.
	chain     []core.ColChain
	chainTail core.ColChain
}

func newFusedBolt(insts []core.Instance, counts []*atomic.Int64) storm.Bolt {
	f := &fusedBolt{insts: insts, counts: counts}
	f.initCols()
	f.feeds = make([]func(stream.Event), len(insts))
	last := len(insts) - 1
	f.feeds[last] = func(e stream.Event) { f.outer(e) }
	for i := 0; i < last; i++ {
		i := i
		f.feeds[i] = func(e stream.Event) {
			if f.counts != nil {
				f.counts[i+1].Add(1)
			}
			f.insts[i+1].Next(e, f.feeds[i+1])
		}
	}
	for _, in := range insts {
		if !core.CanSnapshot(in) {
			// Hide the Recoverable method set when any stage cannot
			// checkpoint, so the runtime sees an accurate capability.
			return plainBolt{f}
		}
	}
	return f
}

// Next implements storm.Bolt.
func (f *fusedBolt) Next(e stream.Event, emit func(stream.Event)) {
	f.outer = emit
	if f.counts != nil {
		f.counts[0].Add(1)
	}
	f.insts[0].Next(e, f.feeds[0])
}

// initCols decides whether the chain can run batch-at-a-time: every
// stage must be a core.BatchInstance and each stage's output kind must
// be exactly (canonically) the next stage's input kind. Chains the
// compiler fuses are all-stateless, which satisfies both, so in
// practice a fused chain on a columnar edge becomes a single loop over
// typed columns per stage with no per-event calls at all.
func (f *fusedBolt) initCols() {
	bs := make([]core.BatchInstance, len(f.insts))
	for i, in := range f.insts {
		b, ok := in.(core.BatchInstance)
		if !ok || b.InColKind() == nil {
			return
		}
		if i > 0 && bs[i-1].OutColKind() != b.InColKind() {
			return
		}
		bs[i] = b
	}
	f.stagesB = bs
	f.batchIn = bs[0].InColKind()
	f.batchOut = bs[len(bs)-1].OutColKind()
	f.initChain(bs)
}

// initChain upgrades the stage-by-stage batch pipeline to a single
// loop: when every stage supports closure chaining, stage i's output
// is bound to stage i+1's per-row entry, so rows flow through the
// whole chain by direct typed calls. The kinds already chain
// (initCols checked canonical pointer equality), so the typed binds
// cannot mismatch; a failed bind means kind canonicalization is
// broken and nothing downstream can be trusted, hence the panic.
func (f *fusedBolt) initChain(bs []core.BatchInstance) {
	if len(bs) < 2 {
		return
	}
	cc := make([]core.ColChain, len(bs))
	for i, b := range bs {
		c, ok := b.(core.ColChain)
		if !ok {
			return
		}
		cc[i] = c
	}
	for i := 0; i < len(cc)-1; i++ {
		if !cc[i].BindRowOut(cc[i+1].RowEmit()) {
			panic(fmt.Sprintf("compile: fused stage %d row type does not match stage %d input despite chained kinds", i, i+1))
		}
	}
	f.chain = cc
	f.chainTail = cc[len(cc)-1]
}

// InColKind implements storm.ColProcessor.
func (f *fusedBolt) InColKind() *stream.ColKind { return f.batchIn }

// OutColKind implements storm.ColProcessor.
func (f *fusedBolt) OutColKind() *stream.ColKind { return f.batchOut }

// ProcessCols implements storm.ColProcessor: the batch form of Next,
// feeding whole column batches through the stage pipeline. When the
// chain is closure-bound, the head stage's loop IS the whole chain —
// its rows cascade through the bound closures and land in out via the
// tail's parked batch, with no intermediate materialization. Per-stage
// delivery tallies accumulate in plain per-instance counters and flush
// to the shared atomics once per batch, keeping Plan.StageCounts
// consistent with the boxed path. Otherwise stage boundaries use
// pooled intermediate batches owned (and released) here; in and out
// belong to the caller.
func (f *fusedBolt) ProcessCols(in, out stream.Columns) {
	if f.chain != nil {
		f.chainTail.SetOutBatch(out)
		f.stagesB[0].ProcessCols(in, nil)
		f.chainTail.SetOutBatch(nil)
		if f.counts != nil {
			f.counts[0].Add(int64(in.Len()))
		}
		for i := 1; i < len(f.chain); i++ {
			n := f.chain[i].TakeRows()
			if f.counts != nil {
				f.counts[i].Add(n)
			}
		}
		return
	}
	last := len(f.stagesB) - 1
	cur := in
	for i, b := range f.stagesB {
		if f.counts != nil {
			f.counts[i].Add(int64(cur.Len()))
		}
		next := out
		if i < last {
			next = b.OutColKind().Get()
		}
		b.ProcessCols(cur, next)
		if i > 0 {
			cur.Release()
		}
		cur = next
	}
}

// Snapshot implements storm.Recoverable: the fused bolt's checkpoint
// is the sequence of its stages' snapshots.
func (f *fusedBolt) Snapshot() ([]byte, error) {
	parts := make([][]byte, len(f.insts))
	for i, in := range f.insts {
		b, err := core.SnapshotInstance(in)
		if err != nil {
			return nil, err
		}
		parts[i] = b
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(parts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore implements storm.Recoverable.
func (f *fusedBolt) Restore(data []byte) error {
	var parts [][]byte
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&parts); err != nil {
		return err
	}
	if len(parts) != len(f.insts) {
		return fmt.Errorf("compile: fused-bolt snapshot has %d stages, bolt has %d", len(parts), len(f.insts))
	}
	for i, in := range f.insts {
		if err := core.RestoreInstance(in, parts[i]); err != nil {
			return err
		}
	}
	return nil
}

// Reshard implements storm.Resharder stage-wise: each old composite
// snapshot is split into its per-stage parts, every stage's instance
// set re-shards independently through the stage's core.Resharder, and
// the results recompose into newPar composite snapshots. A stage that
// cannot re-shard fails the whole call, so the runtime aborts the
// rescale with the topology untouched.
func (f *fusedBolt) Reshard(old [][]byte, newPar int, owner func(key any) int) ([][]byte, error) {
	stages := len(f.insts)
	// perStage[s][i] is stage s's snapshot on old instance i.
	perStage := make([][][]byte, stages)
	for s := range perStage {
		perStage[s] = make([][]byte, len(old))
	}
	for i, blob := range old {
		if len(blob) == 0 {
			continue // an instance that held no state contributes none to any stage
		}
		var parts [][]byte
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&parts); err != nil {
			return nil, err
		}
		if len(parts) != stages {
			return nil, fmt.Errorf("compile: fused-bolt snapshot has %d stages, bolt has %d", len(parts), stages)
		}
		for s := range parts {
			perStage[s][i] = parts[s]
		}
	}
	newStage := make([][][]byte, stages)
	for s, in := range f.insts {
		out, err := core.ReshardInstanceSnapshots(in, perStage[s], newPar, owner)
		if err != nil {
			return nil, fmt.Errorf("compile: re-sharding fused stage %d: %w", s, err)
		}
		if len(out) != newPar {
			return nil, fmt.Errorf("compile: fused stage %d re-sharded to %d snapshots, want %d", s, len(out), newPar)
		}
		newStage[s] = out
	}
	blobs := make([][]byte, newPar)
	for j := 0; j < newPar; j++ {
		parts := make([][]byte, stages)
		for s := range parts {
			parts[s] = newStage[s][j]
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(parts); err != nil {
			return nil, err
		}
		blobs[j] = buf.Bytes()
	}
	return blobs, nil
}
