package compile

import (
	"fmt"
	"strings"
	"sync/atomic"

	"datatrace/internal/storm"
)

// Plan is the optimization pipeline's debugging output: which
// operators ended up fused into which bolts, and which edges carry
// sender-side combining buffers. CompileWithPlan returns it alongside
// the topology; fused bolts additionally feed per-stage delivery
// counters into it at run time, restoring the per-operator visibility
// a fused chain would otherwise lose by sharing one executor's
// metrics.
type Plan struct {
	// Name is the compiled topology's name.
	Name string
	// Bolts lists every emitted bolt with the operator stages running
	// inside it, in execution order. More than one stage means fusion
	// happened (a fused SORT appears as its own stage).
	Bolts []PlanBolt
	// CombinedEdges lists the edges carrying sender-side combining
	// buffers (the Combiners pass); Columnar marks the typed variant.
	CombinedEdges []PlanEdge
	// ColumnarEdges lists the (non-combined) edges selected for the
	// typed struct-of-arrays transport: both endpoints exposed the same
	// canonical column kind.
	ColumnarEdges []PlanEdge
	// Placement maps each emitted executor to its worker when
	// Options.Workers is set (the same table every worker process of
	// a networked run computes); nil when placement is off.
	Placement []storm.Placed
}

// PlanBolt describes one emitted bolt.
type PlanBolt struct {
	Name        string
	Parallelism int
	// Stages names the operators executed inside the bolt, in order.
	Stages []string
	// counts[i] accumulates events delivered into stage i, summed over
	// the component's instances; allocated only for fused bolts.
	counts []*atomic.Int64
}

// PlanEdge is one combined or columnar connection.
type PlanEdge struct {
	From, To string
	// Cap is the combining buffer's distinct-key capacity (combined
	// edges only).
	Cap int
	// Columnar reports that the edge moves typed column batches.
	Columnar bool
}

// StageCount is one fused stage's delivery count.
type StageCount struct {
	Stage  string
	Events int64
}

// StageCounts returns the per-stage delivery counts of a fused bolt,
// readable during or after a run of the compiled topology. Unknown or
// unfused bolts return nil.
func (p *Plan) StageCounts(bolt string) []StageCount {
	for i := range p.Bolts {
		b := &p.Bolts[i]
		if b.Name != bolt || b.counts == nil {
			continue
		}
		out := make([]StageCount, len(b.Stages))
		for j, s := range b.Stages {
			out[j] = StageCount{Stage: s, Events: b.counts[j].Load()}
		}
		return out
	}
	return nil
}

// addBolt records one emitted bolt, allocating shared stage counters
// when the bolt fuses several stages, and returns the counter slice
// for the bolt factory to capture.
func (p *Plan) addBolt(name string, par int, stages []string) []*atomic.Int64 {
	pb := PlanBolt{Name: name, Parallelism: par, Stages: stages}
	if len(stages) > 1 {
		pb.counts = make([]*atomic.Int64, len(stages))
		for i := range pb.counts {
			pb.counts[i] = new(atomic.Int64)
		}
	}
	p.Bolts = append(p.Bolts, pb)
	return pb.counts
}

// String renders the plan for debugging.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "optimization plan for %s:\n", p.Name)
	for _, pb := range p.Bolts {
		if len(pb.Stages) > 1 {
			fmt.Fprintf(&b, "  bolt %s ×%d fuses [%s]\n", pb.Name, pb.Parallelism, strings.Join(pb.Stages, " → "))
		} else {
			fmt.Fprintf(&b, "  bolt %s ×%d\n", pb.Name, pb.Parallelism)
		}
	}
	for _, e := range p.CombinedEdges {
		kind := "combined"
		if e.Columnar {
			kind = "combined typed"
		}
		fmt.Fprintf(&b, "  edge %s → %s %s (cap %d)\n", e.From, e.To, kind, e.Cap)
	}
	for _, e := range p.ColumnarEdges {
		fmt.Fprintf(&b, "  edge %s → %s columnar\n", e.From, e.To)
	}
	for _, pl := range p.Placement {
		fmt.Fprintf(&b, "  %s[%d] → worker %d (gid %d)\n", pl.Component, pl.Instance, pl.Worker, pl.GID)
	}
	return b.String()
}
