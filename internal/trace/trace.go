package trace

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Tag identifies the kind of a data item. The dependence relation of a
// data-trace type is defined over tags, not over whole items.
type Tag string

// Item is a tagged data item (σ, d): an element of a data type
// A = (Σ, (Tσ)σ∈Σ). Values are held as any; the formal layer never
// interprets them beyond equality and a deterministic rendering.
type Item struct {
	Tag   Tag
	Value any
}

// It is a convenience constructor for Item.
func It(tag Tag, value any) Item { return Item{Tag: tag, Value: value} }

// String renders the item as tag(value), e.g. M(5) or #(10).
func (it Item) String() string {
	if it.Value == nil {
		return string(it.Tag)
	}
	return fmt.Sprintf("%s(%v)", it.Tag, it.Value)
}

// Equal reports whether two items are the same tagged value. Values
// are compared structurally so that items may carry slices or structs.
func (it Item) Equal(other Item) bool {
	return it.Tag == other.Tag && reflect.DeepEqual(it.Value, other.Value)
}

// less is the total order on items used to pick canonical
// representatives: by tag first, then by the deterministic rendering
// of the value. Any total order works; this one is stable and easy to
// inspect in test failures.
func (it Item) less(other Item) bool {
	if it.Tag != other.Tag {
		return it.Tag < other.Tag
	}
	return fmt.Sprint(it.Value) < fmt.Sprint(other.Value)
}

// Dependence is a symmetric binary relation on tags. Two tags that are
// not dependent are independent, and adjacent items with independent
// tags commute. Implementations must be symmetric; the constructors in
// this package enforce symmetry.
type Dependence interface {
	// Dependent reports whether items tagged a and b are ordered
	// relative to each other.
	Dependent(a, b Tag) bool
}

// Pairs is an explicit, finite dependence relation.
type Pairs struct {
	set map[[2]Tag]struct{}
}

// NewPairs builds a dependence relation from explicit tag pairs. Each
// supplied pair is closed under symmetry, so NewPairs([2]Tag{"a","b"})
// makes both (a,b) and (b,a) dependent.
func NewPairs(pairs ...[2]Tag) *Pairs {
	p := &Pairs{set: make(map[[2]Tag]struct{}, 2*len(pairs))}
	for _, pr := range pairs {
		p.Add(pr[0], pr[1])
	}
	return p
}

// Add inserts the (symmetric) pair (a, b) into the relation.
func (p *Pairs) Add(a, b Tag) {
	p.set[[2]Tag{a, b}] = struct{}{}
	p.set[[2]Tag{b, a}] = struct{}{}
}

// Dependent implements Dependence.
func (p *Pairs) Dependent(a, b Tag) bool {
	_, ok := p.set[[2]Tag{a, b}]
	return ok
}

// Func adapts a predicate to a Dependence. The predicate is
// symmetrized: tags are dependent if the predicate holds in either
// argument order.
type Func func(a, b Tag) bool

// Dependent implements Dependence.
func (f Func) Dependent(a, b Tag) bool { return f(a, b) || f(b, a) }

// Linear is the dependence relation in which all tags are mutually
// dependent: traces degenerate to plain sequences.
type Linear struct{}

// Dependent implements Dependence: always true.
func (Linear) Dependent(a, b Tag) bool { return true }

// None is the empty dependence relation: traces degenerate to bags.
type None struct{}

// Dependent implements Dependence: always false.
func (None) Dependent(a, b Tag) bool { return false }

// Channels is the dependence relation of Example 3.3: each tag is
// dependent only on itself, so a trace is a tuple of independent
// linearly ordered channels, as in acyclic Kahn process networks.
type Channels struct{}

// Dependent implements Dependence.
func (Channels) Dependent(a, b Tag) bool { return a == b }

// MarkerOrdered is the dependence relation of the practical type
// O(K, V) from section 4: the Marker tag is dependent on everything
// (including itself), and every non-marker tag is dependent on itself.
// Items with the same key are linearly ordered between markers; items
// with different keys are unordered.
type MarkerOrdered struct{ Marker Tag }

// Dependent implements Dependence.
func (m MarkerOrdered) Dependent(a, b Tag) bool {
	return a == m.Marker || b == m.Marker || a == b
}

// MarkerUnordered is the dependence relation of the practical type
// U(K, V) from section 4: the Marker tag is dependent on everything
// (including itself) and all other items are completely unordered,
// even within a key.
type MarkerUnordered struct{ Marker Tag }

// Dependent implements Dependence.
func (m MarkerUnordered) Dependent(a, b Tag) bool {
	return a == m.Marker || b == m.Marker
}

// Type is a data-trace type X = (A, D): a data type together with a
// dependence relation on its tag alphabet. The data type's value
// assignment is implicit (values are carried in items); what the Type
// contributes operationally is the dependence relation.
type Type struct {
	// Name is a human-readable description, e.g. "U(ID,V)".
	Name string
	// Dep is the dependence relation on tags.
	Dep Dependence
}

// NewType builds a data-trace type.
func NewType(name string, dep Dependence) Type { return Type{Name: name, Dep: dep} }

// String returns the type's name.
func (t Type) String() string { return t.Name }

// independent reports whether adjacent items a and b commute.
func independent(d Dependence, a, b Item) bool {
	return !d.Dependent(a.Tag, b.Tag)
}

// NormalForm returns the canonical representative of the trace [u]:
// the lexicographically least sequence equivalent to u under ≡D,
// where items are compared by (tag, rendered value). Two sequences are
// equivalent iff their normal forms are identical, and the normal form
// itself is a convenient stable representative for hashing, printing
// and comparing traces. Runs in O(n²) comparisons.
func NormalForm(d Dependence, u []Item) []Item {
	remaining := make([]Item, len(u))
	copy(remaining, u)
	out := make([]Item, 0, len(u))
	for len(remaining) > 0 {
		best := -1
		for i, it := range remaining {
			enabled := true
			for j := 0; j < i; j++ {
				if d.Dependent(remaining[j].Tag, it.Tag) {
					enabled = false
					break
				}
			}
			if !enabled {
				continue
			}
			if best == -1 || it.less(remaining[best]) {
				best = i
			}
		}
		// best is always found: the first remaining item is enabled.
		out = append(out, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

// Equivalent reports whether u ≡D v: whether one sequence can be
// obtained from the other by repeatedly commuting adjacent items with
// independent tags. Equivalent sequences denote the same data trace.
func Equivalent(d Dependence, u, v []Item) bool {
	if len(u) != len(v) {
		return false
	}
	nu := NormalForm(d, u)
	nv := NormalForm(d, v)
	for i := range nu {
		if !nu[i].Equal(nv[i]) {
			return false
		}
	}
	return true
}

// Concat concatenates two representatives. Concatenation of traces is
// well-defined on representatives because ≡D is a congruence:
// [u]·[v] = [uv].
func Concat(u, v []Item) []Item {
	out := make([]Item, 0, len(u)+len(v))
	out = append(out, u...)
	out = append(out, v...)
	return out
}

// LeftDivide attempts to remove the trace [u] from the front of [v]:
// it returns a representative w with [u]·[w] = [v] and ok = true when
// [u] is a prefix of [v] in the trace prefix order, and ok = false
// otherwise. The returned slice is freshly allocated.
func LeftDivide(d Dependence, v, u []Item) (w []Item, ok bool) {
	rest := make([]Item, len(v))
	copy(rest, v)
	for _, a := range u {
		idx := -1
		for i, b := range rest {
			if !b.Equal(a) {
				continue
			}
			minimal := true
			for j := 0; j < i; j++ {
				if d.Dependent(rest[j].Tag, b.Tag) {
					minimal = false
					break
				}
			}
			if minimal {
				idx = i
				break
			}
		}
		if idx == -1 {
			return nil, false
		}
		rest = append(rest[:idx], rest[idx+1:]...)
	}
	return rest, true
}

// PrefixOf reports whether [u] ≤ [v] in the prefix partial order on
// data traces: whether there exist representatives ū ∈ [u], v̄ ∈ [v]
// with ū a sequence prefix of v̄.
func PrefixOf(d Dependence, u, v []Item) bool {
	_, ok := LeftDivide(d, v, u)
	return ok
}

// Step is one layer of a Foata normal form: a set of pairwise
// independent items that are simultaneously minimal in the pomset.
type Step []Item

// FoataNormalForm decomposes the trace [u] into its Foata normal form:
// the unique sequence of steps F₁F₂… where each Fᵢ is the set of
// minimal items of the residual pomset. Items within a step are sorted
// canonically. Two sequences are equivalent iff their Foata normal
// forms agree; the decomposition also measures the trace's inherent
// parallelism (step count = pomset height).
func FoataNormalForm(d Dependence, u []Item) []Step {
	remaining := make([]Item, len(u))
	copy(remaining, u)
	var steps []Step
	for len(remaining) > 0 {
		var step Step
		var rest []Item
		for i, it := range remaining {
			minimal := true
			for j := 0; j < i; j++ {
				if d.Dependent(remaining[j].Tag, it.Tag) {
					minimal = false
					break
				}
			}
			if minimal {
				step = append(step, it)
			} else {
				rest = append(rest, it)
			}
		}
		sort.Slice(step, func(i, j int) bool { return step[i].less(step[j]) })
		steps = append(steps, step)
		remaining = rest
	}
	return steps
}

// Pomset materializes the partial order induced on the positions of u
// by the dependence relation: Order[i][j] is true iff position i must
// occur before position j (the transitive closure of "i < j in the
// sequence and their tags are dependent").
type Pomset struct {
	Items []Item
	Order [][]bool
}

// NewPomset computes the pomset view of a representative sequence.
func NewPomset(d Dependence, u []Item) *Pomset {
	n := len(u)
	order := make([][]bool, n)
	for i := range order {
		order[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d.Dependent(u[i].Tag, u[j].Tag) {
				order[i][j] = true
			}
		}
	}
	// Transitive closure (Floyd–Warshall on booleans).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !order[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if order[k][j] {
					order[i][j] = true
				}
			}
		}
	}
	items := make([]Item, n)
	copy(items, u)
	return &Pomset{Items: items, Order: order}
}

// Width returns the size of the largest antichain reachable greedily —
// here approximated as the largest Foata step, which for these
// pomsets coincides with the maximum number of simultaneously minimal
// items at any stage.
func (p *Pomset) Width(d Dependence) int {
	max := 0
	for _, s := range FoataNormalForm(d, p.Items) {
		if len(s) > max {
			max = len(s)
		}
	}
	return max
}

// Height returns the length of the longest chain in the pomset, which
// equals the number of Foata steps.
func (p *Pomset) Height(d Dependence) int {
	return len(FoataNormalForm(d, p.Items))
}

// Render formats a sequence of items compactly, e.g. "M(5) M(7) #".
func Render(u []Item) string {
	parts := make([]string, len(u))
	for i, it := range u {
		parts[i] = it.String()
	}
	return strings.Join(parts, " ")
}
