package trace

import (
	"testing"
)

// decode turns fuzz bytes into an item sequence over the {M, #}
// alphabet of Example 3.1.
func decodeSeq(data []byte) []Item {
	if len(data) > 24 {
		data = data[:24]
	}
	out := make([]Item, 0, len(data))
	for _, b := range data {
		if b%5 == 0 {
			out = append(out, It("#", nil))
		} else {
			out = append(out, It("M", int(b%7)))
		}
	}
	return out
}

// FuzzNormalFormInvariants fuzzes the central trace-theory facts: the
// normal form is an equivalent, idempotent canonical representative,
// invariant under legal adjacent swaps; concatenation is congruent;
// left division inverts concatenation.
func FuzzNormalFormInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3}, []byte{4})
	f.Add([]byte{0, 0, 0}, []byte{})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, []byte{1, 0, 1})
	dep := MarkerUnordered{Marker: "#"}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		u, w := decodeSeq(a), decodeSeq(b)
		nf := NormalForm(dep, u)
		if !Equivalent(dep, u, nf) {
			t.Fatalf("normal form not equivalent: %s vs %s", Render(u), Render(nf))
		}
		if !sequencesEqual(NormalForm(dep, nf), nf) {
			t.Fatalf("normal form not idempotent: %s", Render(u))
		}
		for i := 0; i+1 < len(u); i++ {
			if independent(dep, u[i], u[i+1]) {
				v := append([]Item(nil), u...)
				v[i], v[i+1] = v[i+1], v[i]
				if !sequencesEqual(NormalForm(dep, v), nf) {
					t.Fatalf("normal form changed under a legal swap at %d: %s", i, Render(u))
				}
			}
		}
		// Left division inverts concatenation.
		res, ok := LeftDivide(dep, Concat(u, w), u)
		if !ok {
			t.Fatalf("LeftDivide failed on its own concatenation: %s · %s", Render(u), Render(w))
		}
		if !Equivalent(dep, res, w) {
			t.Fatalf("residual %s not ≡ %s", Render(res), Render(w))
		}
		// Prefix order sanity.
		if !PrefixOf(dep, u, Concat(u, w)) {
			t.Fatalf("%s not a prefix of its own extension", Render(u))
		}
	})
}

// FuzzTraceNormalForm fuzzes NormalForm as a canonical-representative
// function under both practical dependence relations (the §3 types
// U(K,V) and O(K,V) with markers): it preserves the item multiset,
// it never reorders dependent items, and sequence equality of normal
// forms decides trace equivalence.
func FuzzTraceNormalForm(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3}, []byte{3, 1, 0, 2})
	f.Add([]byte{0, 0}, []byte{0})
	f.Add([]byte{6, 13, 0, 6, 13}, []byte{13, 6, 0, 13, 6})
	f.Add([]byte{5, 10, 15}, []byte{15, 10, 5})
	deps := []Dependence{MarkerUnordered{Marker: "#"}, MarkerOrdered{Marker: "#"}}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		u, v := decodeSeq(a), decodeSeq(b)
		for _, dep := range deps {
			nf := NormalForm(dep, u)
			// Multiset preservation: the normal form is a permutation.
			count := func(s []Item) map[string]int {
				m := map[string]int{}
				for _, it := range s {
					m[Render([]Item{it})]++
				}
				return m
			}
			cu, cn := count(u), count(nf)
			if len(cu) != len(cn) {
				t.Fatalf("%T: normal form changed the item multiset: %s vs %s", dep, Render(u), Render(nf))
			}
			for k, n := range cu {
				if cn[k] != n {
					t.Fatalf("%T: normal form changed multiplicity of %s", dep, k)
				}
			}
			// Normal-form equality decides equivalence.
			nfv := NormalForm(dep, v)
			if got, want := sequencesEqual(nf, nfv), Equivalent(dep, u, v); got != want {
				t.Fatalf("%T: normal-form equality (%v) disagrees with Equivalent (%v) on %s vs %s",
					dep, got, want, Render(u), Render(v))
			}
			// Markers are a total order in both relations: their
			// subsequence is untouched.
			markers := func(s []Item) []Item {
				var out []Item
				for _, it := range s {
					if it.Tag == "#" {
						out = append(out, it)
					}
				}
				return out
			}
			if !sequencesEqual(markers(u), markers(nf)) {
				t.Fatalf("%T: normal form reordered markers: %s vs %s", dep, Render(u), Render(nf))
			}
		}
	})
}

// FuzzFoataAgreesWithNormalForm fuzzes the agreement of the two
// canonical forms as equivalence deciders.
func FuzzFoataAgreesWithNormalForm(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{0, 1}, []byte{1, 0})
	dep := MarkerUnordered{Marker: "#"}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		u, v := decodeSeq(a), decodeSeq(b)
		nfEq := Equivalent(dep, u, v)
		fu := FoataNormalForm(dep, u)
		fv := FoataNormalForm(dep, v)
		foataEq := len(fu) == len(fv)
		if foataEq {
			for i := range fu {
				if len(fu[i]) != len(fv[i]) {
					foataEq = false
					break
				}
				for j := range fu[i] {
					if !fu[i][j].Equal(fv[i][j]) {
						foataEq = false
						break
					}
				}
			}
		}
		if nfEq != foataEq {
			t.Fatalf("deciders disagree on %s vs %s: nf=%v foata=%v", Render(u), Render(v), nfEq, foataEq)
		}
	})
}
