package trace

import "fmt"

// Project returns the subsequence of u whose tags satisfy keep. For
// any dependence relation, projection is well-defined on traces when
// the kept tag set is closed in the obvious sense: commuting two
// independent items never reorders two kept items relative to each
// other unless they are themselves independent.
func Project(u []Item, keep func(Tag) bool) []Item {
	var out []Item
	for _, it := range u {
		if keep(it.Tag) {
			out = append(out, it)
		}
	}
	return out
}

// TagCounts returns the multiset of tags occurring in u.
func TagCounts(u []Item) map[Tag]int {
	out := map[Tag]int{}
	for _, it := range u {
		out[it.Tag]++
	}
	return out
}

// Tags returns the set of distinct tags occurring in u, in first-
// occurrence order.
func Tags(u []Item) []Tag {
	seen := map[Tag]bool{}
	var out []Tag
	for _, it := range u {
		if !seen[it.Tag] {
			seen[it.Tag] = true
			out = append(out, it.Tag)
		}
	}
	return out
}

// Reflexive reports whether every tag occurring in u or v is
// dependent on itself — the classical Mazurkiewicz setting, where the
// pairwise projection criterion below is complete.
func Reflexive(d Dependence, u ...[]Item) bool {
	for _, seq := range u {
		for _, it := range seq {
			if !d.Dependent(it.Tag, it.Tag) {
				return false
			}
		}
	}
	return true
}

// EquivalentByProjection decides u ≡D v with the classical projection
// criterion: the sequences are equivalent iff for every pair of
// dependent tags (a, b) the projections of u and v onto {a, b} are
// equal item-by-item. The criterion is sound and complete only for
// reflexive dependence relations (every occurring tag dependent on
// itself — plain Mazurkiewicz traces); it returns an error when the
// precondition fails, since bag-like tags need the normal-form check
// of Equivalent instead.
//
// Complexity is O(t² · n) for t distinct tags, which beats the O(n²)
// normal form when the alphabet is small and sequences are long.
func EquivalentByProjection(d Dependence, u, v []Item) (bool, error) {
	if !Reflexive(d, u, v) {
		return false, fmt.Errorf("trace: projection criterion requires every tag to be self-dependent; use Equivalent instead")
	}
	if len(u) != len(v) {
		return false, nil
	}
	tags := Tags(append(append([]Item(nil), u...), v...))
	for i, a := range tags {
		for _, b := range tags[i:] {
			if !d.Dependent(a, b) {
				continue
			}
			pu := Project(u, func(t Tag) bool { return t == a || t == b })
			pv := Project(v, func(t Tag) bool { return t == a || t == b })
			if len(pu) != len(pv) {
				return false, nil
			}
			for k := range pu {
				if !pu[k].Equal(pv[k]) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}
