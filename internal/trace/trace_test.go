package trace

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// bruteEquivalent decides u ≡D v by exhaustive BFS over adjacent
// independent swaps. Exponential; only for small inputs in tests.
func bruteEquivalent(d Dependence, u, v []Item) bool {
	if len(u) != len(v) {
		return false
	}
	key := func(s []Item) string { return Render(s) }
	target := key(v)
	seen := map[string][]Item{key(u): u}
	queue := [][]Item{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if key(cur) == target && sequencesEqual(cur, v) {
			return true
		}
		for i := 0; i+1 < len(cur); i++ {
			if independent(d, cur[i], cur[i+1]) {
				next := make([]Item, len(cur))
				copy(next, cur)
				next[i], next[i+1] = next[i+1], next[i]
				k := key(next)
				if _, ok := seen[k]; !ok {
					seen[k] = next
					queue = append(queue, next)
				}
			}
		}
	}
	return false
}

func sequencesEqual(u, v []Item) bool {
	if len(u) != len(v) {
		return false
	}
	for i := range u {
		if !u[i].Equal(v[i]) {
			return false
		}
	}
	return true
}

// randomSeq draws a random sequence over the {M, #} alphabet of
// Example 3.1 with small integer values.
func randomSeq(r *rand.Rand, n int) []Item {
	out := make([]Item, n)
	for i := range out {
		if r.Intn(4) == 0 {
			out[i] = It("#", nil)
		} else {
			out[i] = It("M", r.Intn(3))
		}
	}
	return out
}

// example31Dep is the dependence relation of Example 3.1: D =
// {(M,#),(#,M),(#,#)} — markers ordered with everything, measurements
// unordered among themselves.
var example31Dep = MarkerUnordered{Marker: "#"}

func TestExample31Equivalence(t *testing.T) {
	u := []Item{It("M", 5), It("M", 5), It("M", 8), It("#", nil), It("M", 9)}
	v := []Item{It("M", 8), It("M", 5), It("M", 5), It("#", nil), It("M", 9)}
	if !Equivalent(example31Dep, u, v) {
		t.Fatalf("paper Example 3.1: %s and %s should be equivalent", Render(u), Render(v))
	}
	w := []Item{It("M", 8), It("M", 5), It("#", nil), It("M", 5), It("M", 9)}
	if Equivalent(example31Dep, u, w) {
		t.Fatalf("moving an item across a marker must not be allowed: %s vs %s", Render(u), Render(w))
	}
}

func TestEquivalentBasics(t *testing.T) {
	tests := []struct {
		name string
		dep  Dependence
		u, v []Item
		want bool
	}{
		{"empty", Linear{}, nil, nil, true},
		{"different lengths", None{}, []Item{It("a", 1)}, nil, false},
		{"linear keeps order", Linear{}, []Item{It("a", 1), It("b", 2)}, []Item{It("b", 2), It("a", 1)}, false},
		{"bag ignores order", None{}, []Item{It("a", 1), It("b", 2)}, []Item{It("b", 2), It("a", 1)}, true},
		{"bag is multiset not set", None{}, []Item{It("a", 1), It("a", 1)}, []Item{It("a", 1)}, false},
		{"channels keep per-tag order", Channels{},
			[]Item{It("a", 1), It("b", 1), It("a", 2)},
			[]Item{It("b", 1), It("a", 1), It("a", 2)}, true},
		{"channels detect per-tag reorder", Channels{},
			[]Item{It("a", 1), It("a", 2)},
			[]Item{It("a", 2), It("a", 1)}, false},
		{"different multisets", None{}, []Item{It("a", 1)}, []Item{It("a", 2)}, false},
		{"self-dependent tag is a sequence", NewPairs([2]Tag{"a", "a"}),
			[]Item{It("a", 1), It("a", 2)},
			[]Item{It("a", 2), It("a", 1)}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Equivalent(tc.dep, tc.u, tc.v); got != tc.want {
				t.Errorf("Equivalent(%s, %s) = %v, want %v", Render(tc.u), Render(tc.v), got, tc.want)
			}
		})
	}
}

func TestNormalFormAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	deps := []Dependence{example31Dep, Linear{}, None{}, Channels{}, MarkerOrdered{Marker: "#"}}
	for trial := 0; trial < 200; trial++ {
		d := deps[trial%len(deps)]
		u := randomSeq(r, 1+r.Intn(6))
		v := randomSeq(r, 1+r.Intn(6))
		got := Equivalent(d, u, v)
		want := bruteEquivalent(d, u, v)
		if got != want {
			t.Fatalf("dep %T: Equivalent(%s, %s) = %v, brute force says %v", d, Render(u), Render(v), got, want)
		}
	}
}

func TestNormalFormProperties(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	deps := []Dependence{example31Dep, Linear{}, None{}, Channels{}}
	for trial := 0; trial < 300; trial++ {
		d := deps[trial%len(deps)]
		u := randomSeq(r, r.Intn(10))
		nf := NormalForm(d, u)
		if !Equivalent(d, u, nf) {
			t.Fatalf("normal form %s not equivalent to %s", Render(nf), Render(u))
		}
		if !sequencesEqual(NormalForm(d, nf), nf) {
			t.Fatalf("normal form not idempotent for %s", Render(u))
		}
		// Invariance: swapping an adjacent independent pair must not
		// change the normal form.
		for i := 0; i+1 < len(u); i++ {
			if independent(d, u[i], u[i+1]) {
				v := make([]Item, len(u))
				copy(v, u)
				v[i], v[i+1] = v[i+1], v[i]
				if !sequencesEqual(NormalForm(d, v), nf) {
					t.Fatalf("normal form changed under a legal swap: %s vs %s", Render(u), Render(v))
				}
			}
		}
	}
}

func TestConcatIsCongruent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := example31Dep
	for trial := 0; trial < 200; trial++ {
		u1 := randomSeq(r, r.Intn(5))
		u2 := NormalForm(d, u1) // an equivalent representative
		v1 := randomSeq(r, r.Intn(5))
		v2 := NormalForm(d, v1)
		if !Equivalent(d, Concat(u1, v1), Concat(u2, v2)) {
			t.Fatalf("concatenation not well-defined on traces: %s·%s vs %s·%s",
				Render(u1), Render(v1), Render(u2), Render(v2))
		}
	}
}

func TestPrefixOrder(t *testing.T) {
	d := example31Dep
	u := []Item{It("M", 5), It("M", 7)}
	v := []Item{It("M", 7), It("M", 5), It("#", nil), It("M", 9)}
	if !PrefixOf(d, u, v) {
		t.Errorf("%s should be a trace prefix of %s (items before # commute)", Render(u), Render(v))
	}
	w := []Item{It("M", 9), It("M", 5)}
	if PrefixOf(d, w, v) {
		t.Errorf("%s should not be a prefix of %s: M(9) occurs after the marker", Render(w), Render(v))
	}
}

func TestPrefixOfIsPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := example31Dep
	for trial := 0; trial < 150; trial++ {
		u := randomSeq(r, r.Intn(5))
		v := randomSeq(r, r.Intn(5))
		w := randomSeq(r, r.Intn(5))
		if !PrefixOf(d, u, u) {
			t.Fatalf("prefix order not reflexive on %s", Render(u))
		}
		// Antisymmetry up to ≡.
		if PrefixOf(d, u, v) && PrefixOf(d, v, u) && !Equivalent(d, u, v) {
			t.Fatalf("antisymmetry violated: %s vs %s", Render(u), Render(v))
		}
		// Transitivity.
		if PrefixOf(d, u, v) && PrefixOf(d, v, w) && !PrefixOf(d, u, w) {
			t.Fatalf("transitivity violated: %s ≤ %s ≤ %s", Render(u), Render(v), Render(w))
		}
	}
}

func TestLeftDivideResidual(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := example31Dep
	for trial := 0; trial < 200; trial++ {
		u := randomSeq(r, r.Intn(4))
		w := randomSeq(r, r.Intn(4))
		v := Concat(u, w)
		res, ok := LeftDivide(d, v, u)
		if !ok {
			t.Fatalf("LeftDivide(%s, %s) failed but %s is a prefix by construction", Render(v), Render(u), Render(u))
		}
		if !Equivalent(d, res, w) {
			t.Fatalf("residual %s not equivalent to %s", Render(res), Render(w))
		}
	}
}

func TestConcatThenDivideRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}
	d := Channels{}
	f := func(xs, ys []uint8) bool {
		u := make([]Item, len(xs))
		for i, x := range xs {
			u[i] = It(Tag(fmt.Sprintf("c%d", x%3)), int(x))
		}
		w := make([]Item, len(ys))
		for i, y := range ys {
			w[i] = It(Tag(fmt.Sprintf("c%d", y%3)), int(y))
		}
		res, ok := LeftDivide(d, Concat(u, w), u)
		return ok && Equivalent(d, res, w)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFoataNormalForm(t *testing.T) {
	d := example31Dep
	u := []Item{It("M", 5), It("M", 7), It("#", nil), It("M", 9), It("M", 8), It("#", nil)}
	steps := FoataNormalForm(d, u)
	want := [][]string{{"M(5)", "M(7)"}, {"#"}, {"M(8)", "M(9)"}, {"#"}}
	if len(steps) != len(want) {
		t.Fatalf("got %d steps, want %d: %v", len(steps), len(want), steps)
	}
	for i, s := range steps {
		if len(s) != len(want[i]) {
			t.Fatalf("step %d has %d items, want %d", i, len(s), len(want[i]))
		}
		for j, it := range s {
			if it.String() != want[i][j] {
				t.Errorf("step %d item %d = %s, want %s", i, j, it.String(), want[i][j])
			}
		}
	}
}

func TestFoataAgreesWithEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := example31Dep
	for trial := 0; trial < 200; trial++ {
		u := randomSeq(r, r.Intn(7))
		v := randomSeq(r, r.Intn(7))
		fu := fmt.Sprint(FoataNormalForm(d, u))
		fv := fmt.Sprint(FoataNormalForm(d, v))
		if (fu == fv) != Equivalent(d, u, v) {
			t.Fatalf("Foata NF disagrees with equivalence on %s vs %s", Render(u), Render(v))
		}
	}
}

func TestPomset(t *testing.T) {
	d := example31Dep
	// Example 3.2's visualized trace.
	u := []Item{It("M", 5), It("M", 7), It("#", nil), It("M", 9), It("M", 8), It("M", 9), It("#", nil), It("M", 6)}
	p := NewPomset(d, u)
	if p.Order[0][1] {
		t.Error("two measurements before the first marker must be unordered")
	}
	if !p.Order[0][2] || !p.Order[2][3] {
		t.Error("marker must be ordered after earlier and before later items")
	}
	if !p.Order[0][3] {
		t.Error("ordering through the marker must be transitive")
	}
	if h := p.Height(d); h != 5 {
		t.Errorf("height = %d, want 5 ({5,7} # {9,8,9} # {6})", h)
	}
	if w := p.Width(d); w != 3 {
		t.Errorf("width = %d, want 3 (the middle bag)", w)
	}
}

func TestDependenceConstructions(t *testing.T) {
	p := NewPairs([2]Tag{"a", "b"})
	if !p.Dependent("a", "b") || !p.Dependent("b", "a") {
		t.Error("NewPairs must symmetrize")
	}
	if p.Dependent("a", "a") {
		t.Error("unlisted pair must be independent")
	}
	f := Func(func(a, b Tag) bool { return a == "#" })
	if !f.Dependent("x", "#") {
		t.Error("Func must symmetrize the predicate")
	}
	mo := MarkerOrdered{Marker: "#"}
	if !mo.Dependent("k", "k") || mo.Dependent("k", "j") || !mo.Dependent("k", "#") {
		t.Error("MarkerOrdered: same key ordered, cross-key unordered, marker ordered")
	}
	mu := MarkerUnordered{Marker: "#"}
	if mu.Dependent("k", "k") || !mu.Dependent("#", "#") {
		t.Error("MarkerUnordered: keys unordered even with themselves, markers ordered")
	}
}

func TestItemString(t *testing.T) {
	if got := It("M", 5).String(); got != "M(5)" {
		t.Errorf("got %q", got)
	}
	if got := It("#", nil).String(); got != "#" {
		t.Errorf("got %q", got)
	}
	if got := Render([]Item{It("M", 5), It("#", nil)}); got != "M(5) #" {
		t.Errorf("got %q", got)
	}
}

func TestItemEqualDeep(t *testing.T) {
	a := It("t", []int{1, 2})
	b := It("t", []int{1, 2})
	if !a.Equal(b) {
		t.Error("structural equality must hold for slice values")
	}
	if a.Equal(It("t", []int{2, 1})) {
		t.Error("different slice values must differ")
	}
	if !reflect.DeepEqual(NormalForm(None{}, []Item{a}), []Item{b}) {
		t.Error("normal form must preserve values")
	}
}
