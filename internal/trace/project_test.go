package trace

import (
	"math/rand"
	"testing"
)

func TestProject(t *testing.T) {
	u := []Item{It("a", 1), It("b", 2), It("a", 3)}
	got := Project(u, func(tag Tag) bool { return tag == "a" })
	if len(got) != 2 || got[0].Value != 1 || got[1].Value != 3 {
		t.Fatalf("got %v", got)
	}
	if out := Project(nil, func(Tag) bool { return true }); out != nil {
		t.Fatalf("projection of empty must be empty, got %v", out)
	}
}

func TestTagCountsAndTags(t *testing.T) {
	u := []Item{It("a", 1), It("b", 2), It("a", 3)}
	counts := TagCounts(u)
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts %v", counts)
	}
	tags := Tags(u)
	if len(tags) != 2 || tags[0] != "a" || tags[1] != "b" {
		t.Fatalf("tags %v", tags)
	}
}

func TestReflexive(t *testing.T) {
	u := []Item{It("a", 1)}
	if !Reflexive(Linear{}, u) {
		t.Error("Linear is reflexive")
	}
	if Reflexive(None{}, u) {
		t.Error("None is not reflexive")
	}
	if !Reflexive(Channels{}, u) {
		t.Error("Channels is reflexive")
	}
	mu := MarkerUnordered{Marker: "#"}
	if Reflexive(mu, u) {
		t.Error("non-marker tags are self-independent under MarkerUnordered")
	}
	if !Reflexive(mu, []Item{It("#", nil)}) {
		t.Error("markers are self-dependent")
	}
}

// randomChanSeq draws sequences over a reflexive 3-channel alphabet.
func randomChanSeq(r *rand.Rand, n int) []Item {
	tags := []Tag{"c0", "c1", "c2"}
	out := make([]Item, n)
	for i := range out {
		out[i] = It(tags[r.Intn(3)], r.Intn(3))
	}
	return out
}

// TestProjectionCriterionAgreesWithNormalForm cross-validates the two
// equivalence deciders on the classical (reflexive) case.
func TestProjectionCriterionAgreesWithNormalForm(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	deps := []Dependence{Channels{}, Linear{}, NewPairs([2]Tag{"c0", "c0"}, [2]Tag{"c1", "c1"}, [2]Tag{"c2", "c2"}, [2]Tag{"c0", "c1"})}
	for trial := 0; trial < 400; trial++ {
		d := deps[trial%len(deps)]
		u := randomChanSeq(r, r.Intn(7))
		v := randomChanSeq(r, r.Intn(7))
		want := Equivalent(d, u, v)
		got, err := EquivalentByProjection(d, u, v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("dep %T: projection says %v, normal form says %v for %s vs %s",
				d, got, want, Render(u), Render(v))
		}
	}
}

func TestProjectionCriterionOnPermutedInput(t *testing.T) {
	// A shuffled sequence with per-channel order preserved must be
	// equivalent under Channels.
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		u := randomChanSeq(r, 10)
		// Build v by interleaving the channel projections differently.
		var chans [3][]Item
		for _, it := range u {
			idx := int(it.Tag[1] - '0')
			chans[idx] = append(chans[idx], it)
		}
		var v []Item
		pos := [3]int{}
		for len(v) < len(u) {
			c := r.Intn(3)
			if pos[c] < len(chans[c]) {
				v = append(v, chans[c][pos[c]])
				pos[c]++
			}
		}
		ok, err := EquivalentByProjection(Channels{}, u, v)
		if err != nil || !ok {
			t.Fatalf("channel-preserving interleaving must be equivalent (%v)", err)
		}
	}
}

func TestProjectionCriterionRejectsBagAlphabet(t *testing.T) {
	u := []Item{It("a", 1)}
	if _, err := EquivalentByProjection(None{}, u, u); err == nil {
		t.Fatal("self-independent tags must be rejected")
	}
}

func TestProjectionCriterionLengthMismatch(t *testing.T) {
	ok, err := EquivalentByProjection(Linear{}, []Item{It("a", 1)}, nil)
	if err != nil || ok {
		t.Fatalf("got %v %v", ok, err)
	}
}
