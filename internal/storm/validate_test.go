package storm

import (
	"strings"
	"testing"

	"datatrace/internal/stream"
)

func noopSpout(int) Spout { return SliceSpout(nil) }

func TestValidateRejectsCycle(t *testing.T) {
	top := NewTopology("cyclic")
	top.AddSpout("src", 1, noopSpout)
	top.AddBolt("a", 1, identityBolt).ShuffleGrouping("src", true).ShuffleGrouping("b", true)
	top.AddBolt("b", 1, identityBolt).ShuffleGrouping("a", true)
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestValidateRejectsSpoutWithInputs(t *testing.T) {
	top := NewTopology("bad-spout")
	top.AddSpout("src", 1, noopSpout)
	top.AddSpout("src2", 1, noopSpout)
	// Spouts expose no fluent input API, so a subscribing spout can
	// only arise from in-package construction; validate still guards it.
	top.components["src2"].inputs = []connection{{from: "src", aligned: true}}
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "cannot have inputs") {
		t.Fatalf("want spout-with-inputs error, got %v", err)
	}
}

func TestValidateRejectsBoltWithoutInputs(t *testing.T) {
	top := NewTopology("orphan")
	top.AddSpout("src", 1, noopSpout)
	top.AddBolt("island", 1, identityBolt)
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "no inputs") {
		t.Fatalf("want bolt-without-inputs error, got %v", err)
	}
}

func TestValidateRejectsUnknownSource(t *testing.T) {
	top := NewTopology("dangling")
	top.AddSpout("src", 1, noopSpout)
	top.AddBolt("b", 1, identityBolt).ShuffleGrouping("nope", true)
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "unknown component") {
		t.Fatalf("want unknown-component error, got %v", err)
	}
}

func TestValidateRejectsSubscribeToSink(t *testing.T) {
	top := NewTopology("sink-sub")
	top.AddSpout("src", 1, noopSpout)
	top.AddBolt("b", 1, identityBolt).ShuffleGrouping("src", true)
	top.AddSink("out", "b")
	top.AddBolt("after", 1, identityBolt).ShuffleGrouping("out", true)
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "subscribes to sink") {
		t.Fatalf("want subscribe-to-sink error, got %v", err)
	}
}

func TestValidateRejectsMixedAlignedAndRawInputs(t *testing.T) {
	top := NewTopology("mixed")
	top.AddSpout("src", 1, noopSpout)
	top.AddSpout("src2", 1, noopSpout)
	top.AddBolt("b", 1, identityBolt).ShuffleGrouping("src", true).ShuffleGrouping("src2", false)
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "mixes aligned and raw") {
		t.Fatalf("want mixed-inputs error, got %v", err)
	}
}

func TestDeclPanicsOnUnknownBolt(t *testing.T) {
	top := NewTopology("decl")
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Decl of an unknown component must panic")
		}
	}()
	top.Decl("ghost")
}

func TestDeclPanicsOnSpout(t *testing.T) {
	top := NewTopology("decl-spout")
	top.AddSpout("src", 1, noopSpout)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Decl of a spout must panic")
		}
	}()
	top.Decl("src")
}

func TestComponentsListsDeclarationOrderAndKinds(t *testing.T) {
	top := NewTopology("info")
	top.AddSpout("src", 2, noopSpout)
	top.AddBolt("mid", 3, identityBolt).ShuffleGrouping("src", true)
	top.AddSink("out", "mid")
	got := top.Components()
	want := []ComponentInfo{
		{Name: "src", Parallelism: 2, Kind: "spout"},
		{Name: "mid", Parallelism: 3, Kind: "bolt"},
		{Name: "out", Parallelism: 1, Kind: "sink"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d components, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("component %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSinkCollectsAlignedTrace(t *testing.T) {
	in := testStream(2, 4, 2)
	top := NewTopology("sink-align")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("id", 2, identityBolt).ShuffleGrouping("src", true)
	top.AddSink("sink", "id")
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], in) {
		t.Fatal("sink trace not equivalent to the input")
	}
}
