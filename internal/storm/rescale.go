package storm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// This file implements elastic rescaling with live state migration at
// marker cuts — the runtime consequence of the paper's §4
// parallelizability theorems: a typed operator's output trace is
// invariant under the degree of parallelism, so the degree is safe to
// change mid-run, provided the change happens at a consistent cut and
// every key's state moves to the key's new HASH owner.
//
// The marker-cut machinery is reused as a reconfiguration barrier.
// Cut N is the topology's N-th marker: every spout emits the same
// marker sequence and every aligned executor completes cuts in
// sequence, so "executor has completed N cuts" names one global
// consistent point. A rescale request carries a barrier cut; each
// participating executor parks when its own completed-cut count
// reaches the barrier (spouts right after emitting the cut's marker,
// bolts at the end of completeCut, after the cut's snapshot and
// output committed). When the last executor arrives the topology is
// quiescent in a strong sense:
//
//   - every emitter flushed through the cut's marker (markers flush
//     all transport and combining buffers), and parked emitters send
//     nothing more, so every send buffer is empty;
//   - every inbox is drained: a channel's cut-N marker is the last
//     message the channel carries until after the barrier, and an
//     aligned consumer cannot complete cut N before consuming every
//     channel's marker N — hence every earlier vector too;
//   - every merger is empty (block N was popped when its cut
//     completed) and no event beyond marker N exists anywhere.
//
// Migration is therefore a plain data-structure rewrite performed by
// the last arriving executor while everyone else is parked: snapshot
// the target's instances (already committed at the cut), re-shard the
// keyed state by the partitioning hash over the new instance count,
// retire the old executors, spawn new ones restored from the
// re-sharded snapshots, and recompute the wiring (inboxes, channel
// bases, placement, merge widths) that depends on the target's
// parallelism. Parked executors refresh their own routing state on
// wake-up; the mutex hand-off orders every rewrite before every
// refresh.

// Resharder is the optional Bolt extension elastic rescaling requires
// of the target component: beyond Recoverable's snapshot/restore, the
// bolt can re-partition a set of instance snapshots taken at one cut
// onto a new instance count. Compile adapts core.Resharder template
// instances automatically; handcrafted bolts may implement it
// directly. The receiver acts only as a type probe — it must not read
// or mutate its own state.
type Resharder interface {
	Recoverable
	Reshard(old [][]byte, newPar int, owner func(key any) int) ([][]byte, error)
}

// RescaleStep is one scripted parallelism change.
type RescaleStep struct {
	// Component is the bolt to rescale.
	Component string
	// NewPar is the parallelism after the step (≥ 1).
	NewPar int
	// AtCut is the 1-based completed-cut count the step waits for: the
	// reconfiguration happens at the barrier after the AtCut-th marker
	// cut commits everywhere.
	AtCut int64
}

// RescalePlan schedules parallelism changes at marker cuts for the
// next Run — the deterministic, scripted counterpart of
// Topology.Rescale, mirroring FaultPlan/KillPlan for tests. Steps must
// target strictly increasing cuts. A step whose cut the stream never
// reaches fails the run (the test asked for a reconfiguration that
// did not happen).
type RescalePlan struct {
	steps []RescaleStep
}

// NewRescalePlan creates an empty rescale plan.
func NewRescalePlan() *RescalePlan { return &RescalePlan{} }

// RescaleAt appends a step: set component's parallelism to newPar at
// the barrier after the atCut-th completed marker cut.
func (p *RescalePlan) RescaleAt(component string, newPar int, atCut int64) *RescalePlan {
	p.steps = append(p.steps, RescaleStep{Component: component, NewPar: newPar, AtCut: atCut})
	return p
}

// Steps returns the scheduled steps (for tooling).
func (p *RescalePlan) Steps() []RescaleStep { return append([]RescaleStep(nil), p.steps...) }

// validate checks the plan against the declared topology.
func (p *RescalePlan) validate(t *Topology) error {
	var last int64
	for i, s := range p.steps {
		if err := t.validateRescale(s.Component, s.NewPar); err != nil {
			return fmt.Errorf("storm: rescale plan step %d: %w", i, err)
		}
		if s.AtCut < 1 {
			return fmt.Errorf("storm: rescale plan step %d: AtCut %d, want ≥ 1", i, s.AtCut)
		}
		if s.AtCut <= last {
			return fmt.Errorf("storm: rescale plan step %d: AtCut %d not after previous step's %d", i, s.AtCut, last)
		}
		last = s.AtCut
	}
	return nil
}

// validateRescale applies the Topology.validate-style static checks to
// one rescale request.
func (t *Topology) validateRescale(component string, newPar int) error {
	c, ok := t.components[component]
	if !ok {
		return fmt.Errorf("storm: rescale: unknown component %q", component)
	}
	if c.spout != nil {
		return fmt.Errorf("storm: rescale: %q is a spout (sources cannot be rescaled mid-run)", component)
	}
	if c.isSink {
		return fmt.Errorf("storm: rescale: %q is a sink (sinks keep one instance)", component)
	}
	if newPar < 1 {
		return fmt.Errorf("storm: rescale %q: parallelism %d, want ≥ 1", component, newPar)
	}
	if !t.recovery.Enabled {
		return fmt.Errorf("storm: rescale %q: requires marker-cut recovery (SetRecovery)", component)
	}
	return nil
}

// Rescale changes a bolt component's parallelism in the running
// topology, live: it waits for the next topology-wide marker-cut
// barrier, migrates the component's keyed state onto the new instance
// set, and returns once processing has resumed. It fails when the
// topology is not running (or the stream ends first), when the
// request fails validation, or when the run cannot host a barrier
// (recovery disabled, unaligned bolts, networked worker).
func (t *Topology) Rescale(component string, newPar int) error {
	cg := t.gate.Load()
	if cg == nil {
		return fmt.Errorf("storm: Rescale(%q): topology is not running", component)
	}
	return cg.request(component, newPar)
}

// Rescales reports how many live rescales the current (or last) Run
// performed.
func (t *Topology) Rescales() int {
	cg := t.gate.Load()
	if cg == nil {
		return 0
	}
	cg.mu.Lock()
	defer cg.mu.Unlock()
	return cg.rescales
}

// AutoscalePolicy is a feedback controller that rescales one bolt
// component automatically from the observability signals: it polls the
// run's LiveStats every Interval and reacts to the component's
// MaxQueueDepth backpressure gauge, queue-latency histogram and
// executed-count deltas. Scale-out doubles the parallelism (capped at
// Max) after Sustain consecutive polls showing backpressure — the
// high-water queue depth still climbing past HighDepth, or the queue
// latency p99 above HighLatency. Scale-in halves it (floored at Min)
// after Sustain consecutive polls with no high-water growth and a
// per-poll executed delta of at most LowDelta. Requires observability
// (the gauges it polls are otherwise never written).
type AutoscalePolicy struct {
	// Component is the bolt under control.
	Component string
	// Min and Max bound the parallelism (1 ≤ Min ≤ Max).
	Min, Max int
	// Interval is the polling period; 0 selects 20ms.
	Interval time.Duration
	// HighDepth is the backpressure threshold: a poll counts toward
	// scale-out when the component's live inbox depth is at least
	// HighDepth, or its high-water depth grew by at least HighDepth
	// since the last action. 0 selects 256.
	HighDepth int64
	// HighLatency, when positive, also counts a poll toward scale-out
	// when the component's queue-latency p99 is at least this.
	HighLatency time.Duration
	// LowDelta is the idleness threshold: a poll counts toward scale-in
	// when the component's live inbox depth is zero and it executed at
	// most LowDelta events since the previous poll. 0 means the
	// component must be fully idle.
	LowDelta int64
	// Sustain is the consecutive-poll requirement before an action;
	// 0 selects 2.
	Sustain int
	// Logf, when set, receives the controller's decisions.
	Logf func(format string, args ...any)
}

// validate checks the policy against the declared topology.
func (p *AutoscalePolicy) validate(t *Topology) error {
	if p.Min < 1 || p.Max < p.Min {
		return fmt.Errorf("storm: autoscale %q: bounds Min %d, Max %d, want 1 ≤ Min ≤ Max", p.Component, p.Min, p.Max)
	}
	if err := t.validateRescale(p.Component, p.Min); err != nil {
		return fmt.Errorf("storm: autoscale: %w", err)
	}
	if !t.obs.Enabled {
		return fmt.Errorf("storm: autoscale %q: requires observability (SetObservability) for the backpressure gauges it polls", p.Component)
	}
	return nil
}

func (p *AutoscalePolicy) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

// boltSeed carries a pre-restored bolt into an executor spawned by a
// rescale.
type boltSeed struct {
	bolt Bolt
	// snap is the executor's starting checkpoint (the re-sharded
	// snapshot its bolt was restored from); empty when the shard holds
	// no state yet.
	snap []byte
}

// execGate is one executor's entry in the reconfiguration barrier.
type execGate struct {
	rc   *runtimeComponent
	inst int
	// cuts is the executor's completed-cut count (spouts: markers
	// emitted). Guarded by the gate mutex.
	cuts int64
	// em and x are attached by the executor before its first cutDone;
	// x is nil for spouts. Only the owning goroutine and the rewiring
	// of its own component read them.
	em *emitter
	x  *recExec
	// seed is set on gates created by a rescale: the spawned executor
	// starts from it instead of the component's bolt factory.
	seed *boltSeed
	// retired marks an old instance of a rescaled component: its
	// executor exits without finishing or propagating EOS (its channels
	// no longer exist). Guarded by the gate mutex.
	retired bool
	left    bool
}

// rescaleReq is one pending reconfiguration.
type rescaleReq struct {
	component string
	newPar    int
	// atCut is the barrier: 0 until assigned (dynamic requests take
	// the first cut no executor has completed yet, decided under the
	// gate mutex when the request reaches the queue head).
	atCut int64
	// done receives the outcome for dynamic requests; nil for plan
	// steps, whose failures land in planErrs and fail the run.
	done chan error
}

// cutGate is the topology-wide reconfiguration barrier of one Run.
type cutGate struct {
	mu   sync.Mutex
	cond *sync.Cond

	t     *Topology
	rts   map[string]*runtimeComponent
	hash  func(any) int
	spawn func(rc *runtimeComponent, inst int, g *execGate)

	// supported is false when the run cannot host a barrier; reason
	// says why (requests are refused with it).
	supported bool
	reason    string

	gates   []*execGate
	reqs    []*rescaleReq
	waiting int
	// closed flips when any executor leaves (end of stream, fatal
	// failure, degradation): pending and future requests fail, parked
	// executors resume unchanged. The gate never reopens.
	closed bool
	// gen counts completed barriers; parked executors wait for it to
	// move. lastTarget is the component rewired in the current gen.
	gen        uint64
	lastTarget *runtimeComponent
	planErrs   []error
	rescales   int
}

func newCutGate(t *Topology, rts map[string]*runtimeComponent, hash func(any) int) *cutGate {
	cg := &cutGate{t: t, rts: rts, hash: hash, supported: true}
	cg.cond = sync.NewCond(&cg.mu)
	for _, name := range t.order {
		c := t.components[name]
		rc := rts[name]
		if rc.net != nil {
			cg.supported, cg.reason = false, "live rescaling is not available inside a networked worker (use NetOptions.Rescale)"
			break
		}
		if c.spout != nil {
			continue
		}
		if !t.recovery.Enabled {
			cg.supported, cg.reason = false, "marker-cut recovery is disabled (SetRecovery)"
			break
		}
		if !componentAligned(c) {
			cg.supported, cg.reason = false, fmt.Sprintf("bolt %q has unaligned inputs (no marker cuts to rescale at)", name)
			break
		}
	}
	return cg
}

// componentAligned reports whether a bolt's inputs are marker-aligned
// (validate enforces all-or-nothing per bolt).
func componentAligned(c *component) bool {
	return len(c.inputs) > 0 && c.inputs[0].aligned
}

// register adds one executor to the barrier before its goroutine
// starts. Only called during execute's setup, before any executor
// runs.
func (cg *cutGate) register(rc *runtimeComponent, inst int) *execGate {
	g := &execGate{rc: rc, inst: inst}
	cg.gates = append(cg.gates, g)
	return g
}

// enqueuePlan queues the scripted steps of the run's rescale plan.
func (cg *cutGate) enqueuePlan(p *RescalePlan) {
	if p == nil {
		return
	}
	cg.mu.Lock()
	for _, s := range p.steps {
		cg.reqs = append(cg.reqs, &rescaleReq{component: s.Component, newPar: s.NewPar, atCut: s.AtCut})
	}
	cg.mu.Unlock()
}

// request queues a dynamic rescale and blocks until the barrier
// completes (or the gate closes first).
func (cg *cutGate) request(component string, newPar int) error {
	cg.mu.Lock()
	if !cg.supported {
		cg.mu.Unlock()
		return fmt.Errorf("storm: rescale %q: %s", component, cg.reason)
	}
	if cg.closed {
		cg.mu.Unlock()
		return fmt.Errorf("storm: rescale %q: the stream ended", component)
	}
	if err := cg.t.validateRescale(component, newPar); err != nil {
		cg.mu.Unlock()
		return err
	}
	if rc := cg.rts[component]; rc != nil && rc.parallelism == newPar && len(cg.reqs) == 0 {
		cg.mu.Unlock()
		return nil
	}
	done := make(chan error, 1)
	cg.reqs = append(cg.reqs, &rescaleReq{component: component, newPar: newPar, done: done})
	cg.mu.Unlock()
	return <-done
}

// nextReq returns the queue head with its barrier assigned. A dynamic
// request takes the first cut no executor has completed yet — safe
// because cut counts only advance inside cutDone, under this mutex,
// one at a time, with a barrier check at every increment.
func (cg *cutGate) nextReq() *rescaleReq {
	if len(cg.reqs) == 0 {
		return nil
	}
	req := cg.reqs[0]
	if req.atCut == 0 {
		var max int64
		for _, g := range cg.gates {
			if g.cuts > max {
				max = g.cuts
			}
		}
		req.atCut = max + 1
	}
	return req
}

// cutDone records that g completed one more cut and parks the
// executor when that cut is a barrier. It returns true when the
// executor was retired by a rescale (old instance of the target): the
// caller must exit without finishing or propagating EOS. Called by
// spouts after emitting a marker (and flushing), and by recoverable
// bolts at the end of completeCut — points at which the executor
// holds no unflushed output and no unconsumed input of the cut.
func (cg *cutGate) cutDone(g *execGate) (retired bool) {
	cg.mu.Lock()
	defer cg.mu.Unlock()
	g.cuts++
	if !cg.supported {
		return false
	}
	for {
		req := cg.nextReq()
		if req == nil || cg.closed || g.cuts != req.atCut {
			return g.retired
		}
		cg.waiting++
		if cg.waiting == len(cg.gates) {
			// Last arriver: everyone else is parked, the topology is
			// quiescent at the barrier cut. Rewire, then release.
			cg.waiting = 0
			cg.finishReq(req)
			cg.gen++
			cg.cond.Broadcast()
		} else {
			gen := cg.gen
			for cg.gen == gen && !cg.closed {
				cg.cond.Wait()
			}
			if cg.gen == gen {
				// Closed while parked (another executor left): the
				// barrier dissolved, resume unchanged.
				return g.retired
			}
		}
		if g.retired {
			return true
		}
		cg.refresh(g)
		// Barriers are strictly increasing, so the next queued request
		// (if any) targets a later cut; the loop exits via the check.
	}
}

// finishReq pops the head request and performs its rescale, reporting
// the outcome to the requester (dynamic) or the run (plan step).
func (cg *cutGate) finishReq(req *rescaleReq) {
	cg.reqs = cg.reqs[1:]
	cg.lastTarget = nil
	err := cg.rewire(req)
	if err == nil {
		cg.rescales++
	}
	if req.done != nil {
		req.done <- err
	} else if err != nil {
		cg.planErrs = append(cg.planErrs, err)
	}
}

// rewire performs one rescale at a completed barrier: all executors
// are parked, every buffer, inbox and merger is empty, and the
// target's instances committed their cut snapshots. Runs under the
// gate mutex on the last arriver's goroutine. On error nothing was
// mutated (state collection and restore happen before the first
// wiring write) and the run continues at the old parallelism.
func (cg *cutGate) rewire(req *rescaleReq) error {
	rc := cg.rts[req.component]
	if rc == nil {
		return fmt.Errorf("storm: rescale: unknown component %q", req.component)
	}
	oldPar, q := rc.parallelism, req.newPar
	if q == oldPar {
		return nil
	}

	// Collect the cut-committed snapshots of the old instance set.
	snaps := make([][]byte, oldPar)
	var oldGates []*execGate
	for _, g := range cg.gates {
		if g.rc == rc {
			oldGates = append(oldGates, g)
			if g.x == nil || !g.x.hasSnap {
				return fmt.Errorf("storm: rescale %q: instance %d has no committed snapshot at the cut", rc.name, g.inst)
			}
			snaps[g.inst] = g.x.snap
		}
	}
	if len(oldGates) != oldPar {
		return fmt.Errorf("storm: rescale %q: %d executors at the barrier, want %d", rc.name, len(oldGates), oldPar)
	}

	// Re-shard the keyed state and restore the new instance set —
	// all of it before the first wiring mutation, so a failure aborts
	// the rescale with the topology untouched.
	probe := rc.bolt(0)
	rs, ok := probe.(Resharder)
	if !ok {
		return fmt.Errorf("storm: rescale %q: bolt does not implement Resharder", rc.name)
	}
	owner := func(k any) int { return cg.hash(k) % q }
	newSnaps, err := rs.Reshard(snaps, q, owner)
	if err != nil {
		return fmt.Errorf("storm: rescale %q: re-sharding state: %w", rc.name, err)
	}
	if len(newSnaps) != q {
		return fmt.Errorf("storm: rescale %q: Reshard returned %d snapshots, want %d", rc.name, len(newSnaps), q)
	}
	bolts := make([]Bolt, q)
	for j := 0; j < q; j++ {
		b := rc.bolt(j)
		r, ok := b.(Recoverable)
		if !ok {
			return fmt.Errorf("storm: rescale %q: instance %d is not recoverable", rc.name, j)
		}
		if len(newSnaps[j]) > 0 {
			if err := r.Restore(newSnaps[j]); err != nil {
				return fmt.Errorf("storm: rescale %q: restoring shard %d: %w", rc.name, j, err)
			}
		}
		bolts[j] = b
	}

	// Point of no return: retire the old executors and rewrite the
	// wiring the target's parallelism participates in.
	for _, g := range oldGates {
		g.retired = true
	}
	kept := cg.gates[:0]
	for _, g := range cg.gates {
		if !g.retired {
			kept = append(kept, g)
		}
	}
	cg.gates = kept

	rc.parallelism = q
	capn := cg.t.ChannelCap
	if capn <= 0 {
		capn = defaultChannelCap
	}
	rc.inboxes = make([]chan *[]message, q)
	rc.depths = make([]atomic.Int64, q)
	for i := range rc.inboxes {
		rc.inboxes[i] = make(chan *[]message, capn)
	}

	// Global executor indices and placement (declaration order, as in
	// resolve).
	workers := cg.t.workers
	gi := 0
	for _, name := range cg.t.order {
		c := cg.rts[name]
		c.workerOf = make([]int, c.parallelism)
		c.gids = make([]int, c.parallelism)
		for i := range c.workerOf {
			c.workerOf[i] = -1
			if workers > 0 {
				c.workerOf[i] = gi % workers
			}
			c.gids[i] = gi
			gi++
		}
	}

	// Receiver channel layouts: replay resolve's subscription walk to
	// recompute every consumer's channel count and every edge's base
	// channel (the target's parallelism shifts its consumers' widths
	// and any edge declared after a target edge).
	cursor := map[*runtimeComponent]int{}
	for _, name := range cg.t.order {
		d := cg.rts[name]
		offset := 0
		for _, in := range d.inputs {
			src := cg.rts[in.from]
			src.subs[cursor[src]].chBase = offset
			cursor[src]++
			offset += src.parallelism
		}
		d.nChannels = offset
	}

	// Spawn the new instance set. The gates are registered here, under
	// the mutex, so the next barrier counts them; the goroutines start
	// after every wiring write above (spawn's go statement orders the
	// writes before the executor's first read).
	for j := 0; j < q; j++ {
		g := &execGate{rc: rc, inst: j, cuts: req.atCut, seed: &boltSeed{bolt: bolts[j], snap: newSnaps[j]}}
		cg.gates = append(cg.gates, g)
		cg.spawn(rc, j, g)
	}
	cg.lastTarget = rc
	return nil
}

// refresh re-derives one parked executor's routing state after a
// rescale, on its own goroutine right after wake-up (the mutex orders
// it after every rewire write). Transport and combining buffers are
// empty at the barrier, so rebuilding them drops nothing.
func (cg *cutGate) refresh(g *execGate) {
	target := cg.lastTarget
	if target == nil || g.em == nil {
		return
	}
	g.em.worker = g.rc.workerOf[g.inst]
	for si := range g.rc.subs {
		if g.rc.subs[si].to == target {
			// The target's instance count changed: restart the edge's
			// round-robin rotation (any start is trace-equivalent for
			// shuffle edges; fields edges re-derive owners from the
			// hash).
			g.em.rrNext[si] = 0
			if g.x != nil {
				g.x.rrSnap[si] = 0
			}
		}
	}
	if len(g.rc.subs) > 0 {
		g.em.rebuildBufs()
	}
	if g.x != nil && g.rc.nChannels != g.x.merge.Channels() {
		// A consumer of the target: new input width, and the merger is
		// empty at the barrier, so a fresh one loses nothing.
		g.x.merge = stream.NewMergeState(g.rc.nChannels)
		g.x.eosLeft = g.rc.nChannels
	}
}

// leave removes one executor from the barrier (end of stream, fatal
// failure, degradation, retirement) and closes the gate: a rescale
// after part of the topology stopped has no consistent barrier to
// target, so pending requests fail and parked executors resume
// unchanged.
func (cg *cutGate) leave(g *execGate) {
	cg.mu.Lock()
	defer cg.mu.Unlock()
	if g.left {
		return
	}
	g.left = true
	if g.retired {
		// Planned departure: rewire already removed the gate, and the
		// component lives on in its new instances.
		return
	}
	for i, o := range cg.gates {
		if o == g {
			cg.gates = append(cg.gates[:i], cg.gates[i+1:]...)
			break
		}
	}
	cg.close(fmt.Errorf("storm: rescale: the stream ended before the barrier cut (%s[%d] finished)", g.rc.name, g.inst))
}

// close (under mu) fails every pending request and releases parked
// executors.
func (cg *cutGate) close(cause error) {
	if cg.closed {
		return
	}
	cg.closed = true
	for _, req := range cg.reqs {
		if req.done != nil {
			req.done <- cause
		} else {
			cg.planErrs = append(cg.planErrs, fmt.Errorf("storm: rescale plan step (%s → %d at cut %d) did not run: %w",
				req.component, req.newPar, req.atCut, cause))
		}
	}
	cg.reqs = nil
	cg.cond.Broadcast()
}

// shutdown closes the gate at the end of execute (idempotent).
func (cg *cutGate) shutdown() {
	cg.mu.Lock()
	cg.close(fmt.Errorf("storm: rescale: the run ended"))
	cg.mu.Unlock()
}

// takePlanErrs returns the plan-step failures recorded so far.
func (cg *cutGate) takePlanErrs() []error {
	cg.mu.Lock()
	defer cg.mu.Unlock()
	return cg.planErrs
}

// autoscaleLoop is the feedback controller goroutine: poll LiveStats,
// decide, issue gate requests. It runs on wall-clock time by design —
// elasticity reacts to real backpressure, not to event time — which
// is why its effects go through the deterministic cut barrier: *what*
// a rescale does is exact even though *when* one triggers is not.
func autoscaleLoop(t *Topology, cg *cutGate, pol *AutoscalePolicy, stop <-chan struct{}) {
	interval := pol.Interval
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	sustain := pol.Sustain
	if sustain <= 0 {
		sustain = 2
	}
	highDepth := pol.HighDepth
	if highDepth <= 0 {
		highDepth = 256
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var baseDepth, lastExec int64
	highStreak, lowStreak := 0, 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		stats := t.LiveStats()
		if stats == nil {
			continue
		}
		var comp *metrics.ComponentSnapshot
		for _, c := range stats.Snapshot().ByComponent() {
			if c.Component == pol.Component {
				c := c
				comp = &c
				break
			}
		}
		if comp == nil {
			continue
		}
		cg.mu.Lock()
		par := 0
		if rc := cg.rts[pol.Component]; rc != nil {
			par = rc.parallelism
		}
		closed := cg.closed
		cg.mu.Unlock()
		if par == 0 || closed {
			return
		}

		// The live depth carries sustained backlog; the high-water
		// growth term catches a burst that peaked between polls and
		// drained before this one.
		grew := comp.MaxQueueDepth - baseDepth
		execDelta := comp.Executed - lastExec
		lastExec = comp.Executed
		hot := comp.QueueDepth >= highDepth || grew >= highDepth
		if !hot && pol.HighLatency > 0 && !comp.Queue.Empty() {
			hot = comp.Queue.QuantileDuration(0.99) >= pol.HighLatency
		}
		if hot {
			highStreak++
			lowStreak = 0
		} else if comp.QueueDepth == 0 && execDelta <= pol.LowDelta {
			lowStreak++
			highStreak = 0
		} else {
			highStreak, lowStreak = 0, 0
		}

		target := par
		switch {
		case highStreak >= sustain && par < pol.Max:
			target = par * 2
			if target > pol.Max {
				target = pol.Max
			}
		case lowStreak >= sustain && par > pol.Min:
			target = par / 2
			if target < pol.Min {
				target = pol.Min
			}
		}
		if target == par {
			continue
		}
		pol.logf("storm: autoscale %s: %d → %d (depth %d, high-water +%d, exec Δ%d)", pol.Component, par, target, comp.QueueDepth, grew, execDelta)
		if err := cg.request(pol.Component, target); err != nil {
			pol.logf("storm: autoscale %s: rescale refused: %v", pol.Component, err)
			return
		}
		baseDepth = comp.MaxQueueDepth
		highStreak, lowStreak = 0, 0
	}
}
