package storm

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// This file proves the sender-side combining buffers
// semantics-preserving at the unit level. The Shuffle edge of the
// harness stays uncombined, so its per-channel sequences must still be
// byte-identical to the unbatched model's; the combined Fields edge is
// compared one level up — per marker-delimited segment, the per-key
// aggregate of what reached each channel must equal the model's, which
// is exactly the invariant the consumer's commutative monoid makes
// sufficient for trace equivalence.

// sumSpec is the test monoid: integer addition over the item values.
func sumSpec(cap int) *CombinerSpec {
	return &CombinerSpec{
		In:      func(_, v any) any { return v.(int) },
		Combine: func(x, y any) any { return x.(int) + y.(int) },
		Cap:     cap,
	}
}

// newCombinedPair is newTransportPair with a combining buffer on the
// Fields edge.
func newCombinedPair(tr TransportOptions, recvPar int, spec *CombinerSpec) *transportPair {
	recv := &runtimeComponent{component: &component{name: "dst", parallelism: recvPar}}
	recv.inboxes = make([]chan *[]message, recvPar)
	for i := range recv.inboxes {
		recv.inboxes[i] = make(chan *[]message, 1<<15)
	}
	recv.depths = make([]atomic.Int64, recvPar)
	recv.nChannels = 2
	send := &runtimeComponent{component: &component{name: "src", parallelism: 1}, transport: tr}
	send.workerOf = []int{-1}
	send.subs = []subscription{
		{to: recv, grouping: Shuffle, chBase: 0},
		{to: recv, grouping: Fields, chBase: 1, combiner: spec},
	}
	return &transportPair{
		em:   newEmitter(send, 0, metrics.NewStats().Instance("src", 0), stream.DefaultHash),
		recv: recv,
	}
}

// segmentSums folds one channel's event sequence into per-segment
// per-key sums: segments are delimited by markers, and the returned
// marker sequence pins marker count and order. Items must carry int
// values (raw or partial sums — the fold doesn't care, which is the
// point).
func segmentSums(evs []stream.Event) (segs []map[any]int, marks []stream.Marker) {
	cur := map[any]int{}
	for _, e := range evs {
		if e.IsMarker {
			segs = append(segs, cur)
			marks = append(marks, e.Marker)
			cur = map[any]int{}
			continue
		}
		cur[e.Key] += e.Value.(int)
	}
	segs = append(segs, cur)
	return segs, marks
}

// runCombinedDifferential applies one script to a combined pair and an
// uncombined BatchSize-1 model: the Shuffle channel must match
// exactly, the combined Fields channel per-segment per-key sums and
// marker sequence must match, and nothing may stay buffered after EOS.
func runCombinedDifferential(t *testing.T, tr TransportOptions, recvPar int, spec *CombinerSpec, ops []tOp) {
	t.Helper()
	combined := newCombinedPair(tr, recvPar, spec)
	applyOps(combined.em, ops, true)
	if combined.em.pending != 0 || combined.em.cpending != 0 {
		t.Fatalf("combined emitter still holds %d transport / %d combiner events after EOS",
			combined.em.pending, combined.em.cpending)
	}
	model := newTransportPair(TransportOptions{BatchSize: 1, FlushInterval: -1}, recvPar)
	applyOps(model.em, ops, false)

	got, want := combined.drain(), model.drain()
	for i := range got {
		g, w := byChannel(t, i, got[i]), byChannel(t, i, want[i])
		// Shuffle edge (channel 0): exact per-channel equality, as in
		// runDifferential — combining another edge must not disturb it.
		if !reflect.DeepEqual(g[0], w[0]) {
			t.Fatalf("inbox %d: uncombined shuffle channel diverged\ncombined run: %v\nmodel:        %v", i, g[0], w[0])
		}
		gs, gm := segmentSums(g[1])
		ws, wm := segmentSums(w[1])
		if !reflect.DeepEqual(gm, wm) {
			t.Fatalf("inbox %d: combined channel marker sequence diverged\ngot  %v\nwant %v", i, gm, wm)
		}
		if !reflect.DeepEqual(gs, ws) {
			t.Fatalf("inbox %d: combined channel per-segment key sums diverged\ngot  %v\nwant %v\nraw combined: %v\nraw model:    %v",
				i, gs, ws, g[1], w[1])
		}
	}
}

// TestCombinedEdgeDifferentialRandomOps is the combiner's main
// property run: random scripts with arbitrary flush interleavings,
// across batch sizes, receiver widths and key caps (including cap 1,
// which drains on every new key), preserve per-segment aggregates and
// marker structure on the combined edge and leave the other edge
// untouched.
func TestCombinedEdgeDifferentialRandomOps(t *testing.T) {
	for _, batch := range []int{1, 3, 64, 1024} {
		for _, recvPar := range []int{1, 3} {
			for _, cap := range []int{1, 2, 5, 1024} {
				for seed := int64(0); seed < 4; seed++ {
					name := fmt.Sprintf("batch=%d/par=%d/cap=%d/seed=%d", batch, recvPar, cap, seed)
					t.Run(name, func(t *testing.T) {
						r := rand.New(rand.NewSource(seed))
						tr := TransportOptions{BatchSize: batch, FlushInterval: -1}
						runCombinedDifferential(t, tr, recvPar, sumSpec(cap), randomOps(r, 300))
					})
				}
			}
		}
	}
}

// TestCombinerDrainsOnCap checks the memory bound: with a tiny key cap
// and an effectively infinite batch size, streaming many distinct keys
// keeps at most cap keys in any combining buffer — the surplus is
// drained into the transport buffers (observable as pending events).
func TestCombinerDrainsOnCap(t *testing.T) {
	const cap = 2
	p := newCombinedPair(TransportOptions{BatchSize: 1 << 20, FlushInterval: -1}, 1, sumSpec(cap))
	for i := 0; i < 100; i++ {
		p.em.emit(stream.Item(i, 1)) // all distinct keys
		for _, b := range p.em.bufs {
			if b.comb != nil && len(b.comb.keys) >= cap {
				t.Fatalf("after %d distinct keys a combining buffer holds %d keys; cap %d must drain", i+1, len(b.comb.keys), cap)
			}
		}
	}
	if p.em.pending == 0 {
		t.Fatal("cap-triggered drains produced no pending transport events")
	}
	p.em.eos()
}

// TestCombinerEmptyAtMarkersAndEOS checks the recovery-critical
// invariant directly: a marker (and EOS) leaves every combining buffer
// empty and nothing pending — the same provably-empty-at-cut property
// recExec.restart relies on.
func TestCombinerEmptyAtMarkersAndEOS(t *testing.T) {
	p := newCombinedPair(TransportOptions{BatchSize: 1 << 20, FlushInterval: -1}, 2, sumSpec(1024))
	for i := 0; i < 50; i++ {
		p.em.emit(stream.Item(i%7, i))
	}
	if p.em.cpending == 0 {
		t.Fatal("expected combining buffers to hold partial aggregates before the marker")
	}
	p.em.emit(mk(1, 1))
	if p.em.cpending != 0 || p.em.pending != 0 {
		t.Fatalf("marker left %d combiner / %d transport events buffered", p.em.cpending, p.em.pending)
	}
	for i := 0; i < 10; i++ {
		p.em.emit(stream.Item(i, i))
	}
	p.em.eos()
	if p.em.cpending != 0 || p.em.pending != 0 {
		t.Fatalf("EOS left %d combiner / %d transport events buffered", p.em.cpending, p.em.pending)
	}
}

// TestCombinerStatsCounters checks the observability surface: the
// emitter counts every item entering a combining buffer and every
// partial aggregate leaving one, and compression means out ≤ in.
func TestCombinerStatsCounters(t *testing.T) {
	stats := metrics.NewStats()
	recv := &runtimeComponent{component: &component{name: "dst", parallelism: 1}}
	recv.inboxes = []chan *[]message{make(chan *[]message, 1<<15)}
	recv.depths = make([]atomic.Int64, 1)
	recv.nChannels = 1
	send := &runtimeComponent{component: &component{name: "src", parallelism: 1}}
	send.workerOf = []int{-1}
	send.subs = []subscription{{to: recv, grouping: Fields, chBase: 0, combiner: sumSpec(1024)}}
	em := newEmitter(send, 0, stats.Instance("src", 0), stream.DefaultHash)
	const items, keys = 200, 5
	for i := 0; i < items; i++ {
		em.emit(stream.Item(i%keys, 1))
	}
	em.emit(mk(1, 1))
	em.eos()
	in, out := stats.Combined()
	if in != items {
		t.Fatalf("combinedIn = %d, want %d", in, items)
	}
	if out != keys {
		t.Fatalf("combinedOut = %d, want %d (one partial per key at the marker)", out, keys)
	}
}

// combSumBolt aggregates int values per key and emits the per-key totals
// at each marker, in sorted key order so its output block is a pure
// function of the input block (dttlint DTT001) — commutative, so it
// tolerates combined input.
func combSumBolt() Bolt {
	acc := map[any]int{}
	return BoltFunc(func(e stream.Event, emit func(stream.Event)) {
		if e.IsMarker {
			keys := make([]int, 0, len(acc))
			for k := range acc {
				keys = append(keys, k.(int))
			}
			sort.Ints(keys)
			for _, k := range keys {
				emit(stream.Item(k, acc[k]))
			}
			acc = map[any]int{}
			emit(e)
			return
		}
		acc[e.Key.(int)%3] += e.Value.(int)
	})
}

// TestCombSumBoltDeterministicEmitOrder pins the DTT001 fix above:
// the per-key totals at a marker come out in sorted key order, never
// in map iteration order.
func TestCombSumBoltDeterministicEmitOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		b := combSumBolt()
		for i := 0; i < 30; i++ {
			b.Next(stream.Item(i, 1), func(stream.Event) {})
		}
		var keys []int
		b.Next(stream.Mark(stream.Marker{Seq: 0}), func(e stream.Event) {
			if !e.IsMarker {
				keys = append(keys, e.Key.(int))
			}
		})
		if !sort.IntsAreSorted(keys) {
			t.Fatalf("trial %d: marker emission order %v is not sorted", trial, keys)
		}
		if len(keys) != 3 {
			t.Fatalf("trial %d: expected 3 keys, got %v", trial, keys)
		}
	}
}

// TestCombinedTopologyMatchesUncombined runs a real topology — spout →
// aggregating bolt on a fields edge — with and without CombineWith and
// requires trace-equal sink outputs, under executor concurrency.
func TestCombinedTopologyMatchesUncombined(t *testing.T) {
	events := make([]stream.Event, 0, 420)
	for b := 0; b < 4; b++ {
		for i := 0; i < 100; i++ {
			events = append(events, stream.Item(i%10, i))
		}
		events = append(events, mk(int64(b), int64(b*10)))
	}
	run := func(spec *CombinerSpec) []stream.Event {
		t.Helper()
		top := NewTopology("combined")
		top.AddSpout("src", 2, func(int) Spout { return SliceSpout(events) })
		decl := top.AddBolt("agg", 2, func(int) Bolt { return combSumBolt() }).FieldsGrouping("src", true)
		if spec != nil {
			decl.CombineWith(*spec)
		}
		top.AddSink("out", "agg")
		res, err := top.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Sinks["out"]
	}
	plain := run(nil)
	for _, cap := range []int{1, 4, 1024} {
		combined := run(sumSpec(cap))
		if !stream.Equivalent(stream.U("Int", "Int"), combined, plain) {
			t.Fatalf("cap=%d: combined topology output is not trace-equivalent to the uncombined run (%d vs %d events)",
				cap, len(combined), len(plain))
		}
	}
}

// TestCombinerValidation pins the descriptive errors for malformed
// combiner attachments and transport options at Run time.
func TestCombinerValidation(t *testing.T) {
	build := func(g func(*BoltDecl) *BoltDecl, spec CombinerSpec) *Topology {
		top := NewTopology("bad")
		top.AddSpout("src", 1, func(int) Spout { return SliceSpout(nil) })
		g(top.AddBolt("agg", 1, func(int) Bolt { return combSumBolt() })).CombineWith(spec)
		top.AddSink("out", "agg")
		return top
	}
	fields := func(d *BoltDecl) *BoltDecl { return d.FieldsGrouping("src", true) }
	shuffle := func(d *BoltDecl) *BoltDecl { return d.ShuffleGrouping("src", true) }

	cases := []struct {
		name string
		top  *Topology
		want string
	}{
		{"nil-in", build(fields, CombinerSpec{Combine: sumSpec(1).Combine, Cap: 1}), "needs In and Combine"},
		{"nil-combine", build(fields, CombinerSpec{In: sumSpec(1).In, Cap: 1}), "needs In and Combine"},
		{"zero-cap", build(fields, *sumSpec(0)), "positive key cap"},
		{"negative-cap", build(fields, *sumSpec(-3)), "positive key cap"},
		{"shuffle-edge", build(shuffle, *sumSpec(8)), "requires fields grouping"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.top.Run()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want error containing %q", err, c.want)
			}
		})
	}

	t.Run("negative-batch-size", func(t *testing.T) {
		top := NewTopology("bad-transport")
		top.AddSpout("src", 1, func(int) Spout { return SliceSpout(nil) })
		top.AddSink("out", "src")
		top.SetTransport(TransportOptions{BatchSize: -5})
		_, err := top.Run()
		if err == nil || !strings.Contains(err.Error(), "BatchSize must be ≥ 0") {
			t.Fatalf("got %v, want BatchSize validation error", err)
		}
	})
}

// FuzzCombinerFlush drives random emit/marker/block/flush/EOS scripts
// through a combined emitter and the uncombined BatchSize-1 model,
// with the batch size and key cap taken from the fuzz input, and
// requires segment-aggregate equality on the combined edge plus exact
// equality on the other edge (runCombinedDifferential).
func FuzzCombinerFlush(f *testing.F) {
	f.Add(uint8(4), uint8(2), []byte{0, 1, 2, 3, 10, 20, 30, 9, 17, 25, 33})
	f.Add(uint8(0), uint8(0), []byte{5, 5, 5, 5, 5})
	f.Add(uint8(1), uint8(1), []byte{0, 9, 1, 9, 2, 9})
	f.Add(uint8(64), uint8(200), []byte{40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 19, 29})
	f.Add(uint8(200), uint8(3), []byte{7, 3, 7, 3, 7, 3, 9, 8, 7, 9})
	f.Fuzz(func(t *testing.T, rawBatch, rawCap uint8, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		ops := make([]tOp, 0, len(script))
		for i, b := range script {
			switch b % 10 {
			case 9:
				ops = append(ops, tOp{kind: 1}) // marker
			case 8:
				ops = append(ops, tOp{kind: 3}) // flush (combined side only)
			case 7:
				ops = append(ops, tOp{kind: 2, key: int(b) % 5, val: 1000 + i, blockLen: int(b) % 4})
			default:
				ops = append(ops, tOp{kind: 0, key: int(b) % 5, val: i})
			}
		}
		tr := TransportOptions{BatchSize: int(rawBatch), FlushInterval: -1}
		runCombinedDifferential(t, tr, 3, sumSpec(1+int(rawCap)), ops)
	})
}
