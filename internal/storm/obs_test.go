package storm

import (
	"sync"
	"testing"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// obsTopology builds a small three-stage pipeline with observability
// enabled: src → work(par) → sink, with an optional per-event delay to
// keep the run alive long enough for mid-run polling.
func obsTopology(in []stream.Event, par int, delay time.Duration, recovery bool) *Topology {
	top := NewTopology("obs")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("work", par, func(int) Bolt {
		return BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			if delay > 0 && !e.IsMarker {
				time.Sleep(delay)
			}
			emit(e)
		})
	}).ShuffleGrouping("src", true)
	top.AddSink("sink", "work")
	top.SetObservability(metrics.ObsConfig{Enabled: true, SampleEvery: 4, SpanRing: 32})
	if recovery {
		top.SetRecovery(RecoveryPolicy{Enabled: true})
	}
	return top
}

// TestLiveStatsPolledMidRun is the storm-side -race soak: a monitor
// goroutine polls LiveStats().Snapshot() (plus the renderers) while
// the topology runs, and the final snapshot must show a complete,
// consistent picture.
func TestLiveStatsPolledMidRun(t *testing.T) {
	in := testStream(20, 25, 5)
	top := obsTopology(in, 2, 50*time.Microsecond, false)
	if top.LiveStats() != nil {
		t.Fatal("LiveStats must be nil before the first Run")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	polled := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := top.LiveStats(); s != nil {
				snap := s.Snapshot()
				_ = snap.ObsTable()
				_ = snap.SpanTrace()
				for _, c := range snap.ByComponent() {
					_ = c.Exec.QuantileDuration(0.99)
				}
				polled++
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	res, err := top.Run()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if polled == 0 {
		t.Fatal("monitor never managed a mid-run poll")
	}

	snap := top.LiveStats().Snapshot()
	if top.LiveStats() != res.Stats {
		t.Fatal("LiveStats must be the run's stats collector")
	}
	byComp := map[string]metrics.ComponentSnapshot{}
	for _, c := range snap.ByComponent() {
		byComp[c.Component] = c
	}
	nEvents := int64(len(in))
	if byComp["src"].Executed != nEvents {
		t.Fatalf("src executed %d, want %d", byComp["src"].Executed, nEvents)
	}
	// Every executor saw events, so exec histograms must have samples.
	for _, name := range []string{"src", "work", "sink"} {
		if byComp[name].Exec.Empty() {
			t.Fatalf("%s: empty exec histogram with observability on", name)
		}
		if byComp[name].Exec.QuantileDuration(0.99) <= 0 {
			t.Fatalf("%s: non-positive p99", name)
		}
	}
	// Receivers observe queue latency and depth (the spout has no inbox).
	for _, name := range []string{"work", "sink"} {
		if byComp[name].Queue.Empty() {
			t.Fatalf("%s: empty queue histogram", name)
		}
		if byComp[name].MaxQueueDepth < 1 {
			t.Fatalf("%s: max queue depth = %d", name, byComp[name].MaxQueueDepth)
		}
	}
	// The work bolt sleeps ~50µs per item, paid when the aligned merger
	// flushes a whole block at its marker message — so the tail of the
	// per-message exec distribution must reflect the block flush cost
	// (most messages are cheap buffer-appends, which is itself the
	// MRG-fusion behavior the histogram makes visible).
	if byComp["work"].Exec.QuantileDuration(0.99) < 50*time.Microsecond {
		t.Fatalf("work p99 = %v, expected ≥ 50µs with the injected per-item delay",
			byComp["work"].Exec.QuantileDuration(0.99))
	}
	// Spans were sampled every 4th event into a ring of 32.
	var spanTotal int64
	for _, is := range snap.Instances {
		_, tot := is.Spans, is.SpanTotal
		spanTotal += tot
	}
	if spanTotal == 0 {
		t.Fatal("no spans sampled")
	}
}

// TestMarkerLagRecordedUnderRecovery: with recovery enabled, every
// aligned bolt records one marker-cut lag sample per completed cut.
func TestMarkerLagRecordedUnderRecovery(t *testing.T) {
	const blocks = 12
	in := testStream(blocks, 10, 3)
	top := obsTopology(in, 2, 0, true)
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Stats.Snapshot()
	var lag metrics.Hist
	for _, c := range snap.ByComponent() {
		if c.Component == "work" || c.Component == "sink" {
			lag = lag.Merge(c.MarkerLag)
		}
	}
	// Each of the 2 work instances and the sink completes one cut per
	// block: 3 executors × blocks samples.
	if lag.Count != 3*blocks {
		t.Fatalf("marker-lag samples = %d, want %d", lag.Count, 3*blocks)
	}
	if lag.QuantileDuration(0.99) <= 0 {
		t.Fatal("marker-cut lag must be positive")
	}
}

// TestMarkerLagIncludesRecoveryTime: a cut interrupted by a crash
// completes only after the restart, so its recorded lag includes the
// recovery (here inflated by an artificial slowdown before the crash).
func TestMarkerLagIncludesRecoveryTime(t *testing.T) {
	in := testStream(6, 10, 3)
	top := obsTopology(in, 1, 0, false)
	top.SetObservability(metrics.DefaultObsConfig())
	top.SetRecovery(RecoveryPolicy{Enabled: true})
	// Crash the recoverable sink mid-run; its pending cut then completes
	// after restart + replay.
	plan := NewFaultPlan()
	plan.CrashAt("sink", 0, 25)
	top.SetFaultPlan(plan)
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Stats.Snapshot()
	var sink metrics.InstanceSnapshot
	for _, is := range snap.Instances {
		if is.Component == "sink" {
			sink = is
		}
	}
	if sink.Restarts != 1 {
		t.Fatalf("sink restarts = %d, want 1", sink.Restarts)
	}
	if sink.MarkerLag.Count != 6 {
		t.Fatalf("marker-lag samples = %d, want one per block", sink.MarkerLag.Count)
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], in) {
		t.Fatal("recovered run must stay trace-equivalent")
	}
}

// TestObservabilityDisabledRecordsNothing: the default (disabled)
// configuration takes no timestamps and allocates no histograms —
// checked structurally through the snapshot.
func TestObservabilityDisabledRecordsNothing(t *testing.T) {
	in := testStream(5, 10, 3)
	top := NewTopology("noobs")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("id", 2, identityBolt).ShuffleGrouping("src", true)
	top.AddSink("sink", "id")
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range res.Stats.Snapshot().Instances {
		if !is.Exec.Empty() || !is.Queue.Empty() || !is.MarkerLag.Empty() {
			t.Fatalf("%s[%d]: histograms recorded with observability off", is.Component, is.Instance)
		}
		if is.MaxQueueDepth != 0 || is.SpanTotal != 0 {
			t.Fatalf("%s[%d]: gauges recorded with observability off", is.Component, is.Instance)
		}
		if is.Executed == 0 && is.Component != "sink" {
			t.Fatalf("%s[%d]: counters must still work", is.Component, is.Instance)
		}
	}
}
