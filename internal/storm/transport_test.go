package storm

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// This file proves the batched edge transport equivalent to the
// unbatched one at the unit level: a harness drives one emitter with
// scripted emit/marker/block/flush/EOS sequences and compares what
// reaches each (inbox, channel) against a BatchSize-1 emitter running
// the identical script. Routing is deterministic (round-robin
// cursors, the default key hash), so the comparison is exact
// per-channel equality — stronger than trace equivalence — which
// simultaneously checks FIFO order, no drop, no duplicate, and
// EOS-last, under arbitrary flush interleavings.

// transportPair is the unit harness: one sender instance with two
// edges (Shuffle and Fields, so both cursor-advancing and hashed
// routing are exercised) into one receiver component, driven directly
// without executor goroutines.
type transportPair struct {
	em   *emitter
	recv *runtimeComponent
}

func newTransportPair(tr TransportOptions, recvPar int) *transportPair {
	recv := &runtimeComponent{component: &component{name: "dst", parallelism: recvPar}}
	recv.inboxes = make([]chan *[]message, recvPar)
	for i := range recv.inboxes {
		// Large enough that scripted runs never block (the harness has
		// no receiver goroutine to apply backpressure).
		recv.inboxes[i] = make(chan *[]message, 1<<15)
	}
	recv.depths = make([]atomic.Int64, recvPar)
	recv.nChannels = 2
	send := &runtimeComponent{component: &component{name: "src", parallelism: 1}, transport: tr}
	send.workerOf = []int{-1}
	send.subs = []subscription{
		{to: recv, grouping: Shuffle, chBase: 0},
		{to: recv, grouping: Fields, chBase: 1},
	}
	return &transportPair{
		em:   newEmitter(send, 0, metrics.NewStats().Instance("src", 0), stream.DefaultHash),
		recv: recv,
	}
}

// drainVectors returns the vectors queued per inbox. It does not
// return them to the pool: the harness keeps the messages for
// comparison. Safe because the harness is single-threaded — nothing
// sends while draining.
func (p *transportPair) drainVectors() [][][]message {
	out := make([][][]message, len(p.recv.inboxes))
	for i, ch := range p.recv.inboxes {
		for len(ch) > 0 {
			bp := <-ch
			out[i] = append(out[i], *bp)
		}
	}
	return out
}

// drain flattens drainVectors into one message sequence per inbox.
func (p *transportPair) drain() [][]message {
	vecs := p.drainVectors()
	out := make([][]message, len(vecs))
	for i, vs := range vecs {
		for _, v := range vs {
			out[i] = append(out[i], v...)
		}
	}
	return out
}

// tOp is one scripted emitter operation.
type tOp struct {
	kind     byte // 0 emit item, 1 emit marker, 2 sendBlock, 3 flushAll
	key, val int
	blockLen int
}

// applyOps drives one emitter through the script and finishes with
// EOS. Flush ops are obeyed only when flushes is true: the batched
// side takes them (arbitrary interleavings), the BatchSize-1 model
// ignores them (its buffers are always empty anyway).
func applyOps(em *emitter, ops []tOp, flushes bool) {
	seq := int64(0)
	for _, op := range ops {
		switch op.kind {
		case 0:
			em.emit(stream.Item(op.key, op.val))
		case 1:
			seq++
			em.emit(mk(seq, seq))
		case 2:
			evs := make([]stream.Event, 0, op.blockLen+1)
			for i := 0; i < op.blockLen; i++ {
				evs = append(evs, stream.Item(op.key, op.val+i))
			}
			seq++
			evs = append(evs, mk(seq, seq))
			em.sendBlock(evs)
		case 3:
			if flushes {
				em.flushAll()
			}
		}
	}
	em.eos()
}

func randomOps(r *rand.Rand, n int) []tOp {
	ops := make([]tOp, 0, n)
	for i := 0; i < n; i++ {
		switch k := r.Intn(10); {
		case k < 6:
			ops = append(ops, tOp{kind: 0, key: r.Intn(5), val: i})
		case k < 7:
			ops = append(ops, tOp{kind: 1})
		case k < 8:
			ops = append(ops, tOp{kind: 2, key: r.Intn(5), val: 1000 + i, blockLen: r.Intn(4)})
		default:
			ops = append(ops, tOp{kind: 3})
		}
	}
	return ops
}

// byChannel projects one inbox's flat message sequence per channel,
// failing if any channel's EOS is not its final message.
func byChannel(t *testing.T, inbox int, msgs []message) map[int][]stream.Event {
	t.Helper()
	out := map[int][]stream.Event{}
	closed := map[int]bool{}
	for _, m := range msgs {
		if closed[m.ch] {
			t.Fatalf("inbox %d channel %d received a message after its EOS", inbox, m.ch)
		}
		if m.eos {
			closed[m.ch] = true
			continue
		}
		out[m.ch] = append(out[m.ch], m.ev)
	}
	return out
}

// runDifferential applies the same script to a batched and a
// BatchSize-1 emitter and requires identical per-(inbox, channel)
// event sequences.
func runDifferential(t *testing.T, tr TransportOptions, recvPar int, ops []tOp) {
	t.Helper()
	batched := newTransportPair(tr, recvPar)
	applyOps(batched.em, ops, true)
	if batched.em.pending != 0 {
		t.Fatalf("batched emitter has %d events still buffered after EOS", batched.em.pending)
	}
	model := newTransportPair(TransportOptions{BatchSize: 1, FlushInterval: -1}, recvPar)
	applyOps(model.em, ops, false)

	got, want := batched.drain(), model.drain()
	for i := range got {
		g, w := byChannel(t, i, got[i]), byChannel(t, i, want[i])
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("inbox %d: batched per-channel sequences differ from unbatched\nbatched:   %v\nunbatched: %v", i, g, w)
		}
	}
}

// TestTransportDifferentialRandomOps is the harness's main property
// run: random scripts with arbitrary flush interleavings across batch
// sizes and receiver widths must deliver exactly the unbatched
// per-channel sequences (FIFO, no drop, no duplicate, EOS last).
func TestTransportDifferentialRandomOps(t *testing.T) {
	for _, batch := range []int{2, 3, 5, 64, 1024} {
		for _, recvPar := range []int{1, 3} {
			for seed := int64(0); seed < 8; seed++ {
				name := fmt.Sprintf("batch=%d/par=%d/seed=%d", batch, recvPar, seed)
				t.Run(name, func(t *testing.T) {
					r := rand.New(rand.NewSource(seed))
					// Idle flush off: the harness is single-threaded, so
					// timer-based flushes are exercised by the topology
					// tests below instead.
					tr := TransportOptions{BatchSize: batch, FlushInterval: -1}
					runDifferential(t, tr, recvPar, randomOps(r, 300))
				})
			}
		}
	}
}

// TestBatchSizeOneSendsSingletonVectors checks the compatibility
// contract: BatchSize 1 flushes every push immediately, so every
// vector on the wire carries exactly one message and nothing is ever
// pending between emitter calls.
func TestBatchSizeOneSendsSingletonVectors(t *testing.T) {
	p := newTransportPair(TransportOptions{BatchSize: 1}, 2)
	r := rand.New(rand.NewSource(7))
	seq := int64(0)
	for i := 0; i < 200; i++ {
		if r.Intn(8) == 0 {
			seq++
			p.em.emit(mk(seq, seq))
		} else {
			p.em.emit(stream.Item(r.Intn(5), i))
		}
		if p.em.pending != 0 {
			t.Fatalf("BatchSize 1 left %d events pending", p.em.pending)
		}
	}
	p.em.eos()
	for i, vecs := range p.drainVectors() {
		for _, v := range vecs {
			if len(v) != 1 {
				t.Fatalf("inbox %d received a vector of %d messages; BatchSize 1 must send singletons", i, len(v))
			}
		}
	}
}

// TestMarkerFlushesAllBuffers checks flush-on-marker: a marker emit
// must put every buffered event and the marker itself on the wire
// immediately (aligned consumers complete cuts on markers; one parked
// behind a partial batch would stall them).
func TestMarkerFlushesAllBuffers(t *testing.T) {
	p := newTransportPair(TransportOptions{BatchSize: 1 << 20, FlushInterval: -1}, 2)
	for i := 0; i < 50; i++ {
		p.em.emit(stream.Item(i%5, i))
	}
	p.em.emit(mk(1, 1))
	if p.em.pending != 0 {
		t.Fatalf("marker emit left %d events buffered", p.em.pending)
	}
	total, markers := 0, 0
	for _, msgs := range p.drain() {
		for _, m := range msgs {
			total++
			if m.ev.IsMarker {
				markers++
			}
		}
	}
	// 50 items (each routed to both edges' targets once) + the marker
	// broadcast to every instance on both edges.
	if want := 50*2 + 2*2; total != want {
		t.Fatalf("drained %d messages after marker flush, want %d", total, want)
	}
	if markers != 4 {
		t.Fatalf("drained %d marker copies, want 4 (broadcast on 2 edges × 2 instances)", markers)
	}
}

// TestEOSArrivesAfterBufferedEvents checks flush-on-EOS ordering: EOS
// must trail every event still buffered for its channel.
func TestEOSArrivesAfterBufferedEvents(t *testing.T) {
	p := newTransportPair(TransportOptions{BatchSize: 1 << 20, FlushInterval: -1}, 3)
	for i := 0; i < 100; i++ {
		p.em.emit(stream.Item(i%7, i))
	}
	p.em.eos()
	for i, msgs := range p.drain() {
		perCh := map[int]int{}
		for _, m := range msgs {
			perCh[m.ch]++
		}
		// byChannel fails on any post-EOS message; also require every
		// channel to have seen its EOS.
		byChannel(t, i, msgs)
		for ch := 0; ch < p.recv.nChannels; ch++ {
			if perCh[ch] == 0 {
				t.Fatalf("inbox %d channel %d received no messages (EOS missing)", i, ch)
			}
		}
	}
}

// recordingBolt timestamps every event it sees, for the idle-flush
// liveness tests.
type recordingBolt struct {
	mu    sync.Mutex
	times []time.Time
	vals  []any
}

func (r *recordingBolt) Next(e stream.Event, emit func(stream.Event)) {
	r.mu.Lock()
	r.times = append(r.times, time.Now()) //lint:ignore DTT002 test harness: the idle-flush liveness tests measure real wall-clock latency; the timestamp never enters an output trace
	r.vals = append(r.vals, e.Value)
	r.mu.Unlock()
}

// sleepSpout produces nothing: it sleeps once, then ends its stream.
type sleepSpout struct{ d time.Duration }

func (s *sleepSpout) Next() (stream.Event, bool) {
	time.Sleep(s.d)
	return stream.Event{}, false
}

// TestIdleFlushBoltLiveness is the liveness half of the idle-flush
// contract: a relay bolt whose output buffer is far below BatchSize
// must still deliver downstream within roughly FlushInterval while
// one of its input edges stays silent — the buffered events may not
// wait for the quiet edge's EOS.
func TestIdleFlushBoltLiveness(t *testing.T) {
	const sleep = 600 * time.Millisecond
	items := make([]stream.Event, 40)
	for i := range items {
		items[i] = stream.Item(0, i)
	}
	rec := &recordingBolt{}
	top := NewTopology("idle-flush")
	top.SetTransport(TransportOptions{BatchSize: 1 << 20, FlushInterval: 5 * time.Millisecond})
	top.AddSpout("fast", 1, func(int) Spout { return SliceSpout(items) })
	top.AddSpout("slow", 1, func(int) Spout { return &sleepSpout{d: sleep} })
	top.AddBolt("relay", 1, identityBolt).ShuffleGrouping("fast", false).ShuffleGrouping("slow", false)
	top.AddBolt("rec", 1, func(int) Bolt { return rec }).ShuffleGrouping("relay", false)
	start := time.Now()
	if _, err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.vals) != len(items) {
		t.Fatalf("recorder saw %d events, want %d", len(rec.vals), len(items))
	}
	first := rec.times[0].Sub(start)
	if first >= sleep/2 {
		t.Fatalf("first relayed event arrived after %v; idle flush should beat the %v quiet edge by a wide margin", first, sleep)
	}
}

// slowSpout emits its events with a pause inside Next between them,
// modelling a low-rate source.
type slowSpout struct {
	events []stream.Event
	i      int
	pause  time.Duration
}

func (s *slowSpout) Next() (stream.Event, bool) {
	if s.i >= len(s.events) {
		return stream.Event{}, false
	}
	if s.i > 0 {
		time.Sleep(s.pause)
	}
	e := s.events[s.i]
	s.i++
	return e, true
}

// TestIdleFlushSpoutLiveness checks the spout half: a low-rate spout
// flushes between Next calls (tick), so early events reach downstream
// long before the source finishes.
func TestIdleFlushSpoutLiveness(t *testing.T) {
	const n, pause = 40, 5 * time.Millisecond // ~200ms total source time
	items := make([]stream.Event, n)
	for i := range items {
		items[i] = stream.Item(0, i)
	}
	rec := &recordingBolt{}
	top := NewTopology("idle-flush-spout")
	top.SetTransport(TransportOptions{BatchSize: 1 << 20, FlushInterval: 2 * time.Millisecond})
	top.AddSpout("src", 1, func(int) Spout { return &slowSpout{events: items, pause: pause} })
	top.AddBolt("rec", 1, func(int) Bolt { return rec }).ShuffleGrouping("src", false)
	start := time.Now()
	if _, err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.vals) != n {
		t.Fatalf("recorder saw %d events, want %d", len(rec.vals), n)
	}
	first := rec.times[0].Sub(start)
	if total := n * int(pause); first >= time.Duration(total)/2 {
		t.Fatalf("first event arrived after %v; spout tick flush should deliver far before the source's ~%v runtime", first, time.Duration(total))
	}
}

// TestTransportFIFOPerChannelConcurrent is the concurrent FIFO check
// (meaningful under -race): two sender instances stream strictly
// increasing values through batched edges; every receiver channel
// must observe its sender's values in order, at several batch sizes.
func TestTransportFIFOPerChannelConcurrent(t *testing.T) {
	for _, batch := range []int{2, 7, 64} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			const n = 500
			rec := &chRecorder{seen: map[int][]int{}}
			top := NewTopology("fifo")
			top.SetTransport(TransportOptions{BatchSize: batch, FlushInterval: time.Millisecond})
			top.AddSpout("src", 2, func(inst int) Spout {
				events := make([]stream.Event, n)
				for i := range events {
					events[i] = stream.Item(inst, i)
				}
				return SliceSpout(events)
			})
			top.AddBolt("rec", 1, func(int) Bolt { return rec }).ShuffleGrouping("src", false)
			if _, err := top.Run(); err != nil {
				t.Fatal(err)
			}
			if len(rec.seen) != 2 {
				t.Fatalf("recorder saw %d channels, want 2", len(rec.seen))
			}
			for ch, vals := range rec.seen {
				if len(vals) != n {
					t.Fatalf("channel %d delivered %d values, want %d", ch, len(vals), n)
				}
				for i, v := range vals {
					if v != i {
						t.Fatalf("channel %d out of order at %d: got %d", ch, i, v)
					}
				}
			}
		})
	}
}

// chRecorder records values per input channel (ChannelBolt).
type chRecorder struct {
	mu   sync.Mutex
	seen map[int][]int
}

func (c *chRecorder) Next(e stream.Event, emit func(stream.Event)) {}
func (c *chRecorder) NextFrom(ch int, e stream.Event, emit func(stream.Event)) {
	c.mu.Lock()
	c.seen[ch] = append(c.seen[ch], e.Value.(int))
	c.mu.Unlock()
}

// FuzzBatchFlush drives random emit/marker/block/flush/EOS scripts
// decoded from fuzz input through a batched emitter and the
// BatchSize-1 model and requires identical per-(inbox, channel)
// delivery. The batch size itself comes from the input, so the fuzzer
// explores flush-on-size boundaries too.
func FuzzBatchFlush(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3, 10, 20, 30, 9, 17, 25, 33})
	f.Add(uint8(0), []byte{5, 5, 5, 5, 5})
	f.Add(uint8(1), []byte{0, 9, 1, 9, 2, 9})
	f.Add(uint8(64), []byte{40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 19, 29})
	f.Add(uint8(200), []byte{7, 3, 7, 3, 7, 3, 9})
	f.Fuzz(func(t *testing.T, rawBatch uint8, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		ops := make([]tOp, 0, len(script))
		for i, b := range script {
			switch b % 10 {
			case 9:
				ops = append(ops, tOp{kind: 1}) // marker
			case 8:
				ops = append(ops, tOp{kind: 3}) // flush (batched side only)
			case 7:
				ops = append(ops, tOp{kind: 2, key: int(b) % 5, val: 1000 + i, blockLen: int(b) % 4})
			default:
				ops = append(ops, tOp{kind: 0, key: int(b) % 5, val: i})
			}
		}
		tr := TransportOptions{BatchSize: int(rawBatch), FlushInterval: -1}
		runDifferential(t, tr, 3, ops)
	})
}
