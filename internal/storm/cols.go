package storm

import (
	"fmt"

	"datatrace/internal/stream"
)

// This file is the columnar (struct-of-arrays) hot path of the batched
// edge transport. An edge declared columnar — by the compiler, when
// both endpoint templates expose the same concrete column kind — moves
// items as typed Columns batches instead of boxed events: the emitter
// appends rows to a per-destination column buffer, seals a full buffer
// into a single cols message, and the receiver hands the whole batch to
// a ColProcessor bolt in one call. Boxed and columnar edges coexist
// message-by-message on the same channels: a message either carries one
// boxed event or one column batch.
//
// Markers never enter a column batch. The emitter's push seals the
// open column buffer before appending any boxed message (sealCols in
// transport.go), so on every channel a marker still follows all the
// rows emitted before it — the FIFO discipline the MRG alignment and
// the marker-cut protocols rely on. Because flushAll also drains and
// seals column state, every point at which the recovery and rescale
// protocols prove the transport empty (committed cuts, barriers, EOS)
// still has nothing buffered anywhere: the columnar layer adds buffer
// capacity, not new retention points.
//
// Everything here preserves the data-trace semantics for the same
// reason batching did (PR 3): a Columns batch denotes exactly its row
// sequence, rows keep their per-channel order, and under U(K,V) the
// per-channel interleaving is all that is observable.

// ColSpout is an optional Spout extension: a source that can produce
// typed column batches directly, skipping per-event boxing. The
// executor calls NextCols while items are available and falls back to
// Next at punctuation points.
type ColSpout interface {
	Spout
	// ColKind is the kind of batches NextCols fills; nil disables the
	// columnar path for this spout instance.
	ColKind() *stream.ColKind
	// NextCols appends up to max item rows to out and returns how many
	// it appended. It returns 0 exactly when the next event is a marker
	// or end-of-stream — the executor then calls Next, so markers and
	// EOS always travel the boxed path.
	NextCols(out stream.Columns, max int) int
}

// ColProcessor is an optional Bolt extension: a bolt that can consume
// (and possibly produce) typed column batches. The executor uses
// ProcessCols for every arriving batch whose kind matches InColKind,
// and falls back to per-event Next calls otherwise, so a bolt behind a
// mixed set of edges still sees every event exactly once.
type ColProcessor interface {
	Bolt
	// InColKind is the kind of batch ProcessCols accepts; nil disables
	// the columnar receive path for this bolt.
	InColKind() *stream.ColKind
	// OutColKind is the kind of batch ProcessCols fills, nil when the
	// bolt emits only boxed events.
	OutColKind() *stream.ColKind
	// ProcessCols consumes every row of in, appending output rows to
	// out (non-nil exactly when OutColKind is non-nil). The
	// implementation must not retain in, out or their column slices
	// past the call (dttlint rule DTT007).
	ProcessCols(in, out stream.Columns)
}

// ColCombinerSpec configures typed sender-side combining on one
// columnar input edge of a bolt (see BoltDecl.ColCombineWith): the
// columnar counterpart of CombinerSpec. The edge carries batches of
// OutKind — each drain ships one (key, partial aggregate) row per
// distinct key — while the producer emits batches of InKind.
type ColCombinerSpec struct {
	// InKind is the kind of rows the combiner folds (the producer's
	// output kind); OutKind is the kind of rows it drains (the kind the
	// edge carries and the consumer accepts).
	InKind  *stream.ColKind
	OutKind *stream.ColKind
	// New builds one combining buffer per (subscription, destination).
	New func() stream.ColCombiner
	// Cap bounds the distinct keys a buffer holds before draining.
	Cap int
}

// validate checks a spec at topology validation time.
func (s *ColCombinerSpec) validate(bolt, from string, g Grouping) error {
	if s.InKind == nil || s.OutKind == nil || s.New == nil {
		return fmt.Errorf("storm: columnar combiner on edge %s→%s needs InKind, OutKind and New", from, bolt)
	}
	if s.Cap < 1 {
		return fmt.Errorf("storm: columnar combiner on edge %s→%s needs a positive key cap, got %d", from, bolt, s.Cap)
	}
	if g != Fields {
		return fmt.Errorf("storm: columnar combiner on edge %s→%s requires fields grouping, got %s (combining re-times items, which only a key-partitioned unordered edge tolerates)", from, bolt, g)
	}
	return nil
}

// ColumnarWith declares the bolt's most recently declared input edge
// columnar: items on it travel as typed batches of the given kind.
// The producer must emit batches of exactly this kind (pointer
// equality — kinds are canonical) and the consumer must accept them;
// the compiler checks both before selecting the columnar transport,
// and the runtime falls back to boxed events row-by-row on any
// mismatch, so a wrong declaration degrades performance, not
// semantics.
func (d *BoltDecl) ColumnarWith(kind *stream.ColKind) *BoltDecl {
	if len(d.c.inputs) == 0 {
		panic(fmt.Sprintf("storm: ColumnarWith on %q before any input is declared", d.c.name))
	}
	if kind == nil {
		panic(fmt.Sprintf("storm: ColumnarWith on %q with a nil kind", d.c.name))
	}
	d.c.inputs[len(d.c.inputs)-1].cols = kind
	return d
}

// ColCombineWith attaches a typed sender-side combining buffer to the
// bolt's most recently declared input edge and declares the edge
// columnar with the combiner's output kind. The edge must use fields
// grouping; validation enforces it at Run.
func (d *BoltDecl) ColCombineWith(spec ColCombinerSpec) *BoltDecl {
	if len(d.c.inputs) == 0 {
		panic(fmt.Sprintf("storm: ColCombineWith on %q before any input is declared", d.c.name))
	}
	in := &d.c.inputs[len(d.c.inputs)-1]
	in.colComb = &spec
	in.cols = spec.OutKind
	return d
}

// ---------------------------------------------------------------------------
// Emitter-side columnar routing.
// ---------------------------------------------------------------------------

// emitCols routes one batch of emitted rows to every subscription,
// taking ownership of the batch (it is released before returning). A
// subscription whose edge is columnar with a matching kind receives
// rows by typed row append (or typed combiner fold) — no boxing; any
// other subscription receives the rows boxed one by one through the
// ordinary route/wire/push path. The serialization round-trip
// (SetSerializer) has no typed form, so its presence forces the boxed
// fallback; the networked transport serializes whole column batches at
// the link layer instead (net.go).
func (em *emitter) emitCols(cols stream.Columns) {
	n := cols.Len()
	if n == 0 {
		cols.Release()
		return
	}
	em.stats.AddEmitted(int64(n))
	kind := cols.Kind()
	for si := range em.rc.subs {
		sub := &em.rc.subs[si]
		base := em.bufBase[si]
		nd := len(sub.to.inboxes)
		switch {
		case sub.colComb != nil && sub.colComb.InKind == kind && em.ser == nil:
			// Typed combining: fold each row into its destination's
			// buffer. The grouping is Fields (validated), so the
			// destination comes from the row's key hash.
			for i := 0; i < n; i++ {
				em.faults.onSend(em.rc.name, em.instance, sub.to.name)
				b := &em.bufs[base+cols.HashAt(i)%nd]
				c := b.colComb
				before := c.Len()
				if !c.Fold(cols, i) {
					c.FoldEvent(cols.EventAt(i))
				}
				em.colpending += c.Len() - before
				if c.Len() >= b.colCap {
					em.drainColComb(b)
				}
			}
		case sub.cols == kind && em.ser == nil:
			switch sub.grouping {
			case Shuffle:
				k := em.rrNext[si]
				for i := 0; i < n; i++ {
					em.faults.onSend(em.rc.name, em.instance, sub.to.name)
					em.appendCol(&em.bufs[base+k], cols, i)
					k = (k + 1) % nd
				}
				em.rrNext[si] = k
			case Fields:
				for i := 0; i < n; i++ {
					em.faults.onSend(em.rc.name, em.instance, sub.to.name)
					em.appendCol(&em.bufs[base+cols.HashAt(i)%nd], cols, i)
				}
			case Global:
				b := &em.bufs[base]
				for i := 0; i < n; i++ {
					em.faults.onSend(em.rc.name, em.instance, sub.to.name)
					em.appendCol(b, cols, i)
				}
			case Broadcast:
				for k := 0; k < nd; k++ {
					b := &em.bufs[base+k]
					for i := 0; i < n; i++ {
						em.faults.onSend(em.rc.name, em.instance, sub.to.name)
						em.appendCol(b, cols, i)
					}
				}
			}
		default:
			// Boxed fallback for this subscription only: kind mismatch,
			// boxed edge, or a serializer that needs boxed events.
			for i := 0; i < n; i++ {
				em.emitRowTo(si, sub, cols.EventAt(i))
			}
		}
	}
	cols.Release()
}

// emitRowTo delivers one row of a columnar emission to one
// subscription through the boxed route/wire/push path. AddEmitted was
// already counted for the whole batch by emitCols.
func (em *emitter) emitRowTo(si int, sub *subscription, e stream.Event) {
	ch := sub.chBase + em.instance
	switch sub.grouping {
	case Shuffle:
		k := em.rrNext[si]
		em.rrNext[si] = (k + 1) % len(sub.to.inboxes)
		em.pushRouted(sub, si, k, ch, e)
	case Fields:
		em.pushRouted(sub, si, em.hash(e.Key)%len(sub.to.inboxes), ch, e)
	case Global:
		em.pushRouted(sub, si, 0, ch, e)
	case Broadcast:
		for k := range sub.to.inboxes {
			em.pushRouted(sub, si, k, ch, e)
		}
	}
}

// pushRouted wires and pushes one already-resolved routed message.
func (em *emitter) pushRouted(sub *subscription, si, target, ch int, e stream.Event) {
	r := routedMsg{sub: sub, si: si, target: target, ch: ch, e: e}
	em.wire(&r)
	em.push(&r)
}

// appendCol appends one row of src to a destination's column buffer,
// sealing and flushing when the buffer reaches the batch size — one
// full column batch per flushed vector, which keeps the in-flight
// bound (ChannelCap × BatchSize events per edge) intact.
func (em *emitter) appendCol(b *outBuf, src stream.Columns, i int) {
	cb := b.colBuf
	if cb == nil {
		cb = b.colKind.Get()
		b.colBuf = cb
	}
	cb.AppendRow(src, i)
	em.colpending++
	if cb.Len() >= em.batchSize {
		em.sealCols(b)
		em.flushBuf(b)
	}
}

// sealCols closes a destination's open column buffer into one cols
// message on the transport buffer. Nil-safe and a no-op when nothing
// is buffered. Ownership of the batch passes to the message; the
// receiver (or the net sink, after serializing) releases it.
func (em *emitter) sealCols(b *outBuf) {
	cb := b.colBuf
	if cb == nil {
		return
	}
	if cb.Len() == 0 {
		return
	}
	b.colBuf = nil
	em.colpending -= cb.Len()
	em.appendRaw(b, message{ch: b.colCh, cols: cb, sent: em.now})
}

// colCombine folds one boxed event into a columnar combining buffer
// (the marker-free fallback rows of a columnar combined edge), with
// the same cap discipline as the typed fold in emitCols.
func (em *emitter) colCombine(b *outBuf, e stream.Event) {
	c := b.colComb
	before := c.Len()
	c.FoldEvent(e)
	em.colpending += c.Len() - before
	if c.Len() >= b.colCap {
		em.drainColComb(b)
	}
}

// drainColComb drains a columnar combining buffer into its
// destination's column buffer — one (key, partial aggregate) row per
// distinct key, in first-seen key order — sealing and flushing if the
// drain filled a batch. Nil-safe and a no-op when nothing is buffered.
func (em *emitter) drainColComb(b *outBuf) {
	c := b.colComb
	if c == nil || c.Len() == 0 {
		return
	}
	keys := c.Len()
	if b.colBuf == nil {
		b.colBuf = b.colKind.Get()
	}
	ins, outs := c.Drain(b.colBuf)
	em.stats.AddCombinedIn(int64(ins))
	em.stats.AddCombinedOut(int64(outs))
	// Buffered keys became buffered rows; both count toward colpending,
	// so the net change is outs - keys (zero: a drain moves every key).
	em.colpending += outs - keys
	if b.colBuf.Len() >= em.batchSize {
		em.sealCols(b)
		em.flushBuf(b)
	}
}

// ---------------------------------------------------------------------------
// Receiver-side columnar MRG alignment.
// ---------------------------------------------------------------------------

// colEntry is one buffered unit of a colMerge channel: a boxed event
// or a column batch.
type colEntry struct {
	ev   stream.Event
	cols stream.Columns
}

type colBlock struct {
	items []colEntry
	mark  stream.Marker
}

// colMerge is the MRG merger for inputs that interleave boxed events
// and column batches. It mirrors stream.MergeState exactly — blocks
// close on markers, a block flushes when every channel closed it, the
// merged marker carries the maximum timestamp, and a block pops only
// after full delivery — but buffers batches whole, so alignment does
// not force reboxing. Only the non-recoverable executor path uses it;
// the marker-cut recovery path unboxes batches at arrival and keeps
// stream.MergeState as its replay buffer.
type colMerge struct {
	n      int
	queued [][]colBlock
	open   [][]colEntry
	// dev/dcols deliver one merged boxed event / column batch.
	dev   func(stream.Event)
	dcols func(stream.Columns)
}

func newColMerge(n int, dev func(stream.Event), dcols func(stream.Columns)) *colMerge {
	return &colMerge{
		n:      n,
		queued: make([][]colBlock, n),
		open:   make([][]colEntry, n),
		dev:    dev,
		dcols:  dcols,
	}
}

// Next consumes one boxed event from channel ch.
func (m *colMerge) Next(ch int, e stream.Event) {
	if !e.IsMarker {
		m.open[ch] = append(m.open[ch], colEntry{ev: e})
		return
	}
	m.queued[ch] = append(m.queued[ch], colBlock{items: m.open[ch], mark: e.Marker})
	m.open[ch] = nil
	m.advance()
}

// NextCols consumes one column batch from channel ch, taking ownership
// (the batch is released after its block's delivery).
func (m *colMerge) NextCols(ch int, c stream.Columns) {
	m.open[ch] = append(m.open[ch], colEntry{cols: c})
}

func (m *colMerge) advance() {
	for {
		for _, q := range m.queued {
			if len(q) == 0 {
				return
			}
		}
		mark := m.queued[0][0].mark
		for ch := range m.queued {
			b := m.queued[ch][0]
			for _, it := range b.items {
				if it.cols != nil {
					m.dcols(it.cols)
				} else {
					m.dev(it.ev)
				}
			}
			if b.mark.Timestamp > mark.Timestamp {
				mark = b.mark
			}
		}
		m.dev(stream.Mark(mark))
		for ch := range m.queued {
			m.queued[ch][0] = colBlock{}
			m.queued[ch] = m.queued[ch][1:]
		}
	}
}

// Trailing delivers every entry still buffered at end-of-stream —
// closed-but-incomplete blocks, then each channel's open block —
// without synthesizing the missing markers (the columnar analogue of
// stream.MergeState.Trailing).
func (m *colMerge) Trailing() {
	for ch := range m.queued {
		for _, b := range m.queued[ch] {
			for _, it := range b.items {
				if it.cols != nil {
					m.dcols(it.cols)
				} else {
					m.dev(it.ev)
				}
			}
		}
		m.queued[ch] = nil
	}
	for ch, open := range m.open {
		for _, it := range open {
			if it.cols != nil {
				m.dcols(it.cols)
			} else {
				m.dev(it.ev)
			}
		}
		m.open[ch] = nil
	}
}
