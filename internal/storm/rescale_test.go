package storm

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// rsSumBolt is sumBolt plus the Resharder contract: its keyed state
// (per-key running sums) re-partitions by moving each key's sum to the
// key's new owner.
type rsSumBolt struct{ sumBolt }

func newRSSumBolt(int) Bolt { return &rsSumBolt{sumBolt{sums: map[int]int{}}} }

func (s *rsSumBolt) Reshard(old [][]byte, newPar int, owner func(key any) int) ([][]byte, error) {
	outs := make([]map[int]int, newPar)
	for j := range outs {
		outs[j] = map[int]int{}
	}
	for _, blob := range old {
		if len(blob) == 0 {
			continue
		}
		var sums map[int]int
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&sums); err != nil {
			return nil, err
		}
		for k, v := range sums {
			outs[owner(k)][k] = v
		}
	}
	blobs := make([][]byte, newPar)
	for j := range outs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(outs[j]); err != nil {
			return nil, err
		}
		blobs[j] = buf.Bytes()
	}
	return blobs, nil
}

// rsTopology wires src → sum ×par → sink with a reshardable sum bolt
// and recovery enabled (the rescale barrier requires marker cuts).
func rsTopology(in []stream.Event, par int) *Topology {
	top := NewTopology("rescale-sums")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("sum", par, newRSSumBolt).FieldsGrouping("src", true)
	top.AddSink("sink", "sum")
	top.SetRecovery(RecoveryPolicy{Enabled: true})
	return top
}

// rsChainTopology adds a second keyed stage, so rescaling the first
// one exercises downstream channel-base and merger-width rewiring.
func rsChainTopology(in []stream.Event, parA, parB int) *Topology {
	top := NewTopology("rescale-chain")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("a", parA, newRSSumBolt).FieldsGrouping("src", true)
	top.AddBolt("b", parB, newRSSumBolt).FieldsGrouping("a", true)
	top.AddSink("sink", "b")
	top.SetRecovery(RecoveryPolicy{Enabled: true})
	return top
}

// checkRescaledRun compares a rescaled run against its fixed-par
// oracle: the sink trace must be equivalent and the per-component
// item counts (Executed − Cuts, invariant under parallelism) equal.
func checkRescaledRun(t *testing.T, res *Result, ref *Result, components ...string) {
	t.Helper()
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], ref.Sinks["sink"]) {
		t.Fatalf("rescaled output not trace-equivalent:\n ref %s\n got %s",
			stream.Render(ref.Sinks["sink"]), stream.Render(res.Sinks["sink"]))
	}
	for _, c := range components {
		if got, want := res.Stats.ComponentItems(c), ref.Stats.ComponentItems(c); got != want {
			t.Fatalf("component %q executed %d items, oracle executed %d", c, got, want)
		}
	}
}

func finalParallelism(t *testing.T, top *Topology, component string) int {
	t.Helper()
	for _, c := range top.Components() {
		if c.Name == component {
			return c.Parallelism
		}
	}
	t.Fatalf("component %q not found", component)
	return 0
}

func TestRescaleUpMatchesFixedRun(t *testing.T) {
	in := testStream(8, 10, 6)
	ref, err := rsTopology(in, 2).Run()
	if err != nil {
		t.Fatal(err)
	}

	top := rsTopology(in, 2)
	top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 4, 3))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("rescaled run failed: %v", err)
	}
	checkRescaledRun(t, res, ref, "src", "sum", "sink")
	if top.Rescales() != 1 {
		t.Fatalf("Rescales() = %d, want 1", top.Rescales())
	}
	if par := finalParallelism(t, top, "sum"); par != 4 {
		t.Fatalf("final parallelism = %d, want 4", par)
	}
}

func TestRescaleDownMatchesFixedRun(t *testing.T) {
	in := testStream(8, 10, 6)
	ref, err := rsTopology(in, 4).Run()
	if err != nil {
		t.Fatal(err)
	}

	top := rsTopology(in, 4)
	top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 1, 2))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("rescaled run failed: %v", err)
	}
	checkRescaledRun(t, res, ref, "src", "sum", "sink")
	if par := finalParallelism(t, top, "sum"); par != 1 {
		t.Fatalf("final parallelism = %d, want 1", par)
	}
}

func TestRescaleUpThenDownMatchesFixedRun(t *testing.T) {
	in := testStream(10, 8, 7)
	ref, err := rsTopology(in, 2).Run()
	if err != nil {
		t.Fatal(err)
	}

	top := rsTopology(in, 2)
	top.SetRescalePlan(NewRescalePlan().
		RescaleAt("sum", 5, 2).
		RescaleAt("sum", 1, 6))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("rescaled run failed: %v", err)
	}
	checkRescaledRun(t, res, ref, "src", "sum", "sink")
	if top.Rescales() != 2 {
		t.Fatalf("Rescales() = %d, want 2", top.Rescales())
	}
	if par := finalParallelism(t, top, "sum"); par != 1 {
		t.Fatalf("final parallelism = %d, want 1", par)
	}
}

func TestRescaleMidChainRewiresDownstream(t *testing.T) {
	in := testStream(8, 12, 9)
	ref, err := rsChainTopology(in, 2, 2).Run()
	if err != nil {
		t.Fatal(err)
	}

	top := rsChainTopology(in, 2, 2)
	top.SetRescalePlan(NewRescalePlan().RescaleAt("a", 5, 3))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("rescaled run failed: %v", err)
	}
	checkRescaledRun(t, res, ref, "src", "a", "b", "sink")
	if par := finalParallelism(t, top, "a"); par != 5 {
		t.Fatalf("final parallelism of a = %d, want 5", par)
	}
}

func TestDynamicRescaleMidRun(t *testing.T) {
	in := testStream(8, 10, 6)
	ref, err := rsTopology(in, 2).Run()
	if err != nil {
		t.Fatal(err)
	}

	top := rsTopology(in, 2)
	// Throttle the source so the run comfortably outlasts the request.
	top.SetFaultPlan(NewFaultPlan().SlowExecutor("src", 0, 500*time.Microsecond))
	runDone := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		defer close(runDone)
		res, runErr = top.Run()
	}()
	var rescaleErr error
	for {
		rescaleErr = top.Rescale("sum", 3)
		if rescaleErr == nil || !strings.Contains(rescaleErr.Error(), "not running") {
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-runDone
	if runErr != nil {
		t.Fatalf("run failed: %v", runErr)
	}
	if rescaleErr != nil {
		t.Fatalf("dynamic rescale failed: %v", rescaleErr)
	}
	checkRescaledRun(t, res, ref, "src", "sum", "sink")
	if par := finalParallelism(t, top, "sum"); par != 3 {
		t.Fatalf("final parallelism = %d, want 3", par)
	}
	// The run is over: further requests must be refused, not hang.
	if err := top.Rescale("sum", 2); err == nil {
		t.Fatal("rescale after the run ended must fail")
	}
}

func TestRescaleDuringCrashRecovery(t *testing.T) {
	in := testStream(8, 10, 6)
	ref, err := rsTopology(in, 2).Run()
	if err != nil {
		t.Fatal(err)
	}

	// Crash an executor of the component being rescaled at several
	// points up to the barrier cut (instance 0 of 2 sees ~6 events per
	// block, so the barrier at cut 3 lands near event 18): recovery
	// must replay to a consistent cut and the rescale must still land
	// exactly once.
	for _, atEvent := range []int64{5, 10, 15} {
		top := rsTopology(in, 2)
		top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 4, 3))
		top.SetFaultPlan(NewFaultPlan().CrashAt("sum", 0, atEvent))
		res, err := top.Run()
		if err != nil {
			t.Fatalf("crash at %d: %v", atEvent, err)
		}
		checkRescaledRun(t, res, ref, "src", "sum", "sink")
		if top.Rescales() != 1 {
			t.Fatalf("crash at %d: Rescales() = %d, want 1", atEvent, top.Rescales())
		}
		if par := finalParallelism(t, top, "sum"); par != 4 {
			t.Fatalf("crash at %d: final parallelism = %d, want 4", atEvent, par)
		}
		restarts, _, _ := res.Stats.Recovery()
		if restarts < 1 {
			t.Fatalf("crash at %d: no restart recorded", atEvent)
		}
	}
}

func TestRescaleCrashOnSpawnedInstance(t *testing.T) {
	in := testStream(10, 8, 7)
	ref, err := rsTopology(in, 4).Run()
	if err != nil {
		t.Fatal(err)
	}

	// Scale 4 → 2 at cut 2. The old instance 1 retires near event 6
	// (two ~3-event blocks), so a crash scheduled at event 20 can only
	// fire on the spawned post-rescale instance 1 (whose fault counter
	// starts fresh): the crash exercises recovery of a migrated shard
	// on a spawned executor.
	top := rsTopology(in, 4)
	top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 2, 2))
	top.SetFaultPlan(NewFaultPlan().CrashAt("sum", 1, 20))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("crash on spawned instance: %v", err)
	}
	checkRescaledRun(t, res, ref, "src", "sum", "sink")
	restarts, _, _ := res.Stats.Recovery()
	if restarts < 1 {
		t.Fatal("no restart recorded on the spawned instance")
	}
}

func TestRescaleValidationRejections(t *testing.T) {
	in := testStream(2, 4, 2)
	cases := []struct {
		name string
		prep func(top *Topology)
		want string
	}{
		{"unknown component", func(top *Topology) {
			top.SetRescalePlan(NewRescalePlan().RescaleAt("ghost", 2, 1))
		}, "unknown component"},
		{"invalid parallelism", func(top *Topology) {
			top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 0, 1))
		}, "parallelism 0"},
		{"spout target", func(top *Topology) {
			top.SetRescalePlan(NewRescalePlan().RescaleAt("src", 2, 1))
		}, "is a spout"},
		{"sink target", func(top *Topology) {
			top.SetRescalePlan(NewRescalePlan().RescaleAt("sink", 2, 1))
		}, "is a sink"},
		{"recovery disabled", func(top *Topology) {
			top.SetRecovery(RecoveryPolicy{})
			top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 2, 1))
		}, "requires marker-cut recovery"},
		{"invalid cut", func(top *Topology) {
			top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 2, 0))
		}, "AtCut"},
		{"non-increasing cuts", func(top *Topology) {
			top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 2, 3).RescaleAt("sum", 4, 3))
		}, "not after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			top := rsTopology(in, 2)
			tc.prep(top)
			_, err := top.Run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}

	t.Run("not running", func(t *testing.T) {
		top := rsTopology(in, 2)
		if err := top.Rescale("sum", 3); err == nil || !strings.Contains(err.Error(), "not running") {
			t.Fatalf("got %v, want not-running error", err)
		}
	})

	t.Run("non-reshardable bolt", func(t *testing.T) {
		// sumBolt is Recoverable but not a Resharder: the plan step must
		// fail the run at the barrier, with the message naming the gap.
		top := NewTopology("plain-sums")
		top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
		top.AddBolt("sum", 2, newSumBolt).FieldsGrouping("src", true)
		top.AddSink("sink", "sum")
		top.SetRecovery(RecoveryPolicy{Enabled: true})
		top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 4, 1))
		_, err := top.Run()
		if err == nil || !strings.Contains(err.Error(), "Resharder") {
			t.Fatalf("got %v, want Resharder error", err)
		}
	})

	t.Run("plan cut beyond the stream", func(t *testing.T) {
		top := rsTopology(in, 2)
		top.SetRescalePlan(NewRescalePlan().RescaleAt("sum", 4, 100))
		_, err := top.Run()
		if err == nil || !strings.Contains(err.Error(), "did not run") {
			t.Fatalf("got %v, want unreached-step error", err)
		}
	})
}

func TestRescaleNoOpAndRepeatIsStable(t *testing.T) {
	in := testStream(6, 10, 5)
	ref, err := rsTopology(in, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Rescaling to the current parallelism at a barrier is a no-op,
	// and a later real step must still work.
	top := rsTopology(in, 2)
	top.SetRescalePlan(NewRescalePlan().
		RescaleAt("sum", 2, 2).
		RescaleAt("sum", 3, 4))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	checkRescaledRun(t, res, ref, "src", "sum", "sink")
	if par := finalParallelism(t, top, "sum"); par != 3 {
		t.Fatalf("final parallelism = %d, want 3", par)
	}
}

func TestAutoscaleScaleOutUnderBackpressure(t *testing.T) {
	// A deliberately slow bolt against a fast source builds queue
	// depth; the controller must scale out within its bounds, and the
	// output must stay trace-equivalent to the unscaled oracle.
	in := testStream(30, 60, 16)
	ref, err := rsTopology(in, 1).Run()
	if err != nil {
		t.Fatal(err)
	}

	top := rsTopology(in, 1)
	top.SetObservability(metrics.ObsConfig{Enabled: true})
	// Throttle the source mildly so the stream outlasts the controller's
	// first polls (an unthrottled finite source drains into the inboxes
	// and ends the run's rescale window in milliseconds), and the bolt
	// 10× harder so its inbox visibly backs up.
	top.SetFaultPlan(NewFaultPlan().
		SlowExecutor("src", 0, 50*time.Microsecond).
		SlowExecutor("sum", 0, 500*time.Microsecond))
	top.SetAutoscale(&AutoscalePolicy{
		Component: "sum",
		Min:       1,
		Max:       4,
		Interval:  2 * time.Millisecond,
		HighDepth: 16,
		Sustain:   1,
	})
	res, err := top.Run()
	if err != nil {
		t.Fatalf("autoscaled run failed: %v", err)
	}
	checkRescaledRun(t, res, ref, "src", "sum", "sink")
	if top.Rescales() < 1 {
		t.Fatal("autoscaler never scaled out under sustained backpressure")
	}
	if par := finalParallelism(t, top, "sum"); par < 2 || par > 4 {
		t.Fatalf("final parallelism = %d, want within (1, 4]", par)
	}
}

func TestAutoscaleRequiresObservability(t *testing.T) {
	in := testStream(2, 4, 2)
	top := rsTopology(in, 2)
	top.SetAutoscale(&AutoscalePolicy{Component: "sum", Min: 1, Max: 4})
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "observability") {
		t.Fatalf("got %v, want observability requirement", err)
	}
}
