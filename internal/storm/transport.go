package storm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datatrace/internal/stream"
)

// This file implements the batched edge transport: instead of one
// channel send per routed event, each emitter accumulates a
// per-(subscription, destination-instance) buffer and flushes it as a
// message vector, amortizing the synchronization cost of a channel op
// over BatchSize events. Receivers drain one vector per channel op
// and feed its events through the existing execute path one at a
// time, so operator semantics are untouched.
//
// The transport preserves per-(sender,channel) FIFO order: every
// receiver-side channel is fed by exactly one buffer (a channel
// identifies one sender instance on one edge, and a buffer holds one
// edge's traffic to one destination instance), and buffers append and
// flush in order. The interleaving *across* channels of one inbox is
// unspecified — exactly as it already is across sender instances —
// and the MRG merger and ChannelBolt consumers only ever rely on
// per-channel order.
//
// Flush triggers, chosen so batching is invisible to the protocol
// layers above:
//
//   - size: a buffer reaching BatchSize flushes immediately.
//   - marker: emitting a marker flushes every buffer. Markers are
//     broadcast punctuations; a marker parked behind a partial batch
//     would stall aligned consumers waiting to complete the cut, and
//     marker-cut recovery relies on a cut's emissions being fully on
//     the wire when the cut commits.
//   - block: sendBlock flushes when the block is done, keeping the
//     transactional all-routed-and-serialized-before-first-send
//     contract of marker-cut recovery (the block's events may span
//     several vectors, but nothing of the block stays buffered).
//   - EOS: eos appends the end-of-stream notices after any buffered
//     events and flushes, so EOS is always the last message a channel
//     delivers.
//   - idle: a bolt waiting on an empty inbox with buffered output
//     flushes after FlushInterval, so low-rate streams don't stall
//     (see recvBatch). Spouts flush between Next calls via tick; a
//     spout blocked inside Next cannot flush — periodic markers or
//     EOS bound the residency of its buffered output.
//
// With BatchSize 1 every push flushes immediately: the emitter never
// holds a buffered event, tick and recvBatch take their zero-cost
// early-outs, and the transport reproduces the unbatched runtime
// exactly (one single-event vector per routed event).

// DefaultBatchSize is the per-destination buffer capacity used when
// TransportOptions.BatchSize is zero.
const DefaultBatchSize = 64

// DefaultFlushInterval is the idle-flush timeout used when
// TransportOptions.FlushInterval is zero.
const DefaultFlushInterval = time.Millisecond

// TransportOptions configures the batched edge transport of a
// topology's executors.
type TransportOptions struct {
	// BatchSize is the number of events a per-destination send buffer
	// accumulates before it is flushed as one message vector. 0 means
	// DefaultBatchSize; 1 reproduces the unbatched transport exactly.
	BatchSize int
	// FlushInterval bounds how long an emitted event may sit in a
	// partial batch while the executor is otherwise idle. 0 means
	// DefaultFlushInterval; negative disables the idle flush (markers,
	// blocks and EOS still flush).
	FlushInterval time.Duration
}

// Validate rejects nonsensical option values with a descriptive
// error. Run calls it before starting executors; callers configuring
// transports programmatically can call it early for better error
// locality.
func (o TransportOptions) Validate() error {
	if o.BatchSize < 0 {
		return fmt.Errorf("storm: TransportOptions.BatchSize must be ≥ 0 (0 selects the default %d, 1 disables batching), got %d", DefaultBatchSize, o.BatchSize)
	}
	return nil
}

// normalized resolves defaults and clamps nonsensical values.
func (o TransportOptions) normalized() TransportOptions {
	if o.BatchSize == 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BatchSize < 1 {
		o.BatchSize = 1
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.FlushInterval < 0 {
		o.FlushInterval = 0
	}
	return o
}

// batchPool recycles message vectors between receivers (which drain
// a vector and return it) and senders (which fill the next one): the
// boxed *[]message travels over the inbox channel, so the steady-state
// transport moves one pointer per flush and allocates nothing.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]message, 0, DefaultBatchSize)
		return &b
	},
}

func getBatch() *[]message {
	return batchPool.Get().(*[]message)
}

// putBatch returns a drained vector to the pool. Callers must have
// copied every event they keep: the backing array is reused by the
// next sender that flushes.
func putBatch(b *[]message) {
	batchPool.Put(b)
}

// vectorSink abstracts the delivery of one flushed message vector to
// one destination executor — the seam between the batching layer and
// the physical transport. chanSink hands the boxed vector to a local
// inbox channel; netSink (net.go) serializes it into a length-prefixed
// frame on the destination worker's TCP link. Everything above this
// interface (batching, combining, flush triggers, routing) is
// transport-agnostic.
type vectorSink interface {
	// deliver takes ownership of the boxed vector: the receiver (or
	// the sink itself, for transports that serialize) returns it to
	// the batch pool once consumed.
	deliver(b *[]message)
}

// chanSink is the in-process transport: a blocking channel send, so a
// full inbox applies backpressure exactly where the unbatched runtime
// blocked.
type chanSink struct {
	ch chan<- *[]message
}

func (s chanSink) deliver(b *[]message) { s.ch <- b }

// outBuf is one emitter's send buffer for one destination instance of
// one subscription. msgs is the working slice of box's backing array
// (kept unboxed so the append hot path skips a pointer chase); the
// two are reconciled at flush.
type outBuf struct {
	sink vectorSink
	// depth is the destination inbox's event-depth counter (see
	// runtimeComponent.depths); senders add at flush, receivers
	// subtract at dequeue, both only when observability is on. nil for
	// remote destinations: the receiving worker's dispatcher accounts
	// arrivals instead.
	depth *atomic.Int64
	box   *[]message
	msgs  []message
	// comb, when set, pre-aggregates this buffer's items per key
	// before they enter msgs (see combiner.go); nil on ordinary edges.
	comb *combBuf
	// colKind/colCh/colBuf are the columnar-edge state (cols.go):
	// colBuf accumulates typed rows for this destination and is sealed
	// into one cols message — carrying channel colCh — when full, or
	// when any boxed message (a marker in particular) must follow it.
	// colComb, when set, is the typed combining buffer the rows fold
	// through first; colCap is its drain threshold.
	colKind *stream.ColKind
	colCh   int
	colBuf  stream.Columns
	colComb stream.ColCombiner
	colCap  int
}

// push appends one routed message to its destination buffer, flushing
// the buffer when it reaches the batch size. On a combined edge,
// items are folded into the combining buffer instead; a marker drains
// it first so the partial aggregates stay inside their block.
func (em *emitter) push(r *routedMsg) {
	b := &em.bufs[em.bufBase[r.si]+r.target]
	if b.colComb != nil {
		if !r.e.IsMarker {
			em.colCombine(b, r.e)
			return
		}
		em.drainColComb(b)
	}
	if b.comb != nil {
		if !r.e.IsMarker {
			em.combine(b, r.e)
			return
		}
		em.drainComb(b)
	}
	em.append(b, message{ch: r.ch, ev: r.e, sent: em.now})
}

// append places one boxed message in a transport buffer, flushing at
// the batch size. Any open column buffer is sealed first, so the boxed
// message — a marker in particular — follows every row emitted before
// it on the channel.
func (em *emitter) append(b *outBuf, m message) {
	if b.colBuf != nil {
		em.sealCols(b)
	}
	em.appendRaw(b, m)
}

// appendRaw is append without the column-buffer seal — the shared tail
// of append and sealCols itself.
func (em *emitter) appendRaw(b *outBuf, m message) {
	if b.box == nil {
		b.box = getBatch()
		b.msgs = (*b.box)[:0]
	}
	b.msgs = append(b.msgs, m)
	em.pending++
	if len(b.msgs) >= em.batchSize {
		em.flushBuf(b)
	}
}

// pushEOS appends an end-of-stream notice for channel ch to buffer b,
// after any events still held by its combining, columnar or transport
// buffers.
func (em *emitter) pushEOS(b *outBuf, ch int) {
	em.drainColComb(b)
	em.sealCols(b)
	em.drainComb(b)
	if b.box == nil {
		b.box = getBatch()
		b.msgs = (*b.box)[:0]
	}
	b.msgs = append(b.msgs, message{ch: ch, eos: true})
	em.pending++
}

// flushBuf sends one buffer's accumulated vector through its sink (a
// blocking delivery: a full inbox — or a TCP link's backpressure —
// applies here, exactly where the unbatched transport blocked).
func (em *emitter) flushBuf(b *outBuf) {
	n := len(b.msgs)
	if n == 0 {
		return
	}
	if em.stamp && b.depth != nil {
		b.depth.Add(int64(n))
	}
	em.pending -= n
	*b.box = b.msgs
	b.sink.deliver(b.box)
	b.box, b.msgs = nil, nil
}

// flushAll drains every combining buffer (boxed and columnar), seals
// every open column buffer, flushes every non-empty transport buffer
// and clears the idle-flush deadline. This is the trigger behind
// blocks, EOS and the idle flush — after it returns, nothing the
// emitter sent is held back anywhere.
func (em *emitter) flushAll() {
	if em.cpending > 0 {
		for i := range em.bufs {
			em.drainComb(&em.bufs[i])
		}
	}
	if em.colpending > 0 {
		for i := range em.bufs {
			b := &em.bufs[i]
			em.drainColComb(b)
			em.sealCols(b)
		}
	}
	if em.pending > 0 {
		for i := range em.bufs {
			em.flushBuf(&em.bufs[i])
		}
	}
	em.oldest = time.Time{}
}

// tick is the idle-flush hook called between an executor's loop
// iterations. The first tick with pending output records the time;
// a later tick flushes once the interval has elapsed. With BatchSize
// 1 and no combined edges nothing is ever pending and tick never
// reads the clock.
func (em *emitter) tick() {
	if em.pending == 0 && em.cpending == 0 && em.colpending == 0 || em.flushEvery <= 0 {
		return
	}
	em.tickAt(time.Now())
}

// tickAt is tick with the caller's already-taken timestamp.
func (em *emitter) tickAt(now time.Time) {
	if em.pending == 0 && em.cpending == 0 && em.colpending == 0 || em.flushEvery <= 0 {
		return
	}
	if em.oldest.IsZero() {
		em.oldest = now
		return
	}
	if now.Sub(em.oldest) >= em.flushEvery {
		em.flushAll()
	}
}

// recvBatch receives the next message vector from inbox. When the
// executor has buffered output and an idle flush is configured, the
// wait is bounded: if nothing arrives within the flush interval the
// buffers are flushed and recvBatch returns nil (the caller retries),
// so a quiet input edge can never strand this executor's buffered
// output behind a blocking receive. Events held by combining buffers
// count as buffered output here too. On the hot path (nothing
// pending, or idle flush disabled) it is a plain channel receive.
func recvBatch(inbox <-chan *[]message, em *emitter) *[]message {
	if em.pending == 0 && em.cpending == 0 && em.colpending == 0 || em.flushEvery <= 0 {
		return <-inbox
	}
	t := time.NewTimer(em.flushEvery)
	defer t.Stop()
	select {
	case b := <-inbox:
		return b
	case <-t.C:
		em.flushAll()
		return nil
	}
}
