// Package storm is a distributed streaming runtime modelled on Apache
// Storm, the deployment platform of section 5 of the paper. It is the
// substitute substrate this reproduction runs on: a topology is a DAG
// of spouts (sources) and bolts (processing/sink vertices), each
// instantiated at a configurable parallelism; instances run as
// concurrent executors connected by bounded channels, and connections
// carry a grouping that says how tuples are partitioned among the
// consumer's instances (shuffle, fields, global, broadcast — Storm's
// groupings).
//
// Two deliberate departures from plain Storm implement the paper's
// section 5 machinery:
//
//   - Synchronization markers are always broadcast to every consumer
//     instance, whatever the grouping, so they can act as stream
//     punctuations.
//   - A connection may be declared marker-aligned, in which case the
//     receiving executor merges its input channels with the MRG
//     discipline (items of block i from every channel, then marker i).
//     The compiler in internal/compile emits marker-aligned edges; the
//     handcrafted baseline topologies use raw edges and do their own
//     synchronization, as hand-written Storm code would.
//
// The runtime interleaves executors nondeterministically — that is
// the point: semantics preservation must hold for every interleaving,
// and the tests assert trace equivalence, not sequence equality.
package storm

import (
	"fmt"
	"sync/atomic"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// Grouping is a stream partitioning strategy for a connection, as in
// Storm's stream groupings.
type Grouping int

const (
	// Shuffle distributes items over consumer instances round-robin
	// per producer (Storm's shuffle grouping, made deterministic per
	// sender).
	Shuffle Grouping = iota
	// Fields routes an item by the hash of its key, so all items with
	// one key reach one instance (Storm's fields grouping).
	Fields
	// Global sends every item to instance 0 (Storm's global grouping).
	Global
	// Broadcast replicates every item to all instances (Storm's all
	// grouping).
	Broadcast
)

// String renders the grouping name.
func (g Grouping) String() string {
	switch g {
	case Shuffle:
		return "shuffle"
	case Fields:
		return "fields"
	case Global:
		return "global"
	default:
		return "broadcast"
	}
}

// Spout is a source of events. Each spout instance owns one Spout
// value and calls Next until it returns false.
type Spout interface {
	// Next returns the next event, or ok=false when the source is
	// exhausted (which initiates topology shutdown).
	Next() (e stream.Event, ok bool)
}

// SpoutFunc adapts a function to a Spout.
type SpoutFunc func() (stream.Event, bool)

// Next implements Spout.
func (f SpoutFunc) Next() (stream.Event, bool) { return f() }

// SliceSpout replays a fixed event sequence.
func SliceSpout(events []stream.Event) SpoutFunc {
	i := 0
	return func() (stream.Event, bool) {
		if i >= len(events) {
			return stream.Event{}, false
		}
		e := events[i]
		i++
		return e, true
	}
}

// Bolt processes one event at a time and may emit any number of
// events. It is the same contract as core.Instance, so template
// instances plug in directly. A bolt instance is used by a single
// executor goroutine.
type Bolt interface {
	Next(e stream.Event, emit func(stream.Event))
}

// Flusher is an optional Bolt extension: Flush runs once when all of
// the instance's input channels have reached end-of-stream, before
// shutdown propagates downstream.
type Flusher interface {
	Flush(emit func(stream.Event))
}

// ChannelBolt is an optional Bolt extension for raw (non-aligned)
// inputs: NextFrom also receives the input channel index the event
// arrived on — the analogue of Storm's Tuple.getSourceTask(). Channel
// indexes enumerate (connection, producer instance) pairs in
// declaration order. Handcrafted topologies use this to implement
// their own marker synchronization; on aligned inputs the runtime's
// merger consumes channel identity, so Next is called instead.
type ChannelBolt interface {
	NextFrom(ch int, e stream.Event, emit func(stream.Event))
}

// BoltFunc adapts a function to a Bolt.
type BoltFunc func(e stream.Event, emit func(stream.Event))

// Next implements Bolt.
func (f BoltFunc) Next(e stream.Event, emit func(stream.Event)) { f(e, emit) }

// connection is one edge of the topology.
type connection struct {
	from     string
	grouping Grouping
	// aligned requests receiver-side MRG marker alignment across all
	// input channels of the consumer (all its connections jointly).
	aligned bool
	// combiner, when set, installs a sender-side combining buffer on
	// this edge (see BoltDecl.CombineWith and combiner.go).
	combiner *CombinerSpec
	// cols, when set, declares the edge columnar: items travel as
	// typed struct-of-arrays batches of this kind (see cols.go).
	// colComb, when set, installs a typed sender-side combining buffer
	// (the columnar counterpart of combiner; the two are exclusive).
	cols    *stream.ColKind
	colComb *ColCombinerSpec
}

// component is a spout or bolt declaration.
type component struct {
	name        string
	parallelism int
	spout       func(instance int) Spout
	bolt        func(instance int) Bolt
	inputs      []connection
	isSink      bool
}

// Serializer round-trips an event through a wire encoding, modelling
// the serialization boundary of an inter-worker connection (see
// internal/codec). A failure aborts the emitting executor.
type Serializer interface {
	RoundTrip(e stream.Event) (stream.Event, error)
}

// Topology is a declared (not yet running) dataflow of spouts and
// bolts — Storm's TopologyBuilder.
type Topology struct {
	name       string
	components map[string]*component
	order      []string
	// ChannelCap bounds executor inboxes (backpressure); 0 selects the
	// default of 1024. Each inbox slot holds one transport vector (up
	// to TransportOptions.BatchSize events), so the in-flight event
	// bound per edge is ChannelCap × BatchSize.
	ChannelCap  int
	hash        func(any) int
	serializer  func() Serializer
	workers     int
	faultPlan   *FaultPlan
	rescalePlan *RescalePlan
	autoscale   *AutoscalePolicy
	recovery    RecoveryPolicy
	obs         metrics.ObsConfig
	transport   TransportOptions
	// live is the stats collector of the current (or last) Run,
	// published at Run start so monitors can poll mid-run.
	live atomic.Pointer[metrics.Stats]
	// gate is the reconfiguration barrier of the current (or last) Run
	// (rescale.go), published at Run start so Rescale can reach it.
	gate atomic.Pointer[cutGate]
}

// NewTopology creates an empty topology.
func NewTopology(name string) *Topology {
	return &Topology{name: name, components: map[string]*component{}}
}

// SetHash overrides the key hash used by Fields groupings.
func (t *Topology) SetHash(h func(any) int) { t.hash = h }

// SetSerializer makes emitted events pass through a wire
// encode/decode round trip; the factory is invoked once per producer
// executor (so stream encoders can amortize type descriptions). nil
// disables serialization (the default). By default every send is
// serialized; combine with SetWorkers to serialize only sends that
// cross a worker boundary, as a real deployment would.
func (t *Topology) SetSerializer(factory func() Serializer) { t.serializer = factory }

// SetWorkers places executors onto n workers (round-robin in
// declaration order). Placement affects only the serialization
// boundary: with a serializer set, sends between executors on the
// same worker skip the wire format (in-process hand-off), sends
// across workers pay it — Storm's intra- vs inter-worker distinction.
// n ≤ 0 restores the default (every send serialized).
func (t *Topology) SetWorkers(n int) { t.workers = n }

// SetFaultPlan installs a deterministic failure schedule for the next
// Run (see FaultPlan). nil removes it.
func (t *Topology) SetFaultPlan(p *FaultPlan) { t.faultPlan = p }

// SetRescalePlan installs a scripted schedule of parallelism changes
// for the next Run (see RescalePlan). nil removes it.
func (t *Topology) SetRescalePlan(p *RescalePlan) { t.rescalePlan = p }

// SetAutoscale installs a feedback controller that rescales one bolt
// component from the run's backpressure signals (see AutoscalePolicy).
// nil removes it.
func (t *Topology) SetAutoscale(p *AutoscalePolicy) { t.autoscale = p }

// SetRecovery configures marker-cut checkpointing and executor
// restart (see RecoveryPolicy). The zero policy disables recovery.
func (t *Topology) SetRecovery(p RecoveryPolicy) { t.recovery = p }

// SetObservability configures the observability subsystem for the
// next Run: latency histograms, queue gauges, marker-lag tracking,
// span sampling and pprof executor labels. The zero config (the
// default) disables it all at zero per-event cost.
func (t *Topology) SetObservability(cfg metrics.ObsConfig) { t.obs = cfg }

// SetTransport configures the batched edge transport for the next Run
// (see TransportOptions). The zero value selects the defaults
// (BatchSize 64, FlushInterval 1ms); BatchSize 1 reproduces the
// unbatched one-send-per-event transport exactly.
func (t *Topology) SetTransport(o TransportOptions) { t.transport = o }

// LiveStats returns the stats collector of the running (or most
// recent) Run, or nil before the first Run. It is safe to poll from
// any goroutine while the topology runs; pair with Stats.Snapshot for
// a frozen view.
func (t *Topology) LiveStats() *metrics.Stats { return t.live.Load() }

// ComponentInfo describes one declared component, for tooling and
// fault-plan construction.
type ComponentInfo struct {
	Name        string
	Parallelism int
	// Kind is "spout", "bolt" or "sink".
	Kind string
}

// Components lists the declared components in declaration order.
func (t *Topology) Components() []ComponentInfo {
	out := make([]ComponentInfo, 0, len(t.order))
	for _, name := range t.order {
		c := t.components[name]
		kind := "bolt"
		switch {
		case c.spout != nil:
			kind = "spout"
		case c.isSink:
			kind = "sink"
		}
		out = append(out, ComponentInfo{Name: c.name, Parallelism: c.parallelism, Kind: kind})
	}
	return out
}

// Inputs lists the components feeding the named component, in
// declaration order of its input edges — for tooling and fault-plan
// construction (e.g. picking an edge to corrupt). Unknown names
// return nil.
func (t *Topology) Inputs(name string) []string {
	c, ok := t.components[name]
	if !ok {
		return nil
	}
	froms := make([]string, len(c.inputs))
	for i, in := range c.inputs {
		froms[i] = in.from
	}
	return froms
}

// AddSpout declares a source component with the given parallelism.
// The factory is called once per instance.
func (t *Topology) AddSpout(name string, parallelism int, factory func(instance int) Spout) {
	t.add(&component{name: name, parallelism: parallelism, spout: factory})
}

// BoltDecl configures a bolt's input connections fluently.
type BoltDecl struct {
	t *Topology
	c *component
}

// AddBolt declares a processing component; wire its inputs with the
// returned declaration's grouping methods.
func (t *Topology) AddBolt(name string, parallelism int, factory func(instance int) Bolt) *BoltDecl {
	c := &component{name: name, parallelism: parallelism, bolt: factory}
	t.add(c)
	return &BoltDecl{t: t, c: c}
}

// AddSink declares a single-instance bolt that records every event it
// receives; Run returns the recorded streams by sink name. Inputs are
// marker-aligned so the collected stream is a well-formed trace
// representative.
func (t *Topology) AddSink(name string, froms ...string) *BoltDecl {
	c := &component{name: name, parallelism: 1, isSink: true}
	t.add(c)
	d := &BoltDecl{t: t, c: c}
	for _, f := range froms {
		d.GlobalGrouping(f, true)
	}
	return d
}

// Decl re-opens the input declaration of an existing bolt so callers
// (notably the DAG compiler) can wire connections after creating all
// components. It panics if the component does not exist or is a spout.
func (t *Topology) Decl(name string) *BoltDecl {
	c, ok := t.components[name]
	if !ok || c.spout != nil {
		panic(fmt.Sprintf("storm: Decl(%q): no such bolt", name))
	}
	return &BoltDecl{t: t, c: c}
}

func (t *Topology) add(c *component) {
	if c.parallelism < 1 {
		c.parallelism = 1
	}
	if _, dup := t.components[c.name]; dup {
		panic(fmt.Sprintf("storm: duplicate component %q", c.name))
	}
	t.components[c.name] = c
	t.order = append(t.order, c.name)
}

// ShuffleGrouping subscribes the bolt to from with round-robin item
// distribution. aligned selects receiver-side marker alignment.
func (d *BoltDecl) ShuffleGrouping(from string, aligned bool) *BoltDecl {
	return d.input(from, Shuffle, aligned)
}

// FieldsGrouping subscribes the bolt to from with key-hash routing.
func (d *BoltDecl) FieldsGrouping(from string, aligned bool) *BoltDecl {
	return d.input(from, Fields, aligned)
}

// GlobalGrouping subscribes the bolt to from, sending everything to
// instance 0.
func (d *BoltDecl) GlobalGrouping(from string, aligned bool) *BoltDecl {
	return d.input(from, Global, aligned)
}

// BroadcastGrouping subscribes the bolt to from, replicating items to
// every instance.
func (d *BoltDecl) BroadcastGrouping(from string, aligned bool) *BoltDecl {
	return d.input(from, Broadcast, aligned)
}

func (d *BoltDecl) input(from string, g Grouping, aligned bool) *BoltDecl {
	d.c.inputs = append(d.c.inputs, connection{from: from, grouping: g, aligned: aligned})
	return d
}

// validate checks the declared topology: every input exists, no
// cycles, sinks have inputs, alignment is all-or-nothing per bolt.
func (t *Topology) validate() error {
	for _, name := range t.order {
		c := t.components[name]
		if c.spout != nil && len(c.inputs) > 0 {
			return fmt.Errorf("storm: spout %q cannot have inputs", name)
		}
		if c.spout == nil && len(c.inputs) == 0 {
			return fmt.Errorf("storm: bolt %q has no inputs", name)
		}
		aligned := 0
		for _, in := range c.inputs {
			src, ok := t.components[in.from]
			if !ok {
				return fmt.Errorf("storm: component %q subscribes to unknown component %q", name, in.from)
			}
			if src.isSink {
				return fmt.Errorf("storm: component %q subscribes to sink %q", name, in.from)
			}
			if in.aligned {
				aligned++
			}
			if in.combiner != nil {
				if err := in.combiner.validate(name, in.from, in.grouping); err != nil {
					return err
				}
				if in.cols != nil {
					return fmt.Errorf("storm: edge %s→%s mixes a boxed combiner with the columnar transport; use ColCombineWith", in.from, name)
				}
			}
			if in.colComb != nil {
				if err := in.colComb.validate(name, in.from, in.grouping); err != nil {
					return err
				}
				if in.cols != in.colComb.OutKind {
					return fmt.Errorf("storm: edge %s→%s declares column kind %v but its combiner drains %v", in.from, name, in.cols, in.colComb.OutKind)
				}
			}
		}
		if aligned != 0 && aligned != len(c.inputs) {
			return fmt.Errorf("storm: bolt %q mixes aligned and raw inputs", name)
		}
	}
	// Cycle check by Kahn's algorithm.
	indeg := map[string]int{}
	for _, name := range t.order {
		indeg[name] = len(t.components[name].inputs)
	}
	queue := []string{}
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	seen := 0
	downstream := map[string][]string{}
	for _, name := range t.order {
		for _, in := range t.components[name].inputs {
			downstream[in.from] = append(downstream[in.from], name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, d := range downstream[n] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(t.order) {
		return fmt.Errorf("storm: topology %q has a cycle", t.name)
	}
	return nil
}
