package storm

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// This file is the coordinator of the networked runtime. RunNetworked
// launches one worker process per placement slot, rendezvouses them
// (hello → start with the peer address table), collects the sink
// streams they report, and recovers from worker-process failure by
// restarting the whole cluster and splicing the new run's sink output
// onto the committed prefix at the last marker cut.
//
// The splice is sound for the topologies this runtime compiles:
// sources are deterministic replayable generators, markers punctuate
// every stream at fixed source positions, and a sink fed through an
// aligned merge sees exactly one marker per cut, so the multiset of
// sink events between consecutive markers is invariant across runs
// (stateless operators act item-wise, keyed state lives behind Fields
// grouping, and shuffle round-robin variance only redistributes work
// within a block). Committing a prefix at a marker boundary and
// replacing everything after it with the replay's output therefore
// yields a stream trace-equivalent to an uninterrupted run — the same
// argument the marker-cut recovery of the in-process runtime rests
// on, lifted to process granularity.

// KillPlan schedules one SIGKILL against a worker process: after the
// coordinator has committed AfterCuts marker cuts (summed over sinks)
// in the first attempt, Worker is killed. Used by the chaos tests to
// exercise process-level recovery deterministically.
type KillPlan struct {
	Worker    int
	AfterCuts int
}

// NetRescalePlan schedules one cluster-wide rescale: once the
// coordinator has committed AfterCuts marker cuts (summed over sinks,
// across attempts), the running attempt is aborted at that committed
// cut and every subsequent attempt is spawned with Spec as its
// DTT_NET_SPEC payload — the application-level description of the
// revised topology (new parallelism, hence a revised placement
// table). The committed prefix is kept and the replay-skip machinery
// splices the revised cluster's output onto it, exactly as for
// failure recovery: the cut boundary is a consistent configuration,
// so the same trace-equivalence argument applies. The abort is a
// planned reconfiguration, not a failure, and is not charged against
// MaxRestarts.
type NetRescalePlan struct {
	AfterCuts int
	Spec      string
}

// errRescale marks an attempt aborted for a planned reconfiguration
// rather than a worker failure.
var errRescale = errors.New("storm: attempt aborted for planned rescale")

// NetOptions configures a networked run.
type NetOptions struct {
	// Workers is the number of worker processes (≥ 1).
	Workers int
	// Command launches one worker: Command[0] is the binary, the rest
	// its arguments. Empty means re-exec this binary (os.Executable) —
	// the test-suite idiom, where TestMain detects the worker
	// environment and serves instead of running tests.
	Command []string
	// Env is the base environment of worker processes; nil means
	// inherit os.Environ(). The DTT_NET_* contract variables are
	// appended on top.
	Env []string
	// Spec is the opaque application payload passed to workers via
	// DTT_NET_SPEC; the worker main rebuilds its topology from it.
	Spec string
	// MaxRestarts bounds cluster restarts after worker-process failure
	// (0 means the default of 3; negative disables recovery).
	MaxRestarts int
	// AttemptTimeout bounds one attempt from spawn to all-done (0
	// means 2 minutes).
	AttemptTimeout time.Duration
	// Kill, when set, injects one worker kill (see KillPlan).
	Kill *KillPlan
	// Rescale, when set, schedules one cluster-wide rescale at a
	// committed cut (see NetRescalePlan).
	Rescale *NetRescalePlan
	// Logf receives coordinator lifecycle logging; nil discards.
	Logf func(format string, args ...any)

	// spawn overrides process launching — the unit-test seam that runs
	// "workers" as goroutines in this process. nil launches Command.
	spawn func(worker int, env map[string]string) (netProc, error)
}

// NetResult is the outcome of a networked run.
type NetResult struct {
	// Sinks maps each sink component to its spliced output stream:
	// committed prefixes of failed attempts joined with the final
	// attempt's tail.
	Sinks map[string][]stream.Event
	// Stats holds the per-executor counters reported by the workers of
	// the successful attempt.
	Stats *metrics.Stats
	// Wall is the real elapsed time including restarts.
	Wall time.Duration
	// WorkerRestarts counts cluster restarts performed after worker
	// failures.
	WorkerRestarts int
	// ReplayedCuts counts marker cuts that were re-received from
	// replaying attempts and skipped because they were already
	// committed.
	ReplayedCuts int
	// Rescaled reports whether the NetRescalePlan fired: the final
	// attempt ran with the revised spec.
	Rescaled bool
}

// netProc is a launched worker process as the coordinator sees it.
type netProc interface {
	Kill() error
	Wait() error
}

// osProc is the real-process implementation of netProc.
type osProc struct{ cmd *exec.Cmd }

func (p *osProc) Kill() error { return p.cmd.Process.Kill() }
func (p *osProc) Wait() error { return p.cmd.Wait() }

func spawnOS(command, env []string) func(worker int, extra map[string]string) (netProc, error) {
	return func(worker int, extra map[string]string) (netProc, error) {
		cmd := exec.Command(command[0], command[1:]...)
		base := env
		if base == nil {
			base = os.Environ()
		}
		cmd.Env = append(append([]string(nil), base...), flattenEnv(extra)...)
		// Worker diagnostics interleave on the coordinator's stderr.
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &osProc{cmd: cmd}, nil
	}
}

func flattenEnv(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, k+"="+v)
	}
	return out
}

// sinkState is the coordinator's committed/pending split of one
// sink's stream.
type sinkState struct {
	committed []stream.Event
	pending   []stream.Event
	cuts      int // markers committed
	skip      int // replay markers still to skip after a restart
}

// helloConn is an inbound control connection that has identified
// itself.
type helloConn struct {
	conn  net.Conn
	dec   *gob.Decoder
	hello netHello
}

// coordEvent is one occurrence the attempt loop reacts to.
type coordEvent struct {
	worker int
	sink   *netSinkData
	done   *netDone
	err    error
	exit   bool
}

// coordinator is the state of one RunNetworked call.
type coordinator struct {
	opts   NetOptions
	logf   func(string, ...any)
	ln     net.Listener
	helloc chan helloConn

	sinks        map[string]*sinkState
	sinkOrder    []string
	totalCuts    int // cuts committed during attempt 0 (kill trigger)
	killed       bool
	restarts     int
	replayedCuts int
	spec         string // current worker payload; replaced when the rescale fires
	rescaled     bool   // the NetRescalePlan has fired
	rescaleNow   bool   // abort the running attempt at this committed cut
}

const (
	defaultNetMaxRestarts   = 3
	defaultAttemptTimeout   = 2 * time.Minute
	workerExitGracePeriod   = 10 * time.Second
	coordHelloBacklogEvents = 16
)

// RunNetworked executes a networked run to completion and returns the
// spliced sink streams and worker-reported statistics. It fails after
// MaxRestarts cluster restarts, on a worker that reports an executor
// failure, or on an attempt timeout.
func RunNetworked(opts NetOptions) (*NetResult, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("storm: RunNetworked needs Workers ≥ 1, got %d", opts.Workers)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.spawn == nil {
		command := opts.Command
		if len(command) == 0 {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("storm: RunNetworked: resolving own binary for worker re-exec: %w", err)
			}
			command = []string{exe}
		}
		opts.spawn = spawnOS(command, opts.Env)
	}
	maxRestarts := opts.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = defaultNetMaxRestarts
	}
	if maxRestarts < 0 {
		maxRestarts = 0
	}
	if opts.AttemptTimeout == 0 {
		opts.AttemptTimeout = defaultAttemptTimeout
	}
	if opts.Kill != nil && (opts.Kill.Worker < 0 || opts.Kill.Worker >= opts.Workers) {
		return nil, fmt.Errorf("storm: KillPlan.Worker %d out of range for %d workers", opts.Kill.Worker, opts.Workers)
	}
	if opts.Rescale != nil {
		if opts.Rescale.AfterCuts < 1 {
			return nil, fmt.Errorf("storm: NetRescalePlan.AfterCuts must be ≥ 1, got %d", opts.Rescale.AfterCuts)
		}
		if opts.Rescale.Spec == "" {
			return nil, fmt.Errorf("storm: NetRescalePlan.Spec is empty: a rescale needs the revised topology payload")
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("storm: coordinator listen: %w", err)
	}
	defer ln.Close()
	r := &coordinator{
		opts:   opts,
		logf:   logf,
		ln:     ln,
		helloc: make(chan helloConn, coordHelloBacklogEvents),
		sinks:  map[string]*sinkState{},
		spec:   opts.Spec,
	}
	// One persistent accept loop across attempts: workers of any
	// attempt dial the same address; the attempt cookie in the hello
	// sorts stragglers out.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				dec := gob.NewDecoder(conn)
				var env netEnvelope
				if err := dec.Decode(&env); err != nil || env.Hello == nil {
					conn.Close()
					return
				}
				r.helloc <- helloConn{conn: conn, dec: dec, hello: *env.Hello}
			}(conn)
		}
	}()

	start := time.Now()
	var stats *metrics.Stats
	for attempt := 0; ; attempt++ {
		summaries, err := r.runAttempt(attempt)
		if err == nil {
			stats = rebuildStats(summaries)
			break
		}
		// A failed attempt's uncommitted tail is discarded; the next
		// attempt replays from the source and its stream is skipped up
		// to the committed cut of each sink.
		for _, ss := range r.sinks {
			ss.pending = nil
			ss.skip = ss.cuts
		}
		if errors.Is(err, errRescale) {
			// Planned reconfiguration: the next attempt runs the revised
			// spec, splicing onto the committed prefix like a recovery
			// replay — but the abort is not charged against MaxRestarts.
			r.spec = r.opts.Rescale.Spec
			logf("storm: rescale plan firing at %d committed cuts; restarting cluster with revised spec", r.totalCommitted())
			continue
		}
		r.restarts++
		if r.restarts > maxRestarts {
			return nil, fmt.Errorf("storm: networked run failed after %d restarts: %w", r.restarts-1, err)
		}
		logf("storm: attempt %d failed (%v); restarting cluster (restart %d/%d)", attempt, err, r.restarts, maxRestarts)
	}
	wall := time.Since(start)
	stats.Normalize(wall)

	res := &NetResult{
		Sinks:          map[string][]stream.Event{},
		Stats:          stats,
		Wall:           wall,
		WorkerRestarts: r.restarts,
		ReplayedCuts:   r.replayedCuts,
		Rescaled:       r.rescaled,
	}
	for _, name := range r.sinkOrder {
		ss := r.sinks[name]
		out := make([]stream.Event, 0, len(ss.committed)+len(ss.pending))
		out = append(out, ss.committed...)
		out = append(out, ss.pending...)
		res.Sinks[name] = out
	}
	return res, nil
}

// runAttempt runs one full cluster attempt: spawn, rendezvous, stream
// sink data, collect dones, shut down. It returns the workers' final
// executor summaries on success.
func (r *coordinator) runAttempt(attempt int) ([]netSummary, error) {
	W := r.opts.Workers
	evc := make(chan coordEvent, 4*W)
	stop := make(chan struct{})
	defer close(stop)

	procs := make([]netProc, W)
	conns := make([]net.Conn, W)
	encs := make([]*gob.Encoder, W)
	exited := make([]bool, W)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	killAll := func() {
		for i, p := range procs {
			if p != nil && !exited[i] {
				_ = p.Kill()
			}
		}
	}
	// drainExits collects process-exit events until every spawned
	// worker is accounted for or the grace period lapses. It returns
	// the first nonzero-exit error (which, on the success path, is how
	// a worker-side -race detector failure or panic surfaces even
	// after a clean Done).
	drainExits := func(grace time.Duration, wantClean bool) error {
		deadline := time.NewTimer(grace)
		defer deadline.Stop()
		var firstErr error
		for {
			remaining := 0
			for i, p := range procs {
				if p != nil && !exited[i] {
					remaining++
				}
			}
			if remaining == 0 {
				return firstErr
			}
			select {
			case ev := <-evc:
				if !ev.exit {
					continue // late sink/done traffic after the verdict
				}
				exited[ev.worker] = true
				if ev.err != nil && wantClean && firstErr == nil {
					firstErr = fmt.Errorf("worker %d exited uncleanly: %w", ev.worker, ev.err)
				}
			case <-deadline.C:
				killAll()
				if wantClean && firstErr == nil {
					firstErr = fmt.Errorf("workers still running %v after shutdown", grace)
				}
				// One more bounded pass so the monitors observe the kills.
				if firstErr != nil {
					return firstErr
				}
				return nil
			}
		}
	}
	fail := func(cause error) ([]netSummary, error) {
		killAll()
		_ = drainExits(workerExitGracePeriod, false)
		return nil, cause
	}

	env := map[string]string{
		EnvCoordAddr: r.ln.Addr().String(),
		EnvWorkers:   strconv.Itoa(W),
		EnvAttempt:   strconv.Itoa(attempt),
		EnvSpec:      r.spec,
	}
	for i := 0; i < W; i++ {
		env[EnvWorkerID] = strconv.Itoa(i)
		p, err := r.opts.spawn(i, copyEnv(env))
		if err != nil {
			return fail(fmt.Errorf("spawning worker %d: %w", i, err))
		}
		procs[i] = p
		go func(i int, p netProc) {
			err := p.Wait()
			select {
			case evc <- coordEvent{worker: i, exit: true, err: err}:
			case <-stop:
			}
		}(i, p)
	}
	r.logf("storm: attempt %d: %d workers spawned, coordinator %s", attempt, W, r.ln.Addr())

	timeout := time.NewTimer(r.opts.AttemptTimeout)
	defer timeout.Stop()

	// Rendezvous: wait for every worker of this attempt to check in.
	peers := make([]string, W)
	helloed := 0
	for helloed < W {
		select {
		case hc := <-r.helloc:
			if hc.hello.Attempt != attempt || hc.hello.Worker < 0 || hc.hello.Worker >= W || conns[hc.hello.Worker] != nil {
				hc.conn.Close() // straggler from a killed attempt, or nonsense
				continue
			}
			conns[hc.hello.Worker] = hc.conn
			encs[hc.hello.Worker] = gob.NewEncoder(hc.conn)
			peers[hc.hello.Worker] = hc.hello.DataAddr
			helloed++
			go readCtrl(hc.hello.Worker, hc.dec, evc, stop)
		case ev := <-evc:
			if ev.exit {
				exited[ev.worker] = true
				return fail(fmt.Errorf("worker %d exited before rendezvous: %v", ev.worker, ev.err))
			}
		case <-timeout.C:
			return fail(fmt.Errorf("rendezvous timeout: %d/%d workers checked in after %v", helloed, W, r.opts.AttemptTimeout))
		}
	}
	for i := 0; i < W; i++ {
		if err := encs[i].Encode(netEnvelope{Start: &netStart{Peers: peers}}); err != nil {
			return fail(fmt.Errorf("starting worker %d: %w", i, err))
		}
	}

	// Main loop: sink traffic and completion reports.
	var summaries []netSummary
	doneCount := 0
	for doneCount < W {
		select {
		case ev := <-evc:
			switch {
			case ev.sink != nil:
				r.onSink(attempt, ev.sink, procs, exited)
				if r.rescaleNow {
					// The cut the plan names is committed; tear the
					// attempt down here so the next one — with the revised
					// spec — replays and splices onto that prefix.
					r.rescaleNow = false
					return fail(errRescale)
				}
			case ev.done != nil:
				if ev.done.Failure != "" {
					return fail(fmt.Errorf("worker %d reported failure: %s", ev.worker, ev.done.Failure))
				}
				summaries = append(summaries, ev.done.Summaries...)
				doneCount++
			case ev.exit:
				exited[ev.worker] = true
				return fail(fmt.Errorf("worker %d died mid-run: %v", ev.worker, ev.err))
			case ev.err != nil:
				return fail(fmt.Errorf("control connection of worker %d: %w", ev.worker, ev.err))
			}
		case <-timeout.C:
			return fail(fmt.Errorf("attempt timeout: %d/%d workers done after %v", doneCount, W, r.opts.AttemptTimeout))
		}
	}

	// All done: release the workers and insist on clean exits (a
	// worker that panics after Done, or whose race detector trips at
	// exit, fails the run here).
	for i := 0; i < W; i++ {
		_ = encs[i].Encode(netEnvelope{Shutdown: true})
	}
	if err := drainExits(workerExitGracePeriod, true); err != nil {
		return nil, err
	}
	r.logf("storm: attempt %d complete: %d cuts committed", attempt, r.totalCommitted())
	return summaries, nil
}

// readCtrl relays one worker's control messages to the attempt loop.
func readCtrl(worker int, dec *gob.Decoder, evc chan<- coordEvent, stop <-chan struct{}) {
	for {
		var env netEnvelope
		if err := dec.Decode(&env); err != nil {
			// EOF after Done is the normal hang-up; the attempt loop
			// ignores late errors once the verdict is in.
			select {
			case evc <- coordEvent{worker: worker, err: err}:
			case <-stop:
			}
			return
		}
		var ev coordEvent
		switch {
		case env.Sink != nil:
			ev = coordEvent{worker: worker, sink: env.Sink}
		case env.Done != nil:
			ev = coordEvent{worker: worker, done: env.Done}
		default:
			continue
		}
		select {
		case evc <- ev:
		case <-stop:
			return
		}
		if env.Done != nil {
			return
		}
	}
}

// onSink folds one streamed slice of sink output into the committed/
// pending split, committing at each marker and firing the kill plan
// when its cut threshold is reached.
func (r *coordinator) onSink(attempt int, data *netSinkData, procs []netProc, exited []bool) {
	ss := r.sinks[data.Sink]
	if ss == nil {
		ss = &sinkState{}
		r.sinks[data.Sink] = ss
		r.sinkOrder = append(r.sinkOrder, data.Sink)
	}
	for _, we := range data.Events {
		e := we.Event()
		if ss.skip > 0 {
			// Replay of an already-committed block: drop it, counting
			// cut boundaries so the splice point lines up.
			if e.IsMarker {
				ss.skip--
				r.replayedCuts++
			}
			continue
		}
		ss.pending = append(ss.pending, e)
		if !e.IsMarker {
			continue
		}
		ss.committed = append(ss.committed, ss.pending...)
		ss.pending = ss.pending[:0]
		ss.cuts++
		if rp := r.opts.Rescale; rp != nil && !r.rescaled && r.totalCommitted() >= rp.AfterCuts {
			// Fires on whichever attempt commits the named cut, once:
			// a kill-induced restart may delay it past attempt 0.
			r.rescaled = true
			r.rescaleNow = true
			return
		}
		if attempt == 0 {
			r.totalCuts++
			if k := r.opts.Kill; k != nil && !r.killed && r.totalCuts >= k.AfterCuts {
				r.killed = true
				r.logf("storm: kill plan firing: killing worker %d after %d committed cuts", k.Worker, r.totalCuts)
				if procs[k.Worker] != nil && !exited[k.Worker] {
					_ = procs[k.Worker].Kill()
				}
			}
		}
	}
}

func (r *coordinator) totalCommitted() int {
	n := 0
	for _, ss := range r.sinks {
		n += ss.cuts
	}
	return n
}

// rebuildStats reconstructs a metrics.Stats from the workers' final
// summaries.
func rebuildStats(summaries []netSummary) *metrics.Stats {
	stats := metrics.NewStats()
	for _, s := range summaries {
		is := stats.Instance(s.Component, s.Instance)
		is.AddExecuted(s.Executed)
		is.AddEmitted(s.Emitted)
		is.AddBusy(time.Duration(s.BusyNs))
		is.AddRestarts(s.Restarts)
		is.AddReplayed(s.Replayed)
		is.AddDropped(s.Dropped)
		is.AddCombinedIn(s.CombIn)
		is.AddCombinedOut(s.CombOut)
		is.AddCuts(s.Cuts)
	}
	return stats
}

func copyEnv(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
