package storm

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// message is one unit on an executor's inbox: an event tagged with
// the receiver-side input channel it arrived on, or an end-of-stream
// notice for that channel.
type message struct {
	ch  int
	ev  stream.Event
	eos bool
}

const defaultChannelCap = 1024

// Result is the outcome of running a topology to completion.
type Result struct {
	// Sinks maps each sink component's name to the event sequence it
	// collected (a representative of the output data trace).
	Sinks map[string][]stream.Event
	// Stats holds per-instance execution metrics for throughput and
	// scaling analysis.
	Stats *metrics.Stats
	// Wall is the real elapsed time of the run.
	Wall time.Duration
}

// subscription is a resolved outgoing edge of a component.
type subscription struct {
	to       *runtimeComponent
	grouping Grouping
	// chBase is the receiver-side channel index of the sender's
	// instance 0 for this edge; instance k uses chBase + k.
	chBase int
}

// runtimeComponent is a component with resolved wiring.
type runtimeComponent struct {
	*component
	inboxes           []chan message
	subs              []subscription
	nChannels         int // receiver-side input channel count
	aligned           bool
	serializerFactory func() Serializer
	// workerOf[i] is the worker hosting instance i (-1: no placement,
	// every serialized send pays the wire format).
	workerOf []int
	sinkMu   sync.Mutex
	sinkOut  []stream.Event
}

// Run executes the topology to completion: every spout is drained,
// end-of-stream propagates through the DAG, and all executors exit.
// It returns the sinks' collected streams and execution statistics.
func (t *Topology) Run() (*Result, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	cap := t.ChannelCap
	if cap <= 0 {
		cap = defaultChannelCap
	}
	hash := t.hash
	if hash == nil {
		hash = stream.DefaultHash
	}

	// Resolve components and receiver channel layouts.
	rts := make(map[string]*runtimeComponent, len(t.order))
	for _, name := range t.order {
		c := t.components[name]
		rc := &runtimeComponent{component: c}
		rc.inboxes = make([]chan message, c.parallelism)
		for i := range rc.inboxes {
			rc.inboxes[i] = make(chan message, cap)
		}
		offset := 0
		for _, in := range c.inputs {
			offset += t.components[in.from].parallelism
			if in.aligned {
				rc.aligned = true
			}
		}
		rc.nChannels = offset
		rc.serializerFactory = t.serializer
		rc.workerOf = make([]int, c.parallelism)
		for i := range rc.workerOf {
			rc.workerOf[i] = -1
		}
		rts[name] = rc
	}
	if t.workers > 0 {
		// Round-robin executor placement in declaration order.
		gi := 0
		for _, name := range t.order {
			rc := rts[name]
			for i := range rc.workerOf {
				rc.workerOf[i] = gi % t.workers
				gi++
			}
		}
	}
	// Resolve senders' subscription tables.
	for _, name := range t.order {
		rc := rts[name]
		offset := 0
		for _, in := range rc.inputs {
			src := rts[in.from]
			src.subs = append(src.subs, subscription{to: rc, grouping: in.grouping, chBase: offset})
			offset += src.parallelism
		}
	}

	stats := metrics.NewStats()
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failures []error
	start := time.Now()
	for _, name := range t.order {
		rc := rts[name]
		for i := 0; i < rc.parallelism; i++ {
			wg.Add(1)
			is := stats.Instance(rc.name, i)
			go func(rc *runtimeComponent, i int) {
				defer wg.Done()
				var err error
				if rc.spout != nil {
					err = runSpout(rc, i, is, hash)
				} else {
					err = runBolt(rc, i, is, hash)
				}
				if err != nil {
					failMu.Lock()
					failures = append(failures, err)
					failMu.Unlock()
				}
			}(rc, i)
		}
	}
	wg.Wait()
	wall := time.Since(start)
	stats.Normalize(wall)
	res := &Result{Sinks: map[string][]stream.Event{}, Stats: stats, Wall: wall}
	for _, name := range t.order {
		rc := rts[name]
		if rc.isSink {
			res.Sinks[rc.name] = rc.sinkOut
		}
	}
	if len(failures) > 0 {
		msgs := make([]string, len(failures))
		for i, f := range failures {
			msgs[i] = f.Error()
		}
		return res, fmt.Errorf("storm: topology failed: %s", strings.Join(msgs, "; "))
	}
	return res, nil
}

// emitter routes one sender instance's output events to subscribers.
type emitter struct {
	rc       *runtimeComponent
	instance int
	hash     func(any) int
	// rrNext is the per-subscription round-robin cursor.
	rrNext []int
	stats  *metrics.InstanceStats
	// ser, when set, round-trips emitted events through the wire
	// encoding (per send; skipped for same-worker destinations when
	// placement is set).
	ser Serializer
	// worker is this executor's worker, or -1 without placement.
	worker int
}

func newEmitter(rc *runtimeComponent, instance int, is *metrics.InstanceStats, hash func(any) int) *emitter {
	em := &emitter{rc: rc, instance: instance, hash: hash, rrNext: make([]int, len(rc.subs)), stats: is, worker: rc.workerOf[instance]}
	if rc.serializerFactory != nil && len(rc.subs) > 0 {
		em.ser = rc.serializerFactory()
	}
	return em
}

// send delivers one event to a consumer instance, paying the wire
// format when the hop crosses a worker boundary (or unconditionally
// when no placement is configured).
func (em *emitter) send(sub *subscription, target int, ch int, e stream.Event) {
	if em.ser != nil && (em.worker < 0 || em.worker != sub.to.workerOf[target]) {
		roundTripped, err := em.ser.RoundTrip(e)
		if err != nil {
			panic(err) // converted to an executor failure by guard
		}
		e = roundTripped
	}
	sub.to.inboxes[target] <- message{ch: ch, ev: e}
}

func (em *emitter) emit(e stream.Event) {
	em.stats.Emitted++
	for si := range em.rc.subs {
		sub := &em.rc.subs[si]
		ch := sub.chBase + em.instance
		if e.IsMarker {
			// Markers are always broadcast so they reach every
			// consumer instance and can act as punctuations.
			for k := range sub.to.inboxes {
				em.send(sub, k, ch, e)
			}
			continue
		}
		switch sub.grouping {
		case Shuffle:
			k := em.rrNext[si]
			em.rrNext[si] = (k + 1) % len(sub.to.inboxes)
			em.send(sub, k, ch, e)
		case Fields:
			em.send(sub, em.hash(e.Key)%len(sub.to.inboxes), ch, e)
		case Global:
			em.send(sub, 0, ch, e)
		case Broadcast:
			for k := range sub.to.inboxes {
				em.send(sub, k, ch, e)
			}
		}
	}
}

// eos notifies every downstream instance that this sender instance's
// channel has ended.
func (em *emitter) eos() {
	for si := range em.rc.subs {
		sub := &em.rc.subs[si]
		ch := sub.chBase + em.instance
		for _, inbox := range sub.to.inboxes {
			inbox <- message{ch: ch, eos: true}
		}
	}
}

// guard runs fn, converting a panic into an error so the topology can
// shut down cleanly (the failed executor stops processing but still
// participates in end-of-stream propagation).
func guard(component string, instance int, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("storm: executor %s[%d] panicked: %v", component, instance, r)
		}
	}()
	fn()
	return nil
}

func runSpout(rc *runtimeComponent, instance int, is *metrics.InstanceStats, hash func(any) int) error {
	em := newEmitter(rc, instance, is, hash)
	err := guard(rc.name, instance, func() {
		spout := rc.spout(instance)
		for {
			t0 := time.Now()
			e, ok := spout.Next()
			if !ok {
				is.Busy += time.Since(t0)
				break
			}
			is.Executed++
			em.emit(e)
			is.Busy += time.Since(t0)
		}
	})
	em.eos()
	return err
}

func runBolt(rc *runtimeComponent, instance int, is *metrics.InstanceStats, hash func(any) int) error {
	em := newEmitter(rc, instance, is, hash)
	var bolt Bolt
	if rc.isSink {
		bolt = BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			rc.sinkMu.Lock()
			rc.sinkOut = append(rc.sinkOut, e)
			rc.sinkMu.Unlock()
		})
	} else {
		bolt = rc.bolt(instance)
	}

	var merge *stream.MergeState
	if rc.aligned {
		merge = stream.NewMergeState(rc.nChannels)
	}
	emitFn := em.emit // one method-value closure per executor, not per event
	deliver := func(e stream.Event) {
		is.Executed++
		bolt.Next(e, emitFn)
	}
	chBolt, chAware := bolt.(ChannelBolt)
	eosLeft := rc.nChannels
	inbox := rc.inboxes[instance]
	var err error
	for eosLeft > 0 {
		m := <-inbox
		if m.eos {
			eosLeft--
			continue
		}
		if err != nil {
			continue // failed executor keeps draining to its EOS
		}
		err = guard(rc.name, instance, func() {
			t0 := time.Now()
			switch {
			case merge != nil:
				merge.Next(m.ch, m.ev, deliver)
			case chAware:
				is.Executed++
				chBolt.NextFrom(m.ch, m.ev, emitFn)
			default:
				deliver(m.ev)
			}
			is.Busy += time.Since(t0)
		})
	}
	if err == nil {
		err = guard(rc.name, instance, func() {
			t0 := time.Now()
			if merge != nil {
				// Items of the final incomplete block (after the last
				// marker on every channel) are delivered unaligned at
				// shutdown.
				for _, e := range merge.Trailing() {
					deliver(e)
				}
			}
			if f, ok := bolt.(Flusher); ok {
				f.Flush(emitFn)
			}
			is.Busy += time.Since(t0)
		})
	}
	em.eos()
	return err
}

// String renders the topology's structure for debugging.
func (t *Topology) String() string {
	s := fmt.Sprintf("topology %s:\n", t.name)
	for _, name := range t.order {
		c := t.components[name]
		kind := "bolt"
		if c.spout != nil {
			kind = "spout"
		}
		if c.isSink {
			kind = "sink"
		}
		s += fmt.Sprintf("  %s %s ×%d", kind, name, c.parallelism)
		for _, in := range c.inputs {
			al := ""
			if in.aligned {
				al = ",aligned"
			}
			s += fmt.Sprintf(" ← %s(%s%s)", in.from, in.grouping, al)
		}
		s += "\n"
	}
	return s
}
