package storm

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// message is one unit of executor input: an event tagged with the
// receiver-side input channel it arrived on, a typed column batch for
// that channel, or an end-of-stream notice for it. Messages travel in
// vectors — the batched edge transport (transport.go) groups them per
// destination — and receivers unpack a vector one message at a time.
type message struct {
	ch  int
	ev  stream.Event
	eos bool
	// cols, when set, makes this message a column batch of items only
	// (markers never enter batches; see cols.go) and ev is unused. The
	// receiver owns the batch and releases it after consumption.
	cols stream.Columns
	// sent is the send wall time (UnixNano) when observability is
	// enabled, 0 otherwise; receivers derive emit-to-receive inbox
	// latency from it.
	sent int64
}

const defaultChannelCap = 1024

// queueObsEvery is the sampling period of the queue-side observations
// (inbox depth gauge and emit-to-receive latency): every Nth received
// message pays the two gauge updates, keeping the backpressure signal
// representative while the per-message hot-path cost stays at the
// per-event execute histogram alone.
const queueObsEvery = 8

// Result is the outcome of running a topology to completion.
type Result struct {
	// Sinks maps each sink component's name to the event sequence it
	// collected (a representative of the output data trace).
	Sinks map[string][]stream.Event
	// Stats holds per-instance execution metrics for throughput and
	// scaling analysis.
	Stats *metrics.Stats
	// Wall is the real elapsed time of the run.
	Wall time.Duration
}

// subscription is a resolved outgoing edge of a component.
type subscription struct {
	to       *runtimeComponent
	grouping Grouping
	// chBase is the receiver-side channel index of the sender's
	// instance 0 for this edge; instance k uses chBase + k.
	chBase int
	// combiner, when set, pre-aggregates this edge's traffic in the
	// sender's combining buffers (see combiner.go).
	combiner *CombinerSpec
	// cols, when set, declares the edge columnar: items travel as
	// typed batches of this kind (see cols.go). colComb, when set, is
	// the typed sender-side combining pass the rows fold through.
	cols    *stream.ColKind
	colComb *ColCombinerSpec
}

// runtimeComponent is a component with resolved wiring.
type runtimeComponent struct {
	*component
	// inboxes[i] is instance i's input channel; nil when the instance
	// is placed on another worker process (its traffic travels the
	// networked transport instead). The slice always has parallelism
	// entries so routing arithmetic is placement-blind.
	inboxes []chan *[]message
	// depths[i] is inbox i's depth in *events* (a channel slot holds a
	// whole vector, so len(inbox) alone under-counts): senders add a
	// vector's length at flush, the receiver subtracts it at dequeue.
	// Maintained only when observability is enabled; feeds the sampled
	// queue-depth gauge.
	depths            []atomic.Int64
	subs              []subscription
	nChannels         int // receiver-side input channel count
	aligned           bool
	transport         TransportOptions // normalized at Run
	serializerFactory func() Serializer
	// workerOf[i] is the worker hosting instance i (-1: no placement,
	// every serialized send pays the wire format).
	workerOf []int
	// gids[i] is instance i's global executor index (declaration
	// order) — the frame destination id of the networked transport.
	gids []int
	// net is the hosting worker's networked-transport state; nil in
	// the single-process runtime.
	net *workerNet
	// sinkTap, when set on a sink component, observes every recorded
	// event in arrival order (under sinkMu); the networked worker uses
	// it to stream sink output to the coordinator.
	sinkTap func(e stream.Event)
	sinkMu  sync.Mutex
	sinkOut []stream.Event
}

// localInst reports whether instance i runs in this process.
func (rc *runtimeComponent) localInst(i int) bool {
	return rc.net == nil || rc.workerOf[i] == rc.net.self
}

// appendSink records events a sink instance received, feeding the
// worker's sink tap when one is installed.
func (rc *runtimeComponent) appendSink(events ...stream.Event) {
	rc.sinkMu.Lock()
	rc.sinkOut = append(rc.sinkOut, events...)
	if rc.sinkTap != nil {
		for _, e := range events {
			rc.sinkTap(e)
		}
	}
	rc.sinkMu.Unlock()
}

// Placed is one executor's process placement.
type Placed struct {
	Component string
	Instance  int
	// Worker is the hosting worker (round-robin over executors in
	// declaration order, the placement SetWorkers and the networked
	// runtime share).
	Worker int
	// GID is the executor's global index in declaration order — the
	// destination id carried by networked transport frames.
	GID int
}

// Placement returns the executor placement for the given worker
// count: executors enumerated in declaration order, instance-major,
// each assigned to worker GID mod workers. Every process computes the
// identical table, which is what lets workers resolve frame
// destinations without a placement exchange.
func (t *Topology) Placement(workers int) []Placed {
	if workers < 1 {
		workers = 1
	}
	var out []Placed
	gi := 0
	for _, name := range t.order {
		c := t.components[name]
		for i := 0; i < c.parallelism; i++ {
			out = append(out, Placed{Component: name, Instance: i, Worker: gi % workers, GID: gi})
			gi++
		}
	}
	return out
}

// Run executes the topology to completion: every spout is drained,
// end-of-stream propagates through the DAG, and all executors exit.
// It returns the sinks' collected streams and execution statistics.
func (t *Topology) Run() (*Result, error) {
	rts, err := t.resolve(nil)
	if err != nil {
		return nil, err
	}
	return t.execute(rts)
}

// resolve validates the topology and builds the runtime wiring. w is
// the networked worker context, nil in the single-process runtime:
// with w set, only instances placed on worker w.self get inboxes (and
// are registered with w's frame dispatcher); remote instances appear
// in the wiring as frame destinations.
func (t *Topology) resolve(w *workerNet) (map[string]*runtimeComponent, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	if err := t.transport.Validate(); err != nil {
		return nil, err
	}
	if t.faultPlan != nil {
		if err := t.faultPlan.validate(t); err != nil {
			return nil, err
		}
	}
	if t.rescalePlan != nil {
		if w != nil {
			return nil, fmt.Errorf("storm: rescale plans run in the coordinator process (use NetOptions.Rescale for networked runs)")
		}
		if err := t.rescalePlan.validate(t); err != nil {
			return nil, err
		}
	}
	if t.autoscale != nil {
		if w != nil {
			return nil, fmt.Errorf("storm: autoscaling runs in the coordinator process, not inside a networked worker")
		}
		if err := t.autoscale.validate(t); err != nil {
			return nil, err
		}
	}
	cap := t.ChannelCap
	if cap <= 0 {
		cap = defaultChannelCap
	}
	tr := t.transport.normalized()
	workers := t.workers
	if w != nil {
		workers = w.workers
	}

	// Resolve components and receiver channel layouts.
	rts := make(map[string]*runtimeComponent, len(t.order))
	gi := 0
	for _, name := range t.order {
		c := t.components[name]
		rc := &runtimeComponent{component: c, transport: tr, net: w}
		rc.inboxes = make([]chan *[]message, c.parallelism)
		rc.depths = make([]atomic.Int64, c.parallelism)
		rc.workerOf = make([]int, c.parallelism)
		rc.gids = make([]int, c.parallelism)
		for i := range rc.workerOf {
			rc.workerOf[i] = -1
			if workers > 0 {
				rc.workerOf[i] = gi % workers
			}
			rc.gids[i] = gi
			gi++
		}
		for i := range rc.inboxes {
			if !rc.localInst(i) {
				continue
			}
			rc.inboxes[i] = make(chan *[]message, cap)
			if w != nil {
				w.register(rc.gids[i], rc.inboxes[i], &rc.depths[i])
			}
		}
		offset := 0
		for _, in := range c.inputs {
			offset += t.components[in.from].parallelism
			if in.aligned {
				rc.aligned = true
			}
		}
		rc.nChannels = offset
		rc.serializerFactory = t.serializer
		rts[name] = rc
	}
	// Resolve senders' subscription tables.
	for _, name := range t.order {
		rc := rts[name]
		offset := 0
		for _, in := range rc.inputs {
			src := rts[in.from]
			src.subs = append(src.subs, subscription{to: rc, grouping: in.grouping, chBase: offset, combiner: in.combiner, cols: in.cols, colComb: in.colComb})
			offset += src.parallelism
		}
	}
	return rts, nil
}

// execute starts one executor goroutine per locally placed instance
// and waits for the DAG to drain.
func (t *Topology) execute(rts map[string]*runtimeComponent) (*Result, error) {
	hash := t.hash
	if hash == nil {
		hash = stream.DefaultHash
	}
	stats := metrics.NewStats()
	stats.SetObservability(t.obs)
	t.live.Store(stats)
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failures []error

	cg := newCutGate(t, rts, hash)
	t.gate.Store(cg)
	if t.rescalePlan != nil && !cg.supported {
		return nil, fmt.Errorf("storm: rescale plan: %s", cg.reason)
	}
	if t.autoscale != nil && !cg.supported {
		return nil, fmt.Errorf("storm: autoscale: %s", cg.reason)
	}

	// launch starts one executor goroutine. Rescales reuse it to spawn
	// the target's new instance set mid-run (g carries the seed).
	launch := func(rc *runtimeComponent, i int, g *execGate) {
		wg.Add(1)
		is := stats.Instance(rc.name, i)
		ef := t.faultPlan.faultsFor(rc.name, i)
		go func() {
			defer wg.Done()
			run := func() error {
				switch {
				case rc.spout != nil:
					return runSpout(rc, i, is, hash, ef, t.recovery, cg, g)
				case t.recovery.Enabled && rc.aligned:
					return runRecoverableBolt(rc, i, is, hash, ef, t.recovery, cg, g)
				default:
					return runBolt(rc, i, is, hash, ef, t.recovery)
				}
			}
			var err error
			if t.obs.Enabled {
				// Tag the executor goroutine so CPU profiles break
				// down by component/instance.
				labels := pprof.Labels("storm_component", rc.name, "storm_instance", strconv.Itoa(i))
				pprof.Do(context.Background(), labels, func(context.Context) { err = run() })
			} else {
				err = run()
			}
			if err != nil {
				failMu.Lock()
				failures = append(failures, err)
				failMu.Unlock()
			}
		}()
	}
	cg.spawn = func(rc *runtimeComponent, i int, g *execGate) { launch(rc, i, g) }
	cg.enqueuePlan(t.rescalePlan)

	// Two phases: every executor's barrier entry is registered before
	// any goroutine starts, so an early barrier cannot fire while the
	// membership is still growing.
	type pending struct {
		rc *runtimeComponent
		i  int
		g  *execGate
	}
	var toStart []pending
	for _, name := range t.order {
		rc := rts[name]
		for i := 0; i < rc.parallelism; i++ {
			if !rc.localInst(i) {
				continue
			}
			var g *execGate
			if cg.supported {
				g = cg.register(rc, i)
			}
			toStart = append(toStart, pending{rc, i, g})
		}
	}
	start := time.Now()
	for _, p := range toStart {
		launch(p.rc, p.i, p.g)
	}

	var autoDone chan struct{}
	var autoStop chan struct{}
	if t.autoscale != nil {
		autoStop, autoDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(autoDone)
			autoscaleLoop(t, cg, t.autoscale, autoStop)
		}()
	}
	wg.Wait()
	cg.shutdown()
	if autoDone != nil {
		close(autoStop)
		<-autoDone
	}
	failures = append(failures, cg.takePlanErrs()...)
	wall := time.Since(start)
	stats.Normalize(wall)
	res := &Result{Sinks: map[string][]stream.Event{}, Stats: stats, Wall: wall}
	for _, name := range t.order {
		rc := rts[name]
		if rc.isSink && rc.localInst(0) {
			res.Sinks[rc.name] = rc.sinkOut
		}
	}
	if len(failures) > 0 {
		msgs := make([]string, len(failures))
		for i, f := range failures {
			msgs[i] = f.Error()
		}
		return res, fmt.Errorf("storm: topology failed: %s", strings.Join(msgs, "; "))
	}
	return res, nil
}

// emitter routes one sender instance's output events to subscribers.
type emitter struct {
	rc       *runtimeComponent
	instance int
	hash     func(any) int
	// rrNext is the per-subscription round-robin cursor.
	rrNext []int
	stats  *metrics.InstanceStats
	// ser, when set, round-trips emitted events through the wire
	// encoding (per send; skipped for same-worker destinations when
	// placement is set).
	ser Serializer
	// worker is this executor's worker, or -1 without placement.
	worker int
	// faults, when set, injects serializer corruption on chosen edges.
	faults *executorFaults
	// stamp turns on send-time stamping of outgoing messages (queue
	// latency observability); derived from the executor's stats record.
	stamp bool
	// now is the executor's current message timestamp (UnixNano), set
	// once per processed input when stamp is on and reused for every
	// send — emitted messages carry it instead of paying time.Now per
	// emission. It under-reports the send time by at most the message's
	// own processing latency, which the exec histogram bounds. A
	// message buffered by the transport keeps the stamp of its emit, so
	// the receiver's queue latency includes buffered residency.
	now int64
	// scratch is the reused routing buffer of emit.
	scratch []routedMsg

	// Batched transport state (see transport.go). bufs holds one send
	// buffer per (subscription, destination instance), flattened;
	// bufBase[si] indexes subscription si's instance-0 buffer. pending
	// counts buffered messages across all bufs; cpending counts partial
	// aggregates held by boxed combining buffers (combiner.go);
	// colpending counts rows held by open column buffers plus keys held
	// by columnar combining buffers (cols.go); oldest is the idle-flush
	// deadline anchor (zero when nothing is pending).
	bufs       []outBuf
	bufBase    []int
	pending    int
	cpending   int
	colpending int
	oldest     time.Time
	batchSize  int
	flushEvery time.Duration
}

func newEmitter(rc *runtimeComponent, instance int, is *metrics.InstanceStats, hash func(any) int) *emitter {
	tr := rc.transport.normalized()
	em := &emitter{
		rc: rc, instance: instance, hash: hash,
		rrNext: make([]int, len(rc.subs)),
		stats:  is, worker: rc.workerOf[instance], stamp: is.ObsEnabled(),
		batchSize: tr.BatchSize, flushEvery: tr.FlushInterval,
	}
	if rc.serializerFactory != nil && len(rc.subs) > 0 {
		em.ser = rc.serializerFactory()
	}
	em.rebuildBufs()
	return em
}

// rebuildBufs derives the send-buffer table from the current wiring.
// Called at construction, and again by the executor after a rescale
// barrier: destination inbox sets and edge channel bases may have
// changed, and every buffer is empty at a barrier (markers flush),
// so rebuilding drops nothing.
func (em *emitter) rebuildBufs() {
	rc := em.rc
	em.bufBase = make([]int, len(rc.subs))
	n := 0
	for si := range rc.subs {
		em.bufBase[si] = n
		n += len(rc.subs[si].to.inboxes)
	}
	em.bufs = make([]outBuf, n)
	for si := range rc.subs {
		sub := &rc.subs[si]
		for k := range sub.to.inboxes {
			var b outBuf
			if sub.to.localInst(k) {
				b = outBuf{sink: chanSink{ch: sub.to.inboxes[k]}, depth: &sub.to.depths[k]}
			} else {
				b = outBuf{sink: rc.net.sinkTo(sub.to, k)}
			}
			if sub.combiner != nil {
				b.comb = &combBuf{spec: sub.combiner, ch: sub.chBase + em.instance, idx: map[any]int{}}
			}
			if sub.cols != nil {
				b.colKind = sub.cols
				b.colCh = sub.chBase + em.instance
			}
			if sub.colComb != nil {
				b.colComb = sub.colComb.New()
				b.colCap = sub.colComb.Cap
			}
			em.bufs[em.bufBase[si]+k] = b
		}
	}
}

// routedMsg is one event resolved to a concrete destination.
type routedMsg struct {
	sub    *subscription
	si     int // the subscription's index in rc.subs
	target int
	ch     int
	e      stream.Event
}

// route resolves the destinations of one emitted event, advancing the
// round-robin cursors, without serializing or sending.
func (em *emitter) route(e stream.Event, out []routedMsg) []routedMsg {
	em.stats.AddEmitted(1)
	for si := range em.rc.subs {
		sub := &em.rc.subs[si]
		ch := sub.chBase + em.instance
		if e.IsMarker {
			// Markers are always broadcast so they reach every
			// consumer instance and can act as punctuations.
			for k := range sub.to.inboxes {
				out = append(out, routedMsg{sub, si, k, ch, e})
			}
			continue
		}
		switch sub.grouping {
		case Shuffle:
			k := em.rrNext[si]
			em.rrNext[si] = (k + 1) % len(sub.to.inboxes)
			out = append(out, routedMsg{sub, si, k, ch, e})
		case Fields:
			out = append(out, routedMsg{sub, si, em.hash(e.Key) % len(sub.to.inboxes), ch, e})
		case Global:
			out = append(out, routedMsg{sub, si, 0, ch, e})
		case Broadcast:
			for k := range sub.to.inboxes {
				out = append(out, routedMsg{sub, si, k, ch, e})
			}
		}
	}
	return out
}

// wire applies the serialization boundary to one routed message in
// place, paying the wire format when the hop crosses a worker
// boundary (or unconditionally when no placement is configured). A
// serialization failure — or an injected corruption fault — panics
// and is converted to an executor failure by guard.
func (em *emitter) wire(r *routedMsg) {
	em.faults.onSend(em.rc.name, em.instance, r.sub.to.name)
	if em.ser != nil && (em.worker < 0 || em.worker != r.sub.to.workerOf[r.target]) {
		roundTripped, err := em.ser.RoundTrip(r.e)
		if err != nil {
			panic(err)
		}
		r.e = roundTripped
	}
}

func (em *emitter) emit(e stream.Event) {
	em.scratch = em.route(e, em.scratch[:0])
	for i := range em.scratch {
		r := &em.scratch[i]
		em.wire(r)
		em.push(r)
	}
	if e.IsMarker {
		// Markers flush everything: they punctuate every buffer (being
		// broadcast), and aligned consumers must not wait on a partial
		// batch to complete a cut.
		em.flushAll()
	}
}

// sendBlock delivers a block of emitted events transactionally:
// destinations are routed and serialized for every event before the
// first buffer append, so a serialization failure leaves nothing
// partially delivered and marker-cut recovery can regenerate the
// block without duplicating output downstream. The block is flushed
// when done — a committed cut leaves nothing buffered.
func (em *emitter) sendBlock(events []stream.Event) {
	batch := em.scratch[:0]
	for _, e := range events {
		batch = em.route(e, batch)
	}
	for i := range batch {
		em.wire(&batch[i])
	}
	for i := range batch {
		em.push(&batch[i])
	}
	// Keep the grown buffer for the next block (emit and sendBlock are
	// called from the same executor goroutine, never concurrently).
	em.scratch = batch[:0]
	em.flushAll()
}

// eos notifies every downstream instance that this sender instance's
// channel has ended: the notice is appended behind any still-buffered
// events and everything is flushed, so EOS is the last message each
// channel delivers.
func (em *emitter) eos() {
	for si := range em.rc.subs {
		sub := &em.rc.subs[si]
		ch := sub.chBase + em.instance
		for k := range sub.to.inboxes {
			em.pushEOS(&em.bufs[em.bufBase[si]+k], ch)
		}
	}
	em.flushAll()
}

// guard runs fn, converting a panic into an error so the topology can
// shut down cleanly (the failed executor stops processing but still
// participates in end-of-stream propagation).
func guard(component string, instance int, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("storm: executor %s[%d] panicked: %v", component, instance, r)
		}
	}()
	fn()
	return nil
}

func runSpout(rc *runtimeComponent, instance int, is *metrics.InstanceStats, hash func(any) int, ef *executorFaults, pol RecoveryPolicy, cg *cutGate, g *execGate) error {
	em := newEmitter(rc, instance, is, hash)
	em.faults = ef
	if g != nil {
		g.em = em
		defer cg.leave(g)
	}
	// mark records one emitted (and flushed) marker: a completed cut
	// from the source's point of view, and the spout's barrier entry
	// point — after the marker every buffer of this emitter is empty.
	mark := func() {
		is.AddCuts(1)
		if g != nil {
			cg.cutDone(g)
		}
	}
	err := guard(rc.name, instance, func() {
		spout := rc.spout(instance)
		if em.stamp {
			// Observability needs exact per-event latency: one clock
			// read per iteration (each loop's end time is the next
			// loop's start, as exact as two reads at half the cost).
			t0 := time.Now()
			for {
				em.now = t0.UnixNano()
				// Idle flush between Next calls: a throttled spout
				// parked inside Next cannot flush, but one that merely
				// produces slower than BatchSize per interval bounds its
				// residency here.
				em.tickAt(t0)
				e, ok := spout.Next()
				if !ok {
					is.AddBusy(time.Since(t0))
					break
				}
				is.AddExecuted(1)
				ef.onEvent(rc.name, instance)
				em.emit(e)
				if e.IsMarker {
					mark()
				}
				t1 := time.Now()
				d := t1.Sub(t0)
				is.AddBusy(d)
				is.ObserveExec(t0, d)
				t0 = t1
			}
			return
		}
		// Columnar fast path (observability off): a ColSpout fills typed
		// batches directly — no per-event boxing, one emitCols per
		// batch, clock reads amortized per batch. Markers and EOS come
		// through Next (NextCols returns 0 there), so punctuation and
		// shutdown keep the boxed path's exact behavior, cut accounting
		// included. Observability needs per-event stamps and latency, so
		// it keeps the boxed loop.
		if cs, isCol := spout.(ColSpout); isCol && !em.stamp {
			if kind := cs.ColKind(); kind != nil {
				batch := kind.Get()
				t0 := time.Now()
				for {
					em.tickAt(t0)
					if n := cs.NextCols(batch, em.batchSize); n > 0 {
						if ef != nil {
							for i := 0; i < n; i++ {
								ef.onEvent(rc.name, instance)
							}
						}
						is.AddExecuted(int64(n))
						em.emitCols(batch)
						batch = kind.Get()
						t1 := time.Now()
						is.AddBusy(t1.Sub(t0))
						t0 = t1
						continue
					}
					e, ok := spout.Next()
					if !ok {
						is.AddBusy(time.Since(t0))
						break
					}
					is.AddExecuted(1)
					ef.onEvent(rc.name, instance)
					em.emit(e)
					if e.IsMarker {
						mark()
					}
					t1 := time.Now()
					is.AddBusy(t1.Sub(t0))
					t0 = t1
				}
				batch.Release()
				return
			}
		}
		// Fast path (observability off): clock reads and counter updates
		// amortize over chunks of events — on a fast source the clock is
		// a measurable share of the loop. The stride adapts: it doubles
		// while a whole chunk completes well inside the idle-flush
		// interval (so the staleness of tickAt's anchor cannot delay an
		// idle flush by more than ~the interval itself) and collapses to
		// per-event as soon as a chunk runs long, which is exactly the
		// throttled-spout case where flush timeliness matters. Busy time
		// is identical in aggregate: chunk spans concatenate.
		const maxStride = 32
		stride, n := 1, 0
		t0 := time.Now()
		for {
			em.tickAt(t0)
			e, ok := spout.Next()
			if !ok {
				if n > 0 {
					is.AddExecuted(int64(n))
				}
				is.AddBusy(time.Since(t0))
				break
			}
			ef.onEvent(rc.name, instance)
			em.emit(e)
			if e.IsMarker {
				mark()
			}
			if n++; n >= stride {
				t1 := time.Now()
				d := t1.Sub(t0)
				is.AddBusy(d)
				is.AddExecuted(int64(n))
				if em.flushEvery > 0 && d > em.flushEvery/2 {
					stride = 1
				} else if stride < maxStride {
					stride *= 2
				}
				n = 0
				t0 = t1
			}
		}
	})
	if err != nil && pol.Enabled && pol.OnUnrecoverable == DropAndLog {
		// Spouts have no marker cut to roll back to (their input is
		// external); drop-and-log truncates the source instead of
		// failing the run.
		pol.logf("storm: spout %s[%d] failed, truncating its input: %v", rc.name, instance, err)
		err = nil
	}
	em.eos()
	return err
}

func runBolt(rc *runtimeComponent, instance int, is *metrics.InstanceStats, hash func(any) int, ef *executorFaults, pol RecoveryPolicy) error {
	em := newEmitter(rc, instance, is, hash)
	em.faults = ef
	var bolt Bolt
	if rc.isSink {
		bolt = BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			rc.appendSink(e)
		})
	} else {
		bolt = rc.bolt(instance)
	}

	emitFn := em.emit // one method-value closure per executor, not per event
	deliver := func(e stream.Event) {
		is.AddExecuted(1)
		bolt.Next(e, emitFn)
	}
	chBolt, chAware := bolt.(ChannelBolt)
	// Columnar receive state (cols.go): when the bolt consumes batches
	// of the arriving kind, a whole batch goes through ProcessCols in
	// one call; any other batch is delivered boxed row by row, so a
	// bolt behind mixed or mismatched edges still sees every event.
	cp, _ := bolt.(ColProcessor)
	var inKind, outKind *stream.ColKind
	if cp != nil {
		inKind, outKind = cp.InColKind(), cp.OutColKind()
	}
	tryTyped := func(cols stream.Columns) bool {
		if inKind == nil || cols.Kind() != inKind {
			return false
		}
		is.AddExecuted(int64(cols.Len()))
		var out stream.Columns
		if outKind != nil {
			out = outKind.Get()
		}
		cp.ProcessCols(cols, out)
		if out != nil {
			em.emitCols(out)
		}
		cols.Release()
		return true
	}
	var merge *colMerge
	if rc.aligned {
		merge = newColMerge(rc.nChannels, deliver, func(c stream.Columns) {
			if tryTyped(c) {
				return
			}
			n := c.Len()
			for i := 0; i < n; i++ {
				deliver(c.EventAt(i))
			}
			c.Release()
		})
	}
	// procCols consumes one arriving column batch: buffered by the
	// aligned merger (delivered when its block completes), or processed
	// immediately on raw inputs. ChannelBolts are never aligned-fed, so
	// the raw fallback is the only place NextFrom sees unboxed rows.
	procCols := func(ch int, cols stream.Columns) {
		if merge != nil {
			merge.NextCols(ch, cols)
			return
		}
		if tryTyped(cols) {
			return
		}
		n := cols.Len()
		for i := 0; i < n; i++ {
			e := cols.EventAt(i)
			if chAware {
				is.AddExecuted(1)
				chBolt.NextFrom(ch, e, emitFn)
			} else {
				deliver(e)
			}
		}
		cols.Release()
	}
	obs := is.ObsEnabled()
	qskip := 1
	eosLeft := rc.nChannels
	inbox := rc.inboxes[instance]
	depth := &rc.depths[instance]
	var err error
	dropping := false
	for eosLeft > 0 {
		bp := recvBatch(inbox, em)
		if bp == nil {
			continue // idle flush fired; retry the receive
		}
		batch := *bp
		if obs {
			depth.Add(-int64(len(batch)))
		}
		bi := 0
		for bi < len(batch) {
			m := batch[bi]
			if m.eos {
				eosLeft--
				bi++
				continue
			}
			if dropping {
				if m.cols != nil {
					is.AddDropped(int64(m.cols.Len()))
					m.cols.Release()
				} else if !m.ev.IsMarker {
					is.AddDropped(1)
				}
				bi++
				continue
			}
			if err != nil {
				if m.cols != nil {
					m.cols.Release()
				}
				bi++
				continue // failed executor keeps draining to its EOS
			}
			if !obs {
				// Fast path: process to the end of the vector (or the
				// first panic) under one guard and one clock pair —
				// the panic guard and busy-time reads amortize over
				// the batch. bi advances before each message is
				// processed, so a panic consumes the offending message
				// and the drain above handles the remainder.
				err = guard(rc.name, instance, func() {
					t0 := time.Now()
					defer func() { is.AddBusy(time.Since(t0)) }()
					for bi < len(batch) {
						m := batch[bi]
						bi++
						if m.eos {
							eosLeft--
							continue
						}
						if m.cols != nil {
							if ef != nil {
								for i, n := 0, m.cols.Len(); i < n; i++ {
									ef.onEvent(rc.name, instance)
								}
							}
							procCols(m.ch, m.cols)
							continue
						}
						ef.onEvent(rc.name, instance)
						switch {
						case merge != nil:
							merge.Next(m.ch, m.ev)
						case chAware:
							is.AddExecuted(1)
							chBolt.NextFrom(m.ch, m.ev, emitFn)
						default:
							deliver(m.ev)
						}
					}
				})
			} else {
				err = guard(rc.name, instance, func() {
					bi++
					if m.cols == nil {
						ef.onEvent(rc.name, instance)
					} else if ef != nil {
						for i, n := 0, m.cols.Len(); i < n; i++ {
							ef.onEvent(rc.name, instance)
						}
					}
					t0 := time.Now()
					now := t0.UnixNano()
					em.now = now
					if qskip--; qskip == 0 {
						qskip = queueObsEvery
						// Inbox depth in events, plus this vector's
						// not-yet-processed remainder (the current
						// message included).
						is.ObserveQueueDepth(int(depth.Load()) + len(batch) - bi + 1)
						if m.sent != 0 {
							is.ObserveQueue(time.Duration(now - m.sent))
						}
					}
					switch {
					case m.cols != nil:
						procCols(m.ch, m.cols)
					case merge != nil:
						merge.Next(m.ch, m.ev)
					case chAware:
						is.AddExecuted(1)
						chBolt.NextFrom(m.ch, m.ev, emitFn)
					default:
						deliver(m.ev)
					}
					d := time.Since(t0)
					is.AddBusy(d)
					is.ObserveExec(t0, d)
				})
			}
			if err != nil && pol.Enabled && pol.OnUnrecoverable == DropAndLog {
				// No marker-cut recovery on this path (the bolt is not
				// aligned, or cannot snapshot); degrade by dropping.
				pol.logf("storm: %s[%d] failed without recovery, dropping its remaining input: %v", rc.name, instance, err)
				err = nil
				dropping = true
			}
		}
		putBatch(bp)
		// Bound buffered-output residency even under a steady trickle
		// of input (which keeps resetting recvBatch's idle timer).
		em.tick()
	}
	if err == nil && !dropping {
		err = guard(rc.name, instance, func() {
			t0 := time.Now()
			if obs {
				em.now = t0.UnixNano()
			}
			if merge != nil {
				// Items of the final incomplete block (after the last
				// marker on every channel) are delivered unaligned at
				// shutdown.
				merge.Trailing()
			}
			if f, ok := bolt.(Flusher); ok {
				f.Flush(emitFn)
			}
			is.AddBusy(time.Since(t0))
		})
		if err != nil && pol.Enabled && pol.OnUnrecoverable == DropAndLog {
			pol.logf("storm: %s[%d] failed at shutdown without recovery, dropping its trailing output: %v", rc.name, instance, err)
			err = nil
		}
	}
	em.eos()
	return err
}

// String renders the topology's structure for debugging.
func (t *Topology) String() string {
	s := fmt.Sprintf("topology %s:\n", t.name)
	for _, name := range t.order {
		c := t.components[name]
		kind := "bolt"
		if c.spout != nil {
			kind = "spout"
		}
		if c.isSink {
			kind = "sink"
		}
		s += fmt.Sprintf("  %s %s ×%d", kind, name, c.parallelism)
		for _, in := range c.inputs {
			al := ""
			if in.aligned {
				al = ",aligned"
			}
			s += fmt.Sprintf(" ← %s(%s%s)", in.from, in.grouping, al)
		}
		s += "\n"
	}
	return s
}
