package storm

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"

	"datatrace/internal/stream"
)

// sumBolt is a recoverable per-key running-sum bolt: on each item it
// emits (key, running total). Its state round-trips through gob, so
// the runtime can checkpoint it at marker cuts.
type sumBolt struct {
	sums map[int]int
}

func newSumBolt(int) Bolt { return &sumBolt{sums: map[int]int{}} }

func (s *sumBolt) Next(e stream.Event, emit func(stream.Event)) {
	if e.IsMarker {
		emit(e)
		return
	}
	k := e.Key.(int)
	s.sums[k] += e.Value.(int)
	emit(stream.Item(k, s.sums[k]))
}

func (s *sumBolt) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.sums); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *sumBolt) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&s.sums)
}

// sumTopology wires src → sum ×par → sink with aligned edges and
// fields grouping, so every instance owns its keys.
func sumTopology(in []stream.Event, par int) *Topology {
	top := NewTopology("sums")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("sum", par, newSumBolt).FieldsGrouping("src", true)
	top.AddSink("sink", "sum")
	return top
}

// referenceRun executes a fault-free copy and returns its sink trace.
func referenceRun(t *testing.T, build func() *Topology) []stream.Event {
	t.Helper()
	res, err := build().Run()
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	return res.Sinks["sink"]
}

func TestCrashedRecoverableBoltMatchesFailureFreeRun(t *testing.T) {
	in := testStream(6, 8, 4)
	// Parallelism 1 so instance 0 sees every event and each crash
	// point in the sweep is guaranteed to fire.
	ref := referenceRun(t, func() *Topology { return sumTopology(in, 1) })

	for _, atEvent := range []int64{1, 7, 23, 40} {
		top := sumTopology(in, 1)
		top.SetRecovery(RecoveryPolicy{Enabled: true})
		top.SetFaultPlan(NewFaultPlan().CrashAt("sum", 0, atEvent))
		res, err := top.Run()
		if err != nil {
			t.Fatalf("crash at %d: recovery did not keep the topology alive: %v", atEvent, err)
		}
		if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], ref) {
			t.Fatalf("crash at %d: recovered output not trace-equivalent:\n ref %s\n got %s",
				atEvent, stream.Render(ref), stream.Render(res.Sinks["sink"]))
		}
		restarts, replayed, dropped := res.Stats.Recovery()
		if restarts < 1 {
			t.Fatalf("crash at %d: no restart recorded", atEvent)
		}
		if replayed < 0 || dropped != 0 {
			t.Fatalf("crash at %d: unexpected counters replayed=%d dropped=%d", atEvent, replayed, dropped)
		}
	}
}

func TestCrashedParallelBoltMatchesFailureFreeRun(t *testing.T) {
	in := testStream(6, 8, 4)
	ref := referenceRun(t, func() *Topology { return sumTopology(in, 2) })

	// Markers are broadcast, so every instance sees at least 6 events
	// whatever the key distribution: small crash points always fire.
	for instance := 0; instance < 2; instance++ {
		for _, atEvent := range []int64{1, 5} {
			top := sumTopology(in, 2)
			top.SetRecovery(RecoveryPolicy{Enabled: true})
			top.SetFaultPlan(NewFaultPlan().CrashAt("sum", instance, atEvent))
			res, err := top.Run()
			if err != nil {
				t.Fatalf("crash of instance %d at %d: %v", instance, atEvent, err)
			}
			if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], ref) {
				t.Fatalf("crash of instance %d at %d: output not trace-equivalent", instance, atEvent)
			}
			restarts, _, _ := res.Stats.Recovery()
			if restarts < 1 {
				t.Fatalf("crash of instance %d at %d: no restart recorded", instance, atEvent)
			}
		}
	}
}

func TestRepeatedCrashesRecoverWithinBudget(t *testing.T) {
	in := testStream(5, 10, 3)
	ref := referenceRun(t, func() *Topology { return sumTopology(in, 2) })

	top := sumTopology(in, 2)
	top.SetRecovery(RecoveryPolicy{Enabled: true, MaxRestarts: 4})
	top.SetFaultPlan(NewFaultPlan().CrashTimes("sum", 1, 5, 3))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("repeated crashes within budget must recover: %v", err)
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], ref) {
		t.Fatal("recovered output not trace-equivalent after repeated crashes")
	}
	restarts, _, _ := res.Stats.Recovery()
	if restarts != 3 {
		t.Fatalf("restarts = %d, want 3", restarts)
	}
}

func TestRestartBudgetExhaustionAborts(t *testing.T) {
	in := testStream(4, 10, 3)
	top := sumTopology(in, 1)
	top.SetRecovery(RecoveryPolicy{Enabled: true, MaxRestarts: 2})
	top.SetFaultPlan(NewFaultPlan().CrashTimes("sum", 0, 3, 100))
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("want restart-budget error, got %v", err)
	}
}

func TestRestartBudgetExhaustionDropsAndLogs(t *testing.T) {
	in := testStream(4, 10, 3)
	var logged []string
	top := sumTopology(in, 1)
	top.SetRecovery(RecoveryPolicy{
		Enabled: true, MaxRestarts: 2, OnUnrecoverable: DropAndLog,
		Logf: func(format string, args ...any) { logged = append(logged, format) },
	})
	top.SetFaultPlan(NewFaultPlan().CrashTimes("sum", 0, 3, 100))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("drop-and-log must keep the topology alive: %v", err)
	}
	_, _, dropped := res.Stats.Recovery()
	if dropped == 0 {
		t.Fatal("degraded executor must count dropped items")
	}
	if len(logged) == 0 {
		t.Fatal("degradation must be logged")
	}
	// Markers must still be forwarded, deduplicated per sequence, so
	// the aligned sink stays aligned.
	seqs := map[int64]int{}
	for _, e := range res.Sinks["sink"] {
		if e.IsMarker {
			seqs[e.Marker.Seq]++
		}
	}
	for seq, n := range seqs {
		if n != 1 {
			t.Fatalf("marker %d forwarded %d times, want exactly once", seq, n)
		}
	}
	if len(seqs) == 0 {
		t.Fatal("degraded executor forwarded no markers at all")
	}
}

// fragileBolt has no Snapshot/Restore: recovery cannot bring it back.
type fragileBolt struct{ after int }

func (p *fragileBolt) Next(e stream.Event, emit func(stream.Event)) {
	if !e.IsMarker {
		p.after--
		if p.after < 0 {
			panic("fragile bolt failure")
		}
	}
	emit(e)
}

func TestNonSnapshottableBoltAbortsByDefault(t *testing.T) {
	in := testStream(3, 8, 2)
	top := NewTopology("fragile")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("frail", 1, func(int) Bolt { return &fragileBolt{after: 5} }).ShuffleGrouping("src", true)
	top.AddSink("sink", "frail")
	top.SetRecovery(RecoveryPolicy{Enabled: true})
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "not snapshottable") {
		t.Fatalf("want not-snapshottable abort, got %v", err)
	}
}

func TestNonSnapshottableBoltCanDropAndLog(t *testing.T) {
	in := testStream(3, 8, 2)
	top := NewTopology("fragile-drop")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	// Crash in the second block: the first block's items flush at the
	// first marker cut and must survive degradation.
	top.AddBolt("frail", 1, func(int) Bolt { return &fragileBolt{after: 10} }).ShuffleGrouping("src", true)
	top.AddSink("sink", "frail")
	top.SetRecovery(RecoveryPolicy{Enabled: true, OnUnrecoverable: DropAndLog})
	res, err := top.Run()
	if err != nil {
		t.Fatalf("drop-and-log must keep the topology alive: %v", err)
	}
	_, _, dropped := res.Stats.Recovery()
	if dropped == 0 {
		t.Fatal("degraded executor must count dropped items")
	}
	items := 0
	for _, e := range res.Sinks["sink"] {
		if !e.IsMarker {
			items++
		}
	}
	if items == 0 {
		t.Fatal("items processed before the failure must reach the sink")
	}
}

func TestSlowExecutorOnlyDelays(t *testing.T) {
	in := testStream(3, 6, 2)
	ref := referenceRun(t, func() *Topology { return sumTopology(in, 2) })

	top := sumTopology(in, 2)
	top.SetFaultPlan(NewFaultPlan().SlowExecutor("sum", 0, 500*time.Microsecond))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("a slow executor must not fail the topology: %v", err)
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], ref) {
		t.Fatal("slow executor changed the trace")
	}
}

// flakySerializer fails round trips on command (never here; injected
// corruption uses the fault plan), otherwise it is the identity.
type identitySerializer struct{}

func (identitySerializer) RoundTrip(e stream.Event) (stream.Event, error) { return e, nil }

func TestCorruptEdgeRecoversProducer(t *testing.T) {
	in := testStream(6, 8, 4)
	ref := referenceRun(t, func() *Topology { return sumTopology(in, 2) })

	top := sumTopology(in, 2)
	top.SetSerializer(func() Serializer { return identitySerializer{} })
	top.SetRecovery(RecoveryPolicy{Enabled: true})
	top.SetFaultPlan(NewFaultPlan().CorruptEdge("sum", 0, "sink", 4))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("corruption on a recoverable producer must recover: %v", err)
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], ref) {
		t.Fatal("recovered output not trace-equivalent after edge corruption")
	}
	restarts, _, _ := res.Stats.Recovery()
	if restarts < 1 {
		t.Fatal("corruption must surface as a producer restart")
	}
}

func TestCorruptEdgeWithoutRecoveryAborts(t *testing.T) {
	in := testStream(3, 8, 2)
	top := sumTopology(in, 1)
	top.SetFaultPlan(NewFaultPlan().CorruptEdge("sum", 0, "sink", 2))
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "injected serializer corruption") {
		t.Fatalf("want corruption error, got %v", err)
	}
}

func TestSpoutCrashTruncatesUnderDropPolicy(t *testing.T) {
	in := testStream(5, 10, 2)
	top := sumTopology(in, 1)
	top.SetRecovery(RecoveryPolicy{Enabled: true, OnUnrecoverable: DropAndLog})
	top.SetFaultPlan(NewFaultPlan().CrashAt("src", 0, 20))
	res, err := top.Run()
	if err != nil {
		t.Fatalf("spout crash under drop policy must not fail the run: %v", err)
	}
	items := 0
	for _, e := range res.Sinks["sink"] {
		if !e.IsMarker {
			items++
		}
	}
	if items == 0 || items >= 50 {
		t.Fatalf("truncated spout should deliver a proper prefix, got %d items", items)
	}
}

func TestFaultPlanValidation(t *testing.T) {
	in := testStream(1, 2, 1)
	cases := []struct {
		name string
		plan *FaultPlan
		want string
	}{
		{"unknown component", NewFaultPlan().CrashAt("ghost", 0, 1), "unknown component"},
		{"instance out of range", NewFaultPlan().CrashAt("sum", 7, 1), "parallelism"},
		{"unknown corrupt consumer", NewFaultPlan().CorruptEdge("sum", 0, "ghost", 1), "unknown component"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			top := sumTopology(in, 2)
			top.SetFaultPlan(tc.plan)
			_, err := top.Run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestRecoveryDisabledKeepsSeedFailureSemantics(t *testing.T) {
	in := testStream(3, 8, 2)
	top := sumTopology(in, 2)
	top.SetFaultPlan(NewFaultPlan().CrashAt("sum", 0, 3))
	_, err := top.Run()
	if err == nil || !strings.Contains(err.Error(), "injected crash") {
		t.Fatalf("with recovery disabled an injected crash must fail the run, got %v", err)
	}
}

func TestRecoveryEnabledNoFaultsIsTransparent(t *testing.T) {
	in := testStream(4, 10, 3)
	ref := referenceRun(t, func() *Topology { return sumTopology(in, 3) })

	top := sumTopology(in, 3)
	top.SetRecovery(RecoveryPolicy{Enabled: true})
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], ref) {
		t.Fatal("recovery-enabled run changed the trace")
	}
	restarts, replayed, dropped := res.Stats.Recovery()
	if restarts != 0 || replayed != 0 || dropped != 0 {
		t.Fatalf("fault-free run recorded recovery activity: %d/%d/%d", restarts, replayed, dropped)
	}
}
