package storm

import (
	"errors"
	"strconv"
	"testing"

	"datatrace/internal/codec"
	"datatrace/internal/stream"
)

func init() {
	codec.Register(int64(0))
	codec.Register(float64(0))
	codec.Register(stream.Unit{})
}

// goProc runs a "worker process" as a goroutine in this process —
// the spawn seam that lets the coordinator logic be exercised without
// real subprocesses (the cross-process proof lives in the queries
// package, which re-execs the test binary).
type goProc struct {
	done chan struct{}
	err  error
}

func (p *goProc) Kill() error { return errors.New("goroutine worker cannot be killed") }
func (p *goProc) Wait() error { <-p.done; return p.err }

// spawnGoroutine builds a fresh topology per worker (as a real worker
// process would from its spec) and serves it in a goroutine.
func spawnGoroutine(build func() *Topology) func(worker int, env map[string]string) (netProc, error) {
	return func(worker int, env map[string]string) (netProc, error) {
		p := &goProc{done: make(chan struct{})}
		go func() {
			defer close(p.done)
			id, _ := strconv.Atoi(env[EnvWorkerID])
			n, _ := strconv.Atoi(env[EnvWorkers])
			at, _ := strconv.Atoi(env[EnvAttempt])
			p.err = build().ServeWorker(WorkerConfig{
				CoordAddr: env[EnvCoordAddr], Worker: id, Workers: n, Attempt: at,
			})
		}()
		return p, nil
	}
}

func netTestTopology() *Topology {
	var in []stream.Event
	for b := 0; b < 4; b++ {
		for i := 0; i < 25; i++ {
			in = append(in, stream.Item(int64(i%5), float64(b*25+i)))
		}
		in = append(in, stream.Mark(stream.Marker{Seq: int64(b), Timestamp: int64(b + 1)}))
	}
	top := NewTopology("net-smoke")
	top.AddSpout("src", 2, func(inst int) Spout {
		// Each spout instance produces its own copy of the stream; the
		// sink sees the union, deterministically per channel.
		return SliceSpout(in)
	})
	top.AddBolt("scale", 3, func(int) Bolt {
		return BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				emit(e)
				return
			}
			emit(stream.Item(e.Key, e.Value.(float64)*2))
		})
	}).FieldsGrouping("src", true)
	top.AddSink("sink", "scale")
	return top
}

// TestRunNetworkedGoroutineWorkers runs the full coordinator/worker
// protocol — rendezvous, peer links over real localhost TCP, frame
// transport, sink streaming, shutdown — with workers as goroutines,
// and checks trace equivalence against the single-process runtime.
func TestRunNetworkedGoroutineWorkers(t *testing.T) {
	oracle, err := netTestTopology().Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3} {
		res, err := RunNetworked(NetOptions{
			Workers: workers,
			spawn:   spawnGoroutine(netTestTopology),
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.WorkerRestarts != 0 {
			t.Fatalf("workers=%d: unexpected restarts %d", workers, res.WorkerRestarts)
		}
		typ := stream.U("Int64", "Float")
		if !stream.Equivalent(typ, oracle.Sinks["sink"], res.Sinks["sink"]) {
			t.Fatalf("workers=%d: networked trace differs from single-process run (%d vs %d events)",
				workers, len(res.Sinks["sink"]), len(oracle.Sinks["sink"]))
		}
		// The workers' reported counters must cover the whole topology.
		srcExec, _ := res.Stats.Component("src")
		if want := oracle.Stats; true {
			wantExec, _ := want.Component("src")
			if srcExec != wantExec {
				t.Fatalf("workers=%d: source executed %d events, want %d", workers, srcExec, wantExec)
			}
		}
	}
}

// TestWireMessageVectorRoundTrip checks the transport-vector ↔ frame
// conversion is lossless, including EOS notices and markers.
func TestWireMessageVectorRoundTrip(t *testing.T) {
	msgs := []message{
		{ch: 0, ev: stream.Item(int64(1), 2.5), sent: 77},
		{ch: 3, ev: stream.Mark(stream.Marker{Seq: 9, Timestamp: 10})},
		{ch: 1, eos: true},
		{ch: 2, ev: stream.Item(int64(4), 0.25)},
	}
	ws := toWireMsgs(msgs, nil)
	bp := frameToBatch(ws)
	defer putBatch(bp)
	got := *bp
	if len(got) != len(msgs) {
		t.Fatalf("round trip changed length: %d → %d", len(msgs), len(got))
	}
	for i := range msgs {
		if got[i].ch != msgs[i].ch || got[i].eos != msgs[i].eos || got[i].sent != msgs[i].sent || got[i].ev != msgs[i].ev {
			t.Fatalf("message %d changed: %+v → %+v", i, msgs[i], got[i])
		}
	}
}

// TestPlacementTable checks the shared placement rule: declaration
// order, instance-major, round-robin over workers — identical in
// every process, which is what lets workers route without a placement
// exchange.
func TestPlacementTable(t *testing.T) {
	top := netTestTopology()
	placed := top.Placement(2)
	wantN := 2 + 3 + 1
	if len(placed) != wantN {
		t.Fatalf("placement has %d entries, want %d", len(placed), wantN)
	}
	for i, p := range placed {
		if p.GID != i {
			t.Fatalf("entry %d has GID %d", i, p.GID)
		}
		if p.Worker != i%2 {
			t.Fatalf("entry %d on worker %d, want %d", i, p.Worker, i%2)
		}
	}
	if placed[0].Component != "src" || placed[2].Component != "scale" || placed[5].Component != "sink" {
		t.Fatalf("placement order wrong: %+v", placed)
	}
}
