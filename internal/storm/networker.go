package storm

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"datatrace/internal/codec"
	"datatrace/internal/stream"
)

// This file is the worker half of the networked runtime. A worker
// process rebuilds the topology (from whatever application-level spec
// its spawner put in the environment — the runtime treats it as
// opaque), then ServeWorker runs the locally placed executors: it
// opens a data listener, checks in with the coordinator, dials its
// peers, and bridges remote edges through the frame transport while
// local edges stay plain channels. Sink instances stream their
// collected output to the coordinator as it arrives, cut by cut, so
// the coordinator can commit prefixes at marker granularity and
// splice replays after a process failure.

// Environment variable names of the worker spawn contract
// (RunNetworked sets them; WorkerEnvConfig reads them).
const (
	EnvCoordAddr = "DTT_NET_COORD"
	EnvWorkerID  = "DTT_NET_WORKER"
	EnvWorkers   = "DTT_NET_WORKERS"
	EnvAttempt   = "DTT_NET_ATTEMPT"
	EnvSpec      = "DTT_NET_SPEC"
)

// WorkerConfig tells ServeWorker which worker this process is and
// where the coordinator listens.
type WorkerConfig struct {
	CoordAddr string
	Worker    int
	Workers   int
	// Attempt is the coordinator's restart epoch, echoed in the hello
	// so stragglers from a killed attempt are rejected.
	Attempt int
	// Logf receives worker lifecycle logging; nil discards.
	Logf func(format string, args ...any)
}

// WorkerEnvConfig reads the spawn contract from the environment. ok
// is false when the process was not spawned as a worker; spec is the
// opaque application payload (NetOptions.Spec).
func WorkerEnvConfig() (cfg WorkerConfig, spec string, ok bool) {
	addr := os.Getenv(EnvCoordAddr)
	if addr == "" {
		return WorkerConfig{}, "", false
	}
	id, _ := strconv.Atoi(os.Getenv(EnvWorkerID))
	n, _ := strconv.Atoi(os.Getenv(EnvWorkers))
	at, _ := strconv.Atoi(os.Getenv(EnvAttempt))
	return WorkerConfig{CoordAddr: addr, Worker: id, Workers: n, Attempt: at}, os.Getenv(EnvSpec), true
}

// inboxRef is one locally hosted executor's delivery point for the
// frame dispatcher.
type inboxRef struct {
	ch    chan *[]message
	depth *atomic.Int64
}

// workerNet is a worker process's networked-transport state: the
// outgoing links per peer and the dispatch table from global executor
// index to local inbox.
type workerNet struct {
	workers int
	self    int
	obs     bool
	links   []*netLink
	byGID   map[int]inboxRef
	// failc surfaces the first dispatcher/transport failure;
	// ServeWorker aborts the process-local run on it.
	failc chan error
}

func (w *workerNet) register(gid int, ch chan *[]message, depth *atomic.Int64) {
	w.byGID[gid] = inboxRef{ch: ch, depth: depth}
}

// sinkTo resolves the vectorSink of a remote destination instance.
func (w *workerNet) sinkTo(rc *runtimeComponent, k int) vectorSink {
	return netSink{link: w.links[rc.workerOf[k]], dest: rc.gids[k]}
}

func (w *workerNet) fail(err error) {
	select {
	case w.failc <- err:
	default:
	}
}

// dispatch serves one inbound data connection: it decodes frames and
// delivers each as a pooled vector to the destination executor's
// inbox (a blocking send — inbound backpressure propagates to the
// remote sender through TCP).
func (w *workerNet) dispatch(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return // peer connected and vanished before identifying
	}
	peer := int(binary.BigEndian.Uint32(hdr[:]))
	dec := codec.NewFrameDecoder(br)
	for {
		var f codec.Frame
		err := dec.Decode(&f)
		if err == io.EOF {
			return // peer finished and closed its link
		}
		if err != nil {
			w.fail(fmt.Errorf("inbound frame from worker %d: %w", peer, err))
			return
		}
		ref, ok := w.byGID[int(f.Dest)]
		if !ok {
			w.fail(fmt.Errorf("frame from worker %d addressed to executor %d, which is not hosted here", peer, f.Dest))
			return
		}
		bp := frameToBatch(f.Msgs)
		if w.obs && ref.depth != nil {
			ref.depth.Add(int64(len(*bp)))
		}
		ref.ch <- bp
	}
}

// ctrlWriter serializes control-plane writes (the main worker
// goroutine and sink taps share the coordinator connection).
type ctrlWriter struct {
	mu  sync.Mutex
	enc *gob.Encoder
}

func (c *ctrlWriter) send(env netEnvelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(env)
}

// sinkTap accumulates one local sink's recorded events and streams
// them to the coordinator, flushing at every marker (the commit
// granularity) and at a size bound. observe runs under the sink's
// sinkMu from the single sink executor; the final flush runs after
// the run's executors have joined, so no locking beyond the control
// writer's is needed.
type sinkTap struct {
	sink string
	cw   *ctrlWriter
	buf  []codec.WireEvent
}

const sinkTapFlushAt = 512

func (tap *sinkTap) observe(e stream.Event) {
	tap.buf = append(tap.buf, codec.FromEvent(e))
	if e.IsMarker || len(tap.buf) >= sinkTapFlushAt {
		tap.flush()
	}
}

func (tap *sinkTap) flush() {
	if len(tap.buf) == 0 {
		return
	}
	events := make([]codec.WireEvent, len(tap.buf))
	copy(events, tap.buf)
	tap.buf = tap.buf[:0]
	// A control-plane write failure means the coordinator is gone; the
	// run's output no longer has a consumer and the coordinator (or its
	// death) will take this process down, so the tap does not escalate.
	_ = tap.cw.send(netEnvelope{Sink: &netSinkData{Sink: tap.sink, Events: events}})
}

// ServeWorker runs this process's share of the topology as one worker
// of a networked cluster. It returns after the run completes and the
// coordinator acknowledges (or hangs up), or with an error on any
// transport or executor failure — the coordinator treats a worker
// process exiting before its Done as an attempt failure.
func (t *Topology) ServeWorker(cfg WorkerConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Workers < 1 || cfg.Worker < 0 || cfg.Worker >= cfg.Workers {
		return fmt.Errorf("storm: worker id %d out of range for %d workers", cfg.Worker, cfg.Workers)
	}
	t.workers = cfg.Workers
	w := &workerNet{
		workers: cfg.Workers,
		self:    cfg.Worker,
		obs:     t.obs.Enabled,
		byGID:   map[int]inboxRef{},
		failc:   make(chan error, 1),
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("storm: worker %d: data listen: %w", cfg.Worker, err)
	}
	defer ln.Close()

	ctrl, err := net.Dial("tcp", cfg.CoordAddr)
	if err != nil {
		return fmt.Errorf("storm: worker %d: dial coordinator %s: %w", cfg.Worker, cfg.CoordAddr, err)
	}
	defer ctrl.Close()
	cw := &ctrlWriter{enc: gob.NewEncoder(ctrl)}
	ctrlDec := gob.NewDecoder(ctrl)
	hello := netEnvelope{Hello: &netHello{Worker: cfg.Worker, Attempt: cfg.Attempt, DataAddr: ln.Addr().String()}}
	if err := cw.send(hello); err != nil {
		return fmt.Errorf("storm: worker %d: hello: %w", cfg.Worker, err)
	}
	var start netEnvelope
	if err := ctrlDec.Decode(&start); err != nil {
		return fmt.Errorf("storm: worker %d: waiting for start: %w", cfg.Worker, err)
	}
	if start.Start == nil {
		return fmt.Errorf("storm: worker %d: expected start message", cfg.Worker)
	}
	if len(start.Start.Peers) != cfg.Workers {
		return fmt.Errorf("storm: worker %d: start lists %d peers, want %d", cfg.Worker, len(start.Start.Peers), cfg.Workers)
	}

	// Outgoing links to every peer. Dialing all pairs is quadratic in
	// workers but trivial at the cluster sizes this runtime targets;
	// links without traffic cost one idle connection.
	w.links = make([]*netLink, cfg.Workers)
	for p, addr := range start.Start.Peers {
		if p == cfg.Worker {
			continue
		}
		l, err := dialLink(addr, cfg.Worker)
		if err != nil {
			return fmt.Errorf("storm: worker %d: dial peer %d at %s: %w", cfg.Worker, p, addr, err)
		}
		w.links[p] = l
		defer l.close()
	}

	rts, err := t.resolve(w)
	if err != nil {
		return err
	}
	var taps []*sinkTap
	for _, name := range t.order {
		rc := rts[name]
		if rc.isSink && rc.localInst(0) {
			tap := &sinkTap{sink: rc.name, cw: cw}
			taps = append(taps, tap)
			rc.sinkTap = tap.observe
		}
	}

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed at worker shutdown
			}
			go w.dispatch(conn)
		}
	}()

	logf("storm: worker %d/%d serving %d executors, data %s", cfg.Worker, cfg.Workers, len(w.byGID), ln.Addr())
	type runOut struct {
		res *Result
		err error
	}
	runc := make(chan runOut, 1)
	go func() {
		res, err := t.execute(rts)
		runc <- runOut{res, err}
	}()

	var out runOut
	select {
	case out = <-runc:
	case err := <-w.failc:
		// A poisoned inbound stream would strand executors waiting on
		// frames that can never arrive; exiting the process is the
		// recovery signal the coordinator acts on.
		return fmt.Errorf("storm: worker %d: %w", cfg.Worker, err)
	}
	for _, tap := range taps {
		tap.flush()
	}

	done := &netDone{}
	if out.err != nil {
		done.Failure = out.err.Error()
	}
	if out.res != nil {
		for _, is := range out.res.Stats.Instances() {
			done.Summaries = append(done.Summaries, netSummary{
				Component: is.Component,
				Instance:  is.Instance,
				Executed:  is.Executed(),
				Emitted:   is.Emitted(),
				BusyNs:    int64(is.Busy()),
				Restarts:  is.Restarts(),
				Replayed:  is.Replayed(),
				Dropped:   is.Dropped(),
				CombIn:    is.CombinedIn(),
				CombOut:   is.CombinedOut(),
				Cuts:      is.Cuts(),
			})
		}
	}
	if err := cw.send(netEnvelope{Done: done}); err != nil {
		return fmt.Errorf("storm: worker %d: done report: %w", cfg.Worker, err)
	}
	// Hold links and listener open until the coordinator confirms the
	// whole cluster is done (or hangs up): peers may still be draining.
	var shutdown netEnvelope
	_ = ctrlDec.Decode(&shutdown)
	logf("storm: worker %d exiting", cfg.Worker)
	return out.err
}
