package storm

import (
	"fmt"

	"datatrace/internal/stream"
)

// This file implements sender-side combining buffers (map-side
// combine / partial aggregation) for fields-grouping edges whose
// consumer aggregates through a commutative monoid. Instead of one
// message per item, the emitter folds its block-local items per
// (destination instance, key) with the consumer's own In/Combine and
// ships one partial aggregate per (key, flush). Because the monoid is
// associative and commutative, the consumer — rewritten by the
// compiler to fold partial aggregates — computes the same per-block
// aggregate whatever the split of items across senders and flushes,
// so the output data trace is unchanged.
//
// Discipline (mirrors the transport's flush triggers, one layer up):
//
//   - cap: a combining buffer reaching Cap distinct keys drains into
//     the batched transport buffer immediately, bounding memory.
//   - marker: a marker pushed to a combined buffer drains it first,
//     so the partial aggregates precede the marker on the channel and
//     block membership is preserved (within a block the edge is
//     unordered, so the reordering of items into first-seen key order
//     is trace-invisible).
//   - EOS/block/idle: eos, sendBlock and the idle flush all run
//     through flushAll, which drains every combining buffer before
//     flushing the transport buffers. In particular a committed
//     marker cut leaves every combining buffer provably empty — the
//     same invariant marker-cut recovery relies on for the transport
//     buffers (see recExec.restart) — so restarts never need to
//     discard or reconstruct combiner state.
//
// In and Combine run inside the emitter's send path, including the
// transactional sendBlock flush; they must be pure and non-panicking,
// which the core template contract already requires. The per-item
// serialization boundary (wire) is applied to each contributing item
// before it reaches the combiner, so injected edge faults still count
// per routed event; the flushed aggregate itself is a composition of
// already-round-tripped values and is not re-serialized.

// DefaultCombinerCap is the per-destination distinct-key capacity of
// a combining buffer when CombinerSpec.Cap is zero at the compile
// layer; the storm layer itself requires an explicit positive Cap.
const DefaultCombinerCap = 1024

// CombinerSpec configures sender-side combining on one input edge of
// a bolt (see BoltDecl.CombineWith). In and Combine are the consumer
// operator's aggregation monoid, untyped for the runtime; Cap bounds
// the distinct keys a combining buffer holds before draining.
type CombinerSpec struct {
	In      func(key, value any) any
	Combine func(x, y any) any
	Cap     int
}

// validate checks a spec at topology validation time.
func (s *CombinerSpec) validate(bolt, from string, g Grouping) error {
	if s.In == nil || s.Combine == nil {
		return fmt.Errorf("storm: combiner on edge %s→%s needs In and Combine", from, bolt)
	}
	if s.Cap < 1 {
		return fmt.Errorf("storm: combiner on edge %s→%s needs a positive key cap, got %d", from, bolt, s.Cap)
	}
	if g != Fields {
		return fmt.Errorf("storm: combiner on edge %s→%s requires fields grouping, got %s (combining re-times items, which only a key-partitioned unordered edge tolerates)", from, bolt, g)
	}
	return nil
}

// CombineWith attaches a sender-side combining buffer to the bolt's
// most recently declared input edge. The edge must use fields
// grouping; validation enforces it at Run.
func (d *BoltDecl) CombineWith(spec CombinerSpec) *BoltDecl {
	if len(d.c.inputs) == 0 {
		panic(fmt.Sprintf("storm: CombineWith on %q before any input is declared", d.c.name))
	}
	d.c.inputs[len(d.c.inputs)-1].combiner = &spec
	return d
}

// combBuf is the combining state of one outBuf: an insertion-ordered
// keyed map of partial aggregates for one (subscription, destination
// instance) pair. ch is the receiver-side channel index every flushed
// aggregate carries (one buffer serves exactly one sender channel).
type combBuf struct {
	spec *CombinerSpec
	ch   int
	idx  map[any]int
	keys []any
	vals []any
	// ins counts items folded since the last drain; the stats counter
	// is bumped once per drain rather than once per item (drains always
	// precede markers, EOS and block commits, so the counter is exact
	// whenever the buffer is empty — in particular at run end).
	ins int64
}

// combine folds one routed item into the buffer's partial aggregates,
// draining into the transport buffer when the key cap is reached.
func (em *emitter) combine(b *outBuf, e stream.Event) {
	c := b.comb
	c.ins++
	if i, ok := c.idx[e.Key]; ok {
		c.vals[i] = c.spec.Combine(c.vals[i], c.spec.In(e.Key, e.Value))
		return
	}
	c.idx[e.Key] = len(c.keys)
	c.keys = append(c.keys, e.Key)
	c.vals = append(c.vals, c.spec.In(e.Key, e.Value))
	em.cpending++
	if len(c.keys) >= c.spec.Cap {
		em.drainComb(b)
	}
}

// drainComb moves a buffer's partial aggregates into its transport
// buffer, one message per key in first-seen order. Nil-safe and a
// no-op when nothing is buffered.
func (em *emitter) drainComb(b *outBuf) {
	c := b.comb
	if c == nil || len(c.keys) == 0 {
		return
	}
	em.stats.AddCombinedIn(c.ins)
	c.ins = 0
	em.stats.AddCombinedOut(int64(len(c.keys)))
	em.cpending -= len(c.keys)
	for i, k := range c.keys {
		delete(c.idx, k)
		em.append(b, message{ch: c.ch, ev: stream.Item(k, c.vals[i]), sent: em.now})
		c.vals[i] = nil
	}
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
}
