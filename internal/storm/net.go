package storm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"datatrace/internal/codec"
	"datatrace/internal/stream"
)

// This file is the data plane of the networked runtime: the TCP form
// of the vectorSink seam. Each ordered pair of workers that exchange
// traffic shares one directed TCP connection (a netLink); a flushed
// message vector crossing a worker boundary is serialized into one
// length-prefixed frame (codec.Frame) addressed to the destination
// executor's global index and written synchronously, so TCP's flow
// control is the backpressure, standing in for the in-process
// transport's bounded channel. Per-(sender,channel) FIFO order is
// preserved: one directed connection per worker pair, frames written
// atomically under the link lock, and the receiving dispatcher
// delivers frames in stream order.
//
// Failure model: a link write error poisons the link; every executor
// that subsequently flushes into it panics, which the guard converts
// into executor failure and — via the worker's Done report — into a
// cluster-level attempt failure the coordinator recovers from by
// restarting all workers (see netcoord.go). The one typed exception
// is codec.ErrUnregisteredType: it is detected before any bytes reach
// the stream, leaves the link healthy, and fails only the emitting
// executor, which may then degrade per the drop-and-log policy.

// toWireMsgs converts one transport vector into frame messages,
// reusing scratch. A column batch ships as its two typed column
// slices plus the kind's wire name — one type descriptor per slice
// type per connection, no per-row boxing on the wire.
func toWireMsgs(msgs []message, scratch []codec.WireMessage) []codec.WireMessage {
	scratch = scratch[:0]
	for i := range msgs {
		m := &msgs[i]
		w := codec.WireMessage{Ch: int32(m.ch), EOS: m.eos, Sent: m.sent}
		if m.cols != nil {
			keys, vals := m.cols.Slices()
			w.Cols = &codec.WireCols{Kind: m.cols.Kind().Name(), Keys: keys, Vals: vals}
		} else {
			w.Ev = codec.FromEvent(m.ev)
		}
		scratch = append(scratch, w)
	}
	return scratch
}

// frameToBatch converts a received frame's messages into a pooled
// transport vector, ready for an inbox channel. Decoded column slices
// are wrapped in a pooled batch, taking ownership — gob allocates
// fresh slices per decode. Both sides of a link build the same
// topology, so an unknown kind name (or mistyped slices) is a
// deployment bug, not a recoverable event fault: it panics the
// dispatcher, failing the worker attempt.
func frameToBatch(ws []codec.WireMessage) *[]message {
	bp := getBatch()
	b := (*bp)[:0]
	for i := range ws {
		w := &ws[i]
		if w.Cols != nil {
			kind := stream.ColKindByName(w.Cols.Kind)
			if kind == nil {
				panic(fmt.Sprintf("net transport: received unknown column kind %q", w.Cols.Kind))
			}
			cols, err := kind.FromSlices(w.Cols.Keys, w.Cols.Vals)
			if err != nil {
				panic(fmt.Sprintf("net transport: %v", err))
			}
			b = append(b, message{ch: int(w.Ch), sent: w.Sent, cols: cols})
			continue
		}
		b = append(b, message{ch: int(w.Ch), eos: w.EOS, sent: w.Sent, ev: w.Ev.Event()})
	}
	*bp = b
	return bp
}

// netLink is one directed data connection to a peer worker. send is
// called by every local executor that has a destination on the peer,
// so the link serializes writers; the per-connection frame encoder
// amortizes gob type descriptors across the link's lifetime.
type netLink struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	enc     *codec.FrameEncoder
	scratch []codec.WireMessage
	err     error
}

// dialLink connects to a peer's data address and identifies this
// worker with a fixed-size preamble.
func dialLink(addr string, self int) (*netLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(self))
	if _, err := conn.Write(hdr[:]); err != nil {
		conn.Close()
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	return &netLink{conn: conn, bw: bw, enc: codec.NewFrameEncoder(bw)}, nil
}

// send frames one vector for the destination executor and writes it
// out. The write is synchronous: a slow or congested peer blocks the
// sender here, which is the networked form of inbox backpressure.
func (l *netLink) send(dest int, msgs []message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.scratch = toWireMsgs(msgs, l.scratch)
	f := codec.Frame{Dest: int32(dest), Msgs: l.scratch}
	if err := l.enc.Encode(&f); err != nil {
		if !errors.Is(err, codec.ErrUnregisteredType) {
			l.err = err
		}
		return err
	}
	if err := l.bw.Flush(); err != nil {
		l.err = err
		return err
	}
	return nil
}

func (l *netLink) close() {
	l.conn.Close()
}

// netSink is the vectorSink of a remote destination: it serializes
// the vector onto the destination worker's link and recycles the box
// (nothing downstream in this process will consume it). A send error
// panics in the calling executor, whose guard applies the configured
// degradation or failure policy.
type netSink struct {
	link *netLink
	dest int
}

func (s netSink) deliver(b *[]message) {
	err := s.link.send(s.dest, *b)
	// Column batches are released only after send returns: the frame
	// encoder reads their slices during Encode, inside send's lock.
	for i := range *b {
		if c := (*b)[i].cols; c != nil {
			(*b)[i].cols = nil
			c.Release()
		}
	}
	putBatch(b)
	if err != nil {
		panic(fmt.Errorf("net transport: send to executor %d: %w", s.dest, err))
	}
}

// Control-plane messages, gob-encoded over each worker's coordinator
// connection. netEnvelope is the single top-level frame; exactly one
// field is set per message.
type netEnvelope struct {
	Hello    *netHello
	Start    *netStart
	Sink     *netSinkData
	Done     *netDone
	Shutdown bool
}

// netHello is the worker's first message: its identity, the data
// address peers should dial, and the attempt cookie the coordinator
// uses to reject stragglers from a killed attempt.
type netHello struct {
	Worker   int
	Attempt  int
	DataAddr string
}

// netStart releases the workers once all have checked in; Peers[i] is
// worker i's data address.
type netStart struct {
	Peers []string
}

// netSinkData streams a slice of one sink's collected output, in
// arrival order. The coordinator treats each marker as a committed
// cut boundary.
type netSinkData struct {
	Sink   string
	Events []codec.WireEvent
}

// netSummary is one executor's final counters.
type netSummary struct {
	Component string
	Instance  int
	Executed  int64
	Emitted   int64
	BusyNs    int64
	Restarts  int64
	Replayed  int64
	Dropped   int64
	CombIn    int64
	CombOut   int64
	Cuts      int64
}

// netDone reports a worker's run completion; Failure carries the
// executor error text when the local run failed.
type netDone struct {
	Summaries []netSummary
	Failure   string
}
