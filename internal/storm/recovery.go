package storm

import (
	"fmt"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// This file implements marker-cut recovery for bolt executors: the
// runtime half of the paper's §1 claim that marker-delimited cuts
// give a principled point for checkpointing and recovery.
//
// An aligned bolt executor only mutates its operator instance when
// the MRG merger flushes a complete block (items of block i from
// every input channel, then marker i) — between cuts the instance is
// untouched. The recovery discipline exploits exactly that:
//
//   - Emissions are buffered per block and sent downstream only when
//     the block's cut completes, with every serialization performed
//     before the first send. Downstream therefore never observes a
//     partially processed block: the flush is transactional.
//   - At each completed cut the executor snapshots its instance
//     (Recoverable — core.Snapshotter under the compile adapters)
//     and records the round-robin cursors. The MRG merger itself is
//     the replay buffer: it pops a block only after the block and its
//     marker were fully delivered, so at any crash point
//     MergeState.Pending is exactly the per-channel input received
//     since each channel's last flushed block.
//   - On a crash (a real bug or an injected fault) the executor
//     builds a fresh instance, restores the last snapshot, rebuilds
//     the merger by replaying the pending input, and resumes.
//     Replayed events are re-delivered at least once; because the
//     state was rolled back to the same marker cut the re-delivery is
//     effectively exactly-once, and the run's output is
//     trace-equivalent to a failure-free run.
//
// Executors whose bolts cannot snapshot (or whose restart budget is
// exhausted) degrade per RecoveryPolicy.OnUnrecoverable: abort the
// topology, or drop items and keep forwarding sequence-deduplicated
// markers so downstream alignment still progresses.

// Recoverable is the optional Bolt extension enabling marker-cut
// recovery: a snapshot taken at a cut restores an equivalent bolt on
// a fresh instance. The compile package adapts core.Snapshotter
// instances to this interface; handcrafted bolts may implement it
// directly. Snapshot must return an isolated copy (later mutation of
// the live bolt cannot corrupt it).
type Recoverable interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// recExec is the state of one recoverable bolt executor.
type recExec struct {
	rc       *runtimeComponent
	instance int
	is       *metrics.InstanceStats
	em       *emitter
	ef       *executorFaults
	pol      RecoveryPolicy

	// cg/g are the run's reconfiguration barrier and this executor's
	// entry (rescale.go); g is nil when the run cannot host rescales.
	cg *cutGate
	g  *execGate
	// eosLeft counts input channels still open; a rescale barrier that
	// widens the input resets it (no channel has closed at a barrier).
	eosLeft int
	// retired is set when a rescale replaced this executor's component
	// instance set: exit without finishing or propagating EOS.
	retired bool

	bolt  Bolt
	merge *stream.MergeState
	// outBuf holds the current block's pending output: bolt emissions
	// (for sinks: delivered events), flushed at the cut.
	outBuf []stream.Event
	// snap/rrSnap are the committed checkpoint: instance state and
	// round-robin cursors at the last completed cut. hasSnap is false
	// until the first cut (restart then uses a fresh instance).
	snap     []byte
	hasSnap  bool
	rrSnap   []int
	restarts int
	// markerSeen maps a marker sequence number to the wall time
	// (UnixNano) its first copy arrived at this executor; the entry
	// survives restarts, so the marker-cut lag recorded at the cut's
	// completion includes any recovery time spent in between. nil when
	// observability is disabled.
	markerSeen map[int64]int64
	// qskip is the countdown to the next sampled queue observation
	// (see queueObsEvery).
	qskip int
	// deliverFn/bufEmitFn are the per-executor closures handed to the
	// merger and the bolt (allocated once, not per event).
	deliverFn func(stream.Event)
	bufEmitFn func(stream.Event)
}

// runRecoverableBolt is the executor loop for aligned bolts when
// recovery is enabled. Non-aligned bolts have no marker cuts to
// recover to and keep the plain runBolt path.
func runRecoverableBolt(rc *runtimeComponent, instance int, is *metrics.InstanceStats, hash func(any) int, ef *executorFaults, pol RecoveryPolicy, cg *cutGate, g *execGate) error {
	x := &recExec{
		rc:       rc,
		instance: instance,
		is:       is,
		em:       newEmitter(rc, instance, is, hash),
		ef:       ef,
		pol:      pol,
		cg:       cg,
		g:        g,
		merge:    stream.NewMergeState(rc.nChannels),
		rrSnap:   make([]int, len(rc.subs)),
	}
	x.em.faults = ef
	x.deliverFn = x.deliver
	x.bufEmitFn = x.bufEmit
	if is.ObsEnabled() {
		x.markerSeen = map[int64]int64{}
		x.qskip = 1
	}
	if g != nil {
		g.em = x.em
		g.x = x
		defer cg.leave(g)
	}
	switch {
	case g != nil && g.seed != nil:
		// Spawned by a rescale: start from the re-sharded shard instead
		// of the factory (the seed bolt was restored under the barrier).
		x.bolt = g.seed.bolt
		x.snap = g.seed.snap
		x.hasSnap = len(g.seed.snap) > 0
	case !rc.isSink:
		x.bolt = rc.bolt(instance)
	}

	var fatal error
	var degraded *degradeState
	obs := is.ObsEnabled()
	x.eosLeft = rc.nChannels
	inbox := rc.inboxes[instance]
	depth := &rc.depths[instance]
	// feed consumes one live event with full crash recovery. The
	// recoverable path unboxes column batches through it row by row:
	// the MRG merger doubles as the replay buffer here, and boxed
	// events are what Pending captures and replayAll re-delivers, so
	// keeping the merger boxed keeps every recovery invariant
	// untouched (markers never ride in batches, so no cut can complete
	// mid-batch either).
	feed := func(ch int, ev stream.Event, sent int64, rest int) {
		if fatal != nil {
			return // failed executor keeps draining to its EOS
		}
		if degraded != nil {
			degraded.handle(ev)
			return
		}
		recorded, err := x.process(ch, ev, sent, rest)
		if err != nil {
			// Capture the un-flushed input before restart replaces the
			// merger. An injected fault fires before the event reaches
			// the merger, so re-append it to keep per-channel order.
			pending := x.merge.Pending()
			if !recorded {
				pending[ch] = append(pending[ch], ev)
			}
			left, rerr := x.recoverFrom(err, pending)
			if rerr != nil {
				if pol.OnUnrecoverable == DropAndLog {
					degraded = x.degrade(rerr, left)
				} else {
					fatal = rerr
				}
				// The executor stopped completing cuts: a rescale
				// barrier can no longer form, and parked peers must
				// not wait for one.
				if g != nil {
					cg.leave(g)
				}
			}
		}
	}
	for x.eosLeft > 0 && !x.retired {
		bp := recvBatch(inbox, x.em)
		if bp == nil {
			continue // idle flush fired; retry the receive
		}
		batch := *bp
		if obs {
			depth.Add(-int64(len(batch)))
		}
		for bi := range batch {
			m := batch[bi]
			if m.eos {
				x.eosLeft--
				continue
			}
			if x.retired {
				break // replaced by a rescale; nothing beyond the barrier exists
			}
			if m.cols != nil {
				cols := m.cols
				for ri, n := 0, cols.Len(); ri < n; ri++ {
					feed(m.ch, cols.EventAt(ri), m.sent, len(batch)-bi)
				}
				cols.Release()
				continue
			}
			feed(m.ch, m.ev, m.sent, len(batch)-bi)
		}
		putBatch(bp)
		if x.retired {
			return nil
		}
		// Bound buffered-output residency under a steady input trickle
		// (recvBatch's idle timer resets at every received vector).
		x.em.tick()
	}
	if fatal == nil && degraded == nil {
		if left, err := x.finish(); err != nil {
			if pol.OnUnrecoverable == DropAndLog {
				x.degrade(err, left)
			} else {
				fatal = err
			}
		}
	}
	if g != nil {
		cg.leave(g)
	}
	x.em.eos()
	return fatal
}

// process consumes one live event, converting an executor panic into
// an error. sent is the message's send stamp (0 without observability)
// and rest is the not-yet-processed remainder of the current input
// vector, this event included (queue-depth accounting). recorded
// reports whether the event reached the merger: it is false exactly
// when the injected fault fired first (once merge.Next is entered the
// event is appended before any consumer code that could panic runs).
func (x *recExec) process(ch int, ev stream.Event, sent int64, rest int) (recorded bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("storm: executor %s[%d] panicked: %v", x.rc.name, x.instance, r)
		}
	}()
	x.ef.onEvent(x.rc.name, x.instance)
	recorded = true
	t0 := time.Now()
	if x.markerSeen != nil {
		now := t0.UnixNano()
		x.em.now = now
		if x.qskip--; x.qskip == 0 {
			x.qskip = queueObsEvery
			// Inbox depth in events, plus the current vector's
			// unprocessed remainder.
			x.is.ObserveQueueDepth(int(x.rc.depths[x.instance].Load()) + rest)
			if sent != 0 {
				x.is.ObserveQueue(time.Duration(now - sent))
			}
		}
		if ev.IsMarker {
			if _, ok := x.markerSeen[ev.Marker.Seq]; !ok {
				x.markerSeen[ev.Marker.Seq] = now
			}
		}
	}
	x.merge.Next(ch, ev, x.deliverFn)
	d := time.Since(t0)
	x.is.AddBusy(d)
	x.is.ObserveExec(t0, d)
	return recorded, nil
}

// deliver receives one merged event (item, or the cut-completing
// marker) for the operator. It is the emit target of the MRG merger.
func (x *recExec) deliver(e stream.Event) {
	x.is.AddExecuted(1)
	if x.rc.isSink {
		x.outBuf = append(x.outBuf, e)
	} else {
		x.bolt.Next(e, x.bufEmitFn)
	}
	if e.IsMarker {
		x.completeCut(e.Marker.Seq)
	}
}

// bufEmit buffers one bolt emission until the block's cut completes.
func (x *recExec) bufEmit(e stream.Event) { x.outBuf = append(x.outBuf, e) }

// completeCut runs when the merger has flushed a complete block and
// its marker through deliver: snapshot the instance at the cut, flush
// the block's buffered output transactionally, then commit the
// checkpoint. A panic before the flush's first send (snapshot error,
// serialization failure, injected corruption) rolls back to the
// previous cut with nothing delivered; after the sends only
// executor-local bookkeeping remains. The merger pops the flushed
// block itself once the cut's marker delivery returns, so no replay
// trimming is needed here. seq is the cut's marker sequence number,
// used to record the marker-cut lag (first marker arrival to this
// commit, recovery time included).
func (x *recExec) completeCut(seq int64) {
	var snap []byte
	snapped := x.rc.isSink
	if !x.rc.isSink {
		if r, ok := x.bolt.(Recoverable); ok {
			b, err := r.Snapshot()
			if err != nil {
				panic(fmt.Sprintf("snapshot failed at marker cut: %v", err))
			}
			snap, snapped = b, true
		}
	}
	x.flushOut()
	if snapped {
		x.snap, x.hasSnap = snap, true
	}
	x.rrSnap = append(x.rrSnap[:0], x.em.rrNext...)
	// The buffered events were copied on send (or into the sink's
	// output), so the backing array is reused for the next block.
	x.outBuf = x.outBuf[:0]
	if x.markerSeen != nil {
		if first, ok := x.markerSeen[seq]; ok {
			x.is.ObserveMarkerLag(time.Duration(time.Now().UnixNano() - first))
			delete(x.markerSeen, seq)
		}
	}
	x.is.AddCuts(1)
	// The cut is committed: enter the reconfiguration barrier last, so
	// a rescale at this cut sees the snapshot and an empty transport
	// (nothing runs between here and the next input). A true return
	// means a rescale replaced this executor's instance set.
	if x.g != nil && x.cg.cutDone(x.g) {
		x.retired = true
	}
}

// flushOut sends the buffered block downstream (or appends it to the
// sink's collected output).
func (x *recExec) flushOut() {
	if len(x.outBuf) == 0 {
		return
	}
	if x.rc.isSink {
		x.rc.appendSink(x.outBuf...)
		return
	}
	x.em.sendBlock(x.outBuf)
}

// recoverFrom restarts the executor after a crash: restore the last
// checkpoint and replay pending, the in-flight input captured from
// the crashed merger. It retries up to the policy's restart budget (a
// deterministic bug re-panics during replay) and returns (nil, nil)
// on success, or the still-pending input with the terminal error so a
// drop-and-log caller can drain it.
func (x *recExec) recoverFrom(cause error, pending [][]stream.Event) ([][]stream.Event, error) {
	if x.rc.bolt != nil {
		if _, ok := x.bolt.(Recoverable); !ok && !x.rc.isSink {
			return pending, fmt.Errorf("%w (bolt is not snapshottable)", cause)
		}
	}
	for {
		x.restarts++
		if x.restarts > x.pol.maxRestarts() {
			return pending, fmt.Errorf("%w (restart budget of %d exhausted)", cause, x.pol.maxRestarts())
		}
		x.is.AddRestarts(1)
		x.pol.logf("storm: restarting %s[%d] from its last marker cut after: %v", x.rc.name, x.instance, cause)
		if err := x.restart(); err != nil {
			return pending, fmt.Errorf("storm: restart of %s[%d] failed: %w", x.rc.name, x.instance, err)
		}
		left, err := x.replayAll(pending)
		if err != nil {
			cause, pending = err, left
			continue
		}
		return nil, nil
	}
}

// restart rebuilds the executor at its last committed cut: a fresh
// bolt instance restored from the snapshot, reset round-robin
// cursors, an empty merger, and an empty output buffer. The emitter's
// transport buffers — combining buffers included — need no discard:
// between cuts every emission is parked in outBuf (never pushed to
// the transport), a crash inside a cut's flush can only fire before
// the first buffer append (sendBlock wires everything first; flushAll
// itself cannot panic — combiner In/Combine are pure by the template
// contract), and sendBlock ends in flushAll, which drains every
// combining buffer before flushing, so both buffer layers are
// provably empty at every restart point.
func (x *recExec) restart() error {
	if !x.rc.isSink {
		b := x.rc.bolt(x.instance)
		r, ok := b.(Recoverable)
		if !ok {
			return fmt.Errorf("restarted bolt is not snapshottable")
		}
		if x.hasSnap {
			if err := r.Restore(x.snap); err != nil {
				return fmt.Errorf("restore: %w", err)
			}
		}
		x.bolt = b
	}
	x.em.rrNext = append(x.em.rrNext[:0], x.rrSnap...)
	x.merge = stream.NewMergeState(x.rc.nChannels)
	x.outBuf = nil
	return nil
}

// replayAll re-delivers the pending in-flight input through the fresh
// merger, exactly as if it were arriving live except that injected
// per-event faults do not re-fire (cuts that complete during replay
// flush and commit normally). On a crash mid-replay it returns the
// input still pending — what the fresh merger had absorbed without
// flushing, followed by the not-yet-fed tails — so a further retry
// replays everything since the last committed cut.
func (x *recExec) replayAll(pending [][]stream.Event) ([][]stream.Event, error) {
	fed := make([]int, len(pending))
	err := guard(x.rc.name, x.instance, func() {
		t0 := time.Now()
		if x.markerSeen != nil {
			x.em.now = t0.UnixNano()
		}
		for {
			progressed := false
			for ch := range pending {
				if fed[ch] < len(pending[ch]) {
					e := pending[ch][fed[ch]]
					fed[ch]++
					x.is.AddReplayed(1)
					x.merge.Next(ch, e, x.deliverFn)
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		x.is.AddBusy(time.Since(t0))
	})
	if err == nil {
		return nil, nil
	}
	left := x.merge.Pending()
	for ch := range pending {
		left[ch] = append(left[ch], pending[ch][fed[ch]:]...)
	}
	return left, err
}

// finish runs the end-of-stream step — trailing unaligned items,
// the optional Flusher, and the final partial block's flush — with
// the same crash recovery as live processing. On terminal failure it
// returns the still-pending input for drop-and-log draining.
func (x *recExec) finish() ([][]stream.Event, error) {
	for {
		err := guard(x.rc.name, x.instance, func() {
			t0 := time.Now()
			if x.markerSeen != nil {
				x.em.now = t0.UnixNano()
			}
			for _, e := range x.merge.Trailing() {
				x.deliver(e)
			}
			if !x.rc.isSink {
				if f, ok := x.bolt.(Flusher); ok {
					f.Flush(x.bufEmitFn)
				}
			}
			x.flushOut()
			x.is.AddBusy(time.Since(t0))
		})
		if err == nil {
			return nil, nil
		}
		x.pol.logf("storm: %s[%d] failed during shutdown: %v", x.rc.name, x.instance, err)
		pending := x.merge.Pending()
		if left, rerr := x.recoverFrom(err, pending); rerr != nil {
			return left, rerr
		}
	}
}

// degradeState is an aligned executor after an unrecoverable failure
// under the drop-and-log policy: items are dropped (and counted), and
// markers are forwarded once each — deduplicated by sequence number
// across the executor's input channels — so downstream marker
// alignment keeps progressing.
type degradeState struct {
	x *recExec
	// seen[seq] counts input channels that delivered marker seq.
	seen    map[int64]int
	stopped bool
}

// degrade transitions the executor into drop-and-log mode, dropping
// the pending input left over from the failed recovery and forwarding
// any marker that input already completed.
func (x *recExec) degrade(cause error, pending [][]stream.Event) *degradeState {
	x.pol.logf("storm: %s[%d] is unrecoverable, degrading to drop-and-log: %v", x.rc.name, x.instance, cause)
	d := &degradeState{x: x, seen: map[int64]int{}}
	for _, buf := range pending {
		for _, e := range buf {
			d.handle(e)
		}
	}
	x.outBuf = nil
	return d
}

// handle processes one event in degraded mode.
func (d *degradeState) handle(e stream.Event) {
	if !e.IsMarker {
		d.x.is.AddDropped(1)
		return
	}
	d.seen[e.Marker.Seq]++
	if d.seen[e.Marker.Seq] < d.x.rc.nChannels {
		return
	}
	delete(d.seen, e.Marker.Seq)
	if d.stopped {
		return
	}
	// Channels deliver markers in sequence order, so completions are
	// in sequence order too; forward each completed marker once.
	if err := guard(d.x.rc.name, d.x.instance, func() {
		d.x.em.emit(e)
	}); err != nil {
		d.x.pol.logf("storm: degraded %s[%d] stopped forwarding markers: %v", d.x.rc.name, d.x.instance, err)
		d.stopped = true
	}
}
