package storm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

func mk(seq, ts int64) stream.Event { return stream.Mark(stream.Marker{Seq: seq, Timestamp: ts}) }

// testStream builds k blocks of items 0..n-1 with keys mod keys.
func testStream(blocks, perBlock, keys int) []stream.Event {
	var out []stream.Event
	v := 0
	for b := 0; b < blocks; b++ {
		for i := 0; i < perBlock; i++ {
			out = append(out, stream.Item(v%keys, v))
			v++
		}
		out = append(out, mk(int64(b), int64(10*(b+1))))
	}
	return out
}

func identityBolt(int) Bolt {
	return BoltFunc(func(e stream.Event, emit func(stream.Event)) { emit(e) })
}

func TestLinearPipelineDeliversEverything(t *testing.T) {
	in := testStream(3, 5, 2)
	top := NewTopology("linear")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("id", 1, identityBolt).ShuffleGrouping("src", true)
	top.AddSink("sink", "id")
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], in) {
		t.Fatalf("sink stream differs:\n in  %s\n out %s", stream.Render(in), stream.Render(res.Sinks["sink"]))
	}
}

func TestParallelStatelessPreservesTrace(t *testing.T) {
	in := testStream(4, 20, 5)
	for par := 2; par <= 4; par++ {
		top := NewTopology("par")
		top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
		top.AddBolt("id", par, identityBolt).ShuffleGrouping("src", true)
		top.AddSink("sink", "id")
		res, err := top.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], in) {
			t.Fatalf("parallelism %d: trace changed:\n in  %s\n out %s",
				par, stream.Render(in), stream.Render(res.Sinks["sink"]))
		}
	}
}

func TestFieldsGroupingRoutesByKey(t *testing.T) {
	in := testStream(2, 12, 4)
	var mu sync.Mutex
	seen := map[int]map[any]bool{} // instance -> keys
	top := NewTopology("fields")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("tap", 3, func(inst int) Bolt {
		return BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			if !e.IsMarker {
				mu.Lock()
				if seen[inst] == nil {
					seen[inst] = map[any]bool{}
				}
				seen[inst][e.Key] = true
				mu.Unlock()
			}
			emit(e)
		})
	}).FieldsGrouping("src", true)
	top.AddSink("sink", "tap")
	if _, err := top.Run(); err != nil {
		t.Fatal(err)
	}
	// No key may appear at two instances.
	owner := map[any]int{}
	for inst, keys := range seen {
		for k := range keys {
			if prev, ok := owner[k]; ok && prev != inst {
				t.Fatalf("key %v processed by instances %d and %d", k, prev, inst)
			}
			owner[k] = inst
		}
	}
}

func TestMarkersBroadcastToAllInstances(t *testing.T) {
	in := testStream(3, 4, 2)
	var mu sync.Mutex
	markerCount := map[int]int{}
	top := NewTopology("markers")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("tap", 3, func(inst int) Bolt {
		return BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				mu.Lock()
				markerCount[inst]++
				mu.Unlock()
			}
		})
	}).ShuffleGrouping("src", true)
	top.AddSink("sink", "tap")
	if _, err := top.Run(); err != nil {
		t.Fatal(err)
	}
	for inst := 0; inst < 3; inst++ {
		if markerCount[inst] != 3 {
			t.Fatalf("instance %d saw %d markers, want 3", inst, markerCount[inst])
		}
	}
}

func TestAlignedSinkHasOneMarkerPerBlock(t *testing.T) {
	in := testStream(3, 6, 3)
	top := NewTopology("align")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("id", 4, identityBolt).ShuffleGrouping("src", true)
	top.AddSink("sink", "id")
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	markers := 0
	for _, e := range res.Sinks["sink"] {
		if e.IsMarker {
			markers++
		}
	}
	if markers != 3 {
		t.Fatalf("aligned sink saw %d markers, want 3 (one per block):\n%s",
			markers, stream.Render(res.Sinks["sink"]))
	}
}

func TestRawEdgeDeliversDuplicateMarkers(t *testing.T) {
	// Without alignment (a handcrafted topology), a consumer fed by 2
	// upstream instances sees each marker twice — the raw Storm
	// behaviour hand-written code must compensate for.
	in := testStream(2, 4, 2)
	top := NewTopology("raw")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("id", 2, identityBolt).ShuffleGrouping("src", true)
	var mu sync.Mutex
	markers := 0
	top.AddBolt("tap", 1, func(int) Bolt {
		return BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				mu.Lock()
				markers++
				mu.Unlock()
			}
		})
	}).GlobalGrouping("id", false)
	top.AddSink("sink", "tap")
	if _, err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if markers != 4 {
		t.Fatalf("raw consumer saw %d markers, want 4 (2 blocks × 2 instances)", markers)
	}
}

func TestBroadcastGrouping(t *testing.T) {
	in := testStream(1, 5, 2)
	var mu sync.Mutex
	counts := map[int]int{}
	top := NewTopology("bcast")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("tap", 3, func(inst int) Bolt {
		return BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			if !e.IsMarker {
				mu.Lock()
				counts[inst]++
				mu.Unlock()
			}
		})
	}).BroadcastGrouping("src", true)
	top.AddSink("sink", "tap")
	if _, err := top.Run(); err != nil {
		t.Fatal(err)
	}
	for inst := 0; inst < 3; inst++ {
		if counts[inst] != 5 {
			t.Fatalf("instance %d saw %d items, want 5", inst, counts[inst])
		}
	}
}

func TestMultiSpoutAlignment(t *testing.T) {
	a := []stream.Event{stream.Item(1, 1), mk(0, 10), stream.Item(1, 2), mk(1, 20)}
	b := []stream.Event{stream.Item(2, 9), mk(0, 10), stream.Item(2, 8), mk(1, 20)}
	top := NewTopology("twosrc")
	top.AddSpout("a", 1, func(int) Spout { return SliceSpout(a) })
	top.AddSpout("b", 1, func(int) Spout { return SliceSpout(b) })
	top.AddBolt("id", 1, identityBolt).
		ShuffleGrouping("a", true).
		ShuffleGrouping("b", true)
	top.AddSink("sink", "id")
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []stream.Event{
		stream.Item(1, 1), stream.Item(2, 9), mk(0, 10),
		stream.Item(1, 2), stream.Item(2, 8), mk(1, 20),
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], want) {
		t.Fatalf("got %s want %s", stream.Render(res.Sinks["sink"]), stream.Render(want))
	}
}

func TestFlusherRunsAtShutdown(t *testing.T) {
	flushed := false
	top := NewTopology("flush")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(testStream(1, 2, 1)) })
	top.AddBolt("f", 1, func(int) Bolt { return &flushBolt{done: &flushed} }).ShuffleGrouping("src", true)
	top.AddSink("sink", "f")
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !flushed {
		t.Fatal("Flush was not called")
	}
	// The flush emission must reach the sink.
	found := false
	for _, e := range res.Sinks["sink"] {
		if !e.IsMarker && e.Key == "flush" {
			found = true
		}
	}
	if !found {
		t.Fatal("flush emission lost")
	}
}

type flushBolt struct{ done *bool }

func (f *flushBolt) Next(e stream.Event, emit func(stream.Event)) {}
func (f *flushBolt) Flush(emit func(stream.Event)) {
	*f.done = true
	emit(stream.Item("flush", 1))
}

func TestStatsCounters(t *testing.T) {
	in := testStream(2, 10, 3)
	top := NewTopology("stats")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("id", 2, identityBolt).ShuffleGrouping("src", true)
	top.AddSink("sink", "id")
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	srcExec, srcEmit := res.Stats.Component("src")
	if srcExec != int64(len(in)) || srcEmit != int64(len(in)) {
		t.Fatalf("src executed/emitted = %d/%d, want %d", srcExec, srcEmit, len(in))
	}
	idExec, _ := res.Stats.Component("id")
	// 20 items + 2 markers × 2 instances (markers broadcast).
	if idExec != 24 {
		t.Fatalf("id executed = %d, want 24", idExec)
	}
	if res.Stats.TotalBusy() <= 0 {
		t.Fatal("busy time not recorded")
	}
	if !strings.Contains(res.Stats.String(), "id") {
		t.Fatal("stats table missing component")
	}
}

func TestMakespanScaling(t *testing.T) {
	s := metrics.NewStats()
	for i := 0; i < 4; i++ {
		is := s.Instance("c", i)
		is.SetBusy(time.Second)
	}
	if got := s.Makespan(1); got != 4*time.Second {
		t.Fatalf("makespan(1) = %v", got)
	}
	if got := s.Makespan(2); got != 2*time.Second {
		t.Fatalf("makespan(2) = %v", got)
	}
	if got := s.Makespan(4); got != time.Second {
		t.Fatalf("makespan(4) = %v", got)
	}
	if got := s.Makespan(8); got != time.Second {
		t.Fatalf("makespan(8) = %v (cannot beat one instance)", got)
	}
	if tp := s.Throughput(4000, 4); tp < 3900 || tp > 4100 {
		t.Fatalf("throughput = %v, want ≈4000", tp)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Topology
		want  string
	}{
		{"unknown input", func() *Topology {
			top := NewTopology("x")
			top.AddBolt("b", 1, identityBolt).ShuffleGrouping("ghost", false)
			return top
		}, "unknown component"},
		{"no inputs", func() *Topology {
			top := NewTopology("x")
			top.AddBolt("b", 1, identityBolt)
			return top
		}, "no inputs"},
		{"mixed alignment", func() *Topology {
			top := NewTopology("x")
			top.AddSpout("s1", 1, func(int) Spout { return SliceSpout(nil) })
			top.AddSpout("s2", 1, func(int) Spout { return SliceSpout(nil) })
			top.AddBolt("b", 1, identityBolt).
				ShuffleGrouping("s1", true).
				ShuffleGrouping("s2", false)
			return top
		}, "mixes aligned and raw"},
		{"subscribing to sink", func() *Topology {
			top := NewTopology("x")
			top.AddSpout("s", 1, func(int) Spout { return SliceSpout(nil) })
			top.AddSink("k", "s")
			top.AddBolt("b", 1, identityBolt).ShuffleGrouping("k", false)
			return top
		}, "subscribes to sink"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build().Run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestDuplicateComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate component must panic")
		}
	}()
	top := NewTopology("x")
	top.AddSpout("s", 1, func(int) Spout { return SliceSpout(nil) })
	top.AddSpout("s", 1, func(int) Spout { return SliceSpout(nil) })
}

func TestTopologyString(t *testing.T) {
	top := NewTopology("demo")
	top.AddSpout("src", 2, func(int) Spout { return SliceSpout(nil) })
	top.AddBolt("b", 3, identityBolt).FieldsGrouping("src", true)
	top.AddSink("k", "b")
	s := top.String()
	for _, want := range []string{"spout src ×2", "bolt b ×3", "fields,aligned", "sink k"} {
		if !strings.Contains(s, want) {
			t.Fatalf("topology string missing %q:\n%s", want, s)
		}
	}
}

func TestBackpressureSmallChannels(t *testing.T) {
	// A tiny channel capacity must not deadlock the pipeline.
	in := testStream(5, 50, 4)
	top := NewTopology("bp")
	top.ChannelCap = 1
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("a", 2, identityBolt).ShuffleGrouping("src", true)
	top.AddBolt("b", 3, identityBolt).FieldsGrouping("a", true)
	top.AddSink("sink", "b")
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = top.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock with small channel capacity")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["sink"], in) {
		t.Fatal("backpressured run changed the trace")
	}
}

// --- failure injection -------------------------------------------------------

type panicBolt struct{ after int }

func (p *panicBolt) Next(e stream.Event, emit func(stream.Event)) {
	if !e.IsMarker {
		p.after--
		if p.after < 0 {
			panic("injected bolt failure")
		}
	}
	emit(e)
}

func TestBoltPanicIsReportedNotFatal(t *testing.T) {
	in := testStream(4, 20, 3)
	top := NewTopology("crash")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("bad", 2, func(int) Bolt { return &panicBolt{after: 5} }).ShuffleGrouping("src", true)
	top.AddSink("sink", "bad")
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = top.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("topology deadlocked after bolt panic")
	}
	if err == nil || !strings.Contains(err.Error(), "injected bolt failure") {
		t.Fatalf("expected the panic to surface as an error, got %v", err)
	}
	if !strings.Contains(err.Error(), "bad[") {
		t.Fatalf("error must name the failing executor: %v", err)
	}
	if res == nil {
		t.Fatal("partial result must still be returned")
	}
}

type panicSpout struct{ n int }

func (p *panicSpout) Next() (stream.Event, bool) {
	p.n--
	if p.n < 0 {
		panic("injected spout failure")
	}
	return stream.Item(1, p.n), true
}

func TestSpoutPanicIsReportedNotFatal(t *testing.T) {
	top := NewTopology("crash-spout")
	top.AddSpout("src", 1, func(int) Spout { return &panicSpout{n: 10} })
	top.AddBolt("id", 2, identityBolt).ShuffleGrouping("src", true)
	top.AddSink("sink", "id")
	done := make(chan struct{})
	var err error
	go func() {
		_, err = top.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("topology deadlocked after spout panic")
	}
	if err == nil || !strings.Contains(err.Error(), "injected spout failure") {
		t.Fatalf("expected the panic to surface as an error, got %v", err)
	}
}

func TestHealthyComponentsDrainAfterFailure(t *testing.T) {
	// One of two parallel bolt instances fails immediately; the other
	// must still process its share and the topology must terminate
	// with the survivor's output at the sink.
	in := testStream(2, 10, 2)
	top := NewTopology("partial")
	top.AddSpout("src", 1, func(int) Spout { return SliceSpout(in) })
	top.AddBolt("mixed", 2, func(inst int) Bolt {
		if inst == 0 {
			return &panicBolt{after: 0}
		}
		return identityBolt(inst)
	}).ShuffleGrouping("src", true)
	top.AddSink("sink", "mixed")
	res, err := top.Run()
	if err == nil {
		t.Fatal("failure must be reported")
	}
	items := 0
	for _, e := range res.Sinks["sink"] {
		if !e.IsMarker {
			items++
		}
	}
	if items == 0 {
		t.Fatal("survivor instance produced no output")
	}
}
