package storm

import (
	"fmt"
	"time"
)

// This file is the fault-injection half of the runtime's fault
// tolerance subsystem (recovery.go is the other half). A FaultPlan
// describes deterministic failures — executor crashes at the Nth
// event, serializer corruption on a chosen edge, artificially slow
// executors — that the runtime injects while a topology runs. The
// plan replaces ad-hoc panicking test bolts: chaos tests declare
// where the topology must fail and the recovery machinery must bring
// it back, without touching the component code under test.
//
// All injected-fault state is resolved per executor before the
// executors start and is touched only by that executor's goroutine,
// so fault injection adds no synchronization and the whole subsystem
// stays race-clean.

// FaultKind classifies an injected fault.
type FaultKind int

const (
	// CrashFault panics the target executor when its event counter
	// reaches AtEvent (bolts count received events, spouts produced
	// events; end-of-stream notices don't count).
	CrashFault FaultKind = iota
	// SlowFault delays the target executor by Delay on every event,
	// modelling a straggler.
	SlowFault
	// CorruptFault fails the serialization of the AtEvent-th send by
	// the target executor on the edge to component To, modelling a
	// poisoned wire encoding. The producing executor crashes (and, if
	// recoverable, restarts) exactly as a real serializer error would
	// make it.
	CorruptFault
)

// Fault is one declared failure. Component and Instance select the
// target executor; the remaining fields depend on Kind.
type Fault struct {
	Kind      FaultKind
	Component string
	Instance  int
	// AtEvent is the 1-based event count at which a crash or
	// corruption triggers.
	AtEvent int64
	// Times is how many consecutive events trigger a CrashFault once
	// AtEvent is reached (default 1). A recovered executor resumes at
	// its live event counter, so Times > 1 exercises repeated
	// crash/recover cycles.
	Times int
	// Delay is the per-event delay of a SlowFault.
	Delay time.Duration
	// To is the consumer component of a CorruptFault's edge.
	To string
}

// FaultPlan is a deterministic failure schedule for one topology run.
// Build it with the fluent methods and install it with
// Topology.SetFaultPlan before Run.
type FaultPlan struct {
	faults []Fault
}

// NewFaultPlan creates an empty plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// CrashAt schedules executor component[instance] to panic upon its
// atEvent-th event (1-based).
func (p *FaultPlan) CrashAt(component string, instance int, atEvent int64) *FaultPlan {
	return p.add(Fault{Kind: CrashFault, Component: component, Instance: instance, AtEvent: atEvent, Times: 1})
}

// CrashTimes is CrashAt firing on `times` consecutive events, for
// repeated crash/recover cycles of one executor.
func (p *FaultPlan) CrashTimes(component string, instance int, atEvent int64, times int) *FaultPlan {
	if times < 1 {
		times = 1
	}
	return p.add(Fault{Kind: CrashFault, Component: component, Instance: instance, AtEvent: atEvent, Times: times})
}

// SlowExecutor makes executor component[instance] sleep perEvent
// before processing each event.
func (p *FaultPlan) SlowExecutor(component string, instance int, perEvent time.Duration) *FaultPlan {
	return p.add(Fault{Kind: SlowFault, Component: component, Instance: instance, Delay: perEvent})
}

// CorruptEdge fails the atSend-th send (1-based) from executor
// from[fromInstance] to component to. Sends are counted per routed
// event, not per transport vector, so the fault keeps per-event
// granularity under the batched transport; it fires at wire time —
// when the event is serialized toward its batch, before any of the
// batch reaches the channel — so a corrupted emission never leaves a
// vector partially delivered.
func (p *FaultPlan) CorruptEdge(from string, fromInstance int, to string, atSend int64) *FaultPlan {
	return p.add(Fault{Kind: CorruptFault, Component: from, Instance: fromInstance, To: to, AtEvent: atSend, Times: 1})
}

// Add appends an explicitly constructed fault.
func (p *FaultPlan) Add(f Fault) *FaultPlan { return p.add(f) }

func (p *FaultPlan) add(f Fault) *FaultPlan {
	p.faults = append(p.faults, f)
	return p
}

// validate checks the plan against a topology's components.
func (p *FaultPlan) validate(t *Topology) error {
	for _, f := range p.faults {
		c, ok := t.components[f.Component]
		if !ok {
			return fmt.Errorf("storm: fault plan targets unknown component %q", f.Component)
		}
		if f.Instance < 0 || f.Instance >= c.parallelism {
			return fmt.Errorf("storm: fault plan targets %s[%d], parallelism is %d", f.Component, f.Instance, c.parallelism)
		}
		if f.Kind == CorruptFault {
			if _, ok := t.components[f.To]; !ok {
				return fmt.Errorf("storm: fault plan corrupts edge to unknown component %q", f.To)
			}
		}
	}
	return nil
}

// crashState is the live countdown of one CrashFault.
type crashState struct {
	at   int64
	left int
}

// corruptState is the live countdown of one CorruptFault.
type corruptState struct {
	at    int64
	sends int64
	left  int
}

// executorFaults is the fault state of a single executor. It is built
// once in Run and then owned by the executor's goroutine.
type executorFaults struct {
	events  int64
	delay   time.Duration
	crashes []*crashState
	// corrupt maps consumer component name → corruption schedule.
	corrupt map[string][]*corruptState
}

// injectedFault marks panics raised by fault injection, so errors can
// be told apart from genuine component bugs in tests and logs.
type injectedFault struct{ msg string }

func (f injectedFault) Error() string { return f.msg }

// faultsFor resolves the plan to one executor's local fault state,
// returning nil when no fault targets it.
func (p *FaultPlan) faultsFor(component string, instance int) *executorFaults {
	if p == nil {
		return nil
	}
	var ef *executorFaults
	lazy := func() *executorFaults {
		if ef == nil {
			ef = &executorFaults{}
		}
		return ef
	}
	for _, f := range p.faults {
		if f.Component != component || f.Instance != instance {
			continue
		}
		switch f.Kind {
		case CrashFault:
			lazy().crashes = append(lazy().crashes, &crashState{at: f.AtEvent, left: f.Times})
		case SlowFault:
			lazy().delay += f.Delay
		case CorruptFault:
			e := lazy()
			if e.corrupt == nil {
				e.corrupt = map[string][]*corruptState{}
			}
			e.corrupt[f.To] = append(e.corrupt[f.To], &corruptState{at: f.AtEvent, left: f.Times})
		}
	}
	return ef
}

// onEvent advances the executor's event counter, applies slow-executor
// delays, and panics if a crash fault triggers. Replayed events do not
// pass through onEvent, so a one-shot crash cannot re-fire during the
// recovery that it caused.
func (ef *executorFaults) onEvent(component string, instance int) {
	if ef == nil {
		return
	}
	ef.events++
	if ef.delay > 0 {
		time.Sleep(ef.delay)
	}
	for _, c := range ef.crashes {
		if ef.events >= c.at && c.left > 0 {
			c.left--
			panic(injectedFault{fmt.Sprintf("injected crash of %s[%d] at event %d", component, instance, ef.events)})
		}
	}
}

// onSend counts one send toward consumer `to` and panics if a
// corruption fault triggers on that edge.
func (ef *executorFaults) onSend(component string, instance int, to string) {
	if ef == nil || ef.corrupt == nil {
		return
	}
	for _, c := range ef.corrupt[to] {
		c.sends++
		if c.sends >= c.at && c.left > 0 {
			c.left--
			panic(injectedFault{fmt.Sprintf("injected serializer corruption on edge %s[%d]→%s at send %d", component, instance, to, c.sends)})
		}
	}
}

// Degradation selects what the runtime does when an executor fails
// and cannot be recovered (no snapshot support, restart budget
// exhausted, or restore itself failed).
type Degradation int

const (
	// AbortTopology records the failure and lets the topology drain;
	// Run returns an error (the pre-recovery behavior).
	AbortTopology Degradation = iota
	// DropAndLog keeps the topology alive: the failed executor drops
	// its remaining items (counted in Stats as Dropped), keeps
	// forwarding deduplicated markers so downstream alignment
	// progresses, and Run completes without error.
	DropAndLog
)

// String renders the degradation mode.
func (d Degradation) String() string {
	if d == DropAndLog {
		return "drop-and-log"
	}
	return "abort"
}

// RecoveryPolicy configures marker-cut checkpointing and restart for
// a topology run. The zero value disables recovery (seed behavior:
// any executor failure is fatal to the run).
type RecoveryPolicy struct {
	// Enabled turns on checkpointing and crash recovery for every
	// aligned bolt executor whose bolt implements Recoverable (and for
	// sinks, which the runtime checkpoints natively).
	Enabled bool
	// MaxRestarts bounds recoveries per executor (0 = default 5).
	// Beyond the budget the executor degrades per OnUnrecoverable, so
	// a deterministic bug cannot restart-loop forever.
	MaxRestarts int
	// OnUnrecoverable selects the degradation mode for executors that
	// fail and cannot be brought back.
	OnUnrecoverable Degradation
	// Logf, when set, receives one line per restart/degradation (e.g.
	// log.Printf). nil discards the log; the counters in Stats record
	// the events either way.
	Logf func(format string, args ...any)
}

func (p RecoveryPolicy) maxRestarts() int {
	if p.MaxRestarts <= 0 {
		return 5
	}
	return p.MaxRestarts
}

func (p RecoveryPolicy) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}
