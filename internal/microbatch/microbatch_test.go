package microbatch

import (
	"math/rand"
	"testing"

	"datatrace/internal/compile"
	"datatrace/internal/core"
	"datatrace/internal/iot"
	"datatrace/internal/smarthome"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

func mk(seq, ts int64) stream.Event { return stream.Mark(stream.Marker{Seq: seq, Timestamp: ts}) }

func randomStream(r *rand.Rand, nBlocks, maxPerBlock, keys int) []stream.Event {
	var out []stream.Event
	for b := 0; b < nBlocks; b++ {
		n := r.Intn(maxPerBlock + 1)
		for i := 0; i < n; i++ {
			out = append(out, stream.Item(r.Intn(keys), r.Intn(100)))
		}
		out = append(out, mk(int64(b), int64(10*(b+1))))
	}
	return out
}

func evenFilter() core.Operator {
	return &core.Stateless[int, int, int, int]{
		OpName: "filterEven",
		In:     stream.U("Int", "Int"),
		Out:    stream.U("Int", "Int"),
		OnItem: func(emit core.Emit[int, int], key, value int) {
			if key%2 == 0 {
				emit(key, value)
			}
		},
	}
}

func sumPerKey() core.Operator {
	return &core.KeyedUnordered[int, int, int, int, int, int]{
		OpName:       "sumPerKey",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(key, value int) int { return value },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() int { return 0 },
		UpdateState:  func(old, agg int) int { return old + agg },
		OnMarker: func(emit core.Emit[int, int], st int, key int, m stream.Marker) {
			emit(key, st)
		},
	}
}

func pipeline(p1, p2 int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	f := d.Op(evenFilter(), p1, src)
	s := d.Op(sumPerKey(), p2, f)
	d.Sink("out", s)
	return d
}

// TestMicroBatchMatchesReference: the micro-batch execution computes
// the DAG's denotation, at several parallelism settings and random
// inputs. The state must carry across batches (sumPerKey accumulates
// history), which exercises the per-partition instance reuse.
func TestMicroBatchMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		in := randomStream(r, 2+r.Intn(5), 10, 6)
		ref, err := pipeline(1, 1).Eval(map[string][]stream.Event{"src": in})
		if err != nil {
			t.Fatal(err)
		}
		for _, pars := range [][2]int{{1, 1}, {2, 3}, {4, 2}} {
			d := pipeline(pars[0], pars[1])
			res, err := RunDAG(d, map[string][]stream.Event{"src": in}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.EquivalentOutputs(ref, res.Sinks); err != nil {
				t.Fatalf("pars %v: %v", pars, err)
			}
		}
	}
}

// TestBackendsAgree: the storm backend and the micro-batch backend
// produce the same trace for the same DAG — the "other frameworks"
// compilation claim of section 8, as a test.
func TestBackendsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for trial := 0; trial < 8; trial++ {
		in := randomStream(r, 3, 12, 5)
		d := pipeline(3, 2)
		mb, err := RunDAG(d, map[string][]stream.Event{"src": in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := compile.Compile(pipeline(3, 2), map[string]compile.SourceSpec{
			"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := topo.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !stream.Equivalent(stream.U("Int", "Int"), mb.Sinks["out"], st.Sinks["out"]) {
			t.Fatalf("backends disagree:\n micro-batch %s\n storm       %s",
				stream.Render(mb.Sinks["out"]), stream.Render(st.Sinks["out"]))
		}
	}
}

// TestMicroBatchIoTPipeline runs the Example 4.1 pipeline (with SORT
// and a keyed-ordered stage) on the micro-batch engine.
func TestMicroBatchIoTPipeline(t *testing.T) {
	cfg := iot.DefaultSensorConfig()
	ref, err := iot.Reference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 3} {
		d := iot.PipelineDAG(cfg, par)
		res, err := RunDAG(d, map[string][]stream.Event{"hub": iot.Stream(cfg)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stream.Equivalent(iot.SinkType(), res.Sinks["sink"], ref["sink"]) {
			t.Fatalf("par %d: micro-batch IoT pipeline differs from reference", par)
		}
	}
}

// TestMicroBatchSmartHome runs the seven-stage Figure 5 pipeline.
func TestMicroBatchSmartHome(t *testing.T) {
	cfg := workload.DefaultSmartHomeConfig()
	cfg.Buildings = 2
	cfg.UnitsPerBuilding = 2
	cfg.PlugsPerUnit = 2
	cfg.Seconds = 40
	env, err := smarthome.NewEnv(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := smarthome.Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	d := smarthome.PipelineDAG(env, 3)
	res, err := RunDAG(d, map[string][]stream.Event{"hub": env.Gen.Events()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equivalent(smarthome.SinkType(), res.Sinks["sink"], ref["sink"]) {
		t.Fatal("micro-batch smart-home pipeline differs from reference")
	}
	if res.Batches != cfg.Seconds/cfg.MarkerPeriod {
		t.Fatalf("processed %d batches, want %d", res.Batches, cfg.Seconds/cfg.MarkerPeriod)
	}
}

func TestMicroBatchMultiSource(t *testing.T) {
	d := core.NewDAG()
	a := d.Source("a", stream.U("Int", "Int"))
	b := d.Source("b", stream.U("Int", "Int"))
	s := d.Op(sumPerKey(), 2, a, b)
	d.Sink("out", s)
	inA := []stream.Event{stream.Item(1, 1), mk(0, 1)}
	inB := []stream.Event{stream.Item(1, 2), mk(0, 1)}
	res, err := RunDAG(d, map[string][]stream.Event{"a": inA, "b": inB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []stream.Event{stream.Item(1, 3), mk(0, 1)}
	if !stream.Equivalent(stream.U("Int", "Int"), res.Sinks["out"], want) {
		t.Fatalf("got %s want %s", stream.Render(res.Sinks["out"]), stream.Render(want))
	}
}

func TestMicroBatchRejectsIllTypedDAG(t *testing.T) {
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	d.Sink("out", d.Op(&core.KeyedOrdered[int, int, int, int]{
		OpName:       "needsOrder",
		In:           stream.O("Int", "Int"),
		Out:          stream.O("Int", "Int"),
		InitialState: func() int { return 0 },
		OnItem:       func(emit func(int), s, k, v int) int { return s },
	}, 1, src))
	if _, err := New(d, nil); err == nil {
		t.Fatal("ill-typed DAG must be rejected")
	}
}

func TestMicroBatchTrailingItems(t *testing.T) {
	// Items after the last marker form a final partial batch and must
	// not be lost.
	d := pipeline(2, 2)
	in := []stream.Event{
		stream.Item(2, 1), mk(0, 1), stream.Item(2, 5), stream.Item(4, 2),
	}
	res, err := RunDAG(d, map[string][]stream.Event{"src": in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pipeline(1, 1).Eval(map[string][]stream.Event{"src": in})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EquivalentOutputs(ref, res.Sinks); err != nil {
		t.Fatal(err)
	}
}

func TestMicroBatchStats(t *testing.T) {
	d := pipeline(2, 2)
	in := randomStream(rand.New(rand.NewSource(83)), 4, 20, 4)
	res, err := RunDAG(d, map[string][]stream.Event{"src": in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exec, _ := res.Stats.Component("filterEven")
	if exec == 0 {
		t.Fatal("stage stats not recorded")
	}
	if res.Stats.Makespan(2) <= 0 {
		t.Fatal("makespan not computable")
	}
}
