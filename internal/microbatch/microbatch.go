// Package microbatch is a second execution backend for transduction
// DAGs, addressing the paper's section 8 future work: "extend the
// compilation procedure to target streaming frameworks other than
// Storm". Where internal/storm models Storm's record-at-a-time
// dataflow, this engine models the discretized-streams architecture
// of Spark Streaming: the input is cut into marker-delimited blocks
// (micro-batches), and each block flows through the DAG stage by
// stage with a global barrier between stages — every stage processes
// block i completely before the next stage starts on it.
//
// Stateful operators keep one live instance per (stage, partition)
// across batches, the analogue of updateStateByKey lineage. Because
// partitioning uses the same splitter discipline as the storm backend
// (RR for stateless stages, key hash for keyed stages) and blocks are
// merged with the MRG alignment, Theorem 4.3 applies unchanged and
// the engine's output is trace-equivalent to the DAG's denotation —
// the package tests check that against core's reference evaluator and
// against the storm backend.
//
// The two backends differ operationally exactly the way the systems
// they model differ: the storm backend overlaps stages (pipeline
// parallelism, lower latency), while the micro-batch backend gets
// data parallelism within a stage but pays a barrier per stage per
// block (higher latency, simpler fault model).
package microbatch

import (
	"fmt"
	"sync"
	"time"

	"datatrace/internal/core"
	"datatrace/internal/metrics"
	"datatrace/internal/stream"
)

// Options tune the engine.
type Options struct {
	// Hash overrides the key hash for keyed stages (nil = DefaultHash).
	Hash func(any) int
	// Obs configures the observability subsystem (latency histograms,
	// batch-lag tracking, span sampling). Zero disables it.
	Obs metrics.ObsConfig
}

// Result is a completed run.
type Result struct {
	// Sinks maps sink names to their collected event streams.
	Sinks map[string][]stream.Event
	// Stats holds per-task metrics, comparable with the storm
	// backend's (same simulated-cluster model).
	Stats *metrics.Stats
	// Wall is the elapsed run time.
	Wall time.Duration
	// Batches is the number of micro-batches processed.
	Batches int
}

// Engine executes one DAG over micro-batches.
type Engine struct {
	dag  *core.DAG
	hash func(any) int
	// instances[nodeID][partition] is the live operator instance.
	instances map[int][]core.Instance
	stats     *metrics.Stats
	taskStats map[string]*metrics.InstanceStats
}

// New validates the DAG and prepares per-partition instances.
func New(d *core.DAG, opts *Options) (*Engine, error) {
	if err := d.Check(); err != nil {
		return nil, err
	}
	hash := stream.DefaultHash
	if opts != nil && opts.Hash != nil {
		hash = opts.Hash
	}
	e := &Engine{
		dag:       d,
		hash:      hash,
		instances: map[int][]core.Instance{},
		stats:     metrics.NewStats(),
		taskStats: map[string]*metrics.InstanceStats{},
	}
	if opts != nil {
		e.stats.SetObservability(opts.Obs)
	}
	for _, n := range d.Nodes() {
		if n.Kind != core.OpNode {
			continue
		}
		par := n.Parallelism
		if n.Op.Mode() == core.ParNone {
			par = 1
		}
		insts := make([]core.Instance, par)
		for i := range insts {
			insts[i] = n.Op.New()
		}
		e.instances[n.ID] = insts
	}
	return e, nil
}

// Stats exposes the engine's live stats collector; it is safe to poll
// (and Snapshot) from another goroutine while Run executes.
func (e *Engine) Stats() *metrics.Stats { return e.stats }

// task returns the metrics record for one (component, partition).
func (e *Engine) task(name string, partition int) *metrics.InstanceStats {
	key := fmt.Sprintf("%s/%d", name, partition)
	if is, ok := e.taskStats[key]; ok {
		return is
	}
	is := e.stats.Instance(name, partition)
	e.taskStats[key] = is
	return is
}

// block is one marker-delimited micro-batch: its items plus the
// closing marker (absent for a trailing incomplete batch).
type block struct {
	items  []stream.Event
	marker *stream.Event
}

// cut splits an event sequence into micro-batches.
func cut(events []stream.Event) []block {
	var blocks []block
	cur := block{}
	for _, ev := range events {
		if ev.IsMarker {
			m := ev
			cur.marker = &m
			blocks = append(blocks, cur)
			cur = block{}
			continue
		}
		cur.items = append(cur.items, ev)
	}
	if len(cur.items) > 0 {
		blocks = append(blocks, cur)
	}
	return blocks
}

// Run executes the DAG on the given per-source inputs and returns the
// sinks' streams. Each micro-batch flows through the stages in
// topological order; within a stage, partitions run concurrently and
// a barrier separates stages. Batch i of the run consists of block i
// from every source (the MRG discipline).
func (e *Engine) Run(inputs map[string][]stream.Event) (*Result, error) {
	return e.RunBatches(inputs, 0, -1)
}

// runStage processes one stage's micro-batch: split the block across
// the stage's partitions, run the partition tasks concurrently
// (barrier at the end), and merge the partition outputs.
func (e *Engine) runStage(n *core.Node, input []stream.Event) []stream.Event {
	insts := e.instances[n.ID]
	par := len(insts)
	var parts [][]stream.Event
	switch {
	case par == 1:
		parts = [][]stream.Event{input}
	case n.Op.Mode() == core.ParAny:
		parts = stream.SplitRoundRobin(input, par)
	default:
		parts = stream.SplitHash(input, par, e.hash)
	}
	outs := make([][]stream.Event, par)
	// Resolve task records before the fan-out: the registry map is not
	// synchronized and the records themselves are per-partition.
	tasks := make([]*metrics.InstanceStats, par)
	for p := range tasks {
		tasks[p] = e.task(n.Name, p)
	}
	var wg sync.WaitGroup
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			is := tasks[p]
			obs := is.ObsEnabled()
			t0 := time.Now()
			inst := insts[p]
			var out []stream.Event
			emit := func(ev stream.Event) { out = append(out, ev) }
			if obs {
				// The partition's input backlog is the micro-batch
				// analogue of an inbox depth: how much work was queued
				// behind the stage barrier.
				is.ObserveQueueDepth(len(parts[p]))
			}
			for _, ev := range parts[p] {
				is.AddExecuted(1)
				if obs {
					et := time.Now()
					inst.Next(ev, emit)
					is.ObserveExec(et, time.Since(et))
				} else {
					inst.Next(ev, emit)
				}
			}
			is.AddEmitted(int64(len(out)))
			d := time.Since(t0)
			is.AddBusy(d)
			if obs {
				// Task duration is the micro-batch analogue of marker-cut
				// lag: a batch is a marker-delimited block, and the task
				// completes when the block is fully processed.
				is.ObserveMarkerLag(d)
			}
			outs[p] = out
		}(p)
	}
	wg.Wait() // the stage barrier
	return stream.MergeEvents(outs...)
}

// RunDAG is a convenience: build an engine and run it once.
func RunDAG(d *core.DAG, inputs map[string][]stream.Event, opts *Options) (*Result, error) {
	e, err := New(d, opts)
	if err != nil {
		return nil, err
	}
	return e.Run(inputs)
}

// ---------------------------------------------------------------------------
// Checkpointing: marker-aligned state snapshots and recovery.
// ---------------------------------------------------------------------------

// Checkpoint is a consistent snapshot of the whole DAG's state taken
// at a batch boundary: every operator has fully processed blocks
// 0..Batch-1 and nothing further (the batch barrier makes the marker
// cut consistent by construction, the way aligned checkpoints work in
// Flink). State bytes come from core.SnapshotInstance, so a
// checkpoint is an isolated serialized copy, safe to keep while the
// engine keeps running.
type Checkpoint struct {
	// Batch is the number of completed batches.
	Batch int
	// State maps node name → per-partition snapshot bytes.
	State map[string][][]byte
}

// Checkpoint captures the engine's state. Call it only between Run
// invocations or via RunBatches (never concurrently with Run).
func (e *Engine) Checkpoint(completedBatches int) (*Checkpoint, error) {
	cp := &Checkpoint{Batch: completedBatches, State: map[string][][]byte{}}
	for _, n := range e.dag.Nodes() {
		if n.Kind != core.OpNode {
			continue
		}
		insts := e.instances[n.ID]
		parts := make([][]byte, len(insts))
		for i, inst := range insts {
			b, err := core.SnapshotInstance(inst)
			if err != nil {
				return nil, fmt.Errorf("microbatch: snapshot %s[%d]: %w", n.Name, i, err)
			}
			parts[i] = b
		}
		cp.State[n.Name] = parts
	}
	return cp, nil
}

// Restore builds a fresh engine whose operator instances are restored
// from the checkpoint; running it on the input blocks from cp.Batch
// onward continues the computation exactly.
func Restore(d *core.DAG, cp *Checkpoint, opts *Options) (*Engine, error) {
	e, err := New(d, opts)
	if err != nil {
		return nil, err
	}
	for _, n := range e.dag.Nodes() {
		if n.Kind != core.OpNode {
			continue
		}
		parts, ok := cp.State[n.Name]
		if !ok {
			return nil, fmt.Errorf("microbatch: checkpoint has no state for node %q", n.Name)
		}
		insts := e.instances[n.ID]
		if len(parts) != len(insts) {
			return nil, fmt.Errorf("microbatch: checkpoint for %q has %d partitions, engine has %d (restore requires the same parallelism)",
				n.Name, len(parts), len(insts))
		}
		for i, inst := range insts {
			if err := core.RestoreInstance(inst, parts[i]); err != nil {
				return nil, fmt.Errorf("microbatch: restore %s[%d]: %w", n.Name, i, err)
			}
		}
	}
	return e, nil
}

// RunBatches runs only batches [from, to) of the inputs (to < 0 means
// all remaining), so a restored engine can resume where the
// checkpoint was taken.
func (e *Engine) RunBatches(inputs map[string][]stream.Event, from, to int) (*Result, error) {
	start := time.Now()
	sourceBlocks := map[int][]block{}
	maxBatches := 0
	for _, n := range e.dag.Nodes() {
		if n.Kind != core.SourceNode {
			continue
		}
		bs := cut(inputs[n.Name])
		sourceBlocks[n.ID] = bs
		if len(bs) > maxBatches {
			maxBatches = len(bs)
		}
	}
	if to < 0 || to > maxBatches {
		to = maxBatches
	}
	sinks := map[string][]stream.Event{}
	batches := 0
	for batch := from; batch < to; batch++ {
		values := map[int][]stream.Event{}
		for _, n := range e.dag.Nodes() {
			switch n.Kind {
			case core.SourceNode:
				bs := sourceBlocks[n.ID]
				if batch < len(bs) {
					b := bs[batch]
					out := append([]stream.Event(nil), b.items...)
					if b.marker != nil {
						out = append(out, *b.marker)
					}
					values[n.ID] = out
				}
			case core.OpNode:
				ins := make([][]stream.Event, len(n.Inputs))
				for i, in := range n.Inputs {
					ins[i] = values[in.ID]
				}
				values[n.ID] = e.runStage(n, stream.MergeEvents(ins...))
			case core.SinkNode:
				sinks[n.Name] = append(sinks[n.Name], values[n.Inputs[0].ID]...)
			}
		}
		batches++
	}
	wall := time.Since(start)
	e.stats.Normalize(wall)
	return &Result{Sinks: sinks, Stats: e.stats, Wall: wall, Batches: batches}, nil
}
