package microbatch

import (
	"math/rand"
	"strings"
	"testing"

	"datatrace/internal/core"
	"datatrace/internal/iot"
	"datatrace/internal/stream"
)

// TestCheckpointRestoreResumesExactly is the recovery property: run
// to batch k, checkpoint, build a fresh engine from the checkpoint,
// run the remaining batches — the concatenated output must equal the
// uninterrupted run's, for random inputs and random cut points.
func TestCheckpointRestoreResumesExactly(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		blocks := 4 + r.Intn(4)
		in := randomStream(r, blocks, 10, 5)
		inputs := map[string][]stream.Event{"src": in}

		full, err := RunDAG(pipeline(2, 3), inputs, nil)
		if err != nil {
			t.Fatal(err)
		}

		k := 1 + r.Intn(blocks-1)
		e1, err := New(pipeline(2, 3), nil)
		if err != nil {
			t.Fatal(err)
		}
		first, err := e1.RunBatches(inputs, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := e1.Checkpoint(k)
		if err != nil {
			t.Fatal(err)
		}
		// Mutate the original engine afterwards (process more input) to
		// prove the checkpoint is isolated.
		if _, err := e1.RunBatches(inputs, k, -1); err != nil {
			t.Fatal(err)
		}

		e2, err := Restore(pipeline(2, 3), cp, nil)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := e2.RunBatches(inputs, cp.Batch, -1)
		if err != nil {
			t.Fatal(err)
		}

		combined := append(append([]stream.Event(nil), first.Sinks["out"]...), rest.Sinks["out"]...)
		if !stream.Equivalent(stream.U("Int", "Int"), combined, full.Sinks["out"]) {
			t.Fatalf("trial %d (cut at %d/%d): resumed run differs:\n full     %s\n resumed  %s",
				trial, k, blocks, stream.Render(full.Sinks["out"]), stream.Render(combined))
		}
	}
}

// TestCheckpointIoTPipeline checkpoints a pipeline containing every
// built-in template kind (stateless, sort, keyed-ordered,
// keyed-unordered).
func TestCheckpointIoTPipeline(t *testing.T) {
	cfg := iot.DefaultSensorConfig()
	in := iot.Stream(cfg)
	inputs := map[string][]stream.Event{"hub": in}
	blocks := cfg.Seconds / cfg.MarkerPeriod

	full, err := RunDAG(iot.PipelineDAG(cfg, 2), inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < blocks; k++ {
		e1, err := New(iot.PipelineDAG(cfg, 2), nil)
		if err != nil {
			t.Fatal(err)
		}
		first, err := e1.RunBatches(inputs, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := e1.Checkpoint(k)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Restore(iot.PipelineDAG(cfg, 2), cp, nil)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := e2.RunBatches(inputs, k, -1)
		if err != nil {
			t.Fatal(err)
		}
		combined := append(append([]stream.Event(nil), first.Sinks["sink"]...), rest.Sinks["sink"]...)
		if !stream.Equivalent(iot.SinkType(), combined, full.Sinks["sink"]) {
			t.Fatalf("cut at batch %d: resumed IoT pipeline differs from the full run", k)
		}
	}
}

// TestCheckpointSlidingAggregate covers the two-stacks window's
// snapshot round trip, including entry order and the block counter.
func TestCheckpointSlidingAggregate(t *testing.T) {
	win := func() *core.DAG {
		d := core.NewDAG()
		src := d.Source("src", stream.U("Int", "Int"))
		w := d.Op(&core.SlidingAggregate[int, int, int]{
			OpName: "win", InT: stream.U("Int", "Int"), OutT: stream.U("Int", "Int"),
			WindowBlocks: 3,
			In:           func(_, v int) int { return v },
			ID:           func() int { return 0 },
			Combine:      func(x, y int) int { return x + y },
			EmitEmpty:    true,
		}, 2, src)
		d.Sink("out", w)
		return d
	}
	r := rand.New(rand.NewSource(103))
	in := randomStream(r, 8, 6, 4)
	inputs := map[string][]stream.Event{"src": in}
	full, err := RunDAG(win(), inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4, 7} {
		e1, _ := New(win(), nil)
		first, err := e1.RunBatches(inputs, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := e1.Checkpoint(k)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Restore(win(), cp, nil)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := e2.RunBatches(inputs, k, -1)
		if err != nil {
			t.Fatal(err)
		}
		combined := append(append([]stream.Event(nil), first.Sinks["out"]...), rest.Sinks["out"]...)
		if !stream.Equivalent(stream.U("Int", "Int"), combined, full.Sinks["out"]) {
			t.Fatalf("cut at %d: sliding window state did not survive the checkpoint", k)
		}
	}
}

func TestRestoreRejectsParallelismMismatch(t *testing.T) {
	in := randomStream(rand.New(rand.NewSource(104)), 3, 5, 3)
	e1, err := New(pipeline(2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.RunBatches(map[string][]stream.Event{"src": in}, 0, 1); err != nil {
		t.Fatal(err)
	}
	cp, err := e1.Checkpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Restore(pipeline(2, 3), cp, nil)
	if err == nil || !strings.Contains(err.Error(), "same parallelism") {
		t.Fatalf("got %v", err)
	}
}

func TestRestoreRejectsMissingNode(t *testing.T) {
	cp := &Checkpoint{Batch: 1, State: map[string][][]byte{}}
	if _, err := Restore(pipeline(1, 1), cp, nil); err == nil {
		t.Fatal("missing node state must fail")
	}
}

func TestSnapshotBytesAreIsolated(t *testing.T) {
	// Directly exercise the core snapshot helpers: snapshot, mutate,
	// restore — the restored instance must reflect the snapshot, not
	// the mutation.
	op := sumPerKey()
	inst := op.New()
	emitNothing := func(stream.Event) {}
	inst.Next(stream.Item(1, 10), emitNothing)
	inst.Next(mk(0, 1), emitNothing)
	snap, err := core.SnapshotInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("keyed instance must snapshot")
	}
	inst.Next(stream.Item(1, 100), emitNothing)
	inst.Next(mk(1, 2), emitNothing)

	fresh := op.New()
	if err := core.RestoreInstance(fresh, snap); err != nil {
		t.Fatal(err)
	}
	var out []stream.Event
	fresh.Next(stream.Item(1, 5), func(e stream.Event) {})
	fresh.Next(mk(1, 2), func(e stream.Event) { out = append(out, e) })
	// State at snapshot was 10 (history sum); adding 5 gives 15. Had
	// the mutation leaked, it would be 115.
	var got int
	for _, e := range out {
		if !e.IsMarker && e.Key == 1 {
			got = e.Value.(int)
		}
	}
	if got != 15 {
		t.Fatalf("restored state produced %d, want 15", got)
	}
}
