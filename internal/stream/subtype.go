package stream

// Unit is the unit type Ut used for keys of streams that have no
// meaningful key (e.g. the raw source streams in the paper's
// figures, typed U(Ut, M)).
type Unit struct{}

// String renders the unit value as in the paper.
func (Unit) String() string { return "Ut" }

// AssignableTo reports whether a stream of type from may flow into an
// input expecting type to. Types are assignable when they are equal,
// or when from is the ordered refinement O(K,V) of to = U(K,V):
// forgetting ordering constraints is always sound, since every trace
// of O(K,V) determines a trace of U(K,V).
func AssignableTo(from, to Type) bool {
	if from == to {
		return true
	}
	return from.Kind == Ordered && to.Kind == Unordered &&
		from.Key == to.Key && from.Val == to.Val
}
