package stream

import (
	"fmt"
	"hash/fnv"
	"testing"
)

func TestTypeString(t *testing.T) {
	if got := U("ID", "V").String(); got != "U(ID,V)" {
		t.Errorf("got %q", got)
	}
	if got := O("CID", "Long").String(); got != "O(CID,Long)" {
		t.Errorf("got %q", got)
	}
}

func TestEventString(t *testing.T) {
	if got := Item(3, "x").String(); got != "(3,x)" {
		t.Errorf("got %q", got)
	}
	if got := Mark(Marker{Seq: 2, Timestamp: 30}).String(); got != "#2@30" {
		t.Errorf("got %q", got)
	}
}

func TestEquivalenceUnordered(t *testing.T) {
	typ := U("K", "V")
	a := []Event{Item(1, "a"), Item(2, "b"), Mark(Marker{Seq: 0}), Item(1, "c")}
	b := []Event{Item(2, "b"), Item(1, "a"), Mark(Marker{Seq: 0}), Item(1, "c")}
	if !Equivalent(typ, a, b) {
		t.Error("items between markers must be unordered under U")
	}
	c := []Event{Item(1, "a"), Mark(Marker{Seq: 0}), Item(2, "b"), Item(1, "c")}
	if Equivalent(typ, a, c) {
		t.Error("items must not cross markers")
	}
}

func TestEquivalenceOrdered(t *testing.T) {
	typ := O("K", "V")
	a := []Event{Item(1, "a1"), Item(2, "b1"), Item(1, "a2")}
	b := []Event{Item(2, "b1"), Item(1, "a1"), Item(1, "a2")}
	if !Equivalent(typ, a, b) {
		t.Error("cross-key order must not matter under O")
	}
	c := []Event{Item(1, "a2"), Item(1, "a1"), Item(2, "b1")}
	if Equivalent(typ, a, c) {
		t.Error("per-key order must matter under O")
	}
	// The same reordering is fine under U.
	if !Equivalent(U("K", "V"), a, c) {
		t.Error("per-key order must not matter under U")
	}
}

func TestMarkersAreLinearlyOrdered(t *testing.T) {
	typ := U("K", "V")
	a := []Event{Mark(Marker{Seq: 0}), Mark(Marker{Seq: 1})}
	b := []Event{Mark(Marker{Seq: 1}), Mark(Marker{Seq: 0})}
	if Equivalent(typ, a, b) {
		t.Error("markers must be linearly ordered")
	}
}

func TestPrefixOf(t *testing.T) {
	typ := U("K", "V")
	a := []Event{Item(2, "b")}
	b := []Event{Item(1, "a"), Item(2, "b"), Mark(Marker{Seq: 0})}
	if !PrefixOf(typ, a, b) {
		t.Error("an unordered item before the marker is a trace prefix")
	}
	c := []Event{Mark(Marker{Seq: 0}), Item(3, "z")}
	if PrefixOf(typ, []Event{Item(3, "z")}, c) {
		t.Error("an item after the marker is not a prefix")
	}
}

func TestItemTagDistinguishesKeys(t *testing.T) {
	if ItemTag(1) == ItemTag(2) {
		t.Error("different keys must get different tags")
	}
	if ItemTag("a") != ItemTag("a") {
		t.Error("equal keys must get equal tags")
	}
}

func TestRender(t *testing.T) {
	got := Render([]Event{Item(1, 2), Mark(Marker{Seq: 0, Timestamp: 10})})
	if got != "(1,2) #0@10" {
		t.Errorf("got %q", got)
	}
}

func TestItemTagNonComparableAndNilKeys(t *testing.T) {
	// ItemTag goes through fmt.Sprint, so keys that Go's == would
	// panic on (slices, maps) must still tag deterministically — the
	// tag is the rendering, not the identity.
	if ItemTag([]int{1, 2}) != ItemTag([]int{1, 2}) {
		t.Error("equal-rendering slice keys must get equal tags")
	}
	if ItemTag([]int{1, 2}) == ItemTag([]int{2, 1}) {
		t.Error("differently-rendered slice keys must get different tags")
	}
	if ItemTag(map[string]int{"a": 1}) != ItemTag(map[string]int{"a": 1}) {
		t.Error("equal-rendering map keys must get equal tags")
	}
	// A nil boxed key is the unit key of U(Ut, V) sources; it must tag
	// consistently and distinctly from the string "<nil>"'s would-be
	// collisions with real keys like the int render of nothing.
	if ItemTag(nil) != ItemTag(nil) {
		t.Error("nil keys must get equal tags")
	}
	if ItemTag(nil) == ItemTag(0) || ItemTag(nil) == ItemTag("") {
		t.Error("nil key must not collide with zero-value keys")
	}
	// A typed nil inside the interface renders like untyped nil — both
	// are "<nil>" — which is the documented iff-renders-equally rule.
	var p *int
	if ItemTag(p) != ItemTag(nil) {
		t.Error("typed and untyped nil render equally, so tags must match")
	}
}

func TestRenderNonComparableAndNilKeys(t *testing.T) {
	// Render is the failure-message formatter; it must not panic on
	// events whose keys are non-comparable or nil, since differential
	// tests render whatever the runtime produced.
	got := Render([]Event{
		Item(nil, "v"),
		Item([]int{3, 4}, 9),
		Mark(Marker{Seq: 2, Timestamp: 30}),
	})
	want := "(<nil>,v) ([3 4],9) #2@30"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Equivalence via ToItems also bottoms out in ItemTag's fmt.Sprint
	// path, so traces with non-comparable keys compare without panics.
	typ := U("K", "V")
	a := []Event{Item([]int{1}, "x"), Item([]int{2}, "y")}
	b := []Event{Item([]int{2}, "y"), Item([]int{1}, "x")}
	if !Equivalent(typ, a, b) {
		t.Error("unordered slice-keyed items must commute")
	}
}

func TestDefaultHashFastPathsMatchRendered(t *testing.T) {
	// The typed fast paths must agree with the generic fmt-rendered
	// FNV-1a they replace, so hash placement is independent of a key's
	// static type (an int64 7 and an int 7 route identically, and
	// adding a fast path can never reshuffle existing partitions).
	rendered := func(key any) int {
		h := fnv.New32a()
		fmt.Fprint(h, key)
		return int(h.Sum32() & 0x7fffffff)
	}
	keys := []any{
		int64(0), int64(7), int64(-3), int64(1) << 62, int64(-1) << 62,
		int(42), int(-42), int32(9), int32(-9), uint64(0), uint64(1) << 63,
		"", "a", "campaign-17", struct{ A, B int }{1, 2}, 3.5, true,
	}
	for _, k := range keys {
		if got, want := DefaultHash(k), rendered(k); got != want {
			t.Errorf("DefaultHash(%T %v) = %d, want rendered-FNV %d", k, k, got, want)
		}
	}
	if DefaultHash(int64(7)) != DefaultHash(7) {
		t.Error("int64 and int renderings of the same value must collide")
	}
}
