package stream

import (
	"fmt"
	"hash/fnv"
	"testing"
)

func TestTypeString(t *testing.T) {
	if got := U("ID", "V").String(); got != "U(ID,V)" {
		t.Errorf("got %q", got)
	}
	if got := O("CID", "Long").String(); got != "O(CID,Long)" {
		t.Errorf("got %q", got)
	}
}

func TestEventString(t *testing.T) {
	if got := Item(3, "x").String(); got != "(3,x)" {
		t.Errorf("got %q", got)
	}
	if got := Mark(Marker{Seq: 2, Timestamp: 30}).String(); got != "#2@30" {
		t.Errorf("got %q", got)
	}
}

func TestEquivalenceUnordered(t *testing.T) {
	typ := U("K", "V")
	a := []Event{Item(1, "a"), Item(2, "b"), Mark(Marker{Seq: 0}), Item(1, "c")}
	b := []Event{Item(2, "b"), Item(1, "a"), Mark(Marker{Seq: 0}), Item(1, "c")}
	if !Equivalent(typ, a, b) {
		t.Error("items between markers must be unordered under U")
	}
	c := []Event{Item(1, "a"), Mark(Marker{Seq: 0}), Item(2, "b"), Item(1, "c")}
	if Equivalent(typ, a, c) {
		t.Error("items must not cross markers")
	}
}

func TestEquivalenceOrdered(t *testing.T) {
	typ := O("K", "V")
	a := []Event{Item(1, "a1"), Item(2, "b1"), Item(1, "a2")}
	b := []Event{Item(2, "b1"), Item(1, "a1"), Item(1, "a2")}
	if !Equivalent(typ, a, b) {
		t.Error("cross-key order must not matter under O")
	}
	c := []Event{Item(1, "a2"), Item(1, "a1"), Item(2, "b1")}
	if Equivalent(typ, a, c) {
		t.Error("per-key order must matter under O")
	}
	// The same reordering is fine under U.
	if !Equivalent(U("K", "V"), a, c) {
		t.Error("per-key order must not matter under U")
	}
}

func TestMarkersAreLinearlyOrdered(t *testing.T) {
	typ := U("K", "V")
	a := []Event{Mark(Marker{Seq: 0}), Mark(Marker{Seq: 1})}
	b := []Event{Mark(Marker{Seq: 1}), Mark(Marker{Seq: 0})}
	if Equivalent(typ, a, b) {
		t.Error("markers must be linearly ordered")
	}
}

func TestPrefixOf(t *testing.T) {
	typ := U("K", "V")
	a := []Event{Item(2, "b")}
	b := []Event{Item(1, "a"), Item(2, "b"), Mark(Marker{Seq: 0})}
	if !PrefixOf(typ, a, b) {
		t.Error("an unordered item before the marker is a trace prefix")
	}
	c := []Event{Mark(Marker{Seq: 0}), Item(3, "z")}
	if PrefixOf(typ, []Event{Item(3, "z")}, c) {
		t.Error("an item after the marker is not a prefix")
	}
}

func TestItemTagDistinguishesKeys(t *testing.T) {
	if ItemTag(1) == ItemTag(2) {
		t.Error("different keys must get different tags")
	}
	if ItemTag("a") != ItemTag("a") {
		t.Error("equal keys must get equal tags")
	}
}

func TestRender(t *testing.T) {
	got := Render([]Event{Item(1, 2), Mark(Marker{Seq: 0, Timestamp: 10})})
	if got != "(1,2) #0@10" {
		t.Errorf("got %q", got)
	}
}

func TestDefaultHashFastPathsMatchRendered(t *testing.T) {
	// The typed fast paths must agree with the generic fmt-rendered
	// FNV-1a they replace, so hash placement is independent of a key's
	// static type (an int64 7 and an int 7 route identically, and
	// adding a fast path can never reshuffle existing partitions).
	rendered := func(key any) int {
		h := fnv.New32a()
		fmt.Fprint(h, key)
		return int(h.Sum32() & 0x7fffffff)
	}
	keys := []any{
		int64(0), int64(7), int64(-3), int64(1) << 62, int64(-1) << 62,
		int(42), int(-42), int32(9), int32(-9), uint64(0), uint64(1) << 63,
		"", "a", "campaign-17", struct{ A, B int }{1, 2}, 3.5, true,
	}
	for _, k := range keys {
		if got, want := DefaultHash(k), rendered(k); got != want {
			t.Errorf("DefaultHash(%T %v) = %d, want rendered-FNV %d", k, k, got, want)
		}
	}
	if DefaultHash(int64(7)) != DefaultHash(7) {
		t.Error("int64 and int renderings of the same value must collide")
	}
}
