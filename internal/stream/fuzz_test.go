package stream

import (
	"testing"
)

// decodeEvents turns fuzz bytes into an event stream: low bits choose
// the key, every fifth byte is a marker.
func decodeEvents(data []byte) []Event {
	if len(data) > 40 {
		data = data[:40]
	}
	var out []Event
	seq := int64(0)
	for _, b := range data {
		if b%5 == 0 {
			out = append(out, Mark(Marker{Seq: seq, Timestamp: seq * 10}))
			seq++
		} else {
			out = append(out, Item(int(b%4), int(b)))
		}
	}
	return out
}

// FuzzSplitMergeIdentity fuzzes the splitter law SPLIT ≫ MRG = id for
// both splitters at several widths.
func FuzzSplitMergeIdentity(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3, 4, 0}, uint8(2))
	f.Add([]byte{0, 0}, uint8(3))
	f.Add([]byte{7, 7, 7, 0, 9, 9, 0, 1}, uint8(4))
	typ := U("Int", "Int")
	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		n := int(width%4) + 1
		in := decodeEvents(data)
		rr := MergeEvents(SplitRoundRobin(in, n)...)
		if !Equivalent(typ, rr, in) {
			t.Fatalf("RR%d ≫ MRG ≠ id on %s: got %s", n, Render(in), Render(rr))
		}
		hs := MergeEvents(SplitHash(in, n, nil)...)
		if !Equivalent(typ, hs, in) {
			t.Fatalf("HASH%d ≫ MRG ≠ id on %s: got %s", n, Render(in), Render(hs))
		}
		// The ordered reading must also survive the hash path.
		if !Equivalent(O("Int", "Int"), hs, in) {
			t.Fatalf("HASH%d broke per-key order on %s", n, Render(in))
		}
	})
}

// FuzzMergePreservesMarkers fuzzes marker structure through merges of
// arbitrarily split streams: one marker per block, sequence numbers
// preserved from the source.
func FuzzMergePreservesMarkers(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		in := decodeEvents(data)
		merged := MergeEvents(SplitHash(in, 3, nil)...)
		var inSeqs, outSeqs []int64
		for _, e := range in {
			if e.IsMarker {
				inSeqs = append(inSeqs, e.Marker.Seq)
			}
		}
		for _, e := range merged {
			if e.IsMarker {
				outSeqs = append(outSeqs, e.Marker.Seq)
			}
		}
		if len(inSeqs) != len(outSeqs) {
			t.Fatalf("marker count changed: %v vs %v", inSeqs, outSeqs)
		}
		for i := range inSeqs {
			if inSeqs[i] != outSeqs[i] {
				t.Fatalf("marker sequence changed: %v vs %v", inSeqs, outSeqs)
			}
		}
	})
}
