package stream

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// DefaultHash is the key-hash used by HASH splitters and fields
// groupings when the caller does not supply one: FNV-1a over the
// rendered key. Any deterministic hash preserves semantics (Theorem
// 4.3); this one is stable across runs so experiments are
// reproducible.
//
// The common key kinds (integers and strings — every key the
// evaluation workloads route on) take an allocation-free fast path
// that hashes exactly the bytes fmt would render, so the function's
// values are independent of which path computes them; everything else
// falls back to fmt. The fast path matters: fields routing and the
// sender-side combining buffers hash every item.
func DefaultHash(key any) int {
	var buf [20]byte
	var bs []byte
	switch k := key.(type) {
	case int64:
		bs = strconv.AppendInt(buf[:0], k, 10)
	case int:
		bs = strconv.AppendInt(buf[:0], int64(k), 10)
	case int32:
		bs = strconv.AppendInt(buf[:0], int64(k), 10)
	case uint64:
		bs = strconv.AppendUint(buf[:0], k, 10)
	case string:
		return fnvString(k)
	default:
		h := fnv.New32a()
		fmt.Fprint(h, key)
		return int(h.Sum32() & 0x7fffffff)
	}
	return fnvBytes(bs)
}

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnvBytes(bs []byte) int {
	h := uint32(fnvOffset32)
	for _, b := range bs {
		h ^= uint32(b)
		h *= fnvPrime32
	}
	return int(h & 0x7fffffff)
}

func fnvString(s string) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return int(h & 0x7fffffff)
}

// ---------------------------------------------------------------------------
// MRG, RR and HASH: the multi-channel glue elements. These operate on
// boxed events because the evaluator and the compiler use them between
// arbitrary operators.
// ---------------------------------------------------------------------------

// MergeState is the streaming implementation of MRG: it combines n
// input channels into one by aligning them on synchronization
// markers. Each channel's items are collected into blocks delimited
// by markers; when every channel has closed its block i, the blocks
// are flushed (concatenated — sound because corresponding blocks are
// unordered across channels) followed by the single merged marker i.
type MergeState struct {
	n       int
	emitted int64 // markers emitted downstream
	queued  [][]mergeBlock
	open    [][]Event
}

type mergeBlock struct {
	items []Event
	mark  Marker
}

// NewMergeState creates a merger over n input channels.
func NewMergeState(n int) *MergeState {
	return &MergeState{n: n, queued: make([][]mergeBlock, n), open: make([][]Event, n)}
}

// Channels returns the merger's input channel count.
func (m *MergeState) Channels() int { return m.n }

// Next consumes one event from channel ch and emits any output events
// that become ready.
func (m *MergeState) Next(ch int, e Event, emit func(Event)) {
	if ch < 0 || ch >= m.n {
		panic(fmt.Sprintf("merge: channel %d out of range [0,%d)", ch, m.n))
	}
	if !e.IsMarker {
		m.open[ch] = append(m.open[ch], e)
		return
	}
	m.queued[ch] = append(m.queued[ch], mergeBlock{items: m.open[ch], mark: e.Marker})
	m.open[ch] = nil
	m.advance(emit)
}

// advance flushes complete frontier blocks. Because every output
// marker flushes exactly one block from every channel, the head of
// each queue always has block index m.emitted. The merged marker
// keeps the source markers' sequence number (all channels carry the
// same one for corresponding blocks), so marker identity survives
// arbitrary split/merge compositions.
func (m *MergeState) advance(emit func(Event)) {
	for {
		for _, q := range m.queued {
			if len(q) == 0 {
				return
			}
		}
		mark := m.queued[0][0].mark
		for ch := range m.queued {
			b := m.queued[ch][0]
			for _, it := range b.items {
				emit(it)
			}
			if b.mark.Timestamp > mark.Timestamp {
				mark = b.mark
			}
		}
		emit(Mark(mark))
		// Pop only after the whole block and its marker were delivered:
		// a consumer that panics mid-block leaves the merger holding the
		// complete un-flushed input, recoverable via Pending.
		for ch := range m.queued {
			m.queued[ch] = m.queued[ch][1:]
		}
		m.emitted++
	}
}

// Pending returns, per channel, every buffered event the merger has
// not yet flushed downstream: the items and markers of the queued
// (closed but incomplete) blocks followed by the open block's items.
// Feeding each sequence back into a fresh merger on the same channel
// reproduces this merger's state — the basis of marker-cut replay in
// the execution engines.
func (m *MergeState) Pending() [][]Event {
	out := make([][]Event, m.n)
	for ch := range out {
		for _, b := range m.queued[ch] {
			out[ch] = append(out[ch], b.items...)
			out[ch] = append(out[ch], Mark(b.mark))
		}
		out[ch] = append(out[ch], m.open[ch]...)
	}
	return out
}

// Trailing returns every item still buffered at end-of-stream: the
// items of blocks that closed on some channels but never completed on
// all of them (possible when an upstream fails or channels carry
// unequal marker counts), followed by each channel's final open
// block. The markers of incomplete blocks are not synthesized.
func (m *MergeState) Trailing() []Event {
	var out []Event
	for ch := range m.queued {
		for _, b := range m.queued[ch] {
			out = append(out, b.items...)
		}
	}
	for _, open := range m.open {
		out = append(out, open...)
	}
	return out
}

// MergeEvents merges complete event sequences (batch form of MRG):
// block i of the output is the concatenation of block i of every
// input, followed by one marker. Trailing items after a channel's
// last marker are appended after the last common marker.
func MergeEvents(inputs ...[]Event) []Event {
	if len(inputs) == 1 {
		return append([]Event(nil), inputs[0]...)
	}
	m := NewMergeState(len(inputs))
	var out []Event
	emit := func(e Event) { out = append(out, e) }
	idx := make([]int, len(inputs))
	// Feed channels round-robin so block buffering is exercised
	// deterministically; any feeding order yields an equivalent trace.
	for {
		progressed := false
		for ch, in := range inputs {
			if idx[ch] < len(in) {
				m.Next(ch, in[idx[ch]], emit)
				idx[ch]++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	// Trailing items of the incomplete final block.
	out = append(out, m.Trailing()...)
	return out
}

// SplitRoundRobin is the RR splitter: it distributes items cyclically
// over n output channels and broadcasts every marker to all channels.
// RR is a splitter in the paper's sense: RR ≫ MRG is the identity
// transduction on U(K,V).
func SplitRoundRobin(input []Event, n int) [][]Event {
	out := make([][]Event, n)
	next := 0
	for _, e := range input {
		if e.IsMarker {
			for ch := range out {
				out[ch] = append(out[ch], e)
			}
			continue
		}
		out[next] = append(out[next], e)
		next = (next + 1) % n
	}
	return out
}

// SplitHash is the HASH splitter: it routes the item (k,v) to channel
// hash(k) mod n and broadcasts markers. HASH preserves per-key order,
// so it is also a sound splitter for O(K,V).
func SplitHash(input []Event, n int, hash func(any) int) [][]Event {
	if hash == nil {
		hash = DefaultHash
	}
	out := make([][]Event, n)
	for _, e := range input {
		if e.IsMarker {
			for ch := range out {
				out[ch] = append(out[ch], e)
			}
			continue
		}
		ch := hash(e.Key) % n
		out[ch] = append(out[ch], e)
	}
	return out
}
