package stream

import (
	"encoding/gob"
	"fmt"
	"reflect"
	"strconv"
	"sync"
)

// This file defines the typed columnar (struct-of-arrays) batch layout
// used on hot edges. A Columns value carries a block fragment of items
// as two parallel typed slices — no per-item interface boxing — and is
// recycled through a per-kind sync.Pool. Markers never enter a
// Columns batch: the transport seals and flushes column buffers when a
// marker passes, so every marker still travels as a boxed Event and
// the buffers-empty-at-cut invariant of the recovery and rescale
// protocols is untouched.
//
// The layout is semantically invisible: a Columns batch denotes
// exactly the item sequence EventAt(0..Len), and under U(K,V) any
// interleaving of those items with other channels' items is the same
// data trace (Theorem 4.3 licenses the re-batching).

// Columns is one typed struct-of-arrays batch. The concrete type is
// always *Cols[K,V] for the kind's key and value types; untyped
// runtime code (transport, executors) manipulates batches through
// this interface, and typed code (operator templates, spouts)
// asserts down to the concrete type for tight loops.
type Columns interface {
	// Kind returns the batch's canonical layout descriptor.
	Kind() *ColKind
	// Len returns the number of rows.
	Len() int
	// EventAt boxes row i as an ordinary item event (the bridge to
	// every boxed fallback path).
	EventAt(i int) Event
	// HashAt returns DefaultHash of row i's key, computed without
	// boxing. The value is byte-identical to DefaultHash(EventAt(i).Key)
	// so fields routing agrees across the typed and boxed paths.
	HashAt(i int) int
	// AppendRow appends row i of src (same kind) to this batch.
	AppendRow(src Columns, i int)
	// AppendEvent appends a boxed item event; panics if the event's
	// key or value does not have the kind's types, and on markers.
	AppendEvent(e Event)
	// Slices returns the underlying typed slices ([]K, []V) boxed as
	// any, for wire encoding.
	Slices() (keys, vals any)
	// Release resets the batch and returns it to the kind's pool. The
	// caller must not touch the batch (or aliases of its slices)
	// afterwards — dttlint rule DTT007 enforces this for operator
	// implementations.
	Release()
}

// Cols is the concrete typed batch: parallel key and value columns.
type Cols[K, V any] struct {
	kind *ColKind
	hash func(K) int
	// Keys and Vals are the parallel columns; Keys[i], Vals[i] is row i.
	Keys []K
	Vals []V
}

// Kind implements Columns.
func (c *Cols[K, V]) Kind() *ColKind { return c.kind }

// Len implements Columns.
func (c *Cols[K, V]) Len() int { return len(c.Keys) }

// EventAt implements Columns.
func (c *Cols[K, V]) EventAt(i int) Event { return Event{Key: c.Keys[i], Value: c.Vals[i]} }

// HashAt implements Columns.
func (c *Cols[K, V]) HashAt(i int) int { return c.hash(c.Keys[i]) }

// AppendRow implements Columns.
func (c *Cols[K, V]) AppendRow(src Columns, i int) {
	s := src.(*Cols[K, V])
	c.Keys = append(c.Keys, s.Keys[i])
	c.Vals = append(c.Vals, s.Vals[i])
}

// AppendEvent implements Columns.
func (c *Cols[K, V]) AppendEvent(e Event) {
	if e.IsMarker {
		panic("stream: marker appended to a Columns batch")
	}
	c.Keys = append(c.Keys, e.Key.(K))
	c.Vals = append(c.Vals, e.Value.(V))
}

// Append appends one typed row.
func (c *Cols[K, V]) Append(k K, v V) {
	c.Keys = append(c.Keys, k)
	c.Vals = append(c.Vals, v)
}

// Slices implements Columns.
func (c *Cols[K, V]) Slices() (any, any) { return c.Keys, c.Vals }

// Release implements Columns.
func (c *Cols[K, V]) Release() {
	c.Keys = c.Keys[:0]
	c.Vals = c.Vals[:0]
	c.kind.pool.Put(c)
}

// ColKind is the canonical descriptor of one columnar layout: a
// (key type, value type) pair. Kinds are canonicalized — ColKindFor
// returns the same pointer for the same type pair — so the compiler's
// edge-type selection and the transport's batch matching are pointer
// comparisons.
type ColKind struct {
	name       string
	key, val   reflect.Type
	pool       sync.Pool
	fromSlices func(keys, vals any) (Columns, error)
}

// Name returns the kind's wire name, e.g. "cols[int64,stream.Unit]".
func (k *ColKind) Name() string { return k.name }

// KeyType returns the key column's type.
func (k *ColKind) KeyType() reflect.Type { return k.key }

// ValType returns the value column's type.
func (k *ColKind) ValType() reflect.Type { return k.val }

// String renders the kind.
func (k *ColKind) String() string { return k.name }

// Get returns an empty pooled batch of this kind.
func (k *ColKind) Get() Columns { return k.pool.Get().(Columns) }

// FromSlices wraps decoded typed slices ([]K, []V boxed as any) in a
// pooled batch, taking ownership of the slices. It is the wire-decode
// counterpart of Columns.Slices.
func (k *ColKind) FromSlices(keys, vals any) (Columns, error) {
	return k.fromSlices(keys, vals)
}

var (
	colKinds       sync.Map // [2]reflect.Type -> *ColKind
	colKindsByName sync.Map // string -> *ColKind
)

// ColKindFor returns the canonical kind for the type pair (K, V),
// creating (and gob-registering the slice types of) the kind on first
// use. Calls with the same type arguments return the same pointer.
func ColKindFor[K, V any]() *ColKind {
	kt := reflect.TypeOf((*K)(nil)).Elem()
	vt := reflect.TypeOf((*V)(nil)).Elem()
	rk := [2]reflect.Type{kt, vt}
	if k, ok := colKinds.Load(rk); ok {
		return k.(*ColKind)
	}
	k := newColKind[K, V](kt, vt)
	if prev, loaded := colKinds.LoadOrStore(rk, k); loaded {
		return prev.(*ColKind)
	}
	// This goroutine won the canonical slot: publish the wire-name
	// lookup and register the slice types so gob can carry them inside
	// interface-typed frame fields.
	colKindsByName.Store(k.name, k)
	gob.Register([]K{})
	gob.Register([]V{})
	return k
}

// ColKindByName resolves a kind by its wire name; nil when no kind
// with that name has been created in this process. The networked
// runtime creates kinds on both sides by building the same topology,
// so a decode-side miss is a topology mismatch, not a race.
func ColKindByName(name string) *ColKind {
	if k, ok := colKindsByName.Load(name); ok {
		return k.(*ColKind)
	}
	return nil
}

func newColKind[K, V any](kt, vt reflect.Type) *ColKind {
	k := &ColKind{
		name: "cols[" + typeName(kt) + "," + typeName(vt) + "]",
		key:  kt,
		val:  vt,
	}
	hash := keyHashFor[K]()
	k.pool.New = func() any { return &Cols[K, V]{kind: k, hash: hash} }
	k.fromSlices = func(keys, vals any) (Columns, error) {
		ks, ok := keys.([]K)
		if !ok {
			return nil, fmt.Errorf("stream: %s key slice is %T, want []%s", k.name, keys, typeName(kt))
		}
		vs, ok := vals.([]V)
		if !ok {
			return nil, fmt.Errorf("stream: %s value slice is %T, want []%s", k.name, vals, typeName(vt))
		}
		if len(ks) != len(vs) {
			return nil, fmt.Errorf("stream: %s ragged columns: %d keys, %d values", k.name, len(ks), len(vs))
		}
		c := k.pool.Get().(*Cols[K, V])
		c.Keys, c.Vals = ks, vs
		return c, nil
	}
	return k
}

// typeName renders a type for the kind's wire name, qualifying by
// package path when the short form is ambiguous across builds.
func typeName(t reflect.Type) string {
	if s := t.String(); s != "" {
		return s
	}
	return t.Kind().String()
}

// keyHashFor returns the typed specialization of DefaultHash for key
// type K. Each specialization hashes exactly the bytes DefaultHash
// hashes for the boxed key, so typed and boxed routing always agree —
// the property the rescale owner maps and fields groupings rely on.
func keyHashFor[K any]() func(K) int {
	var f func(K) int
	switch p := any(&f).(type) {
	case *func(int64) int:
		*p = hashKeyInt64
	case *func(int) int:
		*p = func(k int) int { return hashKeyInt64(int64(k)) }
	case *func(int32) int:
		*p = func(k int32) int { return hashKeyInt64(int64(k)) }
	case *func(uint64) int:
		*p = hashKeyUint64
	case *func(string) int:
		*p = fnvString
	case *func(Unit) int:
		// There is exactly one unit key; hash it once.
		h := DefaultHash(Unit{})
		*p = func(Unit) int { return h }
	default:
		f = func(k K) int { return DefaultHash(k) }
	}
	return f
}

func hashKeyInt64(k int64) int {
	var buf [20]byte
	return fnvBytes(strconv.AppendInt(buf[:0], k, 10))
}

func hashKeyUint64(k uint64) int {
	var buf [20]byte
	return fnvBytes(strconv.AppendUint(buf[:0], k, 10))
}

// ColCombiner is the typed sender-side combining buffer used on
// columnar combined edges (the columnar counterpart of the boxed
// per-destination combining buffer). The transport folds rows (or
// stray boxed items) into the buffer and drains it — into a batch of
// the combiner's output kind — when a marker passes or the buffer
// reaches its capacity.
type ColCombiner interface {
	// Fold folds row i of in into the buffer; false when in is not of
	// the combiner's input kind (the caller then falls back to
	// FoldEvent on the boxed row).
	Fold(in Columns, i int) bool
	// FoldEvent folds a boxed item event.
	FoldEvent(e Event)
	// Drain appends the buffered (key, aggregate) pairs to out (a
	// batch of the combiner's output kind) and resets the buffer,
	// returning the folded-in and drained-out row counts.
	Drain(out Columns) (ins, outs int)
	// Len returns the number of distinct buffered keys.
	Len() int
}
