package queries

import (
	"sort"

	"datatrace/internal/core"
	"datatrace/internal/ml"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// This file builds the typed transduction DAGs (the "generated"
// variants). Every vertex is an instance of a Table 1 template, so by
// Theorem 4.2 each DAG has a well-defined denotation and by Corollary
// 4.4 any parallel deployment the compiler produces is equivalent.

// SlidingWindowBlocks is Query IV's window length in marker periods
// (markers fire every second; the window is 10 seconds).
const SlidingWindowBlocks = 10

// TumblingWindowBlocks is Query V's window length.
const TumblingWindowBlocks = 10

// enrichOp is Query I's single stage: a stateless DB join attaching
// the campaign to every event and keying the output by campaign.
func enrichOp(env *Env) core.Operator {
	return &core.Stateless[stream.Unit, workload.YahooEvent, int64, Enriched]{
		OpName: "Enrich",
		In:     stream.U("Ut", "YItem"),
		Out:    stream.U("CID", "Enriched"),
		OnItem: func(emit core.Emit[int64, Enriched], _ stream.Unit, ev workload.YahooEvent) {
			cid := env.CampaignOf(ev.AdID)
			emit(cid, Enriched{Ev: ev, Campaign: cid})
		},
	}
}

// QueryIDAG: SOURCE → Enrich → SINK.
func QueryIDAG(env *Env, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("yahoo", stream.U("Ut", "YItem"))
	enrich := d.Op(enrichOp(env), par, src)
	d.Sink("sink", enrich)
	return d
}

// countPerUserOp is Query II's stage: a per-user event count over the
// whole history, persisted to the user_counts table and emitted at
// every marker.
func countPerUserOp(env *Env) core.Operator {
	counts := env.DB.MustTable("user_counts")
	return &core.KeyedUnordered[int64, workload.YahooEvent, int64, int64, int64, int64]{
		OpName:       "CountPerUser",
		InT:          stream.U("UID", "YItem"),
		OutT:         stream.U("UID", "Long"),
		In:           func(int64, workload.YahooEvent) int64 { return 1 },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		InitialState: func() int64 { return 0 },
		UpdateState:  func(old, agg int64) int64 { return old + agg },
		OnMarker: func(emit core.Emit[int64, int64], state int64, user int64, m stream.Marker) {
			//lint:ignore DTT003 the benchmark's external store: user_counts is written once per key per marker, in marker order, and keyed partitioning routes each user to exactly one instance; Table.put is mutex-guarded
			if err := counts.Upsert(user, state); err != nil {
				panic(err)
			}
			emit(user, state)
		},
	}
}

// QueryIIDAG: SOURCE (keyed by user) → CountPerUser → SINK.
func QueryIIDAG(env *Env, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("yahoo", stream.U("UID", "YItem"))
	count := d.Op(countPerUserOp(env), par, src)
	d.Sink("sink", count)
	return d
}

// locateOp attaches the user's location and keys by it (Query III) .
func locateOp(env *Env) core.Operator {
	return &core.Stateless[stream.Unit, workload.YahooEvent, int64, Located]{
		OpName: "Locate",
		In:     stream.U("Ut", "YItem"),
		Out:    stream.U("LOC", "Located"),
		OnItem: func(emit core.Emit[int64, Located], _ stream.Unit, ev workload.YahooEvent) {
			loc := env.LocationOf(ev.UserID)
			emit(loc, Located{Ev: ev, Location: loc})
		},
	}
}

// summarizeOp counts the entire history per location (Query III's
// second stage).
func summarizeOp() core.Operator {
	return &core.KeyedUnordered[int64, Located, int64, int64, int64, int64]{
		OpName:       "Summarize",
		InT:          stream.U("LOC", "Located"),
		OutT:         stream.U("LOC", "Long"),
		In:           func(int64, Located) int64 { return 1 },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		InitialState: func() int64 { return 0 },
		UpdateState:  func(old, agg int64) int64 { return old + agg },
		OnMarker: func(emit core.Emit[int64, int64], state int64, loc int64, m stream.Marker) {
			emit(loc, state)
		},
	}
}

// QueryIIIDAG: SOURCE → Locate → Summarize → SINK.
func QueryIIIDAG(env *Env, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("yahoo", stream.U("Ut", "YItem"))
	loc := d.Op(locateOp(env), par, src)
	sum := d.Op(summarizeOp(), par, loc)
	d.Sink("sink", sum)
	return d
}

// filterMapOp is the first stage of the original Yahoo pipeline
// (Figure 3) as a single vertex: keep view events, project the ad id,
// look up the campaign, and key by campaign. The window-template DAG
// still uses it; Query IV/V split it into filterOp → projectOp so the
// compiler's chain-fusion pass has a chain to collapse (Figure 3's
// pipeline actually draws Filter and Project as separate vertices).
func filterMapOp(env *Env) core.Operator {
	return &core.Stateless[stream.Unit, workload.YahooEvent, int64, stream.Unit]{
		OpName: "Filter-Map",
		In:     stream.U("Ut", "YItem"),
		Out:    stream.U("CID", "Ut"),
		OnItem: func(emit core.Emit[int64, stream.Unit], _ stream.Unit, ev workload.YahooEvent) {
			if ev.Type != workload.View {
				return
			}
			emit(env.CampaignOf(ev.AdID), stream.Unit{})
		},
	}
}

// filterOp keeps view events (Figure 3's Filter vertex).
func filterOp() core.Operator {
	return &core.Stateless[stream.Unit, workload.YahooEvent, stream.Unit, workload.YahooEvent]{
		OpName: "Filter",
		In:     stream.U("Ut", "YItem"),
		Out:    stream.U("Ut", "YItem"),
		OnItem: func(emit core.Emit[stream.Unit, workload.YahooEvent], _ stream.Unit, ev workload.YahooEvent) {
			if ev.Type == workload.View {
				emit(stream.Unit{}, ev)
			}
		},
	}
}

// projectOp looks up the campaign of the surviving views and keys by
// it (Figure 3's Project + join).
func projectOp(env *Env) core.Operator {
	return &core.Stateless[stream.Unit, workload.YahooEvent, int64, stream.Unit]{
		OpName: "Project",
		In:     stream.U("Ut", "YItem"),
		Out:    stream.U("CID", "Ut"),
		OnItem: func(emit core.Emit[int64, stream.Unit], _ stream.Unit, ev workload.YahooEvent) {
			emit(env.CampaignOf(ev.AdID), stream.Unit{})
		},
	}
}

// slidingCountOp is Figure 3's Count(10 sec): per campaign, the
// number of views in the last SlidingWindowBlocks marker periods,
// emitted at every marker.
func slidingCountOp() core.Operator {
	return &core.KeyedUnordered[int64, stream.Unit, int64, int64, SlidingState, int64]{
		OpName:       "Count(10 sec)",
		InT:          stream.U("CID", "Ut"),
		OutT:         stream.U("CID", "Long"),
		In:           func(int64, stream.Unit) int64 { return 1 },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		InitialState: func() SlidingState { return SlidingState{} },
		UpdateState: func(old SlidingState, agg int64) SlidingState {
			// In place: the template owns each key's state exclusively
			// (snapshots serialize it, restores decode fresh slices), so
			// shifting within the existing backing array is safe and the
			// steady state allocates nothing — the window length is
			// pinned at SlidingWindowBlocks after warmup.
			blocks := append(old.Blocks, agg)
			if len(blocks) > SlidingWindowBlocks {
				copy(blocks, blocks[len(blocks)-SlidingWindowBlocks:])
				blocks = blocks[:SlidingWindowBlocks]
			}
			return SlidingState{Blocks: blocks}
		},
		OnMarker: func(emit core.Emit[int64, int64], st SlidingState, cid int64, m stream.Marker) {
			var total int64
			for _, b := range st.Blocks {
				total += b
			}
			emit(cid, total)
		},
	}
}

// QueryIVDAG: SOURCE → Filter → Project → Count(10 sec) → SINK
// (Figure 3). Filter and Project form a stateless chain the compiler
// fuses into one bolt when Options.FuseChains is on.
func QueryIVDAG(env *Env, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("yahoo", stream.U("Ut", "YItem"))
	flt := d.Op(filterOp(), par, src)
	prj := d.Op(projectOp(env), par, flt)
	cnt := d.Op(slidingCountOp(), par, prj)
	d.Sink("sink", cnt)
	return d
}

// tumblingCountOp is Query V: per-campaign view counts over
// non-overlapping TumblingWindowBlocks-long windows.
func tumblingCountOp() core.Operator {
	return &core.KeyedUnordered[int64, stream.Unit, int64, int64, TumblingState, int64]{
		OpName:       "Count(tumbling)",
		InT:          stream.U("CID", "Ut"),
		OutT:         stream.U("CID", "Long"),
		In:           func(int64, stream.Unit) int64 { return 1 },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		InitialState: func() TumblingState { return TumblingState{} },
		UpdateState: func(old TumblingState, agg int64) TumblingState {
			st := TumblingState{Acc: old.Acc + agg, BlockCount: old.BlockCount + 1}
			if st.BlockCount == TumblingWindowBlocks {
				st.LastWindow = st.Acc
				st.Acc, st.BlockCount, st.Ready = 0, 0, true
			}
			return st
		},
		OnMarker: func(emit core.Emit[int64, int64], st TumblingState, cid int64, m stream.Marker) {
			if st.Ready {
				emit(cid, st.LastWindow)
			}
		},
	}
}

// QueryVDAG: SOURCE → Filter → Project → Count(tumbling) → SINK.
func QueryVDAG(env *Env, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("yahoo", stream.U("Ut", "YItem"))
	flt := d.Op(filterOp(), par, src)
	prj := d.Op(projectOp(env), par, flt)
	cnt := d.Op(tumblingCountOp(), par, prj)
	d.Sink("sink", cnt)
	return d
}

// locateForUserOp is Query VI's first stage: enrich with location but
// key by user (the second stage aggregates per user).
func locateForUserOp(env *Env) core.Operator {
	return &core.Stateless[stream.Unit, workload.YahooEvent, int64, Located]{
		OpName: "Locate-ByUser",
		In:     stream.U("Ut", "YItem"),
		Out:    stream.U("UID", "Located"),
		OnItem: func(emit core.Emit[int64, Located], _ stream.Unit, ev workload.YahooEvent) {
			emit(ev.UserID, Located{Ev: ev, Location: env.LocationOf(ev.UserID)})
		},
	}
}

// featuresOp is Query VI's second stage: cumulative per-user
// interaction counts, re-keyed by location at every marker.
func featuresOp() core.Operator {
	return &core.KeyedUnordered[int64, Located, int64, UserFeatures, Features, Features]{
		OpName: "Features",
		InT:    stream.U("UID", "Located"),
		OutT:   stream.U("LOC", "Feat"),
		In: func(_ int64, l Located) Features {
			f := Features{Location: l.Location}
			switch l.Ev.Type {
			case workload.View:
				f.Views = 1
			case workload.Click:
				f.Clicks = 1
			default:
				f.Purchases = 1
			}
			return f
		},
		ID:           FeaturesID,
		Combine:      CombineFeatures,
		InitialState: FeaturesID,
		UpdateState:  CombineFeatures,
		OnMarker: func(emit core.Emit[int64, UserFeatures], st Features, user int64, m stream.Marker) {
			if st.Location < 0 {
				return // no events for this user yet
			}
			emit(st.Location, UserFeatures{User: user, F: st})
		},
	}
}

// clusterOp is Query VI's third stage: per location, k-means over the
// latest feature vector of each user, run at every marker.
func clusterOp(k int) core.Operator {
	type state = map[int64]Features
	return &core.KeyedUnordered[int64, UserFeatures, int64, ClusterSummary, state, state]{
		OpName: "Cluster",
		InT:    stream.U("LOC", "Feat"),
		OutT:   stream.U("LOC", "Summary"),
		In:     func(_ int64, uf UserFeatures) state { return state{uf.User: uf.F} },
		ID:     func() state { return state{} },
		Combine: func(x, y state) state {
			merged := make(state, len(x)+len(y))
			for u, f := range x {
				merged[u] = f
			}
			for u, f := range y {
				merged[u] = f
			}
			return merged
		},
		InitialState: func() state { return state{} },
		UpdateState: func(old, agg state) state {
			merged := make(state, len(old)+len(agg))
			for u, f := range old {
				merged[u] = f
			}
			for u, f := range agg {
				merged[u] = f
			}
			return merged
		},
		OnMarker: func(emit core.Emit[int64, ClusterSummary], st state, loc int64, m stream.Marker) {
			if len(st) < k {
				return
			}
			// Sort users for a deterministic, order-independent input
			// to the (seeded) clustering.
			users := make([]int64, 0, len(st))
			for u := range st {
				users = append(users, u)
			}
			sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
			points := make([][]float64, len(users))
			for i, u := range users {
				f := st[u]
				points[i] = []float64{f.Views, f.Clicks, f.Purchases}
			}
			res, err := ml.KMeans(points, k, 50, 7)
			if err != nil {
				panic(err)
			}
			emit(loc, ClusterSummary{K: k, Size: len(points), Inertia: res.Inertia})
		},
	}
}

// ClusterK is Query VI's cluster count.
const ClusterK = 3

// QueryVIDAG: SOURCE → Locate-ByUser → Features → Cluster → SINK.
func QueryVIDAG(env *Env, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("yahoo", stream.U("Ut", "YItem"))
	loc := d.Op(locateForUserOp(env), par, src)
	feat := d.Op(featuresOp(), par, loc)
	clu := d.Op(clusterOp(ClusterK), par, feat)
	d.Sink("sink", clu)
	return d
}

// QueryIVWindowTemplateDAG is Query IV rebuilt on the specialized
// SlidingAggregate template (the §8 extension) instead of the
// hand-rolled window state inside OpKeyedUnordered — semantically
// identical (TestQueryIVWindowTemplateEquivalent), with the window
// maintenance done by the two-stacks algorithm.
func QueryIVWindowTemplateDAG(env *Env, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("yahoo", stream.U("Ut", "YItem"))
	fm := d.Op(filterMapOp(env), par, src)
	win := d.Op(&core.SlidingAggregate[int64, stream.Unit, int64]{
		OpName:       "Count(10 sec, template)",
		InT:          stream.U("CID", "Ut"),
		OutT:         stream.U("CID", "Long"),
		WindowBlocks: SlidingWindowBlocks,
		In:           func(int64, stream.Unit) int64 { return 1 },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		EmitEmpty:    true,
	}, par, fm)
	d.Sink("sink", win)
	return d
}
