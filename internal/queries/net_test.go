package queries

import (
	"net"
	"os"
	"testing"
	"time"

	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// TestMain makes the test binary dual-use: re-exec'd with the
// DTT_NET_* spawn contract it becomes a worker process of a networked
// run (RunWorkerIfSpawned never returns in that case); run normally
// it executes the package's tests. This is how the cross-process
// tests below get worker binaries without building anything extra —
// and it runs the workers with the same instrumentation (-race) as
// the test itself.
func TestMain(m *testing.M) {
	RunWorkerIfSpawned()
	os.Exit(m.Run())
}

// requireNet skips tests that need localhost TCP when the environment
// forbids it (sandboxes without socket permissions).
func requireNet(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("skipping networked test: environment forbids localhost TCP sockets (%v)", err)
	}
	ln.Close()
}

func netTestCfg() workload.YahooConfig {
	cfg := workload.DefaultYahooConfig()
	cfg.EventsPerSecond = 120
	cfg.Seconds = 12
	cfg.Users = 60
	cfg.Campaigns = 10
	cfg.AdsPerCampaign = 5
	return cfg
}

// TestNetworkedEquivalenceDifferential is the cross-process
// differential proof: every query, at several parallelism settings,
// run as a 2-worker cluster of real OS processes exchanging frames
// over localhost TCP, must produce a sink stream trace-equivalent to
// the single-process runtime's. Workers are re-execs of this test
// binary (see TestMain), so under -race the whole cluster is
// race-checked and a detector hit in any worker fails the run via its
// nonzero exit.
func TestNetworkedEquivalenceDifferential(t *testing.T) {
	requireNet(t)
	cfg := netTestCfg()
	for _, def := range All() {
		def := def
		t.Run("Query"+def.Name, func(t *testing.T) {
			env, err := NewEnv(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			sinkType := def.SinkType(env)
			for _, par := range []int{1, 2, 4} {
				spec := Spec{Query: def.Name, Variant: Generated, Par: par, SourcePar: 2}
				// Fresh env per run: Query II mutates the DB.
				oracleEnv, err := NewEnv(cfg, 0)
				if err != nil {
					t.Fatal(err)
				}
				oracle, err := Run(oracleEnv, spec)
				if err != nil {
					t.Fatalf("par=%d in-process oracle: %v", par, err)
				}
				res, err := RunNetworked(NetSpec{Spec: spec, Workers: 2, Cfg: cfg}, nil)
				if err != nil {
					t.Fatalf("par=%d networked: %v", par, err)
				}
				if res.WorkerRestarts != 0 {
					t.Fatalf("par=%d: fault-free run restarted %d times", par, res.WorkerRestarts)
				}
				got, want := res.Sinks["sink"], oracle.Sinks["sink"]
				if !stream.Equivalent(sinkType, got, want) {
					t.Fatalf("par=%d: networked trace differs from in-process run\n got %d events\n want %d events",
						par, len(got), len(want))
				}
				gotExec, _ := res.Stats.Component("yahoo")
				wantExec, _ := oracle.Stats.Component("yahoo")
				if gotExec != wantExec {
					t.Fatalf("par=%d: workers report %d source events, in-process run %d", par, gotExec, wantExec)
				}
			}
		})
	}
}

// TestChaosWorkerKillRecovery SIGKILLs a worker process mid-epoch and
// checks the coordinator's recovery: the cluster restarts, the
// replayed stream is spliced onto the committed prefix at the marker
// cut, and the final trace is still equivalent to an undisturbed run.
func TestChaosWorkerKillRecovery(t *testing.T) {
	requireNet(t)
	cfg := netTestCfg()
	spec := Spec{Query: "IV", Variant: Generated, Par: 2, SourcePar: 2}
	// The DB delay stretches the run so the kill (after 3 of the 12
	// marker cuts commit) lands mid-flight rather than after the
	// stream has drained.
	const opDelay = 500 * time.Microsecond

	env, err := NewEnv(cfg, opDelay)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(env, spec)
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunNetworked(NetSpec{Spec: spec, Workers: 3, Cfg: cfg, OpDelay: opDelay},
		func(o *storm.NetOptions) {
			o.Kill = &storm.KillPlan{Worker: 1, AfterCuts: 3}
			o.Logf = t.Logf
		})
	if err != nil {
		t.Fatalf("networked run did not recover: %v", err)
	}
	if res.WorkerRestarts < 1 {
		t.Fatalf("kill plan fired but the cluster reports %d restarts", res.WorkerRestarts)
	}
	if res.ReplayedCuts < 3 {
		t.Fatalf("restart replayed only %d committed cuts, want ≥ 3", res.ReplayedCuts)
	}
	sinkType, err := ByName("IV")
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Sinks["sink"], oracle.Sinks["sink"]
	if !stream.Equivalent(sinkType.SinkType(env), got, want) {
		t.Fatalf("post-recovery trace differs from undisturbed run\n got %d events\n want %d events",
			len(got), len(want))
	}
	// The successful attempt's workers report a full run's counters.
	gotExec, _ := res.Stats.Component("yahoo")
	wantExec, _ := oracle.Stats.Component("yahoo")
	if gotExec != wantExec {
		t.Fatalf("recovered run reports %d source events, want %d", gotExec, wantExec)
	}
	t.Logf("recovered: %d restarts, %d replayed cuts, wall %v", res.WorkerRestarts, res.ReplayedCuts, res.Wall)
}

// TestNetworkedRescaleAtCommittedCut exercises the networked form of
// elastic rescaling: a NetRescalePlan aborts the attempt once the
// named cut commits, and the cluster re-spawns with a revised spec —
// here the same query at doubled parallelism, hence a revised
// placement table — whose replay splices onto the committed prefix.
// The reconfiguration must leave the sink trace equivalent to an
// undisturbed fixed-parallelism run, and must not be charged against
// the restart budget.
func TestNetworkedRescaleAtCommittedCut(t *testing.T) {
	requireNet(t)
	cfg := netTestCfg()
	spec := Spec{Query: "IV", Variant: Generated, Par: 2, SourcePar: 2}
	// The DB delay stretches the run so the cut the plan names commits
	// mid-flight rather than after the stream has drained.
	const opDelay = 500 * time.Microsecond

	env, err := NewEnv(cfg, opDelay)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(env, spec)
	if err != nil {
		t.Fatal(err)
	}

	revised := Spec{Query: "IV", Variant: Generated, Par: 4, SourcePar: 2}
	payload, err := NetSpec{Spec: revised, Workers: 2, Cfg: cfg, OpDelay: opDelay}.Payload()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNetworked(NetSpec{Spec: spec, Workers: 2, Cfg: cfg, OpDelay: opDelay},
		func(o *storm.NetOptions) {
			o.Rescale = &storm.NetRescalePlan{AfterCuts: 4, Spec: payload}
			o.Logf = t.Logf
		})
	if err != nil {
		t.Fatalf("networked rescale run failed: %v", err)
	}
	if !res.Rescaled {
		t.Fatal("rescale plan never fired")
	}
	if res.WorkerRestarts != 0 {
		t.Fatalf("planned rescale was charged as %d restarts", res.WorkerRestarts)
	}
	if res.ReplayedCuts < 4 {
		t.Fatalf("revised cluster replayed only %d committed cuts, want ≥ 4", res.ReplayedCuts)
	}
	def, err := ByName("IV")
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Sinks["sink"], oracle.Sinks["sink"]
	if !stream.Equivalent(def.SinkType(env), got, want) {
		t.Fatalf("rescaled trace differs from undisturbed run\n got %d events\n want %d events",
			len(got), len(want))
	}
	gotExec, _ := res.Stats.Component("yahoo")
	wantExec, _ := oracle.Stats.Component("yahoo")
	if gotExec != wantExec {
		t.Fatalf("rescaled run reports %d source events, want %d", gotExec, wantExec)
	}
	t.Logf("rescaled: %d replayed cuts, wall %v", res.ReplayedCuts, res.Wall)
}

// TestChaosWorkerKillDuringRescale composes the two reconfiguration
// paths: a worker is SIGKILLed after 3 committed cuts (a failure,
// charged to the restart budget), and the rescale plan fires at the
// 6th committed cut — which, given the kill, commits during the
// replaying attempt. The cluster must come out of the combined
// failure-then-reconfigure sequence in a consistent configuration:
// the final attempt runs the revised spec and the spliced trace is
// still equivalent to an undisturbed run.
func TestChaosWorkerKillDuringRescale(t *testing.T) {
	requireNet(t)
	cfg := netTestCfg()
	spec := Spec{Query: "IV", Variant: Generated, Par: 2, SourcePar: 2}
	const opDelay = 500 * time.Microsecond

	env, err := NewEnv(cfg, opDelay)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(env, spec)
	if err != nil {
		t.Fatal(err)
	}

	revised := Spec{Query: "IV", Variant: Generated, Par: 4, SourcePar: 2}
	payload, err := NetSpec{Spec: revised, Workers: 3, Cfg: cfg, OpDelay: opDelay}.Payload()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNetworked(NetSpec{Spec: spec, Workers: 3, Cfg: cfg, OpDelay: opDelay},
		func(o *storm.NetOptions) {
			o.Kill = &storm.KillPlan{Worker: 1, AfterCuts: 3}
			o.Rescale = &storm.NetRescalePlan{AfterCuts: 6, Spec: payload}
			o.Logf = t.Logf
		})
	if err != nil {
		t.Fatalf("kill+rescale run did not recover: %v", err)
	}
	if res.WorkerRestarts < 1 {
		t.Fatalf("kill plan fired but the cluster reports %d restarts", res.WorkerRestarts)
	}
	if !res.Rescaled {
		t.Fatal("rescale plan never fired")
	}
	if res.ReplayedCuts < 6 {
		t.Fatalf("recovery+rescale replayed only %d committed cuts, want ≥ 6", res.ReplayedCuts)
	}
	def, err := ByName("IV")
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Sinks["sink"], oracle.Sinks["sink"]
	if !stream.Equivalent(def.SinkType(env), got, want) {
		t.Fatalf("post-chaos trace differs from undisturbed run\n got %d events\n want %d events",
			len(got), len(want))
	}
	gotExec, _ := res.Stats.Component("yahoo")
	wantExec, _ := oracle.Stats.Component("yahoo")
	if gotExec != wantExec {
		t.Fatalf("post-chaos run reports %d source events, want %d", gotExec, wantExec)
	}
	t.Logf("chaos survived: %d restarts, rescaled=%v, %d replayed cuts, wall %v",
		res.WorkerRestarts, res.Rescaled, res.ReplayedCuts, res.Wall)
}
