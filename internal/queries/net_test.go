package queries

import (
	"net"
	"os"
	"testing"
	"time"

	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// TestMain makes the test binary dual-use: re-exec'd with the
// DTT_NET_* spawn contract it becomes a worker process of a networked
// run (RunWorkerIfSpawned never returns in that case); run normally
// it executes the package's tests. This is how the cross-process
// tests below get worker binaries without building anything extra —
// and it runs the workers with the same instrumentation (-race) as
// the test itself.
func TestMain(m *testing.M) {
	RunWorkerIfSpawned()
	os.Exit(m.Run())
}

// requireNet skips tests that need localhost TCP when the environment
// forbids it (sandboxes without socket permissions).
func requireNet(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("skipping networked test: environment forbids localhost TCP sockets (%v)", err)
	}
	ln.Close()
}

func netTestCfg() workload.YahooConfig {
	cfg := workload.DefaultYahooConfig()
	cfg.EventsPerSecond = 120
	cfg.Seconds = 12
	cfg.Users = 60
	cfg.Campaigns = 10
	cfg.AdsPerCampaign = 5
	return cfg
}

// TestNetworkedEquivalenceDifferential is the cross-process
// differential proof: every query, at several parallelism settings,
// run as a 2-worker cluster of real OS processes exchanging frames
// over localhost TCP, must produce a sink stream trace-equivalent to
// the single-process runtime's. Workers are re-execs of this test
// binary (see TestMain), so under -race the whole cluster is
// race-checked and a detector hit in any worker fails the run via its
// nonzero exit.
func TestNetworkedEquivalenceDifferential(t *testing.T) {
	requireNet(t)
	cfg := netTestCfg()
	for _, def := range All() {
		def := def
		t.Run("Query"+def.Name, func(t *testing.T) {
			env, err := NewEnv(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			sinkType := def.SinkType(env)
			for _, par := range []int{1, 2, 4} {
				spec := Spec{Query: def.Name, Variant: Generated, Par: par, SourcePar: 2}
				// Fresh env per run: Query II mutates the DB.
				oracleEnv, err := NewEnv(cfg, 0)
				if err != nil {
					t.Fatal(err)
				}
				oracle, err := Run(oracleEnv, spec)
				if err != nil {
					t.Fatalf("par=%d in-process oracle: %v", par, err)
				}
				res, err := RunNetworked(NetSpec{Spec: spec, Workers: 2, Cfg: cfg}, nil)
				if err != nil {
					t.Fatalf("par=%d networked: %v", par, err)
				}
				if res.WorkerRestarts != 0 {
					t.Fatalf("par=%d: fault-free run restarted %d times", par, res.WorkerRestarts)
				}
				got, want := res.Sinks["sink"], oracle.Sinks["sink"]
				if !stream.Equivalent(sinkType, got, want) {
					t.Fatalf("par=%d: networked trace differs from in-process run\n got %d events\n want %d events",
						par, len(got), len(want))
				}
				gotExec, _ := res.Stats.Component("yahoo")
				wantExec, _ := oracle.Stats.Component("yahoo")
				if gotExec != wantExec {
					t.Fatalf("par=%d: workers report %d source events, in-process run %d", par, gotExec, wantExec)
				}
			}
		})
	}
}

// TestChaosWorkerKillRecovery SIGKILLs a worker process mid-epoch and
// checks the coordinator's recovery: the cluster restarts, the
// replayed stream is spliced onto the committed prefix at the marker
// cut, and the final trace is still equivalent to an undisturbed run.
func TestChaosWorkerKillRecovery(t *testing.T) {
	requireNet(t)
	cfg := netTestCfg()
	spec := Spec{Query: "IV", Variant: Generated, Par: 2, SourcePar: 2}
	// The DB delay stretches the run so the kill (after 3 of the 12
	// marker cuts commit) lands mid-flight rather than after the
	// stream has drained.
	const opDelay = 500 * time.Microsecond

	env, err := NewEnv(cfg, opDelay)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(env, spec)
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunNetworked(NetSpec{Spec: spec, Workers: 3, Cfg: cfg, OpDelay: opDelay},
		func(o *storm.NetOptions) {
			o.Kill = &storm.KillPlan{Worker: 1, AfterCuts: 3}
			o.Logf = t.Logf
		})
	if err != nil {
		t.Fatalf("networked run did not recover: %v", err)
	}
	if res.WorkerRestarts < 1 {
		t.Fatalf("kill plan fired but the cluster reports %d restarts", res.WorkerRestarts)
	}
	if res.ReplayedCuts < 3 {
		t.Fatalf("restart replayed only %d committed cuts, want ≥ 3", res.ReplayedCuts)
	}
	sinkType, err := ByName("IV")
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Sinks["sink"], oracle.Sinks["sink"]
	if !stream.Equivalent(sinkType.SinkType(env), got, want) {
		t.Fatalf("post-recovery trace differs from undisturbed run\n got %d events\n want %d events",
			len(got), len(want))
	}
	// The successful attempt's workers report a full run's counters.
	gotExec, _ := res.Stats.Component("yahoo")
	wantExec, _ := oracle.Stats.Component("yahoo")
	if gotExec != wantExec {
		t.Fatalf("recovered run reports %d source events, want %d", gotExec, wantExec)
	}
	t.Logf("recovered: %d restarts, %d replayed cuts, wall %v", res.WorkerRestarts, res.ReplayedCuts, res.Wall)
}
