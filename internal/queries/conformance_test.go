package queries

import (
	"math/rand"
	"testing"

	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// permuteWithinBlocks shuffles the items inside each marker-delimited
// block, leaving every marker in place. For an unordered source type
// U(K,V) — all six queries' sources, including Query II's user-keyed
// one — this is exactly the set of reorderings that preserve the
// input's data trace (items of one block form a bag; markers are
// linearly ordered), so it is the dependence relation's full orbit: a
// consistent query must produce an equivalent output on any of them.
func permuteWithinBlocks(events []stream.Event, r *rand.Rand) []stream.Event {
	out := append([]stream.Event(nil), events...)
	start := 0
	for i := 0; i <= len(out); i++ {
		if i < len(out) && !out[i].IsMarker {
			continue
		}
		block := out[start:i]
		r.Shuffle(len(block), func(a, b int) { block[a], block[b] = block[b], block[a] })
		start = i + 1
	}
	return out
}

// TestConformanceDifferentialQueries is the differential conformance
// battery: for every query I–VI, the generated topology and the
// handcrafted topology are run on randomized dependence-respecting
// permutations of the partitioned input at parallelism 1, 2 and 4,
// and each output must be trace-equivalent to the reference
// denotation computed on the unpermuted input. This simultaneously
// exercises (a) consistency — permuted inputs denote the same trace,
// so outputs must agree — and (b) semantics preservation of both
// implementations on the concurrent runtime (run it under -race).
func TestConformanceDifferentialQueries(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, def := range All() {
		def := def
		t.Run("Query"+def.Name, func(t *testing.T) {
			env := testEnv(t)
			ref, err := def.Reference(env)
			if err != nil {
				t.Fatal(err)
			}
			sinkType := def.SinkType(env)

			// Materialize the partitioned source once; every run below
			// permutes a fresh copy.
			srcEnv := testEnv(t)
			parts := def.Sources(srcEnv, 2)
			base := make([][]stream.Event, len(parts))
			for i, it := range parts {
				base[i] = workload.Collect(it)
			}

			for _, par := range []int{1, 2, 4} {
				for _, variant := range []Variant{Generated, Handcrafted} {
					perm := make([][]stream.Event, len(base))
					for i := range base {
						perm[i] = permuteWithinBlocks(base[i], r)
					}
					// Fresh env per run: Query II mutates the DB.
					runEnv := testEnv(t)
					res, err := RunOn(runEnv, Spec{Query: def.Name, Variant: variant, Par: par}, perm)
					if err != nil {
						t.Fatalf("par=%d %s: %v", par, variant, err)
					}
					if !stream.Equivalent(sinkType, res.Sinks["sink"], ref["sink"]) {
						t.Fatalf("par=%d %s: permuted input produced a different output trace (%d vs %d events)",
							par, variant, len(res.Sinks["sink"]), len(ref["sink"]))
					}
				}
			}
		})
	}
}

// TestTransportEquivalenceDifferential proves the batched edge
// transport semantics-preserving at the query level: every generated
// topology I–VI runs at batch sizes {1, 4, 64, 1024} × parallelism
// {1, 2, 4} on the same partitioned input, and each sink output must
// be equal as a data trace to the BatchSize-1 run of the same
// parallelism — the unbatched transport is the oracle. Run under
// -race (scripts/check.sh does) so flush interleavings are exercised
// under real executor concurrency.
func TestTransportEquivalenceDifferential(t *testing.T) {
	for _, def := range All() {
		def := def
		t.Run("Query"+def.Name, func(t *testing.T) {
			env := testEnv(t)
			sinkType := def.SinkType(env)
			srcEnv := testEnv(t)
			parts := def.Sources(srcEnv, 2)
			base := make([][]stream.Event, len(parts))
			for i, it := range parts {
				base[i] = workload.Collect(it)
			}
			run := func(par, batch int) []stream.Event {
				t.Helper()
				in := make([][]stream.Event, len(base))
				for i := range base {
					in[i] = append([]stream.Event(nil), base[i]...)
				}
				// Fresh env per run: Query II mutates the DB.
				runEnv := testEnv(t)
				res, err := RunOn(runEnv, Spec{
					Query: def.Name, Variant: Generated, Par: par,
					Transport: &storm.TransportOptions{BatchSize: batch},
				}, in)
				if err != nil {
					t.Fatalf("par=%d batch=%d: %v", par, batch, err)
				}
				return res.Sinks["sink"]
			}
			for _, par := range []int{1, 2, 4} {
				baseline := run(par, 1)
				for _, batch := range []int{4, 64, 1024} {
					out := run(par, batch)
					if !stream.Equivalent(sinkType, out, baseline) {
						t.Fatalf("par=%d batch=%d: batched output is not trace-equivalent to the BatchSize-1 run (%d vs %d events)",
							par, batch, len(out), len(baseline))
					}
				}
			}
		})
	}
}

// TestPermuteWithinBlocksRespectsDependence pins the permutation
// helper itself: markers keep their positions, each block keeps its
// item multiset, and the permuted sequence stays trace-equivalent to
// the original under the source's unordered type.
func TestPermuteWithinBlocksRespectsDependence(t *testing.T) {
	env := testEnv(t)
	def, _ := ByName("I")
	in := def.ReferenceInput(env)
	r := rand.New(rand.NewSource(99))
	perm := permuteWithinBlocks(in, r)
	if len(perm) != len(in) {
		t.Fatalf("permutation changed length: %d vs %d", len(perm), len(in))
	}
	for i, e := range in {
		if e.IsMarker != perm[i].IsMarker {
			t.Fatalf("marker moved at position %d", i)
		}
		if e.IsMarker && e.Marker != perm[i].Marker {
			t.Fatalf("marker changed at position %d", i)
		}
	}
	srcType := stream.U("Ut", "YItem")
	if !stream.Equivalent(srcType, in, perm) {
		t.Fatal("permuted input is not trace-equivalent to the original")
	}
	changed := false
	for i := range in {
		if in[i] != perm[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("permutation was the identity; seed must actually shuffle")
	}
}
