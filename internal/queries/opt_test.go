package queries

import (
	"fmt"
	"testing"

	"datatrace/internal/compile"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// TestOptimizationEquivalenceDifferential proves the compiler's
// optimization passes semantics-preserving at the query level: every
// generated query I–VI runs with the passes on and off at parallelism
// 1, 2 and 4, and each output must be trace-equivalent to the
// reference denotation. Run under -race (scripts/check.sh does) so
// combiner drains and fused executors are exercised under real
// concurrency.
func TestOptimizationEquivalenceDifferential(t *testing.T) {
	for _, def := range All() {
		def := def
		t.Run("Query"+def.Name, func(t *testing.T) {
			env := testEnv(t)
			ref, err := def.Reference(env)
			if err != nil {
				t.Fatal(err)
			}
			sinkType := def.SinkType(env)
			srcEnv := testEnv(t)
			parts := def.Sources(srcEnv, 2)
			base := make([][]stream.Event, len(parts))
			for i, it := range parts {
				base[i] = workload.Collect(it)
			}
			for _, par := range []int{1, 2, 4} {
				for _, off := range []bool{false, true} {
					in := make([][]stream.Event, len(base))
					for i := range base {
						in[i] = append([]stream.Event(nil), base[i]...)
					}
					// Fresh env per run: Query II mutates the DB.
					runEnv := testEnv(t)
					res, err := RunOn(runEnv, Spec{
						Query: def.Name, Variant: Generated, Par: par,
						NoFuseChains: off, NoCombiners: off,
					}, in)
					if err != nil {
						t.Fatalf("par=%d passesOff=%v: %v", par, off, err)
					}
					if !stream.Equivalent(sinkType, res.Sinks["sink"], ref["sink"]) {
						t.Fatalf("par=%d passesOff=%v: output trace diverged from the reference (%d vs %d events)",
							par, off, len(res.Sinks["sink"]), len(ref["sink"]))
					}
				}
			}
		})
	}
}

// TestQueryIVPlanShowsBothPasses pins what the optimizer does to the
// flagship pipeline: Filter and Project fuse into one bolt and the
// fields edge into the sliding count carries a combining buffer.
func TestQueryIVPlanShowsBothPasses(t *testing.T) {
	env := testEnv(t)
	dag := QueryIVDAG(env, 2)
	_, plan, err := compile.CompileWithPlan(dag, map[string]compile.SourceSpec{
		"yahoo": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(nil) }},
	}, nil) // nil options = all passes on
	if err != nil {
		t.Fatal(err)
	}
	var project *compile.PlanBolt
	for i := range plan.Bolts {
		if plan.Bolts[i].Name == "Project" {
			project = &plan.Bolts[i]
		}
	}
	if project == nil || len(project.Stages) != 2 ||
		project.Stages[0] != "Filter" || project.Stages[1] != "Project" {
		t.Fatalf("expected Project to fuse [Filter → Project], plan:\n%s", plan)
	}
	if len(plan.CombinedEdges) != 1 {
		t.Fatalf("expected exactly one combined edge, plan:\n%s", plan)
	}
	e := plan.CombinedEdges[0]
	if e.From != "Project" || e.To != "Count(10 sec)" || e.Cap != storm.DefaultCombinerCap {
		t.Fatalf("combined edge = %+v, want Project→Count(10 sec) cap %d", e, storm.DefaultCombinerCap)
	}
}

// TestOptimizedRunsActuallyCombine guards against the passes silently
// deactivating: a default Query IV generated run must show combiner
// traffic with compression, and the passes-off run must show none.
func TestOptimizedRunsActuallyCombine(t *testing.T) {
	run := func(off bool) *storm.Result {
		t.Helper()
		res, err := Run(testEnv(t), Spec{Query: "IV", Variant: Generated, Par: 2,
			NoFuseChains: off, NoCombiners: off})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on := run(false)
	in, out := on.Stats.Combined()
	if in == 0 || out == 0 || out >= in {
		t.Fatalf("optimized run combiner stats in=%d out=%d: expected compression (0 < out < in)", in, out)
	}
	offRes := run(true)
	if oin, _ := offRes.Stats.Combined(); oin != 0 {
		t.Fatalf("passes-off run still combined %d events", oin)
	}
	fmt.Printf("query IV combiner compression: %d items → %d partials (%.1f×)\n",
		in, out, float64(in)/float64(out))
}
