package queries

import (
	"testing"

	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	cfg := workload.DefaultYahooConfig()
	cfg.EventsPerSecond = 120
	cfg.Seconds = 12 // crosses the 10-block window boundary of IV/V
	cfg.Users = 60
	cfg.Campaigns = 10
	cfg.AdsPerCampaign = 5
	env, err := NewEnv(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestVariantsMatchReference is the evaluation's core correctness
// claim: for every query, both the compiled transduction DAG and the
// handcrafted topology produce the reference denotation's output
// trace, at several parallelism settings, on the concurrent runtime.
func TestVariantsMatchReference(t *testing.T) {
	for _, def := range All() {
		def := def
		t.Run("Query"+def.Name, func(t *testing.T) {
			env := testEnv(t)
			ref, err := def.Reference(env)
			if err != nil {
				t.Fatal(err)
			}
			sinkType := def.SinkType(env)
			for _, par := range []int{1, 2, 3} {
				for _, variant := range []Variant{Generated, Handcrafted} {
					// Fresh env per run: Query II mutates the DB.
					runEnv := testEnv(t)
					res, err := Run(runEnv, Spec{Query: def.Name, Variant: variant, Par: par, SourcePar: 2})
					if err != nil {
						t.Fatalf("par=%d %s: %v", par, variant, err)
					}
					got := res.Sinks["sink"]
					want := ref["sink"]
					if !stream.Equivalent(sinkType, got, want) {
						t.Fatalf("par=%d %s: output trace differs from reference\n got %d events\n want %d events",
							par, variant, len(got), len(want))
					}
				}
			}
		})
	}
}

func TestAllDAGsTypeCheck(t *testing.T) {
	env := testEnv(t)
	for _, def := range All() {
		for _, par := range []int{1, 4} {
			if err := def.DAG(env, par).Check(); err != nil {
				t.Errorf("Query %s at par %d: %v", def.Name, par, err)
			}
		}
	}
}

func TestQueryIVMatchesManualWindowCount(t *testing.T) {
	// Independent oracle: count views per campaign per second from the
	// raw workload, then compute sliding sums.
	env := testEnv(t)
	def, _ := ByName("IV")
	ref, err := def.Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle.
	perBlock := map[int64][]int64{} // campaign → per-second view counts
	second := 0
	for _, e := range def.ReferenceInput(env) {
		if e.IsMarker {
			second++
			continue
		}
		ev := e.Value.(workload.YahooEvent)
		if ev.Type != workload.View {
			continue
		}
		cid := env.CampaignOf(ev.AdID)
		for len(perBlock[cid]) <= second {
			perBlock[cid] = append(perBlock[cid], 0)
		}
		perBlock[cid][second]++
	}
	// Extract sink emissions grouped by marker block.
	gotPerBlock := map[int64][]int64{} // campaign → emitted value per marker
	block := 0
	for _, e := range ref["sink"] {
		if e.IsMarker {
			block++
			continue
		}
		cid := e.Key.(int64)
		for len(gotPerBlock[cid]) < block {
			gotPerBlock[cid] = append(gotPerBlock[cid], -1) // not yet seen
		}
		gotPerBlock[cid] = append(gotPerBlock[cid], e.Value.(int64))
	}
	checked := 0
	for cid, got := range gotPerBlock {
		counts := perBlock[cid]
		for b, v := range got {
			if v < 0 {
				continue // campaign not yet seen at this marker
			}
			var want int64
			lo := b - SlidingWindowBlocks + 1
			if lo < 0 {
				lo = 0
			}
			for s := lo; s <= b && s < len(counts); s++ {
				want += counts[s]
			}
			if v != want {
				t.Fatalf("campaign %d at marker %d: got %d, oracle %d", cid, b, v, want)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("oracle checked only %d emissions", checked)
	}
}

func TestQueryIIPersistsCounts(t *testing.T) {
	env := testEnv(t)
	if _, err := Run(env, Spec{Query: "II", Variant: Generated, Par: 2, SourcePar: 2}); err != nil {
		t.Fatal(err)
	}
	counts := env.DB.MustTable("user_counts")
	if counts.Len() == 0 {
		t.Fatal("no counts persisted")
	}
	// Oracle: total events per user.
	oracle := map[int64]int64{}
	def, _ := ByName("II")
	for _, e := range def.ReferenceInput(env) {
		if !e.IsMarker {
			oracle[e.Key.(int64)]++
		}
	}
	for user, want := range oracle {
		row, ok := counts.Get(user)
		if !ok {
			t.Fatalf("user %d missing from user_counts", user)
		}
		if row[1].(int64) != want {
			t.Fatalf("user %d count = %v, oracle %d", user, row[1], want)
		}
	}
}

func TestQueryVEmitsOnlyAtWindowBoundaries(t *testing.T) {
	env := testEnv(t)
	def, _ := ByName("V")
	ref, err := def.Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	block := 0
	for _, e := range ref["sink"] {
		if e.IsMarker {
			block++
			continue
		}
		if (block+1)%TumblingWindowBlocks != 0 {
			t.Fatalf("tumbling output emitted at marker %d (not a window boundary)", block)
		}
	}
}

func TestQueryVIEmitsClusterSummaries(t *testing.T) {
	env := testEnv(t)
	def, _ := ByName("VI")
	ref, err := def.Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	summaries := 0
	for _, e := range ref["sink"] {
		if e.IsMarker {
			continue
		}
		cs := e.Value.(ClusterSummary)
		if cs.K != ClusterK || cs.Size < ClusterK || cs.Inertia < 0 {
			t.Fatalf("bad cluster summary %+v", cs)
		}
		summaries++
	}
	if summaries == 0 {
		t.Fatal("no cluster summaries emitted")
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("VII"); err == nil {
		t.Fatal("unknown query must fail")
	}
	if _, err := Run(testEnv(t), Spec{Query: "I", Variant: "bogus"}); err == nil {
		t.Fatal("unknown variant must fail")
	}
	if _, err := Run(testEnv(t), Spec{Query: "nope", Variant: Generated}); err == nil {
		t.Fatal("unknown query must fail in Run")
	}
}

func TestSpecDefaults(t *testing.T) {
	env := testEnv(t)
	res, err := Run(env, Spec{Query: "I", Variant: Generated}) // Par/SourcePar default to 1
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks["sink"]) == 0 {
		t.Fatal("no output")
	}
}

// TestQueryIVWindowTemplateEquivalent: the §8 SlidingAggregate
// template computes exactly what Query IV's hand-rolled window logic
// computes, on the real workload.
func TestQueryIVWindowTemplateEquivalent(t *testing.T) {
	env := testEnv(t)
	def, _ := ByName("IV")
	ref, err := def.Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	alt := QueryIVWindowTemplateDAG(env, 1)
	got, err := alt.Eval(map[string][]stream.Event{"yahoo": def.ReferenceInput(env)})
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equivalent(def.SinkType(env), got["sink"], ref["sink"]) {
		t.Fatal("window-template Query IV differs from the hand-rolled version")
	}
	// And its parallel deployment is equivalent too.
	dep, err := QueryIVWindowTemplateDAG(env, 3).EvalDeployed(
		map[string][]stream.Event{"yahoo": def.ReferenceInput(env)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equivalent(def.SinkType(env), dep["sink"], ref["sink"]) {
		t.Fatal("deployed window-template Query IV differs")
	}
}
