package queries

import (
	"sort"

	"datatrace/internal/ml"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// This file contains the hand-written Storm topologies (the paper's
// blue line). They use raw connections — the runtime gives them no
// marker alignment — so every bolt carries its own synchronization
// code: a per-channel block buffer (syncBolt) plus manual windowing
// state, exactly the "practical fixes" section 2 describes hand-tuned
// code needing. The processing logic itself is written directly
// against maps rather than through the operator templates.

// syncBolt is the hand-rolled marker synchronization every
// handcrafted bolt embeds: it tracks the producer task each tuple
// came from (Storm's getSourceTask) and releases items block by
// block, emitting one marker per completed block.
type syncBolt struct {
	merge *stream.MergeState
	inner func(e stream.Event, emit func(stream.Event))
}

func newSyncBolt(nChannels int, inner func(e stream.Event, emit func(stream.Event))) *syncBolt {
	return &syncBolt{merge: stream.NewMergeState(nChannels), inner: inner}
}

// NextFrom implements storm.ChannelBolt.
func (b *syncBolt) NextFrom(ch int, e stream.Event, emit func(stream.Event)) {
	b.merge.Next(ch, e, func(ev stream.Event) { b.inner(ev, emit) })
}

// Next implements storm.Bolt; raw-edge consumers always receive
// NextFrom, but the interface requires Next.
func (b *syncBolt) Next(e stream.Event, emit func(stream.Event)) { b.inner(e, emit) }

// addSpouts declares the partitioned source.
func addSpouts(top *storm.Topology, sources []workload.Iterator) {
	top.AddSpout("yahoo", len(sources), func(i int) storm.Spout {
		return storm.SpoutFunc(sources[i])
	})
}

// QueryIHandcrafted: spout → enrich (shuffle) → sink.
func QueryIHandcrafted(env *Env, par int, sources []workload.Iterator) *storm.Topology {
	top := storm.NewTopology("queryI-handcrafted")
	addSpouts(top, sources)
	nch := len(sources)
	top.AddBolt("enrich", par, func(int) storm.Bolt {
		return newSyncBolt(nch, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				emit(e)
				return
			}
			ev := e.Value.(workload.YahooEvent)
			cid := env.CampaignOf(ev.AdID)
			emit(stream.Item(cid, Enriched{Ev: ev, Campaign: cid}))
		})
	}).ShuffleGrouping("yahoo", false)
	top.AddSink("sink", "enrich")
	return top
}

// QueryIIHandcrafted: spout (keyed by user) → count+persist (fields)
// → sink.
func QueryIIHandcrafted(env *Env, par int, sources []workload.Iterator) *storm.Topology {
	counts := env.DB.MustTable("user_counts")
	top := storm.NewTopology("queryII-handcrafted")
	addSpouts(top, sources)
	nch := len(sources)
	top.AddBolt("count", par, func(int) storm.Bolt {
		state := map[int64]int64{}
		var users []int64
		return newSyncBolt(nch, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				for _, u := range users {
					if err := counts.Upsert(u, state[u]); err != nil {
						panic(err)
					}
					emit(stream.Item(u, state[u]))
				}
				emit(e)
				return
			}
			u := e.Key.(int64)
			if _, seen := state[u]; !seen {
				users = append(users, u)
			}
			state[u]++
		})
	}).FieldsGrouping("yahoo", false)
	top.AddSink("sink", "count")
	return top
}

// QueryIIIHandcrafted: spout → locate (shuffle) → summarize (fields)
// → sink.
func QueryIIIHandcrafted(env *Env, par int, sources []workload.Iterator) *storm.Topology {
	top := storm.NewTopology("queryIII-handcrafted")
	addSpouts(top, sources)
	nch := len(sources)
	top.AddBolt("locate", par, func(int) storm.Bolt {
		return newSyncBolt(nch, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				emit(e)
				return
			}
			ev := e.Value.(workload.YahooEvent)
			loc := env.LocationOf(ev.UserID)
			emit(stream.Item(loc, Located{Ev: ev, Location: loc}))
		})
	}).ShuffleGrouping("yahoo", false)
	top.AddBolt("summarize", par, func(int) storm.Bolt {
		state := map[int64]int64{}
		var locs []int64
		return newSyncBolt(par, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				for _, l := range locs {
					emit(stream.Item(l, state[l]))
				}
				emit(e)
				return
			}
			l := e.Key.(int64)
			if _, seen := state[l]; !seen {
				locs = append(locs, l)
			}
			state[l]++
		})
	}).FieldsGrouping("locate", false)
	top.AddSink("sink", "summarize")
	return top
}

// filterMapBolt is the handcrafted Figure 3 first stage.
func filterMapBolt(env *Env, nch int) storm.Bolt {
	return newSyncBolt(nch, func(e stream.Event, emit func(stream.Event)) {
		if e.IsMarker {
			emit(e)
			return
		}
		ev := e.Value.(workload.YahooEvent)
		if ev.Type != workload.View {
			return
		}
		emit(stream.Item(env.CampaignOf(ev.AdID), stream.Unit{}))
	})
}

// QueryIVHandcrafted: spout → filter-map (shuffle) → sliding count
// (fields) → sink.
func QueryIVHandcrafted(env *Env, par int, sources []workload.Iterator) *storm.Topology {
	top := storm.NewTopology("queryIV-handcrafted")
	addSpouts(top, sources)
	nch := len(sources)
	top.AddBolt("filter-map", par, func(int) storm.Bolt { return filterMapBolt(env, nch) }).
		ShuffleGrouping("yahoo", false)
	top.AddBolt("count", par, func(int) storm.Bolt {
		windows := map[int64][]int64{} // campaign → last blocks
		current := map[int64]int64{}
		var cids []int64
		return newSyncBolt(par, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				for _, cid := range cids {
					w := append(windows[cid], current[cid])
					if len(w) > SlidingWindowBlocks {
						w = w[len(w)-SlidingWindowBlocks:]
					}
					windows[cid] = w
					current[cid] = 0
					var total int64
					for _, b := range w {
						total += b
					}
					emit(stream.Item(cid, total))
				}
				emit(e)
				return
			}
			cid := e.Key.(int64)
			if _, seen := windows[cid]; !seen {
				windows[cid] = nil
				cids = append(cids, cid)
			}
			current[cid]++
		})
	}).FieldsGrouping("filter-map", false)
	top.AddSink("sink", "count")
	return top
}

// QueryVHandcrafted: like IV with tumbling windows.
func QueryVHandcrafted(env *Env, par int, sources []workload.Iterator) *storm.Topology {
	top := storm.NewTopology("queryV-handcrafted")
	addSpouts(top, sources)
	nch := len(sources)
	top.AddBolt("filter-map", par, func(int) storm.Bolt { return filterMapBolt(env, nch) }).
		ShuffleGrouping("yahoo", false)
	top.AddBolt("count", par, func(int) storm.Bolt {
		acc := map[int64]int64{}
		current := map[int64]int64{}
		var cids []int64
		markers := 0
		return newSyncBolt(par, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				markers++
				flush := markers%TumblingWindowBlocks == 0
				for _, cid := range cids {
					acc[cid] += current[cid]
					current[cid] = 0
					if flush {
						emit(stream.Item(cid, acc[cid]))
						acc[cid] = 0
					}
				}
				emit(e)
				return
			}
			cid := e.Key.(int64)
			if _, seen := acc[cid]; !seen {
				acc[cid] = 0
				cids = append(cids, cid)
			}
			current[cid]++
		})
	}).FieldsGrouping("filter-map", false)
	top.AddSink("sink", "count")
	return top
}

// QueryVIHandcrafted: spout → locate-by-user (shuffle) → features
// (fields by user) → cluster (fields by location) → sink.
func QueryVIHandcrafted(env *Env, par int, sources []workload.Iterator) *storm.Topology {
	top := storm.NewTopology("queryVI-handcrafted")
	addSpouts(top, sources)
	nch := len(sources)
	top.AddBolt("locate", par, func(int) storm.Bolt {
		return newSyncBolt(nch, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				emit(e)
				return
			}
			ev := e.Value.(workload.YahooEvent)
			emit(stream.Item(ev.UserID, Located{Ev: ev, Location: env.LocationOf(ev.UserID)}))
		})
	}).ShuffleGrouping("yahoo", false)
	top.AddBolt("features", par, func(int) storm.Bolt {
		state := map[int64]Features{}
		var users []int64
		return newSyncBolt(par, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				for _, u := range users {
					f := state[u]
					emit(stream.Item(f.Location, UserFeatures{User: u, F: f}))
				}
				emit(e)
				return
			}
			u := e.Key.(int64)
			l := e.Value.(Located)
			f, seen := state[u]
			if !seen {
				users = append(users, u)
				f = Features{Location: l.Location}
			}
			switch l.Ev.Type {
			case workload.View:
				f.Views++
			case workload.Click:
				f.Clicks++
			default:
				f.Purchases++
			}
			state[u] = f
		})
	}).FieldsGrouping("locate", false)
	top.AddBolt("cluster", par, func(int) storm.Bolt {
		state := map[int64]map[int64]Features{} // location → user → features
		var locs []int64
		return newSyncBolt(par, func(e stream.Event, emit func(stream.Event)) {
			if e.IsMarker {
				for _, loc := range locs {
					perUser := state[loc]
					if len(perUser) < ClusterK {
						continue
					}
					users := make([]int64, 0, len(perUser))
					for u := range perUser {
						users = append(users, u)
					}
					sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
					points := make([][]float64, len(users))
					for i, u := range users {
						f := perUser[u]
						points[i] = []float64{f.Views, f.Clicks, f.Purchases}
					}
					res, err := ml.KMeans(points, ClusterK, 50, 7)
					if err != nil {
						panic(err)
					}
					emit(stream.Item(loc, ClusterSummary{K: ClusterK, Size: len(points), Inertia: res.Inertia}))
				}
				emit(e)
				return
			}
			loc := e.Key.(int64)
			uf := e.Value.(UserFeatures)
			if state[loc] == nil {
				state[loc] = map[int64]Features{}
				locs = append(locs, loc)
			}
			state[loc][uf.User] = uf.F
		})
	}).FieldsGrouping("features", false)
	top.AddSink("sink", "cluster")
	return top
}
