package queries

import (
	"testing"
	"time"

	"datatrace/internal/compile"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// TestColumnarEquivalenceDifferential proves the columnar transport
// semantics-preserving at the query level: every generated query I–VI
// runs with the columnar (struct-of-arrays) edges on — the default —
// and with NoColumnar set, at parallelism {1, 2, 4} × transport batch
// size {1, 64}, and the two sink outputs must be equal as data
// traces. The boxed run is the oracle: it exercises the same
// operators through the per-event path that predates this transport.
// Run under -race (scripts/check.sh does) so batch recycling through
// the arena pools is exercised under real executor concurrency.
func TestColumnarEquivalenceDifferential(t *testing.T) {
	for _, def := range All() {
		def := def
		t.Run("Query"+def.Name, func(t *testing.T) {
			env := testEnv(t)
			sinkType := def.SinkType(env)
			run := func(par, batch int, boxed bool) []stream.Event {
				t.Helper()
				// Fresh env per run: Query II mutates the DB.
				runEnv := testEnv(t)
				res, err := Run(runEnv, Spec{
					Query: def.Name, Variant: Generated, Par: par, SourcePar: 2,
					NoColumnar: boxed,
					Transport:  &storm.TransportOptions{BatchSize: batch},
				})
				if err != nil {
					t.Fatalf("par=%d batch=%d boxed=%v: %v", par, batch, boxed, err)
				}
				return res.Sinks["sink"]
			}
			for _, par := range []int{1, 2, 4} {
				for _, batch := range []int{1, 64} {
					oracle := run(par, batch, true)
					got := run(par, batch, false)
					if !stream.Equivalent(sinkType, got, oracle) {
						t.Fatalf("par=%d batch=%d: columnar trace differs from boxed oracle (%d vs %d events)",
							par, batch, len(got), len(oracle))
					}
				}
			}
		})
	}
}

// TestColumnarPlanSelectsTypedEdges pins the compiler's edge-type
// selection on the flagship pipeline so the differential tests above
// (and the default-path chaos/rescale tests) cannot pass vacuously:
// with a columnar source, Query IV's plan must carry the source edge
// as columnar and the combined fields edge as typed, and setting
// NoColumnar must remove both.
func TestColumnarPlanSelectsTypedEdges(t *testing.T) {
	env := testEnv(t)
	cols := env.Gen.ColPartitions(1, false)
	build := func(opts *compile.Options) *compile.Plan {
		t.Helper()
		dag := QueryIVDAG(env, 2)
		_, plan, err := compile.CompileWithPlan(dag, map[string]compile.SourceSpec{
			"yahoo": {
				Parallelism: 1,
				Cols:        cols[0].ColKind(),
				Factory:     func(int) storm.Spout { return cols[0] },
			},
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}

	plan := build(nil) // nil options = all passes on, columnar on
	if len(plan.ColumnarEdges) == 0 {
		t.Fatalf("no columnar edges selected, plan:\n%s", plan)
	}
	src := plan.ColumnarEdges[0]
	if src.From != "yahoo" || src.To != "Project" {
		t.Fatalf("columnar edge = %+v, want yahoo→Project (fused Filter+Project), plan:\n%s", src, plan)
	}
	if len(plan.CombinedEdges) != 1 || !plan.CombinedEdges[0].Columnar {
		t.Fatalf("expected the Project→Count combined edge to be typed, plan:\n%s", plan)
	}

	boxed := build(&compile.Options{FuseSort: true, FuseChains: true, Combiners: true, NoColumnar: true})
	if len(boxed.ColumnarEdges) != 0 {
		t.Fatalf("NoColumnar plan still selected columnar edges:\n%s", boxed)
	}
	if len(boxed.CombinedEdges) != 1 || boxed.CombinedEdges[0].Columnar {
		t.Fatalf("NoColumnar plan still selected a typed combined edge:\n%s", boxed)
	}
}

// TestColumnarRescaleAtCut rescales Query IV at marker-cut barriers
// while its hot edges move typed batches: scale-out and scale-in at
// batch sizes 1 and 64, each compared against a fixed-parallelism
// BOXED oracle. Columnar buffers are sealed and flushed before every
// marker enters the transport, so state migration at the cut sees
// empty edges — this test is the query-level proof, with the oracle
// on the other transport so a columnar-specific loss or duplication
// cannot cancel out.
func TestColumnarRescaleAtCut(t *testing.T) {
	env := testEnv(t)
	def, err := ByName("IV")
	if err != nil {
		t.Fatal(err)
	}
	sinkType := def.SinkType(env)
	base := Spec{Query: "IV", Variant: Generated, SourcePar: 2,
		Recovery: true, NoCombiners: true}

	probeSpec := base
	probeSpec.Par = 2
	target, _ := rescaleProbe(t, def, probeSpec)

	oracleSpec := base
	oracleSpec.Par = 2
	oracleSpec.NoColumnar = true
	oracleEnv := testEnv(t)
	oracle, err := Run(oracleEnv, oracleSpec)
	if err != nil {
		t.Fatalf("boxed fixed-par oracle: %v", err)
	}

	scenarios := []struct {
		name string
		par  int
		plan func(target string) *storm.RescalePlan
	}{
		{"up", 2, func(c string) *storm.RescalePlan {
			return storm.NewRescalePlan().RescaleAt(c, 4, 3)
		}},
		{"down", 4, func(c string) *storm.RescalePlan {
			return storm.NewRescalePlan().RescaleAt(c, 1, 3)
		}},
	}
	for _, sc := range scenarios {
		for _, batch := range []int{1, 64} {
			spec := base
			spec.Par = sc.par
			spec.Transport = &storm.TransportOptions{BatchSize: batch}
			spec.Rescale = sc.plan(target)
			runEnv := testEnv(t)
			res, err := Run(runEnv, spec)
			if err != nil {
				t.Fatalf("%s batch=%d: %v", sc.name, batch, err)
			}
			if !stream.Equivalent(sinkType, res.Sinks["sink"], oracle.Sinks["sink"]) {
				t.Fatalf("%s batch=%d: columnar rescaled trace differs from boxed fixed-par oracle (%d vs %d events)",
					sc.name, batch, len(res.Sinks["sink"]), len(oracle.Sinks["sink"]))
			}
		}
	}
}

// TestColumnarChaosWorkerKill SIGKILLs a worker of a networked Query
// IV cluster whose edges are columnar (the default) and checks that
// the recovered, replayed, spliced output equals an undisturbed BOXED
// in-process run — crossing both the process/recovery boundary and
// the transport-representation boundary at once. Batches cross worker
// links as typed WireCols frames, and recovery replays from committed
// marker cuts, which the columnar transport must leave exactly where
// the boxed one does.
func TestColumnarChaosWorkerKill(t *testing.T) {
	requireNet(t)
	cfg := netTestCfg()
	spec := Spec{Query: "IV", Variant: Generated, Par: 2, SourcePar: 2}
	// The DB delay stretches the run so the kill (after 3 of the 12
	// marker cuts commit) lands mid-flight rather than after the
	// stream has drained.
	const opDelay = 500 * time.Microsecond

	env, err := NewEnv(cfg, opDelay)
	if err != nil {
		t.Fatal(err)
	}
	oracleSpec := spec
	oracleSpec.NoColumnar = true
	oracle, err := Run(env, oracleSpec)
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunNetworked(NetSpec{Spec: spec, Workers: 3, Cfg: cfg, OpDelay: opDelay},
		func(o *storm.NetOptions) {
			o.Kill = &storm.KillPlan{Worker: 1, AfterCuts: 3}
			o.Logf = t.Logf
		})
	if err != nil {
		t.Fatalf("networked columnar run did not recover: %v", err)
	}
	if res.WorkerRestarts < 1 {
		t.Fatalf("kill plan fired but the cluster reports %d restarts", res.WorkerRestarts)
	}
	if res.ReplayedCuts < 3 {
		t.Fatalf("restart replayed only %d committed cuts, want ≥ 3", res.ReplayedCuts)
	}
	def, err := ByName("IV")
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Sinks["sink"], oracle.Sinks["sink"]
	if !stream.Equivalent(def.SinkType(env), got, want) {
		t.Fatalf("post-recovery columnar trace differs from boxed undisturbed run\n got %d events\n want %d events",
			len(got), len(want))
	}
	t.Logf("recovered: %d restarts, %d replayed cuts, wall %v", res.WorkerRestarts, res.ReplayedCuts, res.Wall)
}
