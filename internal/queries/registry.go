package queries

import (
	"fmt"

	"datatrace/internal/compile"
	"datatrace/internal/core"
	"datatrace/internal/metrics"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// Variant selects a query implementation.
type Variant string

const (
	// Generated is the transduction-DAG implementation compiled by
	// package compile (the paper's orange line).
	Generated Variant = "generated"
	// Handcrafted is the hand-written storm topology (the blue line).
	Handcrafted Variant = "handcrafted"
)

// Def describes one registered query.
type Def struct {
	// Name is the roman numeral, "I" through "VI".
	Name string
	// Stages is the number of processing stages (for reporting).
	Stages int
	// Description is the paper's one-line characterization.
	Description string
	// KeyedSource is true when the source stream is keyed by user
	// (Query II) instead of unit-keyed.
	KeyedSource bool
	// DAG builds the typed DAG at a given per-stage parallelism.
	DAG func(env *Env, par int) *core.DAG
	// Handcrafted builds the hand-written topology.
	Handcrafted func(env *Env, par int, sources []workload.Iterator) *storm.Topology
}

// All returns the registered queries in evaluation order.
func All() []Def {
	return []Def{
		{Name: "I", Stages: 1, Description: "stateless DB enrichment",
			DAG: QueryIDAG, Handcrafted: QueryIHandcrafted},
		{Name: "II", Stages: 1, Description: "per-key aggregation persisted to DB", KeyedSource: true,
			DAG: QueryIIDAG, Handcrafted: QueryIIHandcrafted},
		{Name: "III", Stages: 2, Description: "location enrichment + historical summarization",
			DAG: QueryIIIDAG, Handcrafted: QueryIIIHandcrafted},
		{Name: "IV", Stages: 3, Description: "Yahoo benchmark pipeline (10s sliding windows)",
			DAG: QueryIVDAG, Handcrafted: QueryIVHandcrafted},
		{Name: "V", Stages: 3, Description: "Yahoo pipeline with tumbling windows",
			DAG: QueryVDAG, Handcrafted: QueryVHandcrafted},
		{Name: "VI", Stages: 3, Description: "location enrichment + features + k-means",
			DAG: QueryVIDAG, Handcrafted: QueryVIHandcrafted},
	}
}

// ByName looks a query up by its roman numeral.
func ByName(name string) (Def, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("queries: unknown query %q (have I..VI)", name)
}

// KeyByUser rewrites a unit-keyed iterator into a user-keyed one
// (Query II's source type U(UID, YItem)).
func KeyByUser(it workload.Iterator) workload.Iterator {
	return func() (stream.Event, bool) {
		e, ok := it()
		if !ok || e.IsMarker {
			return e, ok
		}
		return stream.Item(e.Value.(workload.YahooEvent).UserID, e.Value), true
	}
}

// Sources builds the query's partitioned source iterators.
func (d Def) Sources(env *Env, n int) []workload.Iterator {
	parts := env.Gen.Partitions(n)
	if d.KeyedSource {
		for i, p := range parts {
			parts[i] = KeyByUser(p)
		}
	}
	return parts
}

// ColSources builds the query's partitioned sources in columnar form:
// the same event/marker sequence as Sources, usable as storm.ColSpout
// so the compiled topology's source edges can move typed batches.
func (d Def) ColSources(env *Env, n int) []*workload.YahooColSource {
	return env.Gen.ColPartitions(n, d.KeyedSource)
}

// ReferenceInput materializes the full (merged) source stream, for
// reference evaluations.
func (d Def) ReferenceInput(env *Env) []stream.Event {
	it := env.Gen.Iter()
	if d.KeyedSource {
		it = KeyByUser(it)
	}
	return workload.Collect(it)
}

// Reference computes the query's denotation: the generated DAG
// evaluated sequentially on the merged input.
func (d Def) Reference(env *Env) (map[string][]stream.Event, error) {
	return d.DAG(env, 1).Eval(map[string][]stream.Event{"yahoo": d.ReferenceInput(env)})
}

// Spec selects one benchmark run.
type Spec struct {
	// Query is the roman numeral.
	Query string
	// Variant picks generated or handcrafted.
	Variant Variant
	// Par is the per-stage parallelism.
	Par int
	// SourcePar is the number of source partitions (≥1).
	SourcePar int
	// Recovery enables marker-cut checkpointing in the compiled
	// topology (Generated variant only; handcrafted topologies use raw
	// edges and have no marker cuts to recover to).
	Recovery bool
	// Obs enables the runtime observability subsystem (latency
	// histograms, queue gauges, marker-lag tracking) with default
	// sampling for the run.
	Obs bool
	// Transport, when set, overrides the batched edge transport
	// configuration of the topology (both variants); nil keeps the
	// runtime defaults.
	Transport *storm.TransportOptions
	// NoFuseChains disables the compiler's stateless chain-fusion pass
	// (Generated variant only; the pass is on by default).
	NoFuseChains bool
	// NoCombiners disables the compiler's shuffle-side combiner pass
	// (Generated variant only; the pass is on by default).
	NoCombiners bool
	// NoColumnar disables the columnar (struct-of-arrays) transport:
	// boxed source spouts and boxed edge selection (Generated variant
	// only; columnar selection is on by default). The differential
	// tests use it to run the boxed oracle.
	NoColumnar bool
	// Rescale, when set, schedules live rescaling steps at marker cuts
	// (requires Recovery; in-process runs only — networked runs rescale
	// through storm.NetOptions.Rescale). Excluded from the networked
	// payload: plans are coordinator-side state, not worker config.
	Rescale *storm.RescalePlan `json:"-"`
	// Autoscale, when set, attaches the feedback controller that issues
	// rescales from queue-depth and latency telemetry (requires
	// Recovery and Obs; in-process runs only).
	Autoscale *storm.AutoscalePolicy `json:"-"`
}

// Run executes the selected query variant to completion on the
// environment's workload and returns the runtime result.
func Run(env *Env, spec Spec) (*storm.Result, error) {
	def, err := ByName(spec.Query)
	if err != nil {
		return nil, err
	}
	if spec.SourcePar < 1 {
		spec.SourcePar = 1
	}
	return runWith(env, spec, def, def.Sources(env, spec.SourcePar), def.ColSources(env, spec.SourcePar))
}

// RunOn executes the selected query variant on explicit per-partition
// event slices instead of the environment's generated workload. The
// conformance tests use it to feed permuted inputs; spec.SourcePar is
// taken from len(parts).
func RunOn(env *Env, spec Spec, parts [][]stream.Event) (*storm.Result, error) {
	def, err := ByName(spec.Query)
	if err != nil {
		return nil, err
	}
	spec.SourcePar = len(parts)
	sources := make([]workload.Iterator, len(parts))
	for i, p := range parts {
		sources[i] = workload.Iterator(storm.SliceSpout(p))
	}
	// Explicit event slices have no columnar source form; edges between
	// compiled bolts may still go columnar.
	return runWith(env, spec, def, sources, nil)
}

func runWith(env *Env, spec Spec, def Def, sources []workload.Iterator, cols []*workload.YahooColSource) (*storm.Result, error) {
	top, err := buildWith(env, spec, def, sources, cols, 0)
	if err != nil {
		return nil, err
	}
	return top.Run()
}

// buildWith constructs the selected variant's topology without
// running it. workers > 0 places the executors (the networked runtime
// builds with its worker count and serves its share; see netrun.go).
// cols, when non-nil, provides the generator-backed columnar source
// spouts the Generated variant prefers unless spec.NoColumnar is set;
// explicit-input runs (RunOn) pass nil and keep boxed sources.
func buildWith(env *Env, spec Spec, def Def, sources []workload.Iterator, cols []*workload.YahooColSource, workers int) (*storm.Topology, error) {
	if spec.Par < 1 {
		spec.Par = 1
	}
	switch spec.Variant {
	case Generated:
		dag := def.DAG(env, spec.Par)
		opts := &compile.Options{
			FuseSort:   true,
			FuseChains: !spec.NoFuseChains,
			Combiners:  !spec.NoCombiners,
			NoColumnar: spec.NoColumnar,
			Workers:    workers,
		}
		if spec.Recovery {
			opts.Recovery = &storm.RecoveryPolicy{Enabled: true}
		}
		if spec.Obs {
			cfg := metrics.DefaultObsConfig()
			opts.Observability = &cfg
		}
		opts.Transport = spec.Transport
		opts.Rescale = spec.Rescale
		opts.Autoscale = spec.Autoscale
		srcSpec := compile.SourceSpec{Parallelism: spec.SourcePar, Factory: func(i int) storm.Spout {
			return storm.SpoutFunc(sources[i])
		}}
		if len(cols) > 0 && !spec.NoColumnar {
			srcSpec.Cols = cols[0].ColKind()
			srcSpec.Factory = func(i int) storm.Spout { return cols[i] }
		}
		return compile.Compile(dag, map[string]compile.SourceSpec{"yahoo": srcSpec}, opts)
	case Handcrafted:
		top := def.Handcrafted(env, spec.Par, sources)
		if spec.Obs {
			top.SetObservability(metrics.DefaultObsConfig())
		}
		if spec.Transport != nil {
			top.SetTransport(*spec.Transport)
		}
		// Handcrafted topologies use raw edges without marker-cut
		// recovery, so an attached plan fails the run's upfront
		// validation with the reason — set it anyway and let the runtime
		// report it rather than silently dropping the request.
		if spec.Rescale != nil {
			top.SetRescalePlan(spec.Rescale)
		}
		if spec.Autoscale != nil {
			top.SetAutoscale(spec.Autoscale)
		}
		if workers > 0 {
			top.SetWorkers(workers)
		}
		return top, nil
	default:
		return nil, fmt.Errorf("queries: unknown variant %q", spec.Variant)
	}
}

// SinkType returns the data-trace type of the query's sink channel,
// used to compare outputs as traces.
func (d Def) SinkType(env *Env) stream.Type {
	dag := d.DAG(env, 1)
	return dag.Sinks()[0].Type
}
