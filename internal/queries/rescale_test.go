package queries

import (
	"testing"

	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// rescaleProbe builds (without running) the generated topology of a
// spec and returns the name of its first bolt component — the rescale
// target — plus every component name, for counter comparison.
func rescaleProbe(t *testing.T, def Def, spec Spec) (target string, components []string) {
	t.Helper()
	env := testEnv(t)
	top, err := buildWith(env, spec, def, def.Sources(env, spec.SourcePar), def.ColSources(env, spec.SourcePar), 0)
	if err != nil {
		t.Fatalf("probe build: %v", err)
	}
	for _, ci := range top.Components() {
		components = append(components, ci.Name)
		if ci.Kind == "bolt" && target == "" {
			target = ci.Name
		}
	}
	if target == "" {
		t.Fatal("no bolt component to rescale")
	}
	return target, components
}

// TestRescaleEquivalenceDifferential is the query-level differential
// proof of live rescaling: every generated query I–VI runs with
// mid-stream parallelism changes at scripted marker cuts — scale-out,
// scale-in, and out-then-in — at transport batch sizes 1 and 64, and
// each run must match a fixed-parallelism oracle both in its sink
// trace and in every component's executed item count (Executed −
// Cuts, which is parallelism-invariant), proving no event was lost,
// duplicated, or misrouted across the reconfiguration barriers. Both
// sides run with recovery on (the oracle must count cuts the same
// way) and combiners off (idle-interval combiner flushes make
// combined delivery counts timing-dependent, which would break the
// exact count comparison; combiner composition is covered by the
// storm-level rescale tests). A plan step whose cut never completes
// fails the run, so a passing run certifies every rescale fired.
// scripts/check.sh runs this under -race.
func TestRescaleEquivalenceDifferential(t *testing.T) {
	type scenario struct {
		name string
		par  int
		plan func(target string) *storm.RescalePlan
	}
	scenarios := []scenario{
		{"up", 2, func(c string) *storm.RescalePlan {
			return storm.NewRescalePlan().RescaleAt(c, 4, 3)
		}},
		{"down", 4, func(c string) *storm.RescalePlan {
			return storm.NewRescalePlan().RescaleAt(c, 1, 3)
		}},
		{"upThenDown", 2, func(c string) *storm.RescalePlan {
			return storm.NewRescalePlan().RescaleAt(c, 5, 2).RescaleAt(c, 1, 7)
		}},
	}
	for _, def := range All() {
		def := def
		t.Run("Query"+def.Name, func(t *testing.T) {
			env := testEnv(t)
			sinkType := def.SinkType(env)
			base := Spec{Query: def.Name, Variant: Generated, SourcePar: 2,
				Recovery: true, NoCombiners: true}

			probeSpec := base
			probeSpec.Par = 2
			target, components := rescaleProbe(t, def, probeSpec)

			oracleSpec := base
			oracleSpec.Par = 2
			// Fresh env per run: Query II mutates the DB.
			oracleEnv := testEnv(t)
			oracle, err := Run(oracleEnv, oracleSpec)
			if err != nil {
				t.Fatalf("fixed-par oracle: %v", err)
			}

			for _, sc := range scenarios {
				for _, batch := range []int{1, 64} {
					spec := base
					spec.Par = sc.par
					spec.Transport = &storm.TransportOptions{BatchSize: batch}
					spec.Rescale = sc.plan(target)
					runEnv := testEnv(t)
					res, err := Run(runEnv, spec)
					if err != nil {
						t.Fatalf("%s batch=%d: %v", sc.name, batch, err)
					}
					if !stream.Equivalent(sinkType, res.Sinks["sink"], oracle.Sinks["sink"]) {
						t.Fatalf("%s batch=%d: rescaled trace differs from fixed-par oracle (%d vs %d events)",
							sc.name, batch, len(res.Sinks["sink"]), len(oracle.Sinks["sink"]))
					}
					for _, name := range components {
						got, want := res.Stats.ComponentItems(name), oracle.Stats.ComponentItems(name)
						if got != want {
							t.Fatalf("%s batch=%d: component %s executed %d items, oracle %d",
								sc.name, batch, name, got, want)
						}
					}
				}
			}
		})
	}
}
