// Package queries implements the six Yahoo-Streaming-Benchmark-style
// queries of the paper's evaluation (section 6, Figure 4), each in
// two variants:
//
//   - Generated: a typed transduction DAG built from the operator
//     templates of package core and compiled onto the storm runtime
//     by package compile (the paper's orange line);
//   - Handcrafted: a hand-written storm topology using raw
//     connections, in which every bolt does its own marker
//     synchronization and block buffering, the way careful
//     hand-tuned Storm code does (the paper's blue line).
//
// The two variants of each query are semantically equivalent — the
// package tests verify trace equivalence on random workloads — and
// their throughput is compared by the Figure 4 benchmarks.
package queries

import (
	"fmt"
	"time"

	"datatrace/internal/db"
	"datatrace/internal/workload"
)

// Env bundles the shared substrate of all queries: the generated
// workload and the reference database (the paper's Apache Derby).
type Env struct {
	// Cfg is the workload configuration.
	Cfg workload.YahooConfig
	// Gen is the event generator.
	Gen *workload.Yahoo
	// DB holds the ads and users lookup tables, plus tables queries
	// persist into.
	DB *db.DB
	// Ads and Users are the preloaded lookup tables.
	Ads, Users *db.Table
}

// NewEnv generates the reference tables and applies the given
// per-operation database delay (0 keeps lookups at in-memory speed;
// the Figure 4 benchmarks use a small delay to model the paper's
// out-of-process Derby).
func NewEnv(cfg workload.YahooConfig, opDelay time.Duration) (*Env, error) {
	gen, err := workload.NewYahoo(cfg)
	if err != nil {
		return nil, err
	}
	d := db.New()
	if err := gen.SetupDB(d); err != nil {
		return nil, err
	}
	// Query II persists per-user counts; Query III could persist
	// per-location summaries. Created up front so variants share the
	// schema.
	if _, err := d.CreateTable("user_counts", []db.Column{
		{Name: "user_id", Type: db.Int},
		{Name: "count", Type: db.Int},
	}, "user_id"); err != nil {
		return nil, err
	}
	d.SetOpDelay(opDelay)
	return &Env{
		Cfg:   cfg,
		Gen:   gen,
		DB:    d,
		Ads:   d.MustTable("ads"),
		Users: d.MustTable("users"),
	}, nil
}

// CampaignOf performs the enrichment lookup all campaign-keyed
// queries share: ad id → campaign id via the ads table.
func (e *Env) CampaignOf(adID int64) int64 {
	v, ok := e.Ads.GetIntVal(adID, 1)
	if !ok {
		panic(fmt.Sprintf("queries: ad %d missing from ads table", adID))
	}
	return v.(int64)
}

// LocationOf performs the user → location lookup of Queries III/VI.
func (e *Env) LocationOf(userID int64) int64 {
	v, ok := e.Users.GetIntVal(userID, 1)
	if !ok {
		panic(fmt.Sprintf("queries: user %d missing from users table", userID))
	}
	return v.(int64)
}

// Enriched is a Yahoo event joined with its campaign (Query I).
type Enriched struct {
	Ev       workload.YahooEvent
	Campaign int64
}

// Located is a Yahoo event joined with its user's location (Queries
// III and VI).
type Located struct {
	Ev       workload.YahooEvent
	Location int64
}

// Features is the per-user feature aggregate of Query VI: interaction
// counts by type plus the user's (static) location, carried through
// the aggregation monoid.
type Features struct {
	Views, Clicks, Purchases float64
	// Location is the user's location; -1 in the monoid identity.
	Location int64
}

// CombineFeatures is the commutative monoid operation on Features.
func CombineFeatures(x, y Features) Features {
	loc := x.Location
	if loc < 0 {
		loc = y.Location
	}
	return Features{
		Views:     x.Views + y.Views,
		Clicks:    x.Clicks + y.Clicks,
		Purchases: x.Purchases + y.Purchases,
		Location:  loc,
	}
}

// FeaturesID is the monoid identity.
func FeaturesID() Features { return Features{Location: -1} }

// UserFeatures is one user's cumulative feature vector, the points
// Query VI clusters per location.
type UserFeatures struct {
	User int64
	F    Features
}

// ClusterSummary is Query VI's periodic per-location output: a
// k-means run over the location's user vectors.
type ClusterSummary struct {
	K       int
	Size    int
	Inertia float64
}

// SlidingState is the window state of Query IV: per-campaign counts
// of the last windowBlocks blocks.
type SlidingState struct {
	Blocks []int64
}

// TumblingState is the window state of Query V.
type TumblingState struct {
	Acc        int64
	BlockCount int
	LastWindow int64
	Ready      bool
}
