package queries

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"datatrace/internal/codec"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// This file bridges the query registry to the networked multi-process
// runtime. A networked run is described by a NetSpec, which is
// JSON-marshalled into the DTT_NET_SPEC environment variable of every
// worker process; each worker rebuilds the identical environment and
// topology from it (the workload generator and reference database are
// deterministic functions of the config), then serves its placement
// share. RunWorkerIfSpawned is the process entry point workers share:
// cmd/dttworker, cmd/dttbench and the test binaries all call it
// first, becoming a worker when the spawn contract is present.

// NetSpec selects one networked run: a query Spec plus the worker
// count and the workload configuration every worker process must
// reproduce.
type NetSpec struct {
	Spec
	// Workers is the number of worker processes.
	Workers int
	// Cfg is the workload configuration (workers regenerate the exact
	// workload and reference tables from it).
	Cfg workload.YahooConfig
	// OpDelay is the per-database-operation delay (see NewEnv).
	OpDelay time.Duration
}

// RegisterWireTypes registers every key and value type the six
// queries put on the wire with the gob-based codec. Worker and
// coordinator processes must call it before exchanging frames.
func RegisterWireTypes() {
	codec.Register(stream.Unit{})
	codec.Register(int(0))
	codec.Register(int64(0))
	codec.Register(float64(0))
	codec.Register("")
	codec.Register(workload.YahooEvent{})
	codec.Register(Enriched{})
	codec.Register(Located{})
	codec.Register(Features{})
	codec.Register(UserFeatures{})
	codec.Register(ClusterSummary{})
	codec.Register(map[int64]Features{}) // Cluster partial aggregates
}

// normalize applies the same defaulting in the coordinator (before
// marshalling) and in workers, so every process builds the identical
// topology.
func (ns NetSpec) normalize() NetSpec {
	if ns.Par < 1 {
		ns.Par = 1
	}
	if ns.SourcePar < 1 {
		ns.SourcePar = 1
	}
	if ns.Workers < 1 {
		ns.Workers = 1
	}
	return ns
}

// Payload marshals the normalized spec into the opaque DTT_NET_SPEC
// worker payload. Callers building a storm.NetRescalePlan use it to
// describe the revised topology (typically the same spec at a new
// Par) the cluster reconfigures to at the committed cut.
func (ns NetSpec) Payload() (string, error) {
	ns = ns.normalize()
	b, err := json.Marshal(ns)
	if err != nil {
		return "", fmt.Errorf("queries: marshalling net spec: %w", err)
	}
	return string(b), nil
}

// build reconstructs the run's topology with executor placement over
// the cluster's workers.
func (ns NetSpec) build() (*storm.Topology, error) {
	ns = ns.normalize()
	def, err := ByName(ns.Query)
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(ns.Cfg, ns.OpDelay)
	if err != nil {
		return nil, err
	}
	return buildWith(env, ns.Spec, def, def.Sources(env, ns.SourcePar), def.ColSources(env, ns.SourcePar), ns.Workers)
}

// RunWorkerIfSpawned turns this process into a networked worker when
// the spawn contract (DTT_NET_* environment) is present, and returns
// without effect otherwise. When it serves, it never returns: the
// process exits 0 after a clean run, 1 on failure.
func RunWorkerIfSpawned() {
	cfg, payload, ok := storm.WorkerEnvConfig()
	if !ok {
		return
	}
	RegisterWireTypes()
	var ns NetSpec
	if err := json.Unmarshal([]byte(payload), &ns); err != nil {
		fmt.Fprintf(os.Stderr, "dttworker %d: bad %s payload: %v\n", cfg.Worker, storm.EnvSpec, err)
		os.Exit(1)
	}
	top, err := ns.build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dttworker %d: building topology: %v\n", cfg.Worker, err)
		os.Exit(1)
	}
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if err := top.ServeWorker(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dttworker %d: %v\n", cfg.Worker, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunNetworked executes the selected query on a localhost TCP cluster
// of ns.Workers processes and returns the coordinator's result. tune,
// when non-nil, adjusts the launch options (worker command, fault
// injection, timeouts) before the cluster starts.
func RunNetworked(ns NetSpec, tune func(*storm.NetOptions)) (*storm.NetResult, error) {
	ns = ns.normalize()
	if _, err := ByName(ns.Query); err != nil {
		return nil, err
	}
	RegisterWireTypes()
	payload, err := ns.Payload()
	if err != nil {
		return nil, err
	}
	opts := storm.NetOptions{
		Workers: ns.Workers,
		Spec:    payload,
	}
	if tune != nil {
		tune(&opts)
	}
	return storm.RunNetworked(opts)
}
