package core

import (
	"fmt"
	"reflect"

	"datatrace/internal/stream"
)

// TypedOperator is the optional Operator extension that exposes the
// operator's actual Go key/value types (derived from its generic
// instantiation). The DAG checker uses it to verify that adjacent
// operators agree on the runtime representation, not merely on the
// human-readable type names of their stream.Types — catching at
// Check() time the mismatches that would otherwise surface as cast
// panics inside a running executor.
type TypedOperator interface {
	// InKV returns the Go types of the operator's input keys and
	// values.
	InKV() (key, value reflect.Type)
	// OutKV returns the Go types of the operator's output keys and
	// values.
	OutKV() (key, value reflect.Type)
}

// InKV implements TypedOperator.
func (s *Stateless[K, V, L, W]) InKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[K](), reflect.TypeFor[V]()
}

// OutKV implements TypedOperator.
func (s *Stateless[K, V, L, W]) OutKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[L](), reflect.TypeFor[W]()
}

// InKV implements TypedOperator.
func (o *KeyedOrdered[K, V, W, S]) InKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[K](), reflect.TypeFor[V]()
}

// OutKV implements TypedOperator.
func (o *KeyedOrdered[K, V, W, S]) OutKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[K](), reflect.TypeFor[W]()
}

// InKV implements TypedOperator.
func (o *KeyedUnordered[K, V, L, W, S, A]) InKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[K](), reflect.TypeFor[V]()
}

// OutKV implements TypedOperator.
func (o *KeyedUnordered[K, V, L, W, S, A]) OutKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[L](), reflect.TypeFor[W]()
}

// InKV implements TypedOperator.
func (s *Sort[K, V]) InKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[K](), reflect.TypeFor[V]()
}

// OutKV implements TypedOperator.
func (s *Sort[K, V]) OutKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[K](), reflect.TypeFor[V]()
}

// InKV implements TypedOperator.
func (o *SlidingAggregate[K, V, A]) InKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[K](), reflect.TypeFor[V]()
}

// OutKV implements TypedOperator.
func (o *SlidingAggregate[K, V, A]) OutKV() (reflect.Type, reflect.Type) {
	return reflect.TypeFor[K](), reflect.TypeFor[A]()
}

// kvAssignable reports whether a produced Go type can flow into a
// consumed one: identical types, or a consumer that accepts any
// (interface with no methods), or a consumer interface the producer
// implements.
func kvAssignable(produced, consumed reflect.Type) bool {
	if produced == consumed {
		return true
	}
	if consumed.Kind() == reflect.Interface {
		return produced.Implements(consumed)
	}
	return false
}

// checkGoTypes verifies runtime-representation compatibility along
// every edge whose endpoints both expose TypedOperator.
func (d *DAG) checkGoTypes(fail func(format string, args ...any)) {
	for _, n := range d.nodes {
		if n.Kind != OpNode {
			continue
		}
		consumer, ok := n.Op.(TypedOperator)
		if !ok {
			continue
		}
		inK, inV := consumer.InKV()
		for _, in := range n.Inputs {
			if in.Kind != OpNode {
				continue // sources carry no Go types
			}
			producer, ok := in.Op.(TypedOperator)
			if !ok {
				continue
			}
			outK, outV := producer.OutKV()
			if !kvAssignable(outK, inK) {
				fail("operator %s emits keys of Go type %v but %s consumes %v (the stream.Type names %s/%s hide a representation mismatch)",
					in.Name, outK, n.Name, inK, in.Type, n.Op.InType())
			}
			if !kvAssignable(outV, inV) {
				fail("operator %s emits values of Go type %v but %s consumes %v (the stream.Type names %s/%s hide a representation mismatch)",
					in.Name, outV, n.Name, inV, in.Type, n.Op.InType())
			}
		}
	}
}

// DescribeGoTypes renders the Go-level typing of the DAG's operators,
// for dttcheck-style diagnostics.
func (d *DAG) DescribeGoTypes() string {
	out := ""
	for _, n := range d.nodes {
		if n.Kind != OpNode {
			continue
		}
		to, ok := n.Op.(TypedOperator)
		if !ok {
			continue
		}
		ik, iv := to.InKV()
		ok2, ov := to.OutKV()
		out += fmt.Sprintf("%s : (%v,%v) → (%v,%v) as %s → %s\n",
			n.Name, ik, iv, ok2, ov, n.Op.InType(), n.Op.OutType())
	}
	return out
}

// streamTypeOfSource is a documentation hook: sources only declare a
// stream.Type; their Go types are fixed by the first consumer.
var _ = stream.Type{}
