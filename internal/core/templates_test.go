package core

import (
	"strings"
	"testing"

	"datatrace/internal/stream"
	"datatrace/internal/trace"
)

// --- shared fixtures -------------------------------------------------------

// evenFilter is a stateless U(int,int) → U(int,int) operator keeping
// even keys, as in the paper's Figure 2 example.
func evenFilter() Operator {
	return &Stateless[int, int, int, int]{
		OpName: "filterEven",
		In:     stream.U("Int", "Int"),
		Out:    stream.U("Int", "Int"),
		OnItem: func(emit Emit[int, int], key, value int) {
			if key%2 == 0 {
				emit(key, value)
			}
		},
	}
}

// sumPerKey is the paper's Figure 2 second stage: per-key sum of the
// values between markers, emitted at each marker.
func sumPerKey() Operator {
	return &KeyedUnordered[int, int, int, int, int, int]{
		OpName:       "sumPerKey",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(key, value int) int { return value },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() int { return 0 },
		UpdateState:  func(old, agg int) int { return agg },
		OnMarker: func(emit Emit[int, int], newState int, key int, m stream.Marker) {
			emit(key, newState)
		},
	}
}

// runningSum is a keyed-ordered operator: cumulative per-key sum
// emitted on every item (order-dependent output values would differ
// under reordering of the same key's items, which O(K,V) forbids).
func runningSum() Operator {
	return &KeyedOrdered[int, int, int, int]{
		OpName:       "runningSum",
		In:           stream.O("Int", "Int"),
		Out:          stream.O("Int", "Int"),
		InitialState: func() int { return 0 },
		OnItem: func(emit func(int), state, key, value int) int {
			state += value
			emit(state)
			return state
		},
	}
}

func mk(seq, ts int64) stream.Event { return stream.Mark(stream.Marker{Seq: seq, Timestamp: ts}) }

// checkConsistent enumerates up to limit representatives of the input
// trace (BFS over adjacent swaps the input type permits) and verifies
// the operator produces equivalent output traces for all of them —
// the executable form of Definition 3.5 / Theorem 4.2.
func checkConsistent(t *testing.T, op Operator, input []stream.Event, limit int) {
	t.Helper()
	inDep := op.InType().Dep()
	outDep := op.OutType().Dep()
	tag := func(e stream.Event) trace.Tag {
		if e.IsMarker {
			return stream.MarkerTag
		}
		return stream.ItemTag(e.Key)
	}
	seen := map[string]bool{stream.Render(input): true}
	queue := [][]stream.Event{input}
	ref := stream.ToItems(RunInstance(op, input))
	checked := 1
	for len(queue) > 0 && checked < limit {
		cur := queue[0]
		queue = queue[1:]
		for i := 0; i+1 < len(cur); i++ {
			if inDep.Dependent(tag(cur[i]), tag(cur[i+1])) {
				continue
			}
			next := make([]stream.Event, len(cur))
			copy(next, cur)
			next[i], next[i+1] = next[i+1], next[i]
			k := stream.Render(next)
			if seen[k] {
				continue
			}
			seen[k] = true
			queue = append(queue, next)
			got := stream.ToItems(RunInstance(op, next))
			if !trace.Equivalent(outDep, ref, got) {
				t.Fatalf("operator %s inconsistent (Thm 4.2 violated):\n  input  %s\n  output %s\n  vs reference output %s",
					op.Name(), k, trace.Render(got), trace.Render(ref))
			}
			checked++
			if checked >= limit {
				return
			}
		}
	}
}

// --- OpStateless -----------------------------------------------------------

func TestStatelessFiltersAndForwardsMarkers(t *testing.T) {
	in := []stream.Event{
		stream.Item(1, 10), stream.Item(2, 20), mk(0, 1),
		stream.Item(4, 40), mk(1, 2),
	}
	out := RunInstance(evenFilter(), in)
	want := []stream.Event{stream.Item(2, 20), mk(0, 1), stream.Item(4, 40), mk(1, 2)}
	if !stream.Equivalent(stream.U("Int", "Int"), out, want) {
		t.Fatalf("got %s want %s", stream.Render(out), stream.Render(want))
	}
}

func TestStatelessOnMarkerHook(t *testing.T) {
	op := &Stateless[int, int, int, int]{
		OpName: "markerTap",
		In:     stream.U("Int", "Int"),
		Out:    stream.U("Int", "Int"),
		OnItem: func(emit Emit[int, int], key, value int) {},
		OnMarker: func(emit Emit[int, int], m stream.Marker) {
			emit(int(m.Seq), int(m.Timestamp))
		},
	}
	out := RunInstance(op, []stream.Event{mk(0, 7)})
	if len(out) != 2 || out[0].Key != 0 || out[0].Value != 7 || !out[1].IsMarker {
		t.Fatalf("got %s", stream.Render(out))
	}
}

func TestTheorem4_2_Stateless(t *testing.T) {
	in := []stream.Event{
		stream.Item(1, 1), stream.Item(2, 2), stream.Item(3, 3), mk(0, 1),
		stream.Item(4, 4), stream.Item(6, 6), mk(1, 2),
	}
	checkConsistent(t, evenFilter(), in, 500)
}

// --- OpKeyedOrdered --------------------------------------------------------

func TestKeyedOrderedPerKeyState(t *testing.T) {
	in := []stream.Event{
		stream.Item(1, 10), stream.Item(2, 100), stream.Item(1, 5), mk(0, 1),
		stream.Item(2, 1), mk(1, 2),
	}
	out := RunInstance(runningSum(), in)
	want := []stream.Event{
		stream.Item(1, 10), stream.Item(2, 100), stream.Item(1, 15), mk(0, 1),
		stream.Item(2, 101), mk(1, 2),
	}
	if !stream.Equivalent(stream.O("Int", "Int"), out, want) {
		t.Fatalf("got %s want %s", stream.Render(out), stream.Render(want))
	}
}

func TestKeyedOrderedEmitPreservesKey(t *testing.T) {
	// The API makes key changes impossible; verify the key on outputs.
	out := RunInstance(runningSum(), []stream.Event{stream.Item(7, 1), stream.Item(9, 2)})
	for _, e := range out {
		if e.Key != 7 && e.Key != 9 {
			t.Fatalf("emitted key %v not an input key", e.Key)
		}
	}
}

func TestKeyedOrderedOnMarker(t *testing.T) {
	op := &KeyedOrdered[int, int, int, int]{
		OpName:       "countToMarker",
		In:           stream.O("Int", "Int"),
		Out:          stream.O("Int", "Int"),
		InitialState: func() int { return 0 },
		OnItem: func(emit func(int), state, key, value int) int {
			return state + 1
		},
		OnMarker: func(emit func(int), state, key int, m stream.Marker) int {
			emit(state)
			return 0
		},
	}
	in := []stream.Event{
		stream.Item(1, 0), stream.Item(1, 0), stream.Item(2, 0), mk(0, 1),
		stream.Item(1, 0), mk(1, 2),
	}
	out := RunInstance(op, in)
	// Block 0: key1→2, key2→1. Block 1: key1→1, key2→0.
	want := []stream.Event{
		stream.Item(1, 2), stream.Item(2, 1), mk(0, 1),
		stream.Item(1, 1), stream.Item(2, 0), mk(1, 2),
	}
	if !stream.Equivalent(stream.O("Int", "Int"), out, want) {
		t.Fatalf("got %s want %s", stream.Render(out), stream.Render(want))
	}
}

func TestTheorem4_2_KeyedOrdered(t *testing.T) {
	// Inputs with interleaved keys: cross-key swaps are allowed by
	// O(K,V) and must not change the output trace.
	in := []stream.Event{
		stream.Item(1, 10), stream.Item(2, 100), stream.Item(1, 5),
		stream.Item(2, 2), mk(0, 1), stream.Item(1, 3),
	}
	checkConsistent(t, runningSum(), in, 500)
}

// --- OpKeyedUnordered ------------------------------------------------------

func TestKeyedUnorderedTable3Semantics(t *testing.T) {
	in := []stream.Event{
		stream.Item(1, 10), stream.Item(2, 100), stream.Item(1, 5), mk(0, 1),
		stream.Item(1, 7), mk(1, 2),
		mk(2, 3),
	}
	out := RunInstance(sumPerKey(), in)
	// Marker 0: key1 sum 15, key2 sum 100. Marker 1: key1 7, key2 0.
	// Marker 2: both 0 (UpdateState replaces state with the block agg).
	want := []stream.Event{
		stream.Item(1, 15), stream.Item(2, 100), mk(0, 1),
		stream.Item(1, 7), stream.Item(2, 0), mk(1, 2),
		stream.Item(1, 0), stream.Item(2, 0), mk(2, 3),
	}
	if !stream.Equivalent(stream.U("Int", "Int"), out, want) {
		t.Fatalf("got %s want %s", stream.Render(out), stream.Render(want))
	}
}

func TestKeyedUnorderedStartStateTracksMarkers(t *testing.T) {
	// A key first seen in block 2 must start from a state that has
	// absorbed two empty blocks (Table 3's startS bookkeeping). With a
	// counting UpdateState the effect is observable.
	op := &KeyedUnordered[int, int, int, int, int, int]{
		OpName:       "blockCount",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(key, value int) int { return 0 },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() int { return 0 },
		UpdateState:  func(old, agg int) int { return old + 1 },
		OnMarker: func(emit Emit[int, int], newState, key int, m stream.Marker) {
			emit(key, newState)
		},
	}
	in := []stream.Event{
		mk(0, 1), mk(1, 2), stream.Item(5, 0), mk(2, 3),
	}
	out := RunInstance(op, in)
	// Key 5 appears in block 2; at marker 2 its state must be 3
	// (three UpdateState applications: blocks 0, 1 via startS, 2).
	var got int
	for _, e := range out {
		if !e.IsMarker && e.Key == 5 {
			got = e.Value.(int)
		}
	}
	if got != 3 {
		t.Fatalf("late key state = %d, want 3 (startS must advance at every marker)", got)
	}
}

func TestKeyedUnorderedOnItemSeesLastSnapshot(t *testing.T) {
	op := &KeyedUnordered[int, int, int, int, int, int]{
		OpName:       "snapshot",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(key, value int) int { return value },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() int { return -1 },
		UpdateState:  func(old, agg int) int { return agg },
		OnItem: func(emit Emit[int, int], lastState, key, value int) {
			emit(key, lastState)
		},
	}
	in := []stream.Event{
		stream.Item(1, 10), mk(0, 1), stream.Item(1, 20), stream.Item(1, 30), mk(1, 2),
	}
	out := RunInstance(op, in)
	// Items in block 0 see -1; items in block 1 see 10 (block 0's agg),
	// regardless of how many items arrived earlier in the same block.
	var vals []int
	for _, e := range out {
		if !e.IsMarker {
			vals = append(vals, e.Value.(int))
		}
	}
	want := []int{-1, 10, 10}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("OnItem snapshots = %v, want %v", vals, want)
		}
	}
}

func TestTheorem4_2_KeyedUnordered(t *testing.T) {
	in := []stream.Event{
		stream.Item(1, 1), stream.Item(2, 2), stream.Item(1, 3), mk(0, 1),
		stream.Item(2, 4), stream.Item(1, 5), mk(1, 2),
	}
	checkConsistent(t, sumPerKey(), in, 800)
}

func TestTheorem4_2_DetectsNonCommutativeCombine(t *testing.T) {
	// 2x+y is neither associative nor commutative; folding it over two
	// arrival orders gives different aggregates. This guards the
	// checker itself: order dependence must be observable.
	bad := &KeyedUnordered[int, int, int, int, int, int]{
		OpName:       "badCombine",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(key, value int) int { return value },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return 2*x + y },
		InitialState: func() int { return 0 },
		UpdateState:  func(old, agg int) int { return agg },
		OnMarker: func(emit Emit[int, int], newState, key int, m stream.Marker) {
			emit(key, newState)
		},
	}
	in := []stream.Event{stream.Item(1, 3), stream.Item(1, 5), mk(0, 1)}
	// Run the two orders directly.
	a := RunInstance(bad, in)
	b := RunInstance(bad, []stream.Event{in[1], in[0], in[2]})
	if stream.Equivalent(stream.U("Int", "Int"), a, b) {
		t.Fatal("non-commutative combine should produce order-dependent output")
	}
}

// --- Validate --------------------------------------------------------------

func TestValidateRejectsBadTypings(t *testing.T) {
	cases := []struct {
		name string
		op   Operator
		want string
	}{
		{"stateless missing OnItem", &Stateless[int, int, int, int]{
			OpName: "x", In: stream.U("K", "V"), Out: stream.U("L", "W"),
		}, "OnItem is required"},
		{"stateless ordered input", &Stateless[int, int, int, int]{
			OpName: "x", In: stream.O("K", "V"), Out: stream.U("L", "W"),
			OnItem: func(Emit[int, int], int, int) {},
		}, "typed U(K,V)"},
		{"keyed ordered key change", &KeyedOrdered[int, int, int, int]{
			OpName: "x", In: stream.O("K", "V"), Out: stream.O("J", "W"),
			InitialState: func() int { return 0 },
			OnItem:       func(func(int), int, int, int) int { return 0 },
		}, "preserve the key type"},
		{"keyed unordered missing monoid", &KeyedUnordered[int, int, int, int, int, int]{
			OpName: "x", InT: stream.U("K", "V"), OutT: stream.U("L", "W"),
		}, "required"},
		{"sort missing less", &Sort[int, int]{
			OpName: "x", In: stream.U("K", "V"), Out: stream.O("K", "V"),
		}, "Less is required"},
		{"sort type change", &Sort[int, int]{
			OpName: "x", In: stream.U("K", "V"), Out: stream.O("K", "W"),
			Less: func(a, b int) bool { return a < b },
		}, "preserve key and value"},
		{"unnamed", &Stateless[int, int, int, int]{
			In: stream.U("K", "V"), Out: stream.U("L", "W"),
			OnItem: func(Emit[int, int], int, int) {},
		}, "needs a name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.op.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCastErrorsAreDescriptive(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "filterEven") {
			t.Fatalf("expected a panic naming the operator, got %v", r)
		}
	}()
	RunInstance(evenFilter(), []stream.Event{stream.Item("oops", 1)})
}
