package core

import (
	"fmt"

	"datatrace/internal/stream"
)

// This file implements the specialized sliding-window aggregation
// template the paper's section 8 names as the first candidate for
// extending the template set: "our templates can already express
// sliding-window aggregation, but a specialized template for that
// purpose would relieve the programmer from the burden of
// re-discovering and re-implementing efficient sliding-window
// algorithms". SlidingAggregate is that template: the programmer
// supplies the same commutative monoid as OpKeyedUnordered plus a
// window length in marker periods, and the runner maintains the
// window with a two-stacks FIFO aggregator — O(1) amortized work per
// block instead of the O(W) per-marker recomputation a hand-rolled
// OpKeyedUnordered performs (see BenchmarkSlidingWindow* at the repo
// root for the ablation).

// SlidingAggregate is a typed operator computing, per key, the
// aggregate of the items in the last WindowBlocks marker periods,
// emitted at every marker: transduction U(K,V) → U(K,A).
//
// In, ID and Combine form a commutative monoid, exactly as in
// OpKeyedUnordered; Theorem 4.2's argument applies unchanged, so the
// operator is consistent with its types.
type SlidingAggregate[K comparable, V, A any] struct {
	// OpName names the operator.
	OpName string
	// InT and OutT describe the channel types; both must be unordered.
	InT, OutT stream.Type
	// WindowBlocks is the window length in marker periods (≥ 1).
	WindowBlocks int
	// In injects one key-value pair into the monoid.
	In func(key K, value V) A
	// ID is the monoid identity.
	ID func() A
	// Combine must be associative and commutative.
	Combine func(x, y A) A
	// EmitEmpty also emits for keys whose window holds no items
	// (value ID()); when false, such keys are skipped at the marker.
	EmitEmpty bool
}

// Name implements Operator.
func (o *SlidingAggregate[K, V, A]) Name() string { return o.OpName }

// InType implements Operator.
func (o *SlidingAggregate[K, V, A]) InType() stream.Type { return o.InT }

// OutType implements Operator.
func (o *SlidingAggregate[K, V, A]) OutType() stream.Type { return o.OutT }

// Mode implements Operator.
func (o *SlidingAggregate[K, V, A]) Mode() ParMode { return ParKeyed }

// Validate implements Operator.
func (o *SlidingAggregate[K, V, A]) Validate() error {
	if o.OpName == "" {
		return fmt.Errorf("sliding-aggregate operator needs a name")
	}
	if o.In == nil || o.ID == nil || o.Combine == nil {
		return fmt.Errorf("%s: In, ID and Combine are required", o.OpName)
	}
	if o.WindowBlocks < 1 {
		return fmt.Errorf("%s: WindowBlocks must be ≥ 1, got %d", o.OpName, o.WindowBlocks)
	}
	if o.InT.Kind != stream.Unordered || o.OutT.Kind != stream.Unordered {
		return fmt.Errorf("%s: SlidingAggregate is typed U(K,V) → U(K,A), got %s → %s", o.OpName, o.InT, o.OutT)
	}
	return nil
}

// New implements Operator.
func (o *SlidingAggregate[K, V, A]) New() Instance {
	return &slidingInstance[K, V, A]{op: o, wins: map[K]*keyWindow[A]{}}
}

// fifoEntry is one element of the two-stacks aggregator.
type fifoEntry[A any] struct {
	idx int64 // block index, for eviction
	val A
	cum A // running aggregate (meaning differs per stack)
}

// fifoAgg is the classic two-stacks FIFO aggregator: push and evict
// are O(1) amortized and Query is O(1), for any associative monoid.
// The front stack stores suffix aggregates (cum = fold of this entry
// and everything popped after it); the back stack stores prefix
// aggregates (cum = fold of everything pushed up to this entry).
type fifoAgg[A any] struct {
	id      func() A
	combine func(x, y A) A
	front   []fifoEntry[A]
	back    []fifoEntry[A]
}

func newFifoAgg[A any](id func() A, combine func(x, y A) A) *fifoAgg[A] {
	return &fifoAgg[A]{id: id, combine: combine}
}

// Push appends a block aggregate with its block index.
func (f *fifoAgg[A]) Push(idx int64, val A) {
	cum := val
	if n := len(f.back); n > 0 {
		cum = f.combine(f.back[n-1].cum, val)
	}
	f.back = append(f.back, fifoEntry[A]{idx: idx, val: val, cum: cum})
}

// EvictBefore removes all entries with block index < minIdx.
func (f *fifoAgg[A]) EvictBefore(minIdx int64) {
	for {
		if len(f.front) == 0 {
			f.flip()
		}
		if len(f.front) == 0 {
			return
		}
		if f.front[len(f.front)-1].idx >= minIdx {
			return
		}
		f.front = f.front[:len(f.front)-1]
	}
}

// flip moves the back stack into the front stack, converting prefix
// aggregates into suffix aggregates.
func (f *fifoAgg[A]) flip() {
	if len(f.back) == 0 {
		return
	}
	cum := f.id()
	for i := len(f.back) - 1; i >= 0; i-- {
		cum = f.combine(f.back[i].val, cum)
		f.front = append(f.front, fifoEntry[A]{idx: f.back[i].idx, val: f.back[i].val, cum: cum})
	}
	f.back = f.back[:0]
}

// Query returns the aggregate of all live entries.
func (f *fifoAgg[A]) Query() A {
	agg := f.id()
	if n := len(f.front); n > 0 {
		agg = f.front[n-1].cum
	}
	if n := len(f.back); n > 0 {
		agg = f.combine(agg, f.back[n-1].cum)
	}
	return agg
}

// Len returns the number of live entries.
func (f *fifoAgg[A]) Len() int { return len(f.front) + len(f.back) }

type keyWindow[A any] struct {
	cur   A
	dirty bool // any item in the current block
	fifo  *fifoAgg[A]
}

type slidingInstance[K comparable, V, A any] struct {
	op       *SlidingAggregate[K, V, A]
	wins     map[K]*keyWindow[A]
	keys     []K
	blockIdx int64
}

func (in *slidingInstance[K, V, A]) Next(e stream.Event, emit func(stream.Event)) {
	if e.IsMarker {
		minIdx := in.blockIdx - int64(in.op.WindowBlocks) + 1
		for _, key := range in.keys {
			w := in.wins[key]
			if w.dirty {
				w.fifo.Push(in.blockIdx, w.cur)
				w.cur, w.dirty = in.op.ID(), false
			}
			w.fifo.EvictBefore(minIdx)
			if w.fifo.Len() == 0 && !in.op.EmitEmpty {
				continue
			}
			emit(stream.Item(key, w.fifo.Query()))
		}
		in.blockIdx++
		emit(e)
		return
	}
	key := castKey[K](in.op.OpName, e.Key)
	w, ok := in.wins[key]
	if !ok {
		w = &keyWindow[A]{cur: in.op.ID(), fifo: newFifoAgg(in.op.ID, in.op.Combine)}
		in.wins[key] = w
		in.keys = append(in.keys, key)
	}
	w.cur = in.op.Combine(w.cur, in.op.In(key, castVal[V](in.op.OpName, e.Value)))
	w.dirty = true
}
