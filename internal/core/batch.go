package core

import (
	"fmt"

	"datatrace/internal/stream"
)

// This file is the batch-at-a-time (columnar) surface of the operator
// templates. An operator that declares concrete column kinds lets the
// compiler select the typed struct-of-arrays transport for its edges,
// and its instances process whole column batches in one call —
// turning per-event virtual dispatch and interface boxing into tight
// loops over typed slices.
//
// Markers never appear in column batches: they always travel boxed
// through Instance.Next, so every template's marker logic (state
// rollover, window emission, forwarding) is shared verbatim between
// the boxed and columnar paths. A batch therefore denotes a fragment
// of one block's items, and processing it row-by-row is exactly the
// per-event semantics — the equivalence the differential tests check.

// ColOperator is implemented by operators whose instances can consume
// (and possibly produce) typed column batches. A nil kind means "no
// columnar interface on that side": the compiler then keeps the boxed
// transport for the corresponding edges.
type ColOperator interface {
	Operator
	// InColKind is the kind of batch instances accept, nil when the
	// operator (in its current configuration) cannot consume batches.
	InColKind() *stream.ColKind
	// OutColKind is the kind of batch instances produce between
	// markers, nil when the operator emits only boxed events (e.g. a
	// keyed aggregation that outputs at markers only).
	OutColKind() *stream.ColKind
}

// BatchInstance is the instance-side counterpart of ColOperator.
type BatchInstance interface {
	Instance
	InColKind() *stream.ColKind
	OutColKind() *stream.ColKind
	// ProcessCols consumes every row of in, appending any output rows
	// to out. out is non-nil exactly when OutColKind is non-nil; in is
	// never nil. The implementation must not retain in, out or their
	// column slices past the call — both batches belong to recycled
	// arenas (dttlint rule DTT007 enforces this).
	ProcessCols(in, out stream.Columns)
}

// ColChain is implemented by batch instances whose per-row work can be
// composed by typed closure chaining: the fusion pass binds each
// stage's output closure to the next stage's per-row entry point, so a
// fused stateless chain processes a column batch in ONE loop — no
// intermediate batches, no per-stage passes, no per-row dispatch. The
// any-typed closures are asserted back to their concrete func(K, V)
// form once at bind time (per topology), never per row.
type ColChain interface {
	// RowEmit returns the instance's typed per-row entry point as a
	// func(K, V) boxed in any. The closure tallies every row delivered
	// to it; TakeRows drains the tally.
	RowEmit() any
	// BindRowOut redirects the instance's columnar output to out, a
	// func(L, W) boxed in any — normally the next stage's RowEmit.
	// Reports whether out has the instance's output row type; a false
	// return leaves the instance unchanged.
	BindRowOut(out any) bool
	// SetOutBatch points the instance's output at a concrete batch for
	// the duration of one fused call (used on the chain's tail); nil
	// drops the reference, since the batch belongs to a recycled arena.
	SetOutBatch(oc stream.Columns)
	// TakeRows returns and resets the number of rows RowEmit received
	// since the last call — the chained form of per-stage delivery
	// counts.
	TakeRows() int64
}

// ---------------------------------------------------------------------------
// Stateless: full columnar in and out.
// ---------------------------------------------------------------------------

// InColKind implements ColOperator.
func (s *Stateless[K, V, L, W]) InColKind() *stream.ColKind { return stream.ColKindFor[K, V]() }

// OutColKind implements ColOperator.
func (s *Stateless[K, V, L, W]) OutColKind() *stream.ColKind { return stream.ColKindFor[L, W]() }

// InColKind implements BatchInstance.
func (in *statelessInstance[K, V, L, W]) InColKind() *stream.ColKind {
	return stream.ColKindFor[K, V]()
}

// OutColKind implements BatchInstance.
func (in *statelessInstance[K, V, L, W]) OutColKind() *stream.ColKind {
	return stream.ColKindFor[L, W]()
}

// ProcessCols implements BatchInstance: OnItem over typed columns,
// with a single per-instance emit closure appending to the current
// output batch. A nil oc means the instance heads a closure-chained
// fusion (see ColChain): its colOut was bound to the next stage's
// per-row entry, so the loop below IS the whole chain's loop.
func (in *statelessInstance[K, V, L, W]) ProcessCols(ic, oc stream.Columns) {
	tin := ic.(*stream.Cols[K, V])
	if oc != nil {
		in.curOut = oc.(*stream.Cols[L, W])
	}
	in.ensureColOut()
	onItem := in.op.OnItem
	out := in.colOut
	keys, vals := tin.Keys, tin.Vals
	for i := range keys {
		onItem(out, keys[i], vals[i])
	}
	in.curOut = nil
}

// ensureColOut installs the default columnar output closure — append
// to the instance's current output batch — unless BindRowOut already
// redirected the output into the next fused stage.
func (in *statelessInstance[K, V, L, W]) ensureColOut() {
	if in.colOut == nil {
		in.colOut = func(key L, value W) { in.curOut.Append(key, value) }
	}
}

// RowEmit implements ColChain. The closure reads in.colOut through
// the receiver on every row, so binding THIS instance's output later
// keeps the chain composing transitively.
func (in *statelessInstance[K, V, L, W]) RowEmit() any {
	in.ensureColOut()
	return func(key K, value V) {
		in.rows++
		in.op.OnItem(in.colOut, key, value)
	}
}

// BindRowOut implements ColChain.
func (in *statelessInstance[K, V, L, W]) BindRowOut(out any) bool {
	f, ok := out.(func(key L, value W))
	if ok {
		in.colOut = f
	}
	return ok
}

// SetOutBatch implements ColChain.
func (in *statelessInstance[K, V, L, W]) SetOutBatch(oc stream.Columns) {
	if oc == nil {
		in.curOut = nil
		return
	}
	in.curOut = oc.(*stream.Cols[L, W])
	in.ensureColOut()
}

// TakeRows implements ColChain.
func (in *statelessInstance[K, V, L, W]) TakeRows() int64 {
	r := in.rows
	in.rows = 0
	return r
}

// ---------------------------------------------------------------------------
// KeyedUnordered: columnar in (items only fold into per-key
// aggregates), boxed out (output happens at markers, which stay on
// the boxed path).
// ---------------------------------------------------------------------------

// InColKind implements ColOperator. A non-nil OnItem observes (and may
// emit on) individual arrivals, which needs the boxed per-event path;
// the operator then declines batches, exactly as it declines the
// combiner pass.
func (o *KeyedUnordered[K, V, L, W, S, A]) InColKind() *stream.ColKind {
	if o.OnItem != nil {
		return nil
	}
	return stream.ColKindFor[K, V]()
}

// OutColKind implements ColOperator: output is marker-driven and
// boxed.
func (o *KeyedUnordered[K, V, L, W, S, A]) OutColKind() *stream.ColKind { return nil }

// InColKind implements BatchInstance.
func (in *keyedUnorderedInstance[K, V, L, W, S, A]) InColKind() *stream.ColKind {
	return in.op.InColKind()
}

// OutColKind implements BatchInstance.
func (in *keyedUnorderedInstance[K, V, L, W, S, A]) OutColKind() *stream.ColKind { return nil }

// ProcessCols implements BatchInstance: the Table 3 item step —
// fold into the per-key aggregate — over typed columns.
func (in *keyedUnorderedInstance[K, V, L, W, S, A]) ProcessCols(ic, _ stream.Columns) {
	op := in.op
	if op.OnItem != nil {
		panic(fmt.Sprintf("%s: ProcessCols on a keyed-unordered operator with OnItem", op.OpName))
	}
	tin := ic.(*stream.Cols[K, V])
	for i, key := range tin.Keys {
		r, ok := in.stateMap[key]
		if !ok {
			r = &kuRecord[S, A]{agg: op.ID(), state: in.startS}
			in.stateMap[key] = r
			in.keys = append(in.keys, key)
		}
		r.agg = op.Combine(r.agg, op.In(key, tin.Vals[i]))
	}
}

// ---------------------------------------------------------------------------
// SlidingAggregate: columnar in, boxed (marker-driven) out.
// ---------------------------------------------------------------------------

// InColKind implements ColOperator.
func (o *SlidingAggregate[K, V, A]) InColKind() *stream.ColKind { return stream.ColKindFor[K, V]() }

// OutColKind implements ColOperator.
func (o *SlidingAggregate[K, V, A]) OutColKind() *stream.ColKind { return nil }

// InColKind implements BatchInstance.
func (in *slidingInstance[K, V, A]) InColKind() *stream.ColKind { return stream.ColKindFor[K, V]() }

// OutColKind implements BatchInstance.
func (in *slidingInstance[K, V, A]) OutColKind() *stream.ColKind { return nil }

// ProcessCols implements BatchInstance: the current-block fold over
// typed columns.
func (in *slidingInstance[K, V, A]) ProcessCols(ic, _ stream.Columns) {
	op := in.op
	tin := ic.(*stream.Cols[K, V])
	for i, key := range tin.Keys {
		w, ok := in.wins[key]
		if !ok {
			w = &keyWindow[A]{cur: op.ID(), fifo: newFifoAgg(op.ID, op.Combine)}
			in.wins[key] = w
			in.keys = append(in.keys, key)
		}
		w.cur = op.Combine(w.cur, op.In(key, tin.Vals[i]))
		w.dirty = true
	}
}

// ---------------------------------------------------------------------------
// Typed sender-side combining.
// ---------------------------------------------------------------------------

// ColCombinable is implemented by operators that admit *typed*
// sender-side pre-aggregation: the columnar counterpart of Combinable.
// The compiler prefers it on columnar combined edges so the fold runs
// over typed rows with no boxing.
type ColCombinable interface {
	Combinable
	// ColCombiner returns the input kind the buffer folds (the
	// operator's raw (K,V) rows), the output kind it drains (the
	// pre-combined (K,A) rows the PreCombined operator consumes), and
	// a factory for per-destination buffers. ok is false under exactly
	// the conditions CombinerMonoid declines.
	ColCombiner() (in, out *stream.ColKind, mk func() stream.ColCombiner, ok bool)
}

// ColCombiner implements ColCombinable.
func (o *KeyedUnordered[K, V, L, W, S, A]) ColCombiner() (*stream.ColKind, *stream.ColKind, func() stream.ColCombiner, bool) {
	if o.OnItem != nil {
		return nil, nil, nil, false
	}
	mk := func() stream.ColCombiner {
		return &colCombiner[K, V, A]{in: o.In, combine: o.Combine, idx: map[K]int{}}
	}
	return stream.ColKindFor[K, V](), stream.ColKindFor[K, A](), mk, true
}

// ColCombiner implements ColCombinable.
func (o *SlidingAggregate[K, V, A]) ColCombiner() (*stream.ColKind, *stream.ColKind, func() stream.ColCombiner, bool) {
	mk := func() stream.ColCombiner {
		return &colCombiner[K, V, A]{in: o.In, combine: o.Combine, idx: map[K]int{}}
	}
	return stream.ColKindFor[K, V](), stream.ColKindFor[K, A](), mk, true
}

// colCombiner is the typed per-destination combining buffer: per-key
// partial aggregates with first-seen key order, so drains are
// deterministic for a deterministic input order.
type colCombiner[K comparable, V, A any] struct {
	in      func(K, V) A
	combine func(A, A) A
	idx     map[K]int
	keys    []K
	aggs    []A
	ins     int
}

func (c *colCombiner[K, V, A]) fold(k K, v V) {
	c.ins++
	if i, ok := c.idx[k]; ok {
		c.aggs[i] = c.combine(c.aggs[i], c.in(k, v))
		return
	}
	c.idx[k] = len(c.keys)
	c.keys = append(c.keys, k)
	c.aggs = append(c.aggs, c.in(k, v))
}

// Fold implements stream.ColCombiner.
func (c *colCombiner[K, V, A]) Fold(in stream.Columns, i int) bool {
	tc, ok := in.(*stream.Cols[K, V])
	if !ok {
		return false
	}
	c.fold(tc.Keys[i], tc.Vals[i])
	return true
}

// FoldEvent implements stream.ColCombiner.
func (c *colCombiner[K, V, A]) FoldEvent(e stream.Event) {
	c.fold(e.Key.(K), e.Value.(V))
}

// Drain implements stream.ColCombiner.
func (c *colCombiner[K, V, A]) Drain(out stream.Columns) (int, int) {
	tc := out.(*stream.Cols[K, A])
	tc.Keys = append(tc.Keys, c.keys...)
	tc.Vals = append(tc.Vals, c.aggs...)
	ins, outs := c.ins, len(c.keys)
	for _, k := range c.keys {
		delete(c.idx, k)
	}
	c.keys = c.keys[:0]
	c.aggs = c.aggs[:0]
	c.ins = 0
	return ins, outs
}

// Len implements stream.ColCombiner.
func (c *colCombiner[K, V, A]) Len() int { return len(c.keys) }
