package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"datatrace/internal/stream"
)

func slidingSum(window int, emitEmpty bool) *SlidingAggregate[int, int, int] {
	return &SlidingAggregate[int, int, int]{
		OpName:       "slidingSum",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		WindowBlocks: window,
		In:           func(_, v int) int { return v },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		EmitEmpty:    emitEmpty,
	}
}

// naiveSlidingSum is the reference: per key, keep every block count
// and recompute the window sum at each marker — what a programmer
// writes with plain OpKeyedUnordered (Query IV's style).
func naiveSlidingSum(window int) *KeyedUnordered[int, int, int, int, []int, int] {
	return &KeyedUnordered[int, int, int, int, []int, int]{
		OpName:       "naiveSlidingSum",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(_, v int) int { return v },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() []int { return nil },
		UpdateState: func(old []int, agg int) []int {
			blocks := append(append([]int(nil), old...), agg)
			if len(blocks) > window {
				blocks = blocks[len(blocks)-window:]
			}
			return blocks
		},
		OnMarker: func(emit Emit[int, int], st []int, key int, m stream.Marker) {
			total := 0
			for _, b := range st {
				total += b
			}
			emit(key, total)
		},
	}
}

func TestSlidingAggregateBasic(t *testing.T) {
	op := slidingSum(2, true)
	in := []stream.Event{
		stream.Item(1, 10), mk(0, 1),
		stream.Item(1, 5), mk(1, 2),
		stream.Item(1, 2), mk(2, 3),
		mk(3, 4),
		mk(4, 5),
	}
	out := RunInstance(op, in)
	// Windows of 2 blocks: [10], [10,5], [5,2], [2,-], [-,-].
	var vals []int
	for _, e := range out {
		if !e.IsMarker {
			vals = append(vals, e.Value.(int))
		}
	}
	want := []int{10, 15, 7, 2, 0}
	if len(vals) != len(want) {
		t.Fatalf("got %v want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("got %v want %v", vals, want)
		}
	}
}

func TestSlidingAggregateSkipsEmptyWhenConfigured(t *testing.T) {
	op := slidingSum(1, false)
	in := []stream.Event{
		stream.Item(1, 10), mk(0, 1),
		mk(1, 2), // key 1's window is now empty
	}
	out := RunInstance(op, in)
	items := 0
	for _, e := range out {
		if !e.IsMarker {
			items++
		}
	}
	if items != 1 {
		t.Fatalf("got %d emissions, want 1 (empty window skipped)", items)
	}
}

// TestSlidingAggregateMatchesNaive cross-checks the two-stacks runner
// against the O(W)-per-marker reference on random streams, comparing
// only emissions with a non-empty window (the naive version emits for
// every known key).
func TestSlidingAggregateMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		window := 1 + r.Intn(5)
		in := randomStream(r, 1+r.Intn(8), 6, 4)
		fast := RunInstance(slidingSum(window, true), in)
		naive := RunInstance(naiveSlidingSum(window), in)
		// Compare per-marker emission maps. The naive version's window
		// content for a key late to appear differs only in that blocks
		// before the key's first item are absent; both represent them
		// as zero-valued, so the sums agree.
		fm := perMarkerValues(fast)
		nm := perMarkerValues(naive)
		for blk := range nm {
			for key, v := range nm[blk] {
				fv, ok := fm[blk][key]
				if !ok {
					t.Fatalf("trial %d window %d: fast version missing key %d at marker %d", trial, window, key, blk)
				}
				if fv != v {
					t.Fatalf("trial %d window %d: key %d at marker %d: fast %d vs naive %d",
						trial, window, key, blk, fv, v)
				}
			}
		}
	}
}

// perMarkerValues maps marker block → key → last emitted value.
func perMarkerValues(events []stream.Event) map[int]map[int]int {
	out := map[int]map[int]int{}
	blk := 0
	for _, e := range events {
		if e.IsMarker {
			blk++
			continue
		}
		if out[blk] == nil {
			out[blk] = map[int]int{}
		}
		out[blk][e.Key.(int)] = e.Value.(int)
	}
	return out
}

func TestTheorem4_2_SlidingAggregate(t *testing.T) {
	in := []stream.Event{
		stream.Item(1, 1), stream.Item(2, 2), stream.Item(1, 3), mk(0, 1),
		stream.Item(2, 4), stream.Item(1, 5), mk(1, 2),
	}
	checkConsistent(t, slidingSum(2, true), in, 800)
}

func TestTheorem4_3_SlidingAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		in := randomStream(r, 1+r.Intn(5), 8, 5)
		ref := RunInstance(slidingSum(3, true), in)
		for par := 2; par <= 4; par++ {
			got := RunParallel(slidingSum(3, true), in, par, nil)
			if !stream.Equivalent(stream.U("Int", "Int"), ref, got) {
				t.Fatalf("parallelism %d changed semantics", par)
			}
		}
	}
}

func TestSlidingAggregateValidate(t *testing.T) {
	bad := slidingSum(0, true)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "WindowBlocks") {
		t.Fatalf("got %v", err)
	}
	bad2 := slidingSum(2, true)
	bad2.Combine = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("missing Combine must fail")
	}
	bad3 := slidingSum(2, true)
	bad3.InT = stream.O("Int", "Int")
	if err := bad3.Validate(); err == nil {
		t.Fatal("ordered input must fail")
	}
}

// TestFifoAggProperties property-tests the two-stacks structure
// against a plain slice model.
func TestFifoAggProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(34))}
	f := func(ops []uint8) bool {
		fifo := newFifoAgg(func() int { return 0 }, func(x, y int) int { return x + y })
		var model []fifoEntry[int]
		idx := int64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // push
				v := int(op)
				fifo.Push(idx, v)
				model = append(model, fifoEntry[int]{idx: idx, val: v})
				idx++
			case 2: // evict a prefix
				min := idx - int64(op%7)
				fifo.EvictBefore(min)
				for len(model) > 0 && model[0].idx < min {
					model = model[1:]
				}
			}
			want := 0
			for _, e := range model {
				want += e.val
			}
			if fifo.Query() != want || fifo.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSlidingAggregateInDAG(t *testing.T) {
	d := NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	win := d.Op(slidingSum(3, true), 2, src)
	d.Sink("out", win)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(35))
	in := randomStream(r, 6, 10, 4)
	ref, err := d.Eval(map[string][]stream.Event{"src": in})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := d.EvalDeployed(map[string][]stream.Event{"src": in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EquivalentOutputs(ref, dep); err != nil {
		t.Fatal(err)
	}
}
