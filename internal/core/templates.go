package core

import (
	"fmt"

	"datatrace/internal/stream"
)

// Emit is the output callback handed to template callbacks: it emits
// one key-value pair on the operator's output channel.
type Emit[L, W any] func(key L, value W)

// ---------------------------------------------------------------------------
// OpStateless (Table 1): transduction U(K,V) → U(L,W).
// ---------------------------------------------------------------------------

// Stateless is the OpStateless template: the output depends only on
// the current event, never on the input history. Stateless operators
// may be replicated behind any splitter (ParAny).
//
// The zero OnMarker is allowed: markers are still forwarded.
type Stateless[K, V, L, W any] struct {
	// OpName names the operator in topologies and error messages.
	OpName string
	// In and Out describe the channel types; both must be unordered
	// (an ordered input is accepted via subtyping at the DAG level).
	In, Out stream.Type
	// OnItem processes one key-value pair.
	OnItem func(emit Emit[L, W], key K, value V)
	// OnMarker optionally reacts to a synchronization marker. The
	// marker itself is forwarded automatically afterwards.
	OnMarker func(emit Emit[L, W], m stream.Marker)
}

// Name implements Operator.
func (s *Stateless[K, V, L, W]) Name() string { return s.OpName }

// InType implements Operator.
func (s *Stateless[K, V, L, W]) InType() stream.Type { return s.In }

// OutType implements Operator.
func (s *Stateless[K, V, L, W]) OutType() stream.Type { return s.Out }

// Mode implements Operator: stateless operators split arbitrarily.
func (s *Stateless[K, V, L, W]) Mode() ParMode { return ParAny }

// Validate implements Operator.
func (s *Stateless[K, V, L, W]) Validate() error {
	if s.OpName == "" {
		return fmt.Errorf("stateless operator needs a name")
	}
	if s.OnItem == nil {
		return fmt.Errorf("%s: OnItem is required", s.OpName)
	}
	if s.In.Kind != stream.Unordered || s.Out.Kind != stream.Unordered {
		return fmt.Errorf("%s: OpStateless is typed U(K,V) → U(L,W), got %s → %s", s.OpName, s.In, s.Out)
	}
	return nil
}

// New implements Operator.
func (s *Stateless[K, V, L, W]) New() Instance { return &statelessInstance[K, V, L, W]{op: s} }

type statelessInstance[K, V, L, W any] struct {
	op   *Stateless[K, V, L, W]
	emit func(stream.Event)
	out  Emit[L, W]
	// curOut/colOut implement the columnar emit callback (see
	// ProcessCols in batch.go) with one closure per instance. rows
	// tallies RowEmit deliveries for chained fusion (see ColChain).
	curOut *stream.Cols[L, W]
	colOut Emit[L, W]
	rows   int64
}

func (in *statelessInstance[K, V, L, W]) Next(e stream.Event, emit func(stream.Event)) {
	// The adapter closure is built once per instance (it reads in.emit
	// through the receiver) so the per-event hot path is allocation-free.
	in.emit = emit
	if in.out == nil {
		in.out = func(key L, value W) { in.emit(stream.Item(key, value)) }
	}
	if e.IsMarker {
		if in.op.OnMarker != nil {
			in.op.OnMarker(in.out, e.Marker)
		}
		emit(e)
		return
	}
	in.op.OnItem(in.out, castKey[K](in.op.OpName, e.Key), castVal[V](in.op.OpName, e.Value))
}

// ---------------------------------------------------------------------------
// OpKeyedOrdered (Table 1): transduction O(K,V) → O(K,W).
// ---------------------------------------------------------------------------

// KeyedOrdered is the OpKeyedOrdered template: an order-dependent
// stateful computation per key, over input that is ordered per key
// between markers. The paper's restriction that "every occurrence of
// emit must preserve the input key" is enforced by construction: the
// emit callback takes only a value and the framework attaches the
// current key.
type KeyedOrdered[K comparable, V, W, S any] struct {
	// OpName names the operator.
	OpName string
	// In and Out describe the channel types; both must be ordered and
	// share the key type name.
	In, Out stream.Type
	// InitialState produces the state a key starts in when first seen.
	InitialState func() S
	// OnItem consumes the next value for key in per-key order and
	// returns the updated state. emit outputs (key, w) pairs.
	OnItem func(emit func(w W), state S, key K, value V) S
	// OnMarker optionally reacts to a marker for each live key and
	// returns the updated state; nil keeps the state unchanged.
	OnMarker func(emit func(w W), state S, key K, m stream.Marker) S
}

// Name implements Operator.
func (o *KeyedOrdered[K, V, W, S]) Name() string { return o.OpName }

// InType implements Operator.
func (o *KeyedOrdered[K, V, W, S]) InType() stream.Type { return o.In }

// OutType implements Operator.
func (o *KeyedOrdered[K, V, W, S]) OutType() stream.Type { return o.Out }

// Mode implements Operator: keyed operators split by key hash.
func (o *KeyedOrdered[K, V, W, S]) Mode() ParMode { return ParKeyed }

// Validate implements Operator.
func (o *KeyedOrdered[K, V, W, S]) Validate() error {
	if o.OpName == "" {
		return fmt.Errorf("keyed-ordered operator needs a name")
	}
	if o.InitialState == nil || o.OnItem == nil {
		return fmt.Errorf("%s: InitialState and OnItem are required", o.OpName)
	}
	if o.In.Kind != stream.Ordered || o.Out.Kind != stream.Ordered {
		return fmt.Errorf("%s: OpKeyedOrdered is typed O(K,V) → O(K,W), got %s → %s", o.OpName, o.In, o.Out)
	}
	if o.In.Key != o.Out.Key {
		return fmt.Errorf("%s: OpKeyedOrdered must preserve the key type, got %s → %s", o.OpName, o.In, o.Out)
	}
	return nil
}

// New implements Operator.
func (o *KeyedOrdered[K, V, W, S]) New() Instance {
	return &keyedOrderedInstance[K, V, W, S]{op: o, states: make(map[K]S)}
}

type keyedOrderedInstance[K comparable, V, W, S any] struct {
	op     *KeyedOrdered[K, V, W, S]
	states map[K]S
	// keys preserves first-seen order so marker processing is
	// deterministic (any order yields an equivalent output trace, but
	// determinism keeps test failures readable).
	keys []K
	// emit/curKey/out implement the key-preserving emit callback with
	// one closure per instance instead of one per event.
	emit   func(stream.Event)
	curKey K
	out    func(w W)
}

func (in *keyedOrderedInstance[K, V, W, S]) Next(e stream.Event, emit func(stream.Event)) {
	in.emit = emit
	if in.out == nil {
		in.out = func(w W) { in.emit(stream.Item(in.curKey, w)) }
	}
	if e.IsMarker {
		if in.op.OnMarker != nil {
			for _, key := range in.keys {
				in.curKey = key
				in.states[key] = in.op.OnMarker(in.out, in.states[key], key, e.Marker)
			}
		}
		emit(e)
		return
	}
	key := castKey[K](in.op.OpName, e.Key)
	s, ok := in.states[key]
	if !ok {
		s = in.op.InitialState()
		in.keys = append(in.keys, key)
	}
	in.curKey = key
	in.states[key] = in.op.OnItem(in.out, s, key, castVal[V](in.op.OpName, e.Value))
}

// ---------------------------------------------------------------------------
// OpKeyedUnordered (Tables 1 and 3): transduction U(K,V) → U(L,W).
// ---------------------------------------------------------------------------

// KeyedUnordered is the OpKeyedUnordered template: a stateful
// computation per key over unordered input. Between markers, items
// are folded into a commutative-monoid aggregate (ID, Combine) and do
// not touch the state, so the result is independent of arrival order;
// at each marker the aggregate is absorbed into the state via
// UpdateState. OnItem may consult only the last state snapshot (the
// one formed at the previous marker). In, ID, Combine, InitialState
// and UpdateState must be pure.
type KeyedUnordered[K comparable, V, L, W, S, A any] struct {
	// OpName names the operator.
	OpName string
	// InT and OutT describe the channel types; both must be unordered.
	InT, OutT stream.Type
	// In injects one key-value pair into the aggregation monoid.
	In func(key K, value V) A
	// ID is the identity element of the monoid.
	ID func() A
	// Combine is the monoid operation; it must be associative and
	// commutative for the operator to be consistent (Theorem 4.2).
	Combine func(x, y A) A
	// InitialState produces the state a key starts in.
	InitialState func() S
	// UpdateState absorbs a block's aggregate into the state at a
	// marker.
	UpdateState func(old S, agg A) S
	// OnItem optionally emits output when an item arrives; it sees
	// only the state snapshot from the last marker. Nil is allowed.
	OnItem func(emit Emit[L, W], lastState S, key K, value V)
	// OnMarker optionally emits output at a marker, after UpdateState
	// has run for the key. Nil is allowed.
	OnMarker func(emit Emit[L, W], newState S, key K, m stream.Marker)
}

// Name implements Operator.
func (o *KeyedUnordered[K, V, L, W, S, A]) Name() string { return o.OpName }

// InType implements Operator.
func (o *KeyedUnordered[K, V, L, W, S, A]) InType() stream.Type { return o.InT }

// OutType implements Operator.
func (o *KeyedUnordered[K, V, L, W, S, A]) OutType() stream.Type { return o.OutT }

// Mode implements Operator.
func (o *KeyedUnordered[K, V, L, W, S, A]) Mode() ParMode { return ParKeyed }

// Validate implements Operator.
func (o *KeyedUnordered[K, V, L, W, S, A]) Validate() error {
	if o.OpName == "" {
		return fmt.Errorf("keyed-unordered operator needs a name")
	}
	if o.In == nil || o.ID == nil || o.Combine == nil || o.InitialState == nil || o.UpdateState == nil {
		return fmt.Errorf("%s: In, ID, Combine, InitialState and UpdateState are required", o.OpName)
	}
	if o.InT.Kind != stream.Unordered || o.OutT.Kind != stream.Unordered {
		return fmt.Errorf("%s: OpKeyedUnordered is typed U(K,V) → U(L,W), got %s → %s", o.OpName, o.InT, o.OutT)
	}
	return nil
}

// New implements Operator. The instance is the streaming algorithm of
// Table 3: a per-key record {agg, state} plus the state that a
// not-yet-seen key would currently have (startS).
func (o *KeyedUnordered[K, V, L, W, S, A]) New() Instance {
	return &keyedUnorderedInstance[K, V, L, W, S, A]{
		op:       o,
		stateMap: make(map[K]*kuRecord[S, A]),
		startS:   o.InitialState(),
	}
}

type kuRecord[S, A any] struct {
	agg   A
	state S
}

type keyedUnorderedInstance[K comparable, V, L, W, S, A any] struct {
	op       *KeyedUnordered[K, V, L, W, S, A]
	stateMap map[K]*kuRecord[S, A]
	keys     []K
	startS   S
	emit     func(stream.Event)
	out      Emit[L, W]
}

func (in *keyedUnorderedInstance[K, V, L, W, S, A]) Next(e stream.Event, emit func(stream.Event)) {
	in.emit = emit
	if in.out == nil {
		in.out = func(key L, value W) { in.emit(stream.Item(key, value)) }
	}
	out := in.out
	if e.IsMarker {
		for _, key := range in.keys {
			r := in.stateMap[key]
			r.state = in.op.UpdateState(r.state, r.agg)
			r.agg = in.op.ID()
			if in.op.OnMarker != nil {
				in.op.OnMarker(out, r.state, key, e.Marker)
			}
		}
		in.startS = in.op.UpdateState(in.startS, in.op.ID())
		emit(e)
		return
	}
	key := castKey[K](in.op.OpName, e.Key)
	r, ok := in.stateMap[key]
	if !ok {
		r = &kuRecord[S, A]{agg: in.op.ID(), state: in.startS}
		in.stateMap[key] = r
		in.keys = append(in.keys, key)
	}
	v := castVal[V](in.op.OpName, e.Value)
	if in.op.OnItem != nil {
		in.op.OnItem(out, r.state, key, v)
	}
	r.agg = in.op.Combine(r.agg, in.op.In(key, v))
}

// castKey unboxes an event key with a template-level error message on
// mismatch — the runtime analogue of the DAG type check.
func castKey[K any](op string, key any) K {
	k, ok := key.(K)
	if !ok {
		panic(fmt.Sprintf("%s: event key %v (%T) does not have the operator's key type %T", op, key, key, k))
	}
	return k
}

// castVal unboxes an event value.
func castVal[V any](op string, value any) V {
	v, ok := value.(V)
	if !ok {
		panic(fmt.Sprintf("%s: event value %v (%T) does not have the operator's value type %T", op, value, value, v))
	}
	return v
}
