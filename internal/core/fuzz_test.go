package core

import (
	"testing"

	"datatrace/internal/stream"
)

// decodeFuzzEvents turns fuzz bytes into an event stream: low bits
// choose the key, every fifth byte closes a block with a marker.
func decodeFuzzEvents(data []byte) []stream.Event {
	if len(data) > 40 {
		data = data[:40]
	}
	var out []stream.Event
	seq := int64(0)
	for _, b := range data {
		if b%5 == 0 {
			out = append(out, stream.Mark(stream.Marker{Seq: seq, Timestamp: seq * 10}))
			seq++
		} else {
			out = append(out, stream.Item(int(b%4), int(b)))
		}
	}
	return out
}

// runInstance feeds a stream through one fresh instance of op.
func runInstance(op Operator, in []stream.Event) []stream.Event {
	inst := op.New()
	var out []stream.Event
	for _, e := range in {
		inst.Next(e, func(o stream.Event) { out = append(out, o) })
	}
	return out
}

// runSplit deploys op at width n: the input is split, each substream
// runs its own fresh instance, and the outputs are merged — the
// dataflow SPLIT ≫ op^n ≫ MRG that Theorem 4.3 proves equivalent to
// the single-instance denotation when the splitter respects the
// operator's parallelizability mode.
func runSplit(op Operator, splits [][]stream.Event) []stream.Event {
	outs := make([][]stream.Event, len(splits))
	for i, part := range splits {
		outs[i] = runInstance(op, part)
	}
	return stream.MergeEvents(outs...)
}

// FuzzSplitMergeLaws fuzzes the parallelization laws the compiler's
// grouping selection rests on: for a stateless (ParAny) operator any
// round-robin split is invisible, and for keyed (ParKeyed) operators a
// key-hash split is invisible — the merged parallel output is
// trace-equivalent to the sequential denotation at the operator's
// output type.
func FuzzSplitMergeLaws(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3, 4, 0}, uint8(2))
	f.Add([]byte{0, 0, 0}, uint8(3))
	f.Add([]byte{7, 9, 11, 0, 13, 2, 0, 1}, uint8(4))
	f.Add([]byte{6, 6, 6, 6}, uint8(1))

	stateless := &Stateless[int, int, int, int]{
		OpName: "scale",
		In:     stream.U("Int", "Int"),
		Out:    stream.U("Int", "Int"),
		OnItem: func(emit Emit[int, int], k, v int) {
			if v%3 != 0 {
				emit(k, v*2)
			}
		},
	}
	runsum := &KeyedOrdered[int, int, int, int]{
		OpName:       "runsum",
		In:           stream.O("Int", "Int"),
		Out:          stream.O("Int", "Int"),
		InitialState: func() int { return 0 },
		OnItem: func(emit func(int), st, k, v int) int {
			st += v
			emit(st)
			return st
		},
	}
	blocksum := &KeyedUnordered[int, int, int, int, int, int]{
		OpName:       "blocksum",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		In:           func(_, v int) int { return v },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
		InitialState: func() int { return 0 },
		UpdateState:  func(_, agg int) int { return agg },
		OnMarker: func(emit Emit[int, int], st, k int, m stream.Marker) {
			emit(k, st)
		},
	}

	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		n := int(width%4) + 1
		in := decodeFuzzEvents(data)

		// ParAny: RR ≫ op^n ≫ MRG = op at the unordered output type.
		seq := runInstance(stateless, in)
		par := runSplit(stateless, stream.SplitRoundRobin(in, n))
		if !stream.Equivalent(stream.U("Int", "Int"), par, seq) {
			t.Fatalf("stateless: RR%d split changed the trace on %s:\n seq %s\n par %s",
				n, stream.Render(in), stream.Render(seq), stream.Render(par))
		}

		// ParKeyed: HASH ≫ op^n ≫ MRG = op, including per-key order.
		seq = runInstance(runsum, in)
		par = runSplit(runsum, stream.SplitHash(in, n, nil))
		if !stream.Equivalent(stream.O("Int", "Int"), par, seq) {
			t.Fatalf("runsum: HASH%d split changed the trace on %s:\n seq %s\n par %s",
				n, stream.Render(in), stream.Render(seq), stream.Render(par))
		}

		// ParKeyed with marker-driven emission: block aggregates are
		// unordered within a block, so equivalence holds at U.
		seq = runInstance(blocksum, in)
		par = runSplit(blocksum, stream.SplitHash(in, n, nil))
		if !stream.Equivalent(stream.U("Int", "Int"), par, seq) {
			t.Fatalf("blocksum: HASH%d split changed the trace on %s:\n seq %s\n par %s",
				n, stream.Render(in), stream.Render(seq), stream.Render(par))
		}

		// A round-robin split of a keyed operator is NOT in general
		// equivalent — the law is mode-specific. We don't assert
		// inequivalence (small inputs can coincide); this comment
		// records why no such check appears.
	})
}
