package core

import (
	"strings"
	"testing"

	"datatrace/internal/stream"
)

// figure2DAG builds the DAG of the paper's Figure 2: source → filter
// (par 2) → per-key sum (par 3) → printer sink.
func figure2DAG() (*DAG, *Node) {
	d := NewDAG()
	src := d.Source("source", stream.U("Int", "Int"))
	filt := d.Op(evenFilter(), 2, src)
	sum := d.Op(sumPerKey(), 3, filt)
	sink := d.Sink("printer", sum)
	return d, sink
}

func TestFigure2DAGTypeChecks(t *testing.T) {
	d, _ := figure2DAG()
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsTypeMismatch(t *testing.T) {
	d := NewDAG()
	src := d.Source("src", stream.U("String", "Float"))
	d.Sink("sink", d.Op(sumPerKey(), 1, src))
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "expects input U(Int,Int)") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckAllowsOrderedIntoUnordered(t *testing.T) {
	// O(K,V) flows into a stateless operator expecting U(K,V):
	// forgetting order is sound (Figure 5's Map stage).
	d := NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	srt := d.Op(&Sort[int, int]{
		OpName: "SORT", In: stream.U("Int", "Int"), Out: stream.O("Int", "Int"),
		Less: func(a, b int) bool { return a < b },
	}, 1, src)
	d.Sink("sink", d.Op(evenFilter(), 1, srt))
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsUnorderedIntoOrdered(t *testing.T) {
	// U(K,V) must NOT flow into an operator expecting O(K,V) — that is
	// exactly the unsound deployment of section 2.
	d := NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	d.Sink("sink", d.Op(runningSum(), 1, src))
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "expects input O(Int,Int)") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckRejectsOverParallelizedGlobalOp(t *testing.T) {
	d := NewDAG()
	src := d.Source("src", stream.U("K", "V"))
	d.Sink("sink", d.Op(&unsplittableOp{}, 4, src))
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "cannot be parallelized") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckRejectsDanglingOutput(t *testing.T) {
	d := NewDAG()
	d.Source("src", stream.U("K", "V"))
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "never consumed") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckRejectsDuplicateNames(t *testing.T) {
	d := NewDAG()
	a := d.Source("x", stream.U("Int", "Int"))
	b := d.Source("x", stream.U("Int", "Int"))
	d.Sink("s1", a)
	d.Sink("s2", b)
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "duplicate node name") {
		t.Fatalf("got %v", err)
	}
}

// TestCheckRejectsTwoSameNamedOperators covers duplicate names on op
// nodes specifically: two operators built from templates carrying the
// same OpName.
func TestCheckRejectsTwoSameNamedOperators(t *testing.T) {
	d := NewDAG()
	src := d.Source("source", stream.U("Int", "Int"))
	a := d.Op(evenFilter(), 1, src)
	b := d.Op(evenFilter(), 1, a)
	d.Sink("printer", b)
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "duplicate node name") {
		t.Fatalf("got %v", err)
	}
}

// TestCheckRejectsPostAddRenameCollision covers the hole add-time
// detection cannot see: Nodes() hands out mutable *Node, so a pass
// that renames nodes after construction (as the fusion pass does) can
// collide two names that were distinct when added. Check must catch
// the collision at verification time.
func TestCheckRejectsPostAddRenameCollision(t *testing.T) {
	d, _ := figure2DAG()
	if err := d.Check(); err != nil {
		t.Fatalf("pre-rename DAG must be clean: %v", err)
	}
	nodes := d.Nodes()
	nodes[1].Name = nodes[2].Name // simulate a buggy rename pass
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "renamed after construction") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckMergeOrderedDisjointKeys(t *testing.T) {
	// MRG : O(K1,V) × O(K2,V) → O(K1∪K2,V).
	d := NewDAG()
	s1 := d.Source("s1", stream.O("K1", "V"))
	s2 := d.Source("s2", stream.O("K2", "V"))
	op := &KeyedOrdered[string, string, string, int]{
		OpName:       "consume",
		In:           stream.O("K1∪K2", "V"),
		Out:          stream.O("K1∪K2", "W"),
		InitialState: func() int { return 0 },
		OnItem:       func(emit func(string), s int, k, v string) int { return s },
	}
	d.Sink("sink", d.Op(op, 1, s1, s2))
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsMixedMerge(t *testing.T) {
	d := NewDAG()
	s1 := d.Source("s1", stream.U("K", "V"))
	s2 := d.Source("s2", stream.O("K", "V"))
	d.Sink("sink", d.Op(evenFilter(), 1, s1, s2))
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "cannot merge") {
		t.Fatalf("got %v", err)
	}
}

func TestDotOutput(t *testing.T) {
	d, _ := figure2DAG()
	dot := d.Dot()
	for _, want := range []string{"digraph", "filterEven ×2", "sumPerKey ×3", "U(Int,Int)"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestNodesAccessors(t *testing.T) {
	d, sink := figure2DAG()
	if len(d.Nodes()) != 4 {
		t.Fatalf("want 4 nodes, got %d", len(d.Nodes()))
	}
	if len(d.Sources()) != 1 || d.Sources()[0].Name != "source" {
		t.Fatal("sources accessor wrong")
	}
	if len(d.Sinks()) != 1 || d.Sinks()[0] != sink {
		t.Fatal("sinks accessor wrong")
	}
	if sink.Type != stream.U("Int", "Int") {
		t.Fatalf("sink type %s", sink.Type)
	}
}

// TestCheckGoTypesCatchesRepresentationMismatch: two operators whose
// stream.Type names agree but whose Go instantiations do not must be
// rejected at Check() time instead of panicking inside an executor.
func TestCheckGoTypesCatchesRepresentationMismatch(t *testing.T) {
	d := NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	// Emits int64 values but calls the type name "Int".
	a := d.Op(&Stateless[int, int, int, int64]{
		OpName: "widen",
		In:     stream.U("Int", "Int"),
		Out:    stream.U("Int", "Int"), // the name lies about int64
		OnItem: func(emit Emit[int, int64], k, v int) { emit(k, int64(v)) },
	}, 1, src)
	// Consumes int values.
	b := d.Op(evenFilter(), 1, a)
	d.Sink("out", b)
	err := d.Check()
	if err == nil || !strings.Contains(err.Error(), "representation mismatch") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckGoTypesAllowsInterfaceConsumers(t *testing.T) {
	d := NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	a := d.Op(&Stateless[int, int, int, int64]{
		OpName: "widen",
		In:     stream.U("Int", "Int"),
		Out:    stream.U("Int", "Any"),
		OnItem: func(emit Emit[int, int64], k, v int) { emit(k, int64(v)) },
	}, 1, src)
	// An any-valued consumer accepts every representation.
	b := d.Op(&Stateless[int, any, int, int]{
		OpName: "sink-ish",
		In:     stream.U("Int", "Any"),
		Out:    stream.U("Int", "Int"),
		OnItem: func(emit Emit[int, int], k int, v any) {},
	}, 1, a)
	d.Sink("out", b)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeGoTypes(t *testing.T) {
	d, _ := figure2DAG()
	desc := d.DescribeGoTypes()
	if !strings.Contains(desc, "filterEven : (int,int) → (int,int)") {
		t.Fatalf("missing description:\n%s", desc)
	}
}
