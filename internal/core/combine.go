package core

// This file exposes the commutative-monoid structure of the keyed
// templates to the compiler's shuffle-combiner pass (the classic
// map-side combine / partial-aggregation optimization). An operator
// whose per-block computation factors through In/ID/Combine can have
// partial aggregates formed *before* the fields-grouping shuffle: the
// sender folds its block-local items per key and ships one partial
// aggregate per (key, flush) instead of one message per item. By
// commutativity and associativity of Combine (Theorem 4.2's
// hypothesis) the consumer's per-block aggregate — and therefore the
// output data trace — is unchanged, whatever the split of items
// across senders and flushes.

// Combinable is implemented by operators that admit sender-side
// pre-aggregation on their input edge. The compiler consults it when
// the Combiners optimization pass is enabled.
type Combinable interface {
	Operator
	// CombinerMonoid returns the operator's aggregation monoid as
	// untyped functions for the runtime's combining buffers: in injects
	// one key-value pair, combine merges two partial aggregates. ok is
	// false when pre-aggregation would be unsound for this operator
	// value (e.g. a per-item OnItem callback observes individual
	// arrivals) and the pass must leave the edge alone.
	CombinerMonoid() (in func(key, value any) any, combine func(x, y any) any, ok bool)
	// PreCombined returns the operator rewritten to consume the partial
	// aggregates CombinerMonoid produces instead of raw items. It is
	// only called when CombinerMonoid reported ok; the rewritten
	// operator keeps the same name, mode, state machine and marker
	// behavior, so it is a drop-in replacement for the consumer bolt.
	PreCombined() Operator
}

// CombinerMonoid implements Combinable. A non-nil OnItem observes
// individual item arrivals (count, payload and all), which sender-side
// folding would collapse — the pass is declined in that case. In and
// Combine must be pure, as the template contract already requires:
// the runtime may invoke them inside its transactional send path.
func (o *KeyedUnordered[K, V, L, W, S, A]) CombinerMonoid() (func(any, any) any, func(any, any) any, bool) {
	if o.OnItem != nil {
		return nil, nil, false
	}
	in := func(key, value any) any {
		return o.In(castKey[K](o.OpName, key), castVal[V](o.OpName, value))
	}
	combine := func(x, y any) any {
		return o.Combine(castVal[A](o.OpName, x), castVal[A](o.OpName, y))
	}
	return in, combine, true
}

// PreCombined implements Combinable: the same operator over the
// aggregate domain, with In the identity injection. Because Combine
// is associative and commutative, folding partial aggregates yields
// exactly the block aggregate of the underlying items, and
// UpdateState/OnMarker see identical values at every marker.
func (o *KeyedUnordered[K, V, L, W, S, A]) PreCombined() Operator {
	return &KeyedUnordered[K, A, L, W, S, A]{
		OpName:       o.OpName,
		InT:          o.InT,
		OutT:         o.OutT,
		In:           func(_ K, a A) A { return a },
		ID:           o.ID,
		Combine:      o.Combine,
		InitialState: o.InitialState,
		UpdateState:  o.UpdateState,
		OnMarker:     o.OnMarker,
	}
}

// CombinerMonoid implements Combinable. SlidingAggregate has no
// per-item callback, so pre-aggregation is always sound.
func (o *SlidingAggregate[K, V, A]) CombinerMonoid() (func(any, any) any, func(any, any) any, bool) {
	in := func(key, value any) any {
		return o.In(castKey[K](o.OpName, key), castVal[V](o.OpName, value))
	}
	combine := func(x, y any) any {
		return o.Combine(castVal[A](o.OpName, x), castVal[A](o.OpName, y))
	}
	return in, combine, true
}

// PreCombined implements Combinable.
func (o *SlidingAggregate[K, V, A]) PreCombined() Operator {
	return &SlidingAggregate[K, A, A]{
		OpName:       o.OpName,
		InT:          o.InT,
		OutT:         o.OutT,
		WindowBlocks: o.WindowBlocks,
		In:           func(_ K, a A) A { return a },
		ID:           o.ID,
		Combine:      o.Combine,
		EmitEmpty:    o.EmitEmpty,
	}
}
