package core

import (
	"math/rand"
	"testing"

	"datatrace/internal/stream"
)

// This file property-tests the "Reordering MRG and HASH" rewrite
// table of section 4 — the equational steps Corollary 4.4's proof
// composes — plus the splitter law for fused compositions.

// TestReorderMergeHash checks the first rule of the table:
//
//	(MRG ; HASH_n)  =  (HASH_n ∥ HASH_n) ; (MRG × n)
//
// pushing a hash split through a merge of m channels: hashing the
// merged stream equals hashing each channel and merging the matching
// partitions.
func TestReorderMergeHash(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	typ := stream.U("Int", "Int")
	for trial := 0; trial < 60; trial++ {
		m := 2 + r.Intn(2) // input channels
		n := 2 + r.Intn(3) // hash partitions
		channels := make([][]stream.Event, m)
		for c := range channels {
			channels[c] = randomStream(r, 1+r.Intn(3), 6, 5)
			// All channels must carry the same marker count for MRG.
		}
		blocks := 3
		for c := range channels {
			channels[c] = randomStream(r, blocks, 6, 5)
		}

		// Left side: merge then hash.
		left := stream.SplitHash(stream.MergeEvents(channels...), n, nil)

		// Right side: hash each channel, then merge partition-wise.
		parts := make([][][]stream.Event, m)
		for c := range channels {
			parts[c] = stream.SplitHash(channels[c], n, nil)
		}
		for p := 0; p < n; p++ {
			var slice [][]stream.Event
			for c := 0; c < m; c++ {
				slice = append(slice, parts[c][p])
			}
			right := stream.MergeEvents(slice...)
			if !stream.Equivalent(typ, left[p], right) {
				t.Fatalf("trial %d (m=%d n=%d) partition %d:\n left  %s\n right %s",
					trial, m, n, p, stream.Render(left[p]), stream.Render(right))
			}
		}
	}
}

// TestHashOfHashedPartitionIsIdentity checks the table's degenerate
// case: re-hashing a partition with the same hash and modulus routes
// everything to one output channel, so HASH after HASH is equivalent
// to the identity on each partition.
func TestHashOfHashedPartitionIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	typ := stream.U("Int", "Int")
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(3)
		in := randomStream(r, 1+r.Intn(4), 8, 6)
		for p, part := range stream.SplitHash(in, n, nil) {
			again := stream.SplitHash(part, n, nil)
			// All items must land on channel p; others carry only markers.
			if !stream.Equivalent(typ, again[p], part) {
				t.Fatalf("re-hash changed partition %d", p)
			}
			for q, other := range again {
				if q == p {
					continue
				}
				for _, e := range other {
					if !e.IsMarker {
						t.Fatalf("item leaked to partition %d on re-hash", q)
					}
				}
			}
		}
	}
}

// TestSplitterLawForCompositions is the generalization used in
// Corollary 4.4's proof: for any splitter SPLIT and stateless β,
// SPLIT ≫ (β ∥ … ∥ β) ≫ MRG = β.
func TestSplitterLawForCompositions(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	typ := stream.U("Int", "Int")
	for trial := 0; trial < 40; trial++ {
		in := randomStream(r, 1+r.Intn(4), 8, 6)
		ref := RunInstance(evenFilter(), in)
		for n := 2; n <= 4; n++ {
			for _, split := range [][][]stream.Event{
				stream.SplitRoundRobin(in, n),
				stream.SplitHash(in, n, nil),
			} {
				outs := make([][]stream.Event, n)
				for i, part := range split {
					outs[i] = RunInstance(evenFilter(), part)
				}
				got := stream.MergeEvents(outs...)
				if !stream.Equivalent(typ, got, ref) {
					t.Fatalf("splitter law violated at n=%d", n)
				}
			}
		}
	}
}

// TestOrderedHashPreservation checks the ordered variant: HASH on
// O(K,V) keeps each key's order, so per-partition per-key sequences
// match the input's.
func TestOrderedHashPreservation(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	for trial := 0; trial < 40; trial++ {
		in := randomStream(r, 1+r.Intn(3), 10, 4)
		n := 2 + r.Intn(3)
		perKeyIn := map[int][]int{}
		for _, e := range in {
			if !e.IsMarker {
				perKeyIn[e.Key.(int)] = append(perKeyIn[e.Key.(int)], e.Value.(int))
			}
		}
		for _, part := range stream.SplitHash(in, n, nil) {
			perKeyOut := map[int][]int{}
			for _, e := range part {
				if !e.IsMarker {
					perKeyOut[e.Key.(int)] = append(perKeyOut[e.Key.(int)], e.Value.(int))
				}
			}
			for k, seq := range perKeyOut {
				want := perKeyIn[k]
				if len(seq) != len(want) {
					t.Fatalf("key %d lost items in partitioning", k)
				}
				for i := range seq {
					if seq[i] != want[i] {
						t.Fatalf("key %d order changed: %v vs %v", k, seq, want)
					}
				}
			}
		}
	}
}
