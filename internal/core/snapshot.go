package core

import (
	"bytes"
	"encoding/gob"
)

// Snapshotter is the optional Instance extension for checkpointing:
// at a marker boundary (a consistent cut — every operator has fully
// processed the same prefix of blocks) an instance serializes its
// state, and a fresh instance can be restored from it. Serialization
// goes through gob with the instance's own concrete types, so the
// snapshot is an isolated copy: mutating the live instance afterwards
// cannot corrupt it, exactly as a checkpoint written to stable
// storage behaves.
//
// The built-in templates implement Snapshotter; the execution engines
// (internal/microbatch) use it to implement marker-aligned
// checkpoint/restore.
type Snapshotter interface {
	// Snapshot writes the instance's state to the encoder.
	Snapshot(enc *gob.Encoder) error
	// Restore replaces the instance's state with a snapshot written by
	// Snapshot on an instance of the same operator.
	Restore(dec *gob.Decoder) error
}

// --- Stateless: trivially snapshotable (no state) ---------------------------

// Snapshot implements Snapshotter (stateless operators have nothing
// to save; the method exists so every template instance is uniformly
// checkpointable).
func (in *statelessInstance[K, V, L, W]) Snapshot(enc *gob.Encoder) error { return nil }

// Restore implements Snapshotter.
func (in *statelessInstance[K, V, L, W]) Restore(dec *gob.Decoder) error { return nil }

// --- KeyedOrdered ------------------------------------------------------------

// koSnap is the serialized form of a keyed-ordered instance.
type koSnap[K comparable, S any] struct {
	States map[K]S
	Keys   []K
}

// Snapshot implements Snapshotter.
func (in *keyedOrderedInstance[K, V, W, S]) Snapshot(enc *gob.Encoder) error {
	return enc.Encode(koSnap[K, S]{States: in.states, Keys: in.keys})
}

// Restore implements Snapshotter.
func (in *keyedOrderedInstance[K, V, W, S]) Restore(dec *gob.Decoder) error {
	var s koSnap[K, S]
	if err := dec.Decode(&s); err != nil {
		return err
	}
	in.states = s.States
	if in.states == nil {
		in.states = map[K]S{}
	}
	in.keys = s.Keys
	return nil
}

// --- KeyedUnordered ----------------------------------------------------------

// kuSnap is the serialized form of a keyed-unordered instance
// (Table 3's memory: per-key {agg, state}, key order, and startS).
type kuSnap[K comparable, S, A any] struct {
	Aggs   map[K]A
	States map[K]S
	Keys   []K
	StartS S
}

// Snapshot implements Snapshotter.
func (in *keyedUnorderedInstance[K, V, L, W, S, A]) Snapshot(enc *gob.Encoder) error {
	s := kuSnap[K, S, A]{
		Aggs:   make(map[K]A, len(in.stateMap)),
		States: make(map[K]S, len(in.stateMap)),
		Keys:   in.keys,
		StartS: in.startS,
	}
	for k, r := range in.stateMap {
		s.Aggs[k] = r.agg
		s.States[k] = r.state
	}
	return enc.Encode(s)
}

// Restore implements Snapshotter.
func (in *keyedUnorderedInstance[K, V, L, W, S, A]) Restore(dec *gob.Decoder) error {
	var s kuSnap[K, S, A]
	if err := dec.Decode(&s); err != nil {
		return err
	}
	in.stateMap = make(map[K]*kuRecord[S, A], len(s.States))
	for k, st := range s.States {
		in.stateMap[k] = &kuRecord[S, A]{agg: s.Aggs[k], state: st}
	}
	in.keys = s.Keys
	in.startS = s.StartS
	return nil
}

// --- Sort ---------------------------------------------------------------------

// sortSnap is the serialized form of a sort instance; at a marker
// boundary the buffers are empty, but mid-block checkpoints are
// supported for completeness.
type sortSnap[K comparable, V any] struct {
	Buf  map[K][]V
	Keys []K
}

// Snapshot implements Snapshotter.
func (in *sortInstance[K, V]) Snapshot(enc *gob.Encoder) error {
	return enc.Encode(sortSnap[K, V]{Buf: in.buf, Keys: in.keys})
}

// Restore implements Snapshotter.
func (in *sortInstance[K, V]) Restore(dec *gob.Decoder) error {
	var s sortSnap[K, V]
	if err := dec.Decode(&s); err != nil {
		return err
	}
	in.buf = s.Buf
	if in.buf == nil {
		in.buf = map[K][]V{}
	}
	in.keys = s.Keys
	return nil
}

// --- SlidingAggregate ----------------------------------------------------------

// slidingEntrySnap is one live window entry.
type slidingEntrySnap[A any] struct {
	Idx int64
	Val A
}

// slidingKeySnap is one key's window.
type slidingKeySnap[A any] struct {
	Cur     A
	Dirty   bool
	Entries []slidingEntrySnap[A]
}

// slidingSnap is the serialized form of a sliding-aggregate instance.
type slidingSnap[K comparable, A any] struct {
	Wins     map[K]slidingKeySnap[A]
	Keys     []K
	BlockIdx int64
}

// Snapshot implements Snapshotter.
func (in *slidingInstance[K, V, A]) Snapshot(enc *gob.Encoder) error {
	s := slidingSnap[K, A]{Wins: make(map[K]slidingKeySnap[A], len(in.wins)), Keys: in.keys, BlockIdx: in.blockIdx}
	for k, w := range in.wins {
		ks := slidingKeySnap[A]{Cur: w.cur, Dirty: w.dirty}
		// Live entries in FIFO order: front stack top-down, then back
		// stack bottom-up.
		for i := len(w.fifo.front) - 1; i >= 0; i-- {
			ks.Entries = append(ks.Entries, slidingEntrySnap[A]{Idx: w.fifo.front[i].idx, Val: w.fifo.front[i].val})
		}
		for _, e := range w.fifo.back {
			ks.Entries = append(ks.Entries, slidingEntrySnap[A]{Idx: e.idx, Val: e.val})
		}
		s.Wins[k] = ks
	}
	return enc.Encode(s)
}

// Restore implements Snapshotter.
func (in *slidingInstance[K, V, A]) Restore(dec *gob.Decoder) error {
	var s slidingSnap[K, A]
	if err := dec.Decode(&s); err != nil {
		return err
	}
	in.wins = make(map[K]*keyWindow[A], len(s.Wins))
	for k, ks := range s.Wins {
		w := &keyWindow[A]{cur: ks.Cur, dirty: ks.Dirty, fifo: newFifoAgg(in.op.ID, in.op.Combine)}
		for _, e := range ks.Entries {
			w.fifo.Push(e.Idx, e.Val)
		}
		in.wins[k] = w
	}
	in.keys = s.Keys
	in.blockIdx = s.BlockIdx
	return nil
}

// CanSnapshot reports whether an instance supports checkpointing.
// Execution engines use it to decide, before deployment, whether an
// operator can participate in marker-cut recovery.
func CanSnapshot(inst Instance) bool {
	_, ok := inst.(Snapshotter)
	return ok
}

// SnapshotInstance serializes an instance's state, returning nil
// bytes for instances that do not support checkpointing.
func SnapshotInstance(inst Instance) ([]byte, error) {
	s, ok := inst.(Snapshotter)
	if !ok {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := s.Snapshot(gob.NewEncoder(&buf)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreInstance restores an instance from SnapshotInstance's bytes;
// nil bytes are a no-op.
func RestoreInstance(inst Instance, data []byte) error {
	if data == nil {
		return nil
	}
	s, ok := inst.(Snapshotter)
	if !ok {
		return nil
	}
	return s.Restore(gob.NewDecoder(bytes.NewReader(data)))
}
