package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file implements keyed-state re-sharding for elastic rescaling.
// The paper's parallelizability theorems (§4) make an operator's
// output trace invariant under the degree of parallelism, so the
// degree is safe to change at runtime — provided the change happens at
// a consistent marker cut and the per-key state moves to the key's new
// HASH owner. Reshard is the state-movement half of that contract: it
// takes the old instance set's snapshots (as produced by Snapshotter
// at a cut), merges them, and re-partitions every key onto the new
// instance set per the owner function the runtime derives from its
// partitioning hash.
//
// The merge is deterministic: old instances are visited in instance
// order and each instance's keys in its recorded key order, so the new
// snapshots — key order included — are a pure function of the old
// ones. Per-instance scalars that are functions of the marker count
// alone (KeyedUnordered's startS, SlidingAggregate's blockIdx) are
// identical across instances at a cut and are taken from the first old
// snapshot.

// Resharder is the optional Instance extension for elastic rescaling:
// given the snapshots of a component's old instances (taken at one
// consistent marker cut), Reshard produces newPar snapshots with every
// key's state placed on the instance owner(key) selects. The receiver
// only supplies the operator's concrete types; it is not read or
// mutated. All built-in templates implement Resharder.
type Resharder interface {
	Snapshotter
	Reshard(old [][]byte, newPar int, owner func(key any) int) ([][]byte, error)
}

// CanReshard reports whether an instance supports keyed-state
// re-sharding.
func CanReshard(inst Instance) bool {
	_, ok := inst.(Resharder)
	return ok
}

// ReshardInstanceSnapshots re-partitions a component's instance
// snapshots via the probe instance's Resharder implementation.
func ReshardInstanceSnapshots(inst Instance, old [][]byte, newPar int, owner func(key any) int) ([][]byte, error) {
	r, ok := inst.(Resharder)
	if !ok {
		return nil, fmt.Errorf("core: instance %T does not support re-sharding", inst)
	}
	if newPar < 1 {
		return nil, fmt.Errorf("core: re-sharding to parallelism %d", newPar)
	}
	return r.Reshard(old, newPar, owner)
}

// checkOwner validates one owner assignment.
func checkOwner(j, newPar int, key any) error {
	if j < 0 || j >= newPar {
		return fmt.Errorf("core: owner(%v) = %d out of range [0,%d)", key, j, newPar)
	}
	return nil
}

// encodeSnaps gob-encodes one value per new instance.
func encodeSnaps[T any](outs []T) ([][]byte, error) {
	blobs := make([][]byte, len(outs))
	for j := range outs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(outs[j]); err != nil {
			return nil, err
		}
		blobs[j] = buf.Bytes()
	}
	return blobs, nil
}

// decodeSnap decodes one old-instance blob; empty blobs (an instance
// that held no state) yield ok=false.
func decodeSnap[T any](blob []byte, into *T) (bool, error) {
	if len(blob) == 0 {
		return false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(into); err != nil {
		return false, err
	}
	return true, nil
}

// --- Stateless ---------------------------------------------------------------

// Reshard implements Resharder: stateless instances carry no state, so
// the new instances start empty.
func (in *statelessInstance[K, V, L, W]) Reshard(old [][]byte, newPar int, owner func(any) int) ([][]byte, error) {
	return make([][]byte, newPar), nil
}

// --- KeyedOrdered ------------------------------------------------------------

// Reshard implements Resharder.
func (in *keyedOrderedInstance[K, V, W, S]) Reshard(old [][]byte, newPar int, owner func(any) int) ([][]byte, error) {
	outs := make([]koSnap[K, S], newPar)
	for j := range outs {
		outs[j].States = map[K]S{}
	}
	for _, blob := range old {
		var s koSnap[K, S]
		ok, err := decodeSnap(blob, &s)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		for _, k := range s.Keys {
			j := owner(k)
			if err := checkOwner(j, newPar, k); err != nil {
				return nil, err
			}
			outs[j].Keys = append(outs[j].Keys, k)
			outs[j].States[k] = s.States[k]
		}
	}
	return encodeSnaps(outs)
}

// --- KeyedUnordered ----------------------------------------------------------

// Reshard implements Resharder. startS is a function of the marker
// count alone (it advances once per marker on every instance), so at a
// consistent cut it is identical across instances and every new
// instance inherits it from the first old snapshot.
func (in *keyedUnorderedInstance[K, V, L, W, S, A]) Reshard(old [][]byte, newPar int, owner func(any) int) ([][]byte, error) {
	outs := make([]kuSnap[K, S, A], newPar)
	for j := range outs {
		outs[j].Aggs = map[K]A{}
		outs[j].States = map[K]S{}
	}
	seeded := false
	for _, blob := range old {
		var s kuSnap[K, S, A]
		ok, err := decodeSnap(blob, &s)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if !seeded {
			seeded = true
			for j := range outs {
				outs[j].StartS = s.StartS
			}
		}
		for _, k := range s.Keys {
			j := owner(k)
			if err := checkOwner(j, newPar, k); err != nil {
				return nil, err
			}
			outs[j].Keys = append(outs[j].Keys, k)
			outs[j].Aggs[k] = s.Aggs[k]
			outs[j].States[k] = s.States[k]
		}
	}
	return encodeSnaps(outs)
}

// --- Sort --------------------------------------------------------------------

// Reshard implements Resharder. At a marker cut the sort buffers are
// empty (SORT drains at every marker), but mid-block buffers move with
// their keys for completeness, matching Snapshot.
func (in *sortInstance[K, V]) Reshard(old [][]byte, newPar int, owner func(any) int) ([][]byte, error) {
	outs := make([]sortSnap[K, V], newPar)
	for j := range outs {
		outs[j].Buf = map[K][]V{}
	}
	for _, blob := range old {
		var s sortSnap[K, V]
		ok, err := decodeSnap(blob, &s)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		for _, k := range s.Keys {
			j := owner(k)
			if err := checkOwner(j, newPar, k); err != nil {
				return nil, err
			}
			outs[j].Keys = append(outs[j].Keys, k)
			outs[j].Buf[k] = s.Buf[k]
		}
	}
	return encodeSnaps(outs)
}

// --- SlidingAggregate --------------------------------------------------------

// Reshard implements Resharder. blockIdx counts markers, so like
// KeyedUnordered's startS it is identical across instances at a cut
// and comes from the first old snapshot.
func (in *slidingInstance[K, V, A]) Reshard(old [][]byte, newPar int, owner func(any) int) ([][]byte, error) {
	outs := make([]slidingSnap[K, A], newPar)
	for j := range outs {
		outs[j].Wins = map[K]slidingKeySnap[A]{}
	}
	seeded := false
	for _, blob := range old {
		var s slidingSnap[K, A]
		ok, err := decodeSnap(blob, &s)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if !seeded {
			seeded = true
			for j := range outs {
				outs[j].BlockIdx = s.BlockIdx
			}
		}
		for _, k := range s.Keys {
			j := owner(k)
			if err := checkOwner(j, newPar, k); err != nil {
				return nil, err
			}
			outs[j].Keys = append(outs[j].Keys, k)
			outs[j].Wins[k] = s.Wins[k]
		}
	}
	return encodeSnaps(outs)
}
