// Package core implements the paper's primary contribution (section
// 4): the typed programming model for distributed stream processing.
// It provides the three operator templates of Table 1 (OpStateless,
// OpKeyedOrdered, OpKeyedUnordered) as Go generics, the built-in
// merge / split / sort elements, transduction DAGs with data-trace
// type checking, a sequential reference evaluator that computes a
// DAG's denotation, and a simulated parallel deployment evaluator
// that exercises the semantics-preserving parallelization rewrites of
// Theorem 4.3 and Corollary 4.4.
package core

import (
	"datatrace/internal/stream"
)

// ParMode says how an operator may be replicated without changing the
// DAG's semantics (Theorem 4.3).
type ParMode int

const (
	// ParNone forbids replication: the operator must run as a single
	// instance (e.g. an operator whose state spans keys).
	ParNone ParMode = iota
	// ParKeyed allows replication behind a key-hash splitter: keyed
	// operators compute independently per key.
	ParKeyed
	// ParAny allows replication behind any splitter (round-robin
	// included): stateless operators commute with arbitrary splits.
	ParAny
)

// String renders the mode.
func (m ParMode) String() string {
	switch m {
	case ParKeyed:
		return "keyed"
	case ParAny:
		return "any"
	default:
		return "none"
	}
}

// Instance is one running copy of an operator. Instances are used by
// a single goroutine at a time: the sequential evaluator or one storm
// executor. User code never emits markers; the instance forwards each
// input marker exactly once after its onMarker logic runs, which is
// how the compiler keeps marker propagation automatic (section 5).
type Instance interface {
	// Next consumes one event and emits any number of output events.
	Next(e stream.Event, emit func(stream.Event))
}

// Operator is a typed processing vertex: the object a template
// produces and a DAG consumes. Operators are immutable descriptions;
// each call to New yields an independent instance, so one Operator
// can be deployed at any parallelism.
type Operator interface {
	// Name identifies the operator in error messages and topologies.
	Name() string
	// InType and OutType are the data-trace types of the operator's
	// input and output channels.
	InType() stream.Type
	OutType() stream.Type
	// Mode reports the sound parallelization discipline.
	Mode() ParMode
	// New creates a fresh instance with initial state.
	New() Instance
	// Validate checks that the template's configuration is complete
	// and its types follow the template's typing rule.
	Validate() error
}
