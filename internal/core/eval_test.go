package core

import (
	"math/rand"
	"testing"

	"datatrace/internal/stream"
)

func TestEvalFigure2Pipeline(t *testing.T) {
	d, _ := figure2DAG()
	in := []stream.Event{
		stream.Item(2, 10), stream.Item(3, 99), stream.Item(2, 5), stream.Item(4, 1),
		mk(0, 1),
		stream.Item(2, 7), mk(1, 2),
	}
	out, err := d.Eval(map[string][]stream.Event{"source": in})
	if err != nil {
		t.Fatal(err)
	}
	got := out["printer"]
	// Block 0: key2 → 15, key4 → 1 (key 3 filtered). Block 1: key2 → 7, key4 → 0.
	want := []stream.Event{
		stream.Item(2, 15), stream.Item(4, 1), mk(0, 1),
		stream.Item(2, 7), stream.Item(4, 0), mk(1, 2),
	}
	if !stream.Equivalent(stream.U("Int", "Int"), got, want) {
		t.Fatalf("got %s want %s", stream.Render(got), stream.Render(want))
	}
}

func TestEvalFailsOnIllTypedDAG(t *testing.T) {
	d := NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	d.Sink("sink", d.Op(runningSum(), 1, src))
	if _, err := d.Eval(nil); err == nil {
		t.Fatal("Eval must refuse an ill-typed DAG")
	}
}

// TestCorollary4_4_DeploymentEquivalence is the executable Corollary
// 4.4: for a type-checked DAG, the deployed evaluation (splitters,
// replicas and merges inserted per parallelism hints) is equivalent
// to the reference denotation, for random inputs and hints.
func TestCorollary4_4_DeploymentEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		d, _ := figure2DAG()
		in := randomStream(r, 1+r.Intn(5), 10, 6)
		ref, err := d.Eval(map[string][]stream.Event{"source": in})
		if err != nil {
			t.Fatal(err)
		}
		dep, err := d.EvalDeployed(map[string][]stream.Event{"source": in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.EquivalentOutputs(ref, dep); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestCorollary4_4_SortPipeline deploys a U → SORT → keyed-ordered
// pipeline (the Example 4.1 shape) in parallel and checks equivalence.
func TestCorollary4_4_SortPipeline(t *testing.T) {
	build := func() *DAG {
		d := NewDAG()
		src := d.Source("hub", stream.U("Int", "Int"))
		srt := d.Op(&Sort[int, int]{
			OpName: "SORT", In: stream.U("Int", "Int"), Out: stream.O("Int", "Int"),
			Less: func(a, b int) bool { return a < b },
		}, 3, src)
		rs := d.Op(runningSum(), 2, srt)
		d.Sink("sink", rs)
		return d
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		d := build()
		in := randomStream(r, 1+r.Intn(4), 8, 5)
		ref, err := d.Eval(map[string][]stream.Event{"hub": in})
		if err != nil {
			t.Fatal(err)
		}
		dep, err := d.EvalDeployed(map[string][]stream.Event{"hub": in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.EquivalentOutputs(ref, dep); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSection2NaiveParallelizationBreaksSemantics reproduces the
// motivating example: replicating an order-sensitive stage behind a
// round-robin splitter (what a grouping-oblivious system does) changes
// the output, while the typed deployment does not. The order-sensitive
// stage here emits the running per-key sum, whose value depends on the
// per-key arrival order.
func TestSection2NaiveParallelizationBreaksSemantics(t *testing.T) {
	// An input whose per-key order matters: key 1 sees 10 then 1.
	in := []stream.Event{
		stream.Item(1, 10), stream.Item(1, 1), stream.Item(1, 5), stream.Item(1, 2),
		mk(0, 1),
	}
	ref := RunInstance(runningSum(), in)

	// Naive deployment: round-robin split (breaks per-key order), run
	// replicas, merge. This is unsound for keyed-ordered operators —
	// exactly the transformation section 2 warns about.
	parts := stream.SplitRoundRobin(in, 2)
	naive := stream.MergeEvents(RunInstance(runningSum(), parts[0]), RunInstance(runningSum(), parts[1]))
	if stream.Equivalent(stream.O("Int", "Int"), ref, naive) {
		t.Fatal("expected the naive RR deployment to change the output trace")
	}

	// Typed deployment (HASH for keyed operators) preserves semantics.
	typed := RunParallel(runningSum(), in, 2, nil)
	if !stream.Equivalent(stream.O("Int", "Int"), ref, typed) {
		t.Fatalf("typed deployment changed semantics:\n ref %s\n got %s",
			stream.Render(ref), stream.Render(typed))
	}
}

func TestEvalMultiSourceMerge(t *testing.T) {
	d := NewDAG()
	s1 := d.Source("a", stream.U("Int", "Int"))
	s2 := d.Source("b", stream.U("Int", "Int"))
	sum := d.Op(sumPerKey(), 1, s1, s2)
	d.Sink("out", sum)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	inA := []stream.Event{stream.Item(1, 1), mk(0, 1)}
	inB := []stream.Event{stream.Item(1, 2), mk(0, 1)}
	out, err := d.Eval(map[string][]stream.Event{"a": inA, "b": inB})
	if err != nil {
		t.Fatal(err)
	}
	want := []stream.Event{stream.Item(1, 3), mk(0, 1)}
	if !stream.Equivalent(stream.U("Int", "Int"), out["out"], want) {
		t.Fatalf("got %s want %s", stream.Render(out["out"]), stream.Render(want))
	}
}

func TestEquivalentOutputsReportsSink(t *testing.T) {
	d, _ := figure2DAG()
	a := map[string][]stream.Event{"printer": {stream.Item(2, 1)}}
	b := map[string][]stream.Event{"printer": {stream.Item(2, 2)}}
	if err := d.EquivalentOutputs(a, b); err == nil {
		t.Fatal("differing outputs must be reported")
	}
	if err := d.EquivalentOutputs(a, a); err != nil {
		t.Fatal(err)
	}
}
