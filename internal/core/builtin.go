package core

import (
	"fmt"
	"sort"

	"datatrace/internal/stream"
)

// ---------------------------------------------------------------------------
// SORT: U(K,V) → O(K,V).
// ---------------------------------------------------------------------------

// Sort is the SORT< data-trace transduction of section 4: it converts
// an unordered trace of U(K,V) into an ordered trace of O(K,V) by
// imposing, for every key separately, the total order Less on the
// items between consecutive synchronization markers. Parallelizable
// by key (Theorem 4.3: SORT = HASH ≫ (SORT ∥ … ∥ SORT) ≫ MRG).
type Sort[K comparable, V any] struct {
	// OpName names the operator; "SORT" is customary.
	OpName string
	// In and Out describe the channel types (U in, O out, same K/V).
	In, Out stream.Type
	// Less is the strict total order imposed per key, typically "by
	// timestamp".
	Less func(a, b V) bool
}

// Name implements Operator.
func (s *Sort[K, V]) Name() string { return s.OpName }

// InType implements Operator.
func (s *Sort[K, V]) InType() stream.Type { return s.In }

// OutType implements Operator.
func (s *Sort[K, V]) OutType() stream.Type { return s.Out }

// Mode implements Operator.
func (s *Sort[K, V]) Mode() ParMode { return ParKeyed }

// IsSort marks the operator as a SORT vertex so the compiler can
// apply its sort-fusion rule.
func (s *Sort[K, V]) IsSort() bool { return true }

// Validate implements Operator.
func (s *Sort[K, V]) Validate() error {
	if s.OpName == "" {
		return fmt.Errorf("sort operator needs a name")
	}
	if s.Less == nil {
		return fmt.Errorf("%s: Less is required", s.OpName)
	}
	if s.In.Kind != stream.Unordered || s.Out.Kind != stream.Ordered {
		return fmt.Errorf("%s: SORT is typed U(K,V) → O(K,V), got %s → %s", s.OpName, s.In, s.Out)
	}
	if s.In.Key != s.Out.Key || s.In.Val != s.Out.Val {
		return fmt.Errorf("%s: SORT must preserve key and value types, got %s → %s", s.OpName, s.In, s.Out)
	}
	return nil
}

// New implements Operator.
func (s *Sort[K, V]) New() Instance {
	return &sortInstance[K, V]{op: s, buf: make(map[K][]V)}
}

type sortInstance[K comparable, V any] struct {
	op   *Sort[K, V]
	buf  map[K][]V
	keys []K
}

func (in *sortInstance[K, V]) Next(e stream.Event, emit func(stream.Event)) {
	if e.IsMarker {
		for _, key := range in.keys {
			vals := in.buf[key]
			sort.SliceStable(vals, func(i, j int) bool { return in.op.Less(vals[i], vals[j]) })
			for _, v := range vals {
				emit(stream.Item(key, v))
			}
			delete(in.buf, key)
		}
		in.keys = in.keys[:0]
		emit(e)
		return
	}
	key := castKey[K](in.op.OpName, e.Key)
	if _, ok := in.buf[key]; !ok {
		in.keys = append(in.keys, key)
	}
	in.buf[key] = append(in.buf[key], castVal[V](in.op.OpName, e.Value))
}

// RunInstance feeds a complete event sequence through a fresh
// instance of op and returns the produced output sequence — the
// sequential, single-copy execution whose trace is the operator's
// denotation on the input trace.
func RunInstance(op Operator, input []stream.Event) []stream.Event {
	inst := op.New()
	var out []stream.Event
	emit := func(e stream.Event) { out = append(out, e) }
	for _, e := range input {
		inst.Next(e, emit)
	}
	return out
}

// RunParallel deploys op at the given parallelism behind the splitter
// its mode allows (HASH for keyed operators, RR for stateless ones)
// and merges the instance outputs with marker alignment — the
// right-hand side of the Theorem 4.3 equations. It panics when the
// operator's mode forbids replication.
func RunParallel(op Operator, input []stream.Event, parallelism int, hash func(any) int) []stream.Event {
	if parallelism <= 1 {
		return RunInstance(op, input)
	}
	var parts [][]stream.Event
	switch op.Mode() {
	case ParAny:
		parts = stream.SplitRoundRobin(input, parallelism)
	case ParKeyed:
		parts = stream.SplitHash(input, parallelism, hash)
	default:
		panic(fmt.Sprintf("%s: operator mode %s cannot be parallelized", op.Name(), op.Mode()))
	}
	outs := make([][]stream.Event, parallelism)
	for i, part := range parts {
		outs[i] = RunInstance(op, part)
	}
	return stream.MergeEvents(outs...)
}
