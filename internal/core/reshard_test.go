package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"datatrace/internal/stream"
)

// splitmix is a tiny deterministic PRNG for test data (no ambient
// randomness: the same fuzz input must always build the same state).
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix) intn(n int) int { return int(r.next() % uint64(n)) }

// buildKeyedUnorderedShards runs a per-key sum operator at oldPar
// hash-partitioned instances over a deterministic workload (markers at
// every instance, a live open block at the end) and returns the
// instances' snapshots plus the expected per-key (state, agg) tables
// decoded back out of those snapshots — the ground truth a reshard
// must preserve exactly.
func buildKeyedUnorderedShards(t *testing.T, seed uint64, oldPar, nKeys, blocks int) (snaps [][]byte, wantState map[int]int, wantAgg map[int]int) {
	t.Helper()
	op := sumPerKey()
	insts := make([]Instance, oldPar)
	for i := range insts {
		insts[i] = op.New()
	}
	drop := func(stream.Event) {}
	rng := &splitmix{s: seed}
	for b := 0; b < blocks; b++ {
		n := rng.intn(4*(nKeys+1)) + 1
		for i := 0; i < n; i++ {
			k := rng.intn(nKeys + 1)
			v := rng.intn(100)
			insts[stream.DefaultHash(k)%oldPar].Next(stream.Item(k, v), drop)
		}
		// Leave the final block open: keys touched in it hold a live
		// aggregate alongside the committed state.
		if b == blocks-1 {
			break
		}
		m := stream.Mark(stream.Marker{Seq: int64(b), Timestamp: int64(b)})
		for _, in := range insts {
			in.Next(m, drop)
		}
	}
	snaps = make([][]byte, oldPar)
	wantState = map[int]int{}
	wantAgg = map[int]int{}
	for i, in := range insts {
		b, err := SnapshotInstance(in)
		if err != nil {
			t.Fatalf("snapshot instance %d: %v", i, err)
		}
		snaps[i] = b
		var s kuSnap[int, int, int]
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
			t.Fatalf("decoding old snapshot %d: %v", i, err)
		}
		for _, k := range s.Keys {
			if _, dup := wantState[k]; dup {
				t.Fatalf("key %d held by two old instances", k)
			}
			wantState[k] = s.States[k]
			wantAgg[k] = s.Aggs[k]
		}
	}
	return snaps, wantState, wantAgg
}

// checkKeyedUnorderedReshard asserts the partition-exactness property
// on a resharded snapshot set: the keyed-state multiset is preserved
// exactly (no key lost, none duplicated, values intact) and every key
// lands on its DefaultHash owner.
func checkKeyedUnorderedReshard(t *testing.T, newSnaps [][]byte, newPar int, wantState, wantAgg map[int]int) {
	t.Helper()
	if len(newSnaps) != newPar {
		t.Fatalf("reshard produced %d snapshots, want %d", len(newSnaps), newPar)
	}
	seen := map[int]int{}
	for j, blob := range newSnaps {
		var s kuSnap[int, int, int]
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
			t.Fatalf("decoding new snapshot %d: %v", j, err)
		}
		if len(s.Keys) != len(s.States) || len(s.Keys) != len(s.Aggs) {
			t.Fatalf("snapshot %d: %d keys vs %d states vs %d aggs", j, len(s.Keys), len(s.States), len(s.Aggs))
		}
		for _, k := range s.Keys {
			seen[k]++
			if owner := stream.DefaultHash(k) % newPar; owner != j {
				t.Fatalf("key %d landed on instance %d, its DefaultHash owner is %d", k, j, owner)
			}
			if got, want := s.States[k], wantState[k]; got != want {
				t.Fatalf("key %d: resharded state %d, want %d", k, got, want)
			}
			if got, want := s.Aggs[k], wantAgg[k]; got != want {
				t.Fatalf("key %d: resharded aggregate %d, want %d", k, got, want)
			}
		}
	}
	// Exactness: every key that ever held state appears exactly once.
	total := 0
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %d appears %d times across the new shards", k, n)
		}
		if _, ok := wantState[k]; !ok {
			if _, ok := wantAgg[k]; !ok {
				t.Fatalf("key %d appeared from nowhere", k)
			}
		}
		total++
	}
	want := map[int]bool{}
	for k := range wantState {
		want[k] = true
	}
	for k := range wantAgg {
		want[k] = true
	}
	if total != len(want) {
		t.Fatalf("resharded shards hold %d keys, want %d", total, len(want))
	}
}

// TestReshardPartitionExactness is the property test across arbitrary
// old→new parallelism pairs: re-sharding preserves the keyed-state
// multiset exactly and places every key on its DefaultHash owner.
func TestReshardPartitionExactness(t *testing.T) {
	probe := sumPerKey().New()
	for _, tc := range []struct{ oldPar, newPar int }{
		{1, 1}, {1, 4}, {2, 3}, {3, 2}, {4, 1}, {4, 8}, {8, 3}, {5, 5},
	} {
		snaps, wantState, wantAgg := buildKeyedUnorderedShards(t, uint64(tc.oldPar*31+tc.newPar), tc.oldPar, 40, 4)
		owner := func(k any) int { return stream.DefaultHash(k) % tc.newPar }
		newSnaps, err := ReshardInstanceSnapshots(probe, snaps, tc.newPar, owner)
		if err != nil {
			t.Fatalf("%d→%d: %v", tc.oldPar, tc.newPar, err)
		}
		checkKeyedUnorderedReshard(t, newSnaps, tc.newPar, wantState, wantAgg)
	}
}

// TestReshardKeyedOrdered covers the ordered template: per-key states
// move intact to their owners.
func TestReshardKeyedOrdered(t *testing.T) {
	op := runningSum()
	const oldPar, newPar = 3, 5
	insts := make([]Instance, oldPar)
	for i := range insts {
		insts[i] = op.New()
	}
	drop := func(stream.Event) {}
	want := map[int]int{}
	rng := &splitmix{s: 7}
	for i := 0; i < 200; i++ {
		k, v := rng.intn(25), rng.intn(50)
		want[k] += v
		insts[stream.DefaultHash(k)%oldPar].Next(stream.Item(k, v), drop)
	}
	snaps := make([][]byte, oldPar)
	for i, in := range insts {
		b, err := SnapshotInstance(in)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = b
	}
	newSnaps, err := ReshardInstanceSnapshots(op.New(), snaps, newPar, func(k any) int { return stream.DefaultHash(k) % newPar })
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for j, blob := range newSnaps {
		var s koSnap[int, int]
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
			t.Fatal(err)
		}
		for _, k := range s.Keys {
			seen[k]++
			if stream.DefaultHash(k)%newPar != j {
				t.Fatalf("key %d on wrong owner %d", k, j)
			}
			if s.States[k] != want[k] {
				t.Fatalf("key %d: state %d, want %d", k, s.States[k], want[k])
			}
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("resharded %d keys, want %d", len(seen), len(want))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %d duplicated %d times", k, n)
		}
	}
}

// TestReshardSlidingAggregate covers the sliding-window template:
// window contents move with their keys and blockIdx survives.
func TestReshardSlidingAggregate(t *testing.T) {
	op := &SlidingAggregate[int, int, int]{
		OpName:       "slide",
		InT:          stream.U("Int", "Int"),
		OutT:         stream.U("Int", "Int"),
		WindowBlocks: 3,
		In:           func(k, v int) int { return v },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
	}
	const oldPar, newPar = 2, 4
	insts := make([]Instance, oldPar)
	for i := range insts {
		insts[i] = op.New()
	}
	drop := func(stream.Event) {}
	rng := &splitmix{s: 11}
	for b := 0; b < 4; b++ {
		for i := 0; i < 60; i++ {
			k, v := rng.intn(12), rng.intn(9)
			insts[stream.DefaultHash(k)%oldPar].Next(stream.Item(k, v), drop)
		}
		m := stream.Mark(stream.Marker{Seq: int64(b), Timestamp: int64(b)})
		for _, in := range insts {
			in.Next(m, drop)
		}
	}
	snaps := make([][]byte, oldPar)
	oldWins := map[int]slidingKeySnap[int]{}
	var oldBlock int64
	for i, in := range insts {
		b, err := SnapshotInstance(in)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = b
		var s slidingSnap[int, int]
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
			t.Fatal(err)
		}
		for k, w := range s.Wins {
			oldWins[k] = w
		}
		oldBlock = s.BlockIdx
	}
	newSnaps, err := ReshardInstanceSnapshots(op.New(), snaps, newPar, func(k any) int { return stream.DefaultHash(k) % newPar })
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for j, blob := range newSnaps {
		var s slidingSnap[int, int]
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
			t.Fatal(err)
		}
		if s.BlockIdx != oldBlock {
			t.Fatalf("shard %d: blockIdx %d, want %d", j, s.BlockIdx, oldBlock)
		}
		for _, k := range s.Keys {
			seen++
			if stream.DefaultHash(k)%newPar != j {
				t.Fatalf("key %d on wrong owner %d", k, j)
			}
			w, ok := oldWins[k]
			if !ok {
				t.Fatalf("key %d appeared from nowhere", k)
			}
			got := s.Wins[k]
			if got.Cur != w.Cur || got.Dirty != w.Dirty || len(got.Entries) != len(w.Entries) {
				t.Fatalf("key %d: window changed across reshard", k)
			}
		}
	}
	if seen != len(oldWins) {
		t.Fatalf("resharded %d keys, want %d", seen, len(oldWins))
	}
}

// TestReshardErrors pins the failure modes: a non-resharding instance,
// a bad target parallelism, an out-of-range owner.
func TestReshardErrors(t *testing.T) {
	probe := sumPerKey().New()
	snaps, _, _ := buildKeyedUnorderedShards(t, 3, 2, 10, 3)
	if _, err := ReshardInstanceSnapshots(probe, snaps, 0, func(any) int { return 0 }); err == nil {
		t.Fatal("reshard to parallelism 0 succeeded")
	}
	if _, err := ReshardInstanceSnapshots(probe, snaps, 2, func(any) int { return 5 }); err == nil {
		t.Fatal("out-of-range owner not rejected")
	}
	var notReshardable Instance = opaqueInstance{}
	if _, err := ReshardInstanceSnapshots(notReshardable, snaps, 2, func(any) int { return 0 }); err == nil {
		t.Fatal("non-Resharder instance accepted")
	}
}

// opaqueInstance is an Instance without the Resharder extension.
type opaqueInstance struct{}

func (opaqueInstance) Next(e stream.Event, emit func(stream.Event)) {}

// FuzzReshardKeyedState fuzzes the partition-exactness property over
// arbitrary old→new parallelism pairs, key populations and workloads:
// whatever the shapes, the keyed-state multiset must be preserved
// exactly and every key must land on its DefaultHash owner.
func FuzzReshardKeyedState(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(2), uint8(10))
	f.Add(uint64(2), uint8(4), uint8(2), uint8(50))
	f.Add(uint64(3), uint8(2), uint8(7), uint8(0))
	f.Add(uint64(42), uint8(8), uint8(8), uint8(200))
	f.Add(uint64(99), uint8(16), uint8(1), uint8(33))
	f.Fuzz(func(t *testing.T, seed uint64, oldRaw, newRaw, keysRaw uint8) {
		oldPar := int(oldRaw)%16 + 1
		newPar := int(newRaw)%16 + 1
		nKeys := int(keysRaw)
		snaps, wantState, wantAgg := buildKeyedUnorderedShards(t, seed, oldPar, nKeys, 3)
		probe := sumPerKey().New()
		owner := func(k any) int { return stream.DefaultHash(k) % newPar }
		newSnaps, err := ReshardInstanceSnapshots(probe, snaps, newPar, owner)
		if err != nil {
			t.Fatalf("%d→%d: %v", oldPar, newPar, err)
		}
		checkKeyedUnorderedReshard(t, newSnaps, newPar, wantState, wantAgg)
	})
}
