package core

import (
	"fmt"

	"datatrace/internal/stream"
)

// Eval computes the DAG's denotation on the given inputs: every
// operator runs as a single sequential instance, multi-input nodes
// merge their channels with marker alignment, and the result maps
// each sink name to its output event sequence. This is the reference
// semantics that every deployment — EvalDeployed here, and the
// distributed execution in internal/storm — must match up to trace
// equivalence (Corollary 4.4).
//
// inputs maps source names to their event sequences; a missing source
// gets an empty stream.
func (d *DAG) Eval(inputs map[string][]stream.Event) (map[string][]stream.Event, error) {
	return d.eval(inputs, false, nil)
}

// EvalDeployed evaluates the DAG with every operator's parallelism
// hint applied: each operator with hint p > 1 is replicated p times
// behind the splitter its mode permits (RR for stateless, HASH for
// keyed) and the replica outputs are merged on markers — the
// deployment of Figure 1 and Corollary 4.4, executed deterministically
// in-process. Passing hash = nil uses DefaultHash.
func (d *DAG) EvalDeployed(inputs map[string][]stream.Event, hash func(any) int) (map[string][]stream.Event, error) {
	return d.eval(inputs, true, hash)
}

func (d *DAG) eval(inputs map[string][]stream.Event, deployed bool, hash func(any) int) (map[string][]stream.Event, error) {
	if err := d.Check(); err != nil {
		return nil, err
	}
	values := make(map[int][]stream.Event, len(d.nodes))
	outputs := map[string][]stream.Event{}
	for _, n := range d.nodes {
		switch n.Kind {
		case SourceNode:
			values[n.ID] = inputs[n.Name]
		case OpNode:
			ins := make([][]stream.Event, len(n.Inputs))
			for i, in := range n.Inputs {
				ins[i] = values[in.ID]
			}
			merged := stream.MergeEvents(ins...)
			par := 1
			if deployed {
				par = n.Parallelism
			}
			values[n.ID] = RunParallel(n.Op, merged, par, hash)
		case SinkNode:
			out := values[n.Inputs[0].ID]
			values[n.ID] = out
			outputs[n.Name] = out
		}
	}
	return outputs, nil
}

// EquivalentOutputs reports whether two evaluation results agree as
// data traces at every sink of the DAG, comparing each sink's streams
// under the sink's channel type.
func (d *DAG) EquivalentOutputs(a, b map[string][]stream.Event) error {
	for _, sink := range d.Sinks() {
		x, y := a[sink.Name], b[sink.Name]
		if !stream.Equivalent(sink.Type, x, y) {
			return fmt.Errorf("sink %s outputs differ as traces of %s:\n  %s\n  %s",
				sink.Name, sink.Type, stream.Render(x), stream.Render(y))
		}
	}
	return nil
}
