package core

import (
	"math/rand"
	"testing"

	"datatrace/internal/stream"
)

// randomStream builds a random U(int,int) stream with nBlocks blocks.
func randomStream(r *rand.Rand, nBlocks, maxPerBlock, keys int) []stream.Event {
	var out []stream.Event
	ts := int64(0)
	for b := 0; b < nBlocks; b++ {
		n := r.Intn(maxPerBlock + 1)
		for i := 0; i < n; i++ {
			out = append(out, stream.Item(r.Intn(keys), r.Intn(100)))
		}
		ts += 10
		out = append(out, stream.Mark(stream.Marker{Seq: int64(b), Timestamp: ts}))
	}
	return out
}

func TestMergeAlignsOnMarkers(t *testing.T) {
	a := []stream.Event{stream.Item(1, 1), mk(0, 10), stream.Item(1, 2), mk(1, 20)}
	b := []stream.Event{stream.Item(2, 9), mk(0, 10), mk(1, 20)}
	out := stream.MergeEvents(a, b)
	// Block 0 must contain {1:1, 2:9} then one marker, block 1 {1:2}.
	want := []stream.Event{
		stream.Item(1, 1), stream.Item(2, 9), mk(0, 10),
		stream.Item(1, 2), mk(1, 20),
	}
	if !stream.Equivalent(stream.U("Int", "Int"), out, want) {
		t.Fatalf("got %s want %s", stream.Render(out), stream.Render(want))
	}
	// Exactly one marker per block.
	markers := 0
	for _, e := range out {
		if e.IsMarker {
			markers++
		}
	}
	if markers != 2 {
		t.Fatalf("merged stream has %d markers, want 2", markers)
	}
}

func TestMergeSingleInputIsIdentity(t *testing.T) {
	a := []stream.Event{stream.Item(1, 1), mk(0, 10)}
	out := stream.MergeEvents(a)
	if !stream.Equivalent(stream.U("Int", "Int"), out, a) {
		t.Fatalf("got %s", stream.Render(out))
	}
}

func TestMergeKeepsTrailingItems(t *testing.T) {
	a := []stream.Event{mk(0, 10), stream.Item(1, 1)}
	b := []stream.Event{mk(0, 10), stream.Item(2, 2)}
	out := stream.MergeEvents(a, b)
	items := 0
	for _, e := range out {
		if !e.IsMarker {
			items++
		}
	}
	if items != 2 {
		t.Fatalf("trailing items lost: %s", stream.Render(out))
	}
}

func TestMergeStreamStateRunAhead(t *testing.T) {
	// Feed one channel completely before the other; blocks must still
	// align by sequence number.
	m := stream.NewMergeState(2)
	var out []stream.Event
	emit := func(e stream.Event) { out = append(out, e) }
	fast := []stream.Event{stream.Item(1, 1), mk(0, 10), stream.Item(1, 2), mk(1, 20)}
	slow := []stream.Event{stream.Item(2, 9), mk(0, 10), stream.Item(2, 8), mk(1, 20)}
	for _, e := range fast {
		m.Next(0, e, emit)
	}
	for _, e := range slow {
		m.Next(1, e, emit)
	}
	want := []stream.Event{
		stream.Item(1, 1), stream.Item(2, 9), mk(0, 10),
		stream.Item(1, 2), stream.Item(2, 8), mk(1, 20),
	}
	if !stream.Equivalent(stream.U("Int", "Int"), out, want) {
		t.Fatalf("got %s want %s", stream.Render(out), stream.Render(want))
	}
}

func TestSplittersAreSplitters(t *testing.T) {
	// SPLIT ≫ MRG must be the identity transduction (the defining
	// property of a splitter in section 4).
	r := rand.New(rand.NewSource(21))
	typ := stream.U("Int", "Int")
	for trial := 0; trial < 50; trial++ {
		in := randomStream(r, 1+r.Intn(4), 6, 4)
		for n := 1; n <= 4; n++ {
			rr := stream.MergeEvents(stream.SplitRoundRobin(in, n)...)
			if !stream.Equivalent(typ, rr, in) {
				t.Fatalf("RR%d ≫ MRG ≠ id on %s: got %s", n, stream.Render(in), stream.Render(rr))
			}
			hs := stream.MergeEvents(stream.SplitHash(in, n, nil)...)
			if !stream.Equivalent(typ, hs, in) {
				t.Fatalf("HASH%d ≫ MRG ≠ id on %s: got %s", n, stream.Render(in), stream.Render(hs))
			}
		}
	}
}

func TestHashSplitterPreservesPerKeyOrder(t *testing.T) {
	in := []stream.Event{
		stream.Item(1, 1), stream.Item(2, 1), stream.Item(1, 2), mk(0, 10),
	}
	parts := stream.SplitHash(in, 3, nil)
	for _, part := range parts {
		var k1 []int
		for _, e := range part {
			if !e.IsMarker && e.Key == 1 {
				k1 = append(k1, e.Value.(int))
			}
		}
		for i := 1; i < len(k1); i++ {
			if k1[i-1] > k1[i] {
				t.Fatalf("per-key order broken in partition: %v", k1)
			}
		}
	}
	// All items with one key land in one partition.
	found := -1
	for pi, part := range parts {
		for _, e := range part {
			if !e.IsMarker && e.Key == 1 {
				if found >= 0 && found != pi {
					t.Fatal("key 1 split across partitions")
				}
				found = pi
			}
		}
	}
}

func TestSplittersBroadcastMarkers(t *testing.T) {
	in := []stream.Event{mk(0, 10), mk(1, 20)}
	for _, parts := range [][][]stream.Event{stream.SplitRoundRobin(in, 3), stream.SplitHash(in, 3, nil)} {
		for ch, part := range parts {
			if len(part) != 2 || !part[0].IsMarker || !part[1].IsMarker {
				t.Fatalf("channel %d missing broadcast markers: %s", ch, stream.Render(part))
			}
		}
	}
}

func TestSortImposesPerKeyOrder(t *testing.T) {
	srt := &Sort[int, int]{
		OpName: "SORT",
		In:     stream.U("Int", "Int"),
		Out:    stream.O("Int", "Int"),
		Less:   func(a, b int) bool { return a < b },
	}
	in := []stream.Event{
		stream.Item(1, 30), stream.Item(2, 5), stream.Item(1, 10), mk(0, 10),
		stream.Item(1, 2), stream.Item(1, 1), mk(1, 20),
	}
	out := RunInstance(srt, in)
	want := []stream.Event{
		stream.Item(1, 10), stream.Item(1, 30), stream.Item(2, 5), mk(0, 10),
		stream.Item(1, 1), stream.Item(1, 2), mk(1, 20),
	}
	if !stream.Equivalent(stream.O("Int", "Int"), out, want) {
		t.Fatalf("got %s want %s", stream.Render(out), stream.Render(want))
	}
}

func TestTheorem4_2_Sort(t *testing.T) {
	srt := &Sort[int, int]{
		OpName: "SORT",
		In:     stream.U("Int", "Int"),
		Out:    stream.O("Int", "Int"),
		Less:   func(a, b int) bool { return a < b },
	}
	in := []stream.Event{
		stream.Item(1, 30), stream.Item(2, 5), stream.Item(1, 10), mk(0, 10),
		stream.Item(2, 1), stream.Item(1, 4), mk(1, 20),
	}
	checkConsistent(t, srt, in, 800)
}

// TestTheorem4_3_Parallelization checks the paper's equations:
//
//	MRG ≫ β = (β ∥ … ∥ β) ≫ MRG            (stateless)
//	γ = HASH ≫ (γ ∥ … ∥ γ) ≫ MRG           (keyed ordered)
//	δ = HASH ≫ (δ ∥ … ∥ δ) ≫ MRG           (keyed unordered)
//	SORT = HASH ≫ (SORT ∥ … ∥ SORT) ≫ MRG
func TestTheorem4_3_Parallelization(t *testing.T) {
	ops := []struct {
		name string
		mk   func() Operator
		out  stream.Type
	}{
		{"stateless", evenFilter, stream.U("Int", "Int")},
		{"keyedOrdered", runningSum, stream.O("Int", "Int")},
		{"keyedUnordered", sumPerKey, stream.U("Int", "Int")},
		{"sort", func() Operator {
			return &Sort[int, int]{
				OpName: "SORT", In: stream.U("Int", "Int"), Out: stream.O("Int", "Int"),
				Less: func(a, b int) bool { return a < b },
			}
		}, stream.O("Int", "Int")},
	}
	r := rand.New(rand.NewSource(42))
	for _, tc := range ops {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				in := randomStream(r, 1+r.Intn(4), 8, 5)
				if tc.name == "keyedOrdered" {
					// The ordered operator's input must arrive ordered
					// per key; the random stream already is (values in
					// emission order), fine as-is.
					_ = in
				}
				ref := RunInstance(tc.mk(), in)
				for par := 2; par <= 4; par++ {
					got := RunParallel(tc.mk(), in, par, nil)
					if !stream.Equivalent(tc.out, ref, got) {
						t.Fatalf("parallelism %d changed semantics:\n in  %s\n ref %s\n got %s",
							par, stream.Render(in), stream.Render(ref), stream.Render(got))
					}
				}
			}
		})
	}
}

func TestRunParallelRejectsUnsplittable(t *testing.T) {
	op := &unsplittableOp{}
	defer func() {
		if recover() == nil {
			t.Fatal("RunParallel must panic for ParNone operators")
		}
	}()
	RunParallel(op, nil, 2, nil)
}

// unsplittableOp is a minimal ParNone operator for negative tests.
type unsplittableOp struct{}

func (o *unsplittableOp) Name() string         { return "global" }
func (o *unsplittableOp) InType() stream.Type  { return stream.U("K", "V") }
func (o *unsplittableOp) OutType() stream.Type { return stream.U("K", "V") }
func (o *unsplittableOp) Mode() ParMode        { return ParNone }
func (o *unsplittableOp) Validate() error      { return nil }
func (o *unsplittableOp) New() Instance        { return passThrough{} }

type passThrough struct{}

func (passThrough) Next(e stream.Event, emit func(stream.Event)) { emit(e) }

func TestDefaultHashIsDeterministicAndNonNegative(t *testing.T) {
	for _, k := range []any{1, "abc", 3.5, stream.Unit{}} {
		a, b := stream.DefaultHash(k), stream.DefaultHash(k)
		if a != b {
			t.Fatalf("hash of %v not deterministic", k)
		}
		if a < 0 {
			t.Fatalf("hash of %v negative", k)
		}
	}
}
