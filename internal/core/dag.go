package core

import (
	"fmt"
	"strings"

	"datatrace/internal/stream"
)

// NodeKind distinguishes the three vertex kinds of a transduction DAG.
type NodeKind int

const (
	// SourceNode produces an input stream (one outgoing edge type).
	SourceNode NodeKind = iota
	// OpNode applies an Operator.
	OpNode
	// SinkNode consumes a stream (one incoming edge).
	SinkNode
)

// Node is a vertex of a transduction DAG. Nodes are created through
// the DAG's Source/Op/Sink methods, which guarantee acyclicity by
// construction (an edge can only point to an already existing node).
type Node struct {
	// ID is the node's index in creation (= topological) order.
	ID int
	// Kind is the vertex kind.
	Kind NodeKind
	// Name labels the node; unique within the DAG.
	Name string
	// Op is the operator of an OpNode (nil otherwise).
	Op Operator
	// Parallelism is the deployment parallelism hint (≥ 1).
	Parallelism int
	// Type is the data-trace type of the node's outgoing channel
	// (for sinks: of the incoming channel).
	Type stream.Type
	// Inputs are the upstream nodes.
	Inputs []*Node
}

// DAG is a transduction DAG (section 4): a labelled acyclic dataflow
// graph whose edges carry data-trace types and whose processing
// vertices are template-built operators. Build it with Source, Op and
// Sink; Check validates the data-trace type discipline; Eval computes
// its denotation.
type DAG struct {
	nodes []*Node
	names map[string]bool
	errs  []error
}

// NewDAG creates an empty transduction DAG.
func NewDAG() *DAG { return &DAG{names: map[string]bool{}} }

// Nodes returns the nodes in creation (topological) order.
func (d *DAG) Nodes() []*Node { return d.nodes }

// Sources returns the source nodes in creation order.
func (d *DAG) Sources() []*Node { return d.byKind(SourceNode) }

// Sinks returns the sink nodes in creation order.
func (d *DAG) Sinks() []*Node { return d.byKind(SinkNode) }

func (d *DAG) byKind(k NodeKind) []*Node {
	var out []*Node
	for _, n := range d.nodes {
		if n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

func (d *DAG) add(n *Node) *Node {
	if d.names[n.Name] {
		d.errs = append(d.errs, fmt.Errorf("duplicate node name %q", n.Name))
	}
	d.names[n.Name] = true
	n.ID = len(d.nodes)
	d.nodes = append(d.nodes, n)
	return n
}

// Source adds a named stream source whose outgoing channel has the
// given data-trace type.
func (d *DAG) Source(name string, typ stream.Type) *Node {
	return d.add(&Node{Kind: SourceNode, Name: name, Parallelism: 1, Type: typ})
}

// Op adds a processing vertex applying op with the given parallelism
// hint, consuming the given upstream nodes. Multiple inputs are
// merged (MRG) before the operator, aligned on markers.
func (d *DAG) Op(op Operator, parallelism int, inputs ...*Node) *Node {
	if parallelism < 1 {
		parallelism = 1
	}
	n := &Node{Kind: OpNode, Name: op.Name(), Op: op, Parallelism: parallelism, Type: op.OutType(), Inputs: inputs}
	return d.add(n)
}

// Sink adds a named sink consuming one upstream node.
func (d *DAG) Sink(name string, input *Node) *Node {
	n := &Node{Kind: SinkNode, Name: name, Parallelism: 1, Inputs: []*Node{input}}
	if input != nil {
		n.Type = input.Type
	}
	return d.add(n)
}

// mergedInputType computes the type flowing into a node after the
// implicit MRG of its input channels, following the paper's two merge
// variants: identical unordered channels, or ordered channels with
// pairwise disjoint key sets (whose union is written K1∪K2).
func mergedInputType(inputs []*Node) (stream.Type, error) {
	if len(inputs) == 0 {
		return stream.Type{}, fmt.Errorf("no input channels")
	}
	first := inputs[0].Type
	same := true
	for _, in := range inputs[1:] {
		if !in.Type.Equal(first) {
			same = false
			break
		}
	}
	if same {
		return first, nil
	}
	// Ordered variant: all O(Ki, V) with the same value type.
	keys := make([]string, 0, len(inputs))
	for _, in := range inputs {
		t := in.Type
		if t.Kind != stream.Ordered || t.Val != first.Val {
			return stream.Type{}, fmt.Errorf(
				"cannot merge input channels %s: MRG needs identical unordered types or ordered types with one value type",
				renderTypes(inputs))
		}
		keys = append(keys, t.Key)
	}
	return stream.O(strings.Join(keys, "∪"), first.Val), nil
}

func renderTypes(inputs []*Node) string {
	parts := make([]string, len(inputs))
	for i, in := range inputs {
		parts[i] = in.Type.String()
	}
	return strings.Join(parts, " × ")
}

// Check validates the DAG: structural rules (sources have no inputs,
// sinks exactly one, ops at least one), template completeness, the
// data-trace type discipline on every edge, and that parallelism
// hints respect each operator's mode. It returns all violations
// joined into one error, or nil.
func (d *DAG) Check() error {
	errs := append([]error(nil), d.errs...)
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	// Re-verify name uniqueness at check time, not only at add time:
	// Nodes() hands out mutable *Node, and passes that rename nodes
	// after construction (e.g. operator-chain fusion) can collide two
	// names. Names key topology wiring, so a collision silently merges
	// vertices downstream.
	byName := map[string]int{}
	for _, n := range d.nodes {
		byName[n.Name]++
	}
	for _, n := range d.nodes {
		if count := byName[n.Name]; count > 1 {
			fail("node name %q is used by %d nodes (renamed after construction?)", n.Name, count)
			byName[n.Name] = 0 // report each collision once, in node order
		}
	}
	consumers := map[int]int{}
	for _, n := range d.nodes {
		for _, in := range n.Inputs {
			consumers[in.ID]++
		}
	}
	for _, n := range d.nodes {
		switch n.Kind {
		case SourceNode:
			if len(n.Inputs) != 0 {
				fail("source %s must not have inputs", n.Name)
			}
		case SinkNode:
			if len(n.Inputs) != 1 || n.Inputs[0] == nil {
				fail("sink %s must have exactly one input", n.Name)
			} else if n.Inputs[0].Kind == SinkNode {
				fail("sink %s cannot consume another sink", n.Name)
			}
		case OpNode:
			if err := n.Op.Validate(); err != nil {
				fail("operator %s: %v", n.Name, err)
			}
			if len(n.Inputs) == 0 {
				fail("operator %s has no input channels", n.Name)
			} else {
				merged, err := mergedInputType(n.Inputs)
				if err != nil {
					fail("operator %s: %v", n.Name, err)
				} else if !stream.AssignableTo(merged, n.Op.InType()) {
					fail("operator %s expects input %s but its channels carry %s",
						n.Name, n.Op.InType(), merged)
				}
			}
			for _, in := range n.Inputs {
				if in.Kind == SinkNode {
					fail("operator %s cannot consume sink %s", n.Name, in.Name)
				}
			}
			if n.Parallelism > 1 && n.Op.Mode() == ParNone {
				fail("operator %s cannot be parallelized (mode none) but has parallelism %d",
					n.Name, n.Parallelism)
			}
		}
	}
	for _, n := range d.nodes {
		if n.Kind != SinkNode && consumers[n.ID] == 0 {
			fail("%s output is never consumed", n.Name)
		}
	}
	d.checkGoTypes(fail)
	if len(errs) == 0 {
		return nil
	}
	parts := make([]string, len(errs))
	for i, e := range errs {
		parts[i] = e.Error()
	}
	return fmt.Errorf("transduction DAG ill-typed:\n  %s", strings.Join(parts, "\n  "))
}

// Dot renders the typed DAG in Graphviz format, labelling every edge
// with its data-trace type — the diagrams of Figures 1, 3 and 5.
func (d *DAG) Dot() string {
	var b strings.Builder
	b.WriteString("digraph transduction {\n  rankdir=LR;\n")
	for _, n := range d.nodes {
		shape := "box"
		extra := ""
		switch n.Kind {
		case SourceNode:
			shape = "ellipse"
		case SinkNode:
			shape = "ellipse"
		case OpNode:
			if n.Parallelism > 1 {
				extra = fmt.Sprintf(" ×%d", n.Parallelism)
			}
		}
		fmt.Fprintf(&b, "  n%d [shape=%s,label=%q];\n", n.ID, shape, n.Name+extra)
	}
	for _, n := range d.nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", in.ID, n.ID, in.Type.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
