package dsl

import (
	"datatrace/internal/core"
	"datatrace/internal/stream"
)

// This file derives a relational operator — the per-block stream join
// — purely by composing the paper's templates: tag each side
// (Stateless), merge (the DAG's implicit MRG), and pair up values per
// key per block (KeyedUnordered with a commutative list-pair monoid).
// Because every piece is a template instance, the derived join is
// consistent (Theorem 4.2) and parallelizes by key (Theorem 4.3) with
// no new proofs — the compositionality the paper's §3 claims over
// relational query processors, exercised.

// Pair is one join result.
type Pair[L, R any] struct {
	Left  L
	Right R
}

// either carries one side's value through the merged stream.
type either[L, R any] struct {
	Left    []L
	Right   []R
	Ordered bool // reserved; keeps gob encodings stable
}

// JoinBlocks joins two unordered streams on their (shared) key within
// each marker block: for every key, each left value in block i is
// paired with every right value of block i (a block-tumbling
// equi-join). The two sides must come from the same Builder.
func JoinBlocks[K comparable, L, R any](
	left StreamU[K, L], right StreamU[K, R], name string, par int,
) StreamU[K, Pair[L, R]] {
	if left.b != right.b {
		left.b.fail("dsl: JoinBlocks %q mixes streams from different builders", name)
	}
	b := left.b

	// Tag each side into a common wire type.
	lTag := &core.Stateless[K, L, K, either[L, R]]{
		OpName: name + "/left",
		In:     uType[K, L](),
		Out:    uType[K, either[L, R]](),
		OnItem: func(emit core.Emit[K, either[L, R]], k K, v L) {
			emit(k, either[L, R]{Left: []L{v}})
		},
	}
	rTag := &core.Stateless[K, R, K, either[L, R]]{
		OpName: name + "/right",
		In:     uType[K, R](),
		Out:    uType[K, either[L, R]](),
		OnItem: func(emit core.Emit[K, either[L, R]], k K, v R) {
			emit(k, either[L, R]{Right: []R{v}})
		},
	}
	ln := b.dag.Op(lTag, par, left.node)
	rn := b.dag.Op(rTag, par, right.node)

	// Pair up per key per block: the block aggregate is the pair of
	// per-side value lists, replaced into the state at each marker,
	// and the cross product is emitted there. List append is
	// commutative only up to multiset reordering — which is exactly
	// what the output type U(K, Pair) observes, so the operator is
	// consistent at the trace level (Definition 3.5); see
	// TestJoinBlocksConsistent.
	join := &core.KeyedUnordered[K, either[L, R], K, Pair[L, R], either[L, R], either[L, R]]{
		OpName: name,
		InT:    uType[K, either[L, R]](),
		OutT:   uType[K, Pair[L, R]](),
		In:     func(_ K, v either[L, R]) either[L, R] { return v },
		ID:     func() either[L, R] { return either[L, R]{} },
		Combine: func(x, y either[L, R]) either[L, R] {
			return either[L, R]{
				//lint:ignore DTT008 list order is unobservable: the output type U(K, Pair) quotients per-key blocks to multisets (Definition 3.5), so append-merge is commutative at the trace level; pinned by TestJoinBlocksConsistent
				Left:  append(append([]L(nil), x.Left...), y.Left...),
				Right: append(append([]R(nil), x.Right...), y.Right...),
			}
		},
		InitialState: func() either[L, R] { return either[L, R]{} },
		UpdateState:  func(_, agg either[L, R]) either[L, R] { return agg },
		OnMarker: func(emit core.Emit[K, Pair[L, R]], st either[L, R], k K, m stream.Marker) {
			for _, l := range st.Left {
				for _, r := range st.Right {
					emit(k, Pair[L, R]{Left: l, Right: r})
				}
			}
		},
	}
	return StreamU[K, Pair[L, R]]{b: b, node: b.dag.Op(join, par, ln, rn)}
}
