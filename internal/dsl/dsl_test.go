package dsl

import (
	"math/rand"
	"strings"
	"testing"

	"datatrace/internal/compile"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

func mk(seq, ts int64) stream.Event { return stream.Mark(stream.Marker{Seq: seq, Timestamp: ts}) }

func sumMonoid() Monoid[float64] {
	return Monoid[float64]{ID: func() float64 { return 0 }, Combine: func(x, y float64) float64 { return x + y }}
}

func randomStream(r *rand.Rand, blocks, perBlock, keys int) []stream.Event {
	var out []stream.Event
	for b := 0; b < blocks; b++ {
		for i := 0; i < perBlock; i++ {
			out = append(out, stream.Item(r.Intn(keys), float64(r.Intn(100))))
		}
		out = append(out, mk(int64(b), int64(b+1)))
	}
	return out
}

// figure2 builds the paper's Figure 2 program through the DSL.
func figure2() (*Builder, error) {
	b := NewBuilder()
	src := Source[int, float64](b, "source")
	evens := Filter(src, "filterEven", 2, func(k int, v float64) bool { return k%2 == 0 })
	sums := AggregateBlocks(evens, "sumPerKey", 3, sumMonoid(), func(_ int, v float64) float64 { return v })
	SinkOf(sums, "printer")
	return b, nil
}

func TestFigure2ThroughDSL(t *testing.T) {
	b, _ := figure2()
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := []stream.Event{
		stream.Item(2, 10.0), stream.Item(3, 99.0), stream.Item(2, 5.0), mk(0, 1),
		stream.Item(4, 1.0), mk(1, 2),
	}
	out, err := dag.Eval(map[string][]stream.Event{"source": in})
	if err != nil {
		t.Fatal(err)
	}
	want := []stream.Event{
		stream.Item(2, 15.0), mk(0, 1),
		stream.Item(2, 0.0), stream.Item(4, 1.0), mk(1, 2),
	}
	if !stream.Equivalent(stream.U("int", "float64"), out["printer"], want) {
		t.Fatalf("got %s want %s", stream.Render(out["printer"]), stream.Render(want))
	}
}

func TestDSLTypeNamesAreDerived(t *testing.T) {
	b := NewBuilder()
	src := Source[int, float64](b, "src")
	SinkOf(src, "out")
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := dag.Sources()[0].Type.String(); got != "U(int,float64)" {
		t.Fatalf("derived type = %s", got)
	}
}

// TestOrderingDisciplineIsCompileTime documents the central DSL
// property: there is no combinator that turns StreamU into an
// order-requiring stage without SortBy. (A negative compile test
// cannot run; this test exercises the legal path end to end.)
func TestOrderingDisciplineIsCompileTime(t *testing.T) {
	b := NewBuilder()
	src := Source[int, float64](b, "src")
	sorted := SortBy(src, "SORT", 2, func(a, c float64) bool { return a < c })
	running := OrderedState(sorted, "running", 2, func() float64 { return 0 },
		func(emit func(float64), st float64, k int, v float64) float64 {
			st += v
			emit(st)
			return st
		})
	doubled := MapOrdered(running, "double", 2, func(_ int, v float64) float64 { return v * 2 })
	SinkOfOrdered(doubled, "out")
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := []stream.Event{
		stream.Item(1, 3.0), stream.Item(1, 1.0), mk(0, 1),
	}
	out, err := dag.Eval(map[string][]stream.Event{"src": in})
	if err != nil {
		t.Fatal(err)
	}
	// Sorted per key: 1 then 3 → running sums 1, 4 → doubled 2, 8.
	var vals []float64
	for _, e := range out["out"] {
		if !e.IsMarker {
			vals = append(vals, e.Value.(float64))
		}
	}
	if len(vals) != 2 || vals[0] != 2 || vals[1] != 8 {
		t.Fatalf("got %v, want [2 8]", vals)
	}
}

func TestForgetIsSubtyping(t *testing.T) {
	b := NewBuilder()
	src := Source[int, float64](b, "src")
	sorted := SortBy(src, "SORT", 1, func(a, c float64) bool { return a < c })
	// Forget the order and aggregate as a bag.
	agg := AggregatePerKey(Forget(sorted), "agg", 1, sumMonoid(), func(_ int, v float64) float64 { return v })
	SinkOf(agg, "out")
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingWindowAndKeyBy(t *testing.T) {
	b := NewBuilder()
	src := Source[int, float64](b, "src")
	byParity := KeyBy(src, "parity", 2, func(k int, _ float64) string {
		if k%2 == 0 {
			return "even"
		}
		return "odd"
	})
	win := SlidingWindow(byParity, "win", 2, 2, sumMonoid(), func(_ string, v float64) float64 { return v })
	SinkOf(win, "out")
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := []stream.Event{
		stream.Item(2, 1.0), stream.Item(3, 10.0), mk(0, 1),
		stream.Item(4, 2.0), mk(1, 2),
		mk(2, 3),
	}
	out, err := dag.Eval(map[string][]stream.Event{"src": in})
	if err != nil {
		t.Fatal(err)
	}
	// Window=2 blocks: even: [1], [1,2], [2]; odd: [10], [10], gone.
	got := map[string][]float64{}
	for _, e := range out["out"] {
		if !e.IsMarker {
			got[e.Key.(string)] = append(got[e.Key.(string)], e.Value.(float64))
		}
	}
	if want := []float64{1, 3, 2}; len(got["even"]) != 3 || got["even"][0] != want[0] || got["even"][1] != want[1] || got["even"][2] != want[2] {
		t.Fatalf("even windows = %v, want %v", got["even"], want)
	}
	if len(got["odd"]) != 2 || got["odd"][0] != 10 || got["odd"][1] != 10 {
		t.Fatalf("odd windows = %v, want [10 10]", got["odd"])
	}
}

func TestMergeU(t *testing.T) {
	b := NewBuilder()
	s1 := Source[int, float64](b, "a")
	s2 := Source[int, float64](b, "b")
	merged := MergeU("merge", 1, s1, s2)
	agg := AggregateBlocks(merged, "sum", 1, sumMonoid(), func(_ int, v float64) float64 { return v })
	SinkOf(agg, "out")
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := dag.Eval(map[string][]stream.Event{
		"a": {stream.Item(1, 1.0), mk(0, 1)},
		"b": {stream.Item(1, 2.0), mk(0, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []stream.Event{stream.Item(1, 3.0), mk(0, 1)}
	if !stream.Equivalent(stream.U("int", "float64"), out["out"], want) {
		t.Fatalf("got %s", stream.Render(out["out"]))
	}
}

func TestStatefulPerKeyFullTemplate(t *testing.T) {
	b := NewBuilder()
	src := Source[int, float64](b, "src")
	// Count items per key per block, re-keyed to a constant for a
	// global view, and emit only when the count is positive.
	counted := StatefulPerKey(src, "count", 2,
		Monoid[int]{ID: func() int { return 0 }, Combine: func(x, y int) int { return x + y }},
		func(int, float64) int { return 1 },
		func() int { return 0 },
		func(_, agg int) int { return agg },
		func(emit func(string, int), st int, k int, _ stream.Marker) {
			if st > 0 {
				emit("total", st)
			}
		})
	SinkOf(counted, "out")
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := []stream.Event{stream.Item(1, 1.0), stream.Item(2, 2.0), mk(0, 1), mk(1, 2)}
	out, err := dag.Eval(map[string][]stream.Event{"src": in})
	if err != nil {
		t.Fatal(err)
	}
	items := 0
	for _, e := range out["out"] {
		if !e.IsMarker {
			items++
			if e.Key != "total" {
				t.Fatalf("re-keying failed: %v", e.Key)
			}
		}
	}
	if items != 2 { // one per key in block 0, none in block 1
		t.Fatalf("got %d emissions, want 2", items)
	}
}

func TestBuilderReportsIncompleteMonoid(t *testing.T) {
	b := NewBuilder()
	src := Source[int, float64](b, "src")
	agg := AggregatePerKey(src, "bad", 1, Monoid[float64]{}, func(_ int, v float64) float64 { return v })
	SinkOf(agg, "out")
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "complete monoid") {
		t.Fatalf("got %v", err)
	}
}

// TestDSLPipelineCompilesAndRuns: a DSL-built DAG goes through the
// full compile-and-run path and matches its own denotation.
func TestDSLPipelineCompilesAndRuns(t *testing.T) {
	b, _ := figure2()
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := randomStream(rand.New(rand.NewSource(111)), 4, 15, 6)
	ref, err := dag.Eval(map[string][]stream.Event{"source": in})
	if err != nil {
		t.Fatal(err)
	}
	top, err := compile.Compile(dag, map[string]compile.SourceSpec{
		"source": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
		t.Fatal(err)
	}
}
