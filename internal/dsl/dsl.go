// Package dsl is the fluent embedded DSL over the core templates —
// the Go counterpart of the paper's Java EDSL (its Figure 2 is
// exactly such a program). Streams are generic values whose Go type
// records both the key/value types and the ordering kind, so the
// data-trace type discipline of section 4 becomes a Go compile-time
// property:
//
//   - StreamU[K,V] is a channel of type U(K,V);
//   - StreamO[K,V] is a channel of type O(K,V);
//   - order-requiring combinators (OrderedState) accept only StreamO,
//     and the only way to produce a StreamO from a StreamU is SortBy —
//     the section 2 mistake (feeding unordered data to an
//     order-sensitive stage) does not type-check in Go at all.
//
// Type names for the underlying stream.Types are derived from the Go
// types via reflection, so they cannot lie; the DAG-level checker
// (including the reflect-based representation check) still runs at
// Build time as a second line of defence.
//
// A small program:
//
//	b := dsl.NewBuilder()
//	src := dsl.Source[int, float64](b, "source")
//	evens := dsl.Filter(src, "filterEven", 2,
//		func(k int, v float64) bool { return k%2 == 0 })
//	sums := dsl.AggregatePerKey(evens, "sumPerKey", 3,
//		dsl.Monoid[float64]{ID: func() float64 { return 0 },
//			Combine: func(x, y float64) float64 { return x + y }},
//		func(_ int, v float64) float64 { return v })
//	dsl.SinkOf(sums, "printer")
//	dag, err := b.Build()
package dsl

import (
	"fmt"
	"reflect"

	"datatrace/internal/core"
	"datatrace/internal/stream"
)

// Builder accumulates a transduction DAG.
type Builder struct {
	dag  *core.DAG
	errs []error
}

// NewBuilder creates an empty builder.
func NewBuilder() *Builder { return &Builder{dag: core.NewDAG()} }

// Build type-checks and returns the DAG.
func (b *Builder) Build() (*core.DAG, error) {
	for _, err := range b.errs {
		return nil, err
	}
	if err := b.dag.Check(); err != nil {
		return nil, err
	}
	return b.dag, nil
}

// DAG returns the DAG without checking (for Dot dumps of partial
// graphs).
func (b *Builder) DAG() *core.DAG { return b.dag }

func (b *Builder) fail(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// typeName renders a Go type for use in stream.Type metadata.
func typeName[T any]() string { return reflect.TypeFor[T]().String() }

// uType builds the U(K,V) stream.Type for the Go types K, V.
func uType[K comparable, V any]() stream.Type { return stream.U(typeName[K](), typeName[V]()) }

// oType builds the O(K,V) stream.Type.
func oType[K comparable, V any]() stream.Type { return stream.O(typeName[K](), typeName[V]()) }

// StreamU is a channel of data-trace type U(K,V): items unordered
// between markers.
type StreamU[K comparable, V any] struct {
	b    *Builder
	node *core.Node
}

// StreamO is a channel of data-trace type O(K,V): items additionally
// ordered per key between markers.
type StreamO[K comparable, V any] struct {
	b    *Builder
	node *core.Node
}

// Monoid packages the commutative-monoid interface the unordered
// aggregation combinators require (Combine must be associative and
// commutative; ID its identity).
type Monoid[A any] struct {
	ID      func() A
	Combine func(x, y A) A
}

// Source declares a named source of type U(K,V). The spout realizing
// it is supplied at compile time (compile.SourceSpec).
func Source[K comparable, V any](b *Builder, name string) StreamU[K, V] {
	return StreamU[K, V]{b: b, node: b.dag.Source(name, uType[K, V]())}
}

// SinkOf terminates an unordered stream in a named sink.
func SinkOf[K comparable, V any](s StreamU[K, V], name string) {
	s.b.dag.Sink(name, s.node)
}

// SinkOfOrdered terminates an ordered stream in a named sink.
func SinkOfOrdered[K comparable, V any](s StreamO[K, V], name string) {
	s.b.dag.Sink(name, s.node)
}

// --- stateless combinators (U → U) ------------------------------------------

// FlatMap applies f to every item; f may emit any number of output
// pairs. The most general stateless combinator.
func FlatMap[K comparable, V any, L comparable, W any](
	s StreamU[K, V], name string, par int, f func(emit func(L, W), k K, v V),
) StreamU[L, W] {
	op := &core.Stateless[K, V, L, W]{
		OpName: name,
		In:     uType[K, V](),
		Out:    uType[L, W](),
		OnItem: func(emit core.Emit[L, W], k K, v V) { f(func(l L, w W) { emit(l, w) }, k, v) },
	}
	return StreamU[L, W]{b: s.b, node: s.b.dag.Op(op, par, s.node)}
}

// Map transforms every item one-to-one.
func Map[K comparable, V any, L comparable, W any](
	s StreamU[K, V], name string, par int, f func(k K, v V) (L, W),
) StreamU[L, W] {
	return FlatMap(s, name, par, func(emit func(L, W), k K, v V) {
		emit(f(k, v))
	})
}

// Filter keeps the items satisfying the predicate.
func Filter[K comparable, V any](
	s StreamU[K, V], name string, par int, keep func(k K, v V) bool,
) StreamU[K, V] {
	return FlatMap(s, name, par, func(emit func(K, V), k K, v V) {
		if keep(k, v) {
			emit(k, v)
		}
	})
}

// KeyBy re-keys the stream.
func KeyBy[K comparable, V any, L comparable](
	s StreamU[K, V], name string, par int, key func(k K, v V) L,
) StreamU[L, V] {
	return Map(s, name, par, func(k K, v V) (L, V) { return key(k, v), v })
}

// MapOrdered transforms an ordered stream's values one-to-one,
// preserving the key (and therefore the per-key order).
func MapOrdered[K comparable, V, W any](
	s StreamO[K, V], name string, par int, f func(k K, v V) W,
) StreamO[K, W] {
	op := &core.KeyedOrdered[K, V, W, struct{}]{
		OpName:       name,
		In:           oType[K, V](),
		Out:          oType[K, W](),
		InitialState: func() struct{} { return struct{}{} },
		OnItem: func(emit func(W), _ struct{}, k K, v V) struct{} {
			emit(f(k, v))
			return struct{}{}
		},
	}
	return StreamO[K, W]{b: s.b, node: s.b.dag.Op(op, par, s.node)}
}

// Forget downgrades an ordered stream to its unordered supertype
// (always sound; the subtyping rule O(K,V) ⊑ U(K,V)).
func Forget[K comparable, V any](s StreamO[K, V]) StreamU[K, V] {
	return StreamU[K, V]{b: s.b, node: s.node}
}

// --- ordering combinators -----------------------------------------------------

// SortBy imposes a per-key total order on the items between markers —
// the only constructor of StreamO from StreamU, which is exactly the
// paper's discipline: order must be (re)established explicitly.
func SortBy[K comparable, V any](
	s StreamU[K, V], name string, par int, less func(a, b V) bool,
) StreamO[K, V] {
	op := &core.Sort[K, V]{
		OpName: name,
		In:     uType[K, V](),
		Out:    oType[K, V](),
		Less:   less,
	}
	return StreamO[K, V]{b: s.b, node: s.b.dag.Op(op, par, s.node)}
}

// OrderedState runs an order-dependent stateful computation per key
// (OpKeyedOrdered): onItem sees the items of each key in order and
// may emit values for that key.
func OrderedState[K comparable, V, W, S any](
	s StreamO[K, V], name string, par int,
	initial func() S,
	onItem func(emit func(W), state S, k K, v V) S,
) StreamO[K, W] {
	op := &core.KeyedOrdered[K, V, W, S]{
		OpName:       name,
		In:           oType[K, V](),
		Out:          oType[K, W](),
		InitialState: initial,
		OnItem:       onItem,
	}
	return StreamO[K, W]{b: s.b, node: s.b.dag.Op(op, par, s.node)}
}

// --- keyed unordered combinators ----------------------------------------------

// AggregatePerKey folds each key's items into the monoid and emits
// the running total (over the whole history) at every marker.
func AggregatePerKey[K comparable, V any, A any](
	s StreamU[K, V], name string, par int, m Monoid[A], in func(k K, v V) A,
) StreamU[K, A] {
	if m.ID == nil || m.Combine == nil {
		s.b.fail("dsl: AggregatePerKey %q needs a complete monoid", name)
		m = Monoid[A]{ID: func() A { var z A; return z }, Combine: func(x, y A) A { return x }}
	}
	op := &core.KeyedUnordered[K, V, K, A, A, A]{
		OpName:       name,
		InT:          uType[K, V](),
		OutT:         uType[K, A](),
		In:           in,
		ID:           m.ID,
		Combine:      m.Combine,
		InitialState: m.ID,
		UpdateState:  m.Combine,
		OnMarker: func(emit core.Emit[K, A], st A, k K, mk stream.Marker) {
			emit(k, st)
		},
	}
	return StreamU[K, A]{b: s.b, node: s.b.dag.Op(op, par, s.node)}
}

// AggregateBlocks folds each key's items per marker block and emits
// each block's aggregate at its marker (a tumbling window of one
// block).
func AggregateBlocks[K comparable, V any, A any](
	s StreamU[K, V], name string, par int, m Monoid[A], in func(k K, v V) A,
) StreamU[K, A] {
	op := &core.KeyedUnordered[K, V, K, A, A, A]{
		OpName:       name,
		InT:          uType[K, V](),
		OutT:         uType[K, A](),
		In:           in,
		ID:           m.ID,
		Combine:      m.Combine,
		InitialState: m.ID,
		UpdateState:  func(_, agg A) A { return agg },
		OnMarker: func(emit core.Emit[K, A], st A, k K, mk stream.Marker) {
			emit(k, st)
		},
	}
	return StreamU[K, A]{b: s.b, node: s.b.dag.Op(op, par, s.node)}
}

// SlidingWindow folds each key's items over the last windowBlocks
// marker periods (the §8 extension template) and emits the window
// aggregate at every marker.
func SlidingWindow[K comparable, V any, A any](
	s StreamU[K, V], name string, par, windowBlocks int, m Monoid[A], in func(k K, v V) A,
) StreamU[K, A] {
	op := &core.SlidingAggregate[K, V, A]{
		OpName:       name,
		InT:          uType[K, V](),
		OutT:         uType[K, A](),
		WindowBlocks: windowBlocks,
		In:           in,
		ID:           m.ID,
		Combine:      m.Combine,
	}
	return StreamU[K, A]{b: s.b, node: s.b.dag.Op(op, par, s.node)}
}

// StatefulPerKey is the full OpKeyedUnordered template in fluent
// form, for computations that need distinct aggregate and state types
// or marker-driven output.
func StatefulPerKey[K comparable, V any, L comparable, W, S, A any](
	s StreamU[K, V], name string, par int,
	m Monoid[A], in func(k K, v V) A,
	initial func() S, update func(old S, agg A) S,
	onMarker func(emit func(L, W), state S, k K, mk stream.Marker),
) StreamU[L, W] {
	op := &core.KeyedUnordered[K, V, L, W, S, A]{
		OpName:       name,
		InT:          uType[K, V](),
		OutT:         uType[L, W](),
		In:           in,
		ID:           m.ID,
		Combine:      m.Combine,
		InitialState: initial,
		UpdateState:  update,
	}
	if onMarker != nil {
		op.OnMarker = func(emit core.Emit[L, W], st S, k K, mk stream.Marker) {
			onMarker(func(l L, w W) { emit(l, w) }, st, k, mk)
		}
	}
	return StreamU[L, W]{b: s.b, node: s.b.dag.Op(op, par, s.node)}
}

// MergeU merges several unordered streams of the same type (the MRG
// of section 4 happens implicitly at the consuming operator; MergeU
// makes the fan-in explicit in the graph by attaching all inputs to
// the next operator).
func MergeU[K comparable, V any](name string, par int, streams ...StreamU[K, V]) StreamU[K, V] {
	if len(streams) == 0 {
		panic("dsl: MergeU needs at least one stream")
	}
	b := streams[0].b
	nodes := make([]*core.Node, len(streams))
	for i, s := range streams {
		if s.b != b {
			b.fail("dsl: MergeU %q mixes streams from different builders", name)
		}
		nodes[i] = s.node
	}
	op := &core.Stateless[K, V, K, V]{
		OpName: name,
		In:     uType[K, V](),
		Out:    uType[K, V](),
		OnItem: func(emit core.Emit[K, V], k K, v V) { emit(k, v) },
	}
	return StreamU[K, V]{b: b, node: b.dag.Op(op, par, nodes...)}
}
