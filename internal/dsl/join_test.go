package dsl

import (
	"math/rand"
	"testing"

	"datatrace/internal/compile"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// joinDAG builds: two sources → per-block equi-join → sink.
func joinDAG(par int) (*Builder, error) {
	b := NewBuilder()
	orders := Source[int, string](b, "orders")
	users := Source[int, float64](b, "users")
	joined := JoinBlocks(orders, users, "join", par)
	SinkOf(joined, "out")
	return b, nil
}

func TestJoinBlocksBasic(t *testing.T) {
	b, _ := joinDAG(1)
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := dag.Eval(map[string][]stream.Event{
		"orders": {
			stream.Item(1, "a"), stream.Item(1, "b"), stream.Item(2, "c"), mk(0, 1),
			stream.Item(1, "d"), mk(1, 2),
		},
		"users": {
			stream.Item(1, 1.5), stream.Item(3, 9.9), mk(0, 1),
			mk(1, 2),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Block 0: key 1 joins {a,b}×{1.5}; key 2 and 3 have no partner.
	// Block 1: key 1 has no right side.
	var pairs []Pair[string, float64]
	block := 0
	for _, e := range out["out"] {
		if e.IsMarker {
			block++
			continue
		}
		if block != 0 {
			t.Fatalf("join result in block %d", block)
		}
		if e.Key != 1 {
			t.Fatalf("join result for key %v", e.Key)
		}
		pairs = append(pairs, e.Value.(Pair[string, float64]))
	}
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2: %v", len(pairs), pairs)
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		if p.Right != 1.5 {
			t.Fatalf("pair %v has wrong right side", p)
		}
		seen[p.Left] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("missing join partners: %v", pairs)
	}
}

// TestJoinBlocksConsistent: the derived join is a consistent
// transduction — its compiled parallel deployments produce the
// reference trace for random inputs.
func TestJoinBlocksConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(121))
	mkSide := func(blocks int, valf func(i int) any) []stream.Event {
		var out []stream.Event
		for bl := 0; bl < blocks; bl++ {
			n := r.Intn(6)
			for i := 0; i < n; i++ {
				out = append(out, stream.Item(r.Intn(4), valf(r.Intn(50))))
			}
			out = append(out, mk(int64(bl), int64(bl+1)))
		}
		return out
	}
	for trial := 0; trial < 6; trial++ {
		blocks := 2 + r.Intn(3)
		orders := mkSide(blocks, func(i int) any { return string(rune('a' + i%26)) })
		users := mkSide(blocks, func(i int) any { return float64(i) })
		inputs := map[string][]stream.Event{"orders": orders, "users": users}

		refB, _ := joinDAG(1)
		refDag, err := refB.Build()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refDag.Eval(inputs)
		if err != nil {
			t.Fatal(err)
		}

		for _, par := range []int{2, 3} {
			b, _ := joinDAG(par)
			dag, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			top, err := compile.Compile(dag, map[string]compile.SourceSpec{
				"orders": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(orders) }},
				"users":  {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(users) }},
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := top.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
				t.Fatalf("trial %d par %d: %v", trial, par, err)
			}
		}
	}
}

func TestJoinBlocksCrossBuilderRejected(t *testing.T) {
	b1 := NewBuilder()
	b2 := NewBuilder()
	l := Source[int, string](b1, "l")
	r := Source[int, float64](b2, "r")
	joined := JoinBlocks(l, r, "bad", 1)
	SinkOf(joined, "out")
	if _, err := b1.Build(); err == nil {
		t.Fatal("cross-builder join must fail at Build")
	}
}
