package bench

import (
	"fmt"
	"strings"
	"time"

	"datatrace/internal/queries"
	"datatrace/internal/storm"
)

// This file measures the batched edge transport: the batch-size sweep
// behind EXPERIMENTS.md's transport section. Query IV (the Yahoo
// pipeline, the evaluation's centerpiece) runs end-to-end at a range
// of batch sizes, BatchSize 1 being exactly the seed's
// one-send-per-event transport, so the sweep reads directly as "what
// does vectorized edge transfer buy on this workload".

// TransportRow is one batch-size measurement.
type TransportRow struct {
	// BatchSize is the transport batch size of the run (1 = unbatched).
	BatchSize int
	// Wall is the minimum end-to-end wall time over the repetitions.
	Wall time.Duration
	// Throughput is input tuples divided by Wall.
	Throughput float64
	// Speedup is the batch-1 wall time divided by this row's wall time
	// (1.00 for the batch-1 row itself).
	Speedup float64
}

// TransportSweepResult is the full sweep.
type TransportSweepResult struct {
	Rows []TransportRow
	// Par is the per-stage parallelism every run used.
	Par int
	// Reps is the number of interleaved repetitions per batch size.
	Reps int
}

// TransportSweep runs generated Query IV once per batch size per
// repetition, interleaving the batch sizes across repetitions (so
// machine-load drift hits them equally) and keeping each size's
// minimum wall — the least-perturbed run of a fixed workload.
func TransportSweep(cfg Config) (*TransportSweepResult, error) {
	batches := []int{1, 4, 16, 64, 256, 1024}
	par := cfg.MaxWorkers
	if par > 4 {
		par = 4
	}
	const reps = 5
	res := &TransportSweepResult{Par: par, Reps: reps}

	walls := make([]time.Duration, len(batches))
	var items int64
	for i := 0; i < reps; i++ {
		for bi, batch := range batches {
			env, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
			if err != nil {
				return nil, err
			}
			r, err := queries.Run(env, queries.Spec{
				Query:     "IV",
				Variant:   queries.Generated,
				Par:       par,
				SourcePar: cfg.SourcePar,
				Transport: &storm.TransportOptions{BatchSize: batch},
			})
			if err != nil {
				return nil, fmt.Errorf("bench: transport sweep (batch %d): %w", batch, err)
			}
			if walls[bi] == 0 || r.Wall < walls[bi] {
				walls[bi] = r.Wall
			}
			items = countItems(r.Stats, "yahoo")
		}
	}

	base := walls[0]
	for bi, batch := range batches {
		res.Rows = append(res.Rows, TransportRow{
			BatchSize:  batch,
			Wall:       walls[bi],
			Throughput: float64(items) / walls[bi].Seconds(),
			Speedup:    base.Seconds() / walls[bi].Seconds(),
		})
	}
	return res, nil
}

// Table renders the sweep as aligned text.
func (r *TransportSweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== transport: batch-size sweep (Query IV generated, par=%d, min of %d interleaved reps) ==\n", r.Par, r.Reps)
	fmt.Fprintf(&b, "%8s %12s %14s %8s\n", "batch", "wall", "tuples/s", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12s %14.0f %7.2fx\n",
			row.BatchSize, row.Wall.Round(time.Microsecond), row.Throughput, row.Speedup)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated records.
func (r *TransportSweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("figure,batch_size,wall_s,tuples_per_s,speedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "transport,%d,%f,%f,%f\n",
			row.BatchSize, row.Wall.Seconds(), row.Throughput, row.Speedup)
	}
	return b.String()
}
