package bench

import (
	"fmt"
	"strings"
	"time"

	"datatrace/internal/compile"
	"datatrace/internal/iot"
	"datatrace/internal/storm"
)

// This file measures the marker-cut recovery subsystem: the
// checkpoint-interval sweep behind EXPERIMENTS.md's recovery section.
// The marker period is the checkpoint interval — a cut happens at
// every marker — so sweeping the IoT workload's MarkerPeriod trades
// crash-free overhead (more cuts = more snapshots and smaller send
// batches) against recovery cost (a crash replays at most one block
// per input channel).

// RecoveryRow is one marker-period measurement.
type RecoveryRow struct {
	// MarkerPeriod is the event-time seconds between markers (the
	// checkpoint interval).
	MarkerPeriod int
	// Blocks is the number of marker-delimited blocks in the stream.
	Blocks int
	// BaseWall is the crash-free wall time with recovery disabled.
	BaseWall time.Duration
	// RecWall is the crash-free wall time with recovery enabled.
	RecWall time.Duration
	// OverheadPct is the crash-free overhead of checkpointing:
	// (RecWall-BaseWall)/BaseWall × 100.
	OverheadPct float64
	// CrashWall is the wall time of a run with one injected mid-stream
	// crash, recovery enabled.
	CrashWall time.Duration
	// RecoveryCost is CrashWall - RecWall: the extra wall time the
	// crash cost (restart + replay of the in-flight block).
	RecoveryCost time.Duration
	// Replayed is the number of events re-delivered from replay
	// buffers during the recovery.
	Replayed int64
	// Restarts is the number of executor restarts performed.
	Restarts int64
}

// RecoverySweepResult is the full sweep.
type RecoverySweepResult struct {
	Rows []RecoveryRow
	// Par is the per-stage parallelism every run used.
	Par int
}

// RecoverySweep runs the IoT pipeline at several marker periods,
// three times each: recovery off (baseline), recovery on without
// faults (overhead), and recovery on with one injected crash of a
// mid-pipeline bolt instance (recovery cost).
func RecoverySweep(cfg Config) (*RecoverySweepResult, error) {
	par := cfg.SourcePar
	if par < 2 {
		par = 2
	}
	res := &RecoverySweepResult{Par: par}
	sensor := iot.DefaultSensorConfig()
	sensor.Seconds = 3600
	sensor.Sensors = 16

	for _, period := range []int{5, 10, 30, 60, 120} {
		sensor.MarkerPeriod = period
		events := iot.Stream(sensor)

		build := func(rec *storm.RecoveryPolicy) (*storm.Topology, error) {
			return compile.Compile(iot.PipelineDAG(sensor, par), map[string]compile.SourceSpec{
				"hub": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(events) }},
			}, &compile.Options{FuseSort: true, Recovery: rec})
		}
		run := func(rec *storm.RecoveryPolicy, plan *storm.FaultPlan) (*storm.Result, error) {
			top, err := build(rec)
			if err != nil {
				return nil, err
			}
			top.SetFaultPlan(plan)
			return top.Run()
		}
		rec := &storm.RecoveryPolicy{Enabled: true, Logf: func(string, ...any) {}}
		// Crash the first mid-pipeline bolt instance mid-stream; the
		// component name is read off the compiled topology so sort
		// fusion cannot invalidate it.
		probe, err := build(rec)
		if err != nil {
			return nil, err
		}
		victim := ""
		for _, c := range probe.Components() {
			if c.Kind == "bolt" {
				victim = c.Name
				break
			}
		}
		if victim == "" {
			return nil, fmt.Errorf("bench: recovery sweep found no bolt to crash")
		}
		plan := storm.NewFaultPlan().CrashAt(victim, 0, 10000)

		// Interleave the three configurations across repetitions (so
		// machine-load drift hits them equally) and keep each one's
		// minimum wall — the least-perturbed run of a fixed workload.
		const reps = 7
		base, recWall, crashWall := time.Duration(0), time.Duration(0), time.Duration(0)
		var crashRes *storm.Result
		for i := 0; i < reps; i++ {
			rBase, err := run(nil, nil)
			if err != nil {
				return nil, fmt.Errorf("bench: recovery sweep baseline (period %ds): %w", period, err)
			}
			rRec, err := run(rec, nil)
			if err != nil {
				return nil, fmt.Errorf("bench: recovery sweep crash-free (period %ds): %w", period, err)
			}
			rCrash, err := run(rec, plan)
			if err != nil {
				return nil, fmt.Errorf("bench: recovery sweep crash (period %ds): %w", period, err)
			}
			if i == 0 || rBase.Wall < base {
				base = rBase.Wall
			}
			if i == 0 || rRec.Wall < recWall {
				recWall = rRec.Wall
			}
			if i == 0 || rCrash.Wall < crashWall {
				crashWall = rCrash.Wall
				crashRes = rCrash
			}
		}
		restarts, replayed, _ := crashRes.Stats.Recovery()

		res.Rows = append(res.Rows, RecoveryRow{
			MarkerPeriod: period,
			Blocks:       sensor.Seconds / period,
			BaseWall:     base,
			RecWall:      recWall,
			OverheadPct:  100 * (recWall.Seconds() - base.Seconds()) / base.Seconds(),
			CrashWall:    crashWall,
			RecoveryCost: crashWall - recWall,
			Replayed:     replayed,
			Restarts:     restarts,
		})
	}
	return res, nil
}

// Table renders the sweep as aligned text.
func (r *RecoverySweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== recovery: checkpoint-interval sweep (IoT pipeline, par=%d, one injected crash) ==\n", r.Par)
	fmt.Fprintf(&b, "%8s %7s %12s %12s %9s %12s %12s %9s %9s\n",
		"period", "blocks", "base_wall", "rec_wall", "ovh_%", "crash_wall", "rec_cost", "replayed", "restarts")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7ds %7d %12s %12s %8.1f%% %12s %12s %9d %9d\n",
			row.MarkerPeriod, row.Blocks,
			row.BaseWall.Round(time.Microsecond), row.RecWall.Round(time.Microsecond),
			row.OverheadPct,
			row.CrashWall.Round(time.Microsecond), row.RecoveryCost.Round(time.Microsecond),
			row.Replayed, row.Restarts)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated records.
func (r *RecoverySweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("figure,marker_period_s,blocks,base_wall_s,rec_wall_s,overhead_pct,crash_wall_s,recovery_cost_s,replayed,restarts\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "recovery,%d,%d,%f,%f,%f,%f,%f,%d,%d\n",
			row.MarkerPeriod, row.Blocks,
			row.BaseWall.Seconds(), row.RecWall.Seconds(), row.OverheadPct,
			row.CrashWall.Seconds(), row.RecoveryCost.Seconds(),
			row.Replayed, row.Restarts)
	}
	return b.String()
}
