package bench

import (
	"fmt"
	"strings"
	"time"

	"datatrace/internal/queries"
)

// This file measures the compiler's optimization passes: chain fusion
// (collapsing maximal stateless operator chains into one bolt) and
// shuffle-side combiners (sender-side partial aggregation on fields
// edges into combinable keyed consumers). Generated Query IV — whose
// pipeline has both a fusable Filter→Project chain and a combinable
// fields edge into the sliding count — runs end-to-end under each of
// the four on/off combinations, so the sweep reads directly as "what
// does each pass buy on the evaluation's centerpiece".

// FusionRow is one pass-combination measurement.
type FusionRow struct {
	// Label names the combination ("none", "fusion", "combiners", "both").
	Label string
	// FuseChains and Combiners are the pass switches of the run.
	FuseChains bool
	Combiners  bool
	// Wall is the minimum end-to-end wall time over the repetitions.
	Wall time.Duration
	// Throughput is input tuples divided by Wall.
	Throughput float64
	// Speedup is the passes-off wall time divided by this row's wall
	// time (1.00 for the passes-off row itself).
	Speedup float64
	// CombinedIn and CombinedOut are the combiner traffic counters of
	// the run: items folded into combining buffers and partial
	// aggregates flushed out. Zero when the combiner pass is off.
	CombinedIn, CombinedOut int64
	// Compression is CombinedIn / CombinedOut — the average number of
	// raw items each flushed partial stands for (0 when no combining).
	Compression float64
}

// FusionSweepResult is the full sweep.
type FusionSweepResult struct {
	Rows []FusionRow
	// Par is the per-stage parallelism every run used.
	Par int
	// Reps is the number of interleaved repetitions per combination.
	Reps int
}

// FusionSweep runs generated Query IV once per pass combination per
// repetition, interleaving the combinations across repetitions (so
// machine-load drift hits them equally) and keeping each combination's
// minimum wall — the least-perturbed run of a fixed workload.
func FusionSweep(cfg Config) (*FusionSweepResult, error) {
	combos := []struct {
		label             string
		fusion, combiners bool
	}{
		{"none", false, false},
		{"fusion", true, false},
		{"combiners", false, true},
		{"both", true, true},
	}
	par := cfg.MaxWorkers
	if par > 4 {
		par = 4
	}
	const reps = 5
	res := &FusionSweepResult{Par: par, Reps: reps}

	walls := make([]time.Duration, len(combos))
	cins := make([]int64, len(combos))
	couts := make([]int64, len(combos))
	var items int64
	for i := 0; i < reps; i++ {
		for ci, combo := range combos {
			env, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
			if err != nil {
				return nil, err
			}
			r, err := queries.Run(env, queries.Spec{
				Query:        "IV",
				Variant:      queries.Generated,
				Par:          par,
				SourcePar:    cfg.SourcePar,
				NoFuseChains: !combo.fusion,
				NoCombiners:  !combo.combiners,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: fusion sweep (%s): %w", combo.label, err)
			}
			if walls[ci] == 0 || r.Wall < walls[ci] {
				walls[ci] = r.Wall
			}
			cins[ci], couts[ci] = r.Stats.Combined()
			items = countItems(r.Stats, "yahoo")
		}
	}

	base := walls[0]
	for ci, combo := range combos {
		row := FusionRow{
			Label:       combo.label,
			FuseChains:  combo.fusion,
			Combiners:   combo.combiners,
			Wall:        walls[ci],
			Throughput:  float64(items) / walls[ci].Seconds(),
			Speedup:     base.Seconds() / walls[ci].Seconds(),
			CombinedIn:  cins[ci],
			CombinedOut: couts[ci],
		}
		if couts[ci] > 0 {
			row.Compression = float64(cins[ci]) / float64(couts[ci])
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the sweep as aligned text.
func (r *FusionSweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== fusion: optimization-pass sweep (Query IV generated, par=%d, min of %d interleaved reps) ==\n", r.Par, r.Reps)
	fmt.Fprintf(&b, "%10s %12s %14s %8s %12s %12s %12s\n",
		"passes", "wall", "tuples/s", "speedup", "combined_in", "combined_out", "compression")
	for _, row := range r.Rows {
		comp := "-"
		if row.Compression > 0 {
			comp = fmt.Sprintf("%.1fx", row.Compression)
		}
		fmt.Fprintf(&b, "%10s %12s %14.0f %7.2fx %12d %12d %12s\n",
			row.Label, row.Wall.Round(time.Microsecond), row.Throughput, row.Speedup,
			row.CombinedIn, row.CombinedOut, comp)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated records.
func (r *FusionSweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("figure,passes,fuse_chains,combiners,wall_s,tuples_per_s,speedup,combined_in,combined_out,compression\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "fusion,%s,%v,%v,%f,%f,%f,%d,%d,%f\n",
			row.Label, row.FuseChains, row.Combiners, row.Wall.Seconds(),
			row.Throughput, row.Speedup, row.CombinedIn, row.CombinedOut, row.Compression)
	}
	return b.String()
}
