package bench

import (
	"strings"
	"testing"
	"time"

	"datatrace/internal/workload"
)

// smallConfig keeps harness tests fast.
func smallConfig() Config {
	y := workload.DefaultYahooConfig()
	y.EventsPerSecond = 150
	y.Seconds = 6
	y.Users = 50
	y.Campaigns = 10
	y.AdsPerCampaign = 5
	sh := workload.DefaultSmartHomeConfig()
	sh.Buildings = 2
	sh.UnitsPerBuilding = 2
	sh.PlugsPerUnit = 2
	sh.Seconds = 40
	return Config{
		Yahoo:      y,
		OpDelay:    time.Microsecond,
		SmartHome:  sh,
		MaxWorkers: 4,
		SourcePar:  2,
	}
}

func TestFigure4Harness(t *testing.T) {
	fig, err := Figure4(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 6 {
		t.Fatalf("got %d panels, want 6", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Series) != 2 {
			t.Fatalf("panel %q has %d series, want 2", p.Title, len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.Points) != 4 {
				t.Fatalf("series %q has %d points, want 4", s.Label, len(s.Points))
			}
			for _, pt := range s.Points {
				if pt.Throughput <= 0 {
					t.Fatalf("non-positive throughput in %q at %d workers", s.Label, pt.Workers)
				}
			}
			// Throughput must be monotone non-decreasing in workers —
			// adding machines never hurts the simulated makespan.
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].Throughput+1e-9 < s.Points[i-1].Throughput {
					t.Fatalf("series %q throughput decreases at %d workers", s.Label, s.Points[i].Workers)
				}
			}
		}
	}
}

// mediumConfig is large enough for stable busy-time measurement (per-
// executor busy times in the milliseconds); the shape assertions below
// need that stability.
func mediumConfig() Config {
	cfg := smallConfig()
	cfg.Yahoo.EventsPerSecond = 1500
	cfg.Yahoo.Seconds = 12
	cfg.Yahoo.Users = 200
	cfg.OpDelay = 2 * time.Microsecond
	return cfg
}

func TestFigure4ScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling shape needs the medium workload")
	}
	// The compute-heavy parallelizable queries must actually scale:
	// ≥1.5× speedup from 1 to 4 workers for the generated variant.
	fig, err := Figure4(mediumConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Panels {
		for _, s := range p.Series {
			if sp := s.SpeedupAt(4); sp < 1.5 {
				t.Errorf("%s / %s: speedup at 4 workers = %.2f, want ≥ 1.5", p.Title, s.Label, sp)
			}
		}
	}
}

func TestFigure4GeneratedComparableToHandcrafted(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison needs the medium workload")
	}
	// The paper's headline: generated is comparable to handcrafted —
	// within 0%-20%, occasionally better. Since the columnar transport
	// landed, "occasionally better" is an understatement: the compiled
	// variant moves typed batches on its hot edges while handcrafted
	// keeps boxed per-event delivery, so generated can now beat
	// handcrafted severalfold. The guard that matters is the lower
	// bound (generated must never fall below half of handcrafted); the
	// upper bound only catches a broken handcrafted baseline.
	// EXPERIMENTS.md reports the measured ratios at full scale.
	fig, err := Figure4(mediumConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Panels {
		gen, hand := p.Series[0], p.Series[1]
		for i := range gen.Points {
			ratio := gen.Points[i].Throughput / hand.Points[i].Throughput
			if ratio < 0.5 || ratio > 8.0 {
				t.Errorf("%s at %d workers: generated/handcrafted = %.2f",
					p.Title, gen.Points[i].Workers, ratio)
			}
		}
	}
}

func TestFigure6Harness(t *testing.T) {
	fig, err := Figure6(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 1 || len(fig.Panels[0].Series) != 1 {
		t.Fatal("figure 6 must have one panel with one series")
	}
	s := fig.Panels[0].Series[0]
	if sp := s.SpeedupAt(4); sp < 1.5 {
		t.Errorf("smart homes speedup at 4 workers = %.2f, want ≥ 1.5", sp)
	}
}

func TestSection2Experiment(t *testing.T) {
	res, err := Section2(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.NaiveEquivalent {
		t.Error("naive deployment unexpectedly preserved semantics")
	}
	if !res.TypedEquivalent {
		t.Error("typed deployment failed to preserve semantics")
	}
	if !res.TypeCheckRejectsNaive {
		t.Error("type checker failed to reject the sort-free pipeline")
	}
}

func TestTableAndCSVRendering(t *testing.T) {
	fig := &Figure{
		Name:    "demo",
		Caption: "c",
		Panels: []Panel{{
			Title: "P",
			Series: []Series{
				{Label: "a", Points: []Point{{1, 100}, {2, 190}}},
				{Label: "b", Points: []Point{{1, 110}, {2, 200}}},
			},
		}},
	}
	tab := fig.Table()
	for _, want := range []string{"demo", "workers", "ratio", "100", "200"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "demo,\"P\",a,1,100.0") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 5 {
		t.Fatalf("csv has %d lines, want 5", lines)
	}
}

func TestSpeedupAt(t *testing.T) {
	s := Series{Points: []Point{{1, 100}, {4, 300}}}
	if got := s.SpeedupAt(4); got != 3 {
		t.Fatalf("speedup = %v", got)
	}
	if got := (Series{}).SpeedupAt(4); got != 0 {
		t.Fatalf("empty series speedup = %v", got)
	}
}

func TestBackendComparisonHarness(t *testing.T) {
	fig, err := BackendComparison(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 1 || len(fig.Panels[0].Series) != 2 {
		t.Fatal("backend figure must have one panel with two series")
	}
	for _, s := range fig.Panels[0].Series {
		for _, p := range s.Points {
			if p.Throughput <= 0 {
				t.Fatalf("series %q has non-positive throughput", s.Label)
			}
		}
	}
}
