package bench

import (
	"fmt"
	"strings"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/microbatch"
	"datatrace/internal/queries"
	"datatrace/internal/stream"
)

// ObsReport is the `dttbench -obs` artifact: the observability
// subsystem's per-component view of Query IV on both runtimes —
// execute-latency quantiles, the high-water queue depth (backpressure
// gauge) and marker-cut lag per component, plus a sampled span trace
// from the storm run.
type ObsReport struct {
	// Storm is the per-component snapshot of the storm run (Generated
	// variant with recovery on, so marker-cut lag is recorded).
	Storm metrics.StatsSnapshot
	// Microbatch is the per-task snapshot of the micro-batch run of the
	// same DAG (its marker lag is per-batch task duration; its queue
	// gauge is the per-partition batch backlog).
	Microbatch metrics.StatsSnapshot
	// StormWall and MicrobatchWall are the runs' elapsed times.
	StormWall      time.Duration
	MicrobatchWall time.Duration
}

// Observability runs Query IV with the observability subsystem
// enabled on both backends and returns the collected snapshots.
func Observability(cfg Config) (*ObsReport, error) {
	// Storm backend: generated Query IV with recovery, so the report
	// includes marker-cut lag.
	env, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
	if err != nil {
		return nil, err
	}
	res, err := queries.Run(env, queries.Spec{
		Query:     "IV",
		Variant:   queries.Generated,
		Par:       cfg.MaxWorkers,
		SourcePar: cfg.SourcePar,
		Recovery:  true,
		Obs:       true,
	})
	if err != nil {
		return nil, err
	}

	// Micro-batch backend on the same DAG and input.
	def, err := queries.ByName("IV")
	if err != nil {
		return nil, err
	}
	env2, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
	if err != nil {
		return nil, err
	}
	input := def.ReferenceInput(env2)
	mbRes, err := microbatch.RunDAG(def.DAG(env2, cfg.MaxWorkers),
		map[string][]stream.Event{"yahoo": input},
		&microbatch.Options{Obs: metrics.DefaultObsConfig()})
	if err != nil {
		return nil, err
	}

	return &ObsReport{
		Storm:          res.Stats.Snapshot(),
		Microbatch:     mbRes.Stats.Snapshot(),
		StormWall:      res.Wall,
		MicrobatchWall: mbRes.Wall,
	}, nil
}

// Table renders the report as aligned text.
func (r *ObsReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== observability: Query IV per-component latency, backpressure and marker lag ==\n")
	fmt.Fprintf(&b, "\nstorm backend (wall %s):\n", r.StormWall.Round(time.Millisecond))
	b.WriteString(r.Storm.ObsTable())
	fmt.Fprintf(&b, "\nmicro-batch backend (wall %s; marker lag = per-batch task duration):\n",
		r.MicrobatchWall.Round(time.Millisecond))
	b.WriteString(r.Microbatch.ObsTable())
	b.WriteString("\nsampled span trace (storm, most recent per executor ring):\n")
	b.WriteString(r.Storm.SpanTrace())
	return b.String()
}

// CSV renders the per-component rows as comma-separated records:
// backend,component,instances,executed,exec_p50_ns,exec_p99_ns,
// max_queue_depth,marker_lag_p50_ns,marker_lag_p99_ns.
func (r *ObsReport) CSV() string {
	var b strings.Builder
	b.WriteString("backend,component,instances,executed,exec_p50_ns,exec_p99_ns,max_queue_depth,marker_lag_p50_ns,marker_lag_p99_ns\n")
	emit := func(backend string, s metrics.StatsSnapshot) {
		for _, c := range s.ByComponent() {
			fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
				backend, c.Component, c.Instances, c.Executed,
				c.Exec.Quantile(0.50), c.Exec.Quantile(0.99),
				c.MaxQueueDepth,
				c.MarkerLag.Quantile(0.50), c.MarkerLag.Quantile(0.99))
		}
	}
	emit("storm", r.Storm)
	emit("microbatch", r.Microbatch)
	return b.String()
}
