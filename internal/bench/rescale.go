package bench

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"time"

	"datatrace/internal/metrics"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// This file measures elastic rescaling: the bursty-workload sweep
// behind EXPERIMENTS.md's autoscaling section. The workload has a
// lull–burst–lull shape — a paced trickle, then a sustained burst
// arriving faster than one worker can process, then a trickle again —
// and a keyed aggregation whose per-event cost makes the aggregation
// stage the bottleneck during the burst. Static parallelism must pick
// one point on the provisioning curve: par 1 is under-provisioned for
// the burst (the backlog drains at 1× speed), par 4 is
// over-provisioned for the lulls. The autoscaled run starts at 1,
// scales out when the burst builds queue depth, and scales back in
// when the lull returns — its throughput should approach the best
// static configuration's while never paying par 4 up front.

// RescaleWorkload shapes the bursty stream.
type RescaleWorkload struct {
	// LullBlocks marker blocks of LullPerBlock events open and close
	// the stream, paced at LullPace per event — a trickle one
	// aggregation instance absorbs with slack.
	LullBlocks, LullPerBlock int
	LullPace                 time.Duration
	// BurstBlocks marker blocks of BurstPerBlock events arrive in the
	// middle, paced at BurstPace per BurstEvery events — an arrival
	// rate above a single instance's processing capacity but within
	// the maximum configuration's, so the burst is survivable only at
	// scale. The burst is paced, not dumped: a source that outruns
	// event time by minutes would also push every cut barrier minutes
	// into the future, hiding exactly the reconfiguration latency this
	// sweep measures.
	BurstBlocks, BurstPerBlock int
	BurstEvery                 int
	BurstPace                  time.Duration
	// Keys is the key cardinality of the aggregation.
	Keys int
	// Cost is the simulated per-event processing cost of the
	// aggregation stage.
	Cost time.Duration
}

// DefaultRescaleWorkload sizes the sweep for seconds-long runs per
// configuration.
func DefaultRescaleWorkload() RescaleWorkload {
	// Small blocks keep cuts frequent: a rescale waits for the next
	// cut barrier, so the reconfiguration latency is about one block's
	// processing time at the pre-rescale parallelism. The nominal
	// sleeps below land near the scheduler's ~1ms timer floor, so the
	// effective per-event cost is ~1.1ms (≈870 events/s per instance)
	// and the burst arrives at ~3/1.1ms ≈ 2700 events/s — roughly 3×
	// one instance's capacity, under 4 instances'.
	return RescaleWorkload{
		LullBlocks: 6, LullPerBlock: 20, LullPace: 2 * time.Millisecond,
		BurstBlocks: 64, BurstPerBlock: 100, BurstEvery: 3, BurstPace: time.Millisecond,
		Keys: 64,
		Cost: 100 * time.Microsecond,
	}
}

// Items is the total number of non-marker events.
func (w RescaleWorkload) Items() int64 {
	return int64(2*w.LullBlocks*w.LullPerBlock + w.BurstBlocks*w.BurstPerBlock)
}

// Cuts is the number of marker cuts.
func (w RescaleWorkload) Cuts() int { return 2*w.LullBlocks + w.BurstBlocks }

// blockPace is one block's arrival pacing: sleep pace once per every
// items.
type blockPace struct {
	every int
	pace  time.Duration
}

// events materializes the stream: one marker per block, items keyed
// round-robin over the key space. paces[b] is the pacing of block b.
func (w RescaleWorkload) events() (events []stream.Event, paces []blockPace) {
	seq := int64(0)
	n := 0
	block := func(perBlock int, p blockPace) {
		for i := 0; i < perBlock; i++ {
			events = append(events, stream.Item(n%w.Keys, 1))
			n++
		}
		events = append(events, stream.Mark(stream.Marker{Seq: seq, Timestamp: seq}))
		seq++
		paces = append(paces, p)
	}
	lull := blockPace{every: 1, pace: w.LullPace}
	burst := blockPace{every: w.BurstEvery, pace: w.BurstPace}
	for b := 0; b < w.LullBlocks; b++ {
		block(w.LullPerBlock, lull)
	}
	for b := 0; b < w.BurstBlocks; b++ {
		block(w.BurstPerBlock, burst)
	}
	for b := 0; b < w.LullBlocks; b++ {
		block(w.LullPerBlock, lull)
	}
	return events, paces
}

// pacedSpout replays events, sleeping the enclosing block's pace once
// per its every items — the arrival-rate model of the bursty source.
func pacedSpout(events []stream.Event, paces []blockPace) storm.SpoutFunc {
	i, block, since := 0, 0, 0
	return func() (stream.Event, bool) {
		if i >= len(events) {
			return stream.Event{}, false
		}
		e := events[i]
		i++
		if e.IsMarker {
			block++
			return e, true
		}
		p := paces[block]
		if since++; p.pace > 0 && since >= p.every {
			since = 0
			time.Sleep(p.pace)
		}
		return e, true
	}
}

// costlyAggBolt is a recoverable, reshardable per-key running sum
// whose per-event cost models an expensive aggregation (a DB write, a
// feature computation): the knob that makes the aggregation stage the
// burst's bottleneck.
type costlyAggBolt struct {
	cost time.Duration
	sums map[int]int64
}

func newCostlyAggBolt(cost time.Duration) func(int) storm.Bolt {
	return func(int) storm.Bolt { return &costlyAggBolt{cost: cost, sums: map[int]int64{}} }
}

func (b *costlyAggBolt) Next(e stream.Event, emit func(stream.Event)) {
	if e.IsMarker {
		emit(e)
		return
	}
	if b.cost > 0 {
		time.Sleep(b.cost)
	}
	k := e.Key.(int)
	b.sums[k] += int64(e.Value.(int))
	emit(stream.Item(k, b.sums[k]))
}

func (b *costlyAggBolt) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b.sums); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (b *costlyAggBolt) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&b.sums)
}

// Reshard implements storm.Resharder: every key's running sum moves
// to the key's owner under the new parallelism.
func (b *costlyAggBolt) Reshard(old [][]byte, newPar int, owner func(key any) int) ([][]byte, error) {
	shards := make([]map[int]int64, newPar)
	for j := range shards {
		shards[j] = map[int]int64{}
	}
	for _, blob := range old {
		if len(blob) == 0 {
			continue
		}
		var sums map[int]int64
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&sums); err != nil {
			return nil, err
		}
		for k, v := range sums {
			shards[owner(k)][k] += v
		}
	}
	out := make([][]byte, newPar)
	for j, m := range shards {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			return nil, err
		}
		out[j] = buf.Bytes()
	}
	return out, nil
}

// RescaleRow is one configuration's measurement.
type RescaleRow struct {
	// Config labels the provisioning: "static" or "autoscaled".
	Config string
	// Par is the static parallelism, or the Min..Max range.
	Par string
	// Wall is the run's wall time.
	Wall time.Duration
	// Throughput is items per second of wall time.
	Throughput float64
	// Rescales is the number of live reconfigurations performed.
	Rescales int
	// FinalPar is the aggregation's parallelism when the run ended.
	FinalPar int
}

// RescaleSweepResult is the full bursty sweep.
type RescaleSweepResult struct {
	Workload RescaleWorkload
	Rows     []RescaleRow
	// AutoVsBest is autoscaled throughput over the best static
	// configuration's (1.0 = parity).
	AutoVsBest float64
	// AutoVsUnder is autoscaled throughput over the most
	// under-provisioned static configuration's.
	AutoVsUnder float64
}

const (
	rescaleMinPar = 1
	rescaleMaxPar = 4
)

// RescaleSweep runs the bursty workload at static parallelism 1, 2
// and 4 and once under the autoscaler (Min 1, Max 4), interleaving
// repetitions and keeping each configuration's best wall time.
func RescaleSweep(cfg Config) (*RescaleSweepResult, error) {
	w := DefaultRescaleWorkload()
	events, paces := w.events()
	items := w.Items()

	build := func(par int, auto bool) *storm.Topology {
		top := storm.NewTopology("bursty-agg")
		top.AddSpout("src", 1, func(int) storm.Spout { return pacedSpout(events, paces) })
		top.AddBolt("agg", par, newCostlyAggBolt(w.Cost)).FieldsGrouping("src", true)
		top.AddSink("sink", "agg")
		top.SetRecovery(storm.RecoveryPolicy{Enabled: true})
		if auto {
			top.SetObservability(metrics.ObsConfig{Enabled: true})
			top.SetAutoscale(&storm.AutoscalePolicy{
				Component: "agg",
				Min:       rescaleMinPar,
				Max:       rescaleMaxPar,
				Interval:  2 * time.Millisecond,
				HighDepth: 32,
				Sustain:   1,
				// The lull trickle executes a couple of events per
				// poll; treating that as idle lets the controller
				// scale back in after the burst drains.
				LowDelta: 4,
			})
		}
		return top
	}

	type outcome struct {
		wall     time.Duration
		rescales int
		finalPar int
	}
	runOnce := func(par int, auto bool) (outcome, error) {
		top := build(par, auto)
		res, err := top.Run()
		if err != nil {
			return outcome{}, err
		}
		o := outcome{wall: res.Wall, rescales: top.Rescales(), finalPar: par}
		for _, c := range top.Components() {
			if c.Name == "agg" {
				o.finalPar = c.Parallelism
			}
		}
		return o, nil
	}

	statics := []int{1, 2, 4}
	best := make([]outcome, len(statics))
	var bestAuto outcome
	const reps = 3
	for i := 0; i < reps; i++ {
		for s, par := range statics {
			o, err := runOnce(par, false)
			if err != nil {
				return nil, fmt.Errorf("bench: rescale sweep static par=%d: %w", par, err)
			}
			if i == 0 || o.wall < best[s].wall {
				best[s] = o
			}
		}
		o, err := runOnce(rescaleMinPar, true)
		if err != nil {
			return nil, fmt.Errorf("bench: rescale sweep autoscaled: %w", err)
		}
		if i == 0 || o.wall < bestAuto.wall {
			bestAuto = o
		}
	}

	res := &RescaleSweepResult{Workload: w}
	tput := func(o outcome) float64 { return float64(items) / o.wall.Seconds() }
	bestStatic, underStatic := 0.0, 0.0
	for s, par := range statics {
		th := tput(best[s])
		if th > bestStatic {
			bestStatic = th
		}
		if s == 0 || th < underStatic {
			underStatic = th
		}
		res.Rows = append(res.Rows, RescaleRow{
			Config: "static", Par: fmt.Sprintf("%d", par),
			Wall: best[s].wall, Throughput: th,
			Rescales: best[s].rescales, FinalPar: best[s].finalPar,
		})
	}
	autoTh := tput(bestAuto)
	res.Rows = append(res.Rows, RescaleRow{
		Config: "autoscaled", Par: fmt.Sprintf("%d..%d", rescaleMinPar, rescaleMaxPar),
		Wall: bestAuto.wall, Throughput: autoTh,
		Rescales: bestAuto.rescales, FinalPar: bestAuto.finalPar,
	})
	res.AutoVsBest = autoTh / bestStatic
	res.AutoVsUnder = autoTh / underStatic
	return res, nil
}

// Table renders the sweep as aligned text.
func (r *RescaleSweepResult) Table() string {
	var b strings.Builder
	w := r.Workload
	fmt.Fprintf(&b, "== rescale: bursty workload, static provisioning vs autoscaler (%d items, %d cuts, burst %d×%d, bolt cost %v) ==\n",
		w.Items(), w.Cuts(), w.BurstBlocks, w.BurstPerBlock, w.Cost)
	fmt.Fprintf(&b, "%12s %6s %12s %14s %9s %9s\n",
		"config", "par", "wall", "items/s", "rescales", "final_par")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12s %6s %12s %14.0f %9d %9d\n",
			row.Config, row.Par, row.Wall.Round(time.Microsecond),
			row.Throughput, row.Rescales, row.FinalPar)
	}
	fmt.Fprintf(&b, "autoscaled/best-static throughput: %.2f   autoscaled/under-provisioned: %.2f\n",
		r.AutoVsBest, r.AutoVsUnder)
	return b.String()
}

// CSV renders the sweep as comma-separated records.
func (r *RescaleSweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("figure,config,par,wall_s,items_per_s,rescales,final_par\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "rescale,%s,%s,%f,%f,%d,%d\n",
			row.Config, row.Par, row.Wall.Seconds(), row.Throughput,
			row.Rescales, row.FinalPar)
	}
	return b.String()
}
