package bench

import (
	"fmt"
	"strings"
	"time"

	"datatrace/internal/queries"
	"datatrace/internal/storm"
)

// This file measures the columnar hot path: the boxed-vs-columnar
// batch-size sweep behind EXPERIMENTS.md's columnar section. Query IV
// runs end-to-end at a range of transport batch sizes twice per size
// — once with the typed struct-of-arrays edges the compiler selects
// by default, once with Spec.NoColumnar forcing the boxed []Event
// transport — so each row reads directly as "what do typed columns
// buy over boxed events at this batch size". Batch size 1 is the
// degenerate point where a column batch holds one row and the
// columnar machinery is pure overhead; the gap is expected to open
// with the batch size as per-row boxing amortizes away.

// ColumnarRow is one batch-size measurement pair.
type ColumnarRow struct {
	// BatchSize is the transport batch size of both runs.
	BatchSize int
	// BoxedWall and ColWall are the minimum end-to-end wall times over
	// the repetitions for the boxed and columnar transports.
	BoxedWall, ColWall time.Duration
	// BoxedThroughput and ColThroughput are input tuples divided by
	// the respective walls.
	BoxedThroughput, ColThroughput float64
	// Speedup is BoxedWall over ColWall (columnar's win at this size).
	Speedup float64
}

// ColumnarSweepResult is the full sweep.
type ColumnarSweepResult struct {
	Rows []ColumnarRow
	// Par is the per-stage parallelism every run used.
	Par int
	// Reps is the number of interleaved repetitions per configuration.
	Reps int
}

// ColumnarSweep runs generated Query IV once per (batch size,
// transport) pair per repetition, interleaving all configurations
// across repetitions (so machine-load drift hits them equally) and
// keeping each configuration's minimum wall — the least-perturbed run
// of a fixed workload.
func ColumnarSweep(cfg Config) (*ColumnarSweepResult, error) {
	batches := []int{1, 16, 64, 256, 1024}
	par := cfg.MaxWorkers
	if par > 4 {
		par = 4
	}
	const reps = 5
	res := &ColumnarSweepResult{Par: par, Reps: reps}

	boxed := make([]time.Duration, len(batches))
	col := make([]time.Duration, len(batches))
	var items int64
	for i := 0; i < reps; i++ {
		for bi, batch := range batches {
			for _, noCol := range []bool{false, true} {
				env, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
				if err != nil {
					return nil, err
				}
				r, err := queries.Run(env, queries.Spec{
					Query:      "IV",
					Variant:    queries.Generated,
					Par:        par,
					SourcePar:  cfg.SourcePar,
					NoColumnar: noCol,
					Transport:  &storm.TransportOptions{BatchSize: batch},
				})
				if err != nil {
					return nil, fmt.Errorf("bench: columnar sweep (batch %d, noColumnar=%v): %w", batch, noCol, err)
				}
				walls := col
				if noCol {
					walls = boxed
				}
				if walls[bi] == 0 || r.Wall < walls[bi] {
					walls[bi] = r.Wall
				}
				items = countItems(r.Stats, "yahoo")
			}
		}
	}

	for bi, batch := range batches {
		res.Rows = append(res.Rows, ColumnarRow{
			BatchSize:       batch,
			BoxedWall:       boxed[bi],
			ColWall:         col[bi],
			BoxedThroughput: float64(items) / boxed[bi].Seconds(),
			ColThroughput:   float64(items) / col[bi].Seconds(),
			Speedup:         boxed[bi].Seconds() / col[bi].Seconds(),
		})
	}
	return res, nil
}

// Table renders the sweep as aligned text.
func (r *ColumnarSweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== columnar: boxed vs typed-column batches (Query IV generated, par=%d, min of %d interleaved reps) ==\n", r.Par, r.Reps)
	fmt.Fprintf(&b, "%8s %12s %12s %14s %14s %8s\n", "batch", "boxed", "columnar", "boxed t/s", "col t/s", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12s %12s %14.0f %14.0f %7.2fx\n",
			row.BatchSize,
			row.BoxedWall.Round(time.Microsecond), row.ColWall.Round(time.Microsecond),
			row.BoxedThroughput, row.ColThroughput, row.Speedup)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated records.
func (r *ColumnarSweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("figure,batch_size,boxed_wall_s,columnar_wall_s,boxed_tuples_per_s,columnar_tuples_per_s,speedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "columnar,%d,%f,%f,%f,%f,%f\n",
			row.BatchSize, row.BoxedWall.Seconds(), row.ColWall.Seconds(),
			row.BoxedThroughput, row.ColThroughput, row.Speedup)
	}
	return b.String()
}
