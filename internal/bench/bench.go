// Package bench regenerates the paper's evaluation artifacts: the six
// throughput-scaling panels of Figure 4 (Queries I–VI, generated vs
// handcrafted) and the Smart Homes scaling curve of Figure 6, plus
// the section 2 semantics experiment.
//
// Machine-count scaling is simulated (see DESIGN.md): every topology
// runs for real on the concurrent runtime, each executor's busy time
// is measured, and "throughput on W workers" is input tuples divided
// by the LPT makespan of packing those busy times onto W workers.
// This reproduces the *shape* of the paper's figures — who scales,
// who wins, by how much — on a single machine; absolute tuples/sec
// are not comparable to the paper's cluster.
package bench

import (
	"fmt"
	"strings"
	"time"

	"datatrace/internal/iot"
	"datatrace/internal/metrics"
	"datatrace/internal/microbatch"
	"datatrace/internal/queries"
	"datatrace/internal/smarthome"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// Point is one measurement: simulated throughput at a worker count.
type Point struct {
	Workers    int
	Throughput float64 // tuples/second
}

// Series is one line of a panel (e.g. "generated").
type Series struct {
	Label  string
	Points []Point
}

// Panel is one subplot (e.g. "Query IV").
type Panel struct {
	Title  string
	Series []Series
}

// Figure is a reproduced evaluation figure.
type Figure struct {
	Name    string
	Caption string
	Panels  []Panel
}

// Config parameterizes the benchmark harness.
type Config struct {
	// Yahoo is the Figure 4 workload.
	Yahoo workload.YahooConfig
	// OpDelay models the out-of-process database's per-call latency.
	OpDelay time.Duration
	// SmartHome is the Figure 6 workload.
	SmartHome workload.SmartHomeConfig
	// MaxWorkers is the largest simulated cluster (paper: 8).
	MaxWorkers int
	// SourcePar is the number of source partitions per run.
	SourcePar int
}

// DefaultConfig returns a configuration sized for minutes-scale runs.
func DefaultConfig() Config {
	y := workload.DefaultYahooConfig()
	y.EventsPerSecond = 2000
	y.Seconds = 15
	sh := workload.DefaultSmartHomeConfig()
	sh.Seconds = 300
	return Config{
		Yahoo:      y,
		OpDelay:    2 * time.Microsecond,
		SmartHome:  sh,
		MaxWorkers: 8,
		SourcePar:  2,
	}
}

// countItems counts non-marker events produced by all spouts.
func countItems(stats *metrics.Stats, spout string) int64 {
	executed, _ := stats.Component(spout)
	return executed
}

// scaling converts one run's stats into a throughput-vs-workers
// series using the simulated-cluster makespan.
func scaling(stats *metrics.Stats, inputTuples int64, maxWorkers int) []Point {
	pts := make([]Point, 0, maxWorkers)
	for w := 1; w <= maxWorkers; w++ {
		pts = append(pts, Point{Workers: w, Throughput: stats.Throughput(inputTuples, w)})
	}
	return pts
}

// Figure4 runs every query in both variants and returns the six
// scaling panels. Each variant runs once at parallelism MaxWorkers;
// worker counts below that leave some replicas co-scheduled, exactly
// as the paper's fixed-topology/varying-cluster setup does.
func Figure4(cfg Config) (*Figure, error) {
	fig := &Figure{
		Name:    "figure4",
		Caption: "Queries I–VI: simulated throughput vs workers, generated (transduction) vs handcrafted",
	}
	for _, def := range queries.All() {
		panel := Panel{Title: "Query " + def.Name + " — " + def.Description}
		for _, variant := range []queries.Variant{queries.Generated, queries.Handcrafted} {
			env, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
			if err != nil {
				return nil, err
			}
			res, err := queries.Run(env, queries.Spec{
				Query:     def.Name,
				Variant:   variant,
				Par:       cfg.MaxWorkers,
				SourcePar: cfg.SourcePar,
			})
			if err != nil {
				return nil, fmt.Errorf("query %s %s: %w", def.Name, variant, err)
			}
			items := countItems(res.Stats, "yahoo")
			panel.Series = append(panel.Series, Series{
				Label:  string(variant),
				Points: scaling(res.Stats, items, cfg.MaxWorkers),
			})
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// Figure6 runs the Smart Homes prediction pipeline and returns its
// scaling panel.
func Figure6(cfg Config) (*Figure, error) {
	env, err := smarthome.NewEnv(cfg.SmartHome, nil)
	if err != nil {
		return nil, err
	}
	res, err := smarthome.Run(env, cfg.MaxWorkers, cfg.SourcePar)
	if err != nil {
		return nil, err
	}
	items := countItems(res.Stats, "hub")
	return &Figure{
		Name:    "figure6",
		Caption: "Smart Homes energy prediction: simulated throughput vs workers",
		Panels: []Panel{{
			Title: "Smart Homes — power prediction (REPTree)",
			Series: []Series{{
				Label:  "transduction",
				Points: scaling(res.Stats, items, cfg.MaxWorkers),
			}},
		}},
	}, nil
}

// Section2Result summarizes the motivation experiment.
type Section2Result struct {
	// NaiveEquivalent is whether the naive shuffle-parallelized
	// deployment matched the reference trace (expected: false).
	NaiveEquivalent bool
	// TypedEquivalent is whether the typed deployment matched
	// (expected: true).
	TypedEquivalent bool
	// TypeCheckRejectsNaive is whether the framework statically
	// rejected the sort-free pipeline (expected: true).
	TypeCheckRejectsNaive bool
	// Parallelism used for both deployments.
	Parallelism int
}

// Section2 runs the motivation experiment of section 2.
func Section2(par int) (*Section2Result, error) {
	if par < 2 {
		par = 2
	}
	cfg := iot.DefaultSensorConfig()
	ref, err := iot.Reference(cfg)
	if err != nil {
		return nil, err
	}
	naive, err := iot.RunNaive(cfg, par)
	if err != nil {
		return nil, err
	}
	typed, err := iot.RunTyped(cfg, par)
	if err != nil {
		return nil, err
	}
	return &Section2Result{
		NaiveEquivalent:       stream.Equivalent(iot.SinkType(), naive.Sinks["sink"], ref["sink"]),
		TypedEquivalent:       stream.Equivalent(iot.SinkType(), typed.Sinks["sink"], ref["sink"]),
		TypeCheckRejectsNaive: iot.IllTypedDAG(cfg, par).Check() != nil,
		Parallelism:           par,
	}, nil
}

// Table renders the figure as aligned text, one block per panel.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.Name, f.Caption)
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "\n%s\n", p.Title)
		fmt.Fprintf(&b, "%8s", "workers")
		for _, s := range p.Series {
			fmt.Fprintf(&b, " %14s", s.Label)
		}
		if len(p.Series) == 2 {
			fmt.Fprintf(&b, " %8s", "ratio")
		}
		b.WriteString("\n")
		for i := range p.Series[0].Points {
			fmt.Fprintf(&b, "%8d", p.Series[0].Points[i].Workers)
			for _, s := range p.Series {
				fmt.Fprintf(&b, " %14.0f", s.Points[i].Throughput)
			}
			if len(p.Series) == 2 && p.Series[1].Points[i].Throughput > 0 {
				fmt.Fprintf(&b, " %8.2f", p.Series[0].Points[i].Throughput/p.Series[1].Points[i].Throughput)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// CSV renders the figure as comma-separated records:
// figure,panel,series,workers,throughput.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,panel,series,workers,throughput\n")
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for _, pt := range s.Points {
				fmt.Fprintf(&b, "%s,%q,%s,%d,%.1f\n", f.Name, p.Title, s.Label, pt.Workers, pt.Throughput)
			}
		}
	}
	return b.String()
}

// SpeedupAt reports a series' throughput ratio between w workers and
// 1 worker — the scaling factor the paper's figures visualize.
func (s Series) SpeedupAt(w int) float64 {
	var t1, tw float64
	for _, p := range s.Points {
		if p.Workers == 1 {
			t1 = p.Throughput
		}
		if p.Workers == w {
			tw = p.Throughput
		}
	}
	if t1 == 0 {
		return 0
	}
	return tw / t1
}

// BackendComparison is an additional figure this reproduction
// contributes (anticipated by the paper's §8 "other frameworks"
// future work): the same compiled Query IV DAG executed by the
// record-at-a-time storm backend and by the discretized-streams
// micro-batch backend, with simulated throughput vs workers for both.
func BackendComparison(cfg Config) (*Figure, error) {
	def, err := queries.ByName("IV")
	if err != nil {
		return nil, err
	}
	panel := Panel{Title: "Query IV — storm (record-at-a-time) vs micro-batch (discretized streams)"}

	// Storm backend.
	env, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
	if err != nil {
		return nil, err
	}
	res, err := queries.Run(env, queries.Spec{
		Query: "IV", Variant: queries.Generated, Par: cfg.MaxWorkers, SourcePar: cfg.SourcePar,
	})
	if err != nil {
		return nil, err
	}
	items := countItems(res.Stats, "yahoo")
	// The micro-batch engine pre-materializes its input and collects
	// sinks inline, so compare operator work only on both sides.
	opsOnly := res.Stats.Filtered(func(c string) bool {
		return c != "yahoo" && c != "sink"
	})
	panel.Series = append(panel.Series, Series{
		Label:  "storm",
		Points: scaling(opsOnly, items, cfg.MaxWorkers),
	})

	// Micro-batch backend on the same DAG and input.
	env2, err := queries.NewEnv(cfg.Yahoo, cfg.OpDelay)
	if err != nil {
		return nil, err
	}
	input := def.ReferenceInput(env2)
	mbRes, err := microbatch.RunDAG(def.DAG(env2, cfg.MaxWorkers),
		map[string][]stream.Event{"yahoo": input}, nil)
	if err != nil {
		return nil, err
	}
	var mbItems int64
	for _, e := range input {
		if !e.IsMarker {
			mbItems++
		}
	}
	panel.Series = append(panel.Series, Series{
		Label:  "microbatch",
		Points: scaling(mbRes.Stats, mbItems, cfg.MaxWorkers),
	})

	return &Figure{
		Name:    "backends",
		Caption: "Query IV on both execution backends: simulated throughput vs workers",
		Panels:  []Panel{panel},
	}, nil
}
