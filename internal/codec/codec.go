// Package codec serializes stream events, modelling the
// tuple-serialization boundary a real distributed deployment has on
// every inter-worker connection (the paper's §2 pipeline exists
// precisely because deserialization is the expensive stage worth
// parallelizing). The storm runtime can be configured to encode and
// decode every routed event (Topology.SetCodec), which both charges a
// realistic per-hop cost and enforces that all keys and values are
// actually serializable — as Apache Storm's Kryo boundary does.
//
// Encoding is gob-based: concrete key/value types are registered
// once, and per-connection stream encoders amortize gob's type
// descriptions the way a long-lived connection would.
package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"datatrace/internal/stream"
)

// wire is the serialized form of one event. Key and Value ride as
// interfaces, so their concrete types must be registered.
type wire struct {
	IsMarker bool
	Seq      int64
	Ts       int64
	Key      any
	Value    any
}

// Codec encodes and decodes events. Safe for concurrent use; each
// call uses a fresh gob encoder (see Conn for the amortized form).
type Codec struct{}

// New creates a codec.
func New() *Codec { return &Codec{} }

// Register declares a concrete key or value type, like gob.Register.
// Register every type that flows through serialized connections.
func Register(v any) { gob.Register(v) }

// Encode serializes one event. An unregistered key or value type is
// reported as ErrUnregisteredType.
func (c *Codec) Encode(e stream.Event) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(toWire(e)); err != nil {
		return nil, classify(fmt.Errorf("codec: encode %s: %w", e, err))
	}
	return buf.Bytes(), nil
}

// Decode deserializes one event produced by Encode. An event whose
// concrete key or value type is not registered on this side is
// reported as ErrUnregisteredType, so transports can degrade per the
// drop-and-log policy instead of treating it as stream corruption.
func (c *Codec) Decode(b []byte) (stream.Event, error) {
	var w wire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return stream.Event{}, classify(fmt.Errorf("codec: decode: %w", err))
	}
	return fromWire(w), nil
}

func toWire(e stream.Event) wire {
	return wire{IsMarker: e.IsMarker, Seq: e.Marker.Seq, Ts: e.Marker.Timestamp, Key: e.Key, Value: e.Value}
}

func fromWire(w wire) stream.Event {
	if w.IsMarker {
		return stream.Mark(stream.Marker{Seq: w.Seq, Timestamp: w.Ts})
	}
	return stream.Item(w.Key, w.Value)
}

// Conn is a long-lived encode/decode pair for one logical connection:
// gob transmits each type's description once per Conn, as a TCP
// connection between workers would. Conn is not safe for concurrent
// use; give each connection its own.
type Conn struct {
	mu  sync.Mutex
	buf bytes.Buffer
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewConn creates a connected encoder/decoder pair (loopback).
func NewConn() *Conn {
	c := &Conn{}
	c.enc = gob.NewEncoder(&c.buf)
	c.dec = gob.NewDecoder(&c.buf)
	return c
}

// RoundTrip encodes the event into the connection and decodes it back
// — the cost one serialized hop pays.
func (c *Conn) RoundTrip(e stream.Event) (stream.Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(toWire(e)); err != nil {
		return stream.Event{}, classify(fmt.Errorf("codec: conn encode %s: %w", e, err))
	}
	var w wire
	if err := c.dec.Decode(&w); err != nil {
		return stream.Event{}, classify(fmt.Errorf("codec: conn decode: %w", err))
	}
	return fromWire(w), nil
}
