package codec_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"datatrace/internal/codec"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

func init() {
	codec.Register(workload.YahooEvent{})
	codec.Register(workload.PlugMeasurement{})
	codec.Register(stream.Unit{})
	codec.Register(int(0))
	codec.Register(int64(0))
	codec.Register(float64(0))
	codec.Register("")
}

func TestRoundTripBasics(t *testing.T) {
	c := codec.New()
	cases := []stream.Event{
		stream.Item(int64(3), "hello"),
		stream.Item("key", 3.5),
		stream.Item(stream.Unit{}, workload.YahooEvent{UserID: 1, AdID: 2, Type: workload.Click, EventTime: 99}),
		stream.Mark(stream.Marker{Seq: 7, Timestamp: 8000}),
	}
	for _, e := range cases {
		b, err := c.Encode(e)
		if err != nil {
			t.Fatalf("encode %s: %v", e, err)
		}
		got, err := c.Decode(b)
		if err != nil {
			t.Fatalf("decode %s: %v", e, err)
		}
		if got.String() != e.String() {
			t.Fatalf("round trip changed %s into %s", e, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	c := codec.New()
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(91))}
	f := func(key int64, value float64, marker bool, seq int64, ts int64) bool {
		var e stream.Event
		if marker {
			e = stream.Mark(stream.Marker{Seq: seq, Timestamp: ts})
		} else {
			e = stream.Item(key, value)
		}
		b, err := c.Encode(e)
		if err != nil {
			return false
		}
		got, err := c.Decode(b)
		return err == nil && got == e
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestConnAmortizesTypeInfo(t *testing.T) {
	conn := codec.NewConn()
	for i := 0; i < 100; i++ {
		e := stream.Item(int64(i), float64(i)*1.5)
		got, err := conn.RoundTrip(e)
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Fatalf("round trip changed %s into %s", e, got)
		}
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	c := codec.New()
	if _, err := c.Decode([]byte("not gob")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

func TestUnregisteredTypeFailsLoudly(t *testing.T) {
	type secret struct{ X int }
	c := codec.New()
	if _, err := c.Encode(stream.Item(int64(1), secret{X: 1})); err == nil {
		t.Fatal("unregistered concrete type must fail to encode")
	}
}

// TestSerializedTopologyPreservesTrace runs a parallel pipeline with
// every connection serialized and checks the trace is unchanged — the
// runtime analogue of Storm's Kryo boundary.
func TestSerializedTopologyPreservesTrace(t *testing.T) {
	var in []stream.Event
	for b := 0; b < 3; b++ {
		for i := 0; i < 15; i++ {
			in = append(in, stream.Item(int64(i%4), float64(i)))
		}
		in = append(in, stream.Mark(stream.Marker{Seq: int64(b), Timestamp: int64(b + 1)}))
	}
	build := func(serialize bool) (*storm.Result, error) {
		top := storm.NewTopology("wire")
		if serialize {
			top.SetSerializer(func() storm.Serializer { return codec.NewConn() })
		}
		top.AddSpout("src", 1, func(int) storm.Spout { return storm.SliceSpout(in) })
		top.AddBolt("scale", 3, func(int) storm.Bolt {
			return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
				if e.IsMarker {
					emit(e)
					return
				}
				emit(stream.Item(e.Key, e.Value.(float64)*2))
			})
		}).FieldsGrouping("src", true)
		top.AddSink("sink", "scale")
		return top.Run()
	}
	plain, err := build(false)
	if err != nil {
		t.Fatal(err)
	}
	wired, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equivalent(stream.U("Int64", "Float"), plain.Sinks["sink"], wired.Sinks["sink"]) {
		t.Fatal("serialization changed the output trace")
	}
}

// TestSerializationFailureSurfacesAsError: an unserializable value in
// a serialized topology fails the run instead of hanging it.
func TestSerializationFailureSurfacesAsError(t *testing.T) {
	type hidden struct{ F func() } // functions cannot be encoded
	in := []stream.Event{stream.Item(int64(1), hidden{})}
	top := storm.NewTopology("bad")
	top.SetSerializer(func() storm.Serializer { return codec.NewConn() })
	top.AddSpout("src", 1, func(int) storm.Spout { return storm.SliceSpout(in) })
	top.AddBolt("id", 1, func(int) storm.Bolt {
		return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) { emit(e) })
	}).ShuffleGrouping("src", true)
	top.AddSink("sink", "id")
	_, err := top.Run()
	if err == nil {
		t.Fatal("unserializable tuple must fail the topology")
	}
}

// countingSerializer wraps a Conn and counts round trips (atomically:
// each producer executor gets its own serializer, but they share the
// counter).
type countingSerializer struct {
	conn *codec.Conn
	n    *atomic.Int64
}

func (c countingSerializer) RoundTrip(e stream.Event) (stream.Event, error) {
	c.n.Add(1)
	return c.conn.RoundTrip(e)
}

// TestWorkerPlacementSkipsLocalHops: with all executors on one
// worker, no send pays the wire format; with two workers, some do —
// and the trace is preserved either way.
func TestWorkerPlacementSkipsLocalHops(t *testing.T) {
	var in []stream.Event
	for b := 0; b < 2; b++ {
		for i := 0; i < 10; i++ {
			in = append(in, stream.Item(int64(i%3), float64(i)))
		}
		in = append(in, stream.Mark(stream.Marker{Seq: int64(b), Timestamp: int64(b + 1)}))
	}
	run := func(workers int) (int64, []stream.Event) {
		var count atomic.Int64
		top := storm.NewTopology("placed")
		top.SetSerializer(func() storm.Serializer {
			return countingSerializer{conn: codec.NewConn(), n: &count}
		})
		top.SetWorkers(workers)
		top.AddSpout("src", 1, func(int) storm.Spout { return storm.SliceSpout(in) })
		top.AddBolt("id", 2, func(int) storm.Bolt {
			return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) { emit(e) })
		}).ShuffleGrouping("src", true)
		top.AddSink("sink", "id")
		res, err := top.Run()
		if err != nil {
			t.Fatal(err)
		}
		return count.Load(), res.Sinks["sink"]
	}
	oneWorker, outOne := run(1)
	if oneWorker != 0 {
		t.Fatalf("single-worker placement paid %d round trips, want 0", oneWorker)
	}
	twoWorkers, outTwo := run(2)
	if twoWorkers == 0 {
		t.Fatal("two-worker placement paid no round trips")
	}
	if !stream.Equivalent(stream.U("Int64", "Float"), outOne, outTwo) {
		t.Fatal("placement changed the output trace")
	}
}
