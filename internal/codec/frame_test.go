package codec

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"reflect"
	"testing"

	"datatrace/internal/stream"
)

func init() {
	// The concrete key/value types the frame tests send through
	// interface fields.
	Register(int64(0))
	Register("")
	Register(false)
	Register(stream.Unit{})
}

// mkMsgs deterministically derives a message vector from a byte
// string — the structured half of the fuzz target and a convenient
// generator for the property test.
func mkMsgs(data []byte) []WireMessage {
	var msgs []WireMessage
	for i := 0; i+3 < len(data); i += 4 {
		kind, ch, a, b := data[i], data[i+1], data[i+2], data[i+3]
		m := WireMessage{Ch: int32(ch % 8), Sent: int64(a) * 1000}
		switch kind % 4 {
		case 0: // item with int64 key/value
			m.Ev = WireEvent{Key: int64(a), Value: int64(b)}
		case 1: // item with string/bool payload
			m.Ev = WireEvent{Key: string(rune('a' + a%26)), Value: b%2 == 0}
		case 2: // marker
			m.Ev = WireEvent{IsMarker: true, Seq: int64(a), Ts: int64(b) * 1000}
		case 3: // end-of-stream notice
			m.EOS = true
			m.Sent = 0
		}
		msgs = append(msgs, m)
	}
	return msgs
}

// encodeFrames runs one connection's encoder over the frames.
func encodeFrames(t *testing.T, frames []Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewFrameEncoder(&buf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

// decodeFrames drains a stream produced by encodeFrames.
func decodeFrames(t *testing.T, b []byte) []Frame {
	t.Helper()
	dec := NewFrameDecoder(bytes.NewReader(b))
	var out []Frame
	for {
		var f Frame
		err := dec.Decode(&f)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decode frame %d: %v", len(out), err)
		}
		out = append(out, f)
	}
}

// TestFrameRoundTripIdentity is the transport's core property:
// encode∘decode is the identity on batched message vectors — markers,
// EOS notices, send stamps and mixed key/value types included — over
// a single persistent connection whose frames vary in size.
func TestFrameRoundTripIdentity(t *testing.T) {
	var frames []Frame
	// Frame shapes: empty vector, single event, a marker-terminated
	// batch, a large batch, and derived pseudo-random vectors.
	frames = append(frames,
		Frame{Dest: 0},
		Frame{Dest: 3, Msgs: []WireMessage{{Ch: 1, Ev: WireEvent{Key: stream.Unit{}, Value: int64(42)}}}},
		Frame{Dest: 7, Msgs: []WireMessage{
			{Ch: 0, Sent: 5, Ev: WireEvent{Key: int64(1), Value: "x"}},
			{Ch: 0, Sent: 6, Ev: WireEvent{IsMarker: true, Seq: 9, Ts: 10000}},
		}},
		Frame{Dest: 2, Msgs: []WireMessage{{Ch: 4, EOS: true}}},
	)
	big := Frame{Dest: 11}
	for i := 0; i < 500; i++ {
		big.Msgs = append(big.Msgs, WireMessage{Ch: int32(i % 5), Ev: WireEvent{Key: int64(i), Value: int64(i * i)}})
	}
	frames = append(frames, big)
	seed := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	frames = append(frames, Frame{Dest: 1, Msgs: mkMsgs(seed)})

	got := decodeFrames(t, encodeFrames(t, frames))
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		want := frames[i]
		if want.Msgs == nil {
			want.Msgs = got[i].Msgs // gob does not distinguish nil from empty
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("frame %d mismatch:\n got %+v\nwant %+v", i, got[i], frames[i])
		}
	}
}

// TestWireEventConversion checks the stream.Event ↔ WireEvent mapping
// both ways for items and markers.
func TestWireEventConversion(t *testing.T) {
	cases := []stream.Event{
		stream.Item(int64(7), "v"),
		stream.Item(stream.Unit{}, int64(-1)),
		stream.Mark(stream.Marker{Seq: 3, Timestamp: 4000}),
	}
	for _, e := range cases {
		if got := FromEvent(e).Event(); !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip of %v gave %v", e, got)
		}
	}
}

func TestFrameDecoderShortFrame(t *testing.T) {
	b := encodeFrames(t, []Frame{{Dest: 1, Msgs: mkMsgs([]byte("abcdefgh"))}})
	for _, cut := range []int{1, 3, 5, len(b) / 2, len(b) - 1} {
		dec := NewFrameDecoder(bytes.NewReader(b[:cut]))
		var f Frame
		if err := dec.Decode(&f); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("truncation at %d: got %v, want ErrShortFrame", cut, err)
		}
	}
}

func TestFrameDecoderOversizedLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(MaxFrameBytes+1))
	dec := NewFrameDecoder(bytes.NewReader(hdr[:]))
	var f Frame
	if err := dec.Decode(&f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// The claimed 16MB must not have been allocated: the scratch buffer
	// only grows with received bytes.
	if cap(dec.payload) > 1<<20 {
		t.Fatalf("oversized header caused a %d-byte allocation", cap(dec.payload))
	}
}

func TestFrameDecoderTrailingBytes(t *testing.T) {
	b := encodeFrames(t, []Frame{{Dest: 1, Msgs: mkMsgs([]byte("abcdefgh"))}})
	n := binary.BigEndian.Uint32(b[:4])
	junk := append(append([]byte(nil), b...), 0xde, 0xad, 0xbe)
	binary.BigEndian.PutUint32(junk[:4], n+3)
	dec := NewFrameDecoder(bytes.NewReader(junk))
	var f Frame
	if err := dec.Decode(&f); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("got %v, want ErrTrailingBytes", err)
	}
}

// unregisteredValue is deliberately never passed to Register.
type unregisteredValue struct{ X int }

func TestEncodeUnregisteredTypeIsTyped(t *testing.T) {
	c := New()
	if _, err := c.Encode(stream.Item(stream.Unit{}, unregisteredValue{X: 1})); !errors.Is(err, ErrUnregisteredType) {
		t.Fatalf("Codec.Encode: got %v, want ErrUnregisteredType", err)
	}
	var buf bytes.Buffer
	enc := NewFrameEncoder(&buf)
	f := Frame{Msgs: []WireMessage{{Ev: WireEvent{Key: stream.Unit{}, Value: unregisteredValue{X: 2}}}}}
	if err := enc.Encode(&f); !errors.Is(err, ErrUnregisteredType) {
		t.Fatalf("FrameEncoder.Encode: got %v, want ErrUnregisteredType", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed encode leaked %d bytes into the stream", buf.Len())
	}
	// The connection stays usable for registered types after the
	// classified failure.
	ok := Frame{Msgs: []WireMessage{{Ev: WireEvent{Key: int64(1), Value: int64(2)}}}}
	if err := enc.Encode(&ok); err != nil {
		t.Fatalf("encoder unusable after unregistered-type error: %v", err)
	}
	got := decodeFrames(t, buf.Bytes())
	if len(got) != 1 || !reflect.DeepEqual(got[0], ok) {
		t.Fatalf("post-error frame did not round-trip: %+v", got)
	}
}

// decodeSideA is registered under a unique name whose bytes the test
// patches in the encoded stream, producing a stream that names a type
// the decode side has never registered — the cross-process shape of
// the error (sender and receiver binaries disagreeing on
// registrations), reproduced in one process where gob's registry is
// global.
type decodeSideA struct{ N int64 }

func TestDecodeUnregisteredTypeIsTyped(t *testing.T) {
	gob.RegisterName("codec.decodeSideAAA", decodeSideA{})
	c := New()
	b, err := c.Encode(stream.Item(stream.Unit{}, decodeSideA{N: 5}))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	patched := bytes.ReplaceAll(b, []byte("codec.decodeSideAAA"), []byte("codec.decodeSideZZZ"))
	if bytes.Equal(patched, b) {
		t.Fatal("type name not found in encoded stream; patching failed")
	}
	if _, err := c.Decode(patched); !errors.Is(err, ErrUnregisteredType) {
		t.Fatalf("Codec.Decode: got %v, want ErrUnregisteredType", err)
	}
}

// FuzzWireFrame fuzzes the framing from both ends: (1) structured —
// a message vector derived from the input must survive encode∘decode
// bit-exactly, split across several frames of one connection; (2) raw
// — the input bytes themselves are fed to a decoder, which must
// reject garbage with an error (typed for oversized lengths and
// truncations) and never panic or over-allocate.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte("item marker eos mixed 0123456789 payload"))
	// A valid two-frame stream as a seed, so mutation explores near the
	// real wire format.
	var buf bytes.Buffer
	enc := NewFrameEncoder(&buf)
	seed := mkMsgs([]byte("seed corpus frame one"))
	_ = enc.Encode(&Frame{Dest: 1, Msgs: seed})
	_ = enc.Encode(&Frame{Dest: 2, Msgs: mkMsgs([]byte("and frame two right behind"))})
	f.Add(buf.Bytes())
	// Its truncations, hitting the header and payload boundaries.
	for _, cut := range []int{1, 3, 4, 7, buf.Len() - 2} {
		if cut > 0 && cut < buf.Len() {
			f.Add(append([]byte(nil), buf.Bytes()[:cut]...))
		}
	}
	// An oversized length prefix.
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, 1<<31)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Structured: derive, encode across three frames, decode, compare.
		msgs := mkMsgs(data)
		var frames []Frame
		for i := 0; i < len(msgs) || i == 0; i += 7 {
			end := i + 7
			if end > len(msgs) {
				end = len(msgs)
			}
			frames = append(frames, Frame{Dest: int32(i), Msgs: msgs[i:end]})
		}
		var wire bytes.Buffer
		enc := NewFrameEncoder(&wire)
		for i := range frames {
			if err := enc.Encode(&frames[i]); err != nil {
				t.Fatalf("encode: %v", err)
			}
		}
		dec := NewFrameDecoder(bytes.NewReader(wire.Bytes()))
		for i := range frames {
			var got Frame
			if err := dec.Decode(&got); err != nil {
				t.Fatalf("decode frame %d: %v", i, err)
			}
			want := frames[i]
			if len(want.Msgs) == 0 {
				want.Msgs = got.Msgs
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("frame %d: got %+v want %+v", i, got, want)
			}
		}
		var extra Frame
		if err := dec.Decode(&extra); err != io.EOF {
			t.Fatalf("stream not exhausted: %v", err)
		}

		// Raw: the input itself is a (usually malformed) stream; the
		// decoder must fail cleanly, not panic, and not trust the header
		// for allocations.
		raw := NewFrameDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			var f Frame
			err := raw.Decode(&f)
			if err == io.EOF {
				break
			}
			if err != nil {
				if errors.Is(err, ErrFrameTooLarge) && cap(raw.payload) > len(data)+(64<<10) {
					t.Fatalf("oversized header trusted for allocation: %d", cap(raw.payload))
				}
				break
			}
		}
	})
}
