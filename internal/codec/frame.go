package codec

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"

	"datatrace/internal/stream"
)

// This file defines the length-prefixed binary framing the networked
// storm runtime puts on every inter-worker TCP connection. One frame
// carries one batched message vector (the pooled vectors of the
// batched edge transport), addressed to one destination executor:
//
//	[4-byte big-endian payload length][gob-encoded Frame]
//
// The payload is produced by a persistent per-connection gob.Encoder,
// so type descriptors are transmitted once per connection and
// amortized over its lifetime, exactly as Conn amortizes them for the
// in-process serialization boundary. A frame's payload is the byte
// span of a single Encoder.Encode call (descriptors included when the
// call introduces new types), so FrameDecoder's single Decode call
// consumes it completely; leftover bytes mean a corrupted stream and
// are rejected.

// MaxFrameBytes bounds a frame's payload. The bound is enforced
// *before* any allocation, so a corrupted or hostile length prefix
// cannot make the decoder allocate unbounded memory.
const MaxFrameBytes = 16 << 20

// ErrFrameTooLarge reports a length prefix exceeding MaxFrameBytes.
var ErrFrameTooLarge = errors.New("codec: frame exceeds MaxFrameBytes")

// ErrShortFrame reports a frame truncated mid-payload (or a truncated
// length prefix with at least one byte present).
var ErrShortFrame = errors.New("codec: truncated frame")

// ErrTrailingBytes reports payload bytes left over after the frame's
// value was decoded — the stream is corrupted or was not produced by
// a FrameEncoder.
var ErrTrailingBytes = errors.New("codec: trailing bytes after frame payload")

// ErrUnregisteredType reports an event whose concrete key or value
// type was never passed to Register. The networked transport treats
// it as a per-event serialization failure — eligible for the
// drop-and-log degradation policy — rather than a transport fault.
var ErrUnregisteredType = errors.New("codec: unregistered key/value type")

// classify wraps gob's untyped errors into this package's typed ones
// where callers dispatch on the cause. gob exposes no error values of
// its own, so the unregistered-interface case is recognized by its
// message.
func classify(err error) error {
	if err == nil {
		return nil
	}
	if strings.Contains(err.Error(), "not registered") {
		return fmt.Errorf("%w: %v", ErrUnregisteredType, err)
	}
	return err
}

// WireEvent is the frame-level form of one stream event.
type WireEvent struct {
	IsMarker bool
	Seq      int64
	Ts       int64
	Key      any
	Value    any
}

// FromEvent converts a stream event to its wire form.
func FromEvent(e stream.Event) WireEvent {
	return WireEvent{IsMarker: e.IsMarker, Seq: e.Marker.Seq, Ts: e.Marker.Timestamp, Key: e.Key, Value: e.Value}
}

// Event converts the wire form back to a stream event.
func (w WireEvent) Event() stream.Event {
	if w.IsMarker {
		return stream.Mark(stream.Marker{Seq: w.Seq, Timestamp: w.Ts})
	}
	return stream.Item(w.Key, w.Value)
}

// WireCols is the frame-level form of one typed column batch: the
// batch's kind name plus its two typed column slices riding gob
// interface fields (the slice types are gob-registered when the kind
// is created, on both ends, by building the same topology). Shipping
// the columns as two slice values — instead of one WireEvent per row
// — is what lets networked edges stay columnar: gob encodes a typed
// slice with one type descriptor and no per-row interface header.
type WireCols struct {
	Kind string
	Keys any
	Vals any
}

// WireMessage is the frame-level form of one transport message: an
// event tagged with its receiver-side channel, a typed column batch
// for that channel, or an end-of-stream notice for it. Sent carries
// the send stamp used by the observability subsystem (0 when
// observability is off).
type WireMessage struct {
	Ch   int32
	EOS  bool
	Sent int64
	Ev   WireEvent
	// Cols, when set, makes this message a column batch; Ev is unused.
	Cols *WireCols
}

// Frame is one batched message vector on the wire, addressed to the
// destination executor's global index (declaration-order executor id,
// see storm.Placement).
type Frame struct {
	Dest int32
	Msgs []WireMessage
}

// FrameEncoder writes length-prefixed frames to w with a persistent
// gob encoder. Not safe for concurrent use; give each connection its
// own and serialize writers above it.
type FrameEncoder struct {
	w   io.Writer
	buf []byte
	enc *gob.Encoder
	// proven caches key/value types that already encoded successfully
	// on this connection. A type not yet proven is trial-encoded with a
	// throwaway encoder first, so an unregistered type fails *before*
	// the persistent encoder's descriptor bookkeeping diverges from the
	// stream — the connection survives the typed error and keeps
	// working for well-registered traffic (the drop-and-log contract).
	proven map[reflect.Type]bool
}

// NewFrameEncoder creates an encoder writing to w.
func NewFrameEncoder(w io.Writer) *FrameEncoder {
	e := &FrameEncoder{w: w, proven: make(map[reflect.Type]bool)}
	e.enc = gob.NewEncoder((*encBuf)(&e.buf))
	return e
}

// vet proves that v can ride an interface field of this connection.
// The trial must itself go through an interface field — gob only
// demands registration for interface-typed transmission. Proving is
// per concrete type: a type whose *contents* can still vary in
// encodability (say, a registered struct holding an any field) is
// vetted only for the first value seen; such types do not occur on
// this repository's wires.
func (e *FrameEncoder) vet(v any) error {
	if v == nil {
		return nil
	}
	rt := reflect.TypeOf(v)
	if e.proven[rt] {
		return nil
	}
	if err := gob.NewEncoder(io.Discard).Encode(&WireEvent{Key: v}); err != nil {
		return classify(fmt.Errorf("codec: encode frame: %w", err))
	}
	e.proven[rt] = true
	return nil
}

// encBuf adapts the encoder's scratch slice to io.Writer so the gob
// encoder appends into it without a bytes.Buffer's bookkeeping.
type encBuf []byte

func (b *encBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// Encode writes one frame: every novel key/value type is vetted, the
// gob payload is staged in the scratch buffer, its length prefixed,
// and both flushed to the underlying writer in order. A vet failure
// (typed as ErrUnregisteredType where it applies) leaves both the
// stream and the encoder state untouched.
func (e *FrameEncoder) Encode(f *Frame) error {
	for i := range f.Msgs {
		m := &f.Msgs[i]
		if m.EOS || m.Ev.IsMarker {
			continue
		}
		if err := e.vet(m.Ev.Key); err != nil {
			return err
		}
		if err := e.vet(m.Ev.Value); err != nil {
			return err
		}
	}
	e.buf = e.buf[:0]
	if err := e.enc.Encode(f); err != nil {
		return classify(fmt.Errorf("codec: encode frame: %w", err))
	}
	if len(e.buf) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(e.buf))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(e.buf)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("codec: write frame header: %w", err)
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return fmt.Errorf("codec: write frame payload: %w", err)
	}
	return nil
}

// frameReader feeds exactly one frame's payload to the gob decoder.
// It implements io.ByteReader so gob does not wrap it in a bufio
// reader and read past the frame boundary.
type frameReader struct {
	buf []byte
	off int
}

func (r *frameReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

func (r *frameReader) ReadByte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// FrameDecoder reads length-prefixed frames from r with a persistent
// gob decoder. Not safe for concurrent use.
type FrameDecoder struct {
	r       io.Reader
	fr      frameReader
	dec     *gob.Decoder
	payload []byte
}

// NewFrameDecoder creates a decoder reading from r.
func NewFrameDecoder(r io.Reader) *FrameDecoder {
	d := &FrameDecoder{r: r}
	d.dec = gob.NewDecoder(&d.fr)
	return d
}

// Decode reads the next frame into f. A clean end of stream (EOF at a
// frame boundary) returns io.EOF; truncation inside a frame returns
// ErrShortFrame; a length prefix over MaxFrameBytes returns
// ErrFrameTooLarge before anything is allocated; payload bytes the
// frame's value does not account for return ErrTrailingBytes.
func (d *FrameDecoder) Decode(f *Frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: %v", ErrShortFrame, err)
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameBytes {
		return fmt.Errorf("%w: header claims %d bytes", ErrFrameTooLarge, n)
	}
	if err := d.readPayload(n); err != nil {
		return err
	}
	d.fr.buf, d.fr.off = d.payload, 0
	if err := d.dec.Decode(f); err != nil {
		return classify(fmt.Errorf("codec: decode frame: %w", err))
	}
	if d.fr.off != len(d.fr.buf) {
		return fmt.Errorf("%w: %d of %d bytes unconsumed", ErrTrailingBytes, len(d.fr.buf)-d.fr.off, len(d.fr.buf))
	}
	return nil
}

// readPayload fills d.payload with n bytes from the stream. The
// scratch buffer grows in bounded steps, each taken only after the
// previous step's bytes actually arrived, so allocation tracks the
// bytes received rather than the (possibly lying) header.
func (d *FrameDecoder) readPayload(n int) error {
	const step = 64 << 10
	if cap(d.payload) >= n {
		d.payload = d.payload[:n]
		if _, err := io.ReadFull(d.r, d.payload); err != nil {
			return fmt.Errorf("%w: %v", ErrShortFrame, err)
		}
		return nil
	}
	d.payload = d.payload[:0]
	for got := 0; got < n; {
		k := n - got
		if k > step {
			k = step
		}
		d.payload = append(d.payload, make([]byte, k)...)
		if _, err := io.ReadFull(d.r, d.payload[got:]); err != nil {
			return fmt.Errorf("%w: %v", ErrShortFrame, err)
		}
		got += k
	}
	return nil
}
