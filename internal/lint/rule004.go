package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// DTT004 — snapshot state must actually round-trip through gob.
//
// core.Snapshotter is the recovery contract: at a marker cut the
// runtime serializes instance state with encoding/gob and restores it
// after a crash. gob cannot encode functions or channels, and a
// struct none of whose fields are exported encodes to nothing — all
// three fail at Encode/Decode time, i.e. mid-recovery, long after the
// topology passed every static and DAG-level check. This rule walks
// every (*gob.Encoder).Encode argument inside Snapshot methods of
// Snapshotter implementations and rejects value shapes gob is known
// to choke on. Types implementing gob.GobEncoder are trusted to
// handle themselves.
func (a *analyzer) rule004(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Snapshot" || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || !typeImplements(recv.Type(), a.hooks.coreSnapshotter) {
				continue
			}
			a.checkSnapshotBody(p, fd)
		}
	}
}

// checkSnapshotBody inspects every gob Encode call in one Snapshot
// method.
func (a *analyzer) checkSnapshotBody(p *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Encode" {
			return true
		}
		rt := p.Info.TypeOf(sel.X)
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if rt == nil || !types.Identical(rt, a.hooks.gobEncoder) {
			return true
		}
		for _, arg := range call.Args {
			t := p.Info.TypeOf(arg)
			if t == nil {
				continue
			}
			root := types.TypeString(t, types.RelativeTo(p.Types))
			var issues []gobIssue
			a.gobIssues(t, root, map[types.Type]bool{}, &issues)
			for _, iss := range issues {
				a.reportf(arg.Pos(), CodeSnapshot,
					"snapshot state %s is not gob-encodable: %s — gob.Encode will fail at the marker cut and Restore will panic mid-recovery; exclude the field or give the type a GobEncoder",
					iss.path, iss.why)
			}
		}
		return true
	})
}

// gobIssue is one non-encodable leaf found inside a snapshot value.
type gobIssue struct {
	path string // field path from the encoded root, e.g. snap.Callbacks
	why  string
}

// gobIssues walks a type the way gob's encoder would and records
// every shape gob rejects: funcs, channels, unsafe pointers, and
// structs with fields but none exported. Exported fields only —
// unexported fields are skipped by gob, so they are harmless.
// Interfaces and type parameters are skipped: their concrete types
// are unknown statically. A cycle guard keeps recursive types
// (trees, linked lists) terminating.
func (a *analyzer) gobIssues(t types.Type, path string, seen map[types.Type]bool, out *[]gobIssue) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	if a.hooks.gobEncoderIface != nil && typeImplements(t, a.hooks.gobEncoderIface) {
		return // self-encoding type (time.Time and friends)
	}
	switch u := t.Underlying().(type) {
	case *types.Signature:
		*out = append(*out, gobIssue{path, fmt.Sprintf("%s is a func type (gob cannot encode functions)", t)})
	case *types.Chan:
		*out = append(*out, gobIssue{path, fmt.Sprintf("%s is a channel type (gob cannot encode channels)", t)})
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			*out = append(*out, gobIssue{path, "unsafe.Pointer is not encodable"})
		}
	case *types.Pointer:
		a.gobIssues(u.Elem(), path, seen, out)
	case *types.Slice:
		a.gobIssues(u.Elem(), path+"[]", seen, out)
	case *types.Array:
		a.gobIssues(u.Elem(), path+"[]", seen, out)
	case *types.Map:
		a.gobIssues(u.Key(), path+" key", seen, out)
		a.gobIssues(u.Elem(), path+" value", seen, out)
	case *types.Struct:
		exported := 0
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			exported++
			a.gobIssues(f.Type(), path+"."+f.Name(), seen, out)
		}
		if u.NumFields() > 0 && exported == 0 {
			*out = append(*out, gobIssue{path,
				"struct has fields but none exported, so gob encodes nothing and Decode restores zero state"})
		}
	}
}
