package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// hooks are the framework objects the rules anchor on, resolved once
// per run from the module's own core/storm/stream packages. Working
// from real go/types objects (not names) keeps the rules precise:
// a user type called Bolt in an unrelated package is not a bolt.
type hooks struct {
	coreInstance    *types.Interface // core.Instance
	coreOperator    *types.Interface // core.Operator
	coreSnapshotter *types.Interface // core.Snapshotter
	stormBolt       *types.Interface // storm.Bolt
	stormChanBolt   *types.Interface // storm.ChannelBolt
	stormFlusher    *types.Interface // storm.Flusher
	parAny          types.Object     // core.ParAny
	gobEncoder      types.Type       // encoding/gob.Encoder (named)
	gobEncoderIface *types.Interface // encoding/gob.GobEncoder
	streamEvent     types.Type       // stream.Event (named)
	streamColumns   types.Type       // stream.Columns (named)
	corePkg         string           // import path of internal/core
	stormPkg        string           // import path of internal/storm
}

// resolveHooks loads the framework packages and extracts the anchor
// objects. The analyzer requires the module to contain the
// reproduction's core/storm/stream packages — it is a repository
// tool, not a general Go linter.
func resolveHooks(ld *loader) (*hooks, error) {
	h := &hooks{
		corePkg:  ld.module + "/internal/core",
		stormPkg: ld.module + "/internal/storm",
	}
	core, err := ld.load(h.corePkg)
	if err != nil {
		return nil, fmt.Errorf("lint: loading %s: %w", h.corePkg, err)
	}
	storm, err := ld.load(h.stormPkg)
	if err != nil {
		return nil, fmt.Errorf("lint: loading %s: %w", h.stormPkg, err)
	}
	strm, err := ld.load(ld.module + "/internal/stream")
	if err != nil {
		return nil, err
	}
	iface := func(scope *types.Scope, name string) (*types.Interface, error) {
		obj := scope.Lookup(name)
		if obj == nil {
			return nil, fmt.Errorf("lint: interface %s not found", name)
		}
		i, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			return nil, fmt.Errorf("lint: %s is not an interface", name)
		}
		return i, nil
	}
	if h.coreInstance, err = iface(core.Types.Scope(), "Instance"); err != nil {
		return nil, err
	}
	if h.coreOperator, err = iface(core.Types.Scope(), "Operator"); err != nil {
		return nil, err
	}
	if h.coreSnapshotter, err = iface(core.Types.Scope(), "Snapshotter"); err != nil {
		return nil, err
	}
	if h.stormBolt, err = iface(storm.Types.Scope(), "Bolt"); err != nil {
		return nil, err
	}
	if h.stormChanBolt, err = iface(storm.Types.Scope(), "ChannelBolt"); err != nil {
		return nil, err
	}
	if h.stormFlusher, err = iface(storm.Types.Scope(), "Flusher"); err != nil {
		return nil, err
	}
	if h.parAny = core.Types.Scope().Lookup("ParAny"); h.parAny == nil {
		return nil, fmt.Errorf("lint: core.ParAny not found")
	}
	if obj := strm.Types.Scope().Lookup("Event"); obj != nil {
		h.streamEvent = obj.Type()
	} else {
		return nil, fmt.Errorf("lint: stream.Event not found")
	}
	if obj := strm.Types.Scope().Lookup("Columns"); obj != nil {
		h.streamColumns = obj.Type()
	} else {
		return nil, fmt.Errorf("lint: stream.Columns not found")
	}
	// gob.Encoder comes off core.Snapshotter's own method signature,
	// so the analyzer and the runtime can never disagree about which
	// encoder "gob-encodable" refers to.
	snap, _, _ := types.LookupFieldOrMethod(core.Types.Scope().Lookup("Snapshotter").Type(), true, core.Types, "Snapshot")
	if snap == nil {
		return nil, fmt.Errorf("lint: core.Snapshotter.Snapshot not found")
	}
	sig := snap.Type().(*types.Signature)
	if sig.Params().Len() != 1 {
		return nil, fmt.Errorf("lint: unexpected Snapshotter.Snapshot signature %s", sig)
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return nil, fmt.Errorf("lint: Snapshotter.Snapshot parameter is not a pointer")
	}
	h.gobEncoder = ptr.Elem()
	if named, ok := h.gobEncoder.(*types.Named); ok && named.Obj().Pkg() != nil {
		if obj := named.Obj().Pkg().Scope().Lookup("GobEncoder"); obj != nil {
			h.gobEncoderIface, _ = obj.Type().Underlying().(*types.Interface)
		}
	}
	return h, nil
}

// ctxKind classifies a hot context — which rules apply depends on it.
type ctxKind int

const (
	// ctxTemplate is a callback literal inside a core template (or
	// storm.CombinerSpec) composite literal. Such closures are owned by
	// the shared Operator value, so every parallel instance runs the
	// same closure: capture rules (DTT003) apply here.
	ctxTemplate ctxKind = iota
	// ctxMethod is a Next/NextFrom/Flush/Execute/Process method on a
	// type implementing a bolt/instance interface.
	ctxMethod
	// ctxClosure is a bolt-shaped function literal —
	// func(stream.Event, func(stream.Event)) with an optional leading
	// channel index — the form handcrafted topologies and BoltFunc
	// adapters use.
	ctxClosure
)

// hotCtx is one operator/bolt hot path: a function body executed by
// an executor for every event, where the determinism obligations
// hold.
type hotCtx struct {
	kind ctxKind
	pkg  *Package
	body *ast.BlockStmt
	// lit is the context's own literal (nil for methods); DTT003 uses
	// its extent to decide what "captured" means.
	lit *ast.FuncLit
	// emits are the context's emission callbacks: every function-typed
	// parameter of the context function.
	emits map[types.Object]bool
	// tmpl and field name the template type and callback field for
	// ctxTemplate contexts ("KeyedUnordered", "Combine"); empty
	// otherwise. DTT008 keys its commutativity obligation on them.
	tmpl  string
	field string
	// recv is the receiver object for ctxMethod contexts (nil
	// otherwise); DTT010 uses it to recognize the entry-rebind idiom.
	recv types.Object
	// params is the context function's parameter list.
	params *ast.FieldList
	// desc names the context in diagnostics.
	desc string
}

// callbackFields are the function-valued template fields whose
// literals run on the hot path. Less is Sort's comparator; In, ID,
// Combine, InitialState and UpdateState are the monoid/state hooks
// the templates require to be pure.
var callbackFields = map[string]bool{
	"OnItem": true, "OnMarker": true, "In": true, "ID": true,
	"Combine": true, "InitialState": true, "UpdateState": true,
	"Less": true,
}

// templateTypes are the core composite-literal types whose callback
// fields define hot contexts.
var templateTypes = map[string]bool{
	"Stateless": true, "KeyedOrdered": true, "KeyedUnordered": true,
	"SlidingAggregate": true, "Sort": true,
}

// hotMethodNames are the method names treated as bolt hot paths.
// ProcessCols runs once per column batch — the batched form of Next —
// so the ambient-nondeterminism and side-channel rules apply there
// too (batch retention has its own rule, DTT007).
var hotMethodNames = map[string]bool{
	"Next": true, "NextFrom": true, "Flush": true,
	"Execute": true, "Process": true, "ProcessCols": true,
	"ProcessBatch": true,
}

// collectContexts finds every hot context in the package. Composite
// literals are visited before the function literals they contain, so
// claimed marks template callbacks before the FuncLit case could
// classify them a second time as bolt-shaped closures.
func (a *analyzer) collectContexts(p *Package) []*hotCtx {
	var out []*hotCtx
	claimed := map[*ast.FuncLit]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if tn, pkgPath := namedOf(p.Info.TypeOf(n)); tn != "" {
					isTemplate := pkgPath == a.hooks.corePkg && templateTypes[tn]
					isCombiner := pkgPath == a.hooks.stormPkg && tn == "CombinerSpec"
					if isTemplate || isCombiner {
						a.templateContexts(p, n, tn, claimed, &out)
					}
				}
			case *ast.FuncDecl:
				if c := a.methodContext(p, n); c != nil {
					out = append(out, c)
				}
			case *ast.FuncLit:
				if !claimed[n] && a.isBoltShaped(p, n) {
					out = append(out, &hotCtx{
						kind: ctxClosure, pkg: p, body: n.Body, lit: n,
						emits:  funcTypeEmits(p, n.Type),
						params: n.Type.Params,
						desc:   "bolt closure",
					})
				}
			}
			return true
		})
	}
	return out
}

// templateContexts adds one context per function-literal callback
// field of a template composite literal.
func (a *analyzer) templateContexts(p *Package, lit *ast.CompositeLit, typeName string, claimed map[*ast.FuncLit]bool, out *[]*hotCtx) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !callbackFields[key.Name] {
			continue
		}
		fl, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			continue
		}
		claimed[fl] = true
		*out = append(*out, &hotCtx{
			kind: ctxTemplate, pkg: p, body: fl.Body, lit: fl,
			emits:  funcTypeEmits(p, fl.Type),
			params: fl.Type.Params,
			tmpl:   typeName, field: key.Name,
			desc: fmt.Sprintf("%s callback of %s", key.Name, typeName),
		})
	}
}

// methodContext classifies a hot-named method whose receiver
// implements one of the bolt/instance interfaces (or that carries an
// emission callback parameter, covering duck-typed user code).
func (a *analyzer) methodContext(p *Package, decl *ast.FuncDecl) *hotCtx {
	if decl.Recv == nil || decl.Body == nil || !hotMethodNames[decl.Name.Name] {
		return nil
	}
	fn, _ := p.Info.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return nil
	}
	rt := recv.Type()
	h := a.hooks
	implements := typeImplements(rt, h.stormBolt) || typeImplements(rt, h.stormChanBolt) ||
		typeImplements(rt, h.stormFlusher) || typeImplements(rt, h.coreInstance)
	emits := funcTypeEmits(p, decl.Type)
	if !implements && len(emits) == 0 {
		return nil
	}
	recvName := types.TypeString(rt, types.RelativeTo(p.Types))
	return &hotCtx{
		kind: ctxMethod, pkg: p, body: decl.Body,
		emits:  emits,
		recv:   receiverObject(p, decl),
		params: decl.Type.Params,
		desc:   fmt.Sprintf("method (%s).%s", recvName, decl.Name.Name),
	}
}

// isBoltShaped reports whether a function literal has the storm bolt
// hot-path shape: (stream.Event, func(stream.Event)), optionally with
// a leading int channel index (the ChannelBolt form).
func (a *analyzer) isBoltShaped(p *Package, lit *ast.FuncLit) bool {
	sig, ok := p.Info.TypeOf(lit).(*types.Signature)
	if !ok || sig.Results().Len() != 0 {
		return false
	}
	params := sig.Params()
	i := 0
	if params.Len() == 3 {
		b, ok := params.At(0).Type().Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Int {
			return false
		}
		i = 1
	} else if params.Len() != 2 {
		return false
	}
	if !types.Identical(params.At(i).Type(), a.hooks.streamEvent) {
		return false
	}
	emit, ok := params.At(i + 1).Type().(*types.Signature)
	if !ok || emit.Params().Len() != 1 || emit.Results().Len() != 0 {
		return false
	}
	return types.Identical(emit.Params().At(0).Type(), a.hooks.streamEvent)
}

// funcTypeEmits collects the function-typed parameters of a context
// function: its emission callbacks.
func funcTypeEmits(p *Package, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// typeImplements reports whether T or *T implements the interface.
func typeImplements(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// namedOf unwraps a (possibly pointer-to, possibly instantiated)
// named type to its type name and defining package path.
func namedOf(t types.Type) (name, pkgPath string) {
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name(), ""
	}
	return obj.Name(), obj.Pkg().Path()
}

// relTo renders name relative to root when possible.
func relTo(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// inspectShallow walks body without descending into nested function
// literals: the per-context rules analyze each function body exactly
// once, under its own context.
func inspectShallow(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
