package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DTT007 — ProcessCols/ProcessBatch must not retain column batches.
//
// A Columns batch (and every slice aliasing its columns) belongs to a
// recycled arena: the transport releases it back to its kind's pool
// the moment the call returns, and the next batch of the same kind
// overwrites the backing arrays in place. An implementation that
// stores the batch, a column slice, or a sub-slice of one anywhere
// that outlives the call — a receiver field, a package variable —
// holds a use-after-reuse alias: the retained rows silently mutate
// into a later block's rows, which is precisely the cross-block state
// leak the buffers-empty-at-cut invariant forbids. Copy the rows out
// (element reads are value copies and always safe) or process them
// before returning.
//
// Stashing a batch in a receiver field *during* the call — e.g. so a
// cached emit closure can reach the current output batch — is
// permitted when the method provably drops the alias before
// returning: a later `recv.field = nil` assignment in the same body
// exempts the store.
func (a *analyzer) rule007(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "ProcessCols" && fd.Name.Name != "ProcessBatch" {
				continue
			}
			if !a.hasColumnsParam(p, fd) {
				continue
			}
			a.checkColRetention(p, fd)
		}
	}
}

// hasColumnsParam reports whether the method takes at least one
// stream.Columns parameter — the anchor that makes a ProcessCols/
// ProcessBatch method the batch hot path (duck-typed, like the bolt
// shape: the name plus the batch parameter is the contract, whether
// or not the receiver nominally implements core.BatchInstance).
func (a *analyzer) hasColumnsParam(p *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := p.Info.TypeOf(field.Type); t != nil && types.Identical(t, a.hooks.streamColumns) {
			return true
		}
	}
	return false
}

// checkColRetention runs the taint walk over one method body. It
// reports both DTT007 (the method itself retains an alias) and DTT009
// (the method hands an alias to a helper whose summary retains it —
// the interprocedural seam the summary engine closes).
func (a *analyzer) checkColRetention(p *Package, fd *ast.FuncDecl) {
	recvObj := receiverObject(p, fd)
	// Taint roots: the Columns-typed parameters. taintVia remembers
	// the call chain that laundered the alias (nil for direct taint).
	tainted := map[types.Object]bool{}
	taintVia := map[types.Object]*effect{}
	for _, field := range fd.Type.Params.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil || !types.Identical(t, a.hooks.streamColumns) {
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		return
	}

	// exprTainted reports whether evaluating e yields the batch or an
	// alias of its columns, plus the interprocedural chain when the
	// alias crossed a call (a helper that returns its argument).
	// Indexing is a value copy and therefore clean; selectors
	// (tc.Keys), sub-slices, type assertions and the Slices() accessor
	// keep the alias.
	var exprTainted func(e ast.Expr) (bool, *effect)
	exprTainted = func(e ast.Expr) (bool, *effect) {
		switch e := e.(type) {
		case *ast.Ident:
			obj := p.Info.ObjectOf(e)
			return tainted[obj], taintVia[obj]
		case *ast.ParenExpr:
			return exprTainted(e.X)
		case *ast.TypeAssertExpr:
			return exprTainted(e.X)
		case *ast.SelectorExpr:
			return exprTainted(e.X)
		case *ast.SliceExpr:
			return exprTainted(e.X)
		case *ast.UnaryExpr:
			return exprTainted(e.X)
		case *ast.StarExpr:
			return exprTainted(e.X)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if t, via := exprTainted(elt); t {
					return true, via
				}
			}
			return false, nil
		case *ast.CallExpr:
			switch fn := e.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "append" {
					for _, arg := range e.Args {
						if t, via := exprTainted(arg); t {
							return true, via
						}
					}
				}
			case *ast.SelectorExpr:
				// batch.Slices() hands out the typed column slices.
				if fn.Sel.Name == "Slices" {
					if t, via := exprTainted(fn.X); t {
						return true, via
					}
				}
			}
			// A module helper that returns an alias of its argument
			// launders the taint through the call.
			for _, callee := range a.eng.callees(p, e) {
				cs := a.eng.sum(callee)
				if cs == nil || len(cs.returnsParam) == 0 {
					continue
				}
				sig := callee.Type().(*types.Signature)
				for j, arg := range e.Args {
					cj := calleeParamIndex(sig, j)
					if cj < 0 || cs.returnsParam[cj] == nil {
						continue
					}
					if t, _ := exprTainted(arg); t {
						return true, derived(e.Pos(), callee, cs.returnsParam[cj])
					}
				}
			}
			return false, nil
		default:
			return false, nil
		}
	}

	type fieldStore struct {
		field string
		pos   token.Pos
		via   *effect
	}
	var stores []fieldStore
	clears := map[string]token.Pos{} // field → latest nil-assignment

	// Unlike the per-context rules, this walk descends into nested
	// function literals: a closure that writes a tainted alias to a
	// field retains it just the same.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			a.checkBatchEscape(p, fd, call, exprTainted)
			return true
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		multi := len(as.Lhs) > 1 && len(as.Rhs) == 1
		for i, lhs := range as.Lhs {
			var rhs ast.Expr
			if multi {
				rhs = as.Rhs[0] // a, b := batch.Slices(): both taint
			} else if i < len(as.Rhs) {
				rhs = as.Rhs[i]
			} else {
				continue
			}
			isNil := false
			if id, ok := rhs.(*ast.Ident); ok && id.Name == "nil" {
				_, isNil = p.Info.ObjectOf(id).(*types.Nil)
			}
			rt, via := exprTainted(rhs)

			// Receiver-field target: recv.f, recv.f[i], chains.
			if recvObj != nil {
				if field := receiverFieldTarget(p, lhs, recvObj); field != "" {
					if rt {
						stores = append(stores, fieldStore{field, as.Pos(), via})
					} else if isNil {
						if prev, ok := clears[field]; !ok || as.Pos() > prev {
							clears[field] = as.Pos()
						}
					}
					continue
				}
			}
			// Package-level variable target.
			if rt {
				if root := rootIdent(lhs); root != nil {
					if obj := p.Info.ObjectOf(root); obj != nil && obj.Parent() == p.Types.Scope() {
						a.reportEff(as.Pos(), CodeRetainCols, via,
							"%s stores a column batch alias in package variable %q%s: the batch belongs to a recycled arena and is reused after the call, so the retained slice silently becomes a later block's rows — copy the rows out instead",
							fd.Name.Name, root.Name, viaChain(via))
						continue
					}
				}
				// Taint propagates through plain local assignment.
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := p.Info.ObjectOf(id); obj != nil {
						tainted[obj] = true
						if taintVia[obj] == nil {
							taintVia[obj] = via
						}
					}
				}
			}
		}
		return true
	})

	for _, s := range stores {
		if pos, ok := clears[s.field]; ok && pos > s.pos {
			continue // stash-and-clear: alias dropped before return
		}
		a.reportEff(s.pos, CodeRetainCols, s.via,
			"%s retains a column batch alias in receiver field %q past the call%s: the batch belongs to a recycled arena and its columns are overwritten by a later batch, turning the field into cross-block state the marker-cut invariant forbids — copy the rows out, or clear the field (= nil) before returning",
			fd.Name.Name, s.field, viaChain(s.via))
	}
}

// checkBatchEscape is DTT009: a tainted batch alias passed to a
// helper whose summary retains it (receiver field, package variable,
// goroutine, channel — or a deeper callee that does). DTT007 sees the
// store only when it happens in the ProcessCols body itself; this
// closes the call-boundary seam.
func (a *analyzer) checkBatchEscape(p *Package, fd *ast.FuncDecl, call *ast.CallExpr, exprTainted func(ast.Expr) (bool, *effect)) {
	for _, callee := range a.eng.callees(p, call) {
		cs := a.eng.sum(callee)
		if cs == nil || len(cs.escapesParam) == 0 {
			continue
		}
		sig := callee.Type().(*types.Signature)
		for j, arg := range call.Args {
			cj := calleeParamIndex(sig, j)
			if cj < 0 || cs.escapesParam[cj] == nil {
				continue
			}
			t, _ := exprTainted(arg)
			if !t {
				continue
			}
			eff := derived(call.Pos(), callee, cs.escapesParam[cj])
			if eff == nil {
				continue
			}
			a.reportEff(call.Pos(), CodeBatchLeak, eff,
				"%s passes a column batch alias (%s) to a helper that retains it: %s — the batch belongs to a recycled arena and is reused after the call, so the retained alias silently becomes a later block's rows; copy the rows out before handing them off",
				fd.Name.Name, exprString(arg), eff.chainString())
		}
	}
}

// rootIdent returns the leftmost identifier of an lvalue chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
