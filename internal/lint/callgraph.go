package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// Call-graph construction for the interprocedural summary engine
// (summary.go). The graph is static and bounded:
//
//   - direct calls to module functions and methods resolve through
//     go/types object identity (generic instantiations resolve to
//     their origin declaration, whose body is the one we have);
//   - calls through an interface method fan out to every named module
//     type whose method set implements the interface — but only when
//     the implementation set is small (maxIfaceFanOut): a huge set
//     (core.Instance has dozens of implementations once tests are
//     loaded) would smear one implementation's effects over every
//     caller, so broad dispatch is deliberately treated as opaque;
//   - calls through function values (fields, locals) are opaque.
//
// Opaque calls contribute no effects: the engine under-approximates
// dynamic dispatch and the per-rule intraprocedural checks remain the
// backstop, exactly as before PR 10.

// maxIfaceFanOut bounds interface-call resolution: a dispatch with
// more module implementations than this is treated as opaque. A var
// so the engine tests can pin the bound's behavior.
var maxIfaceFanOut = 8

// funcNode is one module function in the summary universe.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// engine holds the call graph and the per-function summaries for
// every loaded module package (the analysis set plus its module
// dependencies — helpers one package over still resolve).
type engine struct {
	ld    *loader
	funcs map[*types.Func]*funcNode
	sums  map[*types.Func]*summary
	// callers records reverse call edges discovered while scanning,
	// driving the fixpoint worklist.
	callers map[*types.Func]map[*types.Func]bool
	// named are the universe's named types, for interface fan-out.
	named []types.Type
	// ifaceMu guards ifaceCache: rules resolve call sites from
	// per-package workers after the (single-threaded) fixpoint.
	ifaceMu    sync.Mutex
	ifaceCache map[*types.Func][]*types.Func
}

// newEngine indexes every function with a body in every loaded module
// package. Deterministic order (package path, then file order) keeps
// summaries — and therefore diagnostics — byte-stable across runs.
func newEngine(ld *loader) *engine {
	e := &engine{
		ld:         ld,
		funcs:      map[*types.Func]*funcNode{},
		sums:       map[*types.Func]*summary{},
		callers:    map[*types.Func]map[*types.Func]bool{},
		ifaceCache: map[*types.Func][]*types.Func{},
	}
	for _, p := range e.universe() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				e.funcs[fn] = &funcNode{fn: fn, decl: fd, pkg: p}
			}
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				e.named = append(e.named, tn.Type())
			}
		}
	}
	return e
}

// universe returns the loaded module packages in deterministic order.
func (e *engine) universe() []*Package {
	paths := make([]string, 0, len(e.ld.pkgs))
	for path := range e.ld.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, e.ld.pkgs[path])
	}
	return out
}

// node returns the indexed body for fn (resolving a generic
// instantiation to its origin), or nil for functions outside the
// universe (stdlib, interface methods, func values).
func (e *engine) node(fn *types.Func) *funcNode {
	if fn == nil {
		return nil
	}
	if n := e.funcs[fn]; n != nil {
		return n
	}
	return e.funcs[fn.Origin()]
}

// callees resolves one call expression to its static module callees.
// The result is nil for opaque calls (func values, stdlib, broad
// interface dispatch).
func (e *engine) callees(p *Package, call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			if n := e.node(fn); n != nil {
				return []*types.Func{n.fn}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil // field call: opaque
			}
			if types.IsInterface(fn.Type().(*types.Signature).Recv().Type()) {
				return e.implementations(fn)
			}
			if n := e.node(fn); n != nil {
				return []*types.Func{n.fn}
			}
			return nil
		}
		// Package-qualified call: pkg.F(...).
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := e.node(fn); n != nil {
				return []*types.Func{n.fn}
			}
		}
	}
	return nil
}

// implementations resolves an interface method to the module methods
// that can stand behind it, or nil when the set exceeds
// maxIfaceFanOut (bounded dispatch) or is empty.
func (e *engine) implementations(m *types.Func) []*types.Func {
	e.ifaceMu.Lock()
	defer e.ifaceMu.Unlock()
	if cached, ok := e.ifaceCache[m]; ok {
		return cached
	}
	iface, _ := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var impls []*types.Func
	if iface != nil {
		for _, t := range e.named {
			if types.IsInterface(t) {
				continue
			}
			if named, ok := t.(*types.Named); ok && named.TypeParams().Len() > 0 {
				continue // uninstantiated generic: cannot implement
			}
			if !typeImplements(t, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, m.Pkg(), m.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if n := e.node(fn); n != nil {
				impls = append(impls, n.fn)
			}
			if len(impls) > maxIfaceFanOut {
				impls = nil
				break
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool {
		return e.posKey(impls[i]).less(e.posKey(impls[j]))
	})
	e.ifaceCache[m] = impls
	return impls
}

// srcKey orders functions by source location independently of FileSet
// offset assignment (which parallel parsing makes nondeterministic).
type srcKey struct {
	file      string
	line, col int
}

func (k srcKey) less(o srcKey) bool {
	if k.file != o.file {
		return k.file < o.file
	}
	if k.line != o.line {
		return k.line < o.line
	}
	return k.col < o.col
}

func (e *engine) posKey(fn *types.Func) srcKey {
	p := e.ld.fset.Position(fn.Pos())
	return srcKey{file: p.Filename, line: p.Line, col: p.Column}
}

// addEdge records caller → callee for the fixpoint worklist.
func (e *engine) addEdge(caller, callee *types.Func) {
	m := e.callers[callee]
	if m == nil {
		m = map[*types.Func]bool{}
		e.callers[callee] = m
	}
	m[caller] = true
}

// funcDisplayName renders a function for call-chain traces:
// plain functions by name, methods as (T).Name.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return "(" + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Name()
}
