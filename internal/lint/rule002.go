package lint

import (
	"go/ast"
	"go/types"
)

// DTT002 — no ambient nondeterminism in hot paths.
//
// Marker-cut recovery (PR 1) replays the suffix of the input after a
// restored checkpoint and relies on re-execution producing the same
// trace. A hot path that reads the wall clock (time.Now/Since/Until),
// draws random numbers (math/rand, math/rand/v2 — including methods
// on a *rand.Rand), or races goroutines through a multi-way select
// produces different output on replay, so the recovered run diverges
// from the crash-free one even though every equivalence test of the
// fault suite assumes they agree. Deterministic alternatives: derive
// time from marker timestamps (the paper's logical punctuation), and
// key any sampling on event fields.
func (a *analyzer) rule002(c *hotCtx) {
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			a.checkAmbientCall(c, n)
			// Interprocedural: a module helper whose summary reaches
			// a clock read, random draw or multi-way select carries
			// the same hazard into this hot path.
			for _, callee := range a.eng.callees(c.pkg, n) {
				cs := a.eng.sum(callee)
				if cs == nil || cs.nondet == nil {
					continue
				}
				eff := derived(n.Pos(), callee, cs.nondet)
				if eff == nil {
					continue
				}
				a.reportEff(n.Pos(), CodeAmbient, eff,
					"call in %s reaches ambient nondeterminism: %s — the output is no longer a function of the input trace, so replay after marker-cut recovery diverges; derive time from marker timestamps and key sampling on event fields instead",
					c.desc, eff.chainString())
			}
		case *ast.SelectStmt:
			clauses := 0
			if n.Body != nil {
				clauses = len(n.Body.List)
			}
			if clauses >= 2 {
				a.reportf(n.Pos(), CodeAmbient,
					"select over multiple cases in %s: case choice is made by the scheduler, not the input trace, so replay after marker-cut recovery diverges — route all deliveries through the runtime's merged input instead",
					c.desc)
			}
		}
		return true
	})
}

// ambientTimeFuncs are the wall-clock reads DTT002 rejects; the rest
// of package time (durations, formatting) is pure.
var ambientTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// checkAmbientCall flags wall-clock and random-number calls.
func (a *analyzer) checkAmbientCall(c *hotCtx, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return
	}
	fn, ok := c.pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch path := fn.Pkg().Path(); {
	case path == "time" && ambientTimeFuncs[fn.Name()]:
		a.reportf(call.Pos(), CodeAmbient,
			"call to time.%s in %s: wall-clock reads make the output depend on execution time, so replay after marker-cut recovery produces a different trace — derive time from marker timestamps instead",
			fn.Name(), c.desc)
	case path == "math/rand" || path == "math/rand/v2":
		a.reportf(call.Pos(), CodeAmbient,
			"call to %s.%s in %s: random draws are not a function of the input trace, so parallel instances and post-recovery replays disagree — key any sampling on event fields instead",
			path, fn.Name(), c.desc)
	}
}
