package lint

import (
	"sort"
	"strings"
)

// Suppression. A finding is silenced by
//
//	//lint:ignore DTT00N reason
//	//lint:ignore DTT001,DTT002 reason
//
// placed either on the flagged line (trailing comment) or on the line
// directly above it. The reason is mandatory: an unexplained
// suppression is indistinguishable from a stale one, so the directive
// itself is checked and malformed forms (missing code, unknown code,
// missing reason) are reported as DTT000. DTT000 cannot be
// suppressed — a directive cannot vouch for itself.
//
// Interprocedural findings are additionally suppressed at their leaf:
// a directive on the offending line inside a helper (the time.Now
// call, the stashing store) covers every finding the summary engine
// derives from it, in every caller — one reasoned waiver per fact,
// not one per call site.

// directive is one parsed, well-formed //lint:ignore comment.
type directive struct {
	file   string          // module-root-relative file name
	line   int             // 1-based line the comment sits on
	codes  map[string]bool // codes it suppresses
	reason string          // mandatory justification text
}

const ignorePrefix = "//lint:ignore"

// parsedIgnore is the result of parsing one comment against the
// //lint:ignore grammar. codes is nil exactly when the comment is
// malformed, in which case problem says why.
type parsedIgnore struct {
	codeList []string
	codes    map[string]bool
	reason   string
	problem  string
}

// parseIgnoreComment parses a comment's text; the second result is
// false when the comment is not a //lint:ignore directive at all.
func parseIgnoreComment(text string) (parsedIgnore, bool) {
	var pi parsedIgnore
	if !strings.HasPrefix(text, ignorePrefix) {
		return pi, false
	}
	rest := text[len(ignorePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return pi, false // some other word, e.g. //lint:ignorefile
	}
	known := map[string]bool{}
	for _, c := range Codes {
		known[c] = true
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		pi.problem = "malformed //lint:ignore directive: expected \"//lint:ignore DTT00N reason\", got no code"
		return pi, true
	}
	codes := map[string]bool{}
	var list []string
	for _, code := range strings.Split(fields[0], ",") {
		if !known[code] {
			pi.problem = "//lint:ignore names unknown code \"" + code + "\" (known codes: " + strings.Join(Codes[1:], ", ") + ")"
			return pi, true
		}
		if code == CodeDirective {
			pi.problem = "//lint:ignore cannot suppress " + CodeDirective + ": directive diagnostics are not suppressible"
			return pi, true
		}
		if !codes[code] {
			codes[code] = true
			list = append(list, code)
		}
	}
	if len(fields) < 2 {
		pi.problem = "//lint:ignore " + fields[0] + " has no reason: every suppression must say why the finding is safe"
		return pi, true
	}
	sort.Strings(list)
	pi.codeList = list
	pi.codes = codes
	pi.reason = strings.Join(fields[1:], " ")
	return pi, true
}

// collectDirectives parses every //lint:ignore comment in the
// package, recording valid ones and reporting malformed ones.
func (a *analyzer) collectDirectives(p *Package) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pi, ok := parseIgnoreComment(c.Text)
				if !ok {
					continue
				}
				if pi.problem != "" {
					a.reportf(c.Pos(), CodeDirective, "%s", pi.problem)
					continue
				}
				pos := a.ld.fset.Position(c.Pos())
				a.direct = append(a.direct, directive{
					file:   a.relFile(pos.Filename),
					line:   pos.Line,
					codes:  pi.codes,
					reason: pi.reason,
				})
			}
		}
	}
}

// collectLeafDirectives parses (without reporting) every well-formed
// directive in every loaded module package — the suppression set for
// interprocedural leaves, which may sit in packages outside the
// analyzed pattern set.
func collectLeafDirectives(ld *loader) []directive {
	var out []directive
	for _, p := range ld.pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pi, ok := parseIgnoreComment(c.Text)
					if !ok || pi.problem != "" {
						continue
					}
					pos := ld.fset.Position(c.Pos())
					out = append(out, directive{
						file:   relTo(ld.root, pos.Filename),
						line:   pos.Line,
						codes:  pi.codes,
						reason: pi.reason,
					})
				}
			}
		}
	}
	return out
}

// applyDirectives drops diagnostics covered by a directive on the
// same line or the line above — at the report site, or (for
// interprocedural findings) at the leaf site. DTT000 survives
// unconditionally.
func applyDirectives(diags []Diagnostic, direct, leafDirect []directive) []Diagnostic {
	if len(direct) == 0 && len(leafDirect) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		if d.Code != CodeDirective {
			if suppressed(d.File, d.Line, d.Code, direct) {
				continue
			}
			if d.leafFile != "" && suppressed(d.leafFile, d.leafLine, d.Code, leafDirect) {
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept
}

// suppressed reports whether some directive covers a finding of the
// given code at file:line.
func suppressed(file string, line int, code string, direct []directive) bool {
	for _, dir := range direct {
		if dir.file != file || !dir.codes[code] {
			continue
		}
		if dir.line == line || dir.line == line-1 {
			return true
		}
	}
	return false
}
