package lint

import (
	"go/ast"
	"strings"
)

// Suppression. A finding is silenced by
//
//	//lint:ignore DTT00N reason
//	//lint:ignore DTT001,DTT002 reason
//
// placed either on the flagged line (trailing comment) or on the line
// directly above it. The reason is mandatory: an unexplained
// suppression is indistinguishable from a stale one, so the directive
// itself is checked and malformed forms (missing code, unknown code,
// missing reason) are reported as DTT000. DTT000 cannot be
// suppressed — a directive cannot vouch for itself.

// directive is one parsed, well-formed //lint:ignore comment.
type directive struct {
	file  string          // module-root-relative file name
	line  int             // 1-based line the comment sits on
	codes map[string]bool // codes it suppresses
}

const ignorePrefix = "//lint:ignore"

// collectDirectives parses every //lint:ignore comment in the
// package, recording valid ones and reporting malformed ones.
func (a *analyzer) collectDirectives(p *Package) {
	known := map[string]bool{}
	for _, c := range Codes {
		known[c] = true
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a.parseDirective(c, known)
			}
		}
	}
}

// parseDirective handles one comment.
func (a *analyzer) parseDirective(c *ast.Comment, known map[string]bool) {
	text := c.Text
	if !strings.HasPrefix(text, ignorePrefix) {
		return
	}
	rest := text[len(ignorePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return // some other word, e.g. //lint:ignorefile
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		a.reportf(c.Pos(), CodeDirective,
			"malformed //lint:ignore directive: expected \"//lint:ignore DTT00N reason\", got no code")
		return
	}
	codes := map[string]bool{}
	for _, code := range strings.Split(fields[0], ",") {
		if !known[code] {
			a.reportf(c.Pos(), CodeDirective,
				"//lint:ignore names unknown code %q (known codes: %s)",
				code, strings.Join(Codes[1:], ", "))
			return
		}
		if code == CodeDirective {
			a.reportf(c.Pos(), CodeDirective,
				"//lint:ignore cannot suppress %s: directive diagnostics are not suppressible", CodeDirective)
			return
		}
		codes[code] = true
	}
	if len(fields) < 2 {
		a.reportf(c.Pos(), CodeDirective,
			"//lint:ignore %s has no reason: every suppression must say why the finding is safe", fields[0])
		return
	}
	pos := a.ld.fset.Position(c.Pos())
	a.direct = append(a.direct, directive{
		file:  a.relFile(pos.Filename),
		line:  pos.Line,
		codes: codes,
	})
}

// applyDirectives drops diagnostics covered by a directive on the
// same line or the line above. DTT000 survives unconditionally.
func applyDirectives(diags []Diagnostic, direct []directive) []Diagnostic {
	if len(direct) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		if d.Code != CodeDirective && suppressed(d, direct) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// suppressed reports whether some directive covers the diagnostic.
func suppressed(d Diagnostic, direct []directive) bool {
	for _, dir := range direct {
		if dir.file != d.File || !dir.codes[d.Code] {
			continue
		}
		if dir.line == d.Line || dir.line == d.Line-1 {
			return true
		}
	}
	return false
}
