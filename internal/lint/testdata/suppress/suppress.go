// Package suppress exercises //lint:ignore handling: trailing and
// line-above placement, wrong codes, out-of-range placement, missing
// reasons, unknown codes, and the DTT000 self-suppression ban.
package suppress

import (
	"time"

	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// Suppressed by a trailing directive on the flagged line.
var trailing storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	emit(stream.Item(e.Key, time.Now().Unix())) //lint:ignore DTT002 fixture: trailing suppression
})

// Suppressed by a directive on the line directly above.
var above storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	//lint:ignore DTT002 fixture: suppression from the line above
	emit(stream.Item(e.Key, time.Now().Unix()))
})

// NOT suppressed: the directive names the wrong code.
var wrongCode storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	//lint:ignore DTT001 fixture: wrong code on purpose
	emit(stream.Item(e.Key, time.Now().Unix()))
})

// NOT suppressed: the directive is two lines above the finding.
var tooFar storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	//lint:ignore DTT002 fixture: placed out of range on purpose
	_ = e.Key
	emit(stream.Item(e.Key, time.Now().Unix()))
})

// Malformed: no reason. The directive is rejected (DTT000) and the
// finding it meant to silence survives.
var noReason storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	//lint:ignore DTT002
	emit(stream.Item(e.Key, time.Now().Unix()))
})

// Malformed: unknown code.
//
//lint:ignore DTT999 fixture: no such rule
var unknownCode = 0

// Malformed: DTT000 cannot vouch for itself.
//
//lint:ignore DTT000 fixture: trying to silence the meta rule
var selfIgnore = 0
