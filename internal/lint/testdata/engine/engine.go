// Package enginefix is the summary-engine unit-test fixture: small
// functions whose summaries engine_test.go asserts directly
// (recursion, mutual recursion, interface fan-out, the depth bound,
// and each per-parameter effect kind).
package enginefix

import "time"

// Recur reaches the clock through self-recursion: the fixpoint must
// terminate and still record the nondet effect.
func Recur(n int) int64 {
	if n == 0 {
		return time.Now().UnixNano()
	}
	return Recur(n - 1)
}

// Ping and Pong are mutually recursive; Pong owns the spawn leaf and
// Ping inherits it across the cycle.
func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

func Pong(n int) {
	go func() {}()
	Ping(n)
}

// Doer fans out through an interface: CallIface's effects are the
// union over implementations.
type Doer interface{ Do() }

// Quiet is a pure implementation.
type Quiet struct{}

func (Quiet) Do() {}

// Noisy reads the clock.
type Noisy struct{}

func (Noisy) Do() { _ = time.Since(time.Time{}) }

// CallIface dispatches through the interface.
func CallIface(d Doer) { d.Do() }

// D0..D9 form a call chain ten deep rooted at a clock read; the
// depth bound cuts propagation at maxEffectDepth hops.
func D0() int64 { return time.Now().UnixNano() }
func D1() int64 { return D0() }
func D2() int64 { return D1() }
func D3() int64 { return D2() }
func D4() int64 { return D3() }
func D5() int64 { return D4() }
func D6() int64 { return D5() }
func D7() int64 { return D6() }
func D8() int64 { return D7() }
func D9() int64 { return D8() }

// Invoke calls its function parameter.
func Invoke(f func(int)) { f(1) }

// InvokeInMap calls its function parameter inside a range over a map.
func InvokeInMap(m map[string]int, f func(int)) {
	for _, v := range m {
		f(v)
	}
}

// sink is the package-level escape target.
var sink []int64

// Escape stores its parameter in a package variable.
func Escape(rows []int64) { sink = rows }

// EscapeDeep escapes one call down.
func EscapeDeep(rows []int64) { Escape(rows) }

// WriteThrough writes through its pointer parameter.
func WriteThrough(p *int) { *p = 1 }

// ReturnAlias returns a sub-slice of its parameter.
func ReturnAlias(rows []int64) []int64 { return rows[1:] }

// Box has a method that writes its receiver, and one that does so
// through another method.
type Box struct{ n int }

func (b *Box) Set(v int) { b.n = v }

func (b *Box) Reset() { b.Set(0) }

// Mix subtracts its second parameter from its first.
func Mix(a, b int64) int64 { return a - b }

// MixDeep mixes its parameters through Mix.
func MixDeep(x, y int64) int64 { return Mix(x, y) }
