// Package dtt003 exercises DTT003: template callbacks writing
// variables captured from the enclosing scope — state shared by every
// parallel instance of the operator.
package dtt003

import (
	"datatrace/internal/core"
	"datatrace/internal/stream"
)

// BadCounter shares a captured counter across all instances.
func BadCounter() core.Operator {
	total := 0
	return &core.Stateless[string, int, string, int]{
		OpName: "bad-counter",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			total++ // want DTT003
			emit(key, total)
		},
	}
}

// BadMap dedupes through a captured map.
func BadMap() core.Operator {
	seen := map[string]bool{}
	return &core.Stateless[string, int, string, int]{
		OpName: "bad-seen",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			if !seen[key] {
				seen[key] = true // want DTT003
				emit(key, value)
			}
		},
	}
}

type config struct{ limit int }

// BadField writes a field through a captured struct pointer.
func BadField() core.Operator {
	cfg := &config{limit: 1}
	return &core.Stateless[string, int, string, int]{
		OpName: "bad-cfg",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			cfg.limit = value // want DTT003
			emit(key, cfg.limit)
		},
	}
}

// bump writes through its pointer parameter.
func bump(c *config) { c.limit++ }

type tally struct{ n int }

// inc mutates its receiver.
func (t *tally) inc() { t.n++ }

// BadHelperWrite mutates captured state one call deep: a helper that
// writes through its parameter, and a method that writes its
// receiver.
func BadHelperWrite() core.Operator {
	cfg := &config{}
	total := &tally{}
	return &core.Stateless[string, int, string, int]{
		OpName: "bad-helper-write",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			bump(cfg)   // want DTT003
			total.inc() // want DTT003
			emit(key, cfg.limit+total.n)
		},
	}
}
