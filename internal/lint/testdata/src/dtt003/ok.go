package dtt003

import (
	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// OkLocal writes only callback-local state.
func OkLocal() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "ok-local",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			n := value
			n++
			emit(key, n)
		},
	}
}

// OkFactory is the handcrafted-topology pattern: the factory runs
// once per deployed instance, so the closure's captures are
// instance-local state, not cross-instance sharing. DTT003 applies
// only to template callbacks, which live on the shared Operator.
func OkFactory() storm.Bolt {
	count := 0
	return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
		count++
		emit(stream.Item(e.Key, count))
	})
}
