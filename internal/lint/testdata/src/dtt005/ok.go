package dtt005

import (
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// okBolt emits synchronously through the runtime — the only sanctioned
// output path.
type okBolt struct{}

// Next implements storm.Bolt.
func (b *okBolt) Next(e stream.Event, emit func(stream.Event)) {
	emit(e)
}

var _ storm.Bolt = (*okBolt)(nil)

// double is a pure helper: calling it moves no work off the executor.
func double(v int64) int64 { return 2 * v }

// okHelperBolt calls a pure helper and emits synchronously.
type okHelperBolt struct{}

// Next implements storm.Bolt.
func (b *okHelperBolt) Next(e stream.Event, emit func(stream.Event)) {
	emit(stream.Item(e.Key, double(1)))
}

var _ storm.Bolt = (*okHelperBolt)(nil)
