package dtt005

import (
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// okBolt emits synchronously through the runtime — the only sanctioned
// output path.
type okBolt struct{}

// Next implements storm.Bolt.
func (b *okBolt) Next(e stream.Event, emit func(stream.Event)) {
	emit(e)
}

var _ storm.Bolt = (*okBolt)(nil)
