// Package dtt005 exercises DTT005: goroutine spawns and raw channel
// sends that move events around the runtime's delivery machinery.
package dtt005

import (
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// spawnBolt leaks work to a goroutine and a side channel: neither is
// visible to the transactional flush or to marker-cut recovery.
type spawnBolt struct {
	side chan stream.Event
}

// Next implements storm.Bolt.
func (b *spawnBolt) Next(e stream.Event, emit func(stream.Event)) {
	go func() { // want DTT005
		b.side <- e // want DTT005
	}()
}

var _ storm.Bolt = (*spawnBolt)(nil)

var side = make(chan stream.Event, 1)

// BadSend pushes events through a package channel from a bolt
// closure.
var BadSend storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	side <- e // want DTT005
	emit(e)
})

// fireAndForget spawns its argument on a fresh goroutine.
func fireAndForget(f func()) { go f() }

// BadHelperSpawn leaks work through a helper spawn.
var BadHelperSpawn storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	fireAndForget(func() { emit(e) }) // want DTT005
})
