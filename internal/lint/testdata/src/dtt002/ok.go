package dtt002

import (
	"math/rand"
	"time"

	"datatrace/internal/core"
	"datatrace/internal/stream"
)

// OkMarker derives time from the marker's event-time watermark and
// uses only pure duration arithmetic — both deterministic.
func OkMarker() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "ok-marker",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			d := 5 * time.Millisecond
			emit(key, value+int(d/time.Millisecond))
		},
		OnMarker: func(emit core.Emit[string, int], m stream.Marker) {
			emit("watermark", int(m.Timestamp))
		},
	}
}

// Randomness outside a hot context (test-data generation at package
// init) is not the analyzer's business.
var warmup = rand.New(rand.NewSource(1)).Intn(10)

// latency reads the clock for measurement only; the waiver at the
// leaf silences the derived finding in every caller.
func latency() int64 {
	//lint:ignore DTT002 fixture: measurement-only clock read, waived at the leaf for all callers
	return time.Now().UnixNano()
}

// OkWaivedLeaf calls a helper whose clock read carries a leaf waiver.
func OkWaivedLeaf() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "ok-waived-leaf",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			_ = latency()
			emit(key, value)
		},
	}
}
