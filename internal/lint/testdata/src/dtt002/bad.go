// Package dtt002 exercises DTT002: ambient nondeterminism (wall
// clock, random numbers, multi-way select) in hot paths.
package dtt002

import (
	"math/rand"
	"time"

	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// stampBolt tags each item with the wall clock: replay after recovery
// produces a different trace.
type stampBolt struct{}

// Next implements storm.Bolt.
func (b *stampBolt) Next(e stream.Event, emit func(stream.Event)) {
	emit(stream.Item(e.Key, time.Now().UnixNano())) // want DTT002
}

var _ storm.Bolt = (*stampBolt)(nil)

// BadSample drops items at random inside a template callback.
func BadSample() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "bad-sample",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			if rand.Intn(2) == 0 { // want DTT002
				emit(key, value)
			}
		},
	}
}

var in1, in2 chan stream.Event

// BadSelect lets the scheduler pick between two sources inside a bolt
// closure.
var BadSelect storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	select { // want DTT002
	case x := <-in1:
		emit(x)
	case x := <-in2:
		emit(x)
	}
})

// nowish looks pure at the call site; the clock is two calls down.
func nowish() int64 { return stamp() }

func stamp() int64 { return time.Now().UnixNano() }

// BadHelperClock reaches the wall clock through two helper calls.
func BadHelperClock() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "bad-helper-clock",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			emit(key, int(nowish())) // want DTT002
		},
	}
}
