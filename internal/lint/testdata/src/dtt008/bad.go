// Package dtt008 exercises DTT008: non-commutative Combine callbacks
// in unordered contexts. Replicated instances merge partial
// aggregates in scheduler order, so Combine(x, y) must equal
// Combine(y, x).
package dtt008

import (
	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// BadSub subtracts one partial aggregate from the other: the merged
// value depends on which replica's partial arrives first.
func BadSub() core.Operator {
	return &core.KeyedUnordered[string, int64, string, int64, int64, int64]{
		OpName:       "bad-sub",
		InT:          stream.U("K", "Long"),
		OutT:         stream.U("K", "Long"),
		In:           func(_ string, v int64) int64 { return v },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x - y }, // want DTT008
		InitialState: func() int64 { return 0 },
		UpdateState:  func(old, agg int64) int64 { return old + agg },
	}
}

// BadAppend merges windowed lists by appending one side onto the
// other: the merged slice order encodes merge order.
func BadAppend() core.Operator {
	return &core.SlidingAggregate[string, int64, []int64]{
		OpName:       "bad-append",
		InT:          stream.U("K", "Long"),
		OutT:         stream.U("K", "Long"),
		WindowBlocks: 2,
		In:           func(_ string, v int64) []int64 { return []int64{v} },
		ID:           func() []int64 { return nil },
		Combine:      func(x, y []int64) []int64 { return append(x, y...) }, // want DTT008
	}
}

// ratio divides its first argument by its second — order-dependent,
// but invisible at the Combine call site without the summary engine.
func ratio(a, b float64) float64 { return a / b }

// BadRatio reaches the division through a helper.
func BadRatio() core.Operator {
	return &core.KeyedUnordered[string, float64, string, float64, float64, float64]{
		OpName:       "bad-ratio",
		InT:          stream.U("K", "Double"),
		OutT:         stream.U("K", "Double"),
		In:           func(_ string, v float64) float64 { return v },
		ID:           func() float64 { return 1 },
		Combine:      func(x, y float64) float64 { return ratio(x, y) }, // want DTT008
		InitialState: func() float64 { return 0 },
		UpdateState:  func(old, agg float64) float64 { return old + agg },
	}
}

// BadConcat concatenates per-event strings in a pre-shuffle combiner:
// the combined string depends on arrival order.
var BadConcat = storm.CombinerSpec{
	In:      func(_, value any) any { return value },
	Combine: func(x, y any) any { return x.(string) + y.(string) }, // want DTT008
	Cap:     64,
}
