package dtt008

import (
	"datatrace/internal/core"
	"datatrace/internal/stream"
)

// OkSum is the canonical commutative monoid.
func OkSum() core.Operator {
	return &core.KeyedUnordered[string, int64, string, int64, int64, int64]{
		OpName:       "ok-sum",
		InT:          stream.U("K", "Long"),
		OutT:         stream.U("K", "Long"),
		In:           func(_ string, v int64) int64 { return v },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		InitialState: func() int64 { return 0 },
		// Subtraction in UpdateState is out of scope: it runs once per
		// key per marker, in marker order, which is deterministic.
		UpdateState: func(old, agg int64) int64 { return old - agg },
	}
}

type avg struct{ Sum, Count float64 }

// OkOwnFields divides one aggregate's own fields — no mixing of the
// two combined values, so order cannot matter.
func OkOwnFields() core.Operator {
	return &core.KeyedUnordered[string, float64, string, float64, avg, avg]{
		OpName: "ok-avg",
		InT:    stream.U("K", "Double"),
		OutT:   stream.U("K", "Double"),
		In:     func(_ string, v float64) avg { return avg{Sum: v, Count: 1} },
		ID:     func() avg { return avg{} },
		Combine: func(x, y avg) avg {
			if x.Count > 0 {
				_ = x.Sum / x.Count // one side's own fields: commutative merge
			}
			return avg{Sum: x.Sum + y.Sum, Count: x.Count + y.Count}
		},
		InitialState: func() avg { return avg{} },
		UpdateState:  func(_, agg avg) avg { return agg },
	}
}

// OkWaivedMerge mirrors the dsl join: list order is unobservable when
// the output type quotients blocks to multisets, so the append-merge
// carries a reasoned waiver.
func OkWaivedMerge() core.Operator {
	return &core.SlidingAggregate[string, int64, []int64]{
		OpName:       "ok-waived",
		InT:          stream.U("K", "Long"),
		OutT:         stream.U("K", "Long"),
		WindowBlocks: 2,
		In:           func(_ string, v int64) []int64 { return []int64{v} },
		ID:           func() []int64 { return nil },
		Combine: func(x, y []int64) []int64 {
			//lint:ignore DTT008 fixture: downstream output type quotients the window to a multiset, so merge order is unobservable
			return append(append([]int64(nil), x...), y...)
		},
	}
}
