package dtt007

import (
	"datatrace/internal/stream"
)

// foldInst is a well-behaved batch consumer: it reads rows as value
// copies, keeps only copied data, and its local batch aliases die
// with the call.
type foldInst struct {
	sums map[int64]int64
	seen []int64
}

// Next implements core.Instance.
func (in *foldInst) Next(e stream.Event, emit func(stream.Event)) { emit(e) }

// ProcessCols folds rows into owned state. Indexing a column is a
// value copy, so appending the copied key to a receiver field is
// fine; the keys/vals locals alias the batch but never escape.
func (in *foldInst) ProcessCols(ic, _ stream.Columns) {
	tc := ic.(*stream.Cols[int64, int64])
	keys, vals := tc.Keys, tc.Vals
	for i, k := range keys {
		if _, ok := in.sums[k]; !ok {
			in.seen = append(in.seen, k)
		}
		in.sums[k] += vals[i]
	}
}

// stashInst uses the stash-and-clear pattern: the current output
// batch is parked in a receiver field so the cached emit closure can
// reach it, and the alias is dropped before the method returns.
type stashInst struct {
	cur  *stream.Cols[int64, int64]
	emit func(k, v int64)
}

// Next implements core.Instance.
func (in *stashInst) Next(e stream.Event, emit func(stream.Event)) { emit(e) }

// ProcessCols parks oc in a field for the duration of the call only:
// the trailing nil store provably drops the arena alias.
func (in *stashInst) ProcessCols(ic, oc stream.Columns) {
	tc := ic.(*stream.Cols[int64, int64])
	in.cur = oc.(*stream.Cols[int64, int64])
	if in.emit == nil {
		in.emit = func(k, v int64) { in.cur.Append(k, v) }
	}
	for i, k := range tc.Keys {
		in.emit(k, tc.Vals[i]*2)
	}
	in.cur = nil
}
