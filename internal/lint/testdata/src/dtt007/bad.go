// Package dtt007 exercises DTT007: ProcessCols/ProcessBatch
// implementations that retain the column batch — or a slice aliasing
// its columns — past the call. The batch belongs to a recycled arena,
// so every retained alias silently becomes a later block's rows.
package dtt007

import (
	"datatrace/internal/stream"
)

// lastBatch is a package-level stash — the worst place for an arena
// alias to land.
var lastBatch stream.Columns

// leakyInst retains batch aliases four different ways.
type leakyInst struct {
	lastIn  stream.Columns
	keys    []int64
	rawKeys any
	rawVals any
}

// Next implements core.Instance (boxed fallback path).
func (in *leakyInst) Next(e stream.Event, emit func(stream.Event)) { emit(e) }

// ProcessCols retains its input batch, a typed column slice, the
// Slices() views and a package-level alias — all use-after-reuse.
func (in *leakyInst) ProcessCols(ic, oc stream.Columns) {
	in.lastIn = ic // want DTT007
	tc := ic.(*stream.Cols[int64, int64])
	in.keys = tc.Keys                    // want DTT007
	in.rawKeys, in.rawVals = ic.Slices() // want DTT007 DTT007
	lastBatch = oc                       // want DTT007
	for i := range tc.Keys {
		oc.AppendRow(ic, i)
	}
}

// renamer launders the alias through a local before stashing it: the
// taint follows the assignment chain.
type renamer struct {
	stash []int64
}

// Next implements core.Instance.
func (r *renamer) Next(e stream.Event, emit func(stream.Event)) { emit(e) }

// ProcessBatch is the alternative method name; sub-slices keep the
// alias too.
func (r *renamer) ProcessBatch(in, out stream.Columns) {
	tc := in.(*stream.Cols[int64, int64])
	view := tc.Keys[1:]
	r.stash = view // want DTT007
	for i := range tc.Keys {
		out.AppendRow(in, i)
	}
}

// view returns an alias of its argument: assigning its result to a
// field launders the arena alias through the call.
func view(rows []int64) []int64 { return rows[1:] }

// launderer stashes an alias obtained from a helper return.
type launderer struct {
	keep []int64
}

// Next implements core.Instance.
func (l *launderer) Next(e stream.Event, emit func(stream.Event)) { emit(e) }

// ProcessCols retains a batch alias laundered through view.
func (l *launderer) ProcessCols(in, out stream.Columns) {
	tc := in.(*stream.Cols[int64, int64])
	l.keep = view(tc.Keys) // want DTT007
	for i := range tc.Keys {
		out.AppendRow(in, i)
	}
}
