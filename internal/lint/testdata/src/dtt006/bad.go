// Package dtt006 exercises DTT006: operators that declare
// Mode() == ParAny (stateless, splittable behind any splitter) but
// write their own fields — cross-instance state the declaration
// denies.
package dtt006

import (
	"datatrace/internal/core"
	"datatrace/internal/stream"
)

// tagOp declares ParAny yet counts events on itself.
type tagOp struct {
	total int
	cache map[string]int
}

// Name implements core.Operator.
func (o *tagOp) Name() string { return "tag" }

// InType implements core.Operator.
func (o *tagOp) InType() stream.Type { return stream.U("K", "V") }

// OutType implements core.Operator.
func (o *tagOp) OutType() stream.Type { return stream.U("K", "V") }

// Mode implements core.Operator: the claim the writes below violate.
func (o *tagOp) Mode() core.ParMode { return core.ParAny }

// Validate implements core.Operator.
func (o *tagOp) Validate() error { return nil }

// New implements core.Operator — and mutates the shared operator.
func (o *tagOp) New() core.Instance {
	o.total++ // want DTT006
	return &tagInst{}
}

// Warm writes through a field; any method of a ParAny operator is
// covered, interface method or not.
func (o *tagOp) Warm(k string) {
	o.cache[k] = 1 // want DTT006
}

type tagInst struct{}

// Next implements core.Instance.
func (in *tagInst) Next(e stream.Event, emit func(stream.Event)) { emit(e) }
