package dtt006

import (
	"datatrace/internal/core"
	"datatrace/internal/stream"
)

// pureOp is a well-behaved ParAny operator: no mutable fields, all
// state lives in the instance.
type pureOp struct {
	label string
}

// Name implements core.Operator.
func (o *pureOp) Name() string { return o.label }

// InType implements core.Operator.
func (o *pureOp) InType() stream.Type { return stream.U("K", "V") }

// OutType implements core.Operator.
func (o *pureOp) OutType() stream.Type { return stream.U("K", "V") }

// Mode implements core.Operator.
func (o *pureOp) Mode() core.ParMode { return core.ParAny }

// Validate implements core.Operator.
func (o *pureOp) Validate() error { return nil }

// New implements core.Operator: state goes into the fresh instance.
func (o *pureOp) New() core.Instance {
	n := 0
	n++
	return &pureInst{count: n}
}

type pureInst struct{ count int }

// Next implements core.Instance.
func (in *pureInst) Next(e stream.Event, emit func(stream.Event)) {
	in.count++
	emit(e)
}

// keyedOp writes a field, but declares ParKeyed — a different
// discipline with its own (keyed) obligations; DTT006 targets the
// stateless claim specifically.
type keyedOp struct{ builds int }

// Name implements core.Operator.
func (o *keyedOp) Name() string { return "keyed" }

// InType implements core.Operator.
func (o *keyedOp) InType() stream.Type { return stream.U("K", "V") }

// OutType implements core.Operator.
func (o *keyedOp) OutType() stream.Type { return stream.U("K", "V") }

// Mode implements core.Operator.
func (o *keyedOp) Mode() core.ParMode { return core.ParKeyed }

// Validate implements core.Operator.
func (o *keyedOp) Validate() error { return nil }

// New implements core.Operator.
func (o *keyedOp) New() core.Instance {
	o.builds++
	return &pureInst{}
}
