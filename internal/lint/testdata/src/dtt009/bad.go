// Package dtt009 exercises DTT009: ProcessCols/ProcessBatch handing
// a column batch alias to a helper whose summary retains it. DTT007
// sees only stores in the method body itself; this closes the
// call-boundary seam.
package dtt009

import (
	"datatrace/internal/stream"
)

// holder stashes whatever slice it is given in a receiver field.
type holder struct{ keep []int64 }

func (h *holder) grab(rows []int64) { h.keep = rows }

// last is a package-level stash one call away.
var last []int64

func remember(rows []int64) { last = rows }

// keepAll launders the stash through a second call level.
func keepAll(rows []int64) { remember(rows) }

// leaky hands arena aliases to all three retaining helpers.
type leaky struct {
	h holder
}

// Next implements core.Instance (boxed fallback path).
func (l *leaky) Next(e stream.Event, emit func(stream.Event)) { emit(e) }

// ProcessCols leaks the batch's columns through helper calls: every
// callee stores the slice past the call, so the retained rows
// silently become a later block's rows.
func (l *leaky) ProcessCols(in, out stream.Columns) {
	tc := in.(*stream.Cols[int64, int64])
	l.h.grab(tc.Keys) // want DTT009
	remember(tc.Vals) // want DTT009
	keepAll(tc.Keys)  // want DTT009
	for i := range tc.Keys {
		out.AppendRow(in, i)
	}
}
