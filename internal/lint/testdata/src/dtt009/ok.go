package dtt009

import (
	"datatrace/internal/stream"
)

// total only reads its argument; nothing escapes.
func total(rows []int64) int64 {
	var s int64
	for _, v := range rows {
		s += v
	}
	return s
}

// safe copies rows out before handing them to a retaining helper and
// passes live aliases only to read-only helpers.
type safe struct {
	h    holder
	sums []int64
}

// Next implements core.Instance.
func (s *safe) Next(e stream.Event, emit func(stream.Event)) { emit(e) }

// ProcessCols is clean: the retaining helper receives an owned copy,
// and the read-only helper returns a value.
func (s *safe) ProcessCols(in, out stream.Columns) {
	tc := in.(*stream.Cols[int64, int64])
	cp := make([]int64, len(tc.Keys))
	copy(cp, tc.Keys)
	s.h.grab(cp) // owned copy: no arena alias escapes
	s.sums = append(s.sums, total(tc.Vals))
	for i := range tc.Keys {
		out.AppendRow(in, i)
	}
}
