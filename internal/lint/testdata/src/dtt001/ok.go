package dtt001

import (
	"sort"

	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// OkSorted sorts the accumulated keys before emitting — the pattern
// the built-in templates use.
func OkSorted() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "ok-sorted",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			acc := map[string]int{key: value, key + "!": value}
			var keys []string
			for k := range acc {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				emit(k, acc[k])
			}
		},
	}
}

// OkSlice ranges over a slice, which is deterministic.
func OkSlice() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "ok-slice",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			parts := []int{value, value + 1}
			for _, v := range parts {
				emit(key, v)
			}
		},
	}
}

// forward invokes the callback outside any map range: passing emit
// to it is fine.
func forward(f func(stream.Event), e stream.Event) { f(e) }

// OkHelper delegates emission to a helper with deterministic order.
var OkHelper storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	forward(emit, e)
})
