// Package dtt001 exercises DTT001: map iteration order reaching
// emission. `// want DTT00N` marks the expected diagnostic lines.
package dtt001

import (
	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// BadDirect emits from inside a range over a map: the output order is
// a function of the hash seed.
func BadDirect() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "bad-direct",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			acc := map[string]int{key: value, key + "!": value}
			for k, v := range acc {
				emit(k, v) // want DTT001
			}
		},
	}
}

// BadAccum fills a slice from a map range and emits it without an
// intervening sort.
func BadAccum() core.Operator {
	return &core.Stateless[string, int, string, int]{
		OpName: "bad-accum",
		In:     stream.U("K", "V"),
		Out:    stream.U("K", "V"),
		OnItem: func(emit core.Emit[string, int], key string, value int) {
			acc := map[string]int{key: value, key + "!": value}
			var keys []string
			for k := range acc {
				keys = append(keys, k)
			}
			for _, k := range keys {
				emit(k, acc[k]) // want DTT001
			}
		},
	}
}

// BadBolt shows the same defect in a handcrafted bolt closure.
var BadBolt storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	seen := map[any]int{e.Key: 1}
	for k := range seen {
		emit(stream.Item(k, 1)) // want DTT001
	}
})

// fanOut ranges a map and invokes the callback per entry — a hazard
// invisible at the call site without the summary engine.
func fanOut(m map[any]int, f func(stream.Event)) {
	for k, v := range m {
		f(stream.Item(k, int64(v)))
	}
}

// BadHelper hides the map range one call deep.
var BadHelper storm.Bolt = storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
	seen := map[any]int{e.Key: 1}
	fanOut(seen, emit) // want DTT001
})
