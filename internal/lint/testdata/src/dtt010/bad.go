// Package dtt010 exercises DTT010: the marker/flush protocol
// typestate. A forwarded marker seals the epoch (nothing of the
// sealed epoch may be emitted after it), and the per-call emit
// callback must not outlive the call except through the sanctioned
// unconditional entry rebind.
package dtt010

import (
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// sealBolt emits data after forwarding the marker: the output lands
// past the epoch cut.
type sealBolt struct{}

// Next implements storm.Bolt.
func (b *sealBolt) Next(e stream.Event, emit func(stream.Event)) {
	if e.IsMarker {
		emit(e)
		emit(stream.Item("late", 1)) // want DTT010
		return
	}
	emit(e)
}

var _ storm.Bolt = (*sealBolt)(nil)

// flushVia invokes the callback it is handed — an emission hidden one
// call deep.
func flushVia(f func(stream.Event)) { f(stream.Item("x", 1)) }

// sealHelperBolt reaches the post-seal emission through a helper.
type sealHelperBolt struct{}

// Next implements storm.Bolt.
func (b *sealHelperBolt) Next(e stream.Event, emit func(stream.Event)) {
	if e.IsMarker {
		emit(e)
		flushVia(emit) // want DTT010
	}
}

var _ storm.Bolt = (*sealHelperBolt)(nil)

// holdBolt retains emit in a receiver field conditionally: the cached
// callback goes stale across rescale barriers.
type holdBolt struct {
	out func(stream.Event)
}

// Next implements storm.Bolt.
func (b *holdBolt) Next(e stream.Event, emit func(stream.Event)) {
	if b.out == nil {
		b.out = emit // want DTT010
	}
	b.out(e)
}

var _ storm.Bolt = (*holdBolt)(nil)

// globalEmit is the worst place for a per-call callback to land.
var globalEmit func(stream.Event)

// leakBolt stores emit in a package variable.
type leakBolt struct{}

// Next implements storm.Bolt.
func (b *leakBolt) Next(e stream.Event, emit func(stream.Event)) {
	globalEmit = emit // want DTT010
	globalEmit(e)
}

var _ storm.Bolt = (*leakBolt)(nil)

// stash and saveEmit retain the callback one call away.
var stash func(stream.Event)

func saveEmit(f func(stream.Event)) { stash = f }

// stashBolt hands emit to a helper that stashes it.
type stashBolt struct{}

// Next implements storm.Bolt.
func (b *stashBolt) Next(e stream.Event, emit func(stream.Event)) {
	saveEmit(emit) // want DTT010
	emit(e)
}

var _ storm.Bolt = (*stashBolt)(nil)
