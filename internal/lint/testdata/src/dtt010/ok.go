package dtt010

import (
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// okBolt is the framework idiom: unconditional entry rebind, flush
// before the marker forward, marker forwarded last.
type okBolt struct {
	out func(stream.Event)
	buf []stream.Event
}

// Next implements storm.Bolt.
func (b *okBolt) Next(e stream.Event, emit func(stream.Event)) {
	b.out = emit // unconditional entry rebind: overwritten every call
	if e.IsMarker {
		for _, p := range b.buf {
			emit(p)
		}
		b.buf = b.buf[:0]
		emit(e) // forward the marker last: the epoch is flushed
		return
	}
	b.buf = append(b.buf, e)
}

var _ storm.Bolt = (*okBolt)(nil)

// relay invokes the callback synchronously and never stores it.
func relay(f func(stream.Event), e stream.Event) { f(e) }

// relayBolt hands emit to a helper that only invokes it — the
// callback does not outlive the call.
type relayBolt struct{}

// Next implements storm.Bolt.
func (b *relayBolt) Next(e stream.Event, emit func(stream.Event)) {
	relay(emit, e)
}

var _ storm.Bolt = (*relayBolt)(nil)
