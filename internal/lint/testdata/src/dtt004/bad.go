// Package dtt004 exercises DTT004: Snapshotter state that gob cannot
// encode, which fails at the marker cut instead of at compile time.
package dtt004

import (
	"encoding/gob"

	"datatrace/internal/stream"
)

// badState mixes encodable and non-encodable fields.
type badState struct {
	Count int
	Fn    func() int
	Done  chan struct{}
}

type badInst struct{ state badState }

// Next implements core.Instance.
func (in *badInst) Next(e stream.Event, emit func(stream.Event)) {}

// Snapshot implements core.Snapshotter — but the encoded value
// carries a func and a channel.
func (in *badInst) Snapshot(enc *gob.Encoder) error {
	return enc.Encode(in.state) // want DTT004 DTT004
}

// Restore implements core.Snapshotter.
func (in *badInst) Restore(dec *gob.Decoder) error { return dec.Decode(&in.state) }

// opaque has fields but none exported: gob silently encodes nothing
// and Restore yields zero state.
type opaque struct{ hidden int }

type opaqueInst struct{ st opaque }

// Next implements core.Instance.
func (in *opaqueInst) Next(e stream.Event, emit func(stream.Event)) {}

// Snapshot implements core.Snapshotter.
func (in *opaqueInst) Snapshot(enc *gob.Encoder) error {
	return enc.Encode(in.st) // want DTT004
}

// Restore implements core.Snapshotter.
func (in *opaqueInst) Restore(dec *gob.Decoder) error { return dec.Decode(&in.st) }
