package dtt004

import (
	"encoding/gob"
	"time"

	"datatrace/internal/stream"
)

// okState is fully encodable: plain exported fields, and time.Time is
// trusted because it implements gob.GobEncoder.
type okState struct {
	Counts map[string]int
	When   time.Time
}

type okInst struct{ st okState }

// Next implements core.Instance.
func (in *okInst) Next(e stream.Event, emit func(stream.Event)) {}

// Snapshot implements core.Snapshotter.
func (in *okInst) Snapshot(enc *gob.Encoder) error { return enc.Encode(in.st) }

// Restore implements core.Snapshotter.
func (in *okInst) Restore(dec *gob.Decoder) error { return dec.Decode(&in.st) }

// notSnapshotter has a Snapshot method but no Restore, so it is not a
// core.Snapshotter and the recovery contract does not apply.
type notSnapshotter struct{ fn func() }

// Snapshot is not part of any checkpoint protocol here.
func (n *notSnapshotter) Snapshot(enc *gob.Encoder) error { return enc.Encode(n.fn) }
