package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked module package: the unit dttlint
// analyzes. Dependency packages (stdlib, other module packages) are
// loaded through the same machinery, so cross-package facts — does
// this type implement core.Snapshotter? — come from real go/types
// objects, not name matching.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed files, in file-name order.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// loader loads and type-checks module packages from source using only
// the standard library: go/parser for syntax, go/types for semantics,
// and the "source" go/importer (which compiles dependencies from
// GOROOT source) for everything outside the module. No x/tools.
type loader struct {
	fset         *token.FileSet
	root         string // module root (directory containing go.mod)
	module       string // module path from go.mod
	workdir      string // directory patterns are resolved against
	includeTests bool
	delegate     types.ImporterFrom
	pkgs         map[string]*Package // loaded module packages by import path
	loading      map[string]bool     // import-cycle guard
}

// newLoader locates the enclosing module of dir (or the working
// directory when dir is empty) and prepares a loader for it.
func newLoader(dir string, includeTests bool) (*loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, module, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	delegate, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImporterFrom")
	}
	return &loader{
		fset:         fset,
		root:         root,
		module:       module,
		workdir:      abs,
		includeTests: includeTests,
		delegate:     delegate,
		pkgs:         map[string]*Package{},
		loading:      map[string]bool{},
	}, nil
}

// findModule walks up from dir to the first go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// pathFor maps an absolute package directory to its import path.
func (ld *loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: directory %s is outside module %s", dir, ld.root)
	}
	if rel == "." {
		return ld.module, nil
	}
	return ld.module + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path to its absolute directory.
func (ld *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.module), "/")
	return filepath.Join(ld.root, filepath.FromSlash(rel))
}

// inModule reports whether an import path belongs to the module.
func (ld *loader) inModule(path string) bool {
	return path == ld.module || strings.HasPrefix(path, ld.module+"/")
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, ld.root, 0)
}

// ImportFrom implements types.ImporterFrom: module packages are
// loaded from the module tree with full syntax retained; everything
// else goes through the stdlib source importer.
func (ld *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if ld.inModule(path) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.delegate.ImportFrom(path, srcDir, mode)
}

// load parses and type-checks one module package (memoized).
func (ld *loader) load(path string) (*Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := ld.dirFor(path)
	names, err := goFileNames(dir, ld.includeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Files parse in parallel: token.FileSet serializes its own base
	// allocation, and everything downstream orders by (file, line,
	// col) rather than global Pos, so the nondeterministic base
	// assignment never reaches the output.
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			files[i], errs[i] = parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// In-package test files are kept; external test packages
	// (package foo_test) cannot join this type-check unit.
	pkgName := files[0].Name.Name
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
			break
		}
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName || !strings.HasSuffix(f.Name.Name, "_test") {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, ld.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: %s does not type-check:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = p
	return p, nil
}

// goFileNames lists the package's Go file names in sorted order.
// Test files are included only when requested; files for external
// test packages are filtered later (they need the package clause).
func goFileNames(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// expand resolves the command-line patterns ("./...", "./internal/x",
// absolute directories) to absolute package directories, mirroring
// the go tool's behavior: "..." walks recursively, and testdata,
// vendor, hidden and underscore directories are skipped during the
// walk (but an explicitly named directory is always accepted).
func (ld *loader) expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(ld.workdir, base)
		}
		base = filepath.Clean(base)
		fi, err := os.Stat(base)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: no such directory %s", pat, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goFileNames(p, ld.includeTests)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
