package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DTT001 — map iteration order must not reach emission.
//
// Go randomizes map iteration order per range statement, so a
// map-range whose body emits (or whose body accumulates output that
// is later emitted unsorted) makes the operator's output sequence a
// function of the runtime's hash seed, not of the input trace. The
// conformance oracles (PR 2–4) compare traces up to the congruence
// induced by the data-trace type — which never licenses reordering
// that depends on anything but the input — so such an operator fails
// the very equivalence the typed DAG promises. The fix is the one the
// built-in templates use: keep a first-seen key slice (or sort the
// keys) and iterate that.
func (a *analyzer) rule001(c *hotCtx) {
	inspectShallow(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			rs := n
			if _, isMap := c.pkg.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if pos, eff, found := a.findEmitCall(c, rs.Body); found {
				a.reportEff(pos, CodeMapOrder, eff,
					"emission inside range over map %s in %s%s: map iteration order is nondeterministic, so the output trace depends on the hash seed — iterate a deterministic key slice (or sort the keys) instead",
					exprString(rs.X), c.desc, viaChain(eff))
				return true
			}
			for _, obj := range outerAppendTargets(c, rs) {
				a.checkSortBeforeEmit(c, rs, obj)
			}
		case *ast.CallExpr:
			// A helper handed the emit callback that ranges a map
			// around the invocation hides the same hazard one call
			// deep.
			for i, eff := range a.emitArgEffects(c, n, func(s *summary) map[int]*effect { return s.mapEmitParam }) {
				a.reportEff(n.Pos(), CodeMapOrder, eff,
					"%s is invoked inside a range over a map by this call (%s) in %s: map iteration order is nondeterministic, so the output trace depends on the hash seed — iterate a deterministic key slice in the helper instead",
					emitArgName(c, n, i), eff.chainString(), c.desc)
			}
		}
		return true
	})
}

// findEmitCall looks for a call that reaches one of the context's
// emission callbacks inside n (not descending into nested literals):
// either a direct invocation, or a call passing the callback to a
// helper whose summary says it may invoke it — in which case the
// returned effect carries the call chain.
func (a *analyzer) findEmitCall(c *hotCtx, n ast.Node) (pos token.Pos, eff *effect, found bool) {
	inspectShallow(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if obj := c.pkg.Info.Uses[id]; obj != nil && c.emits[obj] {
				pos, eff, found = call.Pos(), nil, true
				return false
			}
		}
		for _, e := range a.emitArgEffects(c, call, func(s *summary) map[int]*effect { return s.callsParam }) {
			pos, eff, found = call.Pos(), e, true
			return false
		}
		return true
	})
	return pos, eff, found
}

// emitArgEffects resolves a call's static callees and reports, for
// each argument that is one of the context's emission callbacks, the
// selected summary effect on the corresponding callee parameter
// (lifted to this call site). Keys are argument positions.
func (a *analyzer) emitArgEffects(c *hotCtx, call *ast.CallExpr, sel func(*summary) map[int]*effect) map[int]*effect {
	var out map[int]*effect
	for _, callee := range a.eng.callees(c.pkg, call) {
		cs := a.eng.sum(callee)
		if cs == nil {
			continue
		}
		sig := callee.Type().(*types.Signature)
		for j, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pkg.Info.Uses[id]
			if obj == nil || !c.emits[obj] {
				continue
			}
			cj := calleeParamIndex(sig, j)
			if cj < 0 {
				continue
			}
			if eff := derived(call.Pos(), callee, sel(cs)[cj]); eff != nil {
				if out == nil {
					out = map[int]*effect{}
				}
				if out[j] == nil {
					out[j] = eff
				}
			}
		}
	}
	return out
}

// emitArgName names the emit argument at position i for diagnostics.
func emitArgName(c *hotCtx, call *ast.CallExpr, i int) string {
	if i < len(call.Args) {
		return exprString(call.Args[i])
	}
	return "the emit callback"
}

// viaChain renders an interprocedural effect's call chain as a
// diagnostic suffix, empty for direct findings.
func viaChain(eff *effect) string {
	if eff == nil {
		return ""
	}
	return " (reached via " + eff.chainString() + ")"
}

// outerAppendTargets collects slice variables declared outside the
// range statement that its body appends to — candidate accumulators
// whose element order now carries map-iteration nondeterminism.
func outerAppendTargets(c *hotCtx, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	inspectShallow(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(c.pkg, call) {
			return true
		}
		obj := c.pkg.Info.ObjectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return true // declared inside the loop: fresh per iteration
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// checkSortBeforeEmit scans the statements following the map-range in
// its enclosing statement list: if the accumulated slice reaches an
// emission callback before any sort/slices call touches it, the
// map-iteration order leaked into the output.
func (a *analyzer) checkSortBeforeEmit(c *hotCtx, rs *ast.RangeStmt, obj types.Object) {
	stmts := enclosingStmtList(c.body, rs)
	if stmts == nil {
		return
	}
	after := false
	for _, s := range stmts {
		if s == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after || !stmtReferences(c.pkg, s, obj) {
			continue
		}
		if stmtCallsSortPkg(c.pkg, s, obj) {
			return // deterministically reordered before any emission
		}
		if pos, eff, found := a.findEmitCall(c, s); found {
			a.reportEff(pos, CodeMapOrder, eff,
				"%q is filled by ranging over map %s and emitted without an intervening deterministic sort in %s%s: the emission order depends on the hash seed — sort %q (sort/slices) before emitting",
				obj.Name(), exprString(rs.X), c.desc, viaChain(eff), obj.Name())
			return
		}
	}
}

// enclosingStmtList finds the statement list that contains the given
// statement directly.
func enclosingStmtList(body *ast.BlockStmt, target ast.Stmt) []ast.Stmt {
	var found []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, s := range list {
			if s == target {
				found = list
				return false
			}
		}
		return true
	})
	return found
}

// stmtReferences reports whether the statement mentions the object.
func stmtReferences(p *Package, s ast.Stmt, obj types.Object) bool {
	ref := false
	ast.Inspect(s, func(n ast.Node) bool {
		if ref {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			ref = true
			return false
		}
		return true
	})
	return ref
}

// stmtCallsSortPkg reports whether the statement calls into package
// sort or slices with the object among the call's arguments.
func stmtCallsSortPkg(p *Package, s ast.Stmt, obj types.Object) bool {
	hit := false
	ast.Inspect(s, func(n ast.Node) bool {
		if hit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprReferences(p, arg, obj) {
				hit = true
				return false
			}
		}
		return true
	})
	return hit
}

// exprReferences reports whether the expression mentions the object.
func exprReferences(p *Package, e ast.Expr, obj types.Object) bool {
	ref := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ref {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			ref = true
			return false
		}
		return true
	})
	return ref
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
