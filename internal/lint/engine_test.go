package lint

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadEngine builds a summary engine over the enginefix package.
func loadEngine(t *testing.T) (*engine, *Package) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "engine"))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := newLoader(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	path, err := ld.pathFor(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ld.load(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(ld)
	eng.build()
	return eng, p
}

// fn looks up a package-level function.
func fn(t *testing.T, p *Package, name string) *types.Func {
	t.Helper()
	f, ok := p.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %q in %s", name, p.Path)
	}
	return f
}

// method looks up a named type's method.
func method(t *testing.T, p *Package, typeName, methodName string) *types.Func {
	t.Helper()
	tn, ok := p.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("no type %q in %s", typeName, p.Path)
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, p.Types, methodName)
	m, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("no method %s.%s", typeName, methodName)
	}
	return m
}

// TestEngineRecursion: a self-recursive function reaches its own leaf
// and the fixpoint terminates.
func TestEngineRecursion(t *testing.T) {
	eng, p := loadEngine(t)
	s := eng.sum(fn(t, p, "Recur"))
	if s == nil || s.nondet == nil {
		t.Fatal("Recur: nondet effect not found")
	}
	if got := s.nondet.chainString(); got != "time.Now()" {
		t.Errorf("Recur chain = %q, want time.Now()", got)
	}
}

// TestEngineMutualRecursion: effects propagate across a Ping/Pong
// cycle without diverging.
func TestEngineMutualRecursion(t *testing.T) {
	eng, p := loadEngine(t)
	pong := eng.sum(fn(t, p, "Pong"))
	if pong == nil || pong.spawn == nil {
		t.Fatal("Pong: spawn effect not found")
	}
	if got := pong.spawn.chainString(); got != "go statement" {
		t.Errorf("Pong chain = %q, want go statement", got)
	}
	ping := eng.sum(fn(t, p, "Ping"))
	if ping == nil || ping.spawn == nil {
		t.Fatal("Ping: spawn effect not propagated across the cycle")
	}
	if got := ping.spawn.chainString(); got != "Pong → go statement" {
		t.Errorf("Ping chain = %q, want Pong → go statement", got)
	}
}

// TestEngineInterfaceFanOut: dispatch through an interface unions the
// implementations' effects; raising the fan-out bound to zero makes
// the dispatch opaque.
func TestEngineInterfaceFanOut(t *testing.T) {
	eng, p := loadEngine(t)
	s := eng.sum(fn(t, p, "CallIface"))
	if s == nil || s.nondet == nil {
		t.Fatal("CallIface: nondet not found through interface dispatch")
	}
	if got := s.nondet.chainString(); !strings.Contains(got, "(Noisy).Do") {
		t.Errorf("CallIface chain = %q, want it to pass through (Noisy).Do", got)
	}

	old := maxIfaceFanOut
	maxIfaceFanOut = 1 // fewer than the two Doer implementations
	defer func() { maxIfaceFanOut = old }()
	eng2, p2 := loadEngine(t)
	if s2 := eng2.sum(fn(t, p2, "CallIface")); s2 == nil || s2.nondet != nil {
		t.Error("CallIface: broad dispatch should be treated as opaque under the fan-out bound")
	}
}

// TestEngineDepthBound: a ten-deep call chain is cut at
// maxEffectDepth hops, and the bound is honored when overridden.
func TestEngineDepthBound(t *testing.T) {
	eng, p := loadEngine(t)
	d7 := eng.sum(fn(t, p, "D7"))
	if d7 == nil || d7.nondet == nil {
		t.Fatal("D7: nondet should be within the default depth bound")
	}
	if d7.nondet.depth != maxEffectDepth {
		t.Errorf("D7 depth = %d, want %d", d7.nondet.depth, maxEffectDepth)
	}
	if got := d7.nondet.chainString(); !strings.HasPrefix(got, "D6 → D5 → ") || !strings.HasSuffix(got, "D0 → time.Now()") {
		t.Errorf("D7 chain = %q", got)
	}
	for _, name := range []string{"D8", "D9"} {
		if s := eng.sum(fn(t, p, name)); s == nil || s.nondet != nil {
			t.Errorf("%s: nondet should be cut by the depth bound", name)
		}
	}

	old := maxEffectDepth
	maxEffectDepth = 3
	defer func() { maxEffectDepth = old }()
	eng2, p2 := loadEngine(t)
	if s := eng2.sum(fn(t, p2, "D2")); s == nil || s.nondet == nil {
		t.Error("D2: should be within the overridden bound of 3")
	}
	if s := eng2.sum(fn(t, p2, "D3")); s == nil || s.nondet != nil {
		t.Error("D3: should be cut by the overridden bound of 3")
	}
}

// TestEngineParamEffects covers the per-parameter effect kinds.
func TestEngineParamEffects(t *testing.T) {
	eng, p := loadEngine(t)

	if s := eng.sum(fn(t, p, "Invoke")); s == nil || s.callsParam[0] == nil {
		t.Error("Invoke: callsParam[0] not recorded")
	} else if len(s.mapEmitParam) != 0 {
		t.Error("Invoke: mapEmitParam should be empty outside map ranges")
	}
	if s := eng.sum(fn(t, p, "InvokeInMap")); s == nil || s.mapEmitParam[1] == nil {
		t.Error("InvokeInMap: mapEmitParam[1] not recorded")
	}

	if s := eng.sum(fn(t, p, "Escape")); s == nil || s.escapesParam[0] == nil {
		t.Error("Escape: escapesParam[0] not recorded")
	} else if got := s.escapesParam[0].chainString(); got != "stored in package variable sink" {
		t.Errorf("Escape chain = %q", got)
	}
	if s := eng.sum(fn(t, p, "EscapeDeep")); s == nil || s.escapesParam[0] == nil {
		t.Error("EscapeDeep: escape not propagated through the call")
	} else if got := s.escapesParam[0].chainString(); got != "Escape → stored in package variable sink" {
		t.Errorf("EscapeDeep chain = %q", got)
	}

	if s := eng.sum(fn(t, p, "WriteThrough")); s == nil || s.writesParam[0] == nil {
		t.Error("WriteThrough: writesParam[0] not recorded")
	}
	if s := eng.sum(fn(t, p, "ReturnAlias")); s == nil || s.returnsParam[0] == nil {
		t.Error("ReturnAlias: returnsParam[0] not recorded")
	}

	if s := eng.sum(method(t, p, "Box", "Set")); s == nil || s.recvWrite == nil {
		t.Error("Box.Set: recvWrite not recorded")
	}
	if s := eng.sum(method(t, p, "Box", "Reset")); s == nil || s.recvWrite == nil {
		t.Error("Box.Reset: recvWrite not inherited from Set")
	} else if got := s.recvWrite.chainString(); got != `(Box).Set → writes field "n"` {
		t.Errorf("Box.Reset chain = %q", got)
	}

	pr := paramPair{0, 1}
	if s := eng.sum(fn(t, p, "Mix")); s == nil || s.nonCommut[pr] == nil {
		t.Error("Mix: nonCommut{0,1} not recorded")
	}
	if s := eng.sum(fn(t, p, "MixDeep")); s == nil || s.nonCommut[pr] == nil {
		t.Error("MixDeep: nonCommut not lifted through the call")
	} else if got := s.nonCommut[pr].chainString(); got != "Mix → a - b" {
		t.Errorf("MixDeep chain = %q", got)
	}
}

// TestEngineFixpointStable: once build() converges, re-scanning any
// function discovers nothing new.
func TestEngineFixpointStable(t *testing.T) {
	eng, _ := loadEngine(t)
	for f, n := range eng.funcs {
		if !eng.sums[f].covers(eng.scan(n)) {
			t.Errorf("summary of %s is not a fixpoint", funcDisplayName(f))
		}
	}
}
