package lint

import (
	"go/ast"
	"go/types"
)

// DTT006 — ParAny-declared operators must be immutable.
//
// Mode() == ParAny is a theorem citation: it asserts the operator
// commutes with arbitrary splitters (Theorem 4.3's stateless case),
// which is what licenses round-robin replication and the PR 4 chain
// fusion pass (maximal linear chains of ParAny operators collapse
// into one bolt). A method that writes a field of such an operator
// introduces exactly the state the declaration denies: instances
// share the operator value, so the write is visible across parallel
// instances, invalidates the fusion preconditions, and is absent from
// snapshots. Either move the state into an instance created by New()
// (and declare the operator keyed/none as appropriate) or drop the
// mutation.
func (a *analyzer) rule006(p *Package) {
	parAny := a.parAnyOperatorTypes(p)
	if len(parAny) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			tn := receiverTypeName(p, fd)
			if tn == nil || !parAny[tn] {
				continue
			}
			recvObj := receiverObject(p, fd)
			if recvObj == nil {
				continue
			}
			a.checkOperatorWrites(p, fd, tn, recvObj)
		}
	}
}

// parAnyOperatorTypes finds the package's named types that implement
// core.Operator and whose Mode method returns core.ParAny.
func (a *analyzer) parAnyOperatorTypes(p *Package) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Mode" || fd.Body == nil {
				continue
			}
			tn := receiverTypeName(p, fd)
			if tn == nil || !typeImplements(tn.Type(), a.hooks.coreOperator) {
				continue
			}
			if a.returnsParAny(p, fd.Body) {
				out[tn] = true
			}
		}
	}
	return out
}

// returnsParAny reports whether any return statement resolves to the
// core.ParAny constant.
func (a *analyzer) returnsParAny(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		var id *ast.Ident
		switch e := ret.Results[0].(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return true
		}
		if p.Info.Uses[id] == a.hooks.parAny {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkOperatorWrites flags receiver-field writes in one method of a
// ParAny operator type.
func (a *analyzer) checkOperatorWrites(p *Package, fd *ast.FuncDecl, tn *types.TypeName, recvObj types.Object) {
	check := func(lhs ast.Expr, pos ast.Node) {
		field := receiverFieldTarget(p, lhs, recvObj)
		if field == "" {
			return
		}
		a.reportf(pos.Pos(), CodeStateless,
			"method (%s).%s writes field %q of an operator whose Mode() is ParAny: a stateless-declared operator is shared by all parallel instances, so the write is cross-instance state — it breaks the arbitrary-split theorem the mode cites and the chain-fusion preconditions; keep state in the Instance returned by New()",
			tn.Name(), fd.Name.Name, field)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs, n)
			}
		case *ast.IncDecStmt:
			check(n.X, n)
		}
		return true
	})
}

// receiverFieldTarget returns the written receiver field's name when
// the LHS is recv.Field, recv.Field[i] or a deeper chain rooted at
// the receiver; "" otherwise.
func receiverFieldTarget(p *Package, lhs ast.Expr, recvObj types.Object) string {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok && p.Info.ObjectOf(id) == recvObj {
				return e.Sel.Name
			}
			lhs = e.X
		default:
			return ""
		}
	}
}

// receiverTypeName resolves a method's receiver to its defining
// *types.TypeName (generic receivers resolve to the origin type).
func receiverTypeName(p *Package, fd *ast.FuncDecl) *types.TypeName {
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// receiverObject returns the receiver variable's object.
func receiverObject(p *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.Info.Defs[fd.Recv.List[0].Names[0]]
}
