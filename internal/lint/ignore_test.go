package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lineOf returns the 1-based number of the first line satisfying the
// predicate.
func lineOf(t *testing.T, path string, match func(string) bool) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if match(sc.Text()) {
			return line
		}
	}
	t.Fatalf("no line matched in %s", path)
	return 0
}

func containing(sub string) func(string) bool {
	return func(s string) bool { return strings.Contains(s, sub) }
}

// TestIgnoreDirectives pins the suppression semantics: a directive
// silences a matching code on its own line or the next line; a wrong
// code or an out-of-range placement silences nothing; a directive
// with no reason, an unknown code, or naming DTT000 is itself a
// DTT000 finding (and suppresses nothing).
func TestIgnoreDirectives(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]string{"."}, Options{Dir: dir})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	const fix = "internal/lint/testdata/suppress/suppress.go"
	path := filepath.Join(dir, "suppress.go")

	type key struct {
		Line int
		Code string
	}
	got := map[key]int{}
	for _, d := range res.Diagnostics {
		if d.File != fix {
			t.Fatalf("diagnostic in unexpected file: %s", d)
		}
		got[key{d.Line, d.Code}]++
	}

	noReasonLine := lineOf(t, path, func(s string) bool {
		return strings.TrimSpace(s) == "//lint:ignore DTT002"
	})
	want := map[key]int{
		// Wrong code on the directive: the DTT002 on the next line
		// survives.
		{lineOf(t, path, containing("wrong code on purpose")) + 1, CodeAmbient}: 1,
		// Directive two lines above the finding: out of range.
		{lineOf(t, path, containing("placed out of range on purpose")) + 2, CodeAmbient}: 1,
		// Missing reason: directive rejected, finding survives.
		{noReasonLine, CodeDirective}:                                         1,
		{noReasonLine + 1, CodeAmbient}:                                       1,
		{lineOf(t, path, containing("DTT999")), CodeDirective}:                1,
		{lineOf(t, path, containing("silence the meta rule")), CodeDirective}: 1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("line %d: want %d x %s, got %d", k.Line, n, k.Code, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("unexpected diagnostic at line %d: %d x %s (suppression failed to apply?)", k.Line, n, k.Code)
		}
	}

	// The correctly-placed directives really did suppress.
	trailing := lineOf(t, path, containing("fixture: trailing suppression"))
	aboveDir := lineOf(t, path, containing("suppression from the line above"))
	for _, silent := range []int{trailing, aboveDir + 1} {
		if got[key{silent, CodeAmbient}] != 0 {
			t.Errorf("line %d: suppressed finding was still reported", silent)
		}
	}
}
