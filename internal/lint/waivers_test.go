package lint

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestCollectWaivers audits the suppress fixture: well-formed
// directives are listed with their codes and reasons, malformed ones
// (no reason, unknown code, DTT000) are problems, and the report is
// sorted by (file, line).
func TestCollectWaivers(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CollectWaivers([]string{"."}, Options{Dir: dir})
	if err != nil {
		t.Fatalf("CollectWaivers: %v", err)
	}
	if rep.Module != "datatrace" {
		t.Errorf("module = %q, want datatrace", rep.Module)
	}
	if got, want := len(rep.Waivers), 4; got != want {
		t.Errorf("waivers = %d, want %d: %+v", got, want, rep.Waivers)
	}
	if got, want := len(rep.Problems), 3; got != want {
		t.Errorf("problems = %d, want %d: %+v", got, want, rep.Problems)
	}
	for i, w := range rep.Waivers {
		if w.Reason == "" || len(w.Codes) == 0 {
			t.Errorf("waiver %d lacks codes or reason: %+v", i, w)
		}
		if w.File != "internal/lint/testdata/suppress/suppress.go" {
			t.Errorf("waiver %d in unexpected file %q", i, w.File)
		}
		if i > 0 && rep.Waivers[i-1].Line > w.Line {
			t.Errorf("waivers not sorted by line: %d before %d", rep.Waivers[i-1].Line, w.Line)
		}
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"module", "waivers", "problems"} {
		if _, ok := m[k]; !ok {
			t.Errorf("missing top-level key %q in %s", k, data)
		}
	}
	ws, ok := m["waivers"].([]any)
	if !ok || len(ws) == 0 {
		t.Fatalf("waivers is not a non-empty array: %v", m["waivers"])
	}
	w0, ok := ws[0].(map[string]any)
	if !ok {
		t.Fatalf("waiver is not an object: %v", ws[0])
	}
	for _, k := range []string{"file", "line", "codes", "reason"} {
		if _, ok := w0[k]; !ok {
			t.Errorf("missing waiver key %q in %v", k, w0)
		}
	}
}

// TestCollectWaiversRepo runs the audit over the real repository: the
// module's standing waivers must all carry reasons (zero problems) —
// the in-tree twin of the `dttlint -waivers` gate in check.sh.
func TestCollectWaiversRepo(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CollectWaivers([]string{"./..."}, Options{Dir: root})
	if err != nil {
		t.Fatalf("CollectWaivers: %v", err)
	}
	for _, p := range rep.Problems {
		t.Errorf("malformed waiver: %s:%d %s", p.File, p.Line, p.Message)
	}
	if len(rep.Waivers) == 0 {
		t.Error("expected at least one standing waiver in the repository")
	}
}
