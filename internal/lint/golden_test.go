package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches fixture annotations like `// want DTT001` or
// `// want DTT004 DTT004` (duplicated code = two findings expected on
// the line).
var wantRe = regexp.MustCompile(`//\s*want\s+(DTT\d{3}(?:\s+DTT\d{3})*)\s*$`)

// collectWants scans the fixture tree for want markers, keyed by
// "module-relative-file:line code" with expected multiplicity.
func collectWants(t *testing.T, fixtureDir, moduleRoot string) map[string]int {
	t.Helper()
	absRoot, err := filepath.Abs(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]int{}
	err = filepath.WalkDir(fixtureDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(absRoot, abs)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, code := range strings.Fields(m[1]) {
				wants[fmt.Sprintf("%s:%d %s", rel, line, code)]++
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestGoldenFixtures runs the analyzer over the rule fixtures and
// compares its findings, position by position, against the `// want`
// markers: every marked line must be flagged with the marked code,
// and nothing else may be flagged (the ok fixtures stay silent).
func TestGoldenFixtures(t *testing.T) {
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]string{"./..."}, Options{Dir: src})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := map[string]int{}
	byKey := map[string][]Diagnostic{}
	for _, d := range res.Diagnostics {
		k := fmt.Sprintf("%s:%d %s", d.File, d.Line, d.Code)
		got[k]++
		byKey[k] = append(byKey[k], d)
	}
	want := collectWants(t, filepath.Join("testdata", "src"), filepath.Join("..", ".."))
	if len(want) == 0 {
		t.Fatal("no want markers found under testdata/src")
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch {
		case got[k] < want[k]:
			t.Errorf("missing diagnostic: want %d at %s, got %d", want[k], k, got[k])
		case got[k] > want[k]:
			t.Errorf("unexpected diagnostic at %s (want %d, got %d): %v", k, want[k], got[k], byKey[k])
		}
	}
}
