package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Per-function summaries: the interprocedural half of the analyzer.
//
// Every rule in this package states an obligation about what happens
// inside a hot path — no ambient nondeterminism, no side channels, no
// retained arena aliases. Before PR 10 each rule could see only the
// hot function's own body, so a `time.Now()` or a batch stash one
// helper call deep was invisible. The engine closes that seam: it
// computes, for every function with a body in the loaded module
// packages, a small effect summary —
//
//	nondet       reaches a wall-clock read, random draw or
//	             multi-way select
//	spawn        reaches a goroutine spawn or raw channel send
//	callsParam   may invoke its i-th (function-typed) parameter
//	mapEmitParam may invoke its i-th parameter from inside a
//	             range over a map
//	escapesParam may retain an alias of its i-th parameter past
//	             the call (receiver field, package variable,
//	             goroutine capture, channel send, or a callee that
//	             does any of those)
//	writesParam  may write through its i-th parameter
//	returnsParam may return an alias of its i-th parameter
//	recvWrite    writes a field of its receiver (directly or via
//	             its own methods)
//	nonCommut    combines two parameters with a non-commutative
//	             operation (subtraction, division, string
//	             concatenation)
//	appendMix    appends one parameter('s elements) to another —
//	             order-sensitive slice accumulation
//
// — and propagates them bottom-up over the static call graph
// (callgraph.go) to a fixpoint. Effects are monotone and the depth of
// a propagated chain is bounded (maxEffectDepth), so the worklist
// terminates on recursion and mutual recursion. Every propagated
// effect carries its provenance: the call chain from the summarized
// function down to the leaf site, which the rules print in
// diagnostics and which leaf-site suppression uses (a `//lint:ignore`
// on the leaf silences every finding derived from it).

// maxEffectDepth bounds how many call hops an effect propagates: a
// chain deeper than this is treated as out of analysis range. A var
// so the engine tests can pin the bound's behavior.
var maxEffectDepth = 8

// effect is one interprocedural fact with provenance.
type effect struct {
	// pos is the site in the summarized function itself: a leaf site
	// (the time.Now call) or the call that inherits the effect.
	pos token.Pos
	// chain is the provenance from this function down to the leaf,
	// e.g. ["stamp", "time.Now()"]. Its last element describes the
	// leaf itself.
	chain []string
	// depth is the chain length; leaves have depth 1.
	depth int
	// leafPos is the ultimate leaf site, for leaf-side suppression.
	leafPos token.Pos
}

// localEffect is a leaf fact discovered in the scanned body itself.
func localEffect(pos token.Pos, desc string) *effect {
	return &effect{pos: pos, chain: []string{desc}, depth: 1, leafPos: pos}
}

// derived lifts a callee effect to a call site, extending the chain;
// nil when the effect is nil or out of depth range.
func derived(pos token.Pos, callee *types.Func, eff *effect) *effect {
	if eff == nil || eff.depth >= maxEffectDepth {
		return nil
	}
	chain := make([]string, 0, len(eff.chain)+1)
	chain = append(chain, funcDisplayName(callee))
	chain = append(chain, eff.chain...)
	return &effect{pos: pos, chain: chain, depth: eff.depth + 1, leafPos: eff.leafPos}
}

// chainString renders provenance for diagnostics.
func (e *effect) chainString() string { return strings.Join(e.chain, " → ") }

// paramPair is an ordered pair of parameter indices (i < j).
type paramPair [2]int

// summary is one function's effect summary.
type summary struct {
	nondet       *effect
	spawn        *effect
	recvWrite    *effect
	callsParam   map[int]*effect
	mapEmitParam map[int]*effect
	escapesParam map[int]*effect
	writesParam  map[int]*effect
	returnsParam map[int]*effect
	nonCommut    map[paramPair]*effect
	appendMix    map[paramPair]*effect
}

func newSummary() *summary {
	return &summary{
		callsParam:   map[int]*effect{},
		mapEmitParam: map[int]*effect{},
		escapesParam: map[int]*effect{},
		writesParam:  map[int]*effect{},
		returnsParam: map[int]*effect{},
		nonCommut:    map[paramPair]*effect{},
		appendMix:    map[paramPair]*effect{},
	}
}

// setEff records an effect if none is present (first discovery wins,
// keeping summaries — and their provenance — deterministic).
func setEff(dst **effect, e *effect) {
	if e != nil && *dst == nil {
		*dst = e
	}
}

// setIdx records an indexed effect if none is present.
func setIdx(m map[int]*effect, i int, e *effect) {
	if e != nil && m[i] == nil {
		m[i] = e
	}
}

// setPair records a pair effect if none is present.
func setPair(m map[paramPair]*effect, k paramPair, e *effect) {
	if e != nil && m[k] == nil {
		m[k] = e
	}
}

// covers reports whether s has every effect o has — the fixpoint's
// "nothing new" check (effects are monotone, so growth is the only
// possible change).
func (s *summary) covers(o *summary) bool {
	has := func(e, f *effect) bool { return e != nil || f == nil }
	if !has(s.nondet, o.nondet) || !has(s.spawn, o.spawn) || !has(s.recvWrite, o.recvWrite) {
		return false
	}
	idx := func(a, b map[int]*effect) bool {
		for k := range b {
			if a[k] == nil {
				return false
			}
		}
		return true
	}
	pair := func(a, b map[paramPair]*effect) bool {
		for k := range b {
			if a[k] == nil {
				return false
			}
		}
		return true
	}
	return idx(s.callsParam, o.callsParam) && idx(s.mapEmitParam, o.mapEmitParam) &&
		idx(s.escapesParam, o.escapesParam) && idx(s.writesParam, o.writesParam) &&
		idx(s.returnsParam, o.returnsParam) && pair(s.nonCommut, o.nonCommut) &&
		pair(s.appendMix, o.appendMix)
}

// build computes every summary to fixpoint. Single-threaded: the
// parallel per-package rule phase that follows reads the results
// without locks. The iteration is round-based over a
// position-independent node order (package path, file, line), so
// which effect chain gets recorded first — and therefore every
// diagnostic message — is byte-identical across runs even though
// parallel parsing assigns FileSet offsets nondeterministically.
func (e *engine) build() {
	nodes := make([]*funcNode, 0, len(e.funcs))
	for _, n := range e.funcs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return e.posKey(nodes[i].fn).less(e.posKey(nodes[j].fn))
	})
	for _, n := range nodes {
		e.sums[n.fn] = newSummary()
	}
	// Effects are monotone and chain depth is bounded, so the rounds
	// terminate; the cap is a safety net, far above any real depth.
	for round := 0; round < 4*maxEffectDepth; round++ {
		changed := false
		for _, n := range nodes {
			fresh := e.scan(n)
			if !e.sums[n.fn].covers(fresh) {
				e.sums[n.fn] = fresh
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// sum returns fn's summary (resolving generic instantiations), or nil
// for functions outside the universe.
func (e *engine) sum(fn *types.Func) *summary {
	if fn == nil {
		return nil
	}
	if s := e.sums[fn]; s != nil {
		return s
	}
	return e.sums[fn.Origin()]
}

// ---------------------------------------------------------------------------
// Per-function scan.
// ---------------------------------------------------------------------------

// scanner walks one function body, deriving its summary from local
// facts plus the current summaries of its static callees.
type scanner struct {
	e       *engine
	n       *funcNode
	sum     *summary
	params  map[types.Object]int // declared parameter → index
	funcs   map[types.Object]int // function-typed parameter → index
	recvObj types.Object
	// aliases maps locals to the parameter indices they may alias.
	aliases map[types.Object]map[int]bool
}

// scan computes a fresh summary for one function.
func (e *engine) scan(n *funcNode) *summary {
	recv := receiverObject(n.pkg, n.decl)
	return e.scanBody(n.pkg, n.decl.Type.Params, n.decl.Body, recv)
}

// scanBody summarizes one function body given its parameter list —
// the shared core behind declared-function scans and the rules'
// on-demand summaries of template callback literals (DTT008).
func (e *engine) scanBody(p *Package, params *ast.FieldList, body *ast.BlockStmt, recv types.Object) *summary {
	s := &scanner{
		e: e, n: &funcNode{pkg: p}, sum: newSummary(),
		params:  map[types.Object]int{},
		funcs:   map[types.Object]int{},
		aliases: map[types.Object]map[int]bool{},
		recvObj: recv,
	}
	i := 0
	if params != nil {
		for _, field := range params.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj == nil {
					i++
					continue
				}
				s.params[obj] = i
				if _, ok := obj.Type().Underlying().(*types.Signature); ok {
					s.funcs[obj] = i
				}
				if refLike(obj.Type()) {
					s.aliases[obj] = map[int]bool{i: true}
				}
				i++
			}
		}
	}
	s.walk(body, false)
	return s.sum
}

// refLike reports whether values of t can carry an alias into or out
// of a call (pointer, slice, map, chan, func, interface); basic and
// struct values are copies.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// walk traverses n in syntactic order, tracking whether the current
// position is inside a range over a map. Nested function literals are
// not summarized as part of this function (matching the per-context
// discipline of the rules); their parameter captures still count as
// aliases wherever the literal value flows.
func (s *scanner) walk(n ast.Node, inMap bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			s.walk(m.X, inMap)
			over := inMap
			if t := s.n.pkg.Info.TypeOf(m.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					over = true
				}
			}
			s.walk(m.Body, over)
			return false
		default:
			s.handle(m, inMap)
			return true
		}
	})
}

// handle processes one node.
func (s *scanner) handle(n ast.Node, inMap bool) {
	switch n := n.(type) {
	case *ast.CallExpr:
		s.call(n, inMap)
	case *ast.SelectStmt:
		if n.Body != nil && len(n.Body.List) >= 2 {
			setEff(&s.sum.nondet, localEffect(n.Pos(), "multi-way select"))
		}
	case *ast.GoStmt:
		setEff(&s.sum.spawn, localEffect(n.Pos(), "go statement"))
		for i := range s.referencedParams(n.Call) {
			setIdx(s.sum.escapesParam, i, localEffect(n.Pos(), "captured by a goroutine"))
		}
	case *ast.SendStmt:
		setEff(&s.sum.spawn, localEffect(n.Pos(), "raw channel send"))
		for i := range s.aliasesOf(n.Value) {
			setIdx(s.sum.escapesParam, i, localEffect(n.Pos(), "sent on a channel"))
		}
	case *ast.AssignStmt:
		s.assign(n)
	case *ast.IncDecStmt:
		s.writeSink(n.X, nil, n.Pos())
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			for i := range s.aliasesOf(r) {
				setIdx(s.sum.returnsParam, i, localEffect(n.Pos(), "returned"))
			}
		}
	case *ast.BinaryExpr:
		s.binary(n)
	}
}

// call processes one call expression: ambient leaves, parameter
// invocations, and propagation from static callees.
func (s *scanner) call(call *ast.CallExpr, inMap bool) {
	p := s.n.pkg
	// Leaf: wall-clock / random draws (same set rule002 rejects).
	if fn := calledFunc(p, call); fn != nil && fn.Pkg() != nil {
		switch path := fn.Pkg().Path(); {
		case path == "time" && ambientTimeFuncs[fn.Name()]:
			setEff(&s.sum.nondet, localEffect(call.Pos(), "time."+fn.Name()+"()"))
		case path == "math/rand" || path == "math/rand/v2":
			setEff(&s.sum.nondet, localEffect(call.Pos(), path+"."+fn.Name()+"()"))
		}
	}
	// Leaf: invoking a function-typed parameter.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			if i, ok := s.funcs[obj]; ok {
				eff := localEffect(call.Pos(), obj.Name()+"(...)")
				setIdx(s.sum.callsParam, i, eff)
				if inMap {
					setIdx(s.sum.mapEmitParam, i,
						localEffect(call.Pos(), obj.Name()+"(...) inside a map range"))
				}
			}
		}
	}
	// Append is handled as an alias source (aliasesOf) and a mixing
	// sink (binary/appendMix below via direct args).
	if isBuiltinAppend(p, call) && len(call.Args) >= 2 {
		base := s.directParams(call.Args[0])
		for _, arg := range call.Args[1:] {
			for i := range base {
				for j := range s.directParams(arg) {
					if i != j {
						setPair(s.sum.appendMix, orderedPair(i, j),
							localEffect(call.Pos(), "append("+exprString(call.Args[0])+", "+exprString(arg)+")"))
					}
				}
			}
		}
	}
	// Propagate from static callees.
	for _, callee := range s.e.callees(p, call) {
		if s.n.fn != nil {
			s.e.addEdge(s.n.fn, callee) // rule-phase scans (fn nil) must not mutate the graph
		}
		cs := s.e.sum(callee)
		if cs == nil {
			continue
		}
		setEff(&s.sum.nondet, derived(call.Pos(), callee, cs.nondet))
		setEff(&s.sum.spawn, derived(call.Pos(), callee, cs.spawn))
		// A method call on our own receiver inherits its field writes.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && s.recvObj != nil {
			if id, ok := sel.X.(*ast.Ident); ok && p.Info.ObjectOf(id) == s.recvObj {
				setEff(&s.sum.recvWrite, derived(call.Pos(), callee, cs.recvWrite))
			}
		}
		sig := callee.Type().(*types.Signature)
		direct := make([]map[int]bool, len(call.Args))
		for j, arg := range call.Args {
			cj := calleeParamIndex(sig, j)
			if cj < 0 {
				continue
			}
			// Function-typed parameter passed through.
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					if i, ok := s.funcs[obj]; ok {
						if eff := derived(call.Pos(), callee, cs.callsParam[cj]); eff != nil {
							setIdx(s.sum.callsParam, i, eff)
							if inMap {
								setIdx(s.sum.mapEmitParam, i, eff)
							}
						}
						setIdx(s.sum.mapEmitParam, i, derived(call.Pos(), callee, cs.mapEmitParam[cj]))
					}
				}
			}
			// Alias-carrying arguments.
			for i := range s.aliasesOf(arg) {
				setIdx(s.sum.escapesParam, i, derived(call.Pos(), callee, cs.escapesParam[cj]))
				setIdx(s.sum.writesParam, i, derived(call.Pos(), callee, cs.writesParam[cj]))
			}
			direct[j] = s.directParams(arg)
		}
		// Non-commutative mixing through a call: both our parameters
		// handed to a callee that mixes the corresponding pair.
		for pr, eff := range cs.nonCommut {
			s.mixThrough(call, callee, sig, direct, pr, eff, s.sum.nonCommut)
		}
		for pr, eff := range cs.appendMix {
			s.mixThrough(call, callee, sig, direct, pr, eff, s.sum.appendMix)
		}
	}
}

// mixThrough lifts a callee's parameter-pair effect to the caller's
// parameter pair when both positions are passed caller parameters.
func (s *scanner) mixThrough(call *ast.CallExpr, callee *types.Func, sig *types.Signature, direct []map[int]bool, pr paramPair, eff *effect, dst map[paramPair]*effect) {
	var a, b []int
	for j := range direct {
		cj := calleeParamIndex(sig, j)
		for i := range direct[j] {
			if cj == pr[0] {
				a = append(a, i)
			}
			if cj == pr[1] {
				b = append(b, i)
			}
		}
	}
	for _, i := range a {
		for _, j := range b {
			if i != j {
				setPair(dst, orderedPair(i, j), derived(call.Pos(), callee, eff))
			}
		}
	}
}

// assign processes one assignment statement: alias propagation and
// escape/write sinks.
func (s *scanner) assign(as *ast.AssignStmt) {
	multi := len(as.Lhs) > 1 && len(as.Rhs) == 1
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if multi {
			rhs = as.Rhs[0]
		} else if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		var rhsAl map[int]bool
		if rhs != nil && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
			rhsAl = s.aliasesOf(rhs)
		}
		s.writeSink(lhs, rhsAl, as.Pos())
	}
	// Non-commutative compound assignment: x -= y, x /= y, s += t.
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		switch as.Tok {
		case token.SUB_ASSIGN, token.QUO_ASSIGN:
			s.mixSink(as.Lhs[0], as.Rhs[0], as.Pos(),
				exprString(as.Lhs[0])+" "+as.Tok.String()+" "+exprString(as.Rhs[0]))
		case token.ADD_ASSIGN:
			if t := s.n.pkg.Info.TypeOf(as.Lhs[0]); t != nil && isString(t) {
				s.mixSink(as.Lhs[0], as.Rhs[0], as.Pos(),
					exprString(as.Lhs[0])+" += "+exprString(as.Rhs[0]))
			}
		}
	}
}

// writeSink classifies one write target, recording receiver-field
// writes, parameter writes, and any escape of rhs aliases.
func (s *scanner) writeSink(lhs ast.Expr, rhsAl map[int]bool, pos token.Pos) {
	p := s.n.pkg
	escape := func(desc string) {
		for i := range rhsAl {
			setIdx(s.sum.escapesParam, i, localEffect(pos, desc))
		}
	}
	if id, ok := lhs.(*ast.Ident); ok {
		obj := p.Info.ObjectOf(id)
		if obj == nil || obj.Name() == "_" {
			return
		}
		if obj.Parent() == p.Types.Scope() {
			escape("stored in package variable " + obj.Name())
			return
		}
		if len(rhsAl) > 0 {
			al := s.aliases[obj]
			if al == nil {
				al = map[int]bool{}
				s.aliases[obj] = al
			}
			for i := range rhsAl {
				al[i] = true
			}
		}
		return
	}
	// Receiver-field target: recv.f, recv.f[i], chains.
	if s.recvObj != nil {
		if field := receiverFieldTarget(p, lhs, s.recvObj); field != "" {
			setEff(&s.sum.recvWrite, localEffect(pos, fmt.Sprintf("writes field %q", field)))
			escape(fmt.Sprintf("stored in receiver field %q", field))
			return
		}
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := p.Info.ObjectOf(root)
	if obj == nil {
		return
	}
	if i, ok := s.params[obj]; ok {
		setIdx(s.sum.writesParam, i, localEffect(pos, "writes through parameter "+obj.Name()))
		escape("stored through parameter " + obj.Name())
		return
	}
	if obj.Parent() == p.Types.Scope() {
		escape("stored in package variable " + obj.Name())
		return
	}
	// Write into a local structure: the alias stays reachable from
	// the local's object.
	if len(rhsAl) > 0 {
		al := s.aliases[obj]
		if al == nil {
			al = map[int]bool{}
			s.aliases[obj] = al
		}
		for i := range rhsAl {
			al[i] = true
		}
	}
}

// binary records non-commutative parameter mixing: x - y, x / y, and
// string x + y where each side references exactly one distinct
// parameter.
func (s *scanner) binary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.SUB, token.QUO:
		s.mixSink(b.X, b.Y, b.Pos(), exprString(b))
	case token.ADD:
		if t := s.n.pkg.Info.TypeOf(b); t != nil && isString(t) {
			s.mixSink(b.X, b.Y, b.Pos(), exprString(b))
		}
	}
}

// mixSink records a nonCommut pair when lhs references exactly one
// parameter and rhs exactly one other: `x.Sum - y.Sum` mixes, while
// `x.Sum / x.Count` (one aggregate's own fields) and symmetric forms
// like `(x.A+y.A) - (x.B+y.B)` do not.
func (s *scanner) mixSink(lhs, rhs ast.Expr, pos token.Pos, desc string) {
	l, r := s.directParams(lhs), s.directParams(rhs)
	if len(l) != 1 || len(r) != 1 {
		return
	}
	var i, j int
	for k := range l {
		i = k
	}
	for k := range r {
		j = k
	}
	if i == j {
		return
	}
	setPair(s.sum.nonCommut, orderedPair(i, j), localEffect(pos, desc))
}

// directParams returns the parameter indices an expression references
// (through plain identifiers and locals assigned from them) — used
// for value-level mixing, where alias-carrying types are irrelevant.
func (s *scanner) directParams(e ast.Expr) map[int]bool {
	out := map[int]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := s.n.pkg.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if i, ok := s.params[obj]; ok {
			out[i] = true
		}
		for i := range s.aliases[obj] {
			out[i] = true
		}
		return true
	})
	return out
}

// referencedParams returns every parameter referenced anywhere under
// n, descending into function literals (goroutine capture).
func (s *scanner) referencedParams(n ast.Node) map[int]bool {
	out := map[int]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := s.n.pkg.Info.ObjectOf(id); obj != nil {
				if i, ok := s.params[obj]; ok {
					out[i] = true
				}
				for i := range s.aliases[obj] {
					out[i] = true
				}
			}
		}
		return true
	})
	return out
}

// aliasesOf reports which parameters' memory evaluating e may alias.
// Element reads of value types are copies and carry nothing; append
// aliases its first argument's backing array; calls to module
// functions alias through their returnsParam summary; a function
// literal aliases everything it captures.
func (s *scanner) aliasesOf(e ast.Expr) map[int]bool {
	p := s.n.pkg
	if t := p.Info.TypeOf(e); t != nil && !refLike(t) {
		if _, isLit := e.(*ast.CompositeLit); !isLit {
			return nil
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		return s.aliases[p.Info.ObjectOf(e)]
	case *ast.ParenExpr:
		return s.aliasesOf(e.X)
	case *ast.TypeAssertExpr:
		return s.aliasesOf(e.X)
	case *ast.SelectorExpr:
		return s.aliasesOf(e.X)
	case *ast.SliceExpr:
		return s.aliasesOf(e.X)
	case *ast.IndexExpr:
		return s.aliasesOf(e.X)
	case *ast.StarExpr:
		return s.aliasesOf(e.X)
	case *ast.UnaryExpr:
		return s.aliasesOf(e.X)
	case *ast.FuncLit:
		return s.referencedParams(e.Body)
	case *ast.CompositeLit:
		out := map[int]bool{}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			for i := range s.aliasesOf(elt) {
				out[i] = true
			}
		}
		return out
	case *ast.CallExpr:
		if isBuiltinAppend(p, e) && len(e.Args) > 0 {
			return s.aliasesOf(e.Args[0])
		}
		if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return s.aliasesOf(e.Args[0]) // conversion keeps the alias
		}
		out := map[int]bool{}
		for _, callee := range s.e.callees(p, e) {
			cs := s.e.sum(callee)
			if cs == nil || len(cs.returnsParam) == 0 {
				continue
			}
			sig := callee.Type().(*types.Signature)
			for j, arg := range e.Args {
				cj := calleeParamIndex(sig, j)
				if cj < 0 || cs.returnsParam[cj] == nil {
					continue
				}
				for i := range s.aliasesOf(arg) {
					out[i] = true
				}
			}
		}
		return out
	}
	return nil
}

// calledFunc resolves a call's target to a *types.Func (for ambient
// leaf detection), or nil.
func calledFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// calleeParamIndex maps an argument position to the callee's declared
// parameter index, folding variadic tails onto the last parameter.
func calleeParamIndex(sig *types.Signature, arg int) int {
	n := sig.Params().Len()
	if arg < n {
		return arg
	}
	if sig.Variadic() && n > 0 {
		return n - 1
	}
	return -1
}

// orderedPair normalizes a parameter pair.
func orderedPair(i, j int) paramPair {
	if i > j {
		i, j = j, i
	}
	return paramPair{i, j}
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
