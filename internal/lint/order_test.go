package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// runFixtures runs the analyzer over the golden fixture tree.
func runFixtures(t *testing.T) *Result {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]string{"./..."}, Options{Dir: src})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestDiagnosticOrdering pins the output contract: diagnostics sort
// by (file, line, col, code), and two runs — each with its own
// parallel parse and parallel rule phase — produce byte-identical
// output, messages included.
func TestDiagnosticOrdering(t *testing.T) {
	render := func(res *Result) []string {
		out := make([]string, len(res.Diagnostics))
		for i, d := range res.Diagnostics {
			out[i] = d.String()
		}
		return out
	}
	first := runFixtures(t)
	if len(first.Diagnostics) == 0 {
		t.Fatal("fixture tree produced no diagnostics")
	}
	for i := 1; i < len(first.Diagnostics); i++ {
		a, b := first.Diagnostics[i-1], first.Diagnostics[i]
		ka := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", a.File, a.Line, a.Col, a.Code)
		kb := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", b.File, b.Line, b.Col, b.Code)
		if ka > kb {
			t.Errorf("diagnostics out of (file, line, col, code) order:\n  %s\n  %s", a, b)
		}
	}
	want := render(first)
	for run := 0; run < 2; run++ {
		got := render(runFixtures(t))
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("run %d produced different output\nfirst:\n%s\nnow:\n%s",
				run+2, strings.Join(want, "\n"), strings.Join(got, "\n"))
		}
	}
}

// TestInterproceduralChains asserts that the interprocedural fixture
// findings carry their call-chain provenance in the message — one
// chain per rewired rule (DTT001/002/003/005/007) and per new rule
// that propagates effects (DTT008/009/010). Each of these cases is
// invisible to a body-local analysis: the offending site lives in a
// helper, not in the hot function.
func TestInterproceduralChains(t *testing.T) {
	res := runFixtures(t)
	wantChains := map[string]string{
		"DTT001": "fanOut → f(...) inside a map range",
		"DTT002": "nowish → stamp → time.Now()",
		"DTT003": `(tally).inc → writes field "n"`,
		"DTT005": "fireAndForget → go statement",
		"DTT007": "view → returned",
		"DTT008": "ratio → a / b",
		"DTT009": "keepAll → remember → stored in package variable last",
		"DTT010": "flushVia → f(...)",
	}
	for code, chain := range wantChains {
		found := false
		for _, d := range res.Diagnostics {
			if d.Code == code && strings.Contains(d.Message, chain) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic carries the call chain %q", code, chain)
		}
	}
}
