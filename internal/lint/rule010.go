package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DTT010 — marker/flush protocol typestate.
//
// A marker seals an epoch: the recovery and rescale machinery (PR 2,
// PR 7) both assume that when an operator forwards a marker, every
// event of the sealed epoch has already been emitted — the
// buffers-empty-at-cut invariant is exactly "nothing of epoch N is
// emitted after N's marker". Two code shapes break that typestate:
//
//  1. Emit after seal: in an `if e.IsMarker` branch, emitting data
//     after forwarding the marker pushes epoch-N output past N's cut
//     — on recovery it is replayed into epoch N+1, on rescale it is
//     routed by the wrong placement table. The flush-then-forward
//     order the core templates use is the only correct one.
//
//  2. Emit retention: storing the per-call emit callback anywhere
//     that outlives the call — a goroutine, a channel, a package
//     variable, a conditionally-written field, or a helper that
//     stashes it (caught through the summary engine). The runtime
//     threads a fresh emit through every Next/Flush call precisely so
//     it can rewire delivery at rescale barriers and route flushes
//     into transactional send blocks; a retained emit bypasses the
//     rewiring and emits into a dead epoch.
//
// The one sanctioned form is the entry rebind the framework itself
// uses: an unconditional top-level `recv.field = emit` at the start
// of the method body, which overwrites the field on every call and
// therefore never carries a stale callback across calls.
func (a *analyzer) rule010(c *hotCtx) {
	a.checkEmitAfterSeal(c)
	a.checkEmitRetention(c)
}

// checkEmitAfterSeal flags data emissions after the marker forward in
// an `if e.IsMarker` branch (part 1 above). Template callbacks are
// out of scope: the template runtime owns marker forwarding there.
func (a *analyzer) checkEmitAfterSeal(c *hotCtx) {
	if c.kind == ctxTemplate {
		return
	}
	events := a.eventParams(c)
	if len(events) == 0 || len(c.emits) == 0 {
		return
	}
	inspectShallow(c.body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ev := isMarkerCond(c, ifs.Cond, events)
		if ev == nil {
			return true
		}
		// Find the marker forward — emit(ev) — among the branch's
		// statements, then flag any emission after it.
		forwarded := false
		for _, s := range ifs.Body.List {
			if !forwarded {
				if isMarkerForward(c, s, ev) {
					forwarded = true
				}
				continue
			}
			if pos, eff, found := a.findEmitCall(c, s); found {
				a.reportEff(pos, CodeMarkerSeal, eff,
					"emission after the marker forward in %s%s: the marker seals the epoch, so output emitted after it lands past the cut — recovery replays it into the next epoch and rescale routes it with the wrong placement table; flush first, forward the marker last",
					c.desc, viaChain(eff))
			}
		}
		return true
	})
}

// eventParams collects the context's stream.Event-typed parameter
// objects.
func (a *analyzer) eventParams(c *hotCtx) map[types.Object]bool {
	out := map[types.Object]bool{}
	if c.params == nil {
		return out
	}
	for _, field := range c.params.List {
		t := c.pkg.Info.TypeOf(field.Type)
		if t == nil || !types.Identical(t, a.hooks.streamEvent) {
			continue
		}
		for _, name := range field.Names {
			if obj := c.pkg.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// isMarkerCond recognizes `ev.IsMarker` (possibly parenthesized, or
// the left conjunct of &&) over an event parameter, returning the
// event object.
func isMarkerCond(c *hotCtx, cond ast.Expr, events map[types.Object]bool) types.Object {
	cond = ast.Unparen(cond)
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return isMarkerCond(c, b.X, events)
	}
	sel, ok := cond.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "IsMarker" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pkg.Info.ObjectOf(id)
	if obj == nil || !events[obj] {
		return nil
	}
	return obj
}

// isMarkerForward reports whether s is `emit(ev)` for one of the
// context's emit callbacks.
func isMarkerForward(c *hotCtx, s ast.Stmt, ev types.Object) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if obj := c.pkg.Info.Uses[fn]; obj == nil || !c.emits[obj] {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && c.pkg.Info.ObjectOf(arg) == ev
}

// checkEmitRetention flags stores, captures and hand-offs that let
// the per-call emit callback outlive the call (part 2 above).
func (a *analyzer) checkEmitRetention(c *hotCtx) {
	if len(c.emits) == 0 {
		return
	}
	// emitAliases: locals assigned a value referencing the callback
	// (e.g. a closure wrapping it). Two passes reach chains.
	aliases := map[types.Object]bool{}
	refsEmit := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.pkg.Info.ObjectOf(id); obj != nil && (c.emits[obj] || aliases[obj]) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(c.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || !refsEmit(as.Rhs[i]) {
					continue
				}
				if obj := c.pkg.Info.ObjectOf(id); obj != nil && obj.Parent() != c.pkg.Types.Scope() {
					aliases[obj] = true
				}
			}
			return true
		})
	}

	// The sanctioned entry rebind: unconditional top-level
	// `recv.field = emit` statements (overwritten every call, so
	// never stale).
	exempt := map[ast.Stmt]bool{}
	if c.kind == ctxMethod && c.recv != nil {
		for _, s := range c.body.List {
			as, ok := s.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			id, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident)
			if !ok {
				continue
			}
			if obj := c.pkg.Info.ObjectOf(id); obj == nil || !c.emits[obj] {
				continue
			}
			if receiverFieldTarget(c.pkg, as.Lhs[0], c.recv) != "" {
				exempt[s] = true
			}
		}
	}

	ast.Inspect(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if exempt[n] {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				} else if i < len(n.Rhs) {
					rhs = n.Rhs[i]
				} else {
					continue
				}
				if !refsEmit(rhs) {
					continue
				}
				if c.kind == ctxMethod && c.recv != nil {
					if field := receiverFieldTarget(c.pkg, lhs, c.recv); field != "" {
						a.reportf(n.Pos(), CodeMarkerSeal,
							"emit callback stored in receiver field %q outside the unconditional entry rebind in %s: a conditionally-retained emit goes stale across rescale barriers and transactional flushes, emitting into a dead epoch — rebind the field unconditionally at entry, or read it through the receiver",
							field, c.desc)
						continue
					}
				}
				if c.kind != ctxTemplate { // template pkg-var writes are DTT003's finding
					if root := rootIdent(lhs); root != nil {
						if obj := c.pkg.Info.ObjectOf(root); obj != nil && obj.Parent() == c.pkg.Types.Scope() {
							a.reportf(n.Pos(), CodeMarkerSeal,
								"emit callback stored in package variable %q in %s: the runtime threads a fresh emit through every call so it can rewire delivery at rescale barriers — a retained emit bypasses that and emits into a dead epoch",
								root.Name, c.desc)
						}
					}
				}
			}
		case *ast.GoStmt:
			if refsEmit(n.Call) || goLitRefsEmit(c, n, aliases) {
				a.reportf(n.Pos(), CodeMarkerSeal,
					"emit callback captured by a goroutine in %s: the goroutine can outlive the call and emit past the epoch's marker cut, breaking the buffers-empty-at-cut invariant — emit synchronously before returning",
					c.desc)
			}
		case *ast.SendStmt:
			if refsEmit(n.Value) {
				a.reportf(n.Pos(), CodeMarkerSeal,
					"emit callback sent on a channel in %s: the receiver can invoke it after the epoch is sealed, emitting past the marker cut — emit synchronously before returning",
					c.desc)
			}
		case *ast.CallExpr:
			a.checkEmitEscapeCall(c, n, aliases)
		}
		return true
	})
}

// goLitRefsEmit reports whether a go statement's function-literal
// body references the emit callback (the literal is the call's Fun,
// which ast.Inspect of n.Call covers, but spelled out for clarity of
// the alias set).
func goLitRefsEmit(c *hotCtx, g *ast.GoStmt, aliases map[types.Object]bool) bool {
	found := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pkg.Info.ObjectOf(id); obj != nil && (c.emits[obj] || aliases[obj]) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkEmitEscapeCall flags passing the emit callback to a helper
// whose summary retains it.
func (a *analyzer) checkEmitEscapeCall(c *hotCtx, call *ast.CallExpr, aliases map[types.Object]bool) {
	for _, callee := range a.eng.callees(c.pkg, call) {
		cs := a.eng.sum(callee)
		if cs == nil || len(cs.escapesParam) == 0 {
			continue
		}
		sig := callee.Type().(*types.Signature)
		for j, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pkg.Info.ObjectOf(id)
			if obj == nil || !(c.emits[obj] || aliases[obj]) {
				continue
			}
			cj := calleeParamIndex(sig, j)
			if cj < 0 || cs.escapesParam[cj] == nil {
				continue
			}
			eff := derived(call.Pos(), callee, cs.escapesParam[cj])
			if eff == nil {
				continue
			}
			a.reportEff(call.Pos(), CodeMarkerSeal, eff,
				"emit callback passed to a helper that retains it in %s: %s — the runtime threads a fresh emit through every call so it can rewire delivery at rescale barriers; a stashed emit goes stale and emits into a dead epoch",
				c.desc, eff.chainString())
		}
	}
}
