package lint

import (
	"path/filepath"
	"testing"
)

// TestAnalyzerSelfCheck runs the analyzer over the whole repository:
// the codebase must satisfy its own determinism contract. This is the
// in-tree twin of the `== dttlint ==` gate in scripts/check.sh.
func TestAnalyzerSelfCheck(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]string{"./..."}, Options{Dir: root})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("self-check finding: %s", d)
	}
	if len(res.Packages) < 10 {
		t.Errorf("self-check analyzed only %d packages — loader lost most of the module", len(res.Packages))
	}
}

// TestAnalyzerSelfCheckWithTests extends the self-check to in-package
// test files: test bolts are held to the same determinism contract
// (the two historical findings there are fixed or carry a justified
// //lint:ignore, and this test keeps it that way).
func TestAnalyzerSelfCheckWithTests(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]string{"./..."}, Options{Dir: root, IncludeTests: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("self-check finding: %s", d)
	}
}
