package lint

import (
	"go/ast"
	"sort"
)

// DTT008 — Combine callbacks in unordered contexts must be
// commutative.
//
// KeyedUnordered, SlidingAggregate and storm.CombinerSpec all
// document their Combine hook as a commutative monoid operation, and
// the paper's Theorem 4.3 depends on it: replicated instances
// accumulate partial aggregates independently and the runtime merges
// them in whatever order parallel delivery produces, so `Combine(x,
// y)` and `Combine(y, x)` must agree or the merged value depends on
// the scheduler, not the input trace. (KeyedUnordered's UpdateState
// is NOT in scope: it runs once per key per marker, in marker order,
// which is deterministic.)
//
// The rule flags the order-dependent shapes that actually occur in
// stream folds — subtraction or division mixing the two combined
// values, string concatenation of per-event data, and appending one
// side('s elements) onto the other (the merged slice order then
// encodes merge order) — both written directly in the callback and
// reached through helper calls via the summary engine. `x.Sum /
// x.Count` (one side's own fields) is fine; only expressions mixing
// exactly one parameter on each side are order-dependent.
func (a *analyzer) rule008(c *hotCtx) {
	if c.kind != ctxTemplate || c.field != "Combine" {
		return
	}
	switch c.tmpl {
	case "KeyedUnordered", "SlidingAggregate", "CombinerSpec":
	default:
		return
	}
	sum := a.eng.scanBody(c.pkg, c.lit.Type.Params, c.body, nil)
	names := paramNames(c.pkg, c.lit.Type.Params)
	report := func(eff *effect, pr paramPair, what string) {
		a.reportEff(eff.pos, CodeNonCommut, eff,
			"%s in %s mixes the two combined values %q and %q non-commutatively%s: parallel instances merge partial aggregates in scheduler order, so Combine(x, y) must equal Combine(y, x) — use a commutative operation (sums, mins, sorted merges), or fold order-sensitive data under KeyedOrdered",
			what, c.desc, name(names, pr[0]), name(names, pr[1]), viaChain(eff))
	}
	for _, pr := range sortedPairs(sum.nonCommut) {
		eff := sum.nonCommut[pr]
		report(eff, pr, "non-commutative arithmetic ("+eff.chain[len(eff.chain)-1]+")")
	}
	for _, pr := range sortedPairs(sum.appendMix) {
		eff := sum.appendMix[pr]
		report(eff, pr, "order-sensitive append ("+eff.chain[len(eff.chain)-1]+")")
	}
}

// sortedPairs orders a pair-effect map deterministically.
func sortedPairs(m map[paramPair]*effect) []paramPair {
	out := make([]paramPair, 0, len(m))
	for pr := range m {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// paramNames flattens a parameter list's names by index.
func paramNames(p *Package, params *ast.FieldList) []string {
	var out []string
	if params == nil {
		return out
	}
	for _, field := range params.List {
		for _, n := range field.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

// name returns the i-th parameter name, or a placeholder.
func name(names []string, i int) string {
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return "_"
}
