package lint

import (
	"sort"
)

// Waiver enumeration — the suppression-debt audit behind
// `dttlint -waivers`. Every //lint:ignore directive in the module is
// a standing exception to the determinism contract; listing them
// (with their mandatory reasons) keeps the debt visible, and a
// directive without a reason or with an unknown code is a Problem
// that fails the audit.

// Waiver is one well-formed //lint:ignore directive.
type Waiver struct {
	// File is the module-root-relative path; Line is 1-based.
	File string `json:"file"`
	Line int    `json:"line"`
	// Codes are the DTT00N rules the directive suppresses, sorted.
	Codes []string `json:"codes"`
	// Reason is the directive's justification text.
	Reason string `json:"reason"`
}

// WaiverProblem is a malformed directive — missing reason, unknown or
// unsuppressible code.
type WaiverProblem struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// WaiverReport is the result of a waiver audit.
type WaiverReport struct {
	Module   string          `json:"module"`
	Waivers  []Waiver        `json:"waivers"`
	Problems []WaiverProblem `json:"problems"`
}

// CollectWaivers enumerates every //lint:ignore directive in the
// packages matched by the patterns. Test files are always included:
// a waiver in a test harness is still suppression debt. The returned
// error covers load failures only; malformed directives are Problems,
// not errors.
func CollectWaivers(patterns []string, opts Options) (*WaiverReport, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld, err := newLoader(opts.Dir, true)
	if err != nil {
		return nil, err
	}
	dirs, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}
	rep := &WaiverReport{Module: ld.module}
	for _, dir := range dirs {
		path, err := ld.pathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pi, ok := parseIgnoreComment(c.Text)
					if !ok {
						continue
					}
					pos := ld.fset.Position(c.Pos())
					file, line := relTo(ld.root, pos.Filename), pos.Line
					if pi.problem != "" {
						rep.Problems = append(rep.Problems, WaiverProblem{
							File: file, Line: line, Message: pi.problem,
						})
						continue
					}
					rep.Waivers = append(rep.Waivers, Waiver{
						File: file, Line: line, Codes: pi.codeList, Reason: pi.reason,
					})
				}
			}
		}
	}
	sort.Slice(rep.Waivers, func(i, j int) bool {
		if rep.Waivers[i].File != rep.Waivers[j].File {
			return rep.Waivers[i].File < rep.Waivers[j].File
		}
		return rep.Waivers[i].Line < rep.Waivers[j].Line
	})
	sort.Slice(rep.Problems, func(i, j int) bool {
		if rep.Problems[i].File != rep.Problems[j].File {
			return rep.Problems[i].File < rep.Problems[j].File
		}
		return rep.Problems[i].Line < rep.Problems[j].Line
	})
	return rep, nil
}
