package lint

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestJSONSchema pins the -json output contract: top-level module /
// packages / diagnostics / elapsed_ms, and per-diagnostic file / line
// / col / code / message with 1-based positions.
func TestJSONSchema(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]string{"."}, Options{Dir: dir})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Diagnostics) == 0 {
		t.Fatal("suppress fixture produced no diagnostics to serialize")
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"module", "packages", "diagnostics", "elapsed_ms"} {
		if _, ok := m[k]; !ok {
			t.Errorf("missing top-level key %q in %s", k, data)
		}
	}
	if got := m["module"]; got != "datatrace" {
		t.Errorf("module = %v, want datatrace", got)
	}
	diags, ok := m["diagnostics"].([]any)
	if !ok || len(diags) == 0 {
		t.Fatalf("diagnostics is not a non-empty array: %v", m["diagnostics"])
	}
	d, ok := diags[0].(map[string]any)
	if !ok {
		t.Fatalf("diagnostic is not an object: %v", diags[0])
	}
	for _, k := range []string{"file", "line", "col", "code", "message"} {
		if _, ok := d[k]; !ok {
			t.Errorf("missing diagnostic key %q in %v", k, d)
		}
	}
	if line, ok := d["line"].(float64); !ok || line < 1 {
		t.Errorf("line = %v, want 1-based number", d["line"])
	}
	if col, ok := d["col"].(float64); !ok || col < 1 {
		t.Errorf("col = %v, want 1-based number", d["col"])
	}
}
