package lint

import (
	"go/ast"
)

// DTT005 — hot paths must not spawn goroutines or send on raw
// channels.
//
// The runtime owns delivery: emissions go through the emit callback
// into batched transport buffers whose flush points (size, markers,
// EOS, transactional send blocks) are exactly what makes marker cuts
// consistent — every buffer is provably empty at a restart point, and
// fault injection counts every routed event. An operator that spawns
// a goroutine or pushes data through its own channel moves events (or
// state transitions) outside that discipline: the transactional flush
// cannot see them, recovery cannot replay them, and a goroutine
// outliving Next races the executor's single-goroutine instance
// contract. Emit synchronously; if a computation needs parallelism,
// raise the operator's deployment parallelism and let the typed DAG
// prove it sound.
func (a *analyzer) rule005(c *hotCtx) {
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			a.reportf(n.Pos(), CodeSideSpawn,
				"goroutine spawned in %s: work escaping the executor bypasses the transactional flush and marker-cut recovery, and races the single-goroutine instance contract — emit synchronously and use deployment parallelism instead",
				c.desc)
		case *ast.SendStmt:
			a.reportf(n.Pos(), CodeSideSpawn,
				"raw channel send in %s: events bypassing emit skip the batched transport, fault accounting and the transactional flush, so marker cuts are no longer consistent — emit through the runtime instead",
				c.desc)
		case *ast.CallExpr:
			// Interprocedural: a helper that spawns a goroutine or
			// sends on a raw channel moves work outside the runtime's
			// delivery discipline just the same.
			for _, callee := range a.eng.callees(c.pkg, n) {
				cs := a.eng.sum(callee)
				if cs == nil || cs.spawn == nil {
					continue
				}
				eff := derived(n.Pos(), callee, cs.spawn)
				if eff == nil {
					continue
				}
				a.reportEff(n.Pos(), CodeSideSpawn, eff,
					"call in %s reaches a side channel: %s — work escaping the executor bypasses the transactional flush and marker-cut recovery; emit synchronously and use deployment parallelism instead",
					c.desc, eff.chainString())
			}
		}
		return true
	})
}
